// Command reproduce regenerates the tables and figures of "Energy Efficient
// MapReduce with VFI-enabled Multicore Platforms" (DAC 2015) on the
// simulated platform. With no flags it regenerates everything.
//
// Usage:
//
//	reproduce [-j N] [-cache dir] [-table1] [-table2] [-fig2] [-fig4]
//	          [-fig5] [-fig6] [-fig7] [-fig8] [-kintra] [-stealing]
//	          [-summary] [-policy static|util|cap] [-cap W]
//	          [-sweep spec.json] [-sweep-journal j.ndjson] [-sweep-atlas a.json]
//	          [-snapshot out.json] [-baseline ref.json] [-check]
//	          [-report out.html] [-timeline dir]
//	          [-trace file.json] [-manifest file.json] [-v] [-debug-addr addr]
//
// -j bounds the number of concurrent simulations (default GOMAXPROCS);
// output is byte-identical whatever the value. -cache points at the design
// cache directory ("auto" = the user cache dir, "" = disabled).
//
// -policy enables the closed-loop DVFS governor section, which compares
// the static paper plan against the utilization governor and the governor
// under a chip-level core-power cap (set with -cap, watts) across all six
// benchmarks. The section is opt-in: without -policy, stdout is
// byte-identical to earlier releases.
//
// -sweep runs a parametric scenario sweep from the given spec file (see
// internal/sweep and the wivfisweep command) and prints its atlas as an
// opt-in section; -sweep-journal makes it resumable and -sweep-atlas
// writes the atlas JSON document. Like -policy, the section never runs as
// part of the flagless default, so a flagless run's stdout stays
// byte-identical. Sweep scenarios share -j, -cache and the scenario
// keyspace with the figure suite, so the default-platform scenarios reuse
// the suite's cached designs.
//
// The fidelity flags drive the results-observability layer: -snapshot
// serializes every figure and table row into one schema-versioned JSON
// document, -baseline diffs that snapshot against a previously saved one,
// -check exits non-zero when the paper scoreboard fails or the diff finds a
// regression (naming the offending metrics on stderr), and -report writes a
// self-contained HTML (or markdown, by extension) run report combining the
// scoreboard, the diff, the figures and the run manifest. Any of them
// collects the complete snapshot regardless of which figure flags are set.
//
// -timeline writes the time-resolved series (per-worker phase tracks,
// per-island utilization and windowed energy, the DES link heatmap and
// packet-latency histogram) as timeline.json plus CSVs into the given
// directory; -report embeds the same series as a rendered Timelines
// section. The artifacts are indexed by simulated time and deterministic
// record counts, so they are byte-identical across -j levels and runs.
//
// Telemetry never touches stdout: -trace writes a Chrome trace_event JSON
// file, -manifest a machine-readable run summary, -v progress lines on
// stderr, and -debug-addr serves net/http/pprof and expvar. The figure
// output is byte-identical with or without any of them, fidelity and
// timeline flags included.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"wivfi/internal/expt"
	"wivfi/internal/fidelity"
	"wivfi/internal/governor"
	"wivfi/internal/obs"
	"wivfi/internal/sweep"
	"wivfi/internal/timeline"
)

func main() {
	var (
		jobs     = flag.Int("j", 0, "max concurrent simulations (0 = GOMAXPROCS)")
		cache    = flag.String("cache", "auto", `design cache dir ("auto" = user cache dir, "" = disabled)`)
		table1   = flag.Bool("table1", false, "Table 1: benchmarks and datasets")
		table2   = flag.Bool("table2", false, "Table 2: V/F assignments")
		fig2     = flag.Bool("fig2", false, "Fig. 2: core utilization distributions")
		fig4     = flag.Bool("fig4", false, "Fig. 4: VFI 1 vs VFI 2")
		fig5     = flag.Bool("fig5", false, "Fig. 5: bottleneck utilization")
		fig6     = flag.Bool("fig6", false, "Fig. 6: placement strategies")
		fig7     = flag.Bool("fig7", false, "Fig. 7: execution-time breakdown")
		fig8     = flag.Bool("fig8", false, "Fig. 8: full-system EDP")
		kintra   = flag.Bool("kintra", false, "Section 7.2: (k_intra,k_inter) sweep")
		stealing = flag.Bool("stealing", false, "Section 4.3: task-stealing case study")
		summary  = flag.Bool("summary", false, "headline numbers (abstract)")
		phased   = flag.Bool("phased", false, "extension: phase-adaptive DVFS controllers")
		wifail   = flag.Bool("wifail", false, "extension: wireless-interface failure robustness")
		margins  = flag.Bool("margins", false, "sensitivity: V/F-selection margin sweep")
		policy   = flag.String("policy", "", "extension: closed-loop DVFS governor section (static, util or cap; the section compares all three)")
		capWatts = flag.Float64("cap", expt.DefaultGovernorCapW, "chip core-power cap in watts for the governor section's cap column")

		sweepSpec    = flag.String("sweep", "", "parametric scenario sweep section from this spec JSON file (see wivfisweep)")
		sweepJournal = flag.String("sweep-journal", "", "resumable NDJSON journal for the -sweep section")
		sweepAtlas   = flag.String("sweep-atlas", "", "write the -sweep section's atlas JSON document here")

		snapshotPath = flag.String("snapshot", "", "write the full metrics snapshot (JSON)")
		baselinePath = flag.String("baseline", "", "diff the snapshot against this baseline snapshot")
		check        = flag.Bool("check", false, "exit non-zero on scoreboard failures or baseline regressions")
		reportPath   = flag.String("report", "", "write a run report (.html, or .md by extension)")
	)
	cli := obs.NewCLI(flag.CommandLine)
	tcli := timeline.NewCLI(flag.CommandLine)
	flag.Parse()
	wantFidelity := *snapshotPath != "" || *baselinePath != "" || *check || *reportPath != ""
	if *reportPath != "" {
		// the report embeds the run manifest and the timelines section, so
		// both need collecting even when no -trace/-manifest/-timeline was
		// asked for
		cli.ForceRecorder()
		tcli.ForceCollector()
	}
	all := !(*table1 || *table2 || *fig2 || *fig4 || *fig5 || *fig6 ||
		*fig7 || *fig8 || *kintra || *stealing || *summary || *phased || *wifail || *margins ||
		*sweepSpec != "")

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "reproduce: %v\n", err)
		os.Exit(1)
	}
	if *policy != "" {
		if _, err := governor.ParsePolicy(*policy); err != nil {
			fail(err)
		}
	}
	if err := cli.Start("reproduce"); err != nil {
		fail(err)
	}
	tcli.Start("reproduce")

	if *jobs <= 0 {
		*jobs = runtime.GOMAXPROCS(0)
	}
	cacheDir := *cache
	if cacheDir == "auto" {
		cacheDir = expt.DefaultCacheDir()
	}
	cfg := expt.DefaultConfig()
	suite := expt.NewSuite(cfg,
		expt.WithParallelism(*jobs), expt.WithCacheDir(cacheDir))
	obs.Logf("reproduce: -j %d, cache %q, config %s", *jobs, cacheDir, expt.ConfigHash(cfg))

	// Build every pipeline this invocation needs up front, -j wide; the
	// drivers below then render from warm pipelines in a fixed order.
	var prewarm []string
	switch {
	case all || wantFidelity || *table2 || *fig6 || *fig7 || *fig8 || *kintra || *phased || *summary || *policy != "":
		prewarm = expt.AppOrder
	default:
		seen := map[string]bool{}
		add := func(names ...string) {
			for _, n := range names {
				if !seen[n] {
					seen[n] = true
					prewarm = append(prewarm, n)
				}
			}
		}
		if *fig2 {
			add(expt.Fig2Apps...)
		}
		if *fig4 || *fig5 {
			add(expt.Fig4Apps...)
		}
		if *wifail {
			add("wc")
		}
		if *margins {
			add("kmeans")
		}
	}
	if len(prewarm) > 0 {
		obs.Logf("reproduce: prewarming %d pipeline(s): %s", len(prewarm), strings.Join(prewarm, " "))
		sp := obs.StartSpan("prewarm", strings.Join(prewarm, " "))
		err := suite.Prewarm(prewarm...)
		sp.End()
		if err != nil {
			fail(err)
		}
	}

	// Each section prints its formatted block followed (except -summary,
	// which historically omits it) by a blank separator line. Rendering
	// through this table keeps stdout byte-for-byte what the per-section
	// if-blocks used to produce, telemetry or not.
	sections := []struct {
		name    string
		enabled bool
		newline bool
		render  func() (string, error)
	}{
		{"table1", all || *table1, true, func() (string, error) {
			return expt.FormatTable1(expt.Table1()), nil
		}},
		{"table2", all || *table2, true, func() (string, error) {
			rows, err := suite.Table2()
			if err != nil {
				return "", err
			}
			return expt.FormatTable2(rows), nil
		}},
		{"fig2", all || *fig2, true, func() (string, error) {
			rows, err := suite.Fig2()
			if err != nil {
				return "", err
			}
			return expt.FormatFig2(rows), nil
		}},
		{"fig4", all || *fig4, true, func() (string, error) {
			rows, err := suite.Fig4()
			if err != nil {
				return "", err
			}
			return expt.FormatFig4(rows), nil
		}},
		{"fig5", all || *fig5, true, func() (string, error) {
			rows, err := suite.Fig5()
			if err != nil {
				return "", err
			}
			return expt.FormatFig5(rows), nil
		}},
		{"fig6", all || *fig6, true, func() (string, error) {
			rows, err := suite.Fig6()
			if err != nil {
				return "", err
			}
			return expt.FormatFig6(rows), nil
		}},
		{"fig7", all || *fig7, true, func() (string, error) {
			rows, err := suite.Fig7()
			if err != nil {
				return "", err
			}
			return expt.FormatFig7(rows), nil
		}},
		{"fig8", all || *fig8, true, func() (string, error) {
			rows, err := suite.Fig8()
			if err != nil {
				return "", err
			}
			return expt.FormatFig8(rows), nil
		}},
		{"kintra", all || *kintra, true, func() (string, error) {
			rows, err := suite.KIntraSweep()
			if err != nil {
				return "", err
			}
			return expt.MinKIntraNote() + expt.FormatKIntra(rows), nil
		}},
		{"stealing", all || *stealing, true, func() (string, error) {
			st, err := expt.RunStealingStudy()
			if err != nil {
				return "", err
			}
			return expt.FormatStealing(st), nil
		}},
		{"phased", all || *phased, true, func() (string, error) {
			rows, err := suite.PhaseAdaptiveStudy()
			if err != nil {
				return "", err
			}
			return expt.FormatPhased(rows), nil
		}},
		{"wifail", all || *wifail, true, func() (string, error) {
			rows, err := suite.WIFailureStudy(expt.DefaultWIFailureApp, expt.DefaultWIFailures)
			if err != nil {
				return "", err
			}
			return expt.FormatWIFailure(rows), nil
		}},
		{"margins", all || *margins, true, func() (string, error) {
			rows, err := suite.MarginSweep(expt.DefaultMarginApp, expt.DefaultMargins)
			if err != nil {
				return "", err
			}
			return expt.FormatMargin(rows), nil
		}},
		// The governor section is opt-in only (never part of `all`), so a
		// flagless run's stdout stays byte-identical to earlier releases.
		{"governor", *policy != "", true, func() (string, error) {
			rows, err := suite.GovernorStudy(*capWatts)
			if err != nil {
				return "", err
			}
			return expt.FormatGovernor(rows), nil
		}},
		// The sweep section is opt-in only for the same reason; it writes
		// its optional atlas JSON to a file, never stdout.
		{"sweep", *sweepSpec != "", true, func() (string, error) {
			spec, err := sweep.LoadSpec(*sweepSpec)
			if err != nil {
				return "", err
			}
			res, err := sweep.Run(spec, sweep.Options{
				JournalPath: *sweepJournal,
				Parallelism: *jobs,
				CacheDir:    cacheDir,
				OnProgress: func(done, total int) {
					obs.Logf("reproduce: sweep %s: %d/%d scenarios", spec.Name, done, total)
				},
			})
			if err != nil {
				return "", err
			}
			if *sweepAtlas != "" {
				blob, err := json.MarshalIndent(res.Atlas, "", "  ")
				if err != nil {
					return "", err
				}
				if err := os.WriteFile(*sweepAtlas, append(blob, '\n'), 0o644); err != nil {
					return "", err
				}
			}
			return res.Atlas.Format(), nil
		}},
		{"summary", all || *summary, false, func() (string, error) {
			rows, err := suite.Fig8()
			if err != nil {
				return "", err
			}
			return expt.FormatSummary(expt.Summarize(rows)), nil
		}},
	}
	for _, sec := range sections {
		if !sec.enabled {
			continue
		}
		sp := obs.StartSpan("render", sec.name)
		out, err := sec.render()
		sp.End()
		if err != nil {
			fail(err)
		}
		fmt.Print(out)
		if sec.newline {
			fmt.Println()
		}
	}

	// Timelines, like fidelity, run after every section has printed: the
	// series are derived post hoc from the warm pipelines and written only
	// to files and stderr, so stdout above is byte-identical with or
	// without them.
	var tset *timeline.Set
	if tcli.Collecting() {
		sp := obs.StartSpan("timelines", "collect")
		err := suite.CollectTimelines(timeline.Active())
		sp.End()
		if err != nil {
			fail(err)
		}
		var terr error
		if tset, terr = tcli.Finish(); terr != nil {
			fail(terr)
		}
	}

	// Fidelity runs after every section has printed: it re-reads the warm
	// pipelines and writes only to files and stderr, so stdout above is
	// byte-identical with or without it.
	var fid *obs.FidelitySummary
	var gate []string // what -check will report and exit non-zero on
	customize := func(m *obs.Manifest) {
		m.Jobs = *jobs
		m.ConfigHash = expt.ConfigHash(cfg)
		m.CacheDir = cacheDir
		cs := suite.CacheStats()
		m.Cache = &obs.CacheSummary{Hits: cs.Hits, Misses: cs.Misses, CorruptEvicted: cs.CorruptEvicted}
		m.Fidelity = fid
		m.Histograms = timeline.ManifestSummaries(tset)
	}
	if wantFidelity {
		snap, err := expt.CollectSnapshot(suite)
		if err != nil {
			fail(err)
		}
		results := fidelity.Evaluate(snap, expt.PaperChecks())
		tally := fidelity.Count(results)
		fid = &obs.FidelitySummary{
			SnapshotPath: *snapshotPath,
			BaselinePath: *baselinePath,
			ReportPath:   *reportPath,
			Pass:         tally.Pass, Warn: tally.Warn, Fail: tally.Fail,
		}
		for _, r := range fidelity.Failures(results) {
			gate = append(gate, fmt.Sprintf("scoreboard %s at %s: %s", r.ID, r.Addr(), r.Note))
		}

		var diff *fidelity.DiffReport
		if *baselinePath != "" {
			base, err := fidelity.LoadFile(*baselinePath)
			if err != nil {
				fail(err)
			}
			diff = fidelity.Diff(snap, base, fidelity.DiffOptions{})
			regs := diff.Regressions()
			fid.Regressions = len(regs)
			fid.ConfigMismatch = diff.ConfigMismatch
			if diff.ConfigMismatch {
				gate = append(gate, fmt.Sprintf("baseline config hash %s does not match current %s",
					diff.BaselineConfigHash, diff.CurrentConfigHash))
			}
			for _, f := range regs {
				gate = append(gate, "baseline "+f.String())
			}
			obs.Logf("reproduce: baseline diff: %d metric(s) compared, %d regression(s)", diff.Compared, len(regs))
		}

		if *snapshotPath != "" {
			if err := fidelity.WriteFile(*snapshotPath, snap); err != nil {
				fail(err)
			}
			obs.Logf("reproduce: snapshot written to %s", *snapshotPath)
		}
		if *reportPath != "" {
			data := fidelity.ReportData{
				Title:        "wivfi reproduction report",
				Snapshot:     snap,
				Results:      results,
				Diff:         diff,
				BaselinePath: *baselinePath,
				Manifest:     cli.BuildManifest(customize),
				Timelines:    tset,
			}
			if err := fidelity.WriteReport(*reportPath, data); err != nil {
				fail(err)
			}
			obs.Logf("reproduce: report written to %s", *reportPath)
		}
		fmt.Fprintf(os.Stderr, "reproduce: scoreboard %d pass, %d warn, %d fail\n",
			tally.Pass, tally.Warn, tally.Fail)
	}

	cs := suite.CacheStats()
	obs.Logf("reproduce: design cache: %d hit(s), %d miss(es), %d corrupt evicted",
		cs.Hits, cs.Misses, cs.CorruptEvicted)
	if err := cli.Finish(customize); err != nil {
		fail(err)
	}
	if len(gate) > 0 {
		for _, g := range gate {
			fmt.Fprintf(os.Stderr, "reproduce: %s\n", g)
		}
		if *check {
			fmt.Fprintf(os.Stderr, "reproduce: -check failed: %d offending metric(s)\n", len(gate))
			os.Exit(1)
		}
	}
}
