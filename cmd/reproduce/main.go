// Command reproduce regenerates the tables and figures of "Energy Efficient
// MapReduce with VFI-enabled Multicore Platforms" (DAC 2015) on the
// simulated platform. With no flags it regenerates everything.
//
// Usage:
//
//	reproduce [-j N] [-cache dir] [-table1] [-table2] [-fig2] [-fig4]
//	          [-fig5] [-fig6] [-fig7] [-fig8] [-kintra] [-stealing]
//	          [-summary]
//
// -j bounds the number of concurrent simulations (default GOMAXPROCS);
// output is byte-identical whatever the value. -cache points at the design
// cache directory ("auto" = the user cache dir, "" = disabled).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"wivfi/internal/expt"
)

func main() {
	var (
		jobs     = flag.Int("j", 0, "max concurrent simulations (0 = GOMAXPROCS)")
		cache    = flag.String("cache", "auto", `design cache dir ("auto" = user cache dir, "" = disabled)`)
		table1   = flag.Bool("table1", false, "Table 1: benchmarks and datasets")
		table2   = flag.Bool("table2", false, "Table 2: V/F assignments")
		fig2     = flag.Bool("fig2", false, "Fig. 2: core utilization distributions")
		fig4     = flag.Bool("fig4", false, "Fig. 4: VFI 1 vs VFI 2")
		fig5     = flag.Bool("fig5", false, "Fig. 5: bottleneck utilization")
		fig6     = flag.Bool("fig6", false, "Fig. 6: placement strategies")
		fig7     = flag.Bool("fig7", false, "Fig. 7: execution-time breakdown")
		fig8     = flag.Bool("fig8", false, "Fig. 8: full-system EDP")
		kintra   = flag.Bool("kintra", false, "Section 7.2: (k_intra,k_inter) sweep")
		stealing = flag.Bool("stealing", false, "Section 4.3: task-stealing case study")
		summary  = flag.Bool("summary", false, "headline numbers (abstract)")
		phased   = flag.Bool("phased", false, "extension: phase-adaptive DVFS controllers")
		wifail   = flag.Bool("wifail", false, "extension: wireless-interface failure robustness")
		margins  = flag.Bool("margins", false, "sensitivity: V/F-selection margin sweep")
	)
	flag.Parse()
	all := !(*table1 || *table2 || *fig2 || *fig4 || *fig5 || *fig6 ||
		*fig7 || *fig8 || *kintra || *stealing || *summary || *phased || *wifail || *margins)

	if *jobs <= 0 {
		*jobs = runtime.GOMAXPROCS(0)
	}
	cacheDir := *cache
	if cacheDir == "auto" {
		cacheDir = expt.DefaultCacheDir()
	}
	suite := expt.NewSuite(expt.DefaultConfig(),
		expt.WithParallelism(*jobs), expt.WithCacheDir(cacheDir))
	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "reproduce: %v\n", err)
		os.Exit(1)
	}

	// Build every pipeline this invocation needs up front, -j wide; the
	// drivers below then render from warm pipelines in a fixed order.
	var prewarm []string
	switch {
	case all || *table2 || *fig6 || *fig7 || *fig8 || *kintra || *phased || *summary:
		prewarm = expt.AppOrder
	default:
		seen := map[string]bool{}
		add := func(names ...string) {
			for _, n := range names {
				if !seen[n] {
					seen[n] = true
					prewarm = append(prewarm, n)
				}
			}
		}
		if *fig2 {
			add(expt.Fig2Apps...)
		}
		if *fig4 || *fig5 {
			add(expt.Fig4Apps...)
		}
		if *wifail {
			add("wc")
		}
		if *margins {
			add("kmeans")
		}
	}
	if len(prewarm) > 0 {
		if err := suite.Prewarm(prewarm...); err != nil {
			fail(err)
		}
	}

	if all || *table1 {
		fmt.Print(expt.FormatTable1(expt.Table1()))
		fmt.Println()
	}
	if all || *table2 {
		rows, err := suite.Table2()
		if err != nil {
			fail(err)
		}
		fmt.Print(expt.FormatTable2(rows))
		fmt.Println()
	}
	if all || *fig2 {
		rows, err := suite.Fig2()
		if err != nil {
			fail(err)
		}
		fmt.Print(expt.FormatFig2(rows))
		fmt.Println()
	}
	if all || *fig4 {
		rows, err := suite.Fig4()
		if err != nil {
			fail(err)
		}
		fmt.Print(expt.FormatFig4(rows))
		fmt.Println()
	}
	if all || *fig5 {
		rows, err := suite.Fig5()
		if err != nil {
			fail(err)
		}
		fmt.Print(expt.FormatFig5(rows))
		fmt.Println()
	}
	if all || *fig6 {
		rows, err := suite.Fig6()
		if err != nil {
			fail(err)
		}
		fmt.Print(expt.FormatFig6(rows))
		fmt.Println()
	}
	if all || *fig7 {
		rows, err := suite.Fig7()
		if err != nil {
			fail(err)
		}
		fmt.Print(expt.FormatFig7(rows))
		fmt.Println()
	}
	if all || *fig8 {
		rows, err := suite.Fig8()
		if err != nil {
			fail(err)
		}
		fmt.Print(expt.FormatFig8(rows))
		fmt.Println()
	}
	if all || *kintra {
		fmt.Print(expt.MinKIntraNote())
		rows, err := suite.KIntraSweep()
		if err != nil {
			fail(err)
		}
		fmt.Print(expt.FormatKIntra(rows))
		fmt.Println()
	}
	if all || *stealing {
		st, err := expt.RunStealingStudy()
		if err != nil {
			fail(err)
		}
		fmt.Print(expt.FormatStealing(st))
		fmt.Println()
	}
	if all || *phased {
		rows, err := suite.PhaseAdaptiveStudy()
		if err != nil {
			fail(err)
		}
		fmt.Print(expt.FormatPhased(rows))
		fmt.Println()
	}
	if all || *wifail {
		rows, err := suite.WIFailureStudy("wc", []int{0, 3, 6, 12})
		if err != nil {
			fail(err)
		}
		fmt.Print(expt.FormatWIFailure(rows))
		fmt.Println()
	}
	if all || *margins {
		rows, err := suite.MarginSweep("kmeans", []float64{0.15, 0.25, 0.35, 0.45, 0.65})
		if err != nil {
			fail(err)
		}
		fmt.Print(expt.FormatMargin(rows))
		fmt.Println()
	}
	if all || *summary {
		rows, err := suite.Fig8()
		if err != nil {
			fail(err)
		}
		fmt.Print(expt.FormatSummary(expt.Summarize(rows)))
	}
}
