// Command reproduce regenerates the tables and figures of "Energy Efficient
// MapReduce with VFI-enabled Multicore Platforms" (DAC 2015) on the
// simulated platform. With no flags it regenerates everything.
//
// Usage:
//
//	reproduce [-j N] [-cache dir] [-table1] [-table2] [-fig2] [-fig4]
//	          [-fig5] [-fig6] [-fig7] [-fig8] [-kintra] [-stealing]
//	          [-summary]
//	          [-trace file.json] [-manifest file.json] [-v] [-debug-addr addr]
//
// -j bounds the number of concurrent simulations (default GOMAXPROCS);
// output is byte-identical whatever the value. -cache points at the design
// cache directory ("auto" = the user cache dir, "" = disabled).
//
// Telemetry never touches stdout: -trace writes a Chrome trace_event JSON
// file, -manifest a machine-readable run summary, -v progress lines on
// stderr, and -debug-addr serves net/http/pprof and expvar. The figure
// output is byte-identical with or without any of them.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"wivfi/internal/expt"
	"wivfi/internal/obs"
)

func main() {
	var (
		jobs     = flag.Int("j", 0, "max concurrent simulations (0 = GOMAXPROCS)")
		cache    = flag.String("cache", "auto", `design cache dir ("auto" = user cache dir, "" = disabled)`)
		table1   = flag.Bool("table1", false, "Table 1: benchmarks and datasets")
		table2   = flag.Bool("table2", false, "Table 2: V/F assignments")
		fig2     = flag.Bool("fig2", false, "Fig. 2: core utilization distributions")
		fig4     = flag.Bool("fig4", false, "Fig. 4: VFI 1 vs VFI 2")
		fig5     = flag.Bool("fig5", false, "Fig. 5: bottleneck utilization")
		fig6     = flag.Bool("fig6", false, "Fig. 6: placement strategies")
		fig7     = flag.Bool("fig7", false, "Fig. 7: execution-time breakdown")
		fig8     = flag.Bool("fig8", false, "Fig. 8: full-system EDP")
		kintra   = flag.Bool("kintra", false, "Section 7.2: (k_intra,k_inter) sweep")
		stealing = flag.Bool("stealing", false, "Section 4.3: task-stealing case study")
		summary  = flag.Bool("summary", false, "headline numbers (abstract)")
		phased   = flag.Bool("phased", false, "extension: phase-adaptive DVFS controllers")
		wifail   = flag.Bool("wifail", false, "extension: wireless-interface failure robustness")
		margins  = flag.Bool("margins", false, "sensitivity: V/F-selection margin sweep")
	)
	cli := obs.NewCLI(flag.CommandLine)
	flag.Parse()
	all := !(*table1 || *table2 || *fig2 || *fig4 || *fig5 || *fig6 ||
		*fig7 || *fig8 || *kintra || *stealing || *summary || *phased || *wifail || *margins)

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "reproduce: %v\n", err)
		os.Exit(1)
	}
	if err := cli.Start("reproduce"); err != nil {
		fail(err)
	}

	if *jobs <= 0 {
		*jobs = runtime.GOMAXPROCS(0)
	}
	cacheDir := *cache
	if cacheDir == "auto" {
		cacheDir = expt.DefaultCacheDir()
	}
	cfg := expt.DefaultConfig()
	suite := expt.NewSuite(cfg,
		expt.WithParallelism(*jobs), expt.WithCacheDir(cacheDir))
	obs.Logf("reproduce: -j %d, cache %q, config %s", *jobs, cacheDir, expt.ConfigHash(cfg))

	// Build every pipeline this invocation needs up front, -j wide; the
	// drivers below then render from warm pipelines in a fixed order.
	var prewarm []string
	switch {
	case all || *table2 || *fig6 || *fig7 || *fig8 || *kintra || *phased || *summary:
		prewarm = expt.AppOrder
	default:
		seen := map[string]bool{}
		add := func(names ...string) {
			for _, n := range names {
				if !seen[n] {
					seen[n] = true
					prewarm = append(prewarm, n)
				}
			}
		}
		if *fig2 {
			add(expt.Fig2Apps...)
		}
		if *fig4 || *fig5 {
			add(expt.Fig4Apps...)
		}
		if *wifail {
			add("wc")
		}
		if *margins {
			add("kmeans")
		}
	}
	if len(prewarm) > 0 {
		obs.Logf("reproduce: prewarming %d pipeline(s): %s", len(prewarm), strings.Join(prewarm, " "))
		sp := obs.StartSpan("prewarm", strings.Join(prewarm, " "))
		err := suite.Prewarm(prewarm...)
		sp.End()
		if err != nil {
			fail(err)
		}
	}

	// Each section prints its formatted block followed (except -summary,
	// which historically omits it) by a blank separator line. Rendering
	// through this table keeps stdout byte-for-byte what the per-section
	// if-blocks used to produce, telemetry or not.
	sections := []struct {
		name    string
		enabled bool
		newline bool
		render  func() (string, error)
	}{
		{"table1", all || *table1, true, func() (string, error) {
			return expt.FormatTable1(expt.Table1()), nil
		}},
		{"table2", all || *table2, true, func() (string, error) {
			rows, err := suite.Table2()
			if err != nil {
				return "", err
			}
			return expt.FormatTable2(rows), nil
		}},
		{"fig2", all || *fig2, true, func() (string, error) {
			rows, err := suite.Fig2()
			if err != nil {
				return "", err
			}
			return expt.FormatFig2(rows), nil
		}},
		{"fig4", all || *fig4, true, func() (string, error) {
			rows, err := suite.Fig4()
			if err != nil {
				return "", err
			}
			return expt.FormatFig4(rows), nil
		}},
		{"fig5", all || *fig5, true, func() (string, error) {
			rows, err := suite.Fig5()
			if err != nil {
				return "", err
			}
			return expt.FormatFig5(rows), nil
		}},
		{"fig6", all || *fig6, true, func() (string, error) {
			rows, err := suite.Fig6()
			if err != nil {
				return "", err
			}
			return expt.FormatFig6(rows), nil
		}},
		{"fig7", all || *fig7, true, func() (string, error) {
			rows, err := suite.Fig7()
			if err != nil {
				return "", err
			}
			return expt.FormatFig7(rows), nil
		}},
		{"fig8", all || *fig8, true, func() (string, error) {
			rows, err := suite.Fig8()
			if err != nil {
				return "", err
			}
			return expt.FormatFig8(rows), nil
		}},
		{"kintra", all || *kintra, true, func() (string, error) {
			rows, err := suite.KIntraSweep()
			if err != nil {
				return "", err
			}
			return expt.MinKIntraNote() + expt.FormatKIntra(rows), nil
		}},
		{"stealing", all || *stealing, true, func() (string, error) {
			st, err := expt.RunStealingStudy()
			if err != nil {
				return "", err
			}
			return expt.FormatStealing(st), nil
		}},
		{"phased", all || *phased, true, func() (string, error) {
			rows, err := suite.PhaseAdaptiveStudy()
			if err != nil {
				return "", err
			}
			return expt.FormatPhased(rows), nil
		}},
		{"wifail", all || *wifail, true, func() (string, error) {
			rows, err := suite.WIFailureStudy("wc", []int{0, 3, 6, 12})
			if err != nil {
				return "", err
			}
			return expt.FormatWIFailure(rows), nil
		}},
		{"margins", all || *margins, true, func() (string, error) {
			rows, err := suite.MarginSweep("kmeans", []float64{0.15, 0.25, 0.35, 0.45, 0.65})
			if err != nil {
				return "", err
			}
			return expt.FormatMargin(rows), nil
		}},
		{"summary", all || *summary, false, func() (string, error) {
			rows, err := suite.Fig8()
			if err != nil {
				return "", err
			}
			return expt.FormatSummary(expt.Summarize(rows)), nil
		}},
	}
	for _, sec := range sections {
		if !sec.enabled {
			continue
		}
		sp := obs.StartSpan("render", sec.name)
		out, err := sec.render()
		sp.End()
		if err != nil {
			fail(err)
		}
		fmt.Print(out)
		if sec.newline {
			fmt.Println()
		}
	}

	cs := suite.CacheStats()
	obs.Logf("reproduce: design cache: %d hit(s), %d miss(es), %d corrupt evicted",
		cs.Hits, cs.Misses, cs.CorruptEvicted)
	if err := cli.Finish(func(m *obs.Manifest) {
		m.Jobs = *jobs
		m.ConfigHash = expt.ConfigHash(cfg)
		m.CacheDir = cacheDir
		m.Cache = &obs.CacheSummary{Hits: cs.Hits, Misses: cs.Misses, CorruptEvicted: cs.CorruptEvicted}
	}); err != nil {
		fail(err)
	}
}
