// Command benchgate turns `go test -bench -benchmem` text into a
// machine-readable BENCH_des.json and gates benchmarks against committed
// expectations.
//
// Usage:
//
//	go test ./internal/noc -run '^$' -bench 'BenchmarkDES' -benchmem |
//	    benchgate -out BENCH_des.json -baseline testdata/BENCH_des.json -check
//
//	go test ./internal/lint -run '^$' -bench 'BenchmarkSuiteRun' -benchmem |
//	    benchgate -des=false -budget SuiteRun=60s -check
//
// Raw ns/op numbers vary across machines, so the DES gate never compares
// them directly. Instead it checks two machine-independent properties:
//
//   - the event engine's steady state is allocation-free (allocs/op and
//     B/op are exactly zero), and
//   - the self-relative speedup (reference-engine ns/op divided by
//     event-engine ns/op, both measured in the same process on the same
//     host) has not regressed below the committed snapshot's speedup by
//     more than -tolerance (a fraction, default 0.30).
//
// Those DES-specific gates (required benchmarks, allocation freedom, and
// the speedup floor) are on by default and can be switched off with
// -des=false when gating non-DES benchmarks. Independent of them, each
// repeatable -budget name=duration flag requires the named benchmark to
// be present and to finish within the given wall-clock budget per op — a
// deliberately loose, committed ceiling that catches order-of-magnitude
// latency blowups without chasing host noise.
//
// Without -check the command only parses and writes the JSON, which is how
// the committed snapshots are produced.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"
)

// eventBench and referenceBench are the two benchmarks whose ratio forms
// the speedup; allocFreeBenches must report zero allocations.
const (
	eventBench     = "DESEventEngine"
	referenceBench = "DESReferenceEngine"
)

var allocFreeBenches = []string{"DESEventEngine", "DESEventEngineMesh"}

// Bench is one parsed benchmark line.
type Bench struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Snapshot is the BENCH_des.json schema.
type Snapshot struct {
	Schema int `json:"schema"`
	// SpeedupRefOverEvent is reference ns/op divided by event ns/op — the
	// machine-independent number the gate tracks.
	SpeedupRefOverEvent float64 `json:"speedup_ref_over_event"`
	Benchmarks          []Bench `json:"benchmarks"`
}

// budgetFlag collects repeatable -budget name=duration pairs.
type budgetFlag map[string]time.Duration

func (b budgetFlag) String() string {
	names := make([]string, 0, len(b))
	for name := range b {
		names = append(names, name)
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, name := range names {
		parts[i] = name + "=" + b[name].String()
	}
	return strings.Join(parts, ",")
}

func (b budgetFlag) Set(s string) error {
	name, val, ok := strings.Cut(s, "=")
	if !ok || strings.TrimSpace(name) == "" {
		return fmt.Errorf("budget %q: want name=duration", s)
	}
	d, err := time.ParseDuration(val)
	if err != nil {
		return fmt.Errorf("budget %q: %w", s, err)
	}
	if d <= 0 {
		return fmt.Errorf("budget %q: duration must be positive", s)
	}
	b[strings.TrimSpace(name)] = d
	return nil
}

func main() {
	var (
		in       = flag.String("in", "-", "benchmark text to parse (- for stdin)")
		out      = flag.String("out", "", "write the parsed snapshot JSON here")
		baseline = flag.String("baseline", "", "committed snapshot to gate against")
		check    = flag.Bool("check", false, "enforce the configured gates")
		tol      = flag.Float64("tolerance", 0.30, "allowed fractional speedup regression vs baseline")
		des      = flag.Bool("des", true, "enforce the DES-specific required-bench, alloc, and speedup gates")
		budgets  = budgetFlag{}
	)
	flag.Var(budgets, "budget", "wall-clock gate `name=duration` requiring the named benchmark to stay within duration per op (repeatable)")
	flag.Parse()

	r := io.Reader(os.Stdin)
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	snap, err := parse(r)
	if err != nil {
		fatal(err)
	}
	if *out != "" {
		buf, err := json.MarshalIndent(snap, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("benchgate: parsed %d benchmarks, speedup %.2fx (reference/event)\n",
		len(snap.Benchmarks), snap.SpeedupRefOverEvent)

	if !*check {
		return
	}
	var base *Snapshot
	if *baseline != "" {
		buf, err := os.ReadFile(*baseline)
		if err != nil {
			fatal(err)
		}
		base = &Snapshot{}
		if err := json.Unmarshal(buf, base); err != nil {
			fatal(fmt.Errorf("baseline %s: %w", *baseline, err))
		}
	}
	if errs := gate(snap, base, *tol, *des, budgets); len(errs) > 0 {
		for _, e := range errs {
			fmt.Fprintf(os.Stderr, "benchgate: FAIL: %v\n", e)
		}
		os.Exit(1)
	}
	fmt.Println("benchgate: gates green")
}

// parse reads `go test -bench -benchmem` text and builds a snapshot. Lines
// that are not benchmark results (headers, PASS, ok) are skipped.
func parse(r io.Reader) (*Snapshot, error) {
	snap := &Snapshot{Schema: 1}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		b, ok := parseLine(sc.Text())
		if ok {
			snap.Benchmarks = append(snap.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(snap.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark lines found in input")
	}
	sort.Slice(snap.Benchmarks, func(i, j int) bool {
		return snap.Benchmarks[i].Name < snap.Benchmarks[j].Name
	})
	ref, refOK := find(snap.Benchmarks, referenceBench)
	ev, evOK := find(snap.Benchmarks, eventBench)
	if refOK && evOK && ev.NsPerOp > 0 {
		snap.SpeedupRefOverEvent = ref.NsPerOp / ev.NsPerOp
	}
	return snap, nil
}

// parseLine parses one result line, e.g.
//
//	BenchmarkDESEventEngine-8  200  5838468 ns/op  0 B/op  0 allocs/op
//
// The -8 GOMAXPROCS suffix is stripped so snapshots compare across hosts.
func parseLine(line string) (Bench, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return Bench{}, false
	}
	name := strings.TrimPrefix(f[0], "Benchmark")
	if i := strings.LastIndexByte(name, '-'); i >= 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Bench{}, false
	}
	b := Bench{Name: name, Iterations: iters}
	seenNs := false
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Bench{}, false
		}
		switch f[i+1] {
		case "ns/op":
			b.NsPerOp = v
			seenNs = true
		case "B/op":
			b.BytesPerOp = int64(v)
		case "allocs/op":
			b.AllocsPerOp = int64(v)
		}
	}
	return b, seenNs
}

// gate returns every violated invariant (empty means green). The DES
// gates (required benchmarks, allocation freedom, speedup floor) run
// only when des is true; the wall-clock budgets always apply.
func gate(snap, base *Snapshot, tol float64, des bool, budgets budgetFlag) []error {
	var errs []error
	if des {
		for _, name := range []string{eventBench, referenceBench} {
			if _, ok := find(snap.Benchmarks, name); !ok {
				errs = append(errs, fmt.Errorf("benchmark %s missing from input", name))
			}
		}
		for _, name := range allocFreeBenches {
			b, ok := find(snap.Benchmarks, name)
			if !ok {
				errs = append(errs, fmt.Errorf("benchmark %s missing from input", name))
				continue
			}
			if b.AllocsPerOp != 0 || b.BytesPerOp != 0 {
				errs = append(errs, fmt.Errorf("%s not allocation-free: %d B/op, %d allocs/op",
					name, b.BytesPerOp, b.AllocsPerOp))
			}
		}
		if base != nil && base.SpeedupRefOverEvent > 0 && snap.SpeedupRefOverEvent > 0 {
			floor := base.SpeedupRefOverEvent * (1 - tol)
			if snap.SpeedupRefOverEvent < floor {
				errs = append(errs, fmt.Errorf("speedup %.2fx below floor %.2fx (baseline %.2fx, tolerance %.0f%%)",
					snap.SpeedupRefOverEvent, floor, base.SpeedupRefOverEvent, tol*100))
			}
		}
	}
	names := make([]string, 0, len(budgets))
	for name := range budgets {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		budget := budgets[name]
		b, ok := find(snap.Benchmarks, name)
		if !ok {
			errs = append(errs, fmt.Errorf("budgeted benchmark %s missing from input", name))
			continue
		}
		if got := time.Duration(b.NsPerOp); got > budget {
			errs = append(errs, fmt.Errorf("%s took %v per op, over the %v budget", name, got, budget))
		}
	}
	return errs
}

func find(bs []Bench, name string) (Bench, bool) {
	for _, b := range bs {
		if b.Name == name {
			return b, true
		}
	}
	return Bench{}, false
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
	os.Exit(1)
}
