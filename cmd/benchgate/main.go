// Command benchgate turns `go test -bench -benchmem` text into a
// machine-readable BENCH_des.json and gates the DES engine benchmarks
// against a committed snapshot.
//
// Usage:
//
//	go test ./internal/noc -run '^$' -bench 'BenchmarkDES' -benchmem |
//	    benchgate -out BENCH_des.json -baseline testdata/BENCH_des.json -check
//
// Raw ns/op numbers vary across machines, so the gate never compares them
// directly. Instead it checks two machine-independent properties:
//
//   - the event engine's steady state is allocation-free (allocs/op and
//     B/op are exactly zero), and
//   - the self-relative speedup (reference-engine ns/op divided by
//     event-engine ns/op, both measured in the same process on the same
//     host) has not regressed below the committed snapshot's speedup by
//     more than -tolerance (a fraction, default 0.30).
//
// Without -check the command only parses and writes the JSON, which is how
// the committed snapshots are produced.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// eventBench and referenceBench are the two benchmarks whose ratio forms
// the speedup; allocFreeBenches must report zero allocations.
const (
	eventBench     = "DESEventEngine"
	referenceBench = "DESReferenceEngine"
)

var allocFreeBenches = []string{"DESEventEngine", "DESEventEngineMesh"}

// Bench is one parsed benchmark line.
type Bench struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Snapshot is the BENCH_des.json schema.
type Snapshot struct {
	Schema int `json:"schema"`
	// SpeedupRefOverEvent is reference ns/op divided by event ns/op — the
	// machine-independent number the gate tracks.
	SpeedupRefOverEvent float64 `json:"speedup_ref_over_event"`
	Benchmarks          []Bench `json:"benchmarks"`
}

func main() {
	var (
		in       = flag.String("in", "-", "benchmark text to parse (- for stdin)")
		out      = flag.String("out", "", "write the parsed snapshot JSON here")
		baseline = flag.String("baseline", "", "committed snapshot to gate against")
		check    = flag.Bool("check", false, "enforce the alloc and speedup gates")
		tol      = flag.Float64("tolerance", 0.30, "allowed fractional speedup regression vs baseline")
	)
	flag.Parse()

	r := io.Reader(os.Stdin)
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	snap, err := parse(r)
	if err != nil {
		fatal(err)
	}
	if *out != "" {
		buf, err := json.MarshalIndent(snap, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("benchgate: parsed %d benchmarks, speedup %.2fx (reference/event)\n",
		len(snap.Benchmarks), snap.SpeedupRefOverEvent)

	if !*check {
		return
	}
	var base *Snapshot
	if *baseline != "" {
		buf, err := os.ReadFile(*baseline)
		if err != nil {
			fatal(err)
		}
		base = &Snapshot{}
		if err := json.Unmarshal(buf, base); err != nil {
			fatal(fmt.Errorf("baseline %s: %w", *baseline, err))
		}
	}
	if errs := gate(snap, base, *tol); len(errs) > 0 {
		for _, e := range errs {
			fmt.Fprintf(os.Stderr, "benchgate: FAIL: %v\n", e)
		}
		os.Exit(1)
	}
	fmt.Println("benchgate: gates green")
}

// parse reads `go test -bench -benchmem` text and builds a snapshot. Lines
// that are not benchmark results (headers, PASS, ok) are skipped.
func parse(r io.Reader) (*Snapshot, error) {
	snap := &Snapshot{Schema: 1}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		b, ok := parseLine(sc.Text())
		if ok {
			snap.Benchmarks = append(snap.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(snap.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark lines found in input")
	}
	sort.Slice(snap.Benchmarks, func(i, j int) bool {
		return snap.Benchmarks[i].Name < snap.Benchmarks[j].Name
	})
	ref, refOK := find(snap.Benchmarks, referenceBench)
	ev, evOK := find(snap.Benchmarks, eventBench)
	if refOK && evOK && ev.NsPerOp > 0 {
		snap.SpeedupRefOverEvent = ref.NsPerOp / ev.NsPerOp
	}
	return snap, nil
}

// parseLine parses one result line, e.g.
//
//	BenchmarkDESEventEngine-8  200  5838468 ns/op  0 B/op  0 allocs/op
//
// The -8 GOMAXPROCS suffix is stripped so snapshots compare across hosts.
func parseLine(line string) (Bench, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return Bench{}, false
	}
	name := strings.TrimPrefix(f[0], "Benchmark")
	if i := strings.LastIndexByte(name, '-'); i >= 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Bench{}, false
	}
	b := Bench{Name: name, Iterations: iters}
	seenNs := false
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Bench{}, false
		}
		switch f[i+1] {
		case "ns/op":
			b.NsPerOp = v
			seenNs = true
		case "B/op":
			b.BytesPerOp = int64(v)
		case "allocs/op":
			b.AllocsPerOp = int64(v)
		}
	}
	return b, seenNs
}

// gate returns every violated invariant (empty means green).
func gate(snap, base *Snapshot, tol float64) []error {
	var errs []error
	for _, name := range []string{eventBench, referenceBench} {
		if _, ok := find(snap.Benchmarks, name); !ok {
			errs = append(errs, fmt.Errorf("benchmark %s missing from input", name))
		}
	}
	for _, name := range allocFreeBenches {
		b, ok := find(snap.Benchmarks, name)
		if !ok {
			errs = append(errs, fmt.Errorf("benchmark %s missing from input", name))
			continue
		}
		if b.AllocsPerOp != 0 || b.BytesPerOp != 0 {
			errs = append(errs, fmt.Errorf("%s not allocation-free: %d B/op, %d allocs/op",
				name, b.BytesPerOp, b.AllocsPerOp))
		}
	}
	if base != nil && base.SpeedupRefOverEvent > 0 && snap.SpeedupRefOverEvent > 0 {
		floor := base.SpeedupRefOverEvent * (1 - tol)
		if snap.SpeedupRefOverEvent < floor {
			errs = append(errs, fmt.Errorf("speedup %.2fx below floor %.2fx (baseline %.2fx, tolerance %.0f%%)",
				snap.SpeedupRefOverEvent, floor, base.SpeedupRefOverEvent, tol*100))
		}
	}
	return errs
}

func find(bs []Bench, name string) (Bench, bool) {
	for _, b := range bs {
		if b.Name == name {
			return b, true
		}
	}
	return Bench{}, false
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
	os.Exit(1)
}
