package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: wivfi/internal/noc
BenchmarkDESEventEngine-8       	     200	   5838468 ns/op	       0 B/op	       0 allocs/op
BenchmarkDESReferenceEngine-8   	      36	  32935141 ns/op	  688320 B/op	   16452 allocs/op
BenchmarkDESEventEngineMesh-8   	     224	   5354649 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	wivfi/internal/noc	5.858s
`

func parseSample(t *testing.T) *Snapshot {
	t.Helper()
	snap, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

func TestParse(t *testing.T) {
	snap := parseSample(t)
	if len(snap.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(snap.Benchmarks))
	}
	ev, ok := find(snap.Benchmarks, "DESEventEngine")
	if !ok {
		t.Fatal("DESEventEngine missing")
	}
	if ev.NsPerOp != 5838468 || ev.BytesPerOp != 0 || ev.AllocsPerOp != 0 || ev.Iterations != 200 {
		t.Fatalf("bad event bench: %+v", ev)
	}
	ref, ok := find(snap.Benchmarks, "DESReferenceEngine")
	if !ok {
		t.Fatal("DESReferenceEngine missing")
	}
	if ref.AllocsPerOp != 16452 {
		t.Fatalf("bad reference bench: %+v", ref)
	}
	want := ref.NsPerOp / ev.NsPerOp
	if snap.SpeedupRefOverEvent != want {
		t.Fatalf("speedup %v, want %v", snap.SpeedupRefOverEvent, want)
	}
}

func TestGateGreen(t *testing.T) {
	snap := parseSample(t)
	base := &Snapshot{Schema: 1, SpeedupRefOverEvent: snap.SpeedupRefOverEvent}
	if errs := gate(snap, base, 0.30); len(errs) != 0 {
		t.Fatalf("unexpected failures: %v", errs)
	}
	// No baseline: only the alloc gates apply.
	if errs := gate(snap, nil, 0.30); len(errs) != 0 {
		t.Fatalf("unexpected failures without baseline: %v", errs)
	}
}

func TestGateAllocRegression(t *testing.T) {
	snap := parseSample(t)
	for i := range snap.Benchmarks {
		if snap.Benchmarks[i].Name == "DESEventEngine" {
			snap.Benchmarks[i].AllocsPerOp = 7
		}
	}
	errs := gate(snap, nil, 0.30)
	if len(errs) != 1 || !strings.Contains(errs[0].Error(), "not allocation-free") {
		t.Fatalf("want one alloc failure, got %v", errs)
	}
}

func TestGateSpeedupRegression(t *testing.T) {
	snap := parseSample(t)
	base := &Snapshot{Schema: 1, SpeedupRefOverEvent: snap.SpeedupRefOverEvent * 2}
	errs := gate(snap, base, 0.30)
	if len(errs) != 1 || !strings.Contains(errs[0].Error(), "below floor") {
		t.Fatalf("want one speedup failure, got %v", errs)
	}
	// Within the band: half the baseline fails at 30% but passes at 60%.
	if errs := gate(snap, base, 0.60); len(errs) != 0 {
		t.Fatalf("60%% tolerance should pass, got %v", errs)
	}
}

func TestGateMissingBench(t *testing.T) {
	snap := &Snapshot{Schema: 1, Benchmarks: []Bench{{Name: "DESEventEngine"}}}
	errs := gate(snap, nil, 0.30)
	if len(errs) == 0 {
		t.Fatal("want failures for missing benchmarks")
	}
}

func TestParseLineRejectsGarbage(t *testing.T) {
	for _, line := range []string{
		"PASS",
		"ok  	wivfi/internal/noc	5.858s",
		"goos: linux",
		"BenchmarkX-8 notanumber 5 ns/op",
		"BenchmarkX-8 10 5 bogons",
	} {
		if _, ok := parseLine(line); ok {
			t.Fatalf("parseLine accepted %q", line)
		}
	}
	b, ok := parseLine("BenchmarkY 10 5 ns/op")
	if !ok || b.Name != "Y" {
		t.Fatalf("plain line without GOMAXPROCS suffix: %+v ok=%v", b, ok)
	}
}
