package main

import (
	"strings"
	"testing"
	"time"
)

const sample = `goos: linux
goarch: amd64
pkg: wivfi/internal/noc
BenchmarkDESEventEngine-8       	     200	   5838468 ns/op	       0 B/op	       0 allocs/op
BenchmarkDESReferenceEngine-8   	      36	  32935141 ns/op	  688320 B/op	   16452 allocs/op
BenchmarkDESEventEngineMesh-8   	     224	   5354649 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	wivfi/internal/noc	5.858s
`

func parseSample(t *testing.T) *Snapshot {
	t.Helper()
	snap, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

func TestParse(t *testing.T) {
	snap := parseSample(t)
	if len(snap.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(snap.Benchmarks))
	}
	ev, ok := find(snap.Benchmarks, "DESEventEngine")
	if !ok {
		t.Fatal("DESEventEngine missing")
	}
	if ev.NsPerOp != 5838468 || ev.BytesPerOp != 0 || ev.AllocsPerOp != 0 || ev.Iterations != 200 {
		t.Fatalf("bad event bench: %+v", ev)
	}
	ref, ok := find(snap.Benchmarks, "DESReferenceEngine")
	if !ok {
		t.Fatal("DESReferenceEngine missing")
	}
	if ref.AllocsPerOp != 16452 {
		t.Fatalf("bad reference bench: %+v", ref)
	}
	want := ref.NsPerOp / ev.NsPerOp
	if snap.SpeedupRefOverEvent != want {
		t.Fatalf("speedup %v, want %v", snap.SpeedupRefOverEvent, want)
	}
}

func TestGateGreen(t *testing.T) {
	snap := parseSample(t)
	base := &Snapshot{Schema: 1, SpeedupRefOverEvent: snap.SpeedupRefOverEvent}
	if errs := gate(snap, base, 0.30, true, nil); len(errs) != 0 {
		t.Fatalf("unexpected failures: %v", errs)
	}
	// No baseline: only the alloc gates apply.
	if errs := gate(snap, nil, 0.30, true, nil); len(errs) != 0 {
		t.Fatalf("unexpected failures without baseline: %v", errs)
	}
}

func TestGateAllocRegression(t *testing.T) {
	snap := parseSample(t)
	for i := range snap.Benchmarks {
		if snap.Benchmarks[i].Name == "DESEventEngine" {
			snap.Benchmarks[i].AllocsPerOp = 7
		}
	}
	errs := gate(snap, nil, 0.30, true, nil)
	if len(errs) != 1 || !strings.Contains(errs[0].Error(), "not allocation-free") {
		t.Fatalf("want one alloc failure, got %v", errs)
	}
}

func TestGateSpeedupRegression(t *testing.T) {
	snap := parseSample(t)
	base := &Snapshot{Schema: 1, SpeedupRefOverEvent: snap.SpeedupRefOverEvent * 2}
	errs := gate(snap, base, 0.30, true, nil)
	if len(errs) != 1 || !strings.Contains(errs[0].Error(), "below floor") {
		t.Fatalf("want one speedup failure, got %v", errs)
	}
	// Within the band: half the baseline fails at 30% but passes at 60%.
	if errs := gate(snap, base, 0.60, true, nil); len(errs) != 0 {
		t.Fatalf("60%% tolerance should pass, got %v", errs)
	}
}

func TestGateMissingBench(t *testing.T) {
	snap := &Snapshot{Schema: 1, Benchmarks: []Bench{{Name: "DESEventEngine"}}}
	errs := gate(snap, nil, 0.30, true, nil)
	if len(errs) == 0 {
		t.Fatal("want failures for missing benchmarks")
	}
}

// lintSample is what the analyzer-suite benchmark job feeds the budget
// gate: a single non-DES benchmark line.
const lintSample = `goos: linux
pkg: wivfi/internal/lint
BenchmarkSuiteRun-8 	       1	3164379494 ns/op	798999232 B/op	 9280609 allocs/op
PASS
ok  	wivfi/internal/lint	3.173s
`

func TestBudgetFlagSet(t *testing.T) {
	b := budgetFlag{}
	for _, good := range []string{"SuiteRun=60s", "Other=1500ms"} {
		if err := b.Set(good); err != nil {
			t.Fatalf("Set(%q): %v", good, err)
		}
	}
	if b["SuiteRun"] != 60*time.Second || b["Other"] != 1500*time.Millisecond {
		t.Fatalf("parsed budgets wrong: %v", b)
	}
	if got := b.String(); got != "Other=1.5s,SuiteRun=1m0s" {
		t.Fatalf("String() = %q", got)
	}
	for _, bad := range []string{"SuiteRun", "=60s", "SuiteRun=bogus", "SuiteRun=-5s", "SuiteRun=0s"} {
		if err := b.Set(bad); err == nil {
			t.Fatalf("Set(%q) should fail", bad)
		}
	}
}

func TestGateBudget(t *testing.T) {
	snap, err := parse(strings.NewReader(lintSample))
	if err != nil {
		t.Fatal(err)
	}
	// Within budget, DES gates off: green even though no DES bench exists.
	if errs := gate(snap, nil, 0.30, false, budgetFlag{"SuiteRun": 60 * time.Second}); len(errs) != 0 {
		t.Fatalf("unexpected failures: %v", errs)
	}
	// Over budget: exactly one failure naming the budget.
	errs := gate(snap, nil, 0.30, false, budgetFlag{"SuiteRun": time.Second})
	if len(errs) != 1 || !strings.Contains(errs[0].Error(), "over the 1s budget") {
		t.Fatalf("want one budget failure, got %v", errs)
	}
	// A budgeted benchmark that never ran must fail, not silently pass.
	errs = gate(snap, nil, 0.30, false, budgetFlag{"Ghost": time.Second})
	if len(errs) != 1 || !strings.Contains(errs[0].Error(), "Ghost missing") {
		t.Fatalf("want one missing-benchmark failure, got %v", errs)
	}
}

func TestGateDESToggle(t *testing.T) {
	snap, err := parse(strings.NewReader(lintSample))
	if err != nil {
		t.Fatal(err)
	}
	// With DES gates on, a lint-only snapshot fails the required-bench
	// checks; with them off it is green.
	if errs := gate(snap, nil, 0.30, true, nil); len(errs) == 0 {
		t.Fatal("DES gates should fail on a lint-only snapshot")
	}
	if errs := gate(snap, nil, 0.30, false, nil); len(errs) != 0 {
		t.Fatalf("disabled DES gates should pass: %v", errs)
	}
	// Budgets still apply with DES gates on.
	desSnap := parseSample(t)
	errs := gate(desSnap, nil, 0.30, true, budgetFlag{"DESEventEngine": time.Millisecond})
	if len(errs) != 1 || !strings.Contains(errs[0].Error(), "budget") {
		t.Fatalf("want one budget failure alongside green DES gates, got %v", errs)
	}
}

func TestParseLineRejectsGarbage(t *testing.T) {
	for _, line := range []string{
		"PASS",
		"ok  	wivfi/internal/noc	5.858s",
		"goos: linux",
		"BenchmarkX-8 notanumber 5 ns/op",
		"BenchmarkX-8 10 5 bogons",
	} {
		if _, ok := parseLine(line); ok {
			t.Fatalf("parseLine accepted %q", line)
		}
	}
	b, ok := parseLine("BenchmarkY 10 5 ns/op")
	if !ok || b.Name != "Y" {
		t.Fatalf("plain line without GOMAXPROCS suffix: %+v ok=%v", b, ok)
	}
}
