// Command wivfiload is the deterministic load generator and saturation
// benchmark for a running wivfid.
//
// Load mode (default) replays a seeded request schedule with bounded
// concurrency and reports client-side throughput, latency and the
// daemon-side counter deltas:
//
//	wivfiload -url http://localhost:8080 -n 200 -c 8 -seed 1 \
//	          -apps mm,wc -variants 4 [-stream]
//
// Saturation mode (-sat) measures the service's two paths: first it runs
// -cold distinct configurations (each a full design pipeline), then it
// replays -hot requests over those now-memoized configs, and reports cold
// vs hot QPS, the speedup, and the daemon-side tail latency derived from
// /metrics histogram deltas:
//
//	wivfiload -sat -url http://localhost:8080 -app mm -cold 4 -hot 200 \
//	          [-min-speedup 10]
//
// Both modes print one JSON report document on stdout. -min-speedup (with
// -sat) exits non-zero when the hot path fails to beat the cold path by
// the given factor — the CI gate for the result store.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"wivfi/internal/serve"
)

func main() {
	var (
		url  = flag.String("url", "http://localhost:8080", "wivfid base URL")
		conc = flag.Int("c", 8, "concurrent in-flight requests")
		seed = flag.Int64("seed", 1, "schedule seed (same seed, same requests)")

		n        = flag.Int("n", 100, "load mode: total requests")
		appsFlag = flag.String("apps", "mm", "load mode: comma-separated benchmarks to draw from")
		variants = flag.Int("variants", 2, "load mode: distinct config variants per app")
		stream   = flag.Bool("stream", false, "load mode: request NDJSON event streams")

		sat        = flag.Bool("sat", false, "run the saturation benchmark instead of plain load")
		app        = flag.String("app", "mm", "saturation: benchmark to design")
		cold       = flag.Int("cold", 4, "saturation: distinct cold configs (full pipelines)")
		hot        = flag.Int("hot", 200, "saturation: requests replayed over the warm configs")
		minSpeedup = flag.Float64("min-speedup", 0, "saturation: exit non-zero when hot/cold QPS falls below this factor (0 = no gate)")
	)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "wivfiload: %v\n", err)
		os.Exit(1)
	}
	emit := func(v any) {
		blob, err := json.MarshalIndent(v, "", "  ")
		if err != nil {
			fail(err)
		}
		fmt.Println(string(blob))
	}

	if *sat {
		rep, err := serve.RunSaturation(*url, serve.SaturationOptions{
			App: *app, ColdConfigs: *cold, HotRequests: *hot,
			Concurrency: *conc, Seed: *seed,
		})
		if err != nil {
			fail(err)
		}
		emit(rep)
		fmt.Fprintf(os.Stderr, "wivfiload: cold %.1f qps, hot %.1f qps, speedup %.1fx, hot p50 %gms p99 %gms\n",
			rep.ColdQPS, rep.HotQPS, rep.SpeedupX, rep.HotP50MS, rep.HotP99MS)
		if *minSpeedup > 0 && rep.SpeedupX < *minSpeedup {
			fail(fmt.Errorf("hot path speedup %.1fx below required %.1fx", rep.SpeedupX, *minSpeedup))
		}
		return
	}

	rep, err := serve.RunLoad(*url, serve.LoadOptions{
		Requests:    *n,
		Concurrency: *conc,
		Seed:        *seed,
		Apps:        strings.Split(*appsFlag, ","),
		Variants:    *variants,
		Stream:      *stream,
	})
	if err != nil {
		fail(err)
	}
	emit(rep)
	fmt.Fprintf(os.Stderr, "wivfiload: %d requests, %d failures, %.1f qps sustained\n",
		rep.Requests, rep.Failures, rep.QPS)
	if rep.Failures > 0 {
		fail(fmt.Errorf("%d of %d requests failed", rep.Failures, rep.Requests))
	}
}
