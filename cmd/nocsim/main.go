// Command nocsim runs the interconnect in isolation: it builds a topology
// (mesh or WiNoC), synthesizes traffic, and evaluates it with both the
// analytic model and the cycle-accurate wormhole simulator.
//
// Usage:
//
//	nocsim -topo winoc -pattern uniform -inj 0.05 [-des] [-packets 2000]
//	       [-latency-percentiles] [-timeline dir]
//	       [-trace file.json] [-manifest file.json] [-v] [-debug-addr addr]
//
// -latency-percentiles appends a p50/p90/p95/p99 packet-latency line after
// the -des block; without it stdout is byte-identical to before the flag
// existed. -timeline writes per-link flit series and the packet-latency
// histogram (timeline.json + CSVs) to the given directory. The telemetry
// flags behave exactly as in cmd/reproduce: they never touch stdout.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"wivfi/internal/energy"
	"wivfi/internal/noc"
	"wivfi/internal/obs"
	"wivfi/internal/place"
	"wivfi/internal/platform"
	"wivfi/internal/timeline"
	"wivfi/internal/topo"
)

func main() {
	var (
		topoName = flag.String("topo", "winoc", "topology: mesh | winoc")
		pattern  = flag.String("pattern", "uniform", "traffic: uniform | hotspot | corners")
		inj      = flag.Float64("inj", 0.05, "injection rate (flits/cycle/node)")
		des      = flag.Bool("des", false, "also run the cycle-accurate simulator")
		sweep    = flag.Bool("sweep", false, "run a saturation-throughput sweep (cycle-accurate)")
		packets  = flag.Int("packets", 2000, "packet count for -des")
		seed     = flag.Int64("seed", 1, "rng seed")
		latPct   = flag.Bool("latency-percentiles", false, "print p50/p90/p95/p99 packet latency after -des")
	)
	cli := obs.NewCLI(flag.CommandLine)
	tcli := timeline.NewCLI(flag.CommandLine)
	flag.Parse()
	if err := cli.Start("nocsim"); err != nil {
		fatal(err)
	}
	tcli.Start("nocsim")

	chip := platform.DefaultChip()
	costs := noc.DefaultLinkCosts()
	var tp *topo.Topology
	var mode noc.RoutingMode
	var err error
	switch *topoName {
	case "mesh":
		tp = topo.Mesh(chip)
		mode = noc.XY
	case "winoc":
		tp, err = place.BuildTopology(chip, nil, place.CenterWIs(chip), topo.DefaultSmallWorldConfig())
		if err != nil {
			fatal(err)
		}
		mode = noc.UpDown
	default:
		fatal(fmt.Errorf("unknown topology %q", *topoName))
	}
	rt, err := noc.BuildRoutes(tp, costs, mode)
	if err != nil {
		fatal(err)
	}
	n := tp.NumSwitches()
	rng := rand.New(rand.NewSource(*seed))
	traffic := buildTraffic(*pattern, n, *inj, rng)

	nm := energy.DefaultNetworkModel()
	sp := obs.StartSpan("analytic", tp.Name)
	ana, err := noc.Analytic(rt, traffic, nm, noc.DefaultAnalyticConfig())
	sp.End()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s/%v, %s traffic at %.3f flits/cycle/node\n", tp.Name, mode, *pattern, *inj)
	fmt.Printf("  switches %d, avg degree %.2f, max degree %d, wireless interfaces %d\n",
		n, tp.AvgDegree(), tp.MaxDegree(), len(tp.WIs))
	fmt.Printf("  analytic: latency %.1f cycles, %.2f hops, %.1f pJ/flit, wireless share %.1f%%, max util %.2f\n",
		ana.AvgLatencyCycles, ana.AvgHops, ana.EnergyPJPerFlit, 100*ana.WirelessFraction, ana.MaxLinkUtilization)

	if *des {
		pkts := make([]noc.Packet, 0, *packets)
		horizon := int64(float64(*packets*4) / (*inj * float64(n)) * 1.2)
		sampler := newTrafficSampler(traffic)
		for i := 0; i < *packets; i++ {
			s, d := sampler.pick(rng)
			pkts = append(pkts, noc.Packet{
				ID: i, Src: s, Dst: d, Flits: 4,
				Inject: rng.Int63n(horizon + 1),
			})
		}
		sp := obs.StartSpan("des", tp.Name)
		var res *noc.DESStats
		if tcli.Collecting() {
			// the timeline run replays the same DES with link/latency probes,
			// so stats (and stdout) match the plain instrumented run exactly
			var series []timeline.Series
			res, series, err = noc.RunDESTimeline(rt, pkts, nm, noc.DefaultDESConfig(), "noc/"+*pattern+"/")
			if err == nil {
				timeline.Active().AddSeries(series...)
			}
		} else {
			res, err = noc.RunDESInstrumented(rt, pkts, nm, noc.DefaultDESConfig())
		}
		sp.End()
		if err != nil {
			fatal(err)
		}
		pjPerFlit := res.EnergyPJ / float64(res.Delivered*4)
		fmt.Printf("  des:      latency %.1f cycles (p50 %d, p99 %d, max %d), %.1f pJ/flit, wireless flit-hops %.1f%%, %d cycles\n",
			res.AvgLatencyCycles, res.Percentile(0.5), res.Percentile(0.99), res.MaxLatencyCycles, pjPerFlit,
			100*float64(res.WirelessFlitHops)/float64(res.TotalFlitHops+1), res.Cycles)
		hot := res.HottestLink()
		fmt.Printf("  hottest link: %d -> %d (util %.2f, %d flits)\n", hot.From, hot.To, hot.Utilization, hot.Flits)
		if *latPct {
			fmt.Printf("  latency percentiles: p50 %d, p90 %d, p95 %d, p99 %d cycles\n",
				res.Percentile(0.5), res.Percentile(0.9), res.Percentile(0.95), res.Percentile(0.99))
		}
	}
	if *sweep {
		rates := []float64{0.02, 0.05, 0.1, 0.15, 0.2, 0.3}
		sp := obs.StartSpan("sweep", tp.Name)
		points, err := noc.SaturationSweep(rt, rates, *packets, 4, nm, noc.DefaultDESConfig(), *seed)
		sp.End()
		if err != nil {
			fatal(err)
		}
		fmt.Println("  saturation sweep (uniform random, cycle-accurate):")
		for _, pt := range points {
			fmt.Printf("    inj=%.2f latency=%.1f cycles\n", pt.InjectionRate, pt.AvgLatency)
		}
	}
	set, terr := tcli.Finish()
	if terr != nil {
		fatal(terr)
	}
	if err := cli.Finish(func(m *obs.Manifest) {
		m.Histograms = timeline.ManifestSummaries(set)
	}); err != nil {
		fatal(err)
	}
}

// buildTraffic synthesizes a named traffic matrix at the injection rate.
func buildTraffic(pattern string, n int, inj float64, rng *rand.Rand) [][]float64 {
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
	}
	switch pattern {
	case "uniform":
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j {
					m[i][j] = inj / float64(n-1)
				}
			}
		}
	case "hotspot":
		// 20% of traffic converges on switch 0
		for i := 1; i < n; i++ {
			m[i][0] = inj * 0.2
			for j := 0; j < n; j++ {
				if j != i && j != 0 {
					m[i][j] = inj * 0.8 / float64(n-2)
				}
			}
		}
	case "corners":
		corners := []int{0, 7, 56, 63}
		for _, s := range corners {
			for _, d := range corners {
				if s != d {
					m[s][d] = inj * float64(n) / 12
				}
			}
		}
	default:
		fatal(fmt.Errorf("unknown pattern %q", pattern))
	}
	_ = rng
	return m
}

// trafficSampler draws (src, dst) pairs proportional to a traffic matrix.
// The matrix total and a row-major flattened copy are computed once; the
// per-call selection walk subtracts entries one by one in the same order
// as the original nested scan, so the sampled sequence (and downstream
// stdout) is unchanged while the per-call cost drops from a full n^2
// matrix rescan to a single early-exiting pass over a flat slice.
type trafficSampler struct {
	n     int
	flat  []float64
	total float64
}

func newTrafficSampler(m [][]float64) *trafficSampler {
	s := &trafficSampler{n: len(m), flat: make([]float64, 0, len(m)*len(m))}
	for i := range m {
		for _, v := range m[i] {
			s.flat = append(s.flat, v)
			s.total += v
		}
	}
	return s
}

func (s *trafficSampler) pick(rng *rand.Rand) (int, int) {
	x := rng.Float64() * s.total
	for k, v := range s.flat {
		x -= v
		if x <= 0 {
			return k / s.n, k % s.n
		}
	}
	return 0, 1
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "nocsim: %v\n", err)
	os.Exit(1)
}
