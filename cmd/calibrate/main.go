// Command calibrate is the closed-loop tool that produced the calibrated
// Reduce-phase work levels in internal/apps/model.go: it measures each
// benchmark's utilization group means on the non-VFI baseline and adjusts
// the levels until they hit the Table 2 band targets, then prints the
// converged constants. Run it after changing platform or network models to
// re-derive the application calibration.
//
// The telemetry flags (-trace, -manifest, -v, -debug-addr) behave exactly
// as in cmd/reproduce: they never touch stdout. -timeline writes each
// benchmark's per-iteration convergence series (measured group means and
// the residual band error) to the given directory.
package main

import (
	"flag"
	"fmt"
	"os"

	"wivfi/internal/obs"
	"wivfi/internal/timeline"
)

func main() {
	cli := obs.NewCLI(flag.CommandLine)
	tcli := timeline.NewCLI(flag.CommandLine)
	flag.Parse()
	if err := cli.Start("calibrate"); err != nil {
		fatal(err)
	}
	tcli.Start("calibrate")
	tune()
	set, terr := tcli.Finish()
	if terr != nil {
		fatal(terr)
	}
	if err := cli.Finish(func(m *obs.Manifest) {
		m.Histograms = timeline.ManifestSummaries(set)
	}); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "calibrate: %v\n", err)
	os.Exit(1)
}
