// Command calibrate is the closed-loop tool that produced the calibrated
// Reduce-phase work levels in internal/apps/model.go: it measures each
// benchmark's utilization group means on the non-VFI baseline and adjusts
// the levels until they hit the Table 2 band targets, then prints the
// converged constants. Run it after changing platform or network models to
// re-derive the application calibration.
package main

func main() {
	tune()
}
