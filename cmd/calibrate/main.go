// Command calibrate is the closed-loop tool that produced the calibrated
// Reduce-phase work levels in internal/apps/model.go: it measures each
// benchmark's utilization group means on the non-VFI baseline and adjusts
// the levels until they hit the Table 2 band targets, then prints the
// converged constants. Run it after changing platform or network models to
// re-derive the application calibration.
//
// The telemetry flags (-trace, -manifest, -v, -debug-addr) behave exactly
// as in cmd/reproduce: they never touch stdout.
package main

import (
	"flag"
	"fmt"
	"os"

	"wivfi/internal/obs"
)

func main() {
	cli := obs.NewCLI(flag.CommandLine)
	flag.Parse()
	if err := cli.Start("calibrate"); err != nil {
		fatal(err)
	}
	tune()
	if err := cli.Finish(nil); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "calibrate: %v\n", err)
	os.Exit(1)
}
