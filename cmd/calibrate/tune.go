package main

import (
	"fmt"
	"math"

	"wivfi/internal/apps"
	"wivfi/internal/obs"
	"wivfi/internal/sim"
	"wivfi/internal/stats"
	"wivfi/internal/timeline"
)

// tune iteratively adjusts each app's reduce levels until the measured
// NVFI-mesh utilization group means hit the Table 2 band targets, then
// prints the converged constants for pasting into model.go.
func tune() {
	targets := map[string][4]float64{
		"mm":     {0.490, 0.525, 0.575, 0.630},
		"hist":   {0.490, 0.520, 0.580, 0.630},
		"pca":    {0.465, 0.480, 0.500, 0.520},
		"lr":     {0.490, 0.530, 0.580, 0.630},
		"wc":     {0.400, 0.420, 0.580, 0.700},
		"kmeans": {0.080, 0.100, 0.390, 0.430},
	}
	masterFactor := map[string]float64{
		// master reduce level as a multiple of its own target position
		"mm": 0, "hist": 0, "pca": 0, "lr": 0, "wc": 0, "kmeans": 0,
	}
	_ = masterFactor
	cfg := sim.DefaultBuildConfig()
	base, _ := sim.NVFIMesh(cfg)
	for _, app := range apps.All() {
		sp := obs.StartSpan("calibrate", app.Name)
		target := targets[app.Name]
		levels, master := app.ReduceLevels()
		for it := 0; it < 8; it++ {
			o := apps.Overrides{ReduceGroupSec: &levels, ReduceMasterSec: &master}
			w, err := app.WorkloadWithOverrides(64, o)
			if err != nil {
				panic(err)
			}
			res, err := sim.Run(w, base)
			if err != nil {
				panic(err)
			}
			prof := res.Profile()
			T := res.Report.ExecSeconds
			var meas [4]float64
			var maxErr float64
			for g := 0; g < 4; g++ {
				vals := append([]float64(nil), prof.Util[g*16:(g+1)*16]...)
				if g == 0 {
					vals = vals[1:] // exclude master from its group mean
				}
				meas[g] = stats.Mean(vals)
				if e := math.Abs(target[g] - meas[g]); e > maxErr {
					maxErr = e
				}
			}
			if col := timeline.Active(); col != nil {
				for g := 0; g < 4; g++ {
					col.Sampler(timeline.Meta{
						Name:      fmt.Sprintf("calibrate/%s/group/%d/util", app.Name, g),
						IndexUnit: "iteration",
						Unit:      "util",
					}, 1, timeline.Mean).Add(int64(it), meas[g])
				}
				col.Sampler(timeline.Meta{
					Name:      fmt.Sprintf("calibrate/%s/band-error", app.Name),
					IndexUnit: "iteration",
					Unit:      "util",
				}, 1, timeline.Mean).Add(int64(it), maxErr)
			}
			done := true
			for g := 0; g < 4; g++ {
				delta := (target[g] - meas[g]) * T
				if levels[g]+delta > 0 {
					levels[g] += delta
				}
				if delta > 0.005 || delta < -0.005 {
					done = false
				}
			}
			// keep the master's relative position: scale with its group's
			// level change only when explicitly overridden (master != 0)
			if done || it == 7 {
				fmt.Printf("%-7s levels=[4]float64{%.4f, %.4f, %.4f, %.4f} master=%.4f meas=[%.3f %.3f %.3f %.3f] T=%.3f masterUtil=%.3f\n",
					app.Name, levels[0], levels[1], levels[2], levels[3], master,
					meas[0], meas[1], meas[2], meas[3], T, prof.Util[0])
				break
			}
		}
		sp.End()
	}
}
