// Command wivfisweep runs a parametric scenario sweep from a spec file
// and writes the aggregate atlas.
//
//	wivfisweep -spec sweep.json -journal sweep.ndjson -atlas atlas.json -j 8
//
// The spec document (see internal/sweep.Spec) names the axes — mesh
// sizes, VFI island counts and splits, benchmarks, frequency margins,
// governor policies — and the tool expands the cross product, drops
// infeasible grid points, and fans the rest over a bounded worker pool.
// Every finished scenario is appended to the -journal NDJSON file;
// rerunning with the same journal skips completed scenarios and, once
// all scenarios are in, produces a byte-identical atlas — the basis of
// the CI kill+resume check (use -max to stop a run partway through
// deterministically).
//
// The atlas text report goes to stdout; -atlas writes the JSON document.
// Scenario failures are recorded in the journal and counted, not fatal.
// -fail-on-outliers exits non-zero when any scenario's DES-vs-analytic
// latency deviation exceeds the spec's tolerance — the CI fidelity gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"wivfi/internal/expt"
	"wivfi/internal/obs"
	"wivfi/internal/sweep"
)

func main() {
	var (
		specPath  = flag.String("spec", "", "sweep spec JSON file (required)")
		journal   = flag.String("journal", "", "resumable NDJSON journal; existing records are skipped, new ones appended")
		atlasPath = flag.String("atlas", "", "write the aggregate atlas JSON document here")
		jobs      = flag.Int("j", 0, "concurrent scenarios (default: GOMAXPROCS)")
		cacheDir  = flag.String("cache", expt.DefaultCacheDir(), "design cache directory (empty disables caching)")
		maxScen   = flag.Int("max", 0, "stop after N fresh scenarios, in key order (deterministic interrupted-sweep stand-in; 0 = run all)")
		failOut   = flag.Bool("fail-on-outliers", false, "exit non-zero when any scenario exceeds the spec's analytic tolerance")
	)
	cli := obs.NewCLI(flag.CommandLine)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "wivfisweep: %v\n", err)
		os.Exit(1)
	}
	if *specPath == "" {
		fail(fmt.Errorf("-spec is required (a sweep spec JSON file)"))
	}
	if err := cli.Start("wivfisweep"); err != nil {
		fail(err)
	}
	spec, err := sweep.LoadSpec(*specPath)
	if err != nil {
		fail(err)
	}

	res, err := sweep.Run(spec, sweep.Options{
		JournalPath:  *journal,
		Parallelism:  *jobs,
		CacheDir:     *cacheDir,
		MaxScenarios: *maxScen,
		OnProgress: func(done, total int) {
			obs.Logf("sweep %s: %d/%d scenarios", spec.Name, done, total)
		},
	})
	if err != nil {
		fail(err)
	}

	fmt.Print(res.Atlas.Format())
	if *atlasPath != "" {
		blob, err := json.MarshalIndent(res.Atlas, "", "  ")
		if err != nil {
			fail(err)
		}
		if err := os.WriteFile(*atlasPath, append(blob, '\n'), 0o644); err != nil {
			fail(err)
		}
	}

	fmt.Fprintf(os.Stderr, "wivfisweep: %d planned (%d infeasible grid points), %d resumed, %d completed (%d cache hits, %d errors), %d remaining, %d outliers\n",
		res.Planned, res.Infeasible, res.Resumed, res.Completed, res.CacheHits, res.Errors, res.Remaining, len(res.Atlas.Outliers))
	if err := cli.Finish(func(m *obs.Manifest) {
		m.Jobs = *jobs
		m.CacheDir = *cacheDir
	}); err != nil {
		fail(err)
	}
	if *failOut && len(res.Atlas.Outliers) > 0 {
		fail(fmt.Errorf("%d scenarios exceed the analytic tolerance %g", len(res.Atlas.Outliers), spec.AnalyticTolerance))
	}
}
