// Command vfiplan runs the paper's VFI design flow (Fig. 3) for one
// benchmark and prints the clustering, V/F assignment and bottleneck
// re-assignment.
//
// Usage:
//
//	vfiplan -app pca [-islands 4] [-margin 0.35] [-timeline dir]
//	        [-trace file.json] [-manifest file.json] [-v] [-debug-addr addr]
//
// -timeline writes the plan's V/F design-step tracks (VFI 1 -> VFI 2 per
// island) and the profiled per-core utilization series to the given
// directory. The telemetry flags behave exactly as in cmd/reproduce: they
// never touch stdout.
package main

import (
	"flag"
	"fmt"
	"os"

	"wivfi/internal/apps"
	"wivfi/internal/obs"
	"wivfi/internal/platform"
	"wivfi/internal/sim"
	"wivfi/internal/stats"
	"wivfi/internal/timeline"
	"wivfi/internal/vfi"
)

func main() {
	var (
		appName     = flag.String("app", "pca", "benchmark: "+fmt.Sprint(apps.Names()))
		islands     = flag.Int("islands", 4, "number of VFI islands")
		margin      = flag.Float64("margin", 0.35, "frequency headroom margin for V/F selection")
		saveProfile = flag.String("save-profile", "", "write the measured profile to this JSON file")
		loadProfile = flag.String("load-profile", "", "plan from a previously saved profile instead of re-profiling")
		saveVFI     = flag.String("save-vfi", "", "write the final VFI 2 configuration to this JSON file")
	)
	cli := obs.NewCLI(flag.CommandLine)
	tcli := timeline.NewCLI(flag.CommandLine)
	flag.Parse()
	if err := cli.Start("vfiplan"); err != nil {
		fatal(err)
	}
	tcli.Start("vfiplan")

	app, err := apps.ByName(*appName)
	if err != nil {
		fatal(err)
	}
	var prof platform.Profile
	if *loadProfile != "" {
		f, err := os.Open(*loadProfile)
		if err != nil {
			fatal(err)
		}
		prof, err = platform.ReadProfile(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	} else {
		cfg := sim.DefaultBuildConfig()
		w, err := app.Workload(cfg.Chip.NumCores())
		if err != nil {
			fatal(err)
		}
		probe, err := sim.NVFIMesh(cfg)
		if err != nil {
			fatal(err)
		}
		sp := obs.StartSpan("probe-sim", app.Name)
		res, err := sim.Run(w, probe)
		sp.End()
		if err != nil {
			fatal(err)
		}
		prof = res.Profile()
	}
	if *saveProfile != "" {
		f, err := os.Create(*saveProfile)
		if err != nil {
			fatal(err)
		}
		if err := platform.WriteProfile(f, prof); err != nil {
			fatal(err)
		}
		f.Close()
		fmt.Printf("profile written to %s\n", *saveProfile)
	}

	opts := vfi.DefaultOptions()
	opts.NumIslands = *islands
	opts.FreqMargin = *margin
	sp := obs.StartSpan("vfi-design", app.Name)
	plan, err := vfi.Design(prof, opts)
	sp.End()
	if err != nil {
		fatal(err)
	}

	fmt.Printf("VFI plan for %s (%d cores, %d islands, margin %.2f)\n",
		app.Name, len(prof.Util), *islands, *margin)
	fmt.Printf("clustering objective (Eq. 1) = %.4f\n", plan.ClusterCost)
	islandsOf := plan.VFI1.Islands()
	for j, cores := range islandsOf {
		var us []float64
		for _, c := range cores {
			us = append(us, prof.Util[c])
		}
		marker := ""
		for _, r := range plan.RaisedIslands {
			if r == j {
				marker = "  <- raised in VFI 2"
			}
		}
		fmt.Printf("  island %d: VFI1 %-9v VFI2 %-9v mean-util %.3f cores %v%s\n",
			j, plan.VFI1.Points[j], plan.VFI2.Points[j], stats.Mean(us), cores, marker)
	}
	fmt.Printf("bottleneck cores: %v (pattern homogeneous: %v)\n",
		plan.Bottlenecks, plan.HomogeneousPattern)
	if col := timeline.Active(); col != nil {
		for j := range plan.VFI1.Points {
			tr := col.Track(timeline.Meta{
				Name:      fmt.Sprintf("vfi/%s/island/%d/vf", app.Name, j),
				IndexUnit: "design-step",
				Unit:      "V/GHz",
			})
			tr.Set(0, plan.VFI1.Points[j].String())
			tr.Set(1, plan.VFI2.Points[j].String())
		}
		util := col.Sampler(timeline.Meta{
			Name:      fmt.Sprintf("vfi/%s/core-util", app.Name),
			IndexUnit: "core",
			Unit:      "util",
		}, 1, timeline.Mean)
		for c, u := range prof.Util {
			util.Add(int64(c), u)
		}
	}
	if *saveVFI != "" {
		f, err := os.Create(*saveVFI)
		if err != nil {
			fatal(err)
		}
		if err := platform.WriteVFIConfig(f, plan.VFI2); err != nil {
			fatal(err)
		}
		f.Close()
		fmt.Printf("VFI 2 configuration written to %s\n", *saveVFI)
	}
	set, terr := tcli.Finish()
	if terr != nil {
		fatal(terr)
	}
	if err := cli.Finish(func(m *obs.Manifest) {
		m.Histograms = timeline.ManifestSummaries(set)
	}); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "vfiplan: %v\n", err)
	os.Exit(1)
}
