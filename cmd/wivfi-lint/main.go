// Command wivfi-lint runs the repo's custom analyzer suite
// (internal/lint): determinism, nilsafe, stdoutpure, countersafe. It
// prints one `file:line: [analyzer] message` diagnostic per finding (or a
// JSON array with -json) and exits non-zero when any contract is violated.
//
// Usage:
//
//	wivfi-lint ./...
//	wivfi-lint -only determinism,stdoutpure ./internal/noc
//	wivfi-lint -json ./... > lint.json
package main

import (
	"os"

	"wivfi/internal/lint"
)

func main() {
	cwd, err := os.Getwd()
	if err != nil {
		os.Stderr.WriteString("wivfi-lint: " + err.Error() + "\n")
		os.Exit(lint.ExitError)
	}
	os.Exit(lint.RunCLI(os.Args[1:], cwd, os.Stdout, os.Stderr))
}
