// Command mrsim runs one benchmark end-to-end on a chosen system
// configuration and prints its phase timeline, energy and EDP.
//
// Usage:
//
//	mrsim -app wc -system vfi-winoc [-strategy max-wireless] [-vfi1]
//	mrsim -app wc -policy cap [-cap 120] [-decision-log wc.ndjson]
//	mrsim -app kmeans -real -scale 0.05
//	mrsim -app wc -real -trace trace.json -manifest manifest.json
//
// -policy runs the benchmark's VFI 2 mesh under a closed-loop DVFS
// governor (static holds the paper plan, util re-decides island V/F from
// live utilization, cap adds a chip core-power cap set by -cap) and
// appends the governor's decision summary; -decision-log writes the full
// per-phase decision log as NDJSON. The log is a pure function of the
// configuration: byte-identical across -j levels and cache states.
//
// -j and -cache mirror the reproduce flags: -j bounds the concurrent
// simulations of the pipeline build, -cache points at the shared design
// cache ("auto" = the user cache dir, "" = disabled). -timeline writes
// time-resolved series to a directory: in simulator mode the benchmark's
// deterministic phase/energy/heatmap series, with -real the live
// MapReduce engine's per-worker phase tracks, steal-rate and queue-depth
// series. -trace, -manifest, -v and -debug-addr are the usual telemetry
// flags; none of them touches stdout.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"wivfi/internal/apps"
	"wivfi/internal/expt"
	"wivfi/internal/governor"
	"wivfi/internal/obs"
	"wivfi/internal/sim"
	"wivfi/internal/timeline"
)

func main() {
	var (
		appName  = flag.String("app", "wc", "benchmark: "+fmt.Sprint(apps.Names()))
		system   = flag.String("system", "vfi-winoc", "system: nvfi-mesh | vfi-mesh | vfi-winoc")
		strategy = flag.String("strategy", "best", "WiNoC placement: min-hop | max-wireless | best")
		useVFI1  = flag.Bool("vfi1", false, "use the VFI 1 configuration (before re-assignment)")
		real     = flag.Bool("real", false, "run the real MapReduce implementation instead of the simulator")
		scale    = flag.Float64("scale", 0.05, "input scale for -real (1.0 = paper-shaped datasets)")
		workers  = flag.Int("workers", 8, "worker goroutines for -real")
		jobs     = flag.Int("j", 0, "max concurrent simulations (0 = GOMAXPROCS)")
		cache    = flag.String("cache", "auto", `design cache dir ("auto" = user cache dir, "" = disabled)`)
		policy   = flag.String("policy", "", "run the VFI 2 mesh under a closed-loop DVFS governor: static | util | cap")
		capWatts = flag.Float64("cap", expt.DefaultGovernorCapW, "chip core-power cap in watts for -policy cap")
		decLog   = flag.String("decision-log", "", "write the governor decision log (NDJSON) to this file")
	)
	cli := obs.NewCLI(flag.CommandLine)
	tcli := timeline.NewCLI(flag.CommandLine)
	flag.Parse()
	if err := cli.Start("mrsim"); err != nil {
		fatal(err)
	}
	tcli.Start("mrsim")
	if *jobs <= 0 {
		*jobs = runtime.GOMAXPROCS(0)
	}
	cacheDir := *cache
	if cacheDir == "auto" {
		cacheDir = expt.DefaultCacheDir()
	}
	cfg := expt.DefaultConfig()
	finish := func(suite *expt.Suite) {
		set, terr := tcli.Finish()
		if terr != nil {
			fatal(terr)
		}
		if err := cli.Finish(func(m *obs.Manifest) {
			m.Jobs = *jobs
			m.ConfigHash = expt.ConfigHash(cfg)
			if suite != nil {
				m.CacheDir = cacheDir
				cs := suite.CacheStats()
				m.Cache = &obs.CacheSummary{Hits: cs.Hits, Misses: cs.Misses, CorruptEvicted: cs.CorruptEvicted}
			}
			m.Histograms = timeline.ManifestSummaries(set)
		}); err != nil {
			fatal(err)
		}
	}

	app, err := apps.ByName(*appName)
	if err != nil {
		fatal(err)
	}
	if *real && *policy != "" {
		fatal(fmt.Errorf("-policy governs the simulator's VFI 2 mesh; it cannot be combined with -real"))
	}
	if *real {
		obs.Logf("mrsim: running real %s at scale %g with %d workers", app.Name, *scale, *workers)
		res, err := app.RunReal(*scale, *workers)
		if err != nil {
			fatal(err)
		}
		fmt.Println(res.Summary)
		fmt.Printf("phases: split=%v map=%v reduce=%v merge=%v; %d tasks, %d steals\n",
			res.Stats.SplitTime, res.Stats.MapTime, res.Stats.ReduceTime, res.Stats.MergeTime,
			res.Stats.Tasks, res.Stats.Steals)
		finish(nil)
		return
	}

	suite := expt.NewSuite(cfg,
		expt.WithParallelism(*jobs), expt.WithCacheDir(cacheDir))
	pl, err := suite.Pipeline(app.Name)
	if err != nil {
		fatal(err)
	}
	if tcli.Collecting() {
		if err := suite.CollectTimelines(timeline.Active(), app.Name); err != nil {
			fatal(err)
		}
	}
	printRun := func(run *sim.RunResult) {
		fmt.Printf("%s on %s\n", app.Name, run.System)
		fmt.Printf("  %-8s %-5s %10s %12s %12s %10s\n", "phase", "iter", "seconds", "net-lat(cyc)", "net-energy(J)", "steals")
		for _, ph := range run.Phases {
			fmt.Printf("  %-8v %-5d %10.4f %12.1f %12.4f %10d\n",
				ph.Kind, ph.Iteration, ph.Seconds, ph.NetLatencyCycles, ph.NetJ, ph.Steals)
		}
		r := run.Report
		fmt.Printf("total: %.4f s, %.2f J (core dyn %.2f + leak %.2f + net %.2f), EDP %.3f J.s\n",
			r.ExecSeconds, r.TotalJ(), r.CoreDynamicJ, r.CoreLeakageJ, r.NetworkJ, r.EDP())
		e, en, edp := run.Report.Relative(pl.Baseline.Report)
		fmt.Printf("vs NVFI mesh: exec %.3fx, energy %.3fx, EDP %.3fx\n", e, en, edp)
	}

	if *policy != "" {
		pol, err := governor.ParsePolicy(*policy)
		if err != nil {
			fatal(err)
		}
		capW := 0.0
		if pol == governor.Cap {
			capW = *capWatts
		}
		log := governor.NewLog()
		run, sum, err := expt.GovernedMesh(cfg, pl, pol, capW, log, nil)
		if err != nil {
			fatal(err)
		}
		printRun(run)
		fmt.Printf("governor: policy %s, %d decisions, %d transitions, %d sheds, %d violations, max %.1f W measured / %.1f W worst case",
			sum.Policy, sum.Decisions, sum.Transitions, sum.Sheds, sum.CapViolations, sum.MaxPowerW, sum.WorstCasePowerW)
		if pol == governor.Cap {
			fmt.Printf(" (cap %.1f W)", sum.CapW)
		}
		fmt.Println()
		if *decLog != "" {
			blob, err := log.NDJSON()
			if err != nil {
				fatal(err)
			}
			if err := os.WriteFile(*decLog, blob, 0o644); err != nil {
				fatal(err)
			}
			obs.Logf("mrsim: decision log written to %s", *decLog)
		}
		finish(suite)
		return
	}

	var run *sim.RunResult
	switch *system {
	case "nvfi-mesh":
		run = pl.Baseline
	case "vfi-mesh":
		if *useVFI1 {
			run = pl.VFI1Mesh
		} else {
			run = pl.VFI2Mesh
		}
	case "vfi-winoc":
		switch *strategy {
		case "min-hop":
			run = pl.WiNoC[sim.MinHop]
		case "max-wireless":
			run = pl.WiNoC[sim.MaxWireless]
		case "best":
			run = pl.BestWiNoC()
		default:
			fatal(fmt.Errorf("unknown strategy %q", *strategy))
		}
	default:
		fatal(fmt.Errorf("unknown system %q", *system))
	}

	printRun(run)
	finish(suite)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "mrsim: %v\n", err)
	os.Exit(1)
}
