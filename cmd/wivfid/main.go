// Command wivfid serves the experiment pipeline over HTTP: concurrent
// "design my chip for this benchmark" requests with admission control,
// per-config deduplication, an in-memory result store over the on-disk
// design cache, and a live observability plane.
//
// Usage:
//
//	wivfid [-addr host:port] [-j N] [-max-inflight N] [-cache dir]
//	       [-drain-timeout d] [-trace file.json] [-manifest file.json]
//	       [-v] [-debug-addr addr]
//
// Endpoints (all on one listener):
//
//	GET  /healthz               liveness + admission state
//	GET  /v1/apps               designable benchmarks
//	POST /v1/design             design request (JSON body)
//	GET  /v1/design?app=mm      the same, curl-friendly
//	GET  /metrics               Prometheus text format (counters, gauges,
//	                            request-latency histogram)
//	GET  /debug/pprof/, /debug/vars
//
// A design request returns one JSON result document, or — with
// "stream": "ndjson" or "sse" — a live event stream of the request's
// progress (admission, dedup outcome, cache classification, pipeline
// phases, final result with per-stage timings). Identical configurations
// deduplicate onto one execution and share byte-identical results.
//
// On SIGINT/SIGTERM the daemon stops admitting, drains in-flight requests
// (bounded by -drain-timeout) and exits cleanly.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"wivfi/internal/expt"
	"wivfi/internal/obs"
	"wivfi/internal/serve"
)

func main() {
	var (
		addr         = flag.String("addr", "localhost:8080", "listen address")
		jobs         = flag.Int("j", 0, "max concurrent simulations (0 = GOMAXPROCS)")
		maxInflight  = flag.Int("max-inflight", 64, "admission bound on concurrently served requests")
		cache        = flag.String("cache", "auto", `design cache dir ("auto" = user cache dir, "" = disabled)`)
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown budget for in-flight requests")
	)
	cli := obs.NewCLI(flag.CommandLine)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "wivfid: %v\n", err)
		os.Exit(1)
	}
	if err := cli.Start("wivfid"); err != nil {
		fail(err)
	}
	if *jobs <= 0 {
		*jobs = runtime.GOMAXPROCS(0)
	}
	cacheDir := *cache
	if cacheDir == "auto" {
		cacheDir = expt.DefaultCacheDir()
	}
	cfg := expt.DefaultConfig()
	srv := serve.NewServer(serve.Options{
		MaxInFlight: *maxInflight,
		Parallelism: *jobs,
		CacheDir:    cacheDir,
		Base:        cfg,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "wivfid: serving on http://%s (-j %d, max-inflight %d, cache %q, config %s)\n",
		ln.Addr(), *jobs, *maxInflight, cacheDir, expt.ConfigHash(cfg))
	fmt.Fprintf(os.Stderr, "wivfid: metrics at /metrics, pprof at /debug/pprof/, design API at /v1/design\n")

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "wivfid: %v, draining (up to %v)...\n", s, *drainTimeout)
	case err := <-serveErr:
		fail(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "wivfid: drain incomplete: %v\n", err)
	}
	if err := hs.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "wivfid: shutdown: %v\n", err)
	}
	if err := cli.Finish(func(m *obs.Manifest) {
		m.Jobs = *jobs
		m.ConfigHash = expt.ConfigHash(cfg)
		m.CacheDir = cacheDir
	}); err != nil {
		fail(err)
	}
	fmt.Fprintln(os.Stderr, "wivfid: bye")
}
