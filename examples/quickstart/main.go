// Quickstart: count words with the Phoenix++-style MapReduce engine.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	"wivfi/internal/mapreduce"
)

func main() {
	lines := []string{
		"the map phase turns records into key value pairs",
		"the reduce phase combines the values of every key",
		"the merge phase sorts the combined output",
	}

	job := mapreduce.Job[string, string, int]{
		Name: "quickstart-wordcount",
		Map: func(line string, emit func(string, int)) {
			for _, w := range strings.Fields(line) {
				emit(w, 1)
			}
		},
		Combine: func(a, b int) int { return a + b },
		Workers: 4,
		KeyLess: func(a, b string) bool { return a < b },
	}

	res, stats, err := mapreduce.Run(job, lines)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d unique words from %d records on %d workers (%d tasks, %d steals):\n",
		stats.UniqueKeys, stats.RecordsMapped, stats.Workers, stats.Tasks, stats.Steals)
	for _, p := range res.Pairs {
		if p.Value > 1 {
			fmt.Printf("  %-8s x%d\n", p.Key, p.Value)
		}
	}
}
