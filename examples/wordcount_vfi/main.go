// wordcount_vfi walks the paper's complete design flow for Word Count:
// profile the workload on the non-VFI baseline, design the VFI partition
// (clustering, V/F assignment, bottleneck re-assignment), then simulate the
// three systems of the evaluation — NVFI mesh, VFI mesh and VFI WiNoC —
// and compare execution time, energy and EDP.
//
//	go run ./examples/wordcount_vfi
package main

import (
	"fmt"
	"log"

	"wivfi/internal/apps"
	"wivfi/internal/sim"
	"wivfi/internal/vfi"
)

func main() {
	app, err := apps.ByName("wc")
	if err != nil {
		log.Fatal(err)
	}
	cfg := sim.DefaultBuildConfig()
	w, err := app.Workload(cfg.Chip.NumCores())
	if err != nil {
		log.Fatal(err)
	}

	// Step 1: characterize on a plain non-VFI mesh.
	probe, err := sim.NVFIMesh(cfg)
	if err != nil {
		log.Fatal(err)
	}
	probeRes, err := sim.Run(w, probe)
	if err != nil {
		log.Fatal(err)
	}
	prof := probeRes.Profile()
	fmt.Printf("profiled %s: %d threads, total traffic %.2e flits/us\n",
		app.Name, prof.NumCores(), prof.TotalTraffic())

	// Steps 2-4: the Fig. 3 design flow.
	plan, err := vfi.Design(prof, vfi.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("islands (VFI 2):")
	for j, cores := range plan.VFI2.Islands() {
		fmt.Printf("  island %d at %v: %d threads\n", j, plan.VFI2.Points[j], len(cores))
	}

	// Simulate the three systems.
	baseline, err := sim.NVFIMeshMapped(cfg, prof.Traffic)
	if err != nil {
		log.Fatal(err)
	}
	vfiMesh, err := sim.VFIMesh(cfg, plan.VFI2, prof.Traffic)
	if err != nil {
		log.Fatal(err)
	}
	winoc, err := sim.VFIWiNoC(cfg, plan.VFI2, prof.Traffic, sim.MaxWireless)
	if err != nil {
		log.Fatal(err)
	}

	baseRes, err := sim.Run(w, baseline)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%-12s %10s %10s %10s\n", "system", "exec", "energy", "EDP")
	fmt.Printf("%-12s %9.3fs %9.1fJ %9.1fJs\n", "nvfi-mesh",
		baseRes.Report.ExecSeconds, baseRes.Report.TotalJ(), baseRes.Report.EDP())
	for _, s := range []*sim.System{vfiMesh, winoc} {
		res, err := sim.Run(w, s)
		if err != nil {
			log.Fatal(err)
		}
		e, en, edp := res.Report.Relative(baseRes.Report)
		fmt.Printf("%-12s %9.3fx %9.3fx %9.3fx\n", s.Name, e, en, edp)
	}
}
