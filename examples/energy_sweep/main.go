// energy_sweep runs one benchmark across uniform DVFS operating points and
// prints the energy/delay frontier — the core-level intuition behind VFI
// partitioning: lower V/F stretches execution but saves disproportionate
// energy, and the best EDP sits between the extremes.
//
//	go run ./examples/energy_sweep -app pca
package main

import (
	"flag"
	"fmt"
	"log"

	"wivfi/internal/apps"
	"wivfi/internal/platform"
	"wivfi/internal/sim"
)

func main() {
	appName := flag.String("app", "pca", "benchmark to sweep")
	flag.Parse()

	app, err := apps.ByName(*appName)
	if err != nil {
		log.Fatal(err)
	}
	cfg := sim.DefaultBuildConfig()
	w, err := app.Workload(cfg.Chip.NumCores())
	if err != nil {
		log.Fatal(err)
	}

	base, err := sim.NVFIMesh(cfg)
	if err != nil {
		log.Fatal(err)
	}
	baseRes, err := sim.Run(w, base)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("uniform-DVFS sweep of %s on the mesh (vs 1.0V/2.5GHz)\n", app.Name)
	fmt.Printf("%-10s %10s %10s %10s\n", "V/F", "exec", "energy", "EDP")
	var bounded platform.OperatingPoint
	boundedEDP := 1e18
	for _, op := range platform.DefaultDVFSTable() {
		sys := *base
		sys.VFI = platform.Uniform(cfg.Chip.NumCores(), op)
		res, err := sim.Run(w, &sys)
		if err != nil {
			log.Fatal(err)
		}
		e, en, edp := res.Report.Relative(baseRes.Report)
		fmt.Printf("%-10v %9.3fx %9.3fx %9.3fx\n", op, e, en, edp)
		// the paper's constraint: bounded performance degradation
		if e <= 1.10 && res.Report.EDP() < boundedEDP {
			boundedEDP = res.Report.EDP()
			bounded = op
		}
	}
	fmt.Printf("\nuniform scaling trades EDP against large slowdowns; within a 10%% performance\n")
	fmt.Printf("bound only %v is reachable. Per-island VFI (examples/wordcount_vfi) instead\n", bounded)
	fmt.Println("slows only the islands whose threads are underutilized, saving energy at a")
	fmt.Println("fraction of the slowdown.")
}
