// custom_topology builds a small-world wireless NoC by hand — custom
// (k_intra, k_inter) split, custom wireless-interface placement — and
// compares it against the mesh and against the paper's default WiNoC under
// long-range traffic, using both the analytic model and the cycle-accurate
// wormhole simulator.
//
//	go run ./examples/custom_topology
package main

import (
	"fmt"
	"log"
	"math/rand"

	"wivfi/internal/energy"
	"wivfi/internal/noc"
	"wivfi/internal/place"
	"wivfi/internal/platform"
	"wivfi/internal/topo"
)

func main() {
	chip := platform.DefaultChip()
	costs := noc.DefaultLinkCosts()
	nm := energy.DefaultNetworkModel()

	// corner-to-corner traffic: the WiNoC's sweet spot
	traffic := make([][]float64, chip.NumCores())
	for i := range traffic {
		traffic[i] = make([]float64, chip.NumCores())
	}
	corners := []int{0, 7, 56, 63}
	for _, s := range corners {
		for _, d := range corners {
			if s != d {
				traffic[s][d] = 0.04
			}
		}
	}

	type variant struct {
		name string
		rt   *noc.RouteTable
	}
	var variants []variant

	mesh := topo.Mesh(chip)
	meshRT, err := noc.BuildRoutes(mesh, costs, noc.XY)
	if err != nil {
		log.Fatal(err)
	}
	variants = append(variants, variant{"mesh/xy", meshRT})

	// the paper's WiNoC: (3,1) with centre-placed WIs
	def, err := place.BuildTopology(chip, nil, place.CenterWIs(chip), topo.DefaultSmallWorldConfig())
	if err != nil {
		log.Fatal(err)
	}
	defRT, err := noc.BuildRoutes(def, costs, noc.UpDown)
	if err != nil {
		log.Fatal(err)
	}
	variants = append(variants, variant{"winoc(3,1)/centre", defRT})

	// a custom variant: (2,2) split with corner-adjacent WIs
	cfg := topo.DefaultSmallWorldConfig()
	cfg.KIntra, cfg.KInter = 2, 2
	cornerWIs := [][]int{
		{chip.ID(0, 0), chip.ID(0, 1), chip.ID(1, 0)},
		{chip.ID(0, 7), chip.ID(0, 6), chip.ID(1, 7)},
		{chip.ID(7, 0), chip.ID(6, 0), chip.ID(7, 1)},
		{chip.ID(7, 7), chip.ID(7, 6), chip.ID(6, 7)},
	}
	custom, err := place.BuildTopology(chip, nil, cornerWIs, cfg)
	if err != nil {
		log.Fatal(err)
	}
	customRT, err := noc.BuildRoutes(custom, costs, noc.UpDown)
	if err != nil {
		log.Fatal(err)
	}
	variants = append(variants, variant{"winoc(2,2)/corner", customRT})

	fmt.Printf("%-20s %10s %8s %12s %10s\n", "topology", "latency", "hops", "pJ/flit", "wireless%")
	for _, v := range variants {
		ana, err := noc.Analytic(v.rt, traffic, nm, noc.DefaultAnalyticConfig())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-20s %9.1fc %8.2f %12.1f %9.1f%%\n",
			v.name, ana.AvgLatencyCycles, ana.AvgHops, ana.EnergyPJPerFlit, 100*ana.WirelessFraction)
	}

	// cross-check the default WiNoC with the cycle-accurate simulator
	rng := rand.New(rand.NewSource(1))
	var pkts []noc.Packet
	for i := 0; i < 800; i++ {
		s := corners[rng.Intn(4)]
		d := corners[rng.Intn(4)]
		for d == s {
			d = corners[rng.Intn(4)]
		}
		pkts = append(pkts, noc.Packet{ID: i, Src: s, Dst: d, Flits: 4, Inject: int64(i * 25)})
	}
	res, err := noc.RunDES(defRT, pkts, nm, noc.DefaultDESConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncycle-accurate check on winoc(3,1): %d packets, avg latency %.1f cycles, "+
		"%.1f%% wireless flit-hops\n",
		res.Delivered, res.AvgLatencyCycles,
		100*float64(res.WirelessFlitHops)/float64(res.TotalFlitHops))
}
