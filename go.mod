module wivfi

go 1.22
