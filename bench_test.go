// Package wivfi_test benchmarks every reproduced table and figure of the
// paper plus the ablations DESIGN.md calls out. Each benchmark regenerates
// its experiment end to end (workload, baseline, parameter sweep, rows), so
// -benchtime=1x gives one full regeneration; see bench_output.txt for a
// recorded run.
package wivfi_test

import (
	"math/rand"
	"sort"
	"sync"
	"testing"

	"wivfi/internal/apps"
	"wivfi/internal/energy"
	"wivfi/internal/expt"
	"wivfi/internal/noc"
	"wivfi/internal/platform"
	"wivfi/internal/qp"
	"wivfi/internal/sched"
	"wivfi/internal/sim"
	"wivfi/internal/topo"
	"wivfi/internal/vfi"
)

// sharedSuite caches the six pipelines for benchmarks that only need the
// experiment driver (re-running the full pipeline per iteration would bench
// the cache, not the experiment — the pipeline itself is benchmarked by
// BenchmarkPipelineBuild).
var (
	suiteOnce sync.Once
	suite     *expt.Suite
)

func benchSuite(b *testing.B) *expt.Suite {
	b.Helper()
	suiteOnce.Do(func() {
		suite = expt.NewSuite(expt.DefaultConfig())
		// warm every pipeline so per-figure benchmarks measure the driver
		if err := suite.Prewarm(expt.AppOrder...); err != nil {
			b.Fatal(err)
		}
	})
	return suite
}

// BenchmarkPipelineBuild measures the full per-application flow: profiling
// run, VFI design, placement, and simulation of all five system variants.
func BenchmarkPipelineBuild(b *testing.B) {
	cfg := expt.DefaultConfig()
	app, err := apps.ByName("wc")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := expt.BuildPipeline(cfg, app); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1Datasets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := expt.Table1()
		if len(rows) != 6 {
			b.Fatal("bad table 1")
		}
	}
}

func BenchmarkTable2VFAssignment(b *testing.B) {
	s := benchSuite(b)
	// benchmark the design flow itself on the cached profiles
	pl, err := s.Pipeline("pca")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := vfi.Design(pl.Profile, s.Config.VFI); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig2Utilization(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := s.Fig2()
		if err != nil || len(rows) != 4 {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4Reassignment(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Fig4(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5Bottleneck(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Fig5(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6Placement(b *testing.B) {
	// benchmark one full placement comparison (both strategies) per
	// iteration — the annealing is the cost
	s := benchSuite(b)
	pl, err := s.Pipeline("wc")
	if err != nil {
		b.Fatal(err)
	}
	cfg := s.Config.Build
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, st := range []sim.Strategy{sim.MinHop, sim.MaxWireless} {
			sys, err := sim.VFIWiNoC(cfg, pl.Plan.VFI2, pl.Profile.Traffic, st)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := sim.Run(pl.Workload, sys); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkFig7ExecTime(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := s.Fig7()
		if err != nil || len(rows) != 12 {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8FullSystemEDP(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := s.Fig8()
		if err != nil || len(rows) != 6 {
			b.Fatal(err)
		}
	}
}

func BenchmarkKIntraKInterSweep(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.KIntraSweep(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStealingCaseStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := expt.RunStealingStudy(); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- ablations ----

// BenchmarkQPSolvers compares the exact branch-and-bound against the
// simulated-annealing solver on a 12-core instance (the largest size B&B
// handles comfortably).
func BenchmarkQPSolvers(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n, m := 12, 3
	util := make([]float64, n)
	for i := range util {
		util[i] = rng.Float64()
	}
	comm := make([][]float64, n)
	for i := range comm {
		comm[i] = make([]float64, n)
		for j := range comm[i] {
			if i != j {
				comm[i][j] = rng.Float64()
			}
		}
	}
	var targets []float64
	{
		s := append([]float64(nil), util...)
		for a := 0; a < n; a++ {
			for c := a + 1; c < n; c++ {
				if s[c] < s[a] {
					s[a], s[c] = s[c], s[a]
				}
			}
		}
		for g := 0; g < m; g++ {
			var sum float64
			for k := 0; k < n/m; k++ {
				sum += s[g*(n/m)+k]
			}
			targets = append(targets, sum/float64(n/m))
		}
	}
	prob := &qp.Problem{N: n, M: m, Comm: comm, Util: util, TargetMeans: targets, Wc: 1, Wu: 1}
	b.Run("branch-and-bound", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := qp.BranchAndBound(prob, 50_000_000); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("anneal", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := qp.Anneal(prob, qp.DefaultAnnealOptions()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkNoCAnalyticVsDES compares the closed-form network model against
// the cycle-accurate wormhole simulator on identical uniform traffic.
func BenchmarkNoCAnalyticVsDES(b *testing.B) {
	chip := platform.DefaultChip()
	mesh := topo.Mesh(chip)
	rt, err := noc.BuildRoutes(mesh, noc.DefaultLinkCosts(), noc.XY)
	if err != nil {
		b.Fatal(err)
	}
	nm := energy.DefaultNetworkModel()
	n := chip.NumCores()
	traffic := make([][]float64, n)
	for i := range traffic {
		traffic[i] = make([]float64, n)
		for j := range traffic[i] {
			if i != j {
				traffic[i][j] = 0.04 / float64(n-1)
			}
		}
	}
	b.Run("analytic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := noc.Analytic(rt, traffic, nm, noc.DefaultAnalyticConfig()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("des", func(b *testing.B) {
		rng := rand.New(rand.NewSource(1))
		var pkts []noc.Packet
		for i := 0; i < 1000; i++ {
			s, d := rng.Intn(n), rng.Intn(n)
			pkts = append(pkts, noc.Packet{ID: i, Src: s, Dst: d, Flits: 4, Inject: int64(i * 3)})
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := noc.RunDES(rt, pkts, nm, noc.DefaultDESConfig()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRealApps runs the actual MapReduce implementations at small
// scale.
func BenchmarkRealApps(b *testing.B) {
	for _, name := range apps.Names() {
		app, err := apps.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := app.RunReal(0.01, 8); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStealingPolicies is the scheduler ablation: the three stealing
// policies on the Section 4.3 workload.
func BenchmarkStealingPolicies(b *testing.B) {
	tasks := sched.UniformTasks(100, 0.495e9, 0.075, 0.072)
	freqs := make([]float64, 64)
	for c := range freqs {
		if c < 32 {
			freqs[c] = 2.5
		} else {
			freqs[c] = 2.0
		}
	}
	assign := sched.DealRoundRobin(len(tasks), 64)
	for _, pol := range []struct {
		name   string
		policy sched.Policy
	}{
		{"none", sched.NoStealing},
		{"default", sched.DefaultStealing},
		{"vfi-cap", sched.CapVFI},
	} {
		b.Run(pol.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sched.RunPhase(tasks, assign, freqs, pol.policy, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPhaseAdaptiveDVFS regenerates the phase-adaptive DVFS extension
// study (static VFI 2 vs per-phase controllers).
func BenchmarkPhaseAdaptiveDVFS(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := s.PhaseAdaptiveStudy()
		if err != nil || len(rows) != 6 {
			b.Fatal(err)
		}
	}
}

// BenchmarkWIFailureStudy regenerates the wireless-fault robustness study.
func BenchmarkWIFailureStudy(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := s.WIFailureStudy("wc", []int{0, 6, 12})
		if err != nil || len(rows) != 3 {
			b.Fatal(err)
		}
	}
}

// BenchmarkKLRefinement is the partitioning-quality ablation: plain anneal
// vs anneal + Kernighan-Lin refinement on a 64-core instance.
func BenchmarkKLRefinement(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	n, m := 64, 4
	util := make([]float64, n)
	for i := range util {
		util[i] = rng.Float64()
	}
	comm := make([][]float64, n)
	for i := range comm {
		comm[i] = make([]float64, n)
		for j := range comm[i] {
			if i != j && rng.Float64() < 0.3 {
				comm[i][j] = rng.Float64()
			}
		}
	}
	s := append([]float64(nil), util...)
	sort.Float64s(s)
	targets := make([]float64, m)
	for g := 0; g < m; g++ {
		var sum float64
		for k := 0; k < n/m; k++ {
			sum += s[g*(n/m)+k]
		}
		targets[g] = sum / float64(n/m)
	}
	prob := &qp.Problem{N: n, M: m, Comm: comm, Util: util, TargetMeans: targets, Wc: 1, Wu: 1}
	b.Run("anneal", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := qp.Anneal(prob, qp.DefaultAnnealOptions()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("anneal+kl", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := qp.SolveRefined(prob, qp.DefaultAnnealOptions()); err != nil {
				b.Fatal(err)
			}
		}
	})
}
