// Package apps provides the six Phoenix++ benchmarks of the paper
// (Histogram, Kmeans, Linear Regression, Matrix Multiplication, PCA, Word
// Count) in two coupled forms:
//
//   - a real implementation on the internal/mapreduce engine, runnable on
//     synthetic datasets shaped like Table 1's inputs (real.go);
//   - a calibrated workload model for the platform simulator (this file):
//     phase structure, per-thread work, memory intensity and traffic
//     patterns that reproduce the per-application characteristics the paper
//     reports — utilization profiles (Fig. 2, Fig. 5), V/F assignments
//     (Table 2), iteration counts, and the network sensitivities behind
//     Figs. 6-8.
//
// Calibration conventions: 64 threads; thread 0 is the Phoenix master;
// threads are organized in four 16-thread utilization groups (group k =
// threads 16k..16k+15) whose Reduce-phase work levels set the utilization
// bands that drive Table 2's V/F ladder. Compute is expressed in seconds at
// the 2.5 GHz DVFS maximum and converted to cycles.
package apps

import (
	"fmt"

	"wivfi/internal/sim"
)

// fmaxGHz is the DVFS table maximum used to express model work in seconds.
const fmaxGHz = 2.5

// secToCycles converts model seconds-at-fmax to clock cycles.
func secToCycles(s float64) float64 { return s * fmaxGHz * 1e9 }

// flitsPerMemOp is the network cost of one memory operation: a 2-flit
// request plus an 18-flit reply (a 64-byte cache line over 32-bit flits
// plus headers) for the shared-L2 round trip.
const flitsPerMemOp = 20

// defaultMemLocalFrac is the fraction of a thread's L2 traffic served by
// its own island's slices; the VFI clustering and thread mapping exist
// precisely to keep this high (Section 4.1). Apps with partitioned data
// (Kmeans after convergence) override it upward.
const defaultMemLocalFrac = 0.6

// groupOf returns the utilization group of a thread.
func groupOf(thread int) int { return thread / 16 }

// jitter returns a small deterministic per-thread factor in
// [1-amp, 1+amp], decorrelated from group boundaries so every thread's
// utilization is distinct (clean quartiles for the clustering).
func jitter(thread int, amp float64) float64 {
	h := (thread*37 + 11) % 16
	return 1 + amp*(float64(h)/15*2-1)
}

// mergeStage describes one Merge sub-stage: active threads [0, Threads)
// each do WorkSec of compute and ship their partials to their partner.
type mergeStage struct {
	Threads int
	WorkSec float64
	MemOps  float64
}

// modelParams is the calibrated description of one benchmark.
type modelParams struct {
	name       string
	iterations int

	// Library initialization (per iteration): master-only compute plus a
	// broadcast to all threads.
	libInitSec    float64
	libInitMemOps float64

	// Map (per iteration): a task pool over the active threads.
	mapTasks      int
	mapTaskSec    float64 // base compute per task (at fmax)
	mapTaskSpread float64
	mapTaskMemOps float64
	// mapActiveLate restricts the active thread set from the second
	// iteration on (Kmeans convergence), as a function of the platform's
	// thread count so the shape scales with the mesh; nil keeps all
	// threads.
	mapActiveLate func(threads int) []int
	// mapTasksLate shrinks the task pool from the second iteration on
	// (converged data groups need less work); 0 keeps mapTasks.
	mapTasksLate int
	// mapTaskSecLate overrides per-task compute from the second iteration
	// on; 0 keeps mapTaskSec.
	mapTaskSecLate float64
	// mapTaskMemOpsLate overrides per-task memory ops from the second
	// iteration on; 0 keeps mapTaskMemOps.
	mapTaskMemOpsLate float64

	// Reduce (per iteration): barrier phase. Per-group compute levels (at
	// fmax) with the master overridden separately.
	reduceGroupSec  [4]float64
	reduceMasterSec float64
	reduceMemOps    float64 // memory ops per active thread
	reduceJitterAmp float64
	// reduceActiveLate, when set, restricts reduce work from iteration 2
	// on to the returned threads (others contribute zero).
	reduceActiveLate func(threads int) []int

	// Merge (per iteration): zero or more converging stages.
	mergeStages []mergeStage

	// Master traffic coupling: the master exchanges this many extra flits
	// (total) with the threads of masterPartnerGroup during the run; this
	// is what drags the bottleneck master into a low-V/F island for the
	// nearly-homogeneous applications (Section 4.2).
	masterPartnerGroup int // -1 disables
	masterPartnerFlits float64

	// Reduce traffic shape: "keyexchange" (all-to-all, WC/Kmeans-style) or
	// "neighbor" (LR's nearer-core pattern).
	neighborReduce bool
	neighborRadius int

	// memLocalFrac overrides defaultMemLocalFrac when non-zero.
	memLocalFrac float64
}

// buildWorkload expands the calibrated parameters into the simulator's
// phase list for a given thread count (must be 64 for the paper platform;
// kept parametric for tests).
func buildWorkload(p modelParams, threads int) (*sim.Workload, error) {
	if threads%4 != 0 {
		return nil, fmt.Errorf("apps: %d threads not divisible into 4 groups", threads)
	}
	groupSize := threads / 4
	group := func(th int) int { return th / groupSize }
	all := sim.AllThreads(threads)
	w := &sim.Workload{Name: p.name, Threads: threads}

	for iter := 0; iter < p.iterations; iter++ {
		mapActive := all
		reduceActive := all
		mapTasks := p.mapTasks
		mapTaskSec := p.mapTaskSec
		mapTaskMemOps := p.mapTaskMemOps
		if iter > 0 && p.mapActiveLate != nil {
			mapActive = p.mapActiveLate(threads)
		}
		if iter > 0 && p.mapTasksLate > 0 {
			mapTasks = p.mapTasksLate
		}
		if iter > 0 && p.mapTaskSecLate > 0 {
			mapTaskSec = p.mapTaskSecLate
		}
		if iter > 0 && p.mapTaskMemOpsLate > 0 {
			mapTaskMemOps = p.mapTaskMemOpsLate
		}
		if iter > 0 && p.reduceActiveLate != nil {
			reduceActive = p.reduceActiveLate(threads)
		}

		// --- Library initialization ---
		libWork := make([]float64, threads)
		libMem := make([]float64, threads)
		libWork[0] = secToCycles(p.libInitSec)
		libMem[0] = p.libInitMemOps
		libTraffic := sim.TrafficMaster(threads, 0, p.libInitMemOps*flitsPerMemOp/float64(threads-1))
		if p.masterPartnerGroup >= 0 {
			// master <-> partner-group coupling traffic, split across the
			// iterations and attached to the phases where the master is
			// active (libinit and merge)
			partners := groupThreads(p.masterPartnerGroup, groupSize, threads)
			per := p.masterPartnerFlits / float64(p.iterations) / float64(len(partners)) / 2
			extra := zero(threads)
			for _, th := range partners {
				if th != 0 {
					extra[0][th] += per
					extra[th][0] += per
				}
			}
			sim.AddTraffic(libTraffic, extra)
		}
		w.Phases = append(w.Phases, sim.Phase{
			Kind: sim.LibInit, Iteration: iter,
			WorkCycles: libWork, MemOps: libMem,
			Traffic: libTraffic,
		})

		// --- Map ---
		localFrac := p.memLocalFrac
		if localFrac == 0 {
			localFrac = defaultMemLocalFrac
		}
		mapFlits := float64(mapTasks) * mapTaskMemOps * flitsPerMemOp
		w.Phases = append(w.Phases, sim.Phase{
			Kind: sim.Map, Iteration: iter,
			Tasks:         mapTasks,
			TaskCycles:    secToCycles(mapTaskSec),
			TaskSpread:    p.mapTaskSpread,
			TaskMemOps:    mapTaskMemOps,
			ActiveThreads: mapActive,
			Traffic:       sim.TrafficLocalized(threads, mapActive, mapFlits, localFrac, groupSize),
		})

		// --- Reduce ---
		redWork := make([]float64, threads)
		redMem := make([]float64, threads)
		activeSet := make(map[int]bool, len(reduceActive))
		for _, th := range reduceActive {
			activeSet[th] = true
		}
		for th := 0; th < threads; th++ {
			if !activeSet[th] {
				continue
			}
			sec := p.reduceGroupSec[group(th)]
			if th == 0 && p.reduceMasterSec > 0 {
				sec = p.reduceMasterSec
			}
			redWork[th] = secToCycles(sec * jitter(th, p.reduceJitterAmp))
			redMem[th] = p.reduceMemOps
		}
		var redTraffic [][]float64
		perThreadFlits := p.reduceMemOps * flitsPerMemOp
		if p.neighborReduce {
			redTraffic = sim.TrafficNeighbor(threads, reduceActive, perThreadFlits, p.neighborRadius)
		} else {
			redTraffic = sim.TrafficKeyExchange(threads, reduceActive, perThreadFlits)
		}
		w.Phases = append(w.Phases, sim.Phase{
			Kind: sim.Reduce, Iteration: iter,
			WorkCycles: redWork, MemOps: redMem,
			Traffic: redTraffic,
		})

		// --- Merge ---
		for _, st := range p.mergeStages {
			mw := make([]float64, threads)
			mm := make([]float64, threads)
			var senders, receivers []int
			for th := 0; th < st.Threads && th < threads; th++ {
				mw[th] = secToCycles(st.WorkSec)
				mm[th] = st.MemOps
			}
			// senders: the upper half of the PREVIOUS stage width ships
			// partials down to the active threads
			for th := st.Threads; th < 2*st.Threads && th < threads; th++ {
				senders = append(senders, th)
				receivers = append(receivers, th-st.Threads)
			}
			w.Phases = append(w.Phases, sim.Phase{
				Kind: sim.Merge, Iteration: iter,
				WorkCycles: mw, MemOps: mm,
				Traffic: sim.TrafficConvergent(threads, senders, receivers, st.MemOps*flitsPerMemOp),
			})
		}
	}
	return w, w.Validate()
}

func groupThreads(g, groupSize, threads int) []int {
	var out []int
	for th := g * groupSize; th < (g+1)*groupSize && th < threads; th++ {
		out = append(out, th)
	}
	return out
}

func zero(n int) [][]float64 {
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
	}
	return m
}

// rangeThreads returns [lo, hi).
func rangeThreads(lo, hi int) []int {
	out := make([]int, 0, hi-lo)
	for th := lo; th < hi; th++ {
		out = append(out, th)
	}
	return out
}

// upperHalfThreads selects the top half of the thread ids — the data
// groups that stay active once Kmeans converges (threads 32..63 on the
// paper's 64-thread platform, scaled on other meshes).
func upperHalfThreads(threads int) []int { return rangeThreads(threads/2, threads) }

// masterPlusUpperHalf is upperHalfThreads plus the master thread.
func masterPlusUpperHalf(threads int) []int {
	return append([]int{0}, upperHalfThreads(threads)...)
}

// Model parameter sets. Utilization-band targets under the margin-0.35 V/F
// rule (see internal/vfi): <=0.25 -> 1.5 GHz, (0.25,0.35] -> 1.75,
// (0.35,0.45] -> 2.0, (0.45,0.55] -> 2.25, >0.55 -> 2.5.

// matrixMultiplyParams: nearly homogeneous utilization (two groups in the
// 2.25 band, two in the 2.5 band), a hot master (library init + merge)
// whose traffic ties it to group 0, notable library initialization. One
// iteration. Table 1: 999x999 matrices.
func matrixMultiplyParams() modelParams {
	return modelParams{
		name:       "mm",
		iterations: 1,

		libInitSec:    0.12,
		libInitMemOps: 2.0e6,

		mapTasks:      256,
		mapTaskSec:    0.30 / 4, // 4 tasks per thread -> 0.30 s busy
		mapTaskSpread: 0.10,
		mapTaskMemOps: 1.1e6,

		reduceGroupSec:  [4]float64{0.448, 0.521, 0.601, 0.688},
		reduceMasterSec: 0.740,
		reduceMemOps:    3.0e6,
		reduceJitterAmp: 0.03,

		mergeStages: []mergeStage{
			{Threads: 8, WorkSec: 0.034, MemOps: 4e5},
			{Threads: 2, WorkSec: 0.033, MemOps: 4e5},
			{Threads: 1, WorkSec: 0.033, MemOps: 4e5},
		},

		masterPartnerGroup: 0,
		masterPartnerFlits: 3.2e7,
	}
}

// histogramParams: like MM but lighter compute, heavier streaming memory
// traffic, smaller master excess (lowest bottleneck ratio of the three
// homogeneous apps, Fig. 5). Table 1: 399 MB bitmap.
func histogramParams() modelParams {
	return modelParams{
		name:       "hist",
		iterations: 1,

		libInitSec:    0.10,
		libInitMemOps: 2.0e6,

		mapTasks:      256,
		mapTaskSec:    0.32 / 4,
		mapTaskSpread: 0.08,
		mapTaskMemOps: 2.0e6,

		reduceGroupSec:  [4]float64{0.518, 0.582, 0.688, 0.776},
		reduceMasterSec: 0.740,
		reduceMemOps:    2.5e6,
		reduceJitterAmp: 0.03,

		mergeStages: []mergeStage{
			{Threads: 8, WorkSec: 0.022, MemOps: 3e5},
			{Threads: 2, WorkSec: 0.022, MemOps: 3e5},
			{Threads: 1, WorkSec: 0.022, MemOps: 3e5},
		},

		masterPartnerGroup: 0,
		masterPartnerFlits: 3.2e7,
	}
}

// pcaParams: two iterations (mean pass, covariance pass), the longest
// library initialization and merge periods, perfectly flat background
// utilization so all four islands land at 0.9 V/2.25 GHz in VFI 1 — the
// highest bottleneck-to-average ratio (Fig. 5) and the biggest gainer from
// the VFI 2 re-assignment (Fig. 4). Table 1: 960x960 matrix.
func pcaParams() modelParams {
	return modelParams{
		name:       "pca",
		iterations: 2,

		libInitSec:    0.10,
		libInitMemOps: 1.8e6,

		mapTasks:      256,
		mapTaskSec:    0.20 / 4,
		mapTaskSpread: 0.08,
		mapTaskMemOps: 0.9e6,

		reduceGroupSec:  [4]float64{0.300, 0.325, 0.350, 0.370},
		reduceMasterSec: 0.420,
		reduceMemOps:    1.6e6,
		reduceJitterAmp: 0.02,

		mergeStages: []mergeStage{
			{Threads: 8, WorkSec: 0.030, MemOps: 5e5},
			{Threads: 2, WorkSec: 0.030, MemOps: 5e5},
			{Threads: 1, WorkSec: 0.050, MemOps: 5e5},
		},

		masterPartnerGroup: 0,
		masterPartnerFlits: 3.0e7,
	}
}

// kmeansParams: two iterations; in the second, only half the threads keep
// mapping (data groups converge), which makes the utilization pattern
// strongly bimodal — two islands drop to 0.6 V/1.5 GHz (Table 2) and the
// application reaps the largest EDP saving (Fig. 8). Many keys and
// all-to-all key exchange make it network-hungry, so the WiNoC buys a big
// execution-time recovery. Table 1: 512-dimensional vectors.
func kmeansParams() modelParams {
	return modelParams{
		name:       "kmeans",
		iterations: 2,

		// Kmeans has the shortest coordination periods of the six apps
		// (no long library init, Section 4.2), so the master's work is
		// deliberately small and it clusters with the idle half.
		libInitSec:    0.012,
		libInitMemOps: 0.8e6,

		// iteration 1 barely computes (assignments still churn through
		// memory); iteration 2 is the compute-heavy convergence pass run
		// by the half of the threads whose data groups remain active
		mapTasks:          256,
		mapTaskSec:        0.020,
		mapTaskSpread:     0.12,
		mapTaskMemOps:     1.2e6,
		mapActiveLate:     upperHalfThreads,
		mapTasksLate:      192,
		mapTaskSecLate:    0.073,
		mapTaskMemOpsLate: 3.0e6,

		reduceGroupSec:   [4]float64{0.180, 0.259, 0.406, 0.465},
		reduceMasterSec:  0, // master is no hotter than its group
		reduceMemOps:     1.4e7,
		reduceJitterAmp:  0.10,
		reduceActiveLate: masterPlusUpperHalf,

		mergeStages: []mergeStage{
			{Threads: 8, WorkSec: 0.012, MemOps: 1.5e5},
			{Threads: 1, WorkSec: 0.015, MemOps: 1.5e5},
		},

		masterPartnerGroup: -1,
		// converged data groups touch almost only their own partitions
		memLocalFrac: 0.75,
	}
}

// wordCountParams: heterogeneous utilization (two islands at 0.8 V/2.0,
// two at 1.0 V/2.5 per Table 2), a huge number of keys producing the
// heaviest Reduce phase and long-range key exchange — the biggest WiNoC
// execution-time gain (15%, Section 7.3). Table 1: 100 MB text. The map
// task pool uses 3 tasks per thread for profile stability; the paper's
// literal 100-task anecdote is reproduced separately by the Section 4.3
// case-study bench.
func wordCountParams() modelParams {
	return modelParams{
		name:       "wc",
		iterations: 1,

		libInitSec:    0.040,
		libInitMemOps: 1.5e6,

		mapTasks:      192,
		mapTaskSec:    0.30 / 3,
		mapTaskSpread: 0.075,
		mapTaskMemOps: 2.2e6,

		reduceGroupSec:  [4]float64{0.939, 1.007, 1.509, 1.886},
		reduceMasterSec: 0.420, // the master only coordinates; key-heavy threads dominate
		reduceMemOps:    1.2e7,
		reduceJitterAmp: 0.06,

		mergeStages: []mergeStage{
			{Threads: 8, WorkSec: 0.015, MemOps: 1e5},
			{Threads: 1, WorkSec: 0.020, MemOps: 1e5},
		},

		// WC's hot master exchanges its huge key set with the other busy
		// threads, anchoring it in a high-V/F island (the paper notes WC
		// places its hot cores well on its own, like Kmeans).
		masterPartnerGroup: 3,
		masterPartnerFlits: 1.5e8,
	}
}

// linearRegressionParams: almost no library initialization, no merge phase
// (Section 4.2), homogeneous utilization straddling the 2.25/2.5 boundary
// (Table 2), and the highest traffic injection rate concentrated on nearby
// threads — which is why its WiNoC gain is the smallest (4%) while its
// mesh-vs-WiNoC network EDP gap is the largest (Fig. 8). Table 1: 100 MB
// of points.
func linearRegressionParams() modelParams {
	return modelParams{
		name:       "lr",
		iterations: 1,

		libInitSec:    0.008,
		libInitMemOps: 0.6e6,

		mapTasks:      256,
		mapTaskSec:    0.30 / 4,
		mapTaskSpread: 0.06,
		mapTaskMemOps: 2.8e6,

		reduceGroupSec:  [4]float64{0.389, 0.446, 0.517, 0.588},
		reduceMasterSec: 0.0,
		reduceMemOps:    5.0e6,
		reduceJitterAmp: 0.03,
		neighborReduce:  true,
		neighborRadius:  2,

		mergeStages: nil,

		masterPartnerGroup: -1,
	}
}
