package apps

import (
	"fmt"
	"math"
	"strings"

	"wivfi/internal/data"
	"wivfi/internal/mapreduce"
)

// RealResult summarizes one execution of a benchmark's real implementation
// on the internal/mapreduce engine.
type RealResult struct {
	Summary    string
	UniqueKeys int
	Stats      mapreduce.Stats
	// Check is an application-specific numeric result used by tests
	// (slope for LR, total count for WC, checksum for MM, ...).
	Check float64
}

// scaleCount scales a nominal count by the scale factor, keeping at least
// min.
func scaleCount(nominal int, scale float64, min int) int {
	n := int(float64(nominal) * scale)
	if n < min {
		return min
	}
	return n
}

// runWordCount counts Zipf-distributed words (Table 1: 100 MB text,
// scaled).
func runWordCount(scale float64, workers int) (RealResult, error) {
	lines := data.Text(42, scaleCount(20000, scale, 64), 16, 1000)
	job := mapreduce.Job[string, string, int]{
		Name: "wordcount",
		Map: func(line string, emit func(string, int)) {
			for _, w := range strings.Fields(line) {
				emit(w, 1)
			}
		},
		Combine: func(a, b int) int { return a + b },
		Workers: workers,
		KeyLess: func(a, b string) bool { return a < b },
	}
	res, stats, err := mapreduce.Run(job, lines)
	if err != nil {
		return RealResult{}, err
	}
	var total int
	for _, p := range res.Pairs {
		total += p.Value
	}
	return RealResult{
		Summary:    fmt.Sprintf("wordcount: %d unique words, %d total", len(res.Pairs), total),
		UniqueKeys: len(res.Pairs),
		Stats:      stats,
		Check:      float64(total),
	}, nil
}

// runHistogram buckets pixel channel values (Table 1: 399 MB bitmap,
// scaled).
func runHistogram(scale float64, workers int) (RealResult, error) {
	pixels := data.Pixels(42, scaleCount(400000, scale, 256))
	job := mapreduce.Job[data.Pixel, int, int]{
		Name: "histogram",
		Map: func(px data.Pixel, emit func(int, int)) {
			emit(int(px.R), 1)
			emit(256+int(px.G), 1)
			emit(512+int(px.B), 1)
		},
		Combine: func(a, b int) int { return a + b },
		Workers: workers,
		KeyLess: func(a, b int) bool { return a < b },
	}
	res, stats, err := mapreduce.Run(job, pixels)
	if err != nil {
		return RealResult{}, err
	}
	var total int
	for _, p := range res.Pairs {
		total += p.Value
	}
	return RealResult{
		Summary:    fmt.Sprintf("histogram: %d buckets, %d samples", len(res.Pairs), total),
		UniqueKeys: len(res.Pairs),
		Stats:      stats,
		Check:      float64(total),
	}, nil
}

// lrAcc accumulates the sufficient statistics of least squares.
type lrAcc struct {
	SX, SY, SXX, SXY float64
	N                int
}

// runLinearRegression fits y = a*x + b (Table 1: 100 MB of points,
// scaled).
func runLinearRegression(scale float64, workers int) (RealResult, error) {
	const slope, intercept = 2.5, 7.0
	pts := data.Points(42, scaleCount(200000, scale, 256), slope, intercept, 3.0)
	job := mapreduce.Job[data.Point, int, lrAcc]{
		Name: "linear-regression",
		Map: func(p data.Point, emit func(int, lrAcc)) {
			emit(0, lrAcc{SX: p.X, SY: p.Y, SXX: p.X * p.X, SXY: p.X * p.Y, N: 1})
		},
		Combine: func(a, b lrAcc) lrAcc {
			return lrAcc{a.SX + b.SX, a.SY + b.SY, a.SXX + b.SXX, a.SXY + b.SXY, a.N + b.N}
		},
		Workers: workers,
	}
	res, stats, err := mapreduce.Run(job, pts)
	if err != nil {
		return RealResult{}, err
	}
	a := res.ToMap()[0]
	n := float64(a.N)
	fitSlope := (n*a.SXY - a.SX*a.SY) / (n*a.SXX - a.SX*a.SX)
	fitIntercept := (a.SY - fitSlope*a.SX) / n
	return RealResult{
		Summary:    fmt.Sprintf("linear-regression: slope %.4f intercept %.4f over %d points", fitSlope, fitIntercept, a.N),
		UniqueKeys: 1,
		Stats:      stats,
		Check:      fitSlope,
	}, nil
}

// runMatrixMultiply computes C = A x B row blocks (Table 1: 999x999,
// scaled to dim = 999*scale^(1/3) to keep the O(n^3) work proportional).
func runMatrixMultiply(scale float64, workers int) (RealResult, error) {
	dim := scaleCount(999, math.Cbrt(scale), 16)
	a := data.Matrix(42, dim, dim)
	b := data.Matrix(43, dim, dim)
	rows := make([]int, dim)
	for i := range rows {
		rows[i] = i
	}
	job := mapreduce.Job[int, int, []float64]{
		Name: "matrix-multiply",
		Map: func(r int, emit func(int, []float64)) {
			row := make([]float64, dim)
			for k := 0; k < dim; k++ {
				aik := a[r][k]
				if aik == 0 {
					continue
				}
				brow := b[k]
				for j := 0; j < dim; j++ {
					row[j] += aik * brow[j]
				}
			}
			emit(r, row)
		},
		// rows have unique keys; Combine should never merge two different
		// partials, but keep it total by summing element-wise
		Combine: func(x, y []float64) []float64 {
			for i := range y {
				x[i] += y[i]
			}
			return x
		},
		Workers: workers,
		KeyLess: func(x, y int) bool { return x < y },
	}
	res, stats, err := mapreduce.Run(job, rows)
	if err != nil {
		return RealResult{}, err
	}
	var checksum float64
	for _, p := range res.Pairs {
		for _, v := range p.Value {
			checksum += v
		}
	}
	return RealResult{
		Summary:    fmt.Sprintf("matrix-multiply: %dx%d, checksum %.6f", dim, dim, checksum),
		UniqueKeys: len(res.Pairs),
		Stats:      stats,
		Check:      checksum,
	}, nil
}

// kmeansState carries a per-cluster partial: vector sum and count.
type kmeansState struct {
	Sum   []float64
	Count int
}

// runKmeans runs the two MapReduce iterations of Lloyd's algorithm the
// paper describes (Table 1: 512-dimensional vectors, scaled in count).
func runKmeans(scale float64, workers int) (RealResult, error) {
	const k = 8
	dim := 32 // keep the real run cheap; the paper's 512 dims only scale compute
	points := data.Vectors(42, scaleCount(20000, scale, 512), dim, k)
	// initial centres: first k points
	centres := make([][]float64, k)
	for c := range centres {
		centres[c] = append([]float64(nil), points[c]...)
	}
	var moved float64
	var lastStats mapreduce.Stats
	for iter := 0; iter < 2; iter++ {
		job := mapreduce.Job[[]float64, int, kmeansState]{
			Name: "kmeans",
			Map: func(v []float64, emit func(int, kmeansState)) {
				best, bestD := 0, math.Inf(1)
				for c := range centres {
					var d float64
					for i := range v {
						diff := v[i] - centres[c][i]
						d += diff * diff
					}
					if d < bestD {
						best, bestD = c, d
					}
				}
				sum := append([]float64(nil), v...)
				emit(best, kmeansState{Sum: sum, Count: 1})
			},
			Combine: func(x, y kmeansState) kmeansState {
				for i := range y.Sum {
					x.Sum[i] += y.Sum[i]
				}
				x.Count += y.Count
				return x
			},
			Workers: workers,
			KeyLess: func(x, y int) bool { return x < y },
		}
		res, stats, err := mapreduce.Run(job, points)
		if err != nil {
			return RealResult{}, err
		}
		lastStats = stats
		moved = 0
		for _, p := range res.Pairs {
			if p.Value.Count == 0 {
				continue
			}
			for i := range centres[p.Key] {
				nc := p.Value.Sum[i] / float64(p.Value.Count)
				moved += math.Abs(nc - centres[p.Key][i])
				centres[p.Key][i] = nc
			}
		}
	}
	return RealResult{
		Summary:    fmt.Sprintf("kmeans: %d clusters over %d points, last-move %.4f", k, len(points), moved),
		UniqueKeys: k,
		Stats:      lastStats,
		Check:      moved,
	}, nil
}

// pcaCov carries sums for mean and covariance estimation.
type pcaCov struct {
	Sum  []float64
	Dot  []float64 // upper-triangular packed partial of X^T X over tracked columns
	Rows int
}

// runPCA runs the paper's two passes: column means, then covariance of the
// leading columns (Table 1: 960x960 matrix, scaled).
func runPCA(scale float64, workers int) (RealResult, error) {
	dim := scaleCount(960, math.Sqrt(scale), 24)
	tracked := 8 // covariance block actually computed
	if tracked > dim {
		tracked = dim
	}
	m := data.Matrix(42, dim, dim)
	rows := make([]int, dim)
	for i := range rows {
		rows[i] = i
	}
	// pass 1: column means
	meanJob := mapreduce.Job[int, int, pcaCov]{
		Name: "pca-mean",
		Map: func(r int, emit func(int, pcaCov)) {
			s := make([]float64, dim)
			copy(s, m[r])
			emit(0, pcaCov{Sum: s, Rows: 1})
		},
		Combine: func(x, y pcaCov) pcaCov {
			for i := range y.Sum {
				x.Sum[i] += y.Sum[i]
			}
			x.Rows += y.Rows
			return x
		},
		Workers: workers,
	}
	meanRes, _, err := mapreduce.Run(meanJob, rows)
	if err != nil {
		return RealResult{}, err
	}
	acc := meanRes.ToMap()[0]
	means := make([]float64, dim)
	for i := range means {
		means[i] = acc.Sum[i] / float64(acc.Rows)
	}
	// pass 2: covariance over the tracked leading columns
	covJob := mapreduce.Job[int, int, pcaCov]{
		Name: "pca-cov",
		Map: func(r int, emit func(int, pcaCov)) {
			d := make([]float64, tracked*(tracked+1)/2)
			idx := 0
			for i := 0; i < tracked; i++ {
				xi := m[r][i] - means[i]
				for j := i; j < tracked; j++ {
					d[idx] += xi * (m[r][j] - means[j])
					idx++
				}
			}
			emit(0, pcaCov{Dot: d, Rows: 1})
		},
		Combine: func(x, y pcaCov) pcaCov {
			for i := range y.Dot {
				x.Dot[i] += y.Dot[i]
			}
			x.Rows += y.Rows
			return x
		},
		Workers: workers,
	}
	covRes, stats, err := mapreduce.Run(covJob, rows)
	if err != nil {
		return RealResult{}, err
	}
	cov := covRes.ToMap()[0]
	var trace float64
	idx := 0
	for i := 0; i < tracked; i++ {
		trace += cov.Dot[idx] / float64(cov.Rows-1)
		idx += tracked - i
	}
	return RealResult{
		Summary:    fmt.Sprintf("pca: %dx%d matrix, covariance trace %.6f over %d leading columns", dim, dim, trace, tracked),
		UniqueKeys: 1,
		Stats:      stats,
		Check:      trace,
	}, nil
}
