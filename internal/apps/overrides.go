package apps

import "wivfi/internal/sim"

// Overrides adjusts selected calibrated model parameters, for sensitivity
// studies, ablations and calibration tooling. Nil fields keep the app's
// calibrated value.
type Overrides struct {
	// ReduceGroupSec replaces the per-group Reduce compute levels.
	ReduceGroupSec *[4]float64
	// ReduceMasterSec replaces the master's Reduce compute level.
	ReduceMasterSec *float64
	// MapTaskSecLate replaces the per-task compute of iterations >= 2.
	MapTaskSecLate *float64
	// MapTaskMemOps replaces the per-task memory-operation count.
	MapTaskMemOps *float64
	// ReduceMemOps replaces the per-thread Reduce memory-operation count.
	ReduceMemOps *float64
	// LibInitSec replaces the master's library-initialization compute.
	LibInitSec *float64
}

// WorkloadWithOverrides expands the app's model with the given parameter
// overrides applied.
func (a *App) WorkloadWithOverrides(threads int, o Overrides) (*sim.Workload, error) {
	p := a.params
	if o.ReduceGroupSec != nil {
		p.reduceGroupSec = *o.ReduceGroupSec
	}
	if o.ReduceMasterSec != nil {
		p.reduceMasterSec = *o.ReduceMasterSec
	}
	if o.MapTaskSecLate != nil {
		p.mapTaskSecLate = *o.MapTaskSecLate
	}
	if o.MapTaskMemOps != nil {
		p.mapTaskMemOps = *o.MapTaskMemOps
	}
	if o.ReduceMemOps != nil {
		p.reduceMemOps = *o.ReduceMemOps
	}
	if o.LibInitSec != nil {
		p.libInitSec = *o.LibInitSec
	}
	return buildWorkload(p, threads)
}

// ReduceLevels returns the app's calibrated per-group Reduce compute levels
// and the master override (0 means the master follows its group).
func (a *App) ReduceLevels() ([4]float64, float64) {
	return a.params.reduceGroupSec, a.params.reduceMasterSec
}
