package apps

import (
	"math"
	"strings"
	"testing"

	"wivfi/internal/sim"
)

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 6 {
		t.Fatalf("%d apps, want 6", len(all))
	}
	want := map[string]int{"mm": 1, "kmeans": 2, "pca": 2, "hist": 1, "wc": 1, "lr": 1}
	for _, a := range all {
		iters, ok := want[a.Name]
		if !ok {
			t.Errorf("unexpected app %q", a.Name)
			continue
		}
		if a.Iterations != iters {
			t.Errorf("%s iterations = %d, want %d", a.Name, a.Iterations, iters)
		}
		if a.Table1Dataset == "" {
			t.Errorf("%s missing Table 1 dataset", a.Name)
		}
	}
}

func TestByName(t *testing.T) {
	a, err := ByName("wc")
	if err != nil || a.Name != "wc" {
		t.Fatalf("ByName(wc) = %v, %v", a, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown name accepted")
	}
	names := Names()
	if len(names) != 6 || names[0] != "hist" {
		t.Errorf("Names() = %v", names)
	}
}

func TestWorkloadsValidateAndStructure(t *testing.T) {
	for _, a := range All() {
		w, err := a.Workload(64)
		if err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		if err := w.Validate(); err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		// phase structure: libinit -> map -> reduce [-> merge...] per iter
		kinds := map[sim.PhaseKind]int{}
		for _, ph := range w.Phases {
			kinds[ph.Kind]++
		}
		if kinds[sim.LibInit] != a.Iterations || kinds[sim.Map] != a.Iterations || kinds[sim.Reduce] != a.Iterations {
			t.Errorf("%s phase counts %v for %d iterations", a.Name, kinds, a.Iterations)
		}
		if a.Name == "lr" && kinds[sim.Merge] != 0 {
			t.Error("lr should have no merge phase (Section 4.2)")
		}
		if a.Name != "lr" && kinds[sim.Merge] == 0 {
			t.Errorf("%s missing merge phases", a.Name)
		}
	}
}

func TestWorkloadRejectsBadThreadCount(t *testing.T) {
	a, _ := ByName("mm")
	if _, err := a.Workload(63); err == nil {
		t.Error("63 threads accepted")
	}
}

func TestOverridesApplied(t *testing.T) {
	a, _ := ByName("mm")
	levels := [4]float64{0.1, 0.2, 0.3, 0.4}
	master := 0.5
	w, err := a.WorkloadWithOverrides(64, Overrides{ReduceGroupSec: &levels, ReduceMasterSec: &master})
	if err != nil {
		t.Fatal(err)
	}
	// find the reduce phase and check the per-group cycles reflect levels
	for _, ph := range w.Phases {
		if ph.Kind != sim.Reduce {
			continue
		}
		// thread 17 is in group 1: cycles ~ 0.2 s * 2.5 GHz with jitter
		got := ph.WorkCycles[17] / (2.5e9)
		if got < 0.2*0.95 || got > 0.2*1.05 {
			t.Errorf("group-1 reduce = %v s, want ~0.2", got)
		}
		gotM := ph.WorkCycles[0] / 2.5e9
		if math.Abs(gotM-0.5*jitter(0, a.params.reduceJitterAmp)) > 1e-9 {
			t.Errorf("master reduce = %v s, want ~0.5", gotM)
		}
	}
	// ReduceLevels exposes the calibrated values
	lv, m := a.ReduceLevels()
	if lv[0] <= 0 || m <= 0 {
		t.Error("ReduceLevels returned zeros")
	}
}

func TestJitterBounded(t *testing.T) {
	for th := 0; th < 64; th++ {
		j := jitter(th, 0.1)
		if j < 0.9-1e-12 || j > 1.1+1e-12 {
			t.Fatalf("jitter(%d) = %v", th, j)
		}
	}
	if jitter(3, 0) != 1 {
		t.Error("zero-amplitude jitter must be 1")
	}
}

func TestGroupOf(t *testing.T) {
	if groupOf(0) != 0 || groupOf(15) != 0 || groupOf(16) != 1 || groupOf(63) != 3 {
		t.Error("groupOf boundaries wrong")
	}
}

// ---- real implementations ----

func TestRealWordCount(t *testing.T) {
	a, _ := ByName("wc")
	res, err := a.RunReal(0.02, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.UniqueKeys < 100 {
		t.Errorf("only %d unique words", res.UniqueKeys)
	}
	// total words = lines * 16 words per line
	if res.Check != float64(400*16) {
		t.Errorf("total words %v, want %v", res.Check, 400*16)
	}
	if !strings.Contains(res.Summary, "wordcount") {
		t.Errorf("summary %q", res.Summary)
	}
}

func TestRealHistogram(t *testing.T) {
	a, _ := ByName("hist")
	res, err := a.RunReal(0.01, 4)
	if err != nil {
		t.Fatal(err)
	}
	// 3 channels per pixel
	if res.Check != float64(4000*3) {
		t.Errorf("samples %v, want %v", res.Check, 4000*3)
	}
	if res.UniqueKeys > 768 {
		t.Errorf("%d buckets exceeds 3*256", res.UniqueKeys)
	}
}

func TestRealLinearRegression(t *testing.T) {
	a, _ := ByName("lr")
	res, err := a.RunReal(0.05, 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Check-2.5) > 0.05 {
		t.Errorf("slope %v, want ~2.5", res.Check)
	}
}

func TestRealMatrixMultiply(t *testing.T) {
	a, _ := ByName("mm")
	res, err := a.RunReal(0.0005, 2)
	if err != nil {
		t.Fatal(err)
	}
	// verify against a direct small multiply: the checksum must be finite
	// and reproducible
	res2, err := a.RunReal(0.0005, 7)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Check-res2.Check) > 1e-6*math.Abs(res.Check) {
		t.Errorf("checksum differs across worker counts: %v vs %v", res.Check, res2.Check)
	}
	if math.IsNaN(res.Check) || res.Check == 0 {
		t.Errorf("degenerate checksum %v", res.Check)
	}
}

func TestRealKmeans(t *testing.T) {
	a, _ := ByName("kmeans")
	res, err := a.RunReal(0.05, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.UniqueKeys != 8 {
		t.Errorf("%d clusters, want 8", res.UniqueKeys)
	}
	// Check sums |delta| over 8 centres x 32 dims in the second Lloyd
	// iteration; with unit-variance cluster noise the per-coordinate move
	// should stay well below 2.
	if res.Check < 0 || res.Check/(8*32) > 2 {
		t.Errorf("implausible centre movement %v (%.3f per coordinate)", res.Check, res.Check/(8*32))
	}
}

func TestRealPCA(t *testing.T) {
	a, _ := ByName("pca")
	res, err := a.RunReal(0.01, 4)
	if err != nil {
		t.Fatal(err)
	}
	// covariance trace of uniform [-1,1) entries: each diagonal ~1/3,
	// 8 tracked columns -> ~2.7
	if res.Check < 1.5 || res.Check > 4.0 {
		t.Errorf("covariance trace %v outside plausible band", res.Check)
	}
}

func TestRealRunsDeterministic(t *testing.T) {
	a, _ := ByName("lr")
	r1, err := a.RunReal(0.02, 3)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := a.RunReal(0.02, 5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r1.Check-r2.Check) > 1e-9 {
		t.Errorf("results differ across worker counts: %v vs %v", r1.Check, r2.Check)
	}
}

// TestModelTrafficSymmetryBasics: every phase traffic matrix is square,
// non-negative, and free of self-traffic.
func TestModelTrafficBasics(t *testing.T) {
	for _, a := range All() {
		w, err := a.Workload(64)
		if err != nil {
			t.Fatal(err)
		}
		for pi, ph := range w.Phases {
			if ph.Traffic == nil {
				t.Fatalf("%s phase %d has no traffic", a.Name, pi)
			}
			for i := range ph.Traffic {
				if ph.Traffic[i][i] != 0 {
					t.Fatalf("%s phase %d self-traffic at %d", a.Name, pi, i)
				}
				for j, v := range ph.Traffic[i] {
					if v < 0 || math.IsNaN(v) {
						t.Fatalf("%s phase %d traffic (%d,%d) = %v", a.Name, pi, i, j, v)
					}
				}
			}
		}
	}
}

// TestKmeansLateIterationShape: iteration 2 maps on threads 32-63 only and
// with a reduced task pool.
func TestKmeansLateIterationShape(t *testing.T) {
	a, _ := ByName("kmeans")
	w, err := a.Workload(64)
	if err != nil {
		t.Fatal(err)
	}
	var mapPhases []sim.Phase
	for _, ph := range w.Phases {
		if ph.Kind == sim.Map {
			mapPhases = append(mapPhases, ph)
		}
	}
	if len(mapPhases) != 2 {
		t.Fatalf("%d map phases", len(mapPhases))
	}
	if mapPhases[0].ActiveThreads != nil && len(mapPhases[0].ActiveThreads) != 64 {
		t.Error("iteration 1 should use all threads")
	}
	if len(mapPhases[1].ActiveThreads) != 32 {
		t.Errorf("iteration 2 active threads = %d, want 32", len(mapPhases[1].ActiveThreads))
	}
	for _, th := range mapPhases[1].ActiveThreads {
		if th < 32 {
			t.Fatalf("iteration 2 includes converged thread %d", th)
		}
	}
	if mapPhases[1].Tasks >= mapPhases[0].Tasks {
		t.Error("iteration 2 task pool should shrink")
	}
}
