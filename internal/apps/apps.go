package apps

import (
	"fmt"
	"sort"

	"wivfi/internal/sim"
)

// App bundles one benchmark's identity, its Table 1 dataset description,
// its calibrated workload model and its real implementation.
type App struct {
	// Name is the short benchmark name used throughout the paper.
	Name string
	// Table1Dataset is the input description from Table 1.
	Table1Dataset string
	// Iterations is the number of MapReduce iterations (Section 7).
	Iterations int
	// params are the calibrated model parameters.
	params modelParams
	// runReal executes the real implementation at the given input scale
	// (1.0 approximates the paper's dataset shape, smaller is faster)
	// with the given worker count.
	runReal func(scale float64, workers int) (RealResult, error)
}

// Workload expands the calibrated model for a platform with the given
// thread count (64 for the paper's system).
func (a *App) Workload(threads int) (*sim.Workload, error) {
	return buildWorkload(a.params, threads)
}

// RunReal executes the benchmark for real on the MapReduce engine.
func (a *App) RunReal(scale float64, workers int) (RealResult, error) {
	return a.runReal(scale, workers)
}

// All returns the six benchmarks in the paper's Table 1 order.
func All() []*App {
	return []*App{
		{
			Name:          "mm",
			Table1Dataset: "Matrix with dimension 999 x 999",
			Iterations:    1,
			params:        matrixMultiplyParams(),
			runReal:       runMatrixMultiply,
		},
		{
			Name:          "kmeans",
			Table1Dataset: "Vectors with dimension of 512",
			Iterations:    2,
			params:        kmeansParams(),
			runReal:       runKmeans,
		},
		{
			Name:          "pca",
			Table1Dataset: "Matrix with dimension 960 x 960",
			Iterations:    2,
			params:        pcaParams(),
			runReal:       runPCA,
		},
		{
			Name:          "hist",
			Table1Dataset: "Medium (399 MB)",
			Iterations:    1,
			params:        histogramParams(),
			runReal:       runHistogram,
		},
		{
			Name:          "wc",
			Table1Dataset: "Large (100 MB)",
			Iterations:    1,
			params:        wordCountParams(),
			runReal:       runWordCount,
		},
		{
			Name:          "lr",
			Table1Dataset: "Medium (100 MB)",
			Iterations:    1,
			params:        linearRegressionParams(),
			runReal:       runLinearRegression,
		},
	}
}

// Names returns the sorted benchmark names.
func Names() []string {
	var out []string
	for _, a := range All() {
		out = append(out, a.Name)
	}
	sort.Strings(out)
	return out
}

// ByName looks a benchmark up by its short name.
func ByName(name string) (*App, error) {
	for _, a := range All() {
		if a.Name == name {
			return a, nil
		}
	}
	return nil, fmt.Errorf("apps: unknown benchmark %q (have %v)", name, Names())
}
