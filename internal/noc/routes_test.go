package noc

import (
	"math"
	"testing"

	"wivfi/internal/platform"
	"wivfi/internal/topo"
)

func meshRT(t testing.TB, mode RoutingMode) *RouteTable {
	t.Helper()
	rt, err := BuildRoutes(topo.Mesh(platform.DefaultChip()), DefaultLinkCosts(), mode)
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

func winocRT(t testing.TB, mode RoutingMode) *RouteTable {
	t.Helper()
	chip := platform.DefaultChip()
	tp, err := topo.SmallWorld(chip, topo.DefaultSmallWorldConfig())
	if err != nil {
		t.Fatal(err)
	}
	placement := [][]int{
		{chip.ID(1, 1), chip.ID(1, 2), chip.ID(2, 1)},
		{chip.ID(1, 5), chip.ID(1, 6), chip.ID(2, 6)},
		{chip.ID(5, 1), chip.ID(6, 1), chip.ID(6, 2)},
		{chip.ID(5, 6), chip.ID(6, 6), chip.ID(6, 5)},
	}
	if err := topo.AddWireless(tp, placement); err != nil {
		t.Fatal(err)
	}
	rt, err := BuildRoutes(tp, DefaultLinkCosts(), mode)
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

func TestMeshShortestHopsMatchManhattan(t *testing.T) {
	rt := meshRT(t, Shortest)
	chip := platform.DefaultChip()
	for _, pair := range [][2]int{{0, 63}, {0, 7}, {5, 40}, {12, 12}, {33, 34}} {
		s, d := pair[0], pair[1]
		want := chip.ManhattanHops(s, d)
		if got := rt.Hops(s, d); got != want {
			t.Errorf("Hops(%d,%d) = %d, want %d", s, d, got, want)
		}
	}
}

func TestXYRoutesAreMinimalAndDimensionOrdered(t *testing.T) {
	rt := meshRT(t, XY)
	chip := platform.DefaultChip()
	for s := 0; s < 64; s += 7 {
		for d := 0; d < 64; d += 5 {
			if s == d {
				continue
			}
			if got := rt.Hops(s, d); got != chip.ManhattanHops(s, d) {
				t.Fatalf("XY Hops(%d,%d) = %d, want %d", s, d, got, chip.ManhattanHops(s, d))
			}
			// dimension order: all column moves precede row moves
			path := rt.Path(s, d)
			rowPhase := false
			for i := 1; i < len(path); i++ {
				pr, pc := chip.Coord(path[i-1])
				cr, cc := chip.Coord(path[i])
				if pr != cr { // row move
					rowPhase = true
				} else if pc != cc && rowPhase {
					t.Fatalf("XY route %d->%d moves in X after Y: %v", s, d, path)
				}
			}
		}
	}
}

func TestPathEndpoints(t *testing.T) {
	rt := winocRT(t, UpDown)
	for s := 0; s < 64; s += 9 {
		for d := 0; d < 64; d += 11 {
			path := rt.Path(s, d)
			if path[0] != s || path[len(path)-1] != d {
				t.Fatalf("Path(%d,%d) endpoints wrong: %v", s, d, path)
			}
			// no revisits
			seen := map[int]bool{}
			for _, v := range path {
				if seen[v] {
					t.Fatalf("Path(%d,%d) revisits %d: %v", s, d, v, path)
				}
				seen[v] = true
			}
			if len(rt.PathLinks(s, d)) != rt.Hops(s, d) {
				t.Fatalf("PathLinks/Hops mismatch for (%d,%d)", s, d)
			}
		}
	}
}

func TestUpDownNoUpAfterDown(t *testing.T) {
	rt := winocRT(t, UpDown)
	up := upDirectionsForTest(rt.topo)
	for s := 0; s < 64; s++ {
		for d := 0; d < 64; d++ {
			if s == d {
				continue
			}
			cur := s
			descended := false
			for _, ai := range rt.paths[s][d] {
				if up[cur][ai] {
					if descended {
						t.Fatalf("route %d->%d goes up after down", s, d)
					}
				} else {
					descended = true
				}
				cur = rt.topo.Adj[cur][ai].To
			}
		}
	}
}

// upDirectionsForTest re-derives the BFS up/down orientation.
func upDirectionsForTest(t *topo.Topology) [][]bool {
	return upDirections(t)
}

// TestChannelDependencyAcyclic is the deadlock-freedom invariant: the
// channel (link) dependency graph induced by the route set must be acyclic
// for XY-on-mesh and UpDown-on-WiNoC.
func TestChannelDependencyAcyclic(t *testing.T) {
	check := func(name string, rt *RouteTable) {
		n := rt.topo.NumSwitches()
		// enumerate directed links
		type link struct{ from, ai int }
		id := map[link]int{}
		var links []link
		for u := 0; u < n; u++ {
			for ai := range rt.topo.Adj[u] {
				id[link{u, ai}] = len(links)
				links = append(links, link{u, ai})
			}
		}
		adj := make([][]int, len(links))
		edge := map[[2]int]bool{}
		for s := 0; s < n; s++ {
			for d := 0; d < n; d++ {
				if s == d {
					continue
				}
				cur := s
				prev := -1
				for _, ai := range rt.paths[s][d] {
					curID := id[link{cur, ai}]
					if prev >= 0 && !edge[[2]int{prev, curID}] {
						edge[[2]int{prev, curID}] = true
						adj[prev] = append(adj[prev], curID)
					}
					prev = curID
					cur = rt.topo.Adj[cur][ai].To
				}
			}
		}
		// cycle detection via iterative DFS coloring
		color := make([]int, len(links)) // 0 white 1 gray 2 black
		var stack [][2]int
		for s := range adj {
			if color[s] != 0 {
				continue
			}
			stack = append(stack[:0], [2]int{s, 0})
			color[s] = 1
			for len(stack) > 0 {
				top := &stack[len(stack)-1]
				u, i := top[0], top[1]
				if i < len(adj[u]) {
					top[1]++
					v := adj[u][i]
					switch color[v] {
					case 0:
						color[v] = 1
						stack = append(stack, [2]int{v, 0})
					case 1:
						t.Fatalf("%s: channel dependency cycle through link %d", name, v)
					}
				} else {
					color[u] = 2
					stack = stack[:len(stack)-1]
				}
			}
		}
	}
	check("mesh/XY", meshRT(t, XY))
	check("winoc/UpDown", winocRT(t, UpDown))
}

func TestUpDownAtMostModeratelyLongerThanShortest(t *testing.T) {
	short := winocRT(t, Shortest)
	updown := winocRT(t, UpDown)
	var sumS, sumU float64
	for s := 0; s < 64; s++ {
		for d := 0; d < 64; d++ {
			if s == d {
				continue
			}
			cs := short.RouteCostCycles(s, d)
			cu := updown.RouteCostCycles(s, d)
			sumS += cs
			sumU += cu
			// the up*/down* constraint can only lengthen the cost-optimal
			// route, never shorten it
			if cu < cs-1e-9 {
				t.Fatalf("updown route (%d,%d) cost %v below unconstrained %v", s, d, cu, cs)
			}
		}
	}
	if sumU > sumS*1.5 {
		t.Errorf("updown avg cost %.2f more than 1.5x shortest %.2f", sumU/4032, sumS/4032)
	}
}

func TestWiNoCShortensLongRoutes(t *testing.T) {
	mesh := meshRT(t, Shortest)
	winoc := winocRT(t, Shortest)
	if got, want := winoc.AvgHops(nil), mesh.AvgHops(nil); got >= want {
		t.Errorf("WiNoC avg hops %.3f not below mesh %.3f", got, want)
	}
}

func TestXYRequiresMesh(t *testing.T) {
	chip := platform.DefaultChip()
	tp, err := topo.SmallWorld(chip, topo.DefaultSmallWorldConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildRoutes(tp, DefaultLinkCosts(), XY); err == nil {
		t.Error("XY routing accepted a non-mesh topology")
	}
}

func TestPathEnergyUsesWirelessRate(t *testing.T) {
	rt := winocRT(t, Shortest)
	nmod := defaultNM()
	// find a pair whose route uses a wireless link
	foundWireless := false
	for s := 0; s < 64 && !foundWireless; s++ {
		for d := 0; d < 64; d++ {
			if s == d {
				continue
			}
			links := rt.PathLinks(s, d)
			var manual float64
			for _, l := range links {
				if l.Type == topo.Wireless {
					manual += nmod.WirelessHopPJ()
					foundWireless = true
				} else {
					manual += nmod.WirelineHopPJ(l.LengthMM)
				}
			}
			manual += nmod.SwitchPJPerFlitPort
			if got := rt.PathEnergyPJ(s, d, nmod); math.Abs(got-manual) > 1e-9 {
				t.Fatalf("PathEnergyPJ(%d,%d) = %v, want %v", s, d, got, manual)
			}
		}
	}
	if !foundWireless {
		t.Error("no route uses a wireless link; placement or routing is broken")
	}
	if got := rt.PathEnergyPJ(5, 5, nmod); got != 0 {
		t.Errorf("self-route energy = %v, want 0", got)
	}
}

func TestAvgHopsWeighting(t *testing.T) {
	rt := meshRT(t, Shortest)
	n := rt.topo.NumSwitches()
	traffic := make([][]float64, n)
	for i := range traffic {
		traffic[i] = make([]float64, n)
	}
	traffic[0][63] = 5 // only corner-to-corner traffic
	if got := rt.AvgHops(traffic); got != 14 {
		t.Errorf("AvgHops = %v, want 14", got)
	}
	if got := rt.AvgHops(nil); got <= 0 {
		t.Errorf("uniform AvgHops = %v", got)
	}
	empty := make([][]float64, n)
	for i := range empty {
		empty[i] = make([]float64, n)
	}
	if got := rt.AvgHops(empty); got != 0 {
		t.Errorf("zero-traffic AvgHops = %v, want 0", got)
	}
}

func TestBuildRoutesDeterministic(t *testing.T) {
	a := winocRT(t, UpDown)
	b := winocRT(t, UpDown)
	for s := 0; s < 64; s++ {
		for d := 0; d < 64; d++ {
			pa, pb := a.paths[s][d], b.paths[s][d]
			if len(pa) != len(pb) {
				t.Fatalf("route (%d,%d) length differs", s, d)
			}
			for i := range pa {
				if pa[i] != pb[i] {
					t.Fatalf("route (%d,%d) differs at hop %d", s, d, i)
				}
			}
		}
	}
}

func TestRoutingModeString(t *testing.T) {
	if Shortest.String() != "shortest" || XY.String() != "xy" || UpDown.String() != "updown" {
		t.Error("RoutingMode String labels wrong")
	}
	if RoutingMode(9).String() == "" {
		t.Error("unknown mode should still render")
	}
}

func TestRefineRoutesShiftsLoadOffHotLinks(t *testing.T) {
	rt := winocRT(t, UpDown)
	n := rt.topo.NumSwitches()
	// heavy uniform traffic: static routes overload hubs
	traffic := make([][]float64, n)
	for i := range traffic {
		traffic[i] = make([]float64, n)
		for j := range traffic[i] {
			if i != j {
				traffic[i][j] = 0.12 / float64(n-1)
			}
		}
	}
	nm := defaultNM()
	cfg := DefaultAnalyticConfig()
	before, err := Analytic(rt, traffic, nm, cfg)
	if err != nil {
		t.Fatal(err)
	}
	refined, err := RefineRoutes(rt, traffic, 3, cfg.MaxUtilization)
	if err != nil {
		t.Fatal(err)
	}
	after, err := Analytic(refined, traffic, nm, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if after.MaxLinkUtilization > before.MaxLinkUtilization+1e-9 {
		t.Errorf("refinement raised peak link load: %.3f -> %.3f",
			before.MaxLinkUtilization, after.MaxLinkUtilization)
	}
	if after.AvgLatencyCycles > before.AvgLatencyCycles*1.05 {
		t.Errorf("refinement raised latency: %.1f -> %.1f",
			before.AvgLatencyCycles, after.AvgLatencyCycles)
	}
	// refined routes must still respect the up*/down* constraint
	up := upDirectionsForTest(refined.topo)
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			cur := s
			descended := false
			for _, ai := range refined.paths[s][d] {
				if up[cur][ai] {
					if descended {
						t.Fatalf("refined route %d->%d violates up*/down*", s, d)
					}
				} else {
					descended = true
				}
				cur = refined.topo.Adj[cur][ai].To
			}
			if cur != d {
				t.Fatalf("refined route %d->%d ends at %d", s, d, cur)
			}
		}
	}
}

func TestRefineRoutesXYUnchanged(t *testing.T) {
	rt := meshRT(t, XY)
	n := rt.topo.NumSwitches()
	traffic := make([][]float64, n)
	for i := range traffic {
		traffic[i] = make([]float64, n)
	}
	traffic[0][63] = 0.5
	refined, err := RefineRoutes(rt, traffic, 2, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if refined != rt {
		t.Error("XY table should be returned unchanged (oblivious routing)")
	}
}

func TestRefineRoutesRejectsBadUtil(t *testing.T) {
	rt := winocRT(t, UpDown)
	traffic := zeroTraffic(64)
	if _, err := RefineRoutes(rt, traffic, 1, 1.5); err == nil {
		t.Error("max utilization 1.5 accepted")
	}
}
