package noc

import (
	"fmt"
	"math"
	"sort"

	"wivfi/internal/energy"
	"wivfi/internal/topo"
)

// LinkStat describes the observed load of one directed link in a DES run.
type LinkStat struct {
	From, To int
	Type     topo.LinkType
	Channel  int
	// Flits is the number of flits that traversed the link.
	Flits int64
	// Utilization is flits divided by simulated cycles.
	Utilization float64
}

// DESStats is the extended result of an instrumented simulation run.
type DESStats struct {
	DESResult
	// Latencies holds every delivered packet's latency in cycles, sorted
	// ascending (enables percentile queries).
	Latencies []int64
	// Links holds the per-directed-link flit counts, hottest first.
	Links []LinkStat
}

// Percentile returns the p-quantile (0 <= p <= 1) of packet latency.
func (s *DESStats) Percentile(p float64) int64 {
	if len(s.Latencies) == 0 {
		return 0
	}
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("noc: percentile %v out of [0,1]", p))
	}
	idx := int(math.Ceil(p*float64(len(s.Latencies)))) - 1
	if idx < 0 {
		idx = 0
	}
	return s.Latencies[idx]
}

// HottestLink returns the most utilized link, or a zero LinkStat when no
// flit moved.
func (s *DESStats) HottestLink() LinkStat {
	if len(s.Links) == 0 {
		return LinkStat{}
	}
	return s.Links[0]
}

// RunDESInstrumented is RunDES plus per-packet latency capture and
// per-link flit accounting. The latency capture rides the one simulation
// as a delivery hook (an earlier version re-ran the whole simulation for
// it), so the only extra cost over RunDES is the link accounting.
func RunDESInstrumented(rt *RouteTable, packets []Packet, nm energy.NetworkModel, cfg DESConfig) (*DESStats, error) {
	lats := make([]int64, 0, len(packets))
	base, err := runDESHooked(rt, packets, nm, cfg, desHooks{
		onDeliver: func(id int, latency int64) {
			lats = append(lats, latency)
		},
	})
	if err != nil {
		return nil, err
	}
	stats := &DESStats{DESResult: base}
	stats.Links = staticLinkStats(rt, packets, base.Cycles)
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	stats.Latencies = lats
	return stats, nil
}

// staticLinkStats derives per-directed-link flit counts from the static
// routes: in a delivered-all run every flit of every packet traverses
// exactly its route. Hottest link first.
func staticLinkStats(rt *RouteTable, packets []Packet, cycles int64) []LinkStat {
	type key struct{ from, to int }
	// Index each link the first time a walk crosses it: the metadata is in
	// hand at that moment, so no per-key O(degree) adjacency rescan is
	// needed afterwards. (An earlier version counted into a bare map and
	// then rescanned Adj[from] once per aggregated link.)
	idx := map[key]int{}
	var links []LinkStat
	for _, pk := range packets {
		if pk.Src == pk.Dst {
			continue
		}
		cur := pk.Src
		for _, ai := range rt.paths[pk.Src][pk.Dst] {
			l := rt.topo.Adj[cur][ai]
			k := key{cur, l.To}
			i, ok := idx[k]
			if !ok {
				i = len(links)
				idx[k] = i
				links = append(links, LinkStat{
					From: cur, To: l.To,
					Type: l.Type, Channel: l.Channel,
				})
			}
			links[i].Flits += int64(pk.Flits)
			cur = l.To
		}
	}
	if cycles > 0 {
		for i := range links {
			links[i].Utilization = float64(links[i].Flits) / float64(cycles)
		}
	}
	sort.Slice(links, func(i, j int) bool {
		if links[i].Flits != links[j].Flits {
			return links[i].Flits > links[j].Flits
		}
		if links[i].From != links[j].From {
			return links[i].From < links[j].From
		}
		return links[i].To < links[j].To
	})
	return links
}

// SaturationPoint is one sample of a throughput sweep.
type SaturationPoint struct {
	InjectionRate float64 // flits/cycle/node offered
	AvgLatency    float64 // cycles
	Delivered     int
}

// SaturationSweep measures average latency across offered loads on uniform
// random traffic, the standard NoC characterization curve. It returns one
// point per rate; latency blowing up marks the saturation throughput.
func SaturationSweep(rt *RouteTable, rates []float64, packetsPerRate int, flits int, nm energy.NetworkModel, cfg DESConfig, seed int64) ([]SaturationPoint, error) {
	n := rt.topo.NumSwitches()
	var out []SaturationPoint
	for _, rate := range rates {
		if rate <= 0 {
			return nil, fmt.Errorf("noc: non-positive injection rate %v", rate)
		}
		// Bernoulli injection: each node sources packetsPerRate/n packets
		// spaced so the aggregate offered load matches the rate.
		horizon := float64(packetsPerRate*flits) / (rate * float64(n))
		pkts := uniformTraffic(n, packetsPerRate, flits, horizon, seed)
		res, err := RunDES(rt, pkts, nm, cfg)
		if err != nil {
			return nil, fmt.Errorf("noc: sweep at rate %v: %w", rate, err)
		}
		out = append(out, SaturationPoint{
			InjectionRate: rate,
			AvgLatency:    res.AvgLatencyCycles,
			Delivered:     res.Delivered,
		})
	}
	return out, nil
}

// uniformTraffic draws uniform random src/dst pairs with injection times
// uniform over [0, horizon) at full 53-bit precision. (An earlier version
// quantized injection to rng.next()%1000 / 1000 of the horizon — only 1000
// distinct slots, which collides badly at large horizons and truncates
// everything to cycle 0 when horizon < 1000.)
func uniformTraffic(n, packets, flits int, horizon float64, seed int64) []Packet {
	rng := newSplitMix(uint64(seed))
	pkts := make([]Packet, 0, packets)
	for i := 0; i < packets; i++ {
		src := int(rng.next() % uint64(n))
		dst := int(rng.next() % uint64(n))
		for dst == src {
			dst = int(rng.next() % uint64(n))
		}
		inject := int64(rng.float64() * horizon)
		pkts = append(pkts, Packet{ID: i, Src: src, Dst: dst, Flits: flits, Inject: inject})
	}
	return pkts
}

// splitMix is a tiny deterministic PRNG (SplitMix64) so the sweep does not
// depend on math/rand's global ordering guarantees across Go versions.
type splitMix struct{ state uint64 }

func newSplitMix(seed uint64) *splitMix { return &splitMix{state: seed} }

func (s *splitMix) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float64 returns a uniform draw in [0, 1) with the full 53 bits of double
// precision.
func (s *splitMix) float64() float64 {
	return float64(s.next()>>11) / (1 << 53)
}
