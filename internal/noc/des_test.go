package noc

import (
	"math"
	"math/rand"
	"testing"
)

func TestDESSinglePacketLatency(t *testing.T) {
	rt := meshRT(t, XY)
	// one 4-flit packet across one hop
	pkts := []Packet{{ID: 0, Src: 0, Dst: 1, Flits: 4, Inject: 0}}
	res, err := RunDES(rt, pkts, defaultNM(), DefaultDESConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 1 {
		t.Fatalf("delivered %d", res.Delivered)
	}
	// pipeline: inject cycle 0, arrive buffer cycle 0.. ejection next
	// cycle; 4 flits over 1 link = at least 4 + pipeline cycles
	if res.AvgLatencyCycles < 4 || res.AvgLatencyCycles > 16 {
		t.Errorf("1-hop 4-flit latency = %v cycles, expected small", res.AvgLatencyCycles)
	}
	if res.TotalFlitHops != 4 {
		t.Errorf("TotalFlitHops = %d, want 4", res.TotalFlitHops)
	}
	if res.EnergyPJ <= 0 {
		t.Error("no energy accounted")
	}
}

func TestDESLatencyScalesWithDistance(t *testing.T) {
	rt := meshRT(t, XY)
	near, err := RunDES(rt, []Packet{{ID: 0, Src: 0, Dst: 1, Flits: 4}}, defaultNM(), DefaultDESConfig())
	if err != nil {
		t.Fatal(err)
	}
	far, err := RunDES(rt, []Packet{{ID: 0, Src: 0, Dst: 63, Flits: 4}}, defaultNM(), DefaultDESConfig())
	if err != nil {
		t.Fatal(err)
	}
	if far.AvgLatencyCycles <= near.AvgLatencyCycles {
		t.Errorf("14-hop latency %v not above 1-hop %v", far.AvgLatencyCycles, near.AvgLatencyCycles)
	}
	if far.TotalFlitHops != 4*14 {
		t.Errorf("far TotalFlitHops = %d, want 56", far.TotalFlitHops)
	}
}

func TestDESLocalPacket(t *testing.T) {
	rt := meshRT(t, XY)
	res, err := RunDES(rt, []Packet{{ID: 0, Src: 5, Dst: 5, Flits: 4, Inject: 10}}, defaultNM(), DefaultDESConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 1 || res.TotalFlitHops != 0 {
		t.Errorf("local packet: delivered=%d hops=%d", res.Delivered, res.TotalFlitHops)
	}
}

func TestDESManyPacketsAllDelivered(t *testing.T) {
	rt := meshRT(t, XY)
	rng := rand.New(rand.NewSource(1))
	var pkts []Packet
	for i := 0; i < 500; i++ {
		s := rng.Intn(64)
		d := rng.Intn(64)
		pkts = append(pkts, Packet{ID: i, Src: s, Dst: d, Flits: 4, Inject: int64(rng.Intn(2000))})
	}
	res, err := RunDES(rt, pkts, defaultNM(), DefaultDESConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 500 {
		t.Fatalf("delivered %d of 500", res.Delivered)
	}
	if res.Stalled != 0 {
		t.Fatalf("%d packets stalled", res.Stalled)
	}
}

func TestDESWiNoCDeliversUnderUpDown(t *testing.T) {
	rt := winocRT(t, UpDown)
	rng := rand.New(rand.NewSource(2))
	var pkts []Packet
	for i := 0; i < 500; i++ {
		pkts = append(pkts, Packet{
			ID: i, Src: rng.Intn(64), Dst: rng.Intn(64), Flits: 4,
			Inject: int64(rng.Intn(3000)),
		})
	}
	res, err := RunDES(rt, pkts, defaultNM(), DefaultDESConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 500 || res.Stalled != 0 {
		t.Fatalf("delivered %d, stalled %d", res.Delivered, res.Stalled)
	}
	if res.WirelessFlitHops == 0 {
		t.Error("no wireless usage on WiNoC under random traffic")
	}
}

func TestDESWirelessChannelSerializes(t *testing.T) {
	rt := winocRT(t, UpDown)
	tp := rt.Topology()
	// pick two WI pairs on the same channel and hammer flows between them
	byCh := map[int][]int{}
	for _, wi := range tp.WIs {
		byCh[tp.ChannelOf[wi]] = append(byCh[tp.ChannelOf[wi]], wi)
	}
	var members []int
	for _, ms := range byCh {
		if len(ms) >= 4 {
			members = ms
			break
		}
	}
	if len(members) < 4 {
		t.Skip("no channel with 4 WIs")
	}
	// flows across the channel from two different sources at once
	var pkts []Packet
	id := 0
	for i := 0; i < 40; i++ {
		pkts = append(pkts, Packet{ID: id, Src: members[0], Dst: members[1], Flits: 4, Inject: int64(i * 4)})
		id++
		pkts = append(pkts, Packet{ID: id, Src: members[2], Dst: members[3], Flits: 4, Inject: int64(i * 4)})
		id++
	}
	res, err := RunDES(rt, pkts, defaultNM(), DefaultDESConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != len(pkts) {
		t.Fatalf("delivered %d of %d", res.Delivered, len(pkts))
	}
	// solo run of just the first flow for comparison
	solo, err := RunDES(rt, pkts[:1], defaultNM(), DefaultDESConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgLatencyCycles <= solo.AvgLatencyCycles {
		t.Errorf("token contention should raise latency: %v <= %v",
			res.AvgLatencyCycles, solo.AvgLatencyCycles)
	}
}

func TestDESDeterministic(t *testing.T) {
	rt := winocRT(t, UpDown)
	rng := rand.New(rand.NewSource(3))
	var pkts []Packet
	for i := 0; i < 200; i++ {
		pkts = append(pkts, Packet{ID: i, Src: rng.Intn(64), Dst: rng.Intn(64), Flits: 4, Inject: int64(rng.Intn(1000))})
	}
	a, err := RunDES(rt, pkts, defaultNM(), DefaultDESConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunDES(rt, pkts, defaultNM(), DefaultDESConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.AvgLatencyCycles != b.AvgLatencyCycles || a.EnergyPJ != b.EnergyPJ || a.Cycles != b.Cycles {
		t.Errorf("non-deterministic DES: %+v vs %+v", a, b)
	}
}

func TestDESEnergyMatchesPathEnergy(t *testing.T) {
	// For a single packet the DES energy must equal flits x route energy.
	rt := meshRT(t, XY)
	nm := defaultNM()
	pkts := []Packet{{ID: 0, Src: 3, Dst: 42, Flits: 4}}
	res, err := RunDES(rt, pkts, nm, DefaultDESConfig())
	if err != nil {
		t.Fatal(err)
	}
	want := 4 * rt.PathEnergyPJ(3, 42, nm)
	if math.Abs(res.EnergyPJ-want) > 1e-6 {
		t.Errorf("DES energy %v != 4x path energy %v", res.EnergyPJ, want)
	}
}

func TestDESBufferDepthMatters(t *testing.T) {
	// Tiny buffers throttle a burst more than deep buffers.
	rt := meshRT(t, XY)
	var pkts []Packet
	for i := 0; i < 50; i++ {
		pkts = append(pkts, Packet{ID: i, Src: 0, Dst: 63, Flits: 4, Inject: 0})
	}
	shallow := DefaultDESConfig()
	shallow.BufDepthFlits = 1
	deep := DefaultDESConfig()
	deep.BufDepthFlits = 8
	rs, err := RunDES(rt, pkts, defaultNM(), shallow)
	if err != nil {
		t.Fatal(err)
	}
	rd, err := RunDES(rt, pkts, defaultNM(), deep)
	if err != nil {
		t.Fatal(err)
	}
	if rd.AvgLatencyCycles > rs.AvgLatencyCycles {
		t.Errorf("deep buffers slower than shallow: %v > %v", rd.AvgLatencyCycles, rs.AvgLatencyCycles)
	}
}

func TestDESRejectsBadInput(t *testing.T) {
	rt := meshRT(t, XY)
	if _, err := RunDES(rt, []Packet{{Src: -1, Dst: 2, Flits: 4}}, defaultNM(), DefaultDESConfig()); err == nil {
		t.Error("bad src accepted")
	}
	if _, err := RunDES(rt, []Packet{{Src: 0, Dst: 2, Flits: 0}}, defaultNM(), DefaultDESConfig()); err == nil {
		t.Error("zero flits accepted")
	}
	if _, err := RunDES(rt, nil, defaultNM(), DESConfig{}); err == nil {
		t.Error("zero config accepted")
	}
}

func TestDESAgreesWithAnalyticAtLowLoad(t *testing.T) {
	// Cross-validation: at light random load the analytic mean latency must
	// sit within ~40% of the cycle-accurate result (contention nearly nil,
	// so both should approach the routed base latency).
	rt := meshRT(t, XY)
	rng := rand.New(rand.NewSource(4))
	n := 64
	traffic := zeroTraffic(n)
	var pkts []Packet
	id := 0
	horizon := 40000
	// 80 sparse flows
	for k := 0; k < 80; k++ {
		s, d := rng.Intn(n), rng.Intn(n)
		if s == d {
			continue
		}
		rate := 0.001 + 0.002*rng.Float64() // flits/cycle
		traffic[s][d] += rate
		period := int(4 / rate) // one 4-flit packet per period
		for c := 0; c < horizon; c += period {
			pkts = append(pkts, Packet{ID: id, Src: s, Dst: d, Flits: 4, Inject: int64(c + rng.Intn(period/2))})
			id++
		}
	}
	des, err := RunDES(rt, pkts, defaultNM(), DefaultDESConfig())
	if err != nil {
		t.Fatal(err)
	}
	ana, err := Analytic(rt, traffic, defaultNM(), DefaultAnalyticConfig())
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := ana.AvgLatencyCycles*0.6, ana.AvgLatencyCycles*1.6
	if des.AvgLatencyCycles < lo || des.AvgLatencyCycles > hi {
		t.Errorf("DES latency %v outside [%v, %v] around analytic %v",
			des.AvgLatencyCycles, lo, hi, ana.AvgLatencyCycles)
	}
	// energy per flit should agree closely (same routes, same constants)
	desPJPerFlit := des.EnergyPJ / float64(len(pkts)*4)
	if math.Abs(desPJPerFlit-ana.EnergyPJPerFlit)/ana.EnergyPJPerFlit > 0.1 {
		t.Errorf("per-flit energy: DES %v vs analytic %v", desPJPerFlit, ana.EnergyPJPerFlit)
	}
}
