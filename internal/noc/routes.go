// Package noc evaluates interconnect performance and energy on the
// topologies built by internal/topo. It provides:
//
//   - deterministic routing tables in three modes: unconstrained shortest
//     path (Dijkstra), XY dimension-order (minimal and deadlock-free on the
//     mesh), and up*/down* (deadlock-free on arbitrary graphs, used for the
//     irregular small-world WiNoC — constrained shortest path over a BFS
//     spanning tree);
//   - an analytic model (latency = routed path cycles inflated by an M/D/1
//     style contention factor per link, plus wormhole serialization) used
//     for full-application sweeps;
//   - a cycle-accurate flit-level wormhole discrete simulator with finite
//     input buffers, credit flow control, round-robin output arbitration
//     and a token-passing MAC serializing each mm-wave wireless channel,
//     used to validate the analytic model and to study the network in
//     isolation.
//
// Latency is expressed in network-clock cycles and energy in picojoules,
// with per-flit energies supplied by internal/energy.
package noc

import (
	"fmt"
	"math"

	"wivfi/internal/energy"
	"wivfi/internal/topo"
)

// LinkCosts holds the per-hop cycle costs used both for route selection and
// for base (uncontended) latency accounting.
type LinkCosts struct {
	// RouterCycles is the switch pipeline depth (buffer write, route
	// compute, arbitration, crossbar traversal).
	RouterCycles float64
	// WireCyclesPerMM converts wireline length to traversal cycles; one
	// tile (2.5 mm) lands at one cycle.
	WireCyclesPerMM float64
	// WirelessCycles is the single-hop air time of a wireless flit.
	WirelessCycles float64
	// WirelessTokenPenalty is the extra average cost routing should assume
	// for a wireless hop due to the shared-channel token MAC. It biases
	// path selection; actual waiting is modelled by contention (analytic)
	// or the token rotation itself (DES).
	WirelessTokenPenalty float64
}

// DefaultLinkCosts returns costs for the paper's 65 nm platform: a 4-cycle
// router pipeline (buffer write, route/VC compute, switch allocation,
// crossbar traversal — the canonical wormhole pipeline at a 2.5 GHz network
// clock), one cycle per 2.5 mm tile of wire, and single-cycle wireless hops
// carrying a two-cycle average token bias.
func DefaultLinkCosts() LinkCosts {
	return LinkCosts{
		RouterCycles:         4,
		WireCyclesPerMM:      0.4,
		WirelessCycles:       1,
		WirelessTokenPenalty: 2,
	}
}

// linkCost returns the routing cost in cycles of traversing l.
func (lc LinkCosts) linkCost(l topo.Link) float64 {
	if l.Type == topo.Wireless {
		return lc.RouterCycles + lc.WirelessCycles + lc.WirelessTokenPenalty
	}
	return lc.RouterCycles + lc.WireCyclesPerMM*l.LengthMM
}

// baseLatency returns the uncontended traversal cycles of l (no routing
// bias terms).
func (lc LinkCosts) baseLatency(l topo.Link) float64 {
	if l.Type == topo.Wireless {
		return lc.RouterCycles + lc.WirelessCycles
	}
	return lc.RouterCycles + lc.WireCyclesPerMM*l.LengthMM
}

// RoutingMode selects the route-construction algorithm.
type RoutingMode int

const (
	// Shortest is unconstrained Dijkstra. Minimal, but its channel
	// dependency graph may be cyclic on irregular topologies — use it for
	// analytic studies, not for wormhole simulation of the WiNoC.
	Shortest RoutingMode = iota
	// XY is dimension-order routing (column first, then row). Only valid
	// on the mesh; minimal and deadlock-free.
	XY
	// UpDown is up*/down* routing over a BFS spanning tree rooted at
	// switch 0: every route climbs zero or more "up" links before
	// descending zero or more "down" links, which makes the channel
	// dependency graph acyclic on any connected graph. Paths are the
	// shortest ones satisfying the constraint.
	UpDown
)

func (m RoutingMode) String() string {
	switch m {
	case Shortest:
		return "shortest"
	case XY:
		return "xy"
	case UpDown:
		return "updown"
	default:
		return fmt.Sprintf("RoutingMode(%d)", int(m))
	}
}

// RouteTable holds one deterministic route (a sequence of adjacency
// indices) for every ordered switch pair.
type RouteTable struct {
	topo  *topo.Topology
	costs LinkCosts
	mode  RoutingMode
	// paths[src][dst] is the list of adjacency indices: the k-th entry is
	// the index into topo.Adj[cur] of the k-th link, where cur is the
	// switch reached after k-1 hops. Empty when src == dst.
	paths [][][]int
}

// Topology returns the routed topology.
func (rt *RouteTable) Topology() *topo.Topology { return rt.topo }

// Mode returns the routing mode the table was built with.
func (rt *RouteTable) Mode() RoutingMode { return rt.mode }

// Costs returns the link cost model of the table.
func (rt *RouteTable) Costs() LinkCosts { return rt.costs }

// pqItem is a priority-queue entry for Dijkstra.
type pqItem struct {
	state int
	cost  float64
}

// pqLess orders the Dijkstra frontier by (cost, state). Items equal under
// this order carry the same state, so they are interchangeable: whichever
// pops first marks the state done and the duplicate is skipped. Any
// min-heap therefore yields the same Dijkstra execution, which lets the
// heap be a hand-rolled monomorphic one (container/heap boxed every push
// and pop through interface{}, a measurable cost at route-build time).
func pqLess(a, b pqItem) bool {
	if a.cost != b.cost {
		return a.cost < b.cost
	}
	return a.state < b.state
}

func pqPush(q []pqItem, it pqItem) []pqItem {
	q = append(q, it)
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !pqLess(q[i], q[parent]) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
	return q
}

func pqPop(q []pqItem) (pqItem, []pqItem) {
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q = q[:n]
	i := 0
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if r := c + 1; r < n && pqLess(q[r], q[c]) {
			c = r
		}
		if !pqLess(q[c], q[i]) {
			break
		}
		q[i], q[c] = q[c], q[i]
		i = c
	}
	return top, q
}

// dijkstraScratch holds the per-source working arrays so an all-pairs
// route build allocates them once instead of once per source.
type dijkstraScratch struct {
	dist                []float64
	prevState, prevLink []int
	done                []bool
	heap                []pqItem
	rev                 []int
}

// BuildRoutes computes routes for every ordered pair under the given mode.
func BuildRoutes(t *topo.Topology, costs LinkCosts, mode RoutingMode) (*RouteTable, error) {
	return buildRoutesWithCost(t, costs, mode, nil)
}

// buildRoutesWithCost is BuildRoutes with an optional per-link cost
// override used by congestion-aware refinement.
func buildRoutesWithCost(t *topo.Topology, costs LinkCosts, mode RoutingMode, costFn func(u, ai int) float64) (*RouteTable, error) {
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("noc: invalid topology: %w", err)
	}
	rt := &RouteTable{topo: t, costs: costs, mode: mode}
	n := t.NumSwitches()
	rt.paths = make([][][]int, n)
	switch mode {
	case XY:
		if err := rt.buildXY(); err != nil {
			return nil, err
		}
	case Shortest:
		var scr dijkstraScratch
		for src := 0; src < n; src++ {
			rt.paths[src] = rt.dijkstra(src, nil, costFn, &scr)
		}
	case UpDown:
		up := upDirections(t)
		var scr dijkstraScratch
		for src := 0; src < n; src++ {
			rt.paths[src] = rt.dijkstra(src, up, costFn, &scr)
		}
	default:
		return nil, fmt.Errorf("noc: unknown routing mode %d", mode)
	}
	// sanity: every pair routed
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if src != dst && rt.paths[src][dst] == nil {
				return nil, fmt.Errorf("noc: no %v route %d -> %d", mode, src, dst)
			}
		}
	}
	return rt, nil
}

// buildXY fills dimension-order routes; the topology must be the mesh.
func (rt *RouteTable) buildXY() error {
	t := rt.topo
	chip := t.Chip
	n := t.NumSwitches()
	findLink := func(from, to int) (int, error) {
		for ai, l := range t.Adj[from] {
			if l.To == to && l.Type == topo.Wireline {
				return ai, nil
			}
		}
		return 0, fmt.Errorf("noc: XY routing needs mesh link %d -> %d", from, to)
	}
	for src := 0; src < n; src++ {
		rt.paths[src] = make([][]int, n)
		for dst := 0; dst < n; dst++ {
			if src == dst {
				continue
			}
			var path []int
			cur := src
			for cur != dst {
				cr, cc := chip.Coord(cur)
				dr, dc := chip.Coord(dst)
				var next int
				switch {
				case cc < dc:
					next = chip.ID(cr, cc+1)
				case cc > dc:
					next = chip.ID(cr, cc-1)
				case cr < dr:
					next = chip.ID(cr+1, cc)
				default:
					next = chip.ID(cr-1, cc)
				}
				ai, err := findLink(cur, next)
				if err != nil {
					return err
				}
				path = append(path, ai)
				cur = next
			}
			rt.paths[src][dst] = path
		}
	}
	return nil
}

// upDirections classifies every directed link as "up" (true) or "down"
// (false) using BFS levels from switch 0, ties broken by lower id. The
// result is indexed [from][adjacencyIndex].
func upDirections(t *topo.Topology) [][]bool {
	n := t.NumSwitches()
	level := make([]int, n)
	for i := range level {
		level[i] = -1
	}
	level[0] = 0
	queue := []int{0}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, l := range t.Adj[u] {
			if level[l.To] == -1 {
				level[l.To] = level[u] + 1
				queue = append(queue, l.To)
			}
		}
	}
	up := make([][]bool, n)
	for u := range t.Adj {
		up[u] = make([]bool, len(t.Adj[u]))
		for ai, l := range t.Adj[u] {
			v := l.To
			up[u][ai] = level[v] < level[u] || (level[v] == level[u] && v < u)
		}
	}
	return up
}

// dijkstra computes constrained shortest paths from src. With up == nil the
// search is unconstrained; otherwise the up*/down* rule applies: state 0
// may take up or down links (down transitions to state 1), state 1 may only
// take down links. States are encoded as node + phase*n. costFn, when
// non-nil, overrides the static link cost (congestion-aware refinement).
func (rt *RouteTable) dijkstra(src int, up [][]bool, costFn func(u, ai int) float64, scr *dijkstraScratch) [][]int {
	t := rt.topo
	n := t.NumSwitches()
	numStates := n
	if up != nil {
		numStates = 2 * n
	}
	if cap(scr.dist) < numStates {
		scr.dist = make([]float64, numStates)
		scr.prevState = make([]int, numStates)
		scr.prevLink = make([]int, numStates)
		scr.done = make([]bool, numStates)
	}
	dist := scr.dist[:numStates]
	prevState := scr.prevState[:numStates]
	prevLink := scr.prevLink[:numStates]
	done := scr.done[:numStates]
	for i := range dist {
		dist[i] = math.Inf(1)
		prevState[i] = -1
		prevLink[i] = -1
		done[i] = false
	}
	dist[src] = 0 // phase 0
	q := append(scr.heap[:0], pqItem{state: src})
	for len(q) > 0 {
		var it pqItem
		it, q = pqPop(q)
		s := it.state
		if done[s] {
			continue
		}
		done[s] = true
		node, phase := s%n, s/n
		for ai, l := range t.Adj[node] {
			var nextPhase int
			if up != nil {
				if up[node][ai] {
					if phase == 1 {
						continue // cannot go up after going down
					}
					nextPhase = 0
				} else {
					nextPhase = 1
				}
			}
			ns := l.To + nextPhase*n
			lc := rt.costs.linkCost(l)
			if costFn != nil {
				lc = costFn(node, ai)
			}
			c := dist[s] + lc
			if c < dist[ns]-1e-12 ||
				(math.Abs(c-dist[ns]) <= 1e-12 && prevState[ns] != -1 &&
					(s < prevState[ns] || (s == prevState[ns] && ai < prevLink[ns]))) {
				dist[ns] = c
				prevState[ns] = s
				prevLink[ns] = ai
				q = pqPush(q, pqItem{state: ns, cost: c})
			}
		}
	}
	paths := make([][]int, n)
	for dst := 0; dst < n; dst++ {
		if dst == src {
			continue
		}
		// choose the best terminal state for dst
		best := dst
		if up != nil && dist[dst+n] < dist[best] {
			best = dst + n
		}
		if math.IsInf(dist[best], 1) {
			continue // caller reports the error
		}
		rev := scr.rev[:0]
		for s := best; s != src; s = prevState[s] {
			rev = append(rev, prevLink[s])
		}
		scr.rev = rev
		path := make([]int, len(rev))
		for i := range rev {
			path[i] = rev[len(rev)-1-i]
		}
		paths[dst] = path
	}
	scr.heap = q[:0]
	return paths
}

// RefineRoutes rebuilds the route table with congestion-aware link costs:
// starting from the given table, each iteration measures the per-link (and
// per-wireless-channel) load the traffic matrix induces on the current
// routes, inflates every link's cost by an M/D/1 waiting factor, and
// re-solves the (mode-constrained) shortest paths. This models the
// per-application routing-table configuration an irregular NoC performs:
// hot links — saturated wireless channels, the up*/down* root — shed load
// to colder alternatives. XY tables are returned unchanged (dimension-order
// routing is oblivious by construction).
func RefineRoutes(rt *RouteTable, traffic [][]float64, iterations int, maxUtil float64) (*RouteTable, error) {
	if rt.mode == XY || iterations <= 0 {
		return rt, nil
	}
	if maxUtil <= 0 || maxUtil >= 1 {
		return nil, fmt.Errorf("noc: bad max utilization %v", maxUtil)
	}
	t := rt.topo
	n := t.NumSwitches()
	cur := rt
	for it := 0; it < iterations; it++ {
		// measure loads on the current routes
		linkLoad := make([][]float64, n)
		for u := range linkLoad {
			linkLoad[u] = make([]float64, len(t.Adj[u]))
		}
		channelLoad := make([]float64, topo.NumChannels)
		for s := 0; s < n; s++ {
			for d := 0; d < n; d++ {
				f := traffic[s][d]
				if f == 0 || s == d {
					continue
				}
				node := s
				for _, ai := range cur.paths[s][d] {
					l := t.Adj[node][ai]
					linkLoad[node][ai] += f
					if l.Type == topo.Wireless {
						channelLoad[l.Channel] += f
					}
					node = l.To
				}
			}
		}
		costFn := func(u, ai int) float64 {
			l := t.Adj[u][ai]
			base := cur.costs.linkCost(l)
			rho := linkLoad[u][ai]
			if l.Type == topo.Wireless {
				rho = channelLoad[l.Channel]
			}
			if rho > maxUtil {
				rho = maxUtil
			}
			return base / (1 - rho)
		}
		next, err := buildRoutesWithCost(t, cur.costs, cur.mode, costFn)
		if err != nil {
			return nil, err
		}
		cur = next
	}
	return cur, nil
}

// PathAdjIndices returns the route from src to dst as adjacency indices
// (shared storage; callers must not mutate).
func (rt *RouteTable) PathAdjIndices(src, dst int) []int { return rt.paths[src][dst] }

// Hops returns the hop count of the src->dst route (0 when src == dst).
func (rt *RouteTable) Hops(src, dst int) int { return len(rt.paths[src][dst]) }

// Path returns the switch sequence of the route from src to dst, inclusive
// of both endpoints.
func (rt *RouteTable) Path(src, dst int) []int {
	path := []int{src}
	cur := src
	for _, ai := range rt.paths[src][dst] {
		cur = rt.topo.Adj[cur][ai].To
		path = append(path, cur)
	}
	return path
}

// PathLinks returns the sequence of links along the route from src to dst.
func (rt *RouteTable) PathLinks(src, dst int) []topo.Link {
	var links []topo.Link
	cur := src
	for _, ai := range rt.paths[src][dst] {
		l := rt.topo.Adj[cur][ai]
		links = append(links, l)
		cur = l.To
	}
	return links
}

// PathEnergyPJ returns the per-flit energy of the src->dst route under the
// network energy model: one switch traversal per hop plus the destination
// ejection port, plus link energies. It walks the stored route in place —
// no PathLinks slice — because the phase-energy loop in internal/sim calls
// it once per routed pair per phase.
func (rt *RouteTable) PathEnergyPJ(src, dst int, nm energy.NetworkModel) float64 {
	if src == dst {
		return 0
	}
	var pj float64
	cur := src
	for _, ai := range rt.paths[src][dst] {
		l := rt.topo.Adj[cur][ai]
		if l.Type == topo.Wireless {
			pj += nm.WirelessHopPJ()
		} else {
			pj += nm.WirelineHopPJ(l.LengthMM)
		}
		cur = l.To
	}
	pj += nm.SwitchPJPerFlitPort
	return pj
}

// RouteCostCycles returns the total routing cost (the objective Dijkstra
// minimizes, including the wireless token bias) of the src->dst route.
func (rt *RouteTable) RouteCostCycles(src, dst int) float64 {
	var cycles float64
	cur := src
	for _, ai := range rt.paths[src][dst] {
		l := rt.topo.Adj[cur][ai]
		cycles += rt.costs.linkCost(l)
		cur = l.To
	}
	return cycles
}

// BaseLatencyCycles returns the uncontended head-flit latency of the route.
func (rt *RouteTable) BaseLatencyCycles(src, dst int) float64 {
	var cycles float64
	cur := src
	for _, ai := range rt.paths[src][dst] {
		l := rt.topo.Adj[cur][ai]
		cycles += rt.costs.baseLatency(l)
		cur = l.To
	}
	return cycles
}

// AvgHops returns the traffic-weighted mean hop count for a traffic matrix
// (any non-negative weights). With a nil matrix it returns the uniform
// all-pairs average.
func (rt *RouteTable) AvgHops(traffic [][]float64) float64 {
	n := rt.topo.NumSwitches()
	var num, den float64
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			w := 1.0
			if traffic != nil {
				w = traffic[s][d]
			}
			num += w * float64(rt.Hops(s, d))
			den += w
		}
	}
	if den == 0 {
		return 0
	}
	return num / den
}
