package noc

import (
	"math"
	"testing"

	"wivfi/internal/energy"
)

func defaultNM() energy.NetworkModel { return energy.DefaultNetworkModel() }

func zeroTraffic(n int) [][]float64 {
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
	}
	return m
}

func TestAnalyticSingleFlowUncontended(t *testing.T) {
	rt := meshRT(t, Shortest)
	traffic := zeroTraffic(64)
	traffic[0][1] = 0.001 // negligible load: contention factor ~1
	cfg := DefaultAnalyticConfig()
	res, err := Analytic(rt, traffic, defaultNM(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgHops != 1 {
		t.Errorf("AvgHops = %v, want 1", res.AvgHops)
	}
	// base latency of one mesh hop + serialization
	wantLat := rt.BaseLatencyCycles(0, 1)*(1/(1-0.001)) + cfg.PacketFlits - 1
	if math.Abs(res.AvgLatencyCycles-wantLat) > 1e-9 {
		t.Errorf("AvgLatency = %v, want %v", res.AvgLatencyCycles, wantLat)
	}
	wantPJ := rt.PathEnergyPJ(0, 1, defaultNM())
	if math.Abs(res.EnergyPJPerFlit-wantPJ) > 1e-9 {
		t.Errorf("EnergyPJPerFlit = %v, want %v", res.EnergyPJPerFlit, wantPJ)
	}
	if res.WirelessFraction != 0 {
		t.Errorf("WirelessFraction = %v on pure mesh", res.WirelessFraction)
	}
	if math.Abs(res.NetworkEDP-res.AvgLatencyCycles*res.EnergyPJPerFlit) > 1e-9 {
		t.Error("NetworkEDP inconsistent")
	}
}

func TestAnalyticContentionGrowsWithLoad(t *testing.T) {
	rt := meshRT(t, Shortest)
	nm := defaultNM()
	cfg := DefaultAnalyticConfig()
	prev := 0.0
	for i, load := range []float64{0.05, 0.3, 0.6, 0.9} {
		traffic := zeroTraffic(64)
		traffic[0][7] = load
		res, err := Analytic(rt, traffic, nm, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && res.AvgLatencyCycles <= prev {
			t.Errorf("latency did not grow with load %v: %v <= %v", load, res.AvgLatencyCycles, prev)
		}
		prev = res.AvgLatencyCycles
	}
}

func TestAnalyticUtilizationClip(t *testing.T) {
	rt := meshRT(t, Shortest)
	traffic := zeroTraffic(64)
	traffic[0][7] = 5 // hopeless overload
	res, err := Analytic(rt, traffic, defaultNM(), DefaultAnalyticConfig())
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(res.AvgLatencyCycles, 1) || math.IsNaN(res.AvgLatencyCycles) {
		t.Error("overload latency not clipped")
	}
	if res.MaxLinkUtilization < 4.9 {
		t.Errorf("MaxLinkUtilization = %v, want ~5", res.MaxLinkUtilization)
	}
}

func TestAnalyticWirelessSharedChannelPoolsLoad(t *testing.T) {
	rt := winocRT(t, UpDown)
	nm := defaultNM()
	cfg := DefaultAnalyticConfig()
	// find two pairs whose routes use wireless links of the same channel
	type flow struct{ s, d int }
	var flows []flow
	channelOf := -1
	for s := 0; s < 64 && len(flows) < 2; s++ {
		for d := 0; d < 64 && len(flows) < 2; d++ {
			if s == d {
				continue
			}
			for _, l := range rt.PathLinks(s, d) {
				if l.Type == 1 { // topo.Wireless
					if channelOf == -1 {
						channelOf = l.Channel
					}
					if l.Channel == channelOf {
						flows = append(flows, flow{s, d})
					}
					break
				}
			}
		}
	}
	if len(flows) < 2 {
		t.Skip("could not find two wireless flows on one channel")
	}
	// one flow alone
	tr1 := zeroTraffic(64)
	tr1[flows[0].s][flows[0].d] = 0.3
	res1, err := Analytic(rt, tr1, nm, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// both flows: channel pooling must raise the first flow's latency even
	// though the flows share no wireline link necessarily
	tr2 := zeroTraffic(64)
	tr2[flows[0].s][flows[0].d] = 0.3
	tr2[flows[1].s][flows[1].d] = 0.3
	res2, err := Analytic(rt, tr2, nm, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res2.AvgLatencyCycles <= res1.AvgLatencyCycles {
		t.Errorf("shared-channel load did not raise latency: %v <= %v",
			res2.AvgLatencyCycles, res1.AvgLatencyCycles)
	}
	if res1.WirelessFraction <= 0 {
		t.Error("wireless flow has zero wireless fraction")
	}
}

func TestAnalyticRejectsBadInput(t *testing.T) {
	rt := meshRT(t, Shortest)
	if _, err := Analytic(rt, zeroTraffic(10), defaultNM(), DefaultAnalyticConfig()); err == nil {
		t.Error("wrong-size matrix accepted")
	}
	bad := zeroTraffic(64)
	bad[1][2] = -1
	if _, err := Analytic(rt, bad, defaultNM(), DefaultAnalyticConfig()); err == nil {
		t.Error("negative traffic accepted")
	}
	ragged := zeroTraffic(64)
	ragged[5] = ragged[5][:10]
	if _, err := Analytic(rt, ragged, defaultNM(), DefaultAnalyticConfig()); err == nil {
		t.Error("ragged matrix accepted")
	}
}

func TestAnalyticZeroTraffic(t *testing.T) {
	rt := meshRT(t, Shortest)
	res, err := Analytic(rt, zeroTraffic(64), defaultNM(), DefaultAnalyticConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgLatencyCycles != 0 || res.EnergyPJPerFlit != 0 {
		t.Errorf("zero traffic produced %v", res)
	}
}

func TestWiNoCBeatsMeshOnLongRangeTraffic(t *testing.T) {
	// The paper's core network claim: for traffic between distant cores the
	// WiNoC delivers lower latency and energy than the mesh.
	mesh := meshRT(t, XY)
	winoc := winocRT(t, UpDown)
	nm := defaultNM()
	cfg := DefaultAnalyticConfig()
	traffic := zeroTraffic(64)
	// corner-to-corner flows between all four chip corners
	corners := []int{0, 7, 56, 63}
	for _, s := range corners {
		for _, d := range corners {
			if s != d {
				traffic[s][d] = 0.05
			}
		}
	}
	mres, err := Analytic(mesh, traffic, nm, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wres, err := Analytic(winoc, traffic, nm, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if wres.AvgLatencyCycles >= mres.AvgLatencyCycles {
		t.Errorf("WiNoC latency %v not below mesh %v", wres.AvgLatencyCycles, mres.AvgLatencyCycles)
	}
	if wres.EnergyPJPerFlit >= mres.EnergyPJPerFlit {
		t.Errorf("WiNoC energy %v not below mesh %v", wres.EnergyPJPerFlit, mres.EnergyPJPerFlit)
	}
	if wres.WirelessFraction == 0 {
		t.Error("long-range traffic not using wireless links")
	}
}
