package noc

import "testing"

// Benchmarks for the DES engines on the paper's 64-core WiNoC point (the
// configuration cmd/nocsim -des runs). BenchmarkDESEventEngine and
// BenchmarkDESReferenceEngine measure the same workload on the event
// engine and the cycle-driven reference, so their ratio is a
// machine-independent speedup that cmd/benchgate checks against the
// committed BENCH_des.json snapshot.

func benchDES(b *testing.B, rt *RouteTable, reference bool) {
	b.Helper()
	nm := defaultNM()
	cfg := DefaultDESConfig()
	pkts := benchPackets(rt.topo.NumSwitches())
	if reference {
		if _, err := runDESReference(rt, pkts, nm, cfg, desHooks{}); err != nil {
			b.Fatal(err)
		}
	} else if _, err := RunDES(rt, pkts, nm, cfg); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		if reference {
			_, err = runDESReference(rt, pkts, nm, cfg, desHooks{})
		} else {
			_, err = RunDES(rt, pkts, nm, cfg)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDESEventEngine(b *testing.B) {
	benchDES(b, winocRT(b, UpDown), false)
}

func BenchmarkDESReferenceEngine(b *testing.B) {
	benchDES(b, winocRT(b, UpDown), true)
}

func BenchmarkDESEventEngineMesh(b *testing.B) {
	benchDES(b, meshRT(b, XY), false)
}
