package noc

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"sync"

	"wivfi/internal/energy"
	"wivfi/internal/topo"
)

// This file is the event-calendar wormhole engine behind RunDES. It keeps
// the exact semantics of the cycle-driven reference engine (see
// des_reference_test.go) — same three-phase cycle structure, round-robin
// arbitration order, token rotation, pipeline delays, hook firing order,
// and float accumulation order — while removing its three hot-path costs:
//
//   - every simulated cycle scanned all switches and all adjacencies; the
//     engine iterates active-node bitmasks instead, so per-cycle work is
//     proportional to in-flight traffic, and a calendar of arrival /
//     injection wakes skips provably idle cycles outright (token state is
//     fast-forwarded analytically across the skipped span);
//   - per-forward route lookup rescanned the packet's path (O(path
//     length)); the engine tracks each packet's head hop index, making the
//     lookup O(1);
//   - buffers resliced a heap-allocated queue per pop and three channel
//     scratch slices were allocated per cycle; the engine keeps all flit,
//     link, and buffer state in struct-of-arrays form over one preallocated
//     arena of index-only slots, so the steady-state loop performs no
//     allocation at all.
//
// Engines are reusable: runDESHooked borrows one from a bounded free list,
// and a borrowed engine that last ran the same route table and buffer
// config only clears its mutable state, so a warmed RunDES is
// allocation-free end to end (enforced by the zero-alloc regression test).

// flitSlot is one buffered flit in the arena: index-only, so a drained
// buffer retains nothing (the structural fix for the fifo.pop retention
// bug).
type flitSlot struct {
	pkt     int32
	idx     int32 // flit index within the packet
	arrived int64 // cycle the flit entered this buffer
}

// injEvent schedules a source whose front packet becomes injectable at cyc.
type injEvent struct {
	cyc int64
	src int32
}

// desEngine holds all simulator state in struct-of-arrays form. Directed
// links (adjacency entries) are flattened to ids base[u]..base[u+1]-1; the
// input buffer fed by link li lives at flat id linkRev[li].
type desEngine struct {
	// cache keys: topology-derived arrays are rebuilt only when these
	// change between runs.
	rt         *RouteTable
	nm         energy.NetworkModel
	nmValid    bool
	bufDepth   int
	wiBufDepth int

	n     int // switches
	words int // active-bitmask words

	// --- topology-derived (immutable during a run) ---
	base         []int32 // len n+1: flat link id range per switch
	linkTo       []int32
	linkRev      []int32 // flat id of the buffer receiving this link's flits
	linkDelay    []int64
	linkWireless []bool
	linkChannel  []int32
	linkEnergyPJ []float64 // per-flit hop energy, precomputed from nm
	bufNode      []int32   // owning switch of each buffer (indexed like links)
	bufStart     []int32   // arena offset of each buffer's ring segment
	bufCap       []int32
	rings        [][]int32 // per channel: sorted WI switch ids
	maxDelay     int64
	wakeW        int64 // arrival-wake ring size, > maxDelay

	// --- per-run mutable state ---
	arena    []flitSlot
	bufHead  []int32
	bufLen   []int32
	bindPkt  []int32 // bound packet per output link, -1 when free
	bindSrcQ []int32 // source queue: adjacency index, or deg(u) for injection
	bindSent []int32
	rrPtr    []int32
	// Event-maintained head eligibility: updated only when a buffer's
	// head changes (push into an empty buffer, or pop), so the per-cycle
	// phases compare timestamps instead of rescanning arena state.
	headEligAt  []int64  // cycle the head becomes arbitrable; farFuture if never
	headDesired []int32  // output adjacency the head routes to, valid when arbitrable
	headEjectAt []int64  // cycle the head becomes ejectable here; farFuture if never
	nodeEligAt  []int64  // lazy lower bound over the node's headEligAt
	nodeEjectAt []int64  // lazy lower bound over the node's headEjectAt
	injEligAt   []int64  // cycle the injection front becomes arbitrable (exact)
	injDesired  []int32  // output adjacency of the injection front
	nodeBufs    []int32  // non-empty input buffers per switch
	nodeBinds   []int32  // live output bindings per switch
	bindMask    []uint64 // bound outputs per switch (bit 63 shared beyond 63)
	injReady    []bool   // front of the injection queue is arbitrable
	injPtr      []int32
	active      []uint64
	tokenIdx    []int32
	arrWake     []int64 // ring calendar of flit-maturity wake cycles
	injHeap     []injEvent
	chUsed      [topo.NumChannels]bool
	chTail      [topo.NumChannels]bool
	chHeld      [topo.NumChannels]bool

	// --- packets, struct-of-arrays ---
	pktID       []int
	pktSrc      []int32
	pktDst      []int32
	pktFlits    []int32
	pktInject   []int64
	pktInjected []int32
	pktEjected  []int32
	pktHeadHop  []int32 // hops completed by the head flit: O(1) route lookup
	pktRoute    [][]int // adjacency indices, shared with rt.paths
	bySrc       [][]int32
	localID     []int
	localLat    []int64
	numRouted   int
	sortBuf     []int32
}

// farFuture is the "never" timestamp for the event-maintained
// eligibility calendar: far beyond any reachable cycle, yet safe to add
// small offsets to without overflowing int64.
const farFuture = int64(1) << 62

// desEngines is the bounded free list runDESHooked borrows engines from.
// A plain mutex-guarded slice (not a sync.Pool) so warmed engines survive
// GC cycles and the zero-alloc regression test stays deterministic.
var desEngines struct {
	mu   sync.Mutex
	free []*desEngine
}

const maxFreeEngines = 8

func acquireEngine() *desEngine {
	desEngines.mu.Lock()
	if n := len(desEngines.free); n > 0 {
		e := desEngines.free[n-1]
		desEngines.free[n-1] = nil
		desEngines.free = desEngines.free[:n-1]
		desEngines.mu.Unlock()
		return e
	}
	desEngines.mu.Unlock()
	return &desEngine{}
}

func releaseEngine(e *desEngine) {
	desEngines.mu.Lock()
	if len(desEngines.free) < maxFreeEngines {
		desEngines.free = append(desEngines.free, e)
	}
	desEngines.mu.Unlock()
}

// bind prepares the engine for a run on rt with the given energy model and
// buffer config, rebuilding topology-derived arrays only when the cache
// key changed since the engine's previous run.
func (e *desEngine) bind(rt *RouteTable, nm energy.NetworkModel, cfg DESConfig) error {
	if e.rt != rt || e.bufDepth != cfg.BufDepthFlits || e.wiBufDepth != cfg.WIBufDepthFlits {
		if err := e.rebuild(rt, cfg); err != nil {
			return err
		}
		e.nmValid = false
	}
	if !e.nmValid || e.nm != nm {
		t := rt.topo
		for u := 0; u < e.n; u++ {
			for ai, l := range t.Adj[u] {
				li := e.base[u] + int32(ai)
				if l.Type == topo.Wireless {
					e.linkEnergyPJ[li] = nm.WirelessHopPJ()
				} else {
					e.linkEnergyPJ[li] = nm.WirelineHopPJ(l.LengthMM)
				}
			}
		}
		e.nm = nm
		e.nmValid = true
	}
	e.resetRunState()
	return nil
}

// rebuild derives the flattened link/buffer layout from the topology.
func (e *desEngine) rebuild(rt *RouteTable, cfg DESConfig) error {
	t := rt.topo
	n := t.NumSwitches()
	numLinks := 0
	for u := 0; u < n; u++ {
		numLinks += len(t.Adj[u])
	}
	e.rt = nil // invalidated until the rebuild succeeds
	e.n = n
	e.words = (n + 63) / 64

	e.base = growI32(e.base, n+1)
	e.base[0] = 0
	for u := 0; u < n; u++ {
		e.base[u+1] = e.base[u] + int32(len(t.Adj[u]))
	}
	e.linkTo = growI32(e.linkTo, numLinks)
	e.linkRev = growI32(e.linkRev, numLinks)
	e.linkDelay = growI64(e.linkDelay, numLinks)
	e.linkWireless = growBool(e.linkWireless, numLinks)
	e.linkChannel = growI32(e.linkChannel, numLinks)
	e.linkEnergyPJ = growF64(e.linkEnergyPJ, numLinks)
	e.bufNode = growI32(e.bufNode, numLinks)
	e.bufStart = growI32(e.bufStart, numLinks)
	e.bufCap = growI32(e.bufCap, numLinks)

	arenaSize := int32(0)
	for u := 0; u < n; u++ {
		for ai, l := range t.Adj[u] {
			li := e.base[u] + int32(ai)
			e.linkTo[li] = int32(l.To)
			e.linkWireless[li] = l.Type == topo.Wireless
			e.linkChannel[li] = int32(l.Channel)
			d := int64(math.Round(rt.costs.baseLatency(l)))
			if d < 1 {
				d = 1
			}
			e.linkDelay[li] = d
			// reverse direction: the input buffer at l.To fed by this link
			rev := int32(-1)
			for aj, r := range t.Adj[l.To] {
				if r.To == u && r.Type == l.Type && r.Channel == l.Channel {
					rev = e.base[l.To] + int32(aj)
					break
				}
			}
			if rev < 0 {
				return fmt.Errorf("noc: link %d->%d has no reverse", u, l.To)
			}
			e.linkRev[li] = rev
			// this link id doubles as the buffer id for flits arriving
			// over Adj[u][ai] (symmetric storage, as in the reference).
			e.bufNode[li] = int32(u)
			depth := cfg.BufDepthFlits
			if l.Type == topo.Wireless {
				depth = cfg.WIBufDepthFlits
			}
			e.bufStart[li] = arenaSize
			e.bufCap[li] = int32(depth)
			arenaSize += int32(depth)
		}
	}
	if cap(e.arena) < int(arenaSize) {
		e.arena = make([]flitSlot, arenaSize)
	} else {
		e.arena = e.arena[:arenaSize]
	}

	// wireless token rings, sorted ascending as in the reference engine.
	// A member has one wireless link per other ring member on its channel,
	// each an independently bindable output.
	if e.rings == nil {
		e.rings = make([][]int32, topo.NumChannels)
	}
	for ch := range e.rings {
		e.rings[ch] = e.rings[ch][:0]
	}
	for _, wi := range t.WIs {
		ch := t.ChannelOf[wi]
		e.rings[ch] = append(e.rings[ch], int32(wi))
	}
	for ch := range e.rings {
		ring := e.rings[ch]
		sort.Slice(ring, func(i, j int) bool { return ring[i] < ring[j] })
	}

	e.maxDelay = 1
	for _, d := range e.linkDelay {
		if d > e.maxDelay {
			e.maxDelay = d
		}
	}
	e.wakeW = e.maxDelay + 1
	e.arrWake = growI64(e.arrWake, int(e.wakeW))

	// per-run arrays sized by the new layout
	e.bufHead = growI32(e.bufHead, numLinks)
	e.bufLen = growI32(e.bufLen, numLinks)
	e.bindPkt = growI32(e.bindPkt, numLinks)
	e.bindSrcQ = growI32(e.bindSrcQ, numLinks)
	e.bindSent = growI32(e.bindSent, numLinks)
	e.rrPtr = growI32(e.rrPtr, numLinks)
	e.headEligAt = growI64(e.headEligAt, numLinks)
	e.headDesired = growI32(e.headDesired, numLinks)
	e.headEjectAt = growI64(e.headEjectAt, numLinks)
	e.nodeEligAt = growI64(e.nodeEligAt, n)
	e.nodeEjectAt = growI64(e.nodeEjectAt, n)
	e.injEligAt = growI64(e.injEligAt, n)
	e.injDesired = growI32(e.injDesired, n)
	e.nodeBufs = growI32(e.nodeBufs, n)
	e.nodeBinds = growI32(e.nodeBinds, n)
	if cap(e.bindMask) < n {
		e.bindMask = make([]uint64, n)
	} else {
		e.bindMask = e.bindMask[:n]
	}
	e.injReady = growBool(e.injReady, n)
	e.injPtr = growI32(e.injPtr, n)
	e.tokenIdx = growI32(e.tokenIdx, topo.NumChannels)
	if cap(e.active) < e.words {
		e.active = make([]uint64, e.words)
	} else {
		e.active = e.active[:e.words]
	}
	if cap(e.bySrc) < n {
		e.bySrc = make([][]int32, n)
	} else {
		e.bySrc = e.bySrc[:n]
	}

	e.rt = rt
	e.bufDepth = cfg.BufDepthFlits
	e.wiBufDepth = cfg.WIBufDepthFlits
	return nil
}

// resetRunState clears all mutable per-run state; allocation-free.
func (e *desEngine) resetRunState() {
	for i := range e.bufHead {
		e.bufHead[i] = 0
		e.bufLen[i] = 0
		e.bindPkt[i] = -1
		e.bindSrcQ[i] = 0
		e.bindSent[i] = 0
		e.rrPtr[i] = 0
		e.headEligAt[i] = farFuture
		e.headDesired[i] = 0
		e.headEjectAt[i] = farFuture
	}
	for i := 0; i < e.n; i++ {
		e.nodeBufs[i] = 0
		e.nodeBinds[i] = 0
		e.bindMask[i] = 0
		e.injReady[i] = false
		e.injPtr[i] = 0
		e.nodeEligAt[i] = farFuture
		e.nodeEjectAt[i] = farFuture
		e.injEligAt[i] = farFuture
		e.injDesired[i] = 0
	}
	for i := range e.active {
		e.active[i] = 0
	}
	for i := range e.tokenIdx {
		e.tokenIdx[i] = 0
	}
	for i := range e.arrWake {
		e.arrWake[i] = -1
	}
	e.injHeap = e.injHeap[:0]
	e.chUsed = [topo.NumChannels]bool{}
	e.chTail = [topo.NumChannels]bool{}
	e.chHeld = [topo.NumChannels]bool{}
}

// loadPackets splits the run's packets into local deliveries and routed
// per-source injection queues, stably sorted by (Inject, ID) exactly as
// the reference engine orders them.
func (e *desEngine) loadPackets(packets []Packet) {
	e.localID = e.localID[:0]
	e.localLat = e.localLat[:0]
	e.pktID = e.pktID[:0]
	e.pktSrc = e.pktSrc[:0]
	e.pktDst = e.pktDst[:0]
	e.pktFlits = e.pktFlits[:0]
	e.pktInject = e.pktInject[:0]
	e.pktInjected = e.pktInjected[:0]
	e.pktEjected = e.pktEjected[:0]
	e.pktHeadHop = e.pktHeadHop[:0]
	e.pktRoute = e.pktRoute[:0]
	for u := range e.bySrc {
		e.bySrc[u] = e.bySrc[u][:0]
	}
	for _, pk := range packets {
		if pk.Src == pk.Dst {
			// Local delivery: consumes no network resources.
			e.localID = append(e.localID, pk.ID)
			e.localLat = append(e.localLat, int64(pk.Flits-1))
			continue
		}
		p := int32(len(e.pktID))
		e.pktID = append(e.pktID, pk.ID)
		e.pktSrc = append(e.pktSrc, int32(pk.Src))
		e.pktDst = append(e.pktDst, int32(pk.Dst))
		e.pktFlits = append(e.pktFlits, int32(pk.Flits))
		e.pktInject = append(e.pktInject, pk.Inject)
		e.pktInjected = append(e.pktInjected, 0)
		e.pktEjected = append(e.pktEjected, 0)
		e.pktHeadHop = append(e.pktHeadHop, 0)
		e.pktRoute = append(e.pktRoute, e.rt.paths[pk.Src][pk.Dst])
		e.bySrc[pk.Src] = append(e.bySrc[pk.Src], p)
	}
	e.numRouted = len(e.pktID)
	for u := range e.bySrc {
		if len(e.bySrc[u]) > 1 {
			e.sortByInject(e.bySrc[u])
		}
	}
	// initial injection readiness (first simulated cycle is 0)
	for u := 0; u < e.n; u++ {
		if len(e.bySrc[u]) == 0 {
			continue
		}
		p := e.bySrc[u][0]
		e.injEligAt[u] = e.pktInject[p]
		e.injDesired[u] = int32(e.pktRoute[p][0])
		if e.pktInject[p] <= 0 {
			e.injReady[u] = true
			e.refreshNodeBit(u)
		} else {
			e.heapPush(e.pktInject[p], int32(u))
		}
	}
}

// lessInject orders packet indices by (Inject, ID), the reference
// engine's per-source queue order.
func (e *desEngine) lessInject(x, y int32) bool {
	if e.pktInject[x] != e.pktInject[y] {
		return e.pktInject[x] < e.pktInject[y]
	}
	return e.pktID[x] < e.pktID[y]
}

// sortByInject stably sorts a source queue without allocating in steady
// state: insertion sort for short queues, bottom-up merge (with a reused
// scratch buffer) beyond that. Any stable sort yields the identical
// permutation sort.SliceStable produced in the reference engine.
func (e *desEngine) sortByInject(a []int32) {
	const runLen = 32
	for lo := 0; lo < len(a); lo += runLen {
		hi := lo + runLen
		if hi > len(a) {
			hi = len(a)
		}
		e.insertionSort(a[lo:hi])
	}
	if len(a) <= runLen {
		return
	}
	e.sortBuf = growI32(e.sortBuf, len(a))
	buf := e.sortBuf
	for width := runLen; width < len(a); width *= 2 {
		for lo := 0; lo+width < len(a); lo += 2 * width {
			hi := lo + 2*width
			if hi > len(a) {
				hi = len(a)
			}
			e.mergeRuns(a[lo:hi], width, buf)
		}
	}
}

func (e *desEngine) insertionSort(a []int32) {
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && e.lessInject(v, a[j]) {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}

// mergeRuns merges a[:mid] and a[mid:], both sorted, stably (left wins
// ties) using buf as scratch.
func (e *desEngine) mergeRuns(a []int32, mid int, buf []int32) {
	left := buf[:mid]
	copy(left, a[:mid])
	i, j, k := 0, mid, 0
	for i < mid && j < len(a) {
		if e.lessInject(a[j], left[i]) {
			a[k] = a[j]
			j++
		} else {
			a[k] = left[i]
			i++
		}
		k++
	}
	for i < mid {
		a[k] = left[i]
		i++
		k++
	}
}

// run executes the simulation and returns the aggregate result plus the
// count of undelivered packets. All bookkeeping mirrors the reference
// engine event for event, so hook sequences and float accumulation order
// are identical.
func (e *desEngine) run(cfg DESConfig, hooks desHooks) (DESResult, int) {
	var res DESResult
	remaining := e.numRouted
	for i, id := range e.localID {
		res.Delivered++
		lat := e.localLat[i]
		res.AvgLatencyCycles += float64(lat)
		if lat > res.MaxLatencyCycles {
			res.MaxLatencyCycles = lat
		}
		if hooks.onDeliver != nil {
			hooks.onDeliver(id, lat)
		}
	}

	var cycle int64
	for remaining > 0 && cycle < cfg.MaxCycles {
		// Wake sources whose front packet became injectable.
		for len(e.injHeap) > 0 && e.injHeap[0].cyc <= cycle {
			src := e.heapPop()
			e.refreshInjReady(int(src), cycle)
		}

		moved := false

		// Phase 1: ejection. Drain every input buffer's head flits destined
		// for this switch (flits must have arrived in an earlier cycle).
		for w := 0; w < e.words; w++ {
			mask := e.active[w]
			for mask != 0 {
				tz := bits.TrailingZeros64(mask)
				mask &^= 1 << uint(tz)
				v := w*64 + tz
				if e.nodeEjectAt[v] > cycle {
					continue
				}
				minEject := farFuture
				for b := e.base[v]; b < e.base[v+1]; b++ {
					for e.headEjectAt[b] <= cycle {
						p := e.arena[e.bufStart[b]+e.bufHead[b]].pkt
						e.popBuf(b, v)
						moved = true
						res.EnergyPJ += e.nm.SwitchPJPerFlitPort // ejection port
						e.pktEjected[p]++
						if e.pktEjected[p] == e.pktFlits[p] {
							remaining--
							res.Delivered++
							lat := cycle - e.pktInject[p]
							res.AvgLatencyCycles += float64(lat)
							if lat > res.MaxLatencyCycles {
								res.MaxLatencyCycles = lat
							}
							if hooks.onDeliver != nil {
								hooks.onDeliver(e.pktID[p], lat)
							}
						}
					}
					if e.headEjectAt[b] < minEject {
						minEject = e.headEjectAt[b]
					}
				}
				e.nodeEjectAt[v] = minEject
			}
		}

		// Phase 2: transfers. One flit per output link per cycle; one flit
		// per wireless channel per cycle, transmitted by the token holder.
		for w := 0; w < e.words; w++ {
			mask := e.active[w]
			for mask != 0 {
				tz := bits.TrailingZeros64(mask)
				mask &^= 1 << uint(tz)
				u := w*64 + tz
				if e.nodeBinds[u] == 0 && e.nodeEligAt[u] > cycle && e.injEligAt[u] > cycle {
					// No live binding and provably no arbitrable candidate:
					// phase 2 cannot act at this node.
					continue
				}
				b0 := e.base[u]
				deg := int(e.base[u+1] - b0)
				// Gather arbitration candidates once per node per cycle:
				// every eligible head routes to exactly one output, so the
				// round-robin scan below only runs for outputs a candidate
				// wants. wantMask bits are only ever set (a stale bit just
				// costs one wasted scan); headEligAt/headDesired are kept
				// exact as pops expose new heads mid-phase.
				var wantMask uint64
				minElig := farFuture
				for q := 0; q < deg; q++ {
					fq := b0 + int32(q)
					at := e.headEligAt[fq]
					if at <= cycle {
						wantMask |= wantBit(int(e.headDesired[fq]))
					}
					if at < minElig {
						minElig = at
					}
				}
				e.nodeEligAt[u] = minElig
				if e.injEligAt[u] <= cycle {
					wantMask |= wantBit(int(e.injDesired[u]))
				}
				if wantMask == 0 && e.nodeBinds[u] == 0 {
					continue
				}
				// Visit only outputs that are bound or wanted, in ascending
				// order — identical to scanning every output, because an
				// unbound, unwanted output is a guaranteed no-op. Switches
				// with more than 64 outputs (bit 63 is shared) fall back to
				// the full scan.
				wide := deg > 64
				var outMask uint64
				if !wide {
					outMask = wantMask | e.bindMask[u]
				}
				for ai := 0; ai < deg; ai++ {
					if !wide {
						if outMask == 0 {
							break
						}
						ai = bits.TrailingZeros64(outMask)
						outMask &^= 1 << uint(ai)
					}
					li := b0 + int32(ai)
					wireless := e.linkWireless[li]
					var ch int32
					if wireless {
						ch = e.linkChannel[li]
						ring := e.rings[ch]
						if len(ring) == 0 {
							continue
						}
						holder := ring[e.tokenIdx[ch]]
						if int(holder) != u || e.chUsed[ch] {
							// A holder with an in-flight wormhole keeps the
							// token even when it cannot transmit this cycle.
							if int(holder) == u && e.bindPkt[li] >= 0 {
								e.chHeld[ch] = true
							}
							continue
						}
					}
					dstBuf := e.linkRev[li]
					if e.bindPkt[li] < 0 {
						// Arbitrate a new packet: round-robin over source
						// queues whose head is a routable head flit.
						if wantMask&wantBit(ai) == 0 {
							continue
						}
						p, srcQ, ok := e.pickCandidate(u, ai, deg, cycle)
						if !ok {
							continue
						}
						e.bindPkt[li] = p
						e.bindSrcQ[li] = srcQ
						e.bindSent[li] = 0
						e.nodeBinds[u]++
						e.bindMask[u] |= wantBit(ai)
						moved = true
					}
					if e.bufLen[dstBuf] >= e.bufCap[dstBuf] {
						if wireless {
							e.chHeld[ch] = true
						}
						continue
					}
					// Forward the next flit of the bound packet if available.
					p := e.bindPkt[li]
					flIdx, ok := e.takeFlit(u, li, deg, cycle)
					if !ok {
						if wireless {
							e.chHeld[ch] = true
						}
						continue
					}
					moved = true
					if flIdx == 0 {
						// Advance before the push: the downstream buffer's head
						// state reads the route index at the receiving switch.
						e.pktHeadHop[p]++
					}
					e.pushBuf(dstBuf, p, flIdx, cycle+e.linkDelay[li]-1)
					// A pop may have exposed a newly arbitrable head for an
					// output still to come this cycle (never one already
					// passed: the reference saw the pre-pop state there too).
					if srcQ := e.bindSrcQ[li]; int(srcQ) != deg {
						fq := b0 + srcQ
						if e.headEligAt[fq] <= cycle {
							d := int(e.headDesired[fq])
							wantMask |= wantBit(d)
							if d > ai {
								outMask |= wantBit(d)
							}
						}
					}
					res.TotalFlitHops++
					if hooks.onForward != nil {
						hooks.onForward(u, ai, cycle)
					}
					res.EnergyPJ += e.linkEnergyPJ[li]
					if wireless {
						res.WirelessFlitHops++
						e.chUsed[ch] = true
						if flIdx == e.pktFlits[p]-1 {
							e.chTail[ch] = true
						}
					}
					e.bindSent[li]++
					if e.bindSent[li] == e.pktFlits[p] {
						e.bindPkt[li] = -1
						e.nodeBinds[u]--
						e.clearBindBit(u, ai, deg)
						if int(e.bindSrcQ[li]) == deg {
							// Source finished injecting this packet: advance
							// the injection queue to the next packet, which
							// may itself be arbitrable for a later output.
							e.advanceInjQueue(u, cycle)
							if e.injEligAt[u] <= cycle {
								d := int(e.injDesired[u])
								wantMask |= wantBit(d)
								if d > ai {
									outMask |= wantBit(d)
								}
							}
						}
						e.refreshNodeBit(u)
					}
				}
			}
		}

		// Phase 3: token rotation. A holder that finished a packet or had
		// nothing to send passes the token; a holder mid-packet keeps it so
		// channel wormholes are not interleaved.
		for ch := 0; ch < topo.NumChannels; ch++ {
			if len(e.rings[ch]) == 0 {
				continue
			}
			if e.chTail[ch] || (!e.chUsed[ch] && !e.chHeld[ch]) {
				e.tokenIdx[ch] = (e.tokenIdx[ch] + 1) % int32(len(e.rings[ch]))
			}
			e.chUsed[ch] = false
			e.chTail[ch] = false
			e.chHeld[ch] = false
		}

		if remaining == 0 || moved {
			cycle++
			continue
		}
		// Quiescent cycle: jump the calendar to the next cycle anything can
		// change, fast-forwarding token rotation across the skipped span.
		next := e.nextWake(cycle, cfg.MaxCycles)
		e.fastForwardTokens(next - cycle - 1)
		cycle = next
	}

	res.Cycles = cycle
	res.Stalled = remaining
	if res.Delivered > 0 {
		res.AvgLatencyCycles /= float64(res.Delivered)
	}
	return res, remaining
}

// wantBit maps an output adjacency index to its bit in the per-node
// candidate mask. Outputs beyond 63 share the top bit, so on a
// pathologically high-degree switch the mask degrades to a conservative
// filter rather than losing candidates.
func wantBit(ai int) uint64 {
	if ai > 63 {
		ai = 63
	}
	return 1 << uint(ai)
}

// clearBindBit drops output ai from node u's bound-output mask. Bit 63
// is shared by all outputs beyond 63, so it only clears once no such
// output holds a binding.
func (e *desEngine) clearBindBit(u, ai, deg int) {
	if ai < 63 {
		e.bindMask[u] &^= 1 << uint(ai)
		return
	}
	for k := 63; k < deg; k++ {
		if e.bindPkt[e.base[u]+int32(k)] >= 0 {
			return
		}
	}
	e.bindMask[u] &^= 1 << 63
}

// pickCandidate runs the round-robin output arbitration for output ai at
// node u over the event-maintained candidate state, advancing the
// round-robin pointer on success. headEligAt/headDesired and injEligAt
// mirror the buffer heads and injection front exactly, so the winner is
// the same one a direct scan of the heads would pick.
func (e *desEngine) pickCandidate(u, ai, deg int, cycle int64) (int32, int32, bool) {
	numQ := deg + 1
	b0 := e.base[u]
	li := b0 + int32(ai)
	start := int(e.rrPtr[li])
	for k := 0; k < numQ; k++ {
		q := start + k
		if q >= numQ {
			q -= numQ
		}
		if q == deg {
			// Injection queue: the oldest not-fully-injected packet at u.
			if e.injEligAt[u] <= cycle && int(e.injDesired[u]) == ai {
				e.rrPtr[li] = int32((q + 1) % numQ)
				return e.bySrc[u][e.injPtr[u]], int32(deg), true
			}
			continue
		}
		fq := b0 + int32(q)
		if e.headEligAt[fq] <= cycle && int(e.headDesired[fq]) == ai {
			e.rrPtr[li] = int32((q + 1) % numQ)
			h := &e.arena[e.bufStart[fq]+e.bufHead[fq]]
			return h.pkt, int32(q), true
		}
	}
	return 0, 0, false
}

// arbitrate is a pure would-anything-win probe over the live buffer
// state: it scans source queues at node u round-robin for a head flit
// that routes to output ai, without touching the round-robin pointer.
// The idle-skip safety check uses it to dry-run future cycles; the hot
// path arbitrates via pickCandidate over the gathered candidates.
func (e *desEngine) arbitrate(u, ai, deg int, cycle int64) bool {
	numQ := deg + 1
	li := e.base[u] + int32(ai)
	start := int(e.rrPtr[li])
	for k := 0; k < numQ; k++ {
		q := (start + k) % numQ
		if q < deg {
			b := e.base[u] + int32(q)
			if e.bufLen[b] == 0 {
				continue
			}
			h := &e.arena[e.bufStart[b]+e.bufHead[b]]
			if h.arrived >= cycle || h.idx != 0 || int(e.pktDst[h.pkt]) == u {
				continue
			}
			if e.pktRoute[h.pkt][e.pktHeadHop[h.pkt]] == ai {
				return true
			}
		} else {
			// Injection queue: the oldest not-fully-injected packet at u.
			ptr := int(e.injPtr[u])
			if ptr >= len(e.bySrc[u]) {
				continue
			}
			p := e.bySrc[u][ptr]
			if e.pktInject[p] > cycle || e.pktInjected[p] != 0 {
				continue
			}
			if e.pktRoute[p][0] == ai {
				return true
			}
		}
	}
	return false
}

// takeFlit pops the next flit of the packet bound to output li if it is at
// the head of its source queue and eligible this cycle.
func (e *desEngine) takeFlit(u int, li int32, deg int, cycle int64) (int32, bool) {
	p := e.bindPkt[li]
	if int(e.bindSrcQ[li]) == deg {
		// Injection: synthesize the next flit.
		if e.pktInjected[p] >= e.pktFlits[p] || e.pktInject[p] > cycle {
			return 0, false
		}
		idx := e.pktInjected[p]
		e.pktInjected[p]++
		if idx == 0 {
			// The front is now mid-injection and no longer arbitrable.
			e.injEligAt[u] = farFuture
		}
		return idx, true
	}
	b := e.base[u] + e.bindSrcQ[li]
	if e.bufLen[b] == 0 {
		return 0, false
	}
	h := &e.arena[e.bufStart[b]+e.bufHead[b]]
	if h.pkt != p || h.arrived >= cycle {
		return 0, false
	}
	idx := h.idx
	e.popBuf(b, u)
	return idx, true
}

// popBuf removes the head flit of buffer b owned by node.
func (e *desEngine) popBuf(b int32, node int) {
	e.bufHead[b]++
	if e.bufHead[b] == e.bufCap[b] {
		e.bufHead[b] = 0
	}
	e.bufLen[b]--
	if e.bufLen[b] == 0 {
		e.headEligAt[b] = farFuture
		e.headEjectAt[b] = farFuture
		e.nodeBufs[node]--
		if e.nodeBufs[node] == 0 {
			e.refreshNodeBit(node)
		}
	} else {
		e.setHeadState(b, node)
	}
}

// pushBuf appends a flit to buffer b and schedules its maturity wake.
func (e *desEngine) pushBuf(b, pkt, idx int32, arrived int64) {
	pos := e.bufHead[b] + e.bufLen[b]
	if pos >= e.bufCap[b] {
		pos -= e.bufCap[b]
	}
	e.arena[e.bufStart[b]+pos] = flitSlot{pkt: pkt, idx: idx, arrived: arrived}
	e.bufLen[b]++
	if e.bufLen[b] == 1 {
		v := int(e.bufNode[b])
		e.nodeBufs[v]++
		if e.nodeBufs[v] == 1 {
			e.refreshNodeBit(v)
		}
		e.setHeadState(b, v)
	}
	w := arrived + 1
	e.arrWake[w%e.wakeW] = w
}

// setHeadState recomputes buffer b's head-eligibility timestamps after
// the head changed; v owns b. The lazy per-node bounds are only lowered
// here (a new head can be arbitrable or ejectable earlier than the
// bound); the phase scans raise them back when they go stale. A head
// flit's pktHeadHop is stable while it sits in b — it only advances when
// the flit is forwarded, which pops it — so headDesired stays valid
// until the next head change.
func (e *desEngine) setHeadState(b int32, v int) {
	h := &e.arena[e.bufStart[b]+e.bufHead[b]]
	if int(e.pktDst[h.pkt]) == v {
		e.headEligAt[b] = farFuture
		e.headEjectAt[b] = h.arrived + 1
		if h.arrived+1 < e.nodeEjectAt[v] {
			e.nodeEjectAt[v] = h.arrived + 1
		}
		return
	}
	e.headEjectAt[b] = farFuture
	if h.idx != 0 {
		e.headEligAt[b] = farFuture
		return
	}
	e.headEligAt[b] = h.arrived + 1
	e.headDesired[b] = int32(e.pktRoute[h.pkt][e.pktHeadHop[h.pkt]])
	if h.arrived+1 < e.nodeEligAt[v] {
		e.nodeEligAt[v] = h.arrived + 1
	}
}

// refreshNodeBit recomputes node u's activity bit.
func (e *desEngine) refreshNodeBit(u int) {
	if e.nodeBufs[u] > 0 || e.nodeBinds[u] > 0 || e.injReady[u] {
		e.active[u>>6] |= 1 << (uint(u) & 63)
	} else {
		e.active[u>>6] &^= 1 << (uint(u) & 63)
	}
}

// advanceInjQueue skips fully injected packets at the front of u's
// injection queue and refreshes the new front's readiness.
func (e *desEngine) advanceInjQueue(u int, cycle int64) {
	for int(e.injPtr[u]) < len(e.bySrc[u]) {
		p := e.bySrc[u][e.injPtr[u]]
		if e.pktInjected[p] != e.pktFlits[p] {
			break
		}
		e.injPtr[u]++
	}
	if ptr := int(e.injPtr[u]); ptr < len(e.bySrc[u]) && e.pktInjected[e.bySrc[u][ptr]] == 0 {
		p := e.bySrc[u][ptr]
		e.injEligAt[u] = e.pktInject[p]
		e.injDesired[u] = int32(e.pktRoute[p][0])
	} else {
		e.injEligAt[u] = farFuture
	}
	e.refreshInjReady(u, cycle)
}

// refreshInjReady recomputes whether u's front packet is arbitrable now,
// scheduling a wake for a future front.
func (e *desEngine) refreshInjReady(u int, cycle int64) {
	ready := false
	if ptr := int(e.injPtr[u]); ptr < len(e.bySrc[u]) {
		p := e.bySrc[u][ptr]
		if e.pktInject[p] <= cycle {
			ready = e.pktInjected[p] == 0
		} else {
			e.heapPush(e.pktInject[p], int32(u))
		}
	}
	e.injReady[u] = ready
	e.refreshNodeBit(u)
}

// nextWake returns the next cycle at which the frozen network state can
// change: the earliest flit-maturity wake, the earliest future injection,
// or cycle+1 when token rotation could hand the channel to a waiting
// wireless sender. Falls through to maxCycles (the truncation point) when
// nothing is scheduled — a genuine deadlock.
func (e *desEngine) nextWake(cycle, maxCycles int64) int64 {
	if e.wirelessWaiting(cycle) {
		return cycle + 1
	}
	next := maxCycles
	for k := int64(1); k <= e.maxDelay; k++ {
		w := cycle + k
		if w >= next {
			break
		}
		if e.arrWake[w%e.wakeW] == w {
			next = w
			break
		}
	}
	if len(e.injHeap) > 0 && e.injHeap[0].cyc < next {
		next = e.injHeap[0].cyc
	}
	if next <= cycle {
		next = cycle + 1
	}
	return next
}

// wirelessWaiting reports whether any wireless ring member could transmit
// next cycle given the frozen state — in which case token rotation is
// consequential and idle cycles must not be skipped. Conservative: a true
// only costs simulating a few real cycles.
func (e *desEngine) wirelessWaiting(cycle int64) bool {
	for ch := 0; ch < topo.NumChannels; ch++ {
		for _, m := range e.rings[ch] {
			u := int(m)
			deg := int(e.base[u+1] - e.base[u])
			// A member has one wireless output per other ring member; any of
			// them being sendable (or bindable) makes rotation consequential.
			for li := e.base[u]; li < e.base[u+1]; li++ {
				if !e.linkWireless[li] || int(e.linkChannel[li]) != ch {
					continue
				}
				if p := e.bindPkt[li]; p >= 0 {
					dstBuf := e.linkRev[li]
					if e.bufLen[dstBuf] >= e.bufCap[dstBuf] {
						continue // blocked on credit; drains only via activity
					}
					if int(e.bindSrcQ[li]) == deg {
						if e.pktInjected[p] < e.pktFlits[p] {
							return true // bound injection is always eligible
						}
						continue
					}
					b := e.base[u] + e.bindSrcQ[li]
					if e.bufLen[b] > 0 {
						h := &e.arena[e.bufStart[b]+e.bufHead[b]]
						if h.pkt == p && h.arrived <= cycle {
							return true
						}
					}
				} else if e.arbitrate(u, int(li-e.base[u]), deg, cycle+1) {
					return true
				}
			}
		}
	}
	return false
}

// holderBound reports whether ring member m has a live binding on any of
// its wireless outputs on channel ch — the condition under which an idle
// cycle's phase 3 marks the channel held-busy and the token stays put.
func (e *desEngine) holderBound(m int32, ch int) bool {
	u := int(m)
	for li := e.base[u]; li < e.base[u+1]; li++ {
		if e.linkWireless[li] && int(e.linkChannel[li]) == ch && e.bindPkt[li] >= 0 {
			return true
		}
	}
	return false
}

// fastForwardTokens applies `skipped` idle cycles of token rotation
// analytically: each idle cycle the token passes on unless the holder has
// an in-flight wormhole on the channel, and binding state is frozen while
// cycles are skipped, so rotation either halts at the first bound member
// or cycles the whole ring modularly.
func (e *desEngine) fastForwardTokens(skipped int64) {
	if skipped <= 0 {
		return
	}
	for ch := 0; ch < topo.NumChannels; ch++ {
		ring := e.rings[ch]
		if len(ring) == 0 {
			continue
		}
		size := int64(len(ring))
		var steps int64
		for steps < skipped {
			if e.holderBound(ring[e.tokenIdx[ch]], ch) {
				break // holder keeps the token for the rest of the span
			}
			e.tokenIdx[ch] = (e.tokenIdx[ch] + 1) % int32(size)
			steps++
			if steps == size {
				// full lap without a bound holder: pure modular rotation
				e.tokenIdx[ch] = (e.tokenIdx[ch] + int32((skipped-steps)%size)) % int32(size)
				break
			}
		}
	}
}

// heapPush adds an injection wake to the min-heap (manual sift, no
// interface boxing, so the steady-state loop stays allocation-free).
func (e *desEngine) heapPush(cyc int64, src int32) {
	e.injHeap = append(e.injHeap, injEvent{cyc: cyc, src: src})
	i := len(e.injHeap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if e.injHeap[parent].cyc <= e.injHeap[i].cyc {
			break
		}
		e.injHeap[parent], e.injHeap[i] = e.injHeap[i], e.injHeap[parent]
		i = parent
	}
}

// heapPop removes and returns the source of the earliest injection wake.
func (e *desEngine) heapPop() int32 {
	src := e.injHeap[0].src
	last := len(e.injHeap) - 1
	e.injHeap[0] = e.injHeap[last]
	e.injHeap = e.injHeap[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && e.injHeap[l].cyc < e.injHeap[small].cyc {
			small = l
		}
		if r < last && e.injHeap[r].cyc < e.injHeap[small].cyc {
			small = r
		}
		if small == i {
			break
		}
		e.injHeap[i], e.injHeap[small] = e.injHeap[small], e.injHeap[i]
		i = small
	}
	return src
}

// grow helpers: reuse capacity, allocate only on growth.

func growI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func growI64(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, n)
	}
	return s[:n]
}

func growF64(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growBool(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}
