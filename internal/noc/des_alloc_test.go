package noc

import (
	"runtime"
	"testing"
)

// benchPackets builds the 64-core uniform workload the nocsim -des path
// and the committed BENCH_des.json snapshots use: 2000 four-flit packets
// at 0.05 flits/cycle/node.
func benchPackets(n int) []Packet {
	const packets = 2000
	const flits = 4
	const inj = 0.05
	horizon := float64(packets*flits) / (inj * float64(n))
	return uniformTraffic(n, packets, flits, horizon, 1)
}

// TestRunDESZeroAllocSteadyState is the zero-alloc regression for the
// event-calendar engine: once an engine has been warmed on a route table
// and buffer config, a full RunDES — injection, simulation, delivery —
// must not allocate at all. This also pins the fixes for the per-cycle
// channel-scratch churn and the fifo backing-array retention: either
// defect reintroduced shows up as nonzero allocations here.
func TestRunDESZeroAllocSteadyState(t *testing.T) {
	for _, tc := range []struct {
		name string
		rt   *RouteTable
	}{
		{"winoc", winocRT(t, UpDown)},
		{"mesh", meshRT(t, XY)},
	} {
		nm := defaultNM()
		cfg := DefaultDESConfig()
		pkts := benchPackets(tc.rt.topo.NumSwitches())
		if _, err := RunDES(tc.rt, pkts, nm, cfg); err != nil { // warm the engine
			t.Fatal(err)
		}
		var failed error
		avg := testing.AllocsPerRun(10, func() {
			if _, err := RunDES(tc.rt, pkts, nm, cfg); err != nil {
				failed = err
			}
		})
		if failed != nil {
			t.Fatal(failed)
		}
		if avg != 0 {
			t.Errorf("%s: RunDES allocates %.1f times per run after warm-up, want 0", tc.name, avg)
		}
	}
}

// TestFifoPopReleasesSlots pins the named fifo.pop fix: the ring must zero
// a slot on pop so the popped flitRef's pktState is no longer reachable
// through the backing array (the old items = items[1:] reslice retained
// every popped element for the queue's lifetime).
func TestFifoPopReleasesSlots(t *testing.T) {
	f := &fifo{cap: 4}
	ps := &pktState{}
	for i := 0; i < 4; i++ {
		f.push(flitRef{p: ps, idx: i})
	}
	for i := 0; i < 4; i++ {
		got := f.pop()
		if got.idx != i || got.p != ps {
			t.Fatalf("pop %d = {p:%p idx:%d}, want {p:%p idx:%d}", i, got.p, got.idx, ps, i)
		}
	}
	for i, slot := range f.items {
		if slot.p != nil {
			t.Errorf("slot %d still references a pktState after pop", i)
		}
	}
}

// TestFifoRingWraps exercises FIFO ordering across the wrap point and
// confirms the ring never allocates after the first push.
func TestFifoRingWraps(t *testing.T) {
	f := &fifo{cap: 3}
	f.push(flitRef{idx: 0}) // allocate the ring storage
	f.pop()
	next := 1
	expect := 1
	avg := testing.AllocsPerRun(100, func() {
		f.push(flitRef{idx: next})
		next++
		f.push(flitRef{idx: next})
		next++
		if got := f.pop(); got.idx != expect {
			t.Errorf("pop = %d, want %d", got.idx, expect)
		}
		expect++
		if got := f.pop(); got.idx != expect {
			t.Errorf("pop = %d, want %d", got.idx, expect)
		}
		expect++
		if !f.empty() {
			t.Error("fifo not drained")
		}
	})
	if avg != 0 {
		t.Errorf("ring fifo allocates %.1f times per push/pop cycle, want 0", avg)
	}
}

// TestFifoRetentionUnderChurn drives a fifo through sustained churn and
// checks the backing array never grows: the old reslicing pop made the
// append in push allocate a fresh, ever-sliding backing array.
func TestFifoRetentionUnderChurn(t *testing.T) {
	f := &fifo{cap: 8}
	for i := 0; i < 8; i++ {
		f.push(flitRef{idx: i})
	}
	base := &f.items[0]
	for i := 0; i < 10_000; i++ {
		f.pop()
		f.push(flitRef{idx: i})
	}
	if &f.items[0] != base {
		t.Error("fifo backing array was reallocated under churn")
	}
	if len(f.items) != 8 {
		t.Errorf("fifo ring storage is %d slots, want the fixed capacity 8", len(f.items))
	}
	runtime.KeepAlive(base)
}
