package noc

import (
	"math"
	"math/rand"
	"testing"
)

func TestInstrumentedMatchesPlainRun(t *testing.T) {
	rt := meshRT(t, XY)
	rng := rand.New(rand.NewSource(1))
	var pkts []Packet
	for i := 0; i < 300; i++ {
		pkts = append(pkts, Packet{
			ID: i, Src: rng.Intn(64), Dst: rng.Intn(64), Flits: 4,
			Inject: int64(rng.Intn(2000)),
		})
	}
	plain, err := RunDES(rt, pkts, defaultNM(), DefaultDESConfig())
	if err != nil {
		t.Fatal(err)
	}
	inst, err := RunDESInstrumented(rt, pkts, defaultNM(), DefaultDESConfig())
	if err != nil {
		t.Fatal(err)
	}
	if inst.Delivered != plain.Delivered || inst.AvgLatencyCycles != plain.AvgLatencyCycles {
		t.Errorf("instrumented diverges: %+v vs %+v", inst.DESResult, plain)
	}
	if len(inst.Latencies) != plain.Delivered {
		t.Fatalf("%d latencies for %d deliveries", len(inst.Latencies), plain.Delivered)
	}
	// the latency list must reproduce the aggregate mean and max
	var sum float64
	for i, l := range inst.Latencies {
		sum += float64(l)
		if i > 0 && l < inst.Latencies[i-1] {
			t.Fatal("latencies not sorted")
		}
	}
	if math.Abs(sum/float64(len(inst.Latencies))-plain.AvgLatencyCycles) > 1e-9 {
		t.Errorf("latency mean %v != aggregate %v", sum/float64(len(inst.Latencies)), plain.AvgLatencyCycles)
	}
	if inst.Latencies[len(inst.Latencies)-1] != plain.MaxLatencyCycles {
		t.Errorf("latency max %d != aggregate %d", inst.Latencies[len(inst.Latencies)-1], plain.MaxLatencyCycles)
	}
}

func TestInstrumentedLinkConservation(t *testing.T) {
	rt := meshRT(t, XY)
	pkts := []Packet{
		{ID: 0, Src: 0, Dst: 7, Flits: 4},
		{ID: 1, Src: 8, Dst: 8, Flits: 4}, // local: no link traffic
		{ID: 2, Src: 63, Dst: 0, Flits: 2},
	}
	inst, err := RunDESInstrumented(rt, pkts, defaultNM(), DefaultDESConfig())
	if err != nil {
		t.Fatal(err)
	}
	var linkFlits int64
	for _, ls := range inst.Links {
		linkFlits += ls.Flits
		if ls.Utilization < 0 || ls.Utilization > 1 {
			t.Errorf("link %d->%d utilization %v", ls.From, ls.To, ls.Utilization)
		}
	}
	// flit-hops: 4 flits x 7 hops + 2 flits x 14 hops
	want := int64(4*7 + 2*14)
	if linkFlits != want {
		t.Errorf("link flits %d, want %d", linkFlits, want)
	}
	if inst.TotalFlitHops != want {
		t.Errorf("TotalFlitHops %d, want %d", inst.TotalFlitHops, want)
	}
	hot := inst.HottestLink()
	if hot.Flits == 0 {
		t.Error("no hottest link")
	}
	// hottest-first ordering
	for i := 1; i < len(inst.Links); i++ {
		if inst.Links[i].Flits > inst.Links[i-1].Flits {
			t.Fatal("links not sorted by flits")
		}
	}
}

func TestPercentiles(t *testing.T) {
	s := &DESStats{Latencies: []int64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}}
	cases := []struct {
		p    float64
		want int64
	}{
		{0.0, 10},
		{0.5, 50},
		{0.9, 90},
		{1.0, 100},
	}
	for _, c := range cases {
		if got := s.Percentile(c.p); got != c.want {
			t.Errorf("P%.0f = %d, want %d", c.p*100, got, c.want)
		}
	}
	empty := &DESStats{}
	if empty.Percentile(0.5) != 0 {
		t.Error("empty percentile should be 0")
	}
	if empty.HottestLink().Flits != 0 {
		t.Error("empty hottest link should be zero")
	}
}

func TestPercentileRejectsBadP(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Percentile(2) did not panic")
		}
	}()
	(&DESStats{Latencies: []int64{1}}).Percentile(2)
}

func TestPercentileRejectsNegativeP(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Percentile(-0.1) did not panic")
		}
	}()
	(&DESStats{Latencies: []int64{1}}).Percentile(-0.1)
}

// TestPercentileSingleSample: with one delivered packet every valid p,
// including the p=0 edge whose index computation floors below zero, must
// return that one sample.
func TestPercentileSingleSample(t *testing.T) {
	s := &DESStats{Latencies: []int64{42}}
	for _, p := range []float64{0, 0.25, 0.5, 0.999, 1} {
		if got := s.Percentile(p); got != 42 {
			t.Errorf("Percentile(%v) = %d, want 42", p, got)
		}
	}
}

// TestHottestLinkSingleLinkTable: a single one-hop packet produces exactly
// one link stat, which HottestLink must return (rather than the zero
// LinkStat reserved for empty tables).
func TestHottestLinkSingleLinkTable(t *testing.T) {
	rt := meshRT(t, XY)
	pkts := []Packet{{ID: 0, Src: 0, Dst: 1, Flits: 3}}
	inst, err := RunDESInstrumented(rt, pkts, defaultNM(), DefaultDESConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(inst.Links) != 1 {
		t.Fatalf("%d link stats for a one-hop packet, want 1", len(inst.Links))
	}
	hot := inst.HottestLink()
	if hot != inst.Links[0] {
		t.Errorf("HottestLink %+v != only link %+v", hot, inst.Links[0])
	}
	if hot.From != 0 || hot.To != 1 || hot.Flits != 3 {
		t.Errorf("hottest link %+v, want 0->1 with 3 flits", hot)
	}
	if hot.Utilization <= 0 || hot.Utilization > 1 {
		t.Errorf("utilization %v outside (0,1]", hot.Utilization)
	}
}

func TestSaturationSweepLatencyGrowsWithLoad(t *testing.T) {
	rt := meshRT(t, XY)
	rates := []float64{0.01, 0.05, 0.15}
	points, err := SaturationSweep(rt, rates, 600, 4, defaultNM(), DefaultDESConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("%d points", len(points))
	}
	for i, pt := range points {
		if pt.Delivered != 600 {
			t.Errorf("rate %v delivered %d of 600", pt.InjectionRate, pt.Delivered)
		}
		if i > 0 && pt.AvgLatency < points[i-1].AvgLatency-1 {
			t.Errorf("latency dropped with load: %v -> %v", points[i-1].AvgLatency, pt.AvgLatency)
		}
	}
	if points[2].AvgLatency <= points[0].AvgLatency {
		t.Errorf("no congestion signal across the sweep: %v", points)
	}
}

func TestSaturationSweepRejectsBadRate(t *testing.T) {
	rt := meshRT(t, XY)
	if _, err := SaturationSweep(rt, []float64{0}, 10, 4, defaultNM(), DefaultDESConfig(), 1); err == nil {
		t.Error("zero rate accepted")
	}
}

func TestSplitMixDeterministic(t *testing.T) {
	a, b := newSplitMix(42), newSplitMix(42)
	for i := 0; i < 100; i++ {
		if a.next() != b.next() {
			t.Fatal("splitmix not deterministic")
		}
	}
	c := newSplitMix(43)
	same := 0
	a = newSplitMix(42)
	for i := 0; i < 100; i++ {
		if a.next() == c.next() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds collide %d/100 times", same)
	}
}

// TestUniformTrafficInjectionSpread is the regression test for the
// quantized injection draw: times must cover [0, horizon) at full
// precision, not collapse onto 1000 coarse slots (or onto cycle 0 when the
// horizon is smaller than 1000 cycles).
func TestUniformTrafficInjectionSpread(t *testing.T) {
	const n, packets = 64, 4000
	for _, horizon := range []float64{500, 1e6} {
		pkts := uniformTraffic(n, packets, 4, horizon, 7)
		if len(pkts) != packets {
			t.Fatalf("horizon %v: %d packets", horizon, len(pkts))
		}
		distinct := map[int64]bool{}
		var max int64
		for _, p := range pkts {
			if p.Inject < 0 || float64(p.Inject) >= horizon {
				t.Fatalf("horizon %v: injection %d outside [0, %v)", horizon, p.Inject, horizon)
			}
			distinct[p.Inject] = true
			if p.Inject > max {
				max = p.Inject
			}
		}
		// The old draw had at most 1000 distinct values at any horizon and
		// exactly one (cycle 0) when horizon < 1000. With 4000 uniform
		// draws over a large horizon, collisions are rare: demand far more
		// than 1000 distinct times at horizon 1e6, and a wide spread at
		// horizon 500.
		if horizon >= 1e6 && len(distinct) <= 3500 {
			t.Errorf("horizon %v: only %d distinct injection times for %d packets", horizon, len(distinct), packets)
		}
		if horizon == 500 && len(distinct) < 400 {
			t.Errorf("horizon %v: only %d distinct injection times (old code gave 1)", horizon, len(distinct))
		}
		if float64(max) < 0.9*horizon {
			t.Errorf("horizon %v: max injection %d does not reach the tail", horizon, max)
		}
	}
}

// TestSaturationSweepUsesFullHorizon: end to end, the lowest offered rate
// (largest horizon) must produce a longer simulated run than the quantized
// draw could ever have, i.e. delivery spreads across the real horizon.
func TestSaturationSweepUsesFullHorizon(t *testing.T) {
	rt := meshRT(t, XY)
	points, err := SaturationSweep(rt, []float64{0.001}, 600, 4, defaultNM(), DefaultDESConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if points[0].Delivered != 600 {
		t.Fatalf("delivered %d of 600", points[0].Delivered)
	}
}
