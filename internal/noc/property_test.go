package noc

import (
	"math/rand"
	"testing"

	"wivfi/internal/platform"
	"wivfi/internal/topo"
)

// cdgAcyclic checks that the channel dependency graph of a route table is
// acyclic (the wormhole deadlock-freedom condition).
func cdgAcyclic(rt *RouteTable) bool {
	n := rt.topo.NumSwitches()
	type link struct{ from, ai int }
	id := map[link]int{}
	var links []link
	for u := 0; u < n; u++ {
		for ai := range rt.topo.Adj[u] {
			id[link{u, ai}] = len(links)
			links = append(links, link{u, ai})
		}
	}
	adj := make([][]int, len(links))
	edge := map[[2]int]bool{}
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			cur := s
			prev := -1
			for _, ai := range rt.paths[s][d] {
				curID := id[link{cur, ai}]
				if prev >= 0 && !edge[[2]int{prev, curID}] {
					edge[[2]int{prev, curID}] = true
					adj[prev] = append(adj[prev], curID)
				}
				prev = curID
				cur = rt.topo.Adj[cur][ai].To
			}
		}
	}
	color := make([]int, len(links))
	var stack [][2]int
	for s := range adj {
		if color[s] != 0 {
			continue
		}
		stack = append(stack[:0], [2]int{s, 0})
		color[s] = 1
		for len(stack) > 0 {
			top := &stack[len(stack)-1]
			u, i := top[0], top[1]
			if i < len(adj[u]) {
				top[1]++
				v := adj[u][i]
				switch color[v] {
				case 0:
					color[v] = 1
					stack = append(stack, [2]int{v, 0})
				case 1:
					return false
				}
			} else {
				color[u] = 2
				stack = stack[:len(stack)-1]
			}
		}
	}
	return true
}

// TestUpDownDeadlockFreeAcrossSeeds sweeps random small-world constructions
// (different wiring each seed) and asserts the up*/down* route set is always
// deadlock-free and complete — the property the cycle-accurate simulator
// relies on for any topology the builder can emit.
func TestUpDownDeadlockFreeAcrossSeeds(t *testing.T) {
	chips := []platform.Chip{
		{Rows: 4, Cols: 4, TileMM: 2.5},
		{Rows: 8, Cols: 8, TileMM: 2.5},
	}
	for _, chip := range chips {
		for seed := int64(1); seed <= 8; seed++ {
			cfg := topo.DefaultSmallWorldConfig()
			cfg.Seed = seed
			tp, err := topo.SmallWorld(chip, cfg)
			if err != nil {
				t.Fatalf("chip %dx%d seed %d: %v", chip.Rows, chip.Cols, seed, err)
			}
			rt, err := BuildRoutes(tp, DefaultLinkCosts(), UpDown)
			if err != nil {
				t.Fatalf("chip %dx%d seed %d routes: %v", chip.Rows, chip.Cols, seed, err)
			}
			if !cdgAcyclic(rt) {
				t.Fatalf("chip %dx%d seed %d: cyclic channel dependency graph", chip.Rows, chip.Cols, seed)
			}
			// every pair routed end-to-end
			n := tp.NumSwitches()
			for s := 0; s < n; s++ {
				for d := 0; d < n; d++ {
					if s == d {
						continue
					}
					path := rt.Path(s, d)
					if path[len(path)-1] != d {
						t.Fatalf("route (%d,%d) broken at seed %d", s, d, seed)
					}
				}
			}
		}
	}
}

// TestDESRandomTopologiesDeliverEverything drives the wormhole simulator
// over randomly wired WiNoCs with random traffic: nothing may deadlock or
// stall, flit-hop accounting must match the routed path lengths.
func TestDESRandomTopologiesDeliverEverything(t *testing.T) {
	chip := platform.DefaultChip()
	for seed := int64(1); seed <= 4; seed++ {
		cfg := topo.DefaultSmallWorldConfig()
		cfg.Seed = seed
		tp, err := topo.SmallWorld(chip, cfg)
		if err != nil {
			t.Fatal(err)
		}
		// wireless on half the runs
		if seed%2 == 0 {
			placement := [][]int{
				{chip.ID(1, 1), chip.ID(1, 2), chip.ID(2, 1)},
				{chip.ID(1, 5), chip.ID(1, 6), chip.ID(2, 6)},
				{chip.ID(5, 1), chip.ID(6, 1), chip.ID(6, 2)},
				{chip.ID(5, 6), chip.ID(6, 6), chip.ID(6, 5)},
			}
			if err := topo.AddWireless(tp, placement); err != nil {
				t.Fatal(err)
			}
		}
		rt, err := BuildRoutes(tp, DefaultLinkCosts(), UpDown)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed * 100))
		var pkts []Packet
		var wantHops int64
		for i := 0; i < 250; i++ {
			s, d := rng.Intn(64), rng.Intn(64)
			pkts = append(pkts, Packet{ID: i, Src: s, Dst: d, Flits: 3, Inject: int64(rng.Intn(3000))})
			wantHops += int64(3 * rt.Hops(s, d))
		}
		res, err := RunDES(rt, pkts, defaultNM(), DefaultDESConfig())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Delivered != len(pkts) || res.Stalled != 0 {
			t.Fatalf("seed %d: delivered %d stalled %d", seed, res.Delivered, res.Stalled)
		}
		if res.TotalFlitHops != wantHops {
			t.Fatalf("seed %d: flit-hops %d, routes say %d", seed, res.TotalFlitHops, wantHops)
		}
	}
}
