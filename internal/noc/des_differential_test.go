package noc

import (
	"math/rand"
	"testing"

	"wivfi/internal/energy"
	"wivfi/internal/platform"
	"wivfi/internal/topo"
)

// The differential property test: the event-calendar engine must be
// observably indistinguishable from the cycle-driven reference engine —
// identical DESResult (bit-exact floats included), identical delivery
// sequence with identical latencies, identical per-flit forward events in
// identical order, identical error outcomes — across randomized
// topologies, traffic patterns, buffer depths, wireless rings, and
// truncated (MaxCycles) runs.

type deliverEvent struct {
	id  int
	lat int64
}

type forwardEvent struct {
	u, ai int
	cycle int64
}

type desTrace struct {
	res      DESResult
	err      error
	delivers []deliverEvent
	forwards []forwardEvent
}

func traceEngine(rt *RouteTable, pkts []Packet, nm energy.NetworkModel, cfg DESConfig, reference bool) desTrace {
	var tr desTrace
	hooks := desHooks{
		onDeliver: func(id int, lat int64) {
			tr.delivers = append(tr.delivers, deliverEvent{id, lat})
		},
		onForward: func(u, ai int, cycle int64) {
			tr.forwards = append(tr.forwards, forwardEvent{u, ai, cycle})
		},
	}
	if reference {
		tr.res, tr.err = runDESReference(rt, pkts, nm, cfg, hooks)
	} else {
		tr.res, tr.err = runDESHooked(rt, pkts, nm, cfg, hooks)
	}
	return tr
}

func diffTraces(t *testing.T, label string, ref, got desTrace) {
	t.Helper()
	if (ref.err == nil) != (got.err == nil) {
		t.Fatalf("%s: error mismatch: reference %v, event %v", label, ref.err, got.err)
	}
	if ref.err != nil && got.err != nil && ref.err.Error() != got.err.Error() {
		t.Fatalf("%s: error text mismatch:\n  reference %v\n  event     %v", label, ref.err, got.err)
	}
	for i := range ref.forwards {
		if i >= len(got.forwards) || ref.forwards[i] != got.forwards[i] {
			var g forwardEvent
			if i < len(got.forwards) {
				g = got.forwards[i]
			}
			t.Fatalf("%s: forward[%d] = %+v, reference %+v", label, i, g, ref.forwards[i])
		}
	}
	if len(ref.forwards) != len(got.forwards) {
		t.Fatalf("%s: %d forward events vs reference's %d", label, len(got.forwards), len(ref.forwards))
	}
	if len(ref.delivers) != len(got.delivers) {
		t.Fatalf("%s: %d deliver events vs reference's %d", label, len(got.delivers), len(ref.delivers))
	}
	for i := range ref.delivers {
		if ref.delivers[i] != got.delivers[i] {
			t.Fatalf("%s: deliver[%d] = %+v, reference %+v", label, i, got.delivers[i], ref.delivers[i])
		}
	}
	if ref.res != got.res {
		t.Fatalf("%s: DESResult mismatch:\n  reference %+v\n  event     %+v", label, ref.res, got.res)
	}
}

// diffTopos builds the topology pool the random cases draw from: a small
// and a large mesh, irregular small-worlds with and without wireless
// rings, and a small fabric with partial rings (two channels populated,
// one empty).
func diffTopos(t *testing.T) []*RouteTable {
	t.Helper()
	small := platform.Chip{Rows: 4, Cols: 4, TileMM: 2.5}
	pool := []*RouteTable{
		meshRT(t, XY),
	}
	if rt, err := BuildRoutes(topo.Mesh(small), DefaultLinkCosts(), XY); err != nil {
		t.Fatal(err)
	} else {
		pool = append(pool, rt)
	}
	pool = append(pool, winocRT(t, UpDown))
	// small-world without wireless
	cfg := topo.DefaultSmallWorldConfig()
	cfg.Seed = 7
	tp, err := topo.SmallWorld(platform.DefaultChip(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rt, err := BuildRoutes(tp, DefaultLinkCosts(), UpDown); err != nil {
		t.Fatal(err)
	} else {
		pool = append(pool, rt)
	}
	// small-world with only two of the three channels populated
	chip := platform.DefaultChip()
	cfg2 := topo.DefaultSmallWorldConfig()
	cfg2.Seed = 11
	tp2, err := topo.SmallWorld(chip, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	placement := [][]int{
		{chip.ID(1, 1), chip.ID(1, 6), chip.ID(6, 1)},
		{chip.ID(6, 6), chip.ID(3, 3), chip.ID(4, 4)},
	}
	if err := topo.AddWireless(tp2, placement); err != nil {
		t.Fatal(err)
	}
	if rt, err := BuildRoutes(tp2, DefaultLinkCosts(), UpDown); err != nil {
		t.Fatal(err)
	} else {
		pool = append(pool, rt)
	}
	return pool
}

// TestDESDifferentialRandomized replays >=1000 randomized cases through
// both engines and requires observational equivalence. Case shapes are
// weighted toward the small mesh (cheap reference runs) with regular
// excursions to 64-switch fabrics, wireless rings, buffer depth 1, local
// (src==dst) packets, negative injection cycles, and MaxCycles truncation.
func TestDESDifferentialRandomized(t *testing.T) {
	pool := diffTopos(t)
	nm := defaultNM()
	cases := 1100
	if testing.Short() {
		cases = 150
	}
	rng := rand.New(rand.NewSource(42))
	for c := 0; c < cases; c++ {
		// 70% of cases on the 4x4 mesh keep the reference affordable;
		// the rest sweep the 64-switch fabrics.
		var rt *RouteTable
		if rng.Intn(10) < 7 {
			rt = pool[1]
		} else {
			rt = pool[rng.Intn(len(pool))]
		}
		n := rt.topo.NumSwitches()
		cfg := DESConfig{
			BufDepthFlits:   1 + rng.Intn(3),
			WIBufDepthFlits: 1 + rng.Intn(8),
			MaxCycles:       50_000,
		}
		truncated := rng.Intn(10) == 0
		if truncated {
			cfg.MaxCycles = int64(1 + rng.Intn(150))
		}
		injSpread := 1 + rng.Intn(150)
		numPkts := rng.Intn(50)
		if n > 16 {
			injSpread = 1 + rng.Intn(400)
			numPkts = rng.Intn(120)
		}
		pkts := make([]Packet, 0, numPkts)
		for i := 0; i < numPkts; i++ {
			src, dst := rng.Intn(n), rng.Intn(n)
			if rng.Intn(12) == 0 {
				dst = src // local delivery path
			}
			inject := int64(rng.Intn(injSpread))
			if rng.Intn(40) == 0 {
				inject = -int64(rng.Intn(5)) // "ready before cycle 0"
			}
			pkts = append(pkts, Packet{
				ID:     i,
				Src:    src,
				Dst:    dst,
				Flits:  1 + rng.Intn(6),
				Inject: inject,
			})
		}
		ref := traceEngine(rt, pkts, nm, cfg, true)
		got := traceEngine(rt, pkts, nm, cfg, false)
		diffTraces(t, caseLabel(c, n, cfg, len(pkts)), ref, got)
	}
}

func caseLabel(c, n int, cfg DESConfig, pkts int) string {
	return "case " + itoa(c) + " (n=" + itoa(n) + " pkts=" + itoa(pkts) +
		" buf=" + itoa(cfg.BufDepthFlits) + "/" + itoa(cfg.WIBufDepthFlits) +
		" max=" + itoa(int(cfg.MaxCycles)) + ")"
}

func itoa(v int) string {
	if v < 0 {
		return "-" + itoa(-v)
	}
	if v < 10 {
		return string(rune('0' + v))
	}
	return itoa(v/10) + string(rune('0'+v%10))
}

// TestDESDifferentialHighLoad pushes both engines into sustained
// congestion (every source injecting from cycle 0, deep wormholes,
// wireless contention) where arbitration and token-rotation corner cases
// concentrate.
func TestDESDifferentialHighLoad(t *testing.T) {
	nm := defaultNM()
	for _, tc := range []struct {
		name string
		rt   *RouteTable
	}{
		{"mesh", meshRT(t, XY)},
		{"winoc", winocRT(t, UpDown)},
	} {
		rng := rand.New(rand.NewSource(99))
		n := tc.rt.topo.NumSwitches()
		var pkts []Packet
		for i := 0; i < 400; i++ {
			pkts = append(pkts, Packet{
				ID: i, Src: rng.Intn(n), Dst: rng.Intn(n),
				Flits: 4, Inject: int64(rng.Intn(50)),
			})
		}
		cfg := DefaultDESConfig()
		ref := traceEngine(tc.rt, pkts, nm, cfg, true)
		got := traceEngine(tc.rt, pkts, nm, cfg, false)
		diffTraces(t, tc.name, ref, got)
	}
}

// TestDESLongPathRoutingIdentical is the satellite regression for the
// O(path) nextAdjAt scan: a corner-to-corner packet on the 8x8 mesh (the
// longest XY route) must traverse exactly its routed links in order under
// the O(1) hop-index lookup, with forward events identical to the
// reference engine's.
func TestDESLongPathRoutingIdentical(t *testing.T) {
	rt := meshRT(t, XY)
	nm := defaultNM()
	pkts := []Packet{{ID: 0, Src: 0, Dst: 63, Flits: 3, Inject: 0}}
	cfg := DefaultDESConfig()

	ref := traceEngine(rt, pkts, nm, cfg, true)
	got := traceEngine(rt, pkts, nm, cfg, false)
	diffTraces(t, "long-path", ref, got)

	// The head flit's forward events must walk the routed adjacency
	// sequence hop by hop.
	adjSeq := rt.paths[0][63]
	nodeSeq := rt.Path(0, 63)
	hops := len(adjSeq)
	if got.res.TotalFlitHops != int64(3*hops) {
		t.Fatalf("flit-hops %d, want %d", got.res.TotalFlitHops, 3*hops)
	}
	// Forward events arrive in cycle order; the head flit's are the first
	// event at each new source switch.
	seen := 0
	for _, f := range got.forwards {
		if seen < hops && f.u == nodeSeq[seen] && f.ai == adjSeq[seen] {
			seen++
		}
	}
	if seen != hops {
		t.Fatalf("head flit matched %d of %d routed hops", seen, hops)
	}
}

// TestDESEngineReuseIsDeterministic runs the same workload through the
// public entry point repeatedly: the warmed, reused engine must reproduce
// the cold run exactly.
func TestDESEngineReuseIsDeterministic(t *testing.T) {
	rt := winocRT(t, UpDown)
	nm := defaultNM()
	rng := rand.New(rand.NewSource(5))
	var pkts []Packet
	for i := 0; i < 300; i++ {
		pkts = append(pkts, Packet{
			ID: i, Src: rng.Intn(64), Dst: rng.Intn(64),
			Flits: 4, Inject: int64(rng.Intn(2000)),
		})
	}
	first, err := RunDES(rt, pkts, nm, DefaultDESConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		again, err := RunDES(rt, pkts, nm, DefaultDESConfig())
		if err != nil {
			t.Fatal(err)
		}
		if again != first {
			t.Fatalf("rerun %d: %+v, first %+v", i, again, first)
		}
	}
}
