package noc

import (
	"fmt"

	"wivfi/internal/energy"
	"wivfi/internal/obs"
)

// Telemetry totals across every DES invocation in the process (probe
// runs, saturation sweeps, instrumented replays). Allocation-free atomic
// adds; they never touch simulator output.
// Metric names registered below. Declared constants (enforced by
// wivfi-lint countersafe) so every lookup site shares one authoritative
// spelling.
const (
	MetricDESRuns             = "noc.des.runs"
	MetricDESPacketsDelivered = "noc.des.packets_delivered"
	MetricDESCycles           = "noc.des.cycles"
	MetricDESFlitHops         = "noc.des.flit_hops"
	MetricDESStalledPackets   = "noc.des.stalled_packets"
)

var (
	desRuns     = obs.NewCounter(MetricDESRuns)
	desPackets  = obs.NewCounter(MetricDESPacketsDelivered)
	desCycles   = obs.NewCounter(MetricDESCycles)
	desFlitHops = obs.NewCounter(MetricDESFlitHops)
	// desStalled counts packets still in flight when a run hit MaxCycles.
	// Nonzero means some DESResult in this process was truncated — a
	// signal that would otherwise be visible only in that result's
	// Stalled field.
	desStalled = obs.NewCounter(MetricDESStalledPackets)
)

// Packet is one network packet for the discrete simulator.
type Packet struct {
	ID     int
	Src    int
	Dst    int
	Flits  int
	Inject int64 // earliest injection cycle
}

// DESConfig configures the cycle-accurate wormhole simulator.
type DESConfig struct {
	// BufDepthFlits is the input-buffer depth of ordinary switch ports;
	// the paper uses two flits.
	BufDepthFlits int
	// WIBufDepthFlits is the input-buffer depth of ports fed by wireless
	// links; the paper increases these to eight flits "to avoid excessive
	// latency penalties while waiting for the token".
	WIBufDepthFlits int
	// MaxCycles aborts the run if packets remain undelivered (a safety
	// net, not an expected outcome with deadlock-free routing).
	MaxCycles int64
}

// DefaultDESConfig returns the paper's buffer configuration.
func DefaultDESConfig() DESConfig {
	return DESConfig{BufDepthFlits: 2, WIBufDepthFlits: 8, MaxCycles: 2_000_000}
}

// DESResult reports the outcome of one simulation.
type DESResult struct {
	Delivered int
	// AvgLatencyCycles is the mean latency of *delivered* packets only.
	// Packets stalled at MaxCycles (see Stalled) never eject, so they are
	// excluded — on a truncated run this average understates the true
	// latency the stalled packets would have seen.
	AvgLatencyCycles float64
	MaxLatencyCycles int64
	Cycles           int64
	EnergyPJ         float64
	WirelessFlitHops int64
	TotalFlitHops    int64
	// Stalled is the number of packets still in flight when MaxCycles was
	// reached; zero on a healthy run.
	Stalled int
}

// pktState is a packet's runtime state in the pointer-based data model.
// The event-calendar engine (des_engine.go) keeps packet state in
// struct-of-arrays form instead; this representation is retained for the
// cycle-driven reference engine the differential tests replay against.
type pktState struct {
	Packet
	nodeSeq []int // switch sequence src..dst
	adjSeq  []int // adjacency index per hop
	// injection progress at the source
	flitsInjected int
	// delivery bookkeeping
	flitsEjected int
	done         bool
	ejectCycle   int64
}

// nextAdjAt returns the adjacency index the packet must take at node u by
// scanning the route from its start — O(path length) per call. The event
// engine replaces this with an O(1) per-packet hop-index lookup; the scan
// is kept as the reference-engine behaviour the differential test pins.
func (p *pktState) nextAdjAt(u int) int {
	for i, n := range p.nodeSeq[:len(p.nodeSeq)-1] {
		if n == u {
			return p.adjSeq[i]
		}
	}
	panic(fmt.Sprintf("noc: packet %d routed through unexpected switch %d", p.ID, u))
}

// flitRef identifies one buffered flit.
type flitRef struct {
	p       *pktState
	idx     int   // flit index within the packet
	arrived int64 // cycle the flit entered this buffer
}

// fifo is a bounded flit queue backed by a fixed ring. An earlier version
// popped with items = items[1:], which kept every popped flitRef (and the
// pktState it points to) reachable through the backing array for the life
// of the queue; the ring indices free each slot on pop. The event engine
// subsumes this with index-only arena rings, but the fix is kept here for
// the reference engine and the retention regression test.
type fifo struct {
	items []flitRef // ring storage, allocated once at capacity
	start int       // index of the head element
	n     int       // live element count
	cap   int
}

func (f *fifo) full() bool     { return f.n >= f.cap }
func (f *fifo) empty() bool    { return f.n == 0 }
func (f *fifo) head() *flitRef { return &f.items[f.start] }

func (f *fifo) push(fl flitRef) {
	if f.items == nil {
		f.items = make([]flitRef, f.cap)
	}
	f.items[(f.start+f.n)%f.cap] = fl
	f.n++
}

func (f *fifo) pop() flitRef {
	fl := f.items[f.start]
	f.items[f.start] = flitRef{} // release the pktState reference
	f.start = (f.start + 1) % f.cap
	f.n--
	return fl
}

// RunDES simulates the packets on the routed topology and returns aggregate
// metrics. Packets are injected at their Inject cycles from per-source FIFO
// queues; routing must be deadlock-free for the topology (XY on the mesh,
// UpDown on irregular fabrics) or the run may hit MaxCycles with stalled
// packets.
func RunDES(rt *RouteTable, packets []Packet, nm energy.NetworkModel, cfg DESConfig) (DESResult, error) {
	return runDESHooked(rt, packets, nm, cfg, desHooks{})
}

// desHooks are the simulator core's optional observation points. Both fire
// on simulated-time events with simulated-time arguments, so anything
// built on them is deterministic.
type desHooks struct {
	// onDeliver fires once per delivered packet with its latency in cycles.
	onDeliver func(id int, latency int64)
	// onForward fires once per flit forwarded over the link Adj[u][ai] at
	// the given cycle (injection hops included).
	onForward func(u, ai int, cycle int64)
}

// runDESHooked is the simulator core: validate the inputs, borrow a warmed
// engine, and run the event-calendar simulation. The engine preserves the
// cycle-driven reference semantics exactly (arbitration order, token
// rotation, pipeline delays, hook firing order, float accumulation order),
// which the differential property test enforces against the reference
// implementation in des_reference_test.go.
func runDESHooked(rt *RouteTable, packets []Packet, nm energy.NetworkModel, cfg DESConfig, hooks desHooks) (DESResult, error) {
	n := rt.topo.NumSwitches()
	if cfg.BufDepthFlits <= 0 || cfg.WIBufDepthFlits <= 0 || cfg.MaxCycles <= 0 {
		return DESResult{}, fmt.Errorf("noc: bad DES config %+v", cfg)
	}
	for _, pk := range packets {
		if pk.Src < 0 || pk.Src >= n || pk.Dst < 0 || pk.Dst >= n {
			return DESResult{}, fmt.Errorf("noc: packet %d endpoints out of range", pk.ID)
		}
		if pk.Flits <= 0 {
			return DESResult{}, fmt.Errorf("noc: packet %d has %d flits", pk.ID, pk.Flits)
		}
	}
	e := acquireEngine()
	defer releaseEngine(e)
	if err := e.bind(rt, nm, cfg); err != nil {
		return DESResult{}, err
	}
	e.loadPackets(packets)
	res, remaining := e.run(cfg, hooks)

	desRuns.Add(1)
	desPackets.Add(int64(res.Delivered))
	desCycles.Add(res.Cycles)
	desFlitHops.Add(res.TotalFlitHops)
	if remaining > 0 {
		desStalled.Add(int64(remaining))
		obs.Logf("noc: DES hit MaxCycles=%d with %d of %d packets stalled (deadlock or overload); AvgLatencyCycles covers delivered packets only", cfg.MaxCycles, remaining, len(packets))
		return res, fmt.Errorf("noc: %d packets undelivered after %d cycles (deadlock or overload)", remaining, cfg.MaxCycles)
	}
	return res, nil
}
