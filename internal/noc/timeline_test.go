package noc

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"strings"
	"testing"

	"wivfi/internal/timeline"
)

func timelineTraffic(n int) []Packet {
	rng := rand.New(rand.NewSource(9))
	var pkts []Packet
	for i := 0; i < n; i++ {
		s := rng.Intn(64)
		d := rng.Intn(64)
		pkts = append(pkts, Packet{ID: i, Src: s, Dst: d, Flits: 4, Inject: int64(rng.Intn(4000))})
	}
	return pkts
}

func TestRunDESTimelineMatchesPlainRun(t *testing.T) {
	rt := meshRT(t, XY)
	pkts := timelineTraffic(400)
	plain, err := RunDES(rt, pkts, defaultNM(), DefaultDESConfig())
	if err != nil {
		t.Fatal(err)
	}
	stats, series, err := RunDESTimeline(rt, pkts, defaultNM(), DefaultDESConfig(), "noc/")
	if err != nil {
		t.Fatal(err)
	}
	if stats.DESResult != plain {
		t.Fatalf("timeline run perturbed aggregates:\n%+v\n%+v", stats.DESResult, plain)
	}
	if len(stats.Latencies) != plain.Delivered {
		t.Fatalf("latencies = %d, delivered = %d", len(stats.Latencies), plain.Delivered)
	}

	// Series: at least one link sampler plus the latency histogram, and
	// the link samplers' total mass equals TotalFlitHops.
	var hist *timeline.Series
	var linkFlits float64
	window := int64(0)
	for i := range series {
		sr := &series[i]
		switch {
		case sr.Name == "noc/latency":
			hist = sr
		case strings.HasPrefix(sr.Name, "noc/link/"):
			if window == 0 {
				window = sr.Window
			} else if sr.Window != window {
				t.Fatalf("link windows differ: %d vs %d (shared axis broken)", sr.Window, window)
			}
			for _, v := range sr.Values {
				linkFlits += v
			}
		default:
			t.Fatalf("unexpected series %q", sr.Name)
		}
	}
	if hist == nil || hist.Histogram == nil {
		t.Fatal("no latency histogram emitted")
	}
	if hist.Histogram.Count != int64(plain.Delivered) {
		t.Fatalf("histogram count = %d, delivered = %d", hist.Histogram.Count, plain.Delivered)
	}
	if int64(linkFlits) != plain.TotalFlitHops {
		t.Fatalf("link series mass = %v, TotalFlitHops = %d", linkFlits, plain.TotalFlitHops)
	}
	// Histogram quantiles must bracket the exact percentiles.
	for _, q := range []struct {
		p float64
	}{{0.5}, {0.95}, {0.99}} {
		exact := stats.Percentile(q.p)
		est := histQuantile(hist.Histogram, q.p)
		if est < exact*7/8-1 || est > exact*9/8+1 {
			t.Errorf("p%v: histogram %d vs exact %d", q.p, est, exact)
		}
	}
}

// histQuantile recomputes a quantile from exported bucket data.
func histQuantile(d *timeline.HistogramData, p float64) int64 {
	rank := int64(p * float64(d.Count))
	if rank >= d.Count {
		rank = d.Count - 1
	}
	var cum int64
	for _, b := range d.Buckets {
		cum += b.Count
		if cum > rank {
			hi := b.Hi
			if hi > d.Max {
				hi = d.Max
			}
			return hi
		}
	}
	return d.Max
}

func TestRunDESTimelineDeterministic(t *testing.T) {
	rt := meshRT(t, XY)
	pkts := timelineTraffic(300)
	_, s1, err := RunDESTimeline(rt, pkts, defaultNM(), DefaultDESConfig(), "x/")
	if err != nil {
		t.Fatal(err)
	}
	_, s2, err := RunDESTimeline(rt, pkts, defaultNM(), DefaultDESConfig(), "x/")
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := json.Marshal(s1)
	b2, _ := json.Marshal(s2)
	if !bytes.Equal(b1, b2) {
		t.Fatal("timeline series differ across identical runs")
	}
}

func TestLinkProbeSharedRescale(t *testing.T) {
	rt := meshRT(t, XY)
	p := newLinkProbe(rt, 1)
	// Push one link far past the bin bound; a second link's early events
	// must land in the rescaled shared axis.
	p.record(0, 0, 0)
	p.record(1, 0, 5)
	for c := int64(0); c < timeline.DefaultMaxBins*4; c += 2 {
		p.record(0, 0, c)
	}
	series := p.series("t/")
	if len(series) != 2 {
		t.Fatalf("series = %d, want 2", len(series))
	}
	for _, sr := range series {
		if sr.Window != 4 {
			t.Fatalf("series %q window = %d, want 4", sr.Name, sr.Window)
		}
		if len(sr.Values) > timeline.DefaultMaxBins {
			t.Fatalf("series %q has %d bins", sr.Name, len(sr.Values))
		}
	}
}

func TestDESStalledCounterAndSemantics(t *testing.T) {
	rt := meshRT(t, XY)
	// An absurdly small cycle budget forces a MaxCycles abort.
	cfg := DefaultDESConfig()
	cfg.MaxCycles = 3
	before := desStalled.Value()
	pkts := []Packet{{ID: 0, Src: 0, Dst: 63, Flits: 8, Inject: 0}}
	res, err := RunDES(rt, pkts, defaultNM(), cfg)
	if err == nil {
		t.Fatal("expected MaxCycles error")
	}
	if res.Stalled != 1 {
		t.Fatalf("Stalled = %d, want 1", res.Stalled)
	}
	if got := desStalled.Value() - before; got != 1 {
		t.Fatalf("noc.des.stalled_packets delta = %d, want 1", got)
	}
	// Delivered-only semantics: no packet delivered, so the average stays 0.
	if res.Delivered != 0 || res.AvgLatencyCycles != 0 {
		t.Fatalf("delivered=%d avg=%v, want 0/0", res.Delivered, res.AvgLatencyCycles)
	}
}
