package noc

import (
	"fmt"
	"math"

	"wivfi/internal/energy"
	"wivfi/internal/topo"
)

// AnalyticConfig tunes the closed-form network evaluator.
type AnalyticConfig struct {
	// PacketFlits is the average packet length in flits; wormhole
	// serialization adds PacketFlits-1 cycles to each packet latency.
	PacketFlits float64
	// MaxUtilization clips per-link load before the contention factor is
	// applied, keeping the model finite under overload.
	MaxUtilization float64
}

// DefaultAnalyticConfig returns the configuration used throughout the
// experiments: 4-flit packets (a 32-bit header beat plus a coherence
// payload split over 32-bit flits) and a 0.95 utilization clip.
func DefaultAnalyticConfig() AnalyticConfig {
	return AnalyticConfig{PacketFlits: 4, MaxUtilization: 0.95}
}

// AnalyticResult reports the network-level metrics of one traffic load.
type AnalyticResult struct {
	// AvgLatencyCycles is the traffic-weighted mean packet latency.
	AvgLatencyCycles float64
	// AvgHops is the traffic-weighted mean hop count.
	AvgHops float64
	// EnergyPJPerFlit is the traffic-weighted mean per-flit route energy.
	EnergyPJPerFlit float64
	// WirelessFraction is the fraction of flit-hops carried by wireless
	// links (the "wireless utilization" of Section 6).
	WirelessFraction float64
	// MaxLinkUtilization is the highest per-link (or per-channel) load in
	// flits/cycle after aggregation.
	MaxLinkUtilization float64
	// NetworkEDP is EnergyPJPerFlit x AvgLatencyCycles, the figure of merit
	// the paper uses to pick network parameters (Fig. 6, Section 7.2).
	NetworkEDP float64
}

// Analytic evaluates a traffic matrix (traffic[s][d] = flits per network
// cycle from switch s to switch d) on the routed topology.
//
// Model: every packet follows its static route. Each link is an M/D/1-like
// server whose waiting time inflates the link's base traversal latency by
// 1/(1-rho); wireless links on the same channel share one medium, so their
// loads are pooled per channel before the factor is applied (this is how
// the token MAC's serialization shows up analytically). Packet latency is
// the inflated path latency plus wormhole serialization.
func Analytic(rt *RouteTable, traffic [][]float64, nm energy.NetworkModel, cfg AnalyticConfig) (AnalyticResult, error) {
	n := rt.topo.NumSwitches()
	if len(traffic) != n {
		return AnalyticResult{}, fmt.Errorf("noc: traffic matrix has %d rows for %d switches", len(traffic), n)
	}
	for i, row := range traffic {
		if len(row) != n {
			return AnalyticResult{}, fmt.Errorf("noc: traffic row %d has %d cols", i, len(row))
		}
		for j, v := range row {
			if v < 0 || math.IsNaN(v) {
				return AnalyticResult{}, fmt.Errorf("noc: bad traffic %v at (%d,%d)", v, i, j)
			}
		}
	}

	// Pass 1: accumulate load per directed wireline link and per wireless
	// channel.
	type linkKey struct{ from, ai int }
	linkLoad := map[linkKey]float64{}
	channelLoad := make([]float64, topo.NumChannels)
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			f := traffic[s][d]
			if f == 0 || s == d {
				continue
			}
			cur := s
			for _, ai := range rt.paths[s][d] {
				l := rt.topo.Adj[cur][ai]
				if l.Type == topo.Wireless {
					channelLoad[l.Channel] += f
				} else {
					linkLoad[linkKey{cur, ai}] += f
				}
				cur = l.To
			}
		}
	}

	contention := func(load float64) float64 {
		rho := load
		if rho > cfg.MaxUtilization {
			rho = cfg.MaxUtilization
		}
		return 1 / (1 - rho)
	}

	// Pass 2: per-pair latency and energy, traffic weighted.
	var totFlits, latNum, hopNum, pjNum, wirelessFlitHops, totalFlitHops float64
	maxUtil := 0.0
	for _, cl := range channelLoad {
		if cl > maxUtil {
			maxUtil = cl
		}
	}
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			f := traffic[s][d]
			if f == 0 || s == d {
				continue
			}
			var lat, pj float64
			cur := s
			hops := 0
			for _, ai := range rt.paths[s][d] {
				l := rt.topo.Adj[cur][ai]
				base := rt.costs.baseLatency(l)
				if l.Type == topo.Wireless {
					lat += base * contention(channelLoad[l.Channel])
					pj += nm.WirelessHopPJ()
					wirelessFlitHops += f
				} else {
					load := linkLoad[linkKey{cur, ai}]
					if load > maxUtil {
						maxUtil = load
					}
					lat += base * contention(load)
					pj += nm.WirelineHopPJ(l.LengthMM)
				}
				totalFlitHops += f
				hops++
				cur = l.To
			}
			pj += nm.SwitchPJPerFlitPort // ejection
			lat += cfg.PacketFlits - 1   // wormhole serialization
			totFlits += f
			latNum += f * lat
			hopNum += f * float64(hops)
			pjNum += f * pj
		}
	}
	if totFlits == 0 {
		return AnalyticResult{}, nil
	}
	res := AnalyticResult{
		AvgLatencyCycles:   latNum / totFlits,
		AvgHops:            hopNum / totFlits,
		EnergyPJPerFlit:    pjNum / totFlits,
		MaxLinkUtilization: maxUtil,
	}
	if totalFlitHops > 0 {
		res.WirelessFraction = wirelessFlitHops / totalFlitHops
	}
	res.NetworkEDP = res.EnergyPJPerFlit * res.AvgLatencyCycles
	return res, nil
}
