package noc

import (
	"fmt"
	"math"
	"sort"

	"wivfi/internal/energy"
	"wivfi/internal/topo"
)

// This file preserves the original cycle-driven wormhole engine verbatim
// (modulo telemetry, which the production wrapper owns) as the reference
// implementation the differential property test replays against. It
// iterates every switch and adjacency every simulated cycle and pays the
// per-flit O(path) route scan via pktState.nextAdjAt — the costs the
// event-calendar engine removes — so any semantic drift in the rewrite
// shows up as a result, latency-list, or hook-sequence mismatch.

// refBinding records which packet currently owns an output link.
type refBinding struct {
	p *pktState
	// srcQueue is the index of the source queue at this node: adjacency
	// index for an input buffer, or numInputs for the injection queue.
	srcQueue int
	sent     int
}

// runDESReference is the original runDESHooked core.
func runDESReference(rt *RouteTable, packets []Packet, nm energy.NetworkModel, cfg DESConfig, hooks desHooks) (DESResult, error) {
	t := rt.topo
	n := t.NumSwitches()
	if cfg.BufDepthFlits <= 0 || cfg.WIBufDepthFlits <= 0 || cfg.MaxCycles <= 0 {
		return DESResult{}, fmt.Errorf("noc: bad DES config %+v", cfg)
	}
	// Prepare packet states sorted by (Inject, ID) per source.
	states := make([]*pktState, 0, len(packets))
	bySrc := make([][]*pktState, n)
	var localOnly []*pktState
	for _, pk := range packets {
		if pk.Src < 0 || pk.Src >= n || pk.Dst < 0 || pk.Dst >= n {
			return DESResult{}, fmt.Errorf("noc: packet %d endpoints out of range", pk.ID)
		}
		if pk.Flits <= 0 {
			return DESResult{}, fmt.Errorf("noc: packet %d has %d flits", pk.ID, pk.Flits)
		}
		ps := &pktState{Packet: pk}
		if pk.Src == pk.Dst {
			// Local delivery: consumes no network resources.
			ps.done = true
			ps.ejectCycle = pk.Inject + int64(pk.Flits) - 1
			localOnly = append(localOnly, ps)
			continue
		}
		ps.nodeSeq = rt.Path(pk.Src, pk.Dst)
		ps.adjSeq = rt.paths[pk.Src][pk.Dst]
		states = append(states, ps)
		bySrc[pk.Src] = append(bySrc[pk.Src], ps)
	}
	for s := range bySrc {
		sort.SliceStable(bySrc[s], func(i, j int) bool {
			if bySrc[s][i].Inject != bySrc[s][j].Inject {
				return bySrc[s][i].Inject < bySrc[s][j].Inject
			}
			return bySrc[s][i].ID < bySrc[s][j].ID
		})
	}

	// Buffers: inBuf[v][ai] receives flits over the link Adj[v][ai]
	// (symmetric storage: the reverse direction of the same physical link).
	inBuf := make([][]*fifo, n)
	for v := 0; v < n; v++ {
		inBuf[v] = make([]*fifo, len(t.Adj[v]))
		for ai, l := range t.Adj[v] {
			depth := cfg.BufDepthFlits
			if l.Type == topo.Wireless {
				depth = cfg.WIBufDepthFlits
			}
			inBuf[v][ai] = &fifo{cap: depth}
		}
	}
	// reverse adjacency: rev[u][ai] = index aj at v=Adj[u][ai].To with
	// Adj[v][aj].To == u and matching type/channel.
	rev := make([][]int, n)
	for u := 0; u < n; u++ {
		rev[u] = make([]int, len(t.Adj[u]))
		for ai, l := range t.Adj[u] {
			rev[u][ai] = -1
			for aj, r := range t.Adj[l.To] {
				if r.To == u && r.Type == l.Type && r.Channel == l.Channel {
					rev[u][ai] = aj
					break
				}
			}
			if rev[u][ai] == -1 {
				return DESResult{}, fmt.Errorf("noc: link %d->%d has no reverse", u, l.To)
			}
		}
	}

	// Per-link pipeline delay in cycles: a flit sent at cycle c becomes
	// eligible to move (or be ejected) at c + delay. Throughput stays one
	// flit per cycle per link (pipelined wires).
	delay := make([][]int64, n)
	for u := 0; u < n; u++ {
		delay[u] = make([]int64, len(t.Adj[u]))
		for ai, l := range t.Adj[u] {
			d := int64(math.Round(rt.costs.baseLatency(l)))
			if d < 1 {
				d = 1
			}
			delay[u][ai] = d
		}
	}

	// Output bindings and round-robin arbitration pointers.
	bindings := make([][]*refBinding, n)
	rrPtr := make([][]int, n)
	for u := 0; u < n; u++ {
		bindings[u] = make([]*refBinding, len(t.Adj[u]))
		rrPtr[u] = make([]int, len(t.Adj[u]))
	}
	// injection pointer per source: next packet index in bySrc not yet
	// fully injected.
	injPtr := make([]int, n)

	// Wireless token state: per channel, the ring of WI switches and the
	// current holder index.
	rings := make([][]int, topo.NumChannels)
	for _, wi := range t.WIs {
		ch := t.ChannelOf[wi]
		rings[ch] = append(rings[ch], wi)
	}
	for ch := range rings {
		sort.Ints(rings[ch])
	}
	tokenIdx := make([]int, topo.NumChannels)

	var res DESResult
	remaining := len(states)
	for _, ps := range localOnly {
		res.Delivered++
		lat := ps.ejectCycle - ps.Inject
		res.AvgLatencyCycles += float64(lat)
		if lat > res.MaxLatencyCycles {
			res.MaxLatencyCycles = lat
		}
		if hooks.onDeliver != nil {
			hooks.onDeliver(ps.ID, lat)
		}
	}

	var cycle int64
	for ; remaining > 0 && cycle < cfg.MaxCycles; cycle++ {
		// Phase 1: ejection. Drain every input buffer's head flits destined
		// for this switch (flits must have arrived in an earlier cycle).
		for v := 0; v < n; v++ {
			for ai := range inBuf[v] {
				buf := inBuf[v][ai]
				for !buf.empty() {
					h := buf.head()
					if h.p.Dst != v || h.arrived >= cycle {
						break
					}
					fl := buf.pop()
					res.EnergyPJ += nm.SwitchPJPerFlitPort // ejection port
					fl.p.flitsEjected++
					if fl.p.flitsEjected == fl.p.Flits {
						fl.p.done = true
						fl.p.ejectCycle = cycle
						remaining--
						res.Delivered++
						lat := cycle - fl.p.Inject
						res.AvgLatencyCycles += float64(lat)
						if lat > res.MaxLatencyCycles {
							res.MaxLatencyCycles = lat
						}
						if hooks.onDeliver != nil {
							hooks.onDeliver(fl.p.ID, lat)
						}
					}
				}
			}
		}

		// Phase 2: transfers. One flit per output link per cycle; one flit
		// per wireless channel per cycle, transmitted by the token holder.
		channelUsed := make([]bool, topo.NumChannels)
		channelTailSent := make([]bool, topo.NumChannels)
		channelHeldBusy := make([]bool, topo.NumChannels)
		for u := 0; u < n; u++ {
			numIn := len(t.Adj[u])
			for ai, l := range t.Adj[u] {
				isWireless := l.Type == topo.Wireless
				if isWireless {
					ring := rings[l.Channel]
					if len(ring) == 0 {
						continue
					}
					holder := ring[tokenIdx[l.Channel]]
					if holder != u || channelUsed[l.Channel] {
						// A holder with an in-flight wormhole keeps the
						// token even when it cannot transmit this cycle.
						if holder == u && bindings[u][ai] != nil {
							channelHeldBusy[l.Channel] = true
						}
						continue
					}
				}
				v := l.To
				dst := inBuf[v][rev[u][ai]]
				b := bindings[u][ai]
				if b == nil {
					// Arbitrate a new packet: round-robin over source
					// queues whose head is a routable head flit.
					b = refArbitrate(u, ai, numIn, rrPtr, inBuf, bySrc, injPtr, cycle)
					if b == nil {
						continue
					}
					bindings[u][ai] = b
				}
				if dst.full() {
					if isWireless {
						channelHeldBusy[l.Channel] = true
					}
					continue
				}
				// Forward the next flit of the bound packet if available.
				fl, ok := refTakeFlit(u, b, numIn, inBuf, cycle)
				if !ok {
					if isWireless {
						channelHeldBusy[l.Channel] = true
					}
					continue
				}
				dst.push(flitRef{p: fl.p, idx: fl.idx, arrived: cycle + delay[u][ai] - 1})
				res.TotalFlitHops++
				if hooks.onForward != nil {
					hooks.onForward(u, ai, cycle)
				}
				if isWireless {
					res.EnergyPJ += nm.WirelessHopPJ()
					res.WirelessFlitHops++
					channelUsed[l.Channel] = true
					if fl.idx == fl.p.Flits-1 {
						channelTailSent[l.Channel] = true
					}
				} else {
					res.EnergyPJ += nm.WirelineHopPJ(l.LengthMM)
				}
				b.sent++
				if b.sent == b.p.Flits {
					bindings[u][ai] = nil
					if b.srcQueue == numIn {
						// Source finished injecting this packet: advance
						// the injection queue to the next packet.
						for injPtr[u] < len(bySrc[u]) && bySrc[u][injPtr[u]].flitsInjected == bySrc[u][injPtr[u]].Flits {
							injPtr[u]++
						}
					}
				}
			}
		}

		// Phase 3: token rotation. A holder that finished a packet or had
		// nothing to send passes the token; a holder mid-packet keeps it so
		// channel wormholes are not interleaved.
		for ch := range rings {
			if len(rings[ch]) == 0 {
				continue
			}
			if channelTailSent[ch] || (!channelUsed[ch] && !channelHeldBusy[ch]) {
				tokenIdx[ch] = (tokenIdx[ch] + 1) % len(rings[ch])
			}
		}
	}

	res.Cycles = cycle
	res.Stalled = remaining
	if res.Delivered > 0 {
		res.AvgLatencyCycles /= float64(res.Delivered)
	}
	if remaining > 0 {
		return res, fmt.Errorf("noc: %d packets undelivered after %d cycles (deadlock or overload)", remaining, cfg.MaxCycles)
	}
	return res, nil
}

// refArbitrate scans source queues at node u round-robin for a head flit
// that routes to output ai and returns a fresh binding, or nil.
func refArbitrate(u, ai, numIn int, rrPtr [][]int, inBuf [][]*fifo, bySrc [][]*pktState, injPtr []int, cycle int64) *refBinding {
	numQueues := numIn + 1
	start := rrPtr[u][ai]
	for k := 0; k < numQueues; k++ {
		q := (start + k) % numQueues
		if q < numIn {
			buf := inBuf[u][q]
			if buf.empty() {
				continue
			}
			h := buf.head()
			if h.arrived >= cycle || h.idx != 0 || h.p.Dst == u {
				continue
			}
			if h.p.nextAdjAt(u) == ai {
				rrPtr[u][ai] = (q + 1) % numQueues
				return &refBinding{p: h.p, srcQueue: q}
			}
		} else {
			// Injection queue: the oldest not-fully-injected packet at u.
			ptr := injPtr[u]
			if ptr >= len(bySrc[u]) {
				continue
			}
			ps := bySrc[u][ptr]
			if ps.Inject > cycle || ps.flitsInjected != 0 {
				// Not yet ready, or already being injected under an
				// existing binding elsewhere.
				continue
			}
			if ps.nextAdjAt(u) == ai {
				rrPtr[u][ai] = (q + 1) % numQueues
				return &refBinding{p: ps, srcQueue: numIn}
			}
		}
	}
	return nil
}

// refTakeFlit pops the next flit of the bound packet from its source queue
// if it is at the head and eligible this cycle.
func refTakeFlit(u int, b *refBinding, numIn int, inBuf [][]*fifo, cycle int64) (flitRef, bool) {
	if b.srcQueue == numIn {
		// Injection: synthesize the next flit.
		ps := b.p
		if ps.flitsInjected >= ps.Flits || ps.Inject > cycle {
			return flitRef{}, false
		}
		fl := flitRef{p: ps, idx: ps.flitsInjected}
		ps.flitsInjected++
		return fl, true
	}
	buf := inBuf[u][b.srcQueue]
	if buf.empty() {
		return flitRef{}, false
	}
	h := buf.head()
	if h.p != b.p || h.arrived >= cycle {
		return flitRef{}, false
	}
	return buf.pop(), true
}
