package noc

import (
	"fmt"
	"sort"

	"wivfi/internal/energy"
	"wivfi/internal/timeline"
	"wivfi/internal/topo"
)

// DefaultLinkWindow is the initial per-link sampler window in cycles.
// Every link series in one run shares a window (the probe rescales all
// rows together), so the heatmap rows stay on one time axis.
const DefaultLinkWindow = 64

// linkProbe bins flit forwards per link per cycle window. Unlike
// independent timeline.Samplers — which would rescale at different times
// and leave the heatmap rows on different axes — the probe rescales every
// row together, preserving a shared x axis.
type linkProbe struct {
	rt     *RouteTable
	base   []int // flat link index base per switch
	window int64 // shared window width in cycles
	rows   [][]float64
}

func newLinkProbe(rt *RouteTable, window int64) *linkProbe {
	t := rt.topo
	p := &linkProbe{rt: rt, window: window, base: make([]int, t.NumSwitches()+1)}
	for u := 0; u < t.NumSwitches(); u++ {
		p.base[u+1] = p.base[u] + len(t.Adj[u])
	}
	p.rows = make([][]float64, p.base[len(p.base)-1])
	return p
}

// record is the desHooks.onForward sink.
func (p *linkProbe) record(u, ai int, cycle int64) {
	b := cycle / p.window
	for b >= timeline.DefaultMaxBins {
		p.rescale()
		b = cycle / p.window
	}
	li := p.base[u] + ai
	row := p.rows[li]
	for int64(len(row)) <= b {
		row = append(row, 0)
	}
	row[b]++
	p.rows[li] = row
}

// rescale merges adjacent window pairs on every row and doubles the
// shared window.
func (p *linkProbe) rescale() {
	for li, row := range p.rows {
		if len(row) == 0 {
			continue
		}
		half := (len(row) + 1) / 2
		for i := 0; i < half; i++ {
			row[i] = row[2*i]
			if 2*i+1 < len(row) {
				row[i] += row[2*i+1]
			}
		}
		p.rows[li] = row[:half]
	}
	p.window *= 2
}

// series exports one sampler per link that carried traffic, named
// <prefix>link/<u>-<v> (wireless links gain a /w<channel> suffix).
func (p *linkProbe) series(prefix string) []timeline.Series {
	t := p.rt.topo
	var out []timeline.Series
	for u := 0; u < t.NumSwitches(); u++ {
		for ai, l := range t.Adj[u] {
			row := p.rows[p.base[u]+ai]
			if len(row) == 0 {
				continue
			}
			name := fmt.Sprintf("%slink/%d-%d", prefix, u, l.To)
			if l.Type == topo.Wireless {
				name = fmt.Sprintf("%s/w%d", name, l.Channel)
			}
			vals := make([]float64, len(row))
			copy(vals, row)
			out = append(out, timeline.Series{
				Meta:   timeline.Meta{Name: name, IndexUnit: "cycles", Unit: "flits"},
				Kind:   timeline.KindSampler,
				Agg:    timeline.Sum.String(),
				Window: p.window,
				Values: vals,
			})
		}
	}
	return out
}

// RunDESTimeline is RunDESInstrumented plus time-resolved capture: the
// returned series hold one flits-per-window sampler per active link (the
// link heatmap, shared time axis) and a packet-latency histogram named
// <prefix>latency. All captures ride the one simulation as hooks (an
// earlier version ran a plain pass first and replayed for the probes),
// so the DESStats aggregates match a plain run exactly.
func RunDESTimeline(rt *RouteTable, packets []Packet, nm energy.NetworkModel, cfg DESConfig, prefix string) (*DESStats, []timeline.Series, error) {
	probe := newLinkProbe(rt, DefaultLinkWindow)
	hist := timeline.NewHistogram(timeline.Meta{Name: prefix + "latency", IndexUnit: "cycles", Unit: "cycles"})
	lats := make([]int64, 0, len(packets))
	base, err := runDESHooked(rt, packets, nm, cfg, desHooks{
		onDeliver: func(id int, latency int64) {
			lats = append(lats, latency)
			hist.Observe(latency)
		},
		onForward: probe.record,
	})
	if err != nil {
		return nil, nil, err
	}
	stats := &DESStats{DESResult: base}
	stats.Links = staticLinkStats(rt, packets, base.Cycles)
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	stats.Latencies = lats

	series := probe.series(prefix)
	series = append(series, hist.Series())
	return stats, series, nil
}
