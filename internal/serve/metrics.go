package serve

import (
	"wivfi/internal/obs"
	"wivfi/internal/timeline"
)

// Metric names registered below. Declared constants (enforced by
// wivfi-lint countersafe) so every lookup site — handlers, tests, the CI
// smoke job and the load generator's /metrics scrape — shares one
// authoritative spelling.
const (
	// MetricRequests counts every request admitted past admission control
	// (streamed or plain, leader or follower).
	MetricRequests = "serve.requests"
	// MetricRejects counts requests bounced by admission control (over
	// capacity or draining).
	MetricRejects = "serve.admission_rejects"
	// MetricErrors counts admitted requests that ended in a pipeline error.
	MetricErrors = "serve.errors"
	// MetricInFlight gauges the requests currently inside the service
	// (admitted, not yet responded), with a high-water mark.
	MetricInFlight = "serve.in_flight"
	// MetricDedupShared counts requests that attached to another request's
	// in-progress execution (per-config singleflight).
	MetricDedupShared = "serve.singleflight_shared"
	// MetricResultHits counts requests answered straight from the
	// in-memory result store (no pipeline work at all).
	MetricResultHits = "serve.cache.result_hits"
	// MetricDesignHits counts leader executions that reloaded the profile
	// and VFI plan from the on-disk design cache.
	MetricDesignHits = "serve.cache.design_hits"
	// MetricCacheMisses counts leader executions that ran the full design
	// flow cold.
	MetricCacheMisses = "serve.cache.misses"
	// MetricLatencyMS is the end-to-end request latency histogram
	// (milliseconds, log-bucketed by internal/timeline, exported on
	// /metrics in Prometheus histogram text format).
	MetricLatencyMS = "serve.request_latency_ms"
)

var (
	reqCounter         = obs.NewCounter(MetricRequests)
	rejectCounter      = obs.NewCounter(MetricRejects)
	errorCounter       = obs.NewCounter(MetricErrors)
	inFlightGauge      = obs.NewGauge(MetricInFlight)
	dedupSharedCounter = obs.NewCounter(MetricDedupShared)
	resultHitCounter   = obs.NewCounter(MetricResultHits)
	designHitCounter   = obs.NewCounter(MetricDesignHits)
	cacheMissCounter   = obs.NewCounter(MetricCacheMisses)

	// requestLatency is process-wide like the counters: every Server in
	// the process observes into one histogram, which is what /metrics
	// exposes.
	requestLatency = timeline.NewHistogram(timeline.Meta{
		Name: MetricLatencyMS, IndexUnit: "ms", Unit: "requests",
	})
)

func init() {
	obs.RegisterHistogram(MetricLatencyMS, func() obs.HistogramSnapshot {
		return histogramSnapshot(requestLatency.Data())
	})
}

// histogramSnapshot adapts a timeline histogram export to the neutral
// bucket form the obs Prometheus exporter renders: each timeline bucket
// [Lo, Hi] becomes one le=Hi bucket, preserving the log-spaced boundaries.
func histogramSnapshot(d *timeline.HistogramData) obs.HistogramSnapshot {
	if d == nil {
		return obs.HistogramSnapshot{}
	}
	snap := obs.HistogramSnapshot{Count: d.Count, Sum: d.Sum}
	for _, b := range d.Buckets {
		snap.Buckets = append(snap.Buckets, obs.HistogramBucket{UpperBound: b.Hi, Count: b.Count})
	}
	return snap
}
