package serve

import (
	"reflect"
	"testing"
)

func TestScheduleDeterministic(t *testing.T) {
	opts := LoadOptions{Requests: 64, Seed: 42, Apps: []string{"mm", "wc"}, Variants: 4}
	a := Schedule(opts)
	b := Schedule(opts)
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed produced different schedules")
	}
	opts.Seed = 43
	c := Schedule(opts)
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds produced identical schedules")
	}
	if len(a) != 64 {
		t.Errorf("schedule length = %d, want 64", len(a))
	}
	variants := map[float64]int{}
	for _, req := range a {
		if req.App != "mm" && req.App != "wc" {
			t.Fatalf("schedule drew app %q outside the requested set", req.App)
		}
		if req.FreqMargin != nil {
			variants[*req.FreqMargin]++
		}
	}
	if len(variants) != 3 {
		t.Errorf("schedule used %d freq_margin variants, want 3 (variants 1..3)", len(variants))
	}
}

func TestParseMetricsAndLatencyQuantile(t *testing.T) {
	before := ParseMetrics(`# HELP wivfi_serve_request_latency_ms d
# TYPE wivfi_serve_request_latency_ms histogram
wivfi_serve_request_latency_ms_bucket{le="1"} 0
wivfi_serve_request_latency_ms_bucket{le="2"} 0
wivfi_serve_request_latency_ms_bucket{le="+Inf"} 0
wivfi_serve_request_latency_ms_sum 0
wivfi_serve_request_latency_ms_count 0
wivfi_serve_requests 3
`)
	after := ParseMetrics(`wivfi_serve_request_latency_ms_bucket{le="1"} 6
wivfi_serve_request_latency_ms_bucket{le="2"} 9
wivfi_serve_request_latency_ms_bucket{le="+Inf"} 10
wivfi_serve_request_latency_ms_sum 40
wivfi_serve_request_latency_ms_count 10
wivfi_serve_requests 13
`)
	if got := after.Counter(MetricRequests); got != 13 {
		t.Errorf("Counter(%q) = %v, want 13", MetricRequests, got)
	}
	if got := after.CounterDelta(before, MetricRequests); got != 10 {
		t.Errorf("CounterDelta = %v, want 10", got)
	}
	if got := LatencyQuantile(before, after, MetricLatencyMS, 0.5); got != 1 {
		t.Errorf("p50 = %v, want 1 (6 of 10 samples in the le=1 bucket)", got)
	}
	if got := LatencyQuantile(before, after, MetricLatencyMS, 0.9); got != 2 {
		t.Errorf("p90 = %v, want 2", got)
	}
	if got := LatencyQuantile(before, after, MetricLatencyMS, 1.0); got <= 0 {
		t.Errorf("p100 = %v, want a positive bucket bound", got)
	}
	if got := LatencyQuantile(before, before, MetricLatencyMS, 0.5); got != 0 {
		t.Errorf("quantile over an empty interval = %v, want 0", got)
	}
}

// TestRunLoadAgainstServer drives a small deterministic load through a
// real server and cross-checks the client report against the daemon's own
// /metrics counters.
func TestRunLoadAgainstServer(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	before, err := ScrapeMetrics(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunLoad(ts.URL, LoadOptions{Requests: 12, Concurrency: 4, Seed: 7, Apps: []string{"mm"}, Variants: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 12 || rep.Failures != 0 {
		t.Fatalf("report = %d requests, %d failures (statuses %v), want 12 clean", rep.Requests, rep.Failures, rep.Statuses)
	}
	if rep.Statuses[200] != 12 {
		t.Errorf("statuses = %v, want 12x 200", rep.Statuses)
	}
	if rep.QPS <= 0 || rep.ElapsedMS <= 0 {
		t.Errorf("throughput not measured: QPS=%v elapsed=%vms", rep.QPS, rep.ElapsedMS)
	}
	if rep.Latency == nil || rep.Latency.Count != 12 {
		t.Errorf("client latency histogram = %+v, want 12 samples", rep.Latency)
	}
	after, err := ScrapeMetrics(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if d := after.CounterDelta(before, MetricRequests); d != 12 {
		t.Errorf("daemon counted %v requests, want 12", d)
	}
	// Two distinct configs → at most 2 cold executions; the other 10
	// requests were answered by dedup or the result store.
	cold := after.CounterDelta(before, MetricCacheMisses) + after.CounterDelta(before, MetricDesignHits)
	cheap := after.CounterDelta(before, MetricResultHits) + after.CounterDelta(before, MetricDedupShared)
	if cold > 2 {
		t.Errorf("%v cold executions for 2 distinct configs, want <= 2", cold)
	}
	if cold+cheap != 12 {
		t.Errorf("cold (%v) + cheap (%v) != 12 requests", cold, cheap)
	}
}

// TestRunSaturationSmall exercises the saturation benchmark end to end at
// a toy scale; the real headline numbers come from cmd/wivfiload in CI and
// EXPERIMENTS.md.
func TestRunSaturationSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("runs several cold pipelines")
	}
	_, ts := newTestServer(t, Options{})
	rep, err := RunSaturation(ts.URL, SaturationOptions{App: "mm", ColdConfigs: 2, HotRequests: 40, Concurrency: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ColdQPS <= 0 || rep.HotQPS <= 0 {
		t.Fatalf("report = %+v, want measured cold and hot throughput", rep)
	}
	if rep.SpeedupX <= 1 {
		t.Errorf("hot path speedup = %.1fx, want > 1x (result store must beat cold pipelines)", rep.SpeedupX)
	}
	if rep.Misses != 2 {
		t.Errorf("cold misses = %v, want 2", rep.Misses)
	}
	if rep.ResultHits+rep.Shared != 40 {
		t.Errorf("hot phase hits+shared = %v, want all 40 requests cheap", rep.ResultHits+rep.Shared)
	}
	if rep.ServerRequests != 42 {
		t.Errorf("server saw %v requests, want 42", rep.ServerRequests)
	}
}
