package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"wivfi/internal/obs"
	"wivfi/internal/sweep"
)

// Sweep metric names. Declared constants (enforced by wivfi-lint
// countersafe) like the request metrics above.
const (
	// MetricSweeps counts sweep requests admitted past admission control.
	MetricSweeps = "serve.sweeps"
	// MetricSweepScenarios counts scenarios executed on behalf of sweep
	// requests (the sweep.* counters classify their outcomes).
	MetricSweepScenarios = "serve.sweep_scenarios"
)

var (
	sweepCounter         = obs.NewCounter(MetricSweeps)
	sweepScenarioCounter = obs.NewCounter(MetricSweepScenarios)
)

// Sweep event names, extending the design-request vocabulary. Consumers
// treat unknown names as forward-compatible extensions.
const (
	// EventSweepScenario: one scenario finished (or was replayed from a
	// journal); carries the full record plus done/total progress.
	EventSweepScenario = "sweep-scenario"
	// EventSweepResult: the terminal success event of a sweep request;
	// carries the aggregate atlas.
	EventSweepResult = "sweep-result"
)

// DefaultMaxSweepScenarios bounds the grid a single service request may
// expand to; larger studies belong on the wivfisweep CLI with a journal.
const DefaultMaxSweepScenarios = 256

// handleSweep runs a parametric scenario sweep and streams per-scenario
// progress live. The request body is a sweep spec document (the same
// schema the wivfisweep CLI reads); ?stream=ndjson switches framing from
// the default SSE. Sweeps are journal-less in the service — resumability
// lives in the CLI — but they share the design cache and the scenario
// keyspace, so repeated sweeps still dedup the expensive design work.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", "POST")
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
		return
	}
	var spec sweep.Spec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("sweep spec: %w", err))
		return
	}
	if err := spec.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	scenarios, _, err := spec.Generate()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	limit := s.maxSweepScenarios
	if v := r.URL.Query().Get("max"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("max must be a positive integer, got %q", v))
			return
		}
		if n < limit {
			limit = n
		}
	}
	if len(scenarios) > limit {
		writeError(w, http.StatusBadRequest, fmt.Errorf(
			"spec expands to %d scenarios, above this service's %d-scenario bound; shrink the grid, set sample, or run wivfisweep with a journal", len(scenarios), limit))
		return
	}

	if !s.enter() {
		rejectCounter.Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, errors.New("at capacity or draining, retry later"))
		return
	}
	defer s.leave()
	sweepCounter.Add(1)
	id := fmt.Sprintf("r-%06d", s.reqSeq.Add(1))
	w.Header().Set("X-Request-ID", id)
	start := time.Now() //lint:wallclock request latency feeds stream events and /metrics only
	var em *emitter
	if r.URL.Query().Get("stream") == string(StreamNDJSON) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		em = &emitter{id: id, sink: ndjsonSink{w}}
	} else {
		w.Header().Set("Content-Type", "text/event-stream")
		em = &emitter{id: id, sink: sseSink{w}}
	}
	w.Header().Set("Cache-Control", "no-store")
	em.emit(Event{Event: EventAccepted, Key: spec.Name, Done: 0, Total: len(scenarios)})

	res, err := sweep.Run(&spec, sweep.Options{
		CacheDir:    s.cacheDir,
		Parallelism: s.parallelism,
		OnRecord: func(rec sweep.Record, resumed bool) {
			sweepScenarioCounter.Add(1)
			em.emit(Event{Event: EventSweepScenario, Key: rec.Key, SweepRecord: &rec})
		},
		OnProgress: func(done, total int) {
			em.emit(Event{Event: EventPhase, Phase: "sweep", State: "progress", Done: done, Total: total})
		},
	})
	if err != nil {
		errorCounter.Add(1)
		em.emit(Event{Event: EventError, Key: spec.Name, Error: err.Error(), ElapsedMS: msSince(start)})
		return
	}
	em.emit(Event{
		Event: EventSweepResult, Key: spec.Name,
		Done: res.Completed + res.Resumed, Total: res.Planned,
		Atlas: res.Atlas, ElapsedMS: msSince(start),
	})
}
