package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"wivfi/internal/obs"
	"wivfi/internal/timeline"
)

// LoadOptions shapes one generated workload. The schedule is a pure
// function of the options — same seed, same requests — so load runs are
// replayable and benchmark numbers are comparable across machines.
type LoadOptions struct {
	// Requests is the total number of requests to issue.
	Requests int
	// Concurrency is the number of in-flight requests the generator
	// sustains (default 8).
	Concurrency int
	// Seed drives the deterministic schedule.
	Seed int64
	// Apps are the benchmarks to draw from (default: just "mm").
	Apps []string
	// Variants is the number of distinct config variants per app (default
	// 1). Variant 0 is the server's default config; higher variants nudge
	// freq_margin so each owns a distinct cache key, which is how a
	// schedule mixes result-store hits with cold pipeline executions.
	Variants int
	// Stream requests NDJSON event streams instead of plain documents.
	Stream bool
}

// variantMargin returns the freq_margin override for variant v > 0. The
// deltas are far below any physically meaningful margin difference, so
// every variant designs essentially the same chip while hashing to its
// own dedup/cache key.
func variantMargin(v int) float64 { return 0.31 + 0.0005*float64(v) }

// Schedule expands opts into the concrete request sequence. Deterministic:
// it draws only from a rand.Rand seeded with opts.Seed.
func Schedule(opts LoadOptions) []Request {
	apps := opts.Apps
	if len(apps) == 0 {
		apps = []string{"mm"}
	}
	variants := opts.Variants
	if variants < 1 {
		variants = 1
	}
	stream := ""
	if opts.Stream {
		stream = StreamNDJSON
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	reqs := make([]Request, opts.Requests)
	for i := range reqs {
		reqs[i] = Request{App: apps[rng.Intn(len(apps))], Stream: stream}
		if v := rng.Intn(variants); v > 0 {
			m := variantMargin(v)
			reqs[i].FreqMargin = &m
		}
	}
	return reqs
}

// LoadReport summarizes one load run from the client's side.
type LoadReport struct {
	Requests int `json:"requests"`
	// Failures counts transport errors and non-2xx responses.
	Failures int `json:"failures"`
	// Statuses tallies responses by HTTP status (0 for transport errors).
	Statuses map[int]int `json:"statuses"`
	// ElapsedMS and QPS describe sustained throughput over the whole run.
	ElapsedMS float64 `json:"elapsed_ms"`
	QPS       float64 `json:"qps"`
	// Latency is the client-observed per-request latency distribution
	// (milliseconds, same log-bucketed histogram the daemon exports).
	Latency *timeline.HistogramData `json:"latency"`
}

// RunLoad replays the schedule of opts against a wivfid base URL with
// bounded concurrency and reports client-side throughput and latency.
func RunLoad(baseURL string, opts LoadOptions) (*LoadReport, error) {
	if opts.Concurrency < 1 {
		opts.Concurrency = 8
	}
	schedule := Schedule(opts)
	hist := timeline.NewHistogram(timeline.Meta{Name: "load.client_latency_ms", IndexUnit: "ms", Unit: "requests"})
	var mu sync.Mutex
	statuses := map[int]int{}
	failures := 0

	client := &http.Client{}
	jobs := make(chan Request)
	var wg sync.WaitGroup
	start := time.Now() //lint:wallclock load-generator throughput measurement, not simulation state
	for i := 0; i < opts.Concurrency; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for req := range jobs {
				t0 := time.Now() //lint:wallclock client-side latency sample
				status := issue(client, baseURL, req)
				hist.Observe(time.Since(t0).Milliseconds()) //lint:wallclock client-side latency sample
				mu.Lock()
				statuses[status]++
				if status < 200 || status > 299 {
					failures++
				}
				mu.Unlock()
			}
		}()
	}
	for _, req := range schedule {
		jobs <- req
	}
	close(jobs)
	wg.Wait()
	elapsed := msSince(start)
	rep := &LoadReport{
		Requests:  len(schedule),
		Failures:  failures,
		Statuses:  statuses,
		ElapsedMS: elapsed,
		Latency:   hist.Data(),
	}
	if elapsed > 0 {
		rep.QPS = float64(len(schedule)) / (elapsed / 1000)
	}
	return rep, nil
}

// issue sends one request and fully drains the response (streamed
// responses arrive as many frames; throughput is only honest if the
// client consumes them all). Returns the HTTP status, 0 on transport
// failure.
func issue(client *http.Client, baseURL string, req Request) int {
	blob, err := json.Marshal(req)
	if err != nil {
		return 0
	}
	resp, err := client.Post(baseURL+"/v1/design", "application/json", bytes.NewReader(blob))
	if err != nil {
		return 0
	}
	defer resp.Body.Close()
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		return 0
	}
	return resp.StatusCode
}

// ---- /metrics scraping -----------------------------------------------------

// Metrics is one scrape of a Prometheus text endpoint, keyed by raw sample
// name including any {le="..."} label, e.g.
// "wivfi_serve_requests" or "wivfi_serve_request_latency_ms_bucket{le=\"24\"}".
type Metrics map[string]float64

// ParseMetrics parses Prometheus text exposition format (the subset the
// obs exporter emits: unlabeled samples plus histogram le buckets).
func ParseMetrics(text string) Metrics {
	m := Metrics{}
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			continue
		}
		m[line[:sp]] = v
	}
	return m
}

// ScrapeMetrics fetches and parses baseURL's /metrics endpoint.
func ScrapeMetrics(baseURL string) (Metrics, error) {
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("scrape /metrics: status %d", resp.StatusCode)
	}
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	return ParseMetrics(string(blob)), nil
}

// Counter returns the sample for a dotted metric name (the declared
// constants in this package), resolving the exported Prometheus spelling.
func (m Metrics) Counter(name string) float64 { return m[obs.PromName(name)] }

// CounterDelta returns how much a counter grew between two scrapes.
func (m Metrics) CounterDelta(before Metrics, name string) float64 {
	return m.Counter(name) - before.Counter(name)
}

// LatencyQuantile estimates quantile q of the named histogram over the
// interval between two scrapes, from the cumulative-bucket differences.
// Returns the upper bound of the bucket holding the quantile; 0 when the
// interval observed no samples.
func LatencyQuantile(before, after Metrics, name string, q float64) float64 {
	prefix := obs.PromName(name) + `_bucket{le="`
	type bucket struct {
		le  float64
		cum float64
	}
	var buckets []bucket
	for key, v := range after {
		if !strings.HasPrefix(key, prefix) {
			continue
		}
		leStr := strings.TrimSuffix(strings.TrimPrefix(key, prefix), `"}`)
		le := math.Inf(1)
		if leStr != "+Inf" {
			x, err := strconv.ParseFloat(leStr, 64)
			if err != nil {
				continue
			}
			le = x
		}
		buckets = append(buckets, bucket{le: le, cum: v - before[key]})
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].le < buckets[j].le })
	total := after.Counter(name+"_count") - before.Counter(name+"_count")
	if total <= 0 || len(buckets) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * total
	for _, b := range buckets {
		if b.cum >= rank && b.cum > 0 {
			return b.le
		}
	}
	return buckets[len(buckets)-1].le
}

// ---- Saturation benchmark --------------------------------------------------

// SaturationOptions configures the cache-hit saturation benchmark.
type SaturationOptions struct {
	// App is the benchmark designed throughout (default "mm").
	App string
	// ColdConfigs is the number of distinct config variants executed cold,
	// each a full design pipeline (default 4).
	ColdConfigs int
	// HotRequests is the number of requests replayed over those same
	// (now-memoized) configs (default 200).
	HotRequests int
	// Concurrency bounds the generator's in-flight requests (default 8).
	Concurrency int
	// Seed drives the hot phase's deterministic config sampling.
	Seed int64
}

// SaturationReport compares the service's cold (full pipeline) and hot
// (result-store) paths. Server* fields are counter deltas read back from
// the daemon's own /metrics, so the report and the dashboards agree.
type SaturationReport struct {
	App          string  `json:"app"`
	ColdRequests int     `json:"cold_requests"`
	ColdQPS      float64 `json:"cold_qps"`
	HotRequests  int     `json:"hot_requests"`
	HotQPS       float64 `json:"hot_qps"`
	// SpeedupX is HotQPS / ColdQPS — the factor the result store buys.
	SpeedupX float64 `json:"speedup_x"`
	// HotP50MS / HotP99MS are the daemon-side request latency quantiles
	// over the hot phase, from /metrics histogram bucket deltas.
	HotP50MS float64 `json:"hot_p50_ms"`
	HotP99MS float64 `json:"hot_p99_ms"`
	// Counter deltas over the whole benchmark.
	ServerRequests float64 `json:"server_requests"`
	ResultHits     float64 `json:"result_hits"`
	DesignHits     float64 `json:"design_hits"`
	Misses         float64 `json:"misses"`
	Shared         float64 `json:"shared"`
}

// RunSaturation measures the service's cold and hot paths against a
// running wivfid: first it executes ColdConfigs distinct designs (every
// one a full pipeline), then it replays HotRequests requests across those
// same configs, which the daemon answers from its result store.
func RunSaturation(baseURL string, opts SaturationOptions) (*SaturationReport, error) {
	if opts.App == "" {
		opts.App = "mm"
	}
	if opts.ColdConfigs < 1 {
		opts.ColdConfigs = 4
	}
	if opts.HotRequests < 1 {
		opts.HotRequests = 200
	}
	if opts.Concurrency < 1 {
		opts.Concurrency = 8
	}
	configs := make([]Request, opts.ColdConfigs)
	for v := range configs {
		configs[v] = Request{App: opts.App}
		if v > 0 {
			m := variantMargin(v)
			configs[v].FreqMargin = &m
		}
	}

	before, err := ScrapeMetrics(baseURL)
	if err != nil {
		return nil, err
	}

	client := &http.Client{}
	coldStart := time.Now() //lint:wallclock benchmark throughput measurement
	for _, req := range configs {
		if status := issue(client, baseURL, req); status != http.StatusOK {
			return nil, fmt.Errorf("cold request for %s: status %d", req.App, status)
		}
	}
	coldMS := msSince(coldStart)

	mid, err := ScrapeMetrics(baseURL)
	if err != nil {
		return nil, err
	}

	rng := rand.New(rand.NewSource(opts.Seed))
	jobs := make(chan Request)
	var wg sync.WaitGroup
	errCh := make(chan error, opts.Concurrency)
	hotStart := time.Now() //lint:wallclock benchmark throughput measurement
	for i := 0; i < opts.Concurrency; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for req := range jobs {
				if status := issue(client, baseURL, req); status != http.StatusOK {
					select {
					case errCh <- fmt.Errorf("hot request for %s: status %d", req.App, status):
					default:
					}
				}
			}
		}()
	}
	for i := 0; i < opts.HotRequests; i++ {
		jobs <- configs[rng.Intn(len(configs))]
	}
	close(jobs)
	wg.Wait()
	hotMS := msSince(hotStart)
	select {
	case err := <-errCh:
		return nil, err
	default:
	}

	after, err := ScrapeMetrics(baseURL)
	if err != nil {
		return nil, err
	}

	rep := &SaturationReport{
		App:          opts.App,
		ColdRequests: opts.ColdConfigs,
		HotRequests:  opts.HotRequests,
		HotP50MS:     LatencyQuantile(mid, after, MetricLatencyMS, 0.50),
		HotP99MS:     LatencyQuantile(mid, after, MetricLatencyMS, 0.99),

		ServerRequests: after.CounterDelta(before, MetricRequests),
		ResultHits:     after.CounterDelta(before, MetricResultHits),
		DesignHits:     after.CounterDelta(before, MetricDesignHits),
		Misses:         after.CounterDelta(before, MetricCacheMisses),
		Shared:         after.CounterDelta(before, MetricDedupShared),
	}
	if coldMS > 0 {
		rep.ColdQPS = float64(opts.ColdConfigs) / (coldMS / 1000)
	}
	if hotMS > 0 {
		rep.HotQPS = float64(opts.HotRequests) / (hotMS / 1000)
	}
	if rep.ColdQPS > 0 {
		rep.SpeedupX = rep.HotQPS / rep.ColdQPS
	}
	return rep, nil
}
