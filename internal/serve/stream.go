package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"

	"wivfi/internal/governor"
	"wivfi/internal/obs"
	"wivfi/internal/sweep"
)

// EventSchemaVersion is stamped into every streamed event; bump it when
// the event document's meaning changes.
const EventSchemaVersion = 1

// Event names, in the order a successful request emits them. Phase names
// inside EventPhase match the obs span names of the pipeline
// (design-flow, probe-sim, vfi-design, sim:*), so a streamed request and
// a -trace artifact describe the same tree.
const (
	// EventAccepted: past validation and admission; carries app and key.
	EventAccepted = "accepted"
	// EventDedup: how this request maps onto execution — outcome "leader"
	// (runs the pipeline), "shared" (attached to a running leader) or
	// "result-hit" (answered from the result store).
	EventDedup = "dedup"
	// EventCache: the leader's design-cache classification — outcome
	// "design-hit" or "miss".
	EventCache = "cache"
	// EventPhase: one pipeline stage changed state ("start"/"done").
	EventPhase = "phase"
	// EventDecision: one closed-loop governor decision of a governed
	// request, carrying the full decision record (phase, per-island moves,
	// predicted power, cap headroom). Emitted between the sim:governor
	// phase events, in phase order.
	EventDecision = "decision"
	// EventResult: the terminal success event; carries the Result and the
	// per-stage wall-time summaries in the manifest's StageSummary schema.
	EventResult = "result"
	// EventError: the terminal failure event.
	EventError = "error"
)

// Event is one streamed progress record of a design request. Every event
// is tagged with the request id and a per-request sequence number;
// consumers treat unknown fields and event names as forward-compatible
// extensions.
type Event struct {
	Schema    int    `json:"schema"`
	RequestID string `json:"request_id"`
	Seq       int64  `json:"seq"`
	Event     string `json:"event"`
	App       string `json:"app,omitempty"`
	Key       string `json:"key,omitempty"`
	// Policy and CapW describe a governed request's governor dimension,
	// stamped on EventAccepted.
	Policy string  `json:"policy,omitempty"`
	CapW   float64 `json:"cap_w,omitempty"`
	// Phase and State describe EventPhase ("design-flow", "start").
	Phase string `json:"phase,omitempty"`
	State string `json:"state,omitempty"`
	// Outcome classifies EventDedup and EventCache.
	Outcome string `json:"outcome,omitempty"`
	// Leader names the executing request on EventDedup outcome "shared".
	Leader string `json:"leader,omitempty"`
	// ElapsedMS is the wall time since the request was accepted, stamped
	// on terminal events.
	ElapsedMS float64 `json:"elapsed_ms,omitempty"`
	// Stages aggregates the leader's per-stage wall times in the run
	// manifest's schema, on EventResult.
	Stages []obs.StageSummary `json:"stages,omitempty"`
	// Decision carries one governor decision record on EventDecision.
	Decision *governor.Decision `json:"decision,omitempty"`
	Result   *Result            `json:"result,omitempty"`
	Error    string             `json:"error,omitempty"`
	// Done/Total carry sweep progress on EventSweepScenario and the
	// "sweep" EventPhase; SweepRecord is the finished scenario's journal
	// record; Atlas is the aggregate on EventSweepResult.
	Done        int           `json:"done,omitempty"`
	Total       int           `json:"total,omitempty"`
	SweepRecord *sweep.Record `json:"sweep_record,omitempty"`
	Atlas       *sweep.Atlas  `json:"atlas,omitempty"`
}

// eventSink writes one event to the client in the negotiated framing.
type eventSink interface {
	send(Event) error
}

// ndjsonSink frames events as newline-delimited JSON, flushing per event
// so clients observe progress live.
type ndjsonSink struct {
	w http.ResponseWriter
}

func (s ndjsonSink) send(ev Event) error {
	blob, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	if _, err := s.w.Write(append(blob, '\n')); err != nil {
		return err
	}
	if f, ok := s.w.(http.Flusher); ok {
		f.Flush()
	}
	return nil
}

// sseSink frames events as Server-Sent Events data frames.
type sseSink struct {
	w http.ResponseWriter
}

func (s sseSink) send(ev Event) error {
	blob, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(s.w, "event: %s\ndata: %s\n\n", ev.Event, blob); err != nil {
		return err
	}
	if f, ok := s.w.(http.Flusher); ok {
		f.Flush()
	}
	return nil
}

// emitter stamps request identity and sequence numbers onto events and
// fans them to the client sink. Safe for concurrent use — pipeline stage
// callbacks arrive from pool goroutines.
type emitter struct {
	id   string
	sink eventSink

	mu  sync.Mutex
	seq int64
	err error // first sink error; once broken, stop writing
}

// emit sends one event, filling Schema, RequestID and Seq.
func (e *emitter) emit(ev Event) {
	if e == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.err != nil {
		return
	}
	e.seq++
	ev.Schema = EventSchemaVersion
	ev.RequestID = e.id
	ev.Seq = e.seq
	e.err = e.sink.send(ev)
}

// stageTimes aggregates the per-stage wall times of one request into the
// manifest's StageSummary schema for the terminal result event.
type stageTimes struct {
	mu    sync.Mutex
	open  map[string]float64 // stage -> start, ms since request accept
	byNme map[string]*obs.StageSummary
}

func newStageTimes() *stageTimes {
	return &stageTimes{open: map[string]float64{}, byNme: map[string]*obs.StageSummary{}}
}

// observe records one stage transition at nowMS.
func (st *stageTimes) observe(stage, state string, nowMS float64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if state == "start" {
		st.open[stage] = nowMS
		return
	}
	start, ok := st.open[stage]
	if !ok {
		return
	}
	delete(st.open, stage)
	ms := nowMS - start
	s, ok := st.byNme[stage]
	if !ok {
		st.byNme[stage] = &obs.StageSummary{Name: stage, Count: 1, TotalMS: ms, MinMS: ms, MaxMS: ms}
		return
	}
	s.Count++
	s.TotalMS += ms
	if ms < s.MinMS {
		s.MinMS = ms
	}
	if ms > s.MaxMS {
		s.MaxMS = ms
	}
}

// summaries returns the aggregated stages sorted by name, the manifest's
// canonical order.
func (st *stageTimes) summaries() []obs.StageSummary {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]obs.StageSummary, 0, len(st.byNme))
	for _, s := range st.byNme {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
