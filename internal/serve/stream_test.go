package serve

import (
	"bufio"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"wivfi/internal/expt"
)

// collectNDJSON submits a streaming design request and decodes every
// NDJSON line into an Event.
func collectNDJSON(t *testing.T, baseURL string, req Request) (*http.Response, []Event) {
	t.Helper()
	resp := postDesign(t, baseURL, req)
	defer resp.Body.Close()
	var events []Event
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		var ev Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("stream line is not an Event: %v\nline: %s", err, line)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return resp, events
}

func TestNDJSONStream(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, events := collectNDJSON(t, ts.URL, Request{App: "mm", Stream: StreamNDJSON})
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q, want application/x-ndjson", ct)
	}
	if len(events) < 4 {
		t.Fatalf("stream held %d events, want at least accepted/dedup/phases/result", len(events))
	}

	id := resp.Header.Get("X-Request-ID")
	for i, ev := range events {
		if ev.Schema != EventSchemaVersion {
			t.Errorf("event %d schema = %d, want %d", i, ev.Schema, EventSchemaVersion)
		}
		if ev.RequestID != id {
			t.Errorf("event %d request_id = %q, want header id %q", i, ev.RequestID, id)
		}
		if ev.Seq != int64(i+1) {
			t.Errorf("event %d seq = %d, want %d", i, ev.Seq, i+1)
		}
	}

	first := events[0]
	if first.Event != EventAccepted || first.App != "mm" || first.Key == "" {
		t.Errorf("first event = %+v, want accepted with app and key", first)
	}
	kinds := map[string]int{}
	phases := map[string]int{}
	for _, ev := range events {
		kinds[ev.Event]++
		if ev.Event == EventPhase && ev.State == "done" {
			phases[ev.Phase]++
		}
	}
	if kinds[EventDedup] != 1 {
		t.Errorf("dedup events = %d, want 1", kinds[EventDedup])
	}
	if kinds[EventCache] != 1 {
		t.Errorf("cache events = %d, want 1", kinds[EventCache])
	}
	for _, stage := range []string{
		"design-flow", "probe-sim", "vfi-design",
		"sim:nvfi-mesh", "sim:vfi1-mesh", "sim:vfi2-mesh",
		"sim:winoc-min-hop", "sim:winoc-max-wireless",
	} {
		if phases[stage] != 1 {
			t.Errorf("phase %q completed %d times in the stream, want 1", stage, phases[stage])
		}
	}

	last := events[len(events)-1]
	if last.Event != EventResult {
		t.Fatalf("terminal event = %q, want result", last.Event)
	}
	if last.Result == nil || last.Result.App != "mm" {
		t.Fatal("result event carries no result document")
	}
	if last.ElapsedMS <= 0 {
		t.Error("result event missing elapsed time")
	}
	if len(last.Stages) == 0 {
		t.Fatal("result event carries no stage summaries")
	}
	seen := map[string]bool{}
	for _, st := range last.Stages {
		seen[st.Name] = true
		if st.Count < 1 || st.TotalMS < 0 || st.MaxMS < st.MinMS {
			t.Errorf("stage summary %+v is inconsistent", st)
		}
	}
	if !seen["design-flow"] || !seen["sim:nvfi-mesh"] {
		t.Errorf("stage summaries %v missing pipeline stages", last.Stages)
	}

	// The streamed result must be the same document a plain request gets.
	plain := postDesign(t, ts.URL, Request{App: "mm"})
	var plainResult Result
	if err := json.Unmarshal([]byte(body(t, plain)), &plainResult); err != nil {
		t.Fatal(err)
	}
	streamedJSON, _ := json.Marshal(last.Result)
	plainJSON, _ := json.Marshal(&plainResult)
	if string(streamedJSON) != string(plainJSON) {
		t.Errorf("streamed result differs from the plain document:\nstream: %s\nplain:  %s", streamedJSON, plainJSON)
	}
}

// TestNDJSONStreamMemo: a streamed repeat of a memoized config emits
// accepted, a result-hit dedup event and the result — no phases.
func TestNDJSONStreamMemo(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	warm := postDesign(t, ts.URL, Request{App: "mm"})
	body(t, warm)

	_, events := collectNDJSON(t, ts.URL, Request{App: "mm", Stream: StreamNDJSON})
	if len(events) != 3 {
		t.Fatalf("memo stream held %d events %v, want accepted/dedup/result", len(events), eventNames(events))
	}
	if events[1].Event != EventDedup || events[1].Outcome != "result-hit" {
		t.Errorf("memo dedup event = %+v, want outcome result-hit", events[1])
	}
	if events[2].Event != EventResult || events[2].Outcome != "memo" || events[2].Result == nil {
		t.Errorf("memo terminal event = %+v, want a memo-classified result", events[2])
	}
}

func eventNames(events []Event) []string {
	names := make([]string, len(events))
	for i, ev := range events {
		names[i] = ev.Event
	}
	return names
}

func TestSSEStream(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp := postDesign(t, ts.URL, Request{App: "mm", Stream: StreamSSE})
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("Content-Type = %q, want text/event-stream", ct)
	}
	var events []Event
	var names []string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			names = append(names, strings.TrimPrefix(line, "event: "))
		case strings.HasPrefix(line, "data: "):
			var ev Event
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
				t.Fatalf("SSE data frame is not an Event: %v\nline: %s", err, line)
			}
			events = append(events, ev)
		case line == "":
		default:
			t.Errorf("unexpected SSE line %q", line)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 || len(events) != len(names) {
		t.Fatalf("SSE framing mismatch: %d event lines, %d data frames", len(names), len(events))
	}
	for i, ev := range events {
		if names[i] != ev.Event {
			t.Errorf("frame %d: event line %q disagrees with payload %q", i, names[i], ev.Event)
		}
	}
	if events[0].Event != EventAccepted {
		t.Errorf("first SSE event = %q, want accepted", events[0].Event)
	}
	if last := events[len(events)-1]; last.Event != EventResult || last.Result == nil {
		t.Errorf("terminal SSE event = %+v, want a result", last)
	}
}

// TestGovernedStream: a governed request streams its policy on the
// accepted event, every governor decision as a decision event in phase
// order, a sim:governor phase, and a governor section on the result — with
// the cap guarantee visible in the numbers.
func TestGovernedStream(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, events := collectNDJSON(t, ts.URL, Request{App: "mm", Stream: StreamNDJSON, Policy: "cap"})
	_ = resp

	first := events[0]
	if first.Event != EventAccepted || first.Policy != "cap" || first.CapW != expt.DefaultGovernorCapW {
		t.Errorf("accepted event = %+v, want policy cap with the default cap", first)
	}

	var decisions []Event
	var governorPhaseDone bool
	var result *Result
	for _, ev := range events {
		switch ev.Event {
		case EventDecision:
			decisions = append(decisions, ev)
		case EventPhase:
			if ev.Phase == "sim:governor" && ev.State == "done" {
				governorPhaseDone = true
			}
		case EventResult:
			result = ev.Result
		}
	}
	if len(decisions) == 0 {
		t.Fatal("governed stream carried no decision events")
	}
	for i, ev := range decisions {
		if ev.Decision == nil {
			t.Fatalf("decision event %d has no decision record", i)
		}
		if ev.Decision.Phase != i {
			t.Errorf("decision event %d is for phase %d, want phase order", i, ev.Decision.Phase)
		}
		if ev.Decision.PredPowerW > expt.DefaultGovernorCapW {
			t.Errorf("decision %d admitted %.2f W over the %.0f W cap", i, ev.Decision.PredPowerW, expt.DefaultGovernorCapW)
		}
	}
	if !governorPhaseDone {
		t.Error("stream missing the sim:governor phase events")
	}
	if result == nil || result.Governor == nil {
		t.Fatal("result event missing the governor section")
	}
	g := result.Governor
	if g.Policy != "cap" || g.CapW != expt.DefaultGovernorCapW {
		t.Errorf("governor section = %+v, want policy cap at the default cap", g)
	}
	if g.Decisions != len(decisions) {
		t.Errorf("governor section counts %d decisions, stream carried %d", g.Decisions, len(decisions))
	}
	if g.CapViolations != 0 {
		t.Errorf("%d cap violations", g.CapViolations)
	}
	if g.MaxPowerW > g.WorstCasePowerW || g.WorstCasePowerW > g.CapW {
		t.Errorf("cap guarantee broken: measured %.2f, worst case %.2f, cap %.2f", g.MaxPowerW, g.WorstCasePowerW, g.CapW)
	}
}

// TestGovernedKeySeparation: governed and ungoverned runs of one design
// must never collide in the result memo, and repeated governed requests
// must.
func TestGovernedKeySeparation(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	static := postDesign(t, ts.URL, Request{App: "mm"})
	staticBody := body(t, static)

	governed := postDesign(t, ts.URL, Request{App: "mm", Policy: "util"})
	if got := governed.Header.Get("X-Wivfi-Cache"); got == "memo" {
		t.Error("governed request answered from the ungoverned memo")
	}
	governedBody := body(t, governed)
	if governedBody == staticBody {
		t.Error("governed and ungoverned results are identical documents")
	}
	var doc Result
	if err := json.Unmarshal([]byte(governedBody), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Governor == nil || doc.Governor.Policy != "util" {
		t.Errorf("governed document missing its governor section: %+v", doc.Governor)
	}
	if doc.Key == "" || strings.Contains(staticBody, doc.Key) {
		t.Errorf("governed key %q not distinct from the ungoverned document", doc.Key)
	}

	repeat := postDesign(t, ts.URL, Request{App: "mm", Policy: "util"})
	if got := repeat.Header.Get("X-Wivfi-Cache"); got != "memo" {
		t.Errorf("repeated governed request X-Wivfi-Cache = %q, want memo", got)
	}
	if repeatBody := body(t, repeat); repeatBody != governedBody {
		t.Error("memoized governed response not byte-identical")
	}

	capped := postDesign(t, ts.URL, Request{App: "mm", Policy: "cap"})
	if got := capped.Header.Get("X-Wivfi-Cache"); got == "memo" {
		t.Error("cap-policy request answered from the util-policy memo")
	}
	body(t, capped)
}
