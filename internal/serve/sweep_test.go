package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"wivfi/internal/sweep"
)

// postSweep submits one sweep spec to the streaming endpoint.
func postSweep(t *testing.T, baseURL, query string, spec sweep.Spec) *http.Response {
	t.Helper()
	blob, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(baseURL+"/v1/sweep"+query, "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestSweepEndpointStreamsScenariosAndAtlas(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	spec := sweep.Spec{
		Name:   "svc-test",
		Meshes: []string{"4x4"},
		Apps:   []string{"mm", "hist"},
	}
	resp := postSweep(t, ts.URL, "?stream=ndjson", spec)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body(t, resp))
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}
	var events []Event
	for _, line := range strings.Split(strings.TrimSpace(body(t, resp)), "\n") {
		var ev Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", line, err)
		}
		events = append(events, ev)
	}
	if events[0].Event != EventAccepted || events[0].Total != 2 {
		t.Fatalf("first event %+v", events[0])
	}
	var scenarios, results int
	var last Event
	for _, ev := range events {
		switch ev.Event {
		case EventSweepScenario:
			scenarios++
			if ev.SweepRecord == nil || ev.SweepRecord.Error != "" {
				t.Errorf("scenario event without clean record: %+v", ev)
			}
		case EventSweepResult:
			results++
			last = ev
		}
	}
	if scenarios != 2 || results != 1 {
		t.Fatalf("got %d scenario events, %d result events", scenarios, results)
	}
	if last.Atlas == nil || last.Atlas.Scenarios != 2 || last.Atlas.Errors != 0 {
		t.Fatalf("terminal atlas: %+v", last.Atlas)
	}
	if last.Done != 2 || last.Total != 2 {
		t.Fatalf("terminal progress %d/%d", last.Done, last.Total)
	}
}

func TestSweepEndpointSSEFraming(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	spec := sweep.Spec{Meshes: []string{"4x4"}, Apps: []string{"mm"}}
	resp := postSweep(t, ts.URL, "", spec)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body(t, resp))
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("Content-Type = %q", ct)
	}
	raw := body(t, resp)
	if !strings.Contains(raw, "event: "+EventSweepResult+"\ndata: ") {
		t.Fatalf("SSE stream missing terminal frame:\n%s", raw)
	}
}

func TestSweepEndpointRejectsOversizedGrid(t *testing.T) {
	_, ts := newTestServer(t, Options{MaxSweepScenarios: 1})
	spec := sweep.Spec{Meshes: []string{"4x4"}, Apps: []string{"mm", "hist"}}
	resp := postSweep(t, ts.URL, "", spec)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400: %s", resp.StatusCode, body(t, resp))
	}
	if got := body(t, resp); !strings.Contains(got, "scenario bound") {
		t.Fatalf("error body %q", got)
	}
	// bad specs and bad methods are rejected up front too
	resp = postSweep(t, ts.URL, "", sweep.Spec{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty spec status = %d", resp.StatusCode)
	}
	body(t, resp)
	getResp, err := http.Get(ts.URL + "/v1/sweep")
	if err != nil {
		t.Fatal(err)
	}
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET status = %d", getResp.StatusCode)
	}
	body(t, getResp)
}
