package serve

import (
	"fmt"
	"net/url"
	"strconv"

	"wivfi/internal/apps"
	"wivfi/internal/expt"
	"wivfi/internal/governor"
	"wivfi/internal/sim"
)

// Streaming modes of a design request.
const (
	// StreamNone: one JSON result document when the design completes.
	StreamNone = ""
	// StreamNDJSON: newline-delimited JSON progress events, result last.
	StreamNDJSON = "ndjson"
	// StreamSSE: the same events as Server-Sent Events data frames.
	StreamSSE = "sse"
)

// Request is one "design-my-chip" submission: which benchmark to design
// for, plus optional design-flow knobs (nil means the paper's default).
// Requests with equal knobs share one cache key, so they deduplicate onto
// one execution and one stored result.
type Request struct {
	// App is the benchmark name (required; see /v1/apps).
	App string `json:"app"`
	// NumIslands overrides the VFI count m (paper: 4). Must divide the
	// core count evenly.
	NumIslands *int `json:"num_islands,omitempty"`
	// FreqMargin overrides the utilization headroom added before
	// quantizing island frequencies (paper: 0.35), in [0, 0.9].
	FreqMargin *float64 `json:"freq_margin,omitempty"`
	// BottleneckRatio overrides the bottleneck-detection threshold
	// (paper: 1.25), in [1, 4].
	BottleneckRatio *float64 `json:"bottleneck_ratio,omitempty"`
	// Stream selects the response shape: "" (single JSON document),
	// "ndjson" or "sse" (live progress events).
	Stream string `json:"stream,omitempty"`
	// Policy additionally runs the designed VFI 2 mesh under a closed-loop
	// DVFS governor ("static", "util" or "cap"; "" disables). Governed
	// requests carry the policy in their dedup/memo key, so a governed and
	// an ungoverned run of the same design never collide.
	Policy string `json:"policy,omitempty"`
	// CapWatts overrides the chip-level core-power cap of policy "cap"
	// (default expt.DefaultGovernorCapW), in [20, 500].
	CapWatts *float64 `json:"cap_watts,omitempty"`
}

// parseQuery builds a Request from URL query parameters (the curl-friendly
// GET form of /v1/design).
func parseQuery(q url.Values) (Request, error) {
	r := Request{App: q.Get("app"), Stream: q.Get("stream"), Policy: q.Get("policy")}
	if v := q.Get("num_islands"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			return r, fmt.Errorf("num_islands: %w", err)
		}
		r.NumIslands = &n
	}
	for _, f := range []struct {
		name string
		dst  **float64
	}{{"freq_margin", &r.FreqMargin}, {"bottleneck_ratio", &r.BottleneckRatio}, {"cap_watts", &r.CapWatts}} {
		if v := q.Get(f.name); v != "" {
			x, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return r, fmt.Errorf("%s: %w", f.name, err)
			}
			*f.dst = &x
		}
	}
	return r, nil
}

// Config validates the request against base (the server's platform
// configuration) and returns the experiment Config it denotes. The
// returned config — not the request struct — is what gets hashed into the
// dedup/cache key, so two spellings of the same design are one key.
func (r Request) Config(base expt.Config) (expt.Config, error) {
	if r.App == "" {
		return expt.Config{}, fmt.Errorf("app is required (one of %v)", apps.Names())
	}
	if _, err := apps.ByName(r.App); err != nil {
		return expt.Config{}, fmt.Errorf("unknown app %q (one of %v)", r.App, apps.Names())
	}
	switch r.Stream {
	case StreamNone, StreamNDJSON, StreamSSE:
	default:
		return expt.Config{}, fmt.Errorf("stream must be %q, %q or %q", StreamNone, StreamNDJSON, StreamSSE)
	}
	cfg := base
	cores := cfg.Build.Chip.NumCores()
	if r.NumIslands != nil {
		m := *r.NumIslands
		if m < 1 || m > cores || cores%m != 0 {
			return expt.Config{}, fmt.Errorf("num_islands %d must divide the %d-core platform", m, cores)
		}
		cfg.VFI.NumIslands = m
	}
	if r.FreqMargin != nil {
		fm := *r.FreqMargin
		if fm < 0 || fm > 0.9 {
			return expt.Config{}, fmt.Errorf("freq_margin %v out of range [0, 0.9]", fm)
		}
		cfg.VFI.FreqMargin = fm
	}
	if r.BottleneckRatio != nil {
		br := *r.BottleneckRatio
		if br < 1 || br > 4 {
			return expt.Config{}, fmt.Errorf("bottleneck_ratio %v out of range [1, 4]", br)
		}
		cfg.VFI.BottleneckRatio = br
	}
	if r.Policy != "" {
		pol, err := governor.ParsePolicy(r.Policy)
		if err != nil {
			return expt.Config{}, err
		}
		if r.CapWatts != nil {
			if pol != governor.Cap {
				return expt.Config{}, fmt.Errorf("cap_watts requires policy %q, got %q", governor.Cap, pol)
			}
			if cw := *r.CapWatts; cw < 20 || cw > 500 {
				return expt.Config{}, fmt.Errorf("cap_watts %v out of range [20, 500]", cw)
			}
		}
	} else if r.CapWatts != nil {
		return expt.Config{}, fmt.Errorf("cap_watts requires policy %q", governor.Cap)
	}
	return cfg, nil
}

// governorSpec resolves the request's governor dimension after Config has
// validated it: the parsed policy, the effective cap and whether a
// governed run was requested at all.
func (r Request) governorSpec() (pol governor.Policy, capW float64, governed bool) {
	if r.Policy == "" {
		return governor.Static, 0, false
	}
	pol, _ = governor.ParsePolicy(r.Policy)
	if pol == governor.Cap {
		capW = expt.DefaultGovernorCapW
		if r.CapWatts != nil {
			capW = *r.CapWatts
		}
	}
	return pol, capW, true
}

// keyExtras spells the governor dimension into the dedup/memo key salt;
// empty for ungoverned requests, which therefore keep their historical
// keys.
func (r Request) keyExtras() []string {
	pol, capW, governed := r.governorSpec()
	if !governed {
		return nil
	}
	extras := []string{"policy=" + pol.String()}
	if pol == governor.Cap {
		extras = append(extras, fmt.Sprintf("cap=%g", capW))
	}
	return extras
}

// SystemResult is one simulated system's share of a design result:
// absolute energy/delay plus the paper's normalized ratios against the
// NVFI mesh baseline.
type SystemResult struct {
	ExecSeconds float64 `json:"exec_seconds"`
	TotalJ      float64 `json:"total_j"`
	EDP         float64 `json:"edp"`
	ExecRatio   float64 `json:"exec_ratio"`
	EnergyRatio float64 `json:"energy_ratio"`
	EDPRatio    float64 `json:"edp_ratio"`
}

// Result is the deterministic payload of one design request. It is a pure
// function of the request's Config, so deduplicated and cached requests
// return byte-identical documents; per-request identity (request id, cache
// classification, timings) travels in headers and stream events instead.
type Result struct {
	Schema int `json:"schema"`
	// App and Key identify what was designed: Key is the content hash of
	// (config, app) — the same key that scopes the design cache entry.
	App string `json:"app"`
	Key string `json:"key"`
	// NumIslands echoes the effective VFI count.
	NumIslands int `json:"num_islands"`
	// VFI2FreqGHz is the per-island frequency assignment of the final
	// (post-reassignment) design, Table 2's headline artifact.
	VFI2FreqGHz []float64 `json:"vfi2_freq_ghz"`
	// The five simulated systems of the pipeline.
	Baseline         SystemResult `json:"baseline"`
	VFI1Mesh         SystemResult `json:"vfi1_mesh"`
	VFI2Mesh         SystemResult `json:"vfi2_mesh"`
	WiNoCMinHop      SystemResult `json:"winoc_min_hop"`
	WiNoCMaxWireless SystemResult `json:"winoc_max_wireless"`
	// BestStrategy is the WiNoC placement with the lower full-system EDP,
	// and BestEDPRatio its normalized EDP — the number the paper's Fig. 8
	// reports per application.
	BestStrategy string  `json:"best_strategy"`
	BestEDPRatio float64 `json:"best_edp_ratio"`
	// Governor carries the closed-loop run of governed requests (a policy
	// was set); absent otherwise, leaving ungoverned documents unchanged.
	Governor *GovernorResult `json:"governor,omitempty"`
}

// GovernorResult is the governed run's share of a design result: the run
// itself in the same normalized shape as the static systems, plus the
// governor's decision statistics and power envelope.
type GovernorResult struct {
	Policy string `json:"policy"`
	// CapW is the effective core-power cap (policy "cap" only).
	CapW float64 `json:"cap_w,omitempty"`
	// Governed is the VFI 2 mesh run under the governor, normalized
	// against the same NVFI mesh baseline as every other system.
	Governed SystemResult `json:"governed"`
	// Decision statistics of the run (see governor.Summary).
	Decisions     int `json:"decisions"`
	Transitions   int `json:"transitions"`
	Sheds         int `json:"sheds,omitempty"`
	CapViolations int `json:"cap_violations,omitempty"`
	// MaxPowerW is the maximum measured per-phase core power;
	// WorstCasePowerW the worst-case bound of any admitted configuration.
	MaxPowerW       float64 `json:"max_power_w"`
	WorstCasePowerW float64 `json:"worst_case_power_w"`
}

// ResultSchemaVersion is stamped into every Result; bump it when the
// document's meaning changes.
const ResultSchemaVersion = 1

// buildResult condenses a finished pipeline into the response document;
// gov is the governed run's section for governed requests, nil otherwise.
func buildResult(key string, cfg expt.Config, pl *expt.Pipeline, gov *GovernorResult) *Result {
	sys := func(r *sim.RunResult) SystemResult {
		exec, energy, edp := r.Report.Relative(pl.Baseline.Report)
		return SystemResult{
			ExecSeconds: r.Report.ExecSeconds,
			TotalJ:      r.Report.TotalJ(),
			EDP:         r.Report.EDP(),
			ExecRatio:   exec, EnergyRatio: energy, EDPRatio: edp,
		}
	}
	freqs := make([]float64, len(pl.Plan.VFI2.Points))
	for i, p := range pl.Plan.VFI2.Points {
		freqs[i] = p.FreqGHz
	}
	best := pl.BestWiNoC()
	_, _, bestEDP := best.Report.Relative(pl.Baseline.Report)
	return &Result{
		Schema:           ResultSchemaVersion,
		App:              pl.App.Name,
		Key:              key,
		NumIslands:       cfg.VFI.NumIslands,
		VFI2FreqGHz:      freqs,
		Baseline:         sys(pl.Baseline),
		VFI1Mesh:         sys(pl.VFI1Mesh),
		VFI2Mesh:         sys(pl.VFI2Mesh),
		WiNoCMinHop:      sys(pl.WiNoC[sim.MinHop]),
		WiNoCMaxWireless: sys(pl.WiNoC[sim.MaxWireless]),
		BestStrategy:     pl.BestStrategy.String(),
		BestEDPRatio:     bestEDP,
		Governor:         gov,
	}
}
