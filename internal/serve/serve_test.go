package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"wivfi/internal/apps"
	"wivfi/internal/expt"
)

// newTestServer starts a wivfid handler on an httptest listener. Tests use
// the cheap "mm" benchmark so a cold pipeline build stays sub-second.
func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s := NewServer(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// postDesign submits one design request and returns the response.
func postDesign(t *testing.T, baseURL string, req Request) *http.Response {
	t.Helper()
	blob, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(baseURL+"/v1/design", "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// body reads and closes a response body.
func body(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(blob)
}

func TestDesignResultMatchesDirectPipeline(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	resp := postDesign(t, ts.URL, Request{App: "mm"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200: %s", resp.StatusCode, body(t, resp))
	}
	if got := resp.Header.Get("X-Wivfi-Cache"); got != "miss" {
		t.Errorf("X-Wivfi-Cache = %q on a cold server, want %q", got, "miss")
	}
	if resp.Header.Get("X-Request-ID") == "" {
		t.Error("response missing X-Request-ID")
	}
	var got Result
	raw := body(t, resp)
	if err := json.Unmarshal([]byte(raw), &got); err != nil {
		t.Fatalf("response not a Result document: %v", err)
	}

	app, err := apps.ByName("mm")
	if err != nil {
		t.Fatal(err)
	}
	pl, err := expt.BuildPipeline(s.Base(), app)
	if err != nil {
		t.Fatal(err)
	}
	want := buildResult(expt.RequestKey(s.Base(), "mm"), s.Base(), pl, nil)
	wantRaw, err := json.MarshalIndent(want, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if raw != string(wantRaw)+"\n" {
		t.Errorf("served result differs from a direct pipeline build:\nserved: %s\ndirect: %s", raw, wantRaw)
	}
	if got.BestStrategy != "min-hop" && got.BestStrategy != "max-wireless" {
		t.Errorf("best_strategy = %q, want a placement strategy name", got.BestStrategy)
	}
	if got.BestEDPRatio <= 0 || got.BestEDPRatio >= 1 {
		t.Errorf("best_edp_ratio = %v, want in (0, 1): the WiNoC should beat the baseline", got.BestEDPRatio)
	}
}

func TestDesignValidation(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	cases := []struct {
		name string
		do   func() *http.Response
		want int
	}{
		{"unknown app", func() *http.Response {
			return postDesign(t, ts.URL, Request{App: "nope"})
		}, http.StatusBadRequest},
		{"missing app", func() *http.Response {
			return postDesign(t, ts.URL, Request{})
		}, http.StatusBadRequest},
		{"bad num_islands", func() *http.Response {
			n := 7
			return postDesign(t, ts.URL, Request{App: "mm", NumIslands: &n})
		}, http.StatusBadRequest},
		{"bad freq_margin", func() *http.Response {
			m := 2.5
			return postDesign(t, ts.URL, Request{App: "mm", FreqMargin: &m})
		}, http.StatusBadRequest},
		{"bad stream mode", func() *http.Response {
			return postDesign(t, ts.URL, Request{App: "mm", Stream: "carrier-pigeon"})
		}, http.StatusBadRequest},
		{"unknown policy", func() *http.Response {
			return postDesign(t, ts.URL, Request{App: "mm", Policy: "turbo"})
		}, http.StatusBadRequest},
		{"cap_watts without cap policy", func() *http.Response {
			cw := 100.0
			return postDesign(t, ts.URL, Request{App: "mm", Policy: "util", CapWatts: &cw})
		}, http.StatusBadRequest},
		{"cap_watts without policy", func() *http.Response {
			cw := 100.0
			return postDesign(t, ts.URL, Request{App: "mm", CapWatts: &cw})
		}, http.StatusBadRequest},
		{"cap_watts out of range", func() *http.Response {
			cw := 5.0
			return postDesign(t, ts.URL, Request{App: "mm", Policy: "cap", CapWatts: &cw})
		}, http.StatusBadRequest},
		{"unknown body field", func() *http.Response {
			resp, err := http.Post(ts.URL+"/v1/design", "application/json",
				strings.NewReader(`{"app":"mm","frequency_margin":0.3}`))
			if err != nil {
				t.Fatal(err)
			}
			return resp
		}, http.StatusBadRequest},
		{"bad query number", func() *http.Response {
			resp, err := http.Get(ts.URL + "/v1/design?app=mm&num_islands=four")
			if err != nil {
				t.Fatal(err)
			}
			return resp
		}, http.StatusBadRequest},
		{"method not allowed", func() *http.Response {
			req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/design", nil)
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			return resp
		}, http.StatusMethodNotAllowed},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := tc.do()
			raw := body(t, resp)
			if resp.StatusCode != tc.want {
				t.Fatalf("status = %d, want %d: %s", resp.StatusCode, tc.want, raw)
			}
			var doc struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal([]byte(raw), &doc); err != nil || doc.Error == "" {
				t.Errorf("error response is not the uniform error document: %q", raw)
			}
		})
	}
}

// TestResultStoreMemo: a repeated config is answered from the in-memory
// result store — byte-identical body, classified "memo" in the header.
func TestResultStoreMemo(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	hitsBefore := resultHitCounter.Value()

	first := postDesign(t, ts.URL, Request{App: "mm"})
	firstBody := body(t, first)
	second := postDesign(t, ts.URL, Request{App: "mm"})
	if got := second.Header.Get("X-Wivfi-Cache"); got != "memo" {
		t.Errorf("repeat request X-Wivfi-Cache = %q, want %q", got, "memo")
	}
	if secondBody := body(t, second); secondBody != firstBody {
		t.Error("memoized response is not byte-identical to the original")
	}
	if d := resultHitCounter.Value() - hitsBefore; d != 1 {
		t.Errorf("result-hit counter moved by %d, want 1", d)
	}
	if first.Header.Get("X-Request-ID") == second.Header.Get("X-Request-ID") {
		t.Error("distinct requests share an X-Request-ID")
	}
}

// TestSingleflightDedupByteIdentical is the dedup contract: N concurrent
// identical requests execute the pipeline once and every caller receives
// the shared result, byte-identical to a solo run on a fresh server.
func TestSingleflightDedupByteIdentical(t *testing.T) {
	const n = 8
	s, ts := newTestServer(t, Options{MaxInFlight: n + 1})
	reqBefore := reqCounter.Value()
	sharedBefore := dedupSharedCounter.Value()
	memoBefore := resultHitCounter.Value()

	var execs []string
	var execMu sync.Mutex
	gate := make(chan struct{})
	s.execHook = func(key string) {
		execMu.Lock()
		execs = append(execs, key)
		execMu.Unlock()
		<-gate
	}

	bodies := make([]string, n)
	caches := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp := postDesign(t, ts.URL, Request{App: "mm"})
			caches[i] = resp.Header.Get("X-Wivfi-Cache")
			bodies[i] = body(t, resp)
		}(i)
	}
	// Hold the leader until every request has been admitted, so the other
	// n-1 either attach to the running flight or hit the result store.
	deadline := time.Now().Add(10 * time.Second)
	for reqCounter.Value()-reqBefore < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d requests admitted before deadline", reqCounter.Value()-reqBefore, n)
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()

	if len(execs) != 1 {
		t.Fatalf("pipeline executed %d times for %d identical requests, want exactly 1 (keys: %v)", len(execs), n, execs)
	}
	for i := 1; i < n; i++ {
		if bodies[i] != bodies[0] {
			t.Fatalf("request %d body differs from request 0", i)
		}
	}
	var leaders, followers int
	for _, c := range caches {
		switch c {
		case "miss":
			leaders++
		case "shared", "memo":
			followers++
		default:
			t.Errorf("unexpected X-Wivfi-Cache %q", c)
		}
	}
	if leaders != 1 || followers != n-1 {
		t.Errorf("cache classifications = %v, want 1 miss + %d shared/memo", caches, n-1)
	}
	if d := (dedupSharedCounter.Value() - sharedBefore) + (resultHitCounter.Value() - memoBefore); d != n-1 {
		t.Errorf("shared+memo counters moved by %d, want %d", d, n-1)
	}

	// Byte-identity against a solo run on a completely fresh server.
	_, solo := newTestServer(t, Options{})
	resp := postDesign(t, solo.URL, Request{App: "mm"})
	if soloBody := body(t, resp); soloBody != bodies[0] {
		t.Errorf("deduplicated result differs from a solo run:\ndedup: %s\nsolo:  %s", bodies[0], soloBody)
	}
}

// TestFailedFlightIsRetried: a failed execution must not poison the result
// store — the next request for the same key re-executes.
func TestFailedFlightIsRetried(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	var mu sync.Mutex
	calls := 0
	s.execHook = func(key string) {
		mu.Lock()
		c := calls
		calls++
		mu.Unlock()
		if c == 0 {
			// Abort the first leader mid-flight; the flight must still be
			// sealed and evicted, not leaked into the result store.
			panic(http.ErrAbortHandler)
		}
	}
	resp, err := http.Post(ts.URL+"/v1/design", "application/json", strings.NewReader(`{"app":"mm"}`))
	if err == nil {
		body(t, resp)
	}
	resp2 := postDesign(t, ts.URL, Request{App: "mm"})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("retry after aborted flight: status %d: %s", resp2.StatusCode, body(t, resp2))
	}
	if got := resp2.Header.Get("X-Wivfi-Cache"); got != "miss" {
		t.Errorf("retry X-Wivfi-Cache = %q, want a fresh miss (no memo from the aborted flight)", got)
	}
	body(t, resp2)
	mu.Lock()
	defer mu.Unlock()
	if calls != 2 {
		t.Errorf("execHook fired %d times, want 2 (the retry re-executes)", calls)
	}
}

// TestAdmissionControl: requests beyond MaxInFlight shed with 503 and a
// Retry-After hint, and are counted as rejects.
func TestAdmissionControl(t *testing.T) {
	s, ts := newTestServer(t, Options{MaxInFlight: 1})
	rejectsBefore := rejectCounter.Value()

	entered := make(chan struct{})
	gate := make(chan struct{})
	s.execHook = func(string) {
		close(entered)
		<-gate
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp := postDesign(t, ts.URL, Request{App: "mm"})
		body(t, resp)
	}()
	<-entered

	resp := postDesign(t, ts.URL, Request{App: "wc"})
	raw := body(t, resp)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-capacity status = %d, want 503: %s", resp.StatusCode, raw)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 response missing Retry-After")
	}
	if d := rejectCounter.Value() - rejectsBefore; d != 1 {
		t.Errorf("reject counter moved by %d, want 1", d)
	}
	close(gate)
	wg.Wait()
}

// TestDrain: a draining server rejects new work, waits for in-flight
// requests, and reports its state on /healthz.
func TestDrain(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	resp := postDesign(t, ts.URL, Request{App: "mm"})
	body(t, resp)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("Drain on an idle server: %v", err)
	}
	resp = postDesign(t, ts.URL, Request{App: "mm"})
	if raw := body(t, resp); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain status = %d, want 503: %s", resp.StatusCode, raw)
	}
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status   string `json:"status"`
		Draining bool   `json:"draining"`
	}
	if err := json.Unmarshal([]byte(body(t, hresp)), &health); err != nil {
		t.Fatal(err)
	}
	if !health.Draining || health.Status != "draining" {
		t.Errorf("healthz after drain = %+v, want draining", health)
	}
}

// TestDrainWaitsForInFlight: Drain blocks until the outstanding request
// completes.
func TestDrainWaitsForInFlight(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	entered := make(chan struct{})
	gate := make(chan struct{})
	s.execHook = func(string) {
		close(entered)
		<-gate
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp := postDesign(t, ts.URL, Request{App: "mm"})
		body(t, resp)
	}()
	<-entered

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); err == nil {
		t.Error("Drain returned while a request was still in flight")
	}
	close(gate)
	wg.Wait()
	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := s.Drain(ctx2); err != nil {
		t.Errorf("Drain after the request finished: %v", err)
	}
}

// TestDesignCacheClassification: with a shared on-disk cache directory, a
// fresh server's first request reloads the design (design-hit) instead of
// recomputing it.
func TestDesignCacheClassification(t *testing.T) {
	dir := t.TempDir()
	_, cold := newTestServer(t, Options{CacheDir: dir})
	resp := postDesign(t, cold.URL, Request{App: "mm"})
	if got := resp.Header.Get("X-Wivfi-Cache"); got != "miss" {
		t.Errorf("cold X-Wivfi-Cache = %q, want miss", got)
	}
	coldBody := body(t, resp)

	_, warm := newTestServer(t, Options{CacheDir: dir})
	resp = postDesign(t, warm.URL, Request{App: "mm"})
	if got := resp.Header.Get("X-Wivfi-Cache"); got != "design" {
		t.Errorf("warm X-Wivfi-Cache = %q, want design", got)
	}
	if warmBody := body(t, resp); warmBody != coldBody {
		t.Error("design-cache reload produced a different result document")
	}
}

func TestHealthzAndApps(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if raw := body(t, resp); resp.StatusCode != http.StatusOK || !strings.Contains(raw, `"ok"`) {
		t.Errorf("healthz = %d %q", resp.StatusCode, raw)
	}
	resp, err = http.Get(ts.URL + "/v1/apps")
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Apps []string `json:"apps"`
	}
	if err := json.Unmarshal([]byte(body(t, resp)), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Apps) < 6 {
		t.Errorf("apps list = %v, want the 6 paper benchmarks", doc.Apps)
	}
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if raw := body(t, resp); !strings.Contains(raw, "wivfi_serve_requests") {
		t.Error("/metrics missing the serve.requests counter family")
	}
}

// TestLatencyHistogramOnMetrics: request latency appears on /metrics in
// Prometheus histogram form with the service's declared name.
func TestLatencyHistogramOnMetrics(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	countBefore := requestLatency.Count()
	resp := postDesign(t, ts.URL, Request{App: "mm"})
	body(t, resp)
	if d := requestLatency.Count() - countBefore; d != 1 {
		t.Fatalf("latency histogram grew by %d observations, want 1", d)
	}
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw := body(t, mresp)
	for _, want := range []string{
		"# TYPE wivfi_serve_request_latency_ms histogram",
		`wivfi_serve_request_latency_ms_bucket{le="+Inf"}`,
		"wivfi_serve_request_latency_ms_count",
	} {
		if !strings.Contains(raw, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
