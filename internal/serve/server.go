// Package serve is the experiment-serving daemon behind cmd/wivfid: an
// HTTP/JSON front end that turns "design my chip for this benchmark"
// requests into runs of the expt design pipeline, with admission control,
// per-config deduplication and an in-memory result store layered over the
// on-disk design cache.
//
// The observability plane is the headline: every request is tagged with a
// deterministic id, its progress streams live as NDJSON or SSE events
// derived from the same stage names the trace artifacts use, and the
// service exports counters, an in-flight gauge and a log-bucketed request
// latency histogram on the obs debug mux (/metrics, Prometheus text
// format) alongside pprof and expvar.
//
// Result documents are pure functions of the request configuration:
// deduplicated, memoized and cold executions of one config all return
// byte-identical bodies. Per-request identity (id, cache classification,
// timings) travels in headers and stream events, never in the body.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"wivfi/internal/apps"
	"wivfi/internal/expt"
	"wivfi/internal/governor"
	"wivfi/internal/obs"
	"wivfi/internal/sim"
)

// Options configures a Server. The zero value is ready to use: paper
// platform config, GOMAXPROCS parallelism, a 64-request admission bound
// and no on-disk design cache.
type Options struct {
	// MaxInFlight bounds concurrently admitted requests; excess requests
	// are rejected with 503 + Retry-After rather than queued, so load
	// sheds at the edge instead of stacking goroutines.
	MaxInFlight int
	// Parallelism sizes the shared simulation pool all leader executions
	// fan their system simulations over.
	Parallelism int
	// CacheDir roots the on-disk design cache ("" disables): leaders with
	// a warm entry skip the probe simulation and the clustering anneal.
	CacheDir string
	// Base is the platform configuration requests override; the zero
	// value means the paper's DefaultConfig.
	Base expt.Config
	// MaxSweepScenarios bounds how many scenarios one /v1/sweep request
	// may expand to (default DefaultMaxSweepScenarios); larger studies
	// belong on the wivfisweep CLI with a journal.
	MaxSweepScenarios int
}

// Server handles design requests. Create with NewServer; safe for
// concurrent use.
type Server struct {
	maxInFlight       int
	maxSweepScenarios int
	parallelism       int
	cacheDir          string
	base              expt.Config
	pool              *sim.Pool

	mu          sync.Mutex
	inflight    int
	draining    bool
	idleWaiters []chan struct{}
	flights     map[string]*flight

	reqSeq atomic.Int64

	// execHook, when non-nil, fires once per leader execution (test seam
	// for the singleflight tests; never set outside tests).
	execHook func(key string)
}

// NewServer builds a server from opts.
func NewServer(opts Options) *Server {
	if opts.MaxInFlight <= 0 {
		opts.MaxInFlight = 64
	}
	if opts.Parallelism <= 0 {
		opts.Parallelism = runtime.GOMAXPROCS(0)
	}
	if opts.Base.Build.Chip.NumCores() == 0 {
		opts.Base = expt.DefaultConfig()
	}
	if opts.MaxSweepScenarios <= 0 {
		opts.MaxSweepScenarios = DefaultMaxSweepScenarios
	}
	return &Server{
		maxInFlight:       opts.MaxInFlight,
		maxSweepScenarios: opts.MaxSweepScenarios,
		parallelism:       opts.Parallelism,
		cacheDir:          opts.CacheDir,
		base:              opts.Base,
		pool:              sim.NewPool(opts.Parallelism),
		flights:           map[string]*flight{},
	}
}

// Base returns the server's platform configuration.
func (s *Server) Base() expt.Config { return s.base }

// Handler mounts the service routes on the obs debug mux, so /metrics,
// expvar and pprof ride along with the API on one listener.
func (s *Server) Handler() http.Handler {
	mux := obs.DebugMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/v1/apps", s.handleApps)
	mux.HandleFunc("/v1/design", s.handleDesign)
	mux.HandleFunc("/v1/sweep", s.handleSweep)
	return mux
}

// Drain stops admitting new requests and waits for in-flight ones to
// finish (or ctx to expire). Safe to call more than once.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	ch := make(chan struct{})
	if s.inflight == 0 {
		close(ch)
	} else {
		s.idleWaiters = append(s.idleWaiters, ch)
	}
	s.mu.Unlock()
	select {
	case <-ch:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// enter admits one request, or reports false when draining or at the
// MaxInFlight bound.
func (s *Server) enter() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining || s.inflight >= s.maxInFlight {
		return false
	}
	s.inflight++
	inFlightGauge.Add(1)
	return true
}

// leave releases one admission slot and wakes drainers on idle.
func (s *Server) leave() {
	s.mu.Lock()
	s.inflight--
	inFlightGauge.Add(-1)
	if s.inflight == 0 {
		for _, ch := range s.idleWaiters {
			close(ch)
		}
		s.idleWaiters = nil
	}
	s.mu.Unlock()
}

// flight is one execution of one config key, doubling as the singleflight
// slot while running and as the in-memory result store entry afterwards.
// Failed flights are evicted from the server's map before done closes, so
// retries re-execute instead of replaying the error forever.
type flight struct {
	key      string
	leaderID string
	start    time.Time
	stages   *stageTimes
	done     chan struct{}

	mu         sync.Mutex
	subs       []*emitter
	cacheKnown bool
	cacheHit   bool

	// finishOnce makes sealing idempotent, so the panic-recovery path in
	// execute can guarantee eviction without double-closing done.
	finishOnce sync.Once

	// result/raw/err are written once before done closes, read after.
	result *Result
	raw    []byte
	err    error
}

func newFlight(key, leaderID string) *flight {
	return &flight{
		key:      key,
		leaderID: leaderID,
		start:    time.Now(), //lint:wallclock anchors stage timings for stream events and stage summaries, never results
		stages:   newStageTimes(),
		done:     make(chan struct{}),
	}
}

// subscribe attaches a streaming request's emitter to the flight's
// progress fan-out. Events published before subscription are not
// replayed.
func (f *flight) subscribe(em *emitter) {
	f.mu.Lock()
	f.subs = append(f.subs, em)
	f.mu.Unlock()
}

// publish fans one progress event to every subscribed emitter, which
// stamps its own request identity onto it.
func (f *flight) publish(ev Event) {
	f.mu.Lock()
	subs := f.subs
	f.mu.Unlock()
	for _, em := range subs {
		em.emit(ev)
	}
}

// setCache records the design-cache classification of the execution.
func (f *flight) setCache(hit bool) {
	f.mu.Lock()
	f.cacheKnown = true
	f.cacheHit = hit
	f.mu.Unlock()
}

// cacheLabel names the leader's cache outcome for the X-Wivfi-Cache
// header and the result event.
func (f *flight) cacheLabel() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	switch {
	case !f.cacheKnown:
		return "none"
	case f.cacheHit:
		return "design"
	default:
		return "miss"
	}
}

// handleHealthz reports liveness and the admission state.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	doc := struct {
		Status   string `json:"status"`
		InFlight int    `json:"in_flight"`
		Draining bool   `json:"draining"`
	}{"ok", s.inflight, s.draining}
	if s.draining {
		doc.Status = "draining"
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, doc)
}

// handleApps lists the designable benchmarks.
func (s *Server) handleApps(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Apps []string `json:"apps"`
	}{apps.Names()})
}

// handleDesign is the core route: validate, admit, deduplicate, execute
// (or attach, or answer from the result store) and respond — as one JSON
// document or as a live event stream.
func (s *Server) handleDesign(w http.ResponseWriter, r *http.Request) {
	var req Request
	switch r.Method {
	case http.MethodGet:
		var err error
		if req, err = parseQuery(r.URL.Query()); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
	case http.MethodPost:
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("request body: %w", err))
			return
		}
	default:
		w.Header().Set("Allow", "GET, POST")
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
		return
	}
	cfg, err := req.Config(s.base)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	key := expt.RequestKey(cfg, req.App, req.keyExtras()...)
	if key == "" {
		writeError(w, http.StatusInternalServerError, errors.New("request config cannot be keyed"))
		return
	}

	if !s.enter() {
		rejectCounter.Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, errors.New("at capacity or draining, retry later"))
		return
	}
	defer s.leave()
	reqCounter.Add(1)
	id := fmt.Sprintf("r-%06d", s.reqSeq.Add(1))
	w.Header().Set("X-Request-ID", id)
	start := time.Now() //lint:wallclock request latency feeds the /metrics histogram and stream events only
	defer func() {
		requestLatency.Observe(time.Since(start).Milliseconds()) //lint:wallclock service latency telemetry, not part of any result
	}()
	track := int32(0)
	if obs.Enabled() {
		track = obs.TrackFor("serve-" + id)
	}
	sp := obs.StartSpanOn(track, "serve:request", req.App+" "+key)
	defer sp.End()

	var em *emitter
	switch req.Stream {
	case StreamNDJSON:
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.Header().Set("Cache-Control", "no-store")
		em = &emitter{id: id, sink: ndjsonSink{w}}
	case StreamSSE:
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-store")
		em = &emitter{id: id, sink: sseSink{w}}
	}
	pol, capW, governed := req.governorSpec()
	accepted := Event{Event: EventAccepted, App: req.App, Key: key}
	if governed {
		accepted.Policy = pol.String()
		accepted.CapW = capW
	}
	em.emit(accepted)

	s.mu.Lock()
	f, found := s.flights[key]
	if !found {
		f = newFlight(key, id)
		s.flights[key] = f
	}
	s.mu.Unlock()

	if found {
		select {
		case <-f.done:
			// Finished earlier: the flight map doubles as the in-memory
			// result store, so this request costs no pipeline work at all.
			resultHitCounter.Add(1)
			em.emit(Event{Event: EventDedup, Outcome: "result-hit", Leader: f.leaderID})
			s.respond(w, em, f, "memo", start)
			return
		default:
		}
		// In progress: attach to the leader's execution.
		dedupSharedCounter.Add(1)
		em.emit(Event{Event: EventDedup, Outcome: "shared", Leader: f.leaderID})
		if em != nil {
			f.subscribe(em)
		}
		select {
		case <-f.done:
		case <-r.Context().Done():
			return
		}
		s.respond(w, em, f, "shared", start)
		return
	}

	em.emit(Event{Event: EventDedup, Outcome: "leader"})
	if em != nil {
		f.subscribe(em)
	}
	s.execute(f, cfg, req)
	s.respond(w, em, f, f.cacheLabel(), start)
}

// execute runs the design pipeline as the flight's leader, streaming
// stage progress to subscribers and classifying the design-cache outcome.
// Governed requests additionally run the designed mesh under the governor,
// streaming every decision as an event.
func (s *Server) execute(f *flight, cfg expt.Config, req Request) {
	// A panicking build (a bug, an aborted handler) must still seal and
	// evict the flight, or every later request for this key would block
	// forever on done.
	defer func() {
		if r := recover(); r != nil {
			s.finish(f, fmt.Errorf("design pipeline panicked: %v", r))
			panic(r)
		}
	}()
	if s.execHook != nil {
		s.execHook(f.key)
	}
	app, err := apps.ByName(req.App)
	if err != nil {
		s.finish(f, err)
		return
	}
	ob := &expt.BuildObserver{
		Stage: func(stage, state string) {
			f.stages.observe(stage, state, msSince(f.start))
			f.publish(Event{Event: EventPhase, Phase: stage, State: state})
		},
		Cache: func(hit bool) {
			outcome := "miss"
			if hit {
				outcome = "design-hit"
				designHitCounter.Add(1)
			} else {
				cacheMissCounter.Add(1)
			}
			f.setCache(hit)
			f.publish(Event{Event: EventCache, Outcome: outcome})
		},
	}
	pl, err := expt.BuildPipelineObserved(cfg, app, s.pool, s.cacheDir, ob)
	if err != nil {
		s.finish(f, err)
		return
	}
	var gov *GovernorResult
	if pol, capW, governed := req.governorSpec(); governed {
		ob.Stage("sim:governor", "start")
		run, sum, err := expt.GovernedMesh(cfg, pl, pol, capW, nil, func(d governor.Decision) {
			f.publish(Event{Event: EventDecision, Decision: &d})
		})
		if err != nil {
			s.finish(f, err)
			return
		}
		ob.Stage("sim:governor", "done")
		exec, energy, edp := run.Report.Relative(pl.Baseline.Report)
		gov = &GovernorResult{
			Policy: sum.Policy,
			CapW:   sum.CapW,
			Governed: SystemResult{
				ExecSeconds: run.Report.ExecSeconds,
				TotalJ:      run.Report.TotalJ(),
				EDP:         run.Report.EDP(),
				ExecRatio:   exec, EnergyRatio: energy, EDPRatio: edp,
			},
			Decisions:       sum.Decisions,
			Transitions:     sum.Transitions,
			Sheds:           sum.Sheds,
			CapViolations:   sum.CapViolations,
			MaxPowerW:       sum.MaxPowerW,
			WorstCasePowerW: sum.WorstCasePowerW,
		}
	}
	res := buildResult(f.key, cfg, pl, gov)
	raw, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		s.finish(f, err)
		return
	}
	f.result = res
	f.raw = append(raw, '\n')
	s.finish(f, nil)
}

// finish seals the flight. Failed flights leave the map first, so a
// request arriving after the failure starts a fresh execution instead of
// being served a stale error; successful flights stay as the result store
// entry for their key.
func (s *Server) finish(f *flight, err error) {
	f.finishOnce.Do(func() {
		if err != nil {
			s.mu.Lock()
			if s.flights[f.key] == f {
				delete(s.flights, f.key)
			}
			s.mu.Unlock()
			f.err = err
		}
		f.mu.Lock()
		f.subs = nil // release streaming subscribers; terminal events are emitted per request
		f.mu.Unlock()
		close(f.done)
	})
}

// respond writes the request's terminal answer: the shared raw result
// bytes (or error) as one document, or a terminal stream event carrying
// the result plus the leader's stage summaries.
func (s *Server) respond(w http.ResponseWriter, em *emitter, f *flight, cacheLabel string, start time.Time) {
	elapsed := msSince(start)
	if f.err != nil {
		errorCounter.Add(1)
		if em != nil {
			em.emit(Event{Event: EventError, Key: f.key, Error: f.err.Error(), ElapsedMS: elapsed})
			return
		}
		writeError(w, http.StatusInternalServerError, f.err)
		return
	}
	if em != nil {
		em.emit(Event{
			Event: EventResult, Key: f.key, Outcome: cacheLabel,
			Result: f.result, Stages: f.stages.summaries(), ElapsedMS: elapsed,
		})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Wivfi-Cache", cacheLabel)
	w.WriteHeader(http.StatusOK)
	w.Write(f.raw) //nolint:errcheck // client went away; nothing to do
}

// msSince measures wall time for the observability plane — stream events,
// stage summaries, the latency histogram — never for result documents.
func msSince(t time.Time) float64 {
	return float64(time.Since(t)) / float64(time.Millisecond) //lint:wallclock telemetry-only elapsed time
}

// writeJSON writes v as a compact JSON document.
func writeJSON(w http.ResponseWriter, status int, v any) {
	blob, err := json.Marshal(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(blob, '\n')) //nolint:errcheck
}

// writeError writes the service's uniform JSON error document.
func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, struct {
		Error string `json:"error"`
	}{err.Error()})
}
