// Package expt regenerates every table and figure of the paper's evaluation
// (Section 7) on the simulated platform: Table 1 (datasets), Table 2 (V/F
// assignments), Fig. 2 (utilization profiles), Fig. 4 (VFI 1 vs VFI 2),
// Fig. 5 (bottleneck utilization), Fig. 6 (placement strategies), Fig. 7
// (execution-time breakdown), Fig. 8 (full-system EDP), the
// (k_intra, k_inter) sweep of Section 7.2 and the task-stealing case study
// of Section 4.3.
//
// A Suite caches the expensive per-application pipeline — profiling run,
// VFI design, system construction and the simulation of every system — so
// the experiment drivers and benchmarks can share results.
package expt

import (
	"fmt"
	"sync"

	"wivfi/internal/apps"
	"wivfi/internal/platform"
	"wivfi/internal/sim"
	"wivfi/internal/vfi"
)

// Config bundles the platform and design-flow parameters.
type Config struct {
	Build sim.BuildConfig
	VFI   vfi.Options
}

// DefaultConfig returns the paper's configuration.
func DefaultConfig() Config {
	return Config{Build: sim.DefaultBuildConfig(), VFI: vfi.DefaultOptions()}
}

// Pipeline holds everything computed for one benchmark: the design flow of
// Fig. 3 followed by the simulation of every system variant.
type Pipeline struct {
	App      *apps.App
	Workload *sim.Workload
	// Profile is the non-VFI characterization (step 1 of Fig. 3).
	Profile platform.Profile
	// Plan is the VFI design (clustering, V/F assignment, re-assignment).
	Plan vfi.Plan
	// Baseline is the NVFI mesh run every figure normalizes against.
	Baseline *sim.RunResult
	// VFI1Mesh / VFI2Mesh are the mesh systems before and after the
	// bottleneck V/F re-assignment.
	VFI1Mesh *sim.RunResult
	VFI2Mesh *sim.RunResult
	// WiNoC holds the VFI 2 WiNoC runs per placement strategy.
	WiNoC map[sim.Strategy]*sim.RunResult
	// BestStrategy is the strategy with the lower full-system EDP — the
	// per-application choice Section 6 prescribes.
	BestStrategy sim.Strategy
}

// BestWiNoC returns the WiNoC run under the chosen strategy.
func (p *Pipeline) BestWiNoC() *sim.RunResult { return p.WiNoC[p.BestStrategy] }

// BuildPipeline runs the full flow for one benchmark.
func BuildPipeline(cfg Config, app *apps.App) (*Pipeline, error) {
	w, err := app.Workload(cfg.Build.Chip.NumCores())
	if err != nil {
		return nil, fmt.Errorf("expt: %s workload: %w", app.Name, err)
	}
	// Step 1 (Fig. 3): characterize on the plain non-VFI system.
	probeSys, err := sim.NVFIMesh(cfg.Build)
	if err != nil {
		return nil, err
	}
	probeRes, err := sim.Run(w, probeSys)
	if err != nil {
		return nil, fmt.Errorf("expt: %s profiling run: %w", app.Name, err)
	}
	prof := probeRes.Profile()

	// Reporting baseline: the same non-VFI mesh with a sane thread mapping.
	baseSys, err := sim.NVFIMeshMapped(cfg.Build, prof.Traffic)
	if err != nil {
		return nil, err
	}
	baseRes, err := sim.Run(w, baseSys)
	if err != nil {
		return nil, err
	}

	// Steps 2-4: cluster, assign V/F, re-assign for bottlenecks.
	plan, err := vfi.Design(prof, cfg.VFI)
	if err != nil {
		return nil, fmt.Errorf("expt: %s VFI design: %w", app.Name, err)
	}

	pl := &Pipeline{
		App:      app,
		Workload: w,
		Profile:  prof,
		Plan:     plan,
		Baseline: baseRes,
		WiNoC:    map[sim.Strategy]*sim.RunResult{},
	}

	for _, variant := range []struct {
		cfgV platform.VFIConfig
		dst  **sim.RunResult
	}{
		{plan.VFI1, &pl.VFI1Mesh},
		{plan.VFI2, &pl.VFI2Mesh},
	} {
		sys, err := sim.VFIMesh(cfg.Build, variant.cfgV, prof.Traffic)
		if err != nil {
			return nil, err
		}
		res, err := sim.Run(w, sys)
		if err != nil {
			return nil, err
		}
		*variant.dst = res
	}

	for _, st := range []sim.Strategy{sim.MinHop, sim.MaxWireless} {
		sys, err := sim.VFIWiNoC(cfg.Build, plan.VFI2, prof.Traffic, st)
		if err != nil {
			return nil, err
		}
		res, err := sim.Run(w, sys)
		if err != nil {
			return nil, err
		}
		pl.WiNoC[st] = res
	}
	pl.BestStrategy = sim.MinHop
	if pl.WiNoC[sim.MaxWireless].Report.EDP() < pl.WiNoC[sim.MinHop].Report.EDP() {
		pl.BestStrategy = sim.MaxWireless
	}
	return pl, nil
}

// Suite lazily builds and caches one pipeline per benchmark.
type Suite struct {
	Config Config

	mu        sync.Mutex
	pipelines map[string]*Pipeline
}

// NewSuite returns an empty suite for the configuration.
func NewSuite(cfg Config) *Suite {
	return &Suite{Config: cfg, pipelines: map[string]*Pipeline{}}
}

// Pipeline returns (building on first use) the pipeline for a benchmark.
func (s *Suite) Pipeline(name string) (*Pipeline, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if pl, ok := s.pipelines[name]; ok {
		return pl, nil
	}
	app, err := apps.ByName(name)
	if err != nil {
		return nil, err
	}
	pl, err := BuildPipeline(s.Config, app)
	if err != nil {
		return nil, err
	}
	s.pipelines[name] = pl
	return pl, nil
}

// AppOrder is the benchmark ordering used by the figure drivers (Fig. 8's
// x-axis order).
var AppOrder = []string{"mm", "wc", "pca", "lr", "hist", "kmeans"}

// ForEach runs fn over every benchmark pipeline in AppOrder.
func (s *Suite) ForEach(fn func(*Pipeline) error) error {
	for _, name := range AppOrder {
		pl, err := s.Pipeline(name)
		if err != nil {
			return err
		}
		if err := fn(pl); err != nil {
			return err
		}
	}
	return nil
}
