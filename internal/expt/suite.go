// Package expt regenerates every table and figure of the paper's evaluation
// (Section 7) on the simulated platform: Table 1 (datasets), Table 2 (V/F
// assignments), Fig. 2 (utilization profiles), Fig. 4 (VFI 1 vs VFI 2),
// Fig. 5 (bottleneck utilization), Fig. 6 (placement strategies), Fig. 7
// (execution-time breakdown), Fig. 8 (full-system EDP), the
// (k_intra, k_inter) sweep of Section 7.2 and the task-stealing case study
// of Section 4.3.
//
// A Suite caches the expensive per-application pipeline — profiling run,
// VFI design, system construction and the simulation of every system — so
// the experiment drivers and benchmarks can share results. Distinct
// benchmarks build concurrently (duplicate requests for the same benchmark
// coalesce onto one build), and within a pipeline the independent system
// simulations fan out over a bounded worker pool shared by the whole
// suite. All simulations are deterministic, so results are byte-identical
// whatever the parallelism level.
package expt

import (
	"fmt"
	"sync"
	"time"

	"wivfi/internal/apps"
	"wivfi/internal/obs"
	"wivfi/internal/platform"
	"wivfi/internal/sim"
	"wivfi/internal/vfi"
)

// Config bundles the platform and design-flow parameters.
type Config struct {
	Build sim.BuildConfig
	VFI   vfi.Options
}

// DefaultConfig returns the paper's configuration.
func DefaultConfig() Config {
	return Config{Build: sim.DefaultBuildConfig(), VFI: vfi.DefaultOptions()}
}

// Pipeline holds everything computed for one benchmark: the design flow of
// Fig. 3 followed by the simulation of every system variant.
type Pipeline struct {
	App      *apps.App
	Workload *sim.Workload
	// Profile is the non-VFI characterization (step 1 of Fig. 3).
	Profile platform.Profile
	// Plan is the VFI design (clustering, V/F assignment, re-assignment).
	Plan vfi.Plan
	// Baseline is the NVFI mesh run every figure normalizes against.
	Baseline *sim.RunResult
	// VFI1Mesh / VFI2Mesh are the mesh systems before and after the
	// bottleneck V/F re-assignment.
	VFI1Mesh *sim.RunResult
	VFI2Mesh *sim.RunResult
	// WiNoC holds the VFI 2 WiNoC runs per placement strategy.
	WiNoC map[sim.Strategy]*sim.RunResult
	// BestStrategy is the strategy with the lower full-system EDP — the
	// per-application choice Section 6 prescribes.
	BestStrategy sim.Strategy
	// FromCache reports whether the profile and VFI plan were loaded from
	// the on-disk design cache rather than recomputed.
	FromCache bool
}

// BestWiNoC returns the WiNoC run under the chosen strategy.
func (p *Pipeline) BestWiNoC() *sim.RunResult { return p.WiNoC[p.BestStrategy] }

// buildHook, when non-nil, is invoked at the start of every pipeline build
// (after the suite lock is released). Test seam for the singleflight
// regression tests; never set outside tests.
var buildHook func(name string)

// BuildObserver receives progress callbacks from one pipeline build — the
// request-shaped entry point the serving layer streams from. Both fields
// are optional; set callbacks must be safe for concurrent use, since the
// five system simulations report from pool goroutines.
type BuildObserver struct {
	// Stage is called with state "start" and "done" around every pipeline
	// stage: design-flow, probe-sim, vfi-design and the five sim:* runs.
	// Stage names match the obs span names, so streamed events and trace
	// artifacts agree.
	Stage func(stage, state string)
	// Cache reports the design-cache classification of the build exactly
	// once, before any recomputation starts.
	Cache func(hit bool)
}

// stage fires the Stage callback on a non-nil observer.
func (ob *BuildObserver) stage(stage, state string) {
	if ob != nil && ob.Stage != nil {
		ob.Stage(stage, state)
	}
}

// cache fires the Cache callback on a non-nil observer.
func (ob *BuildObserver) cache(hit bool) {
	if ob != nil && ob.Cache != nil {
		ob.Cache(hit)
	}
}

// BuildPipeline runs the full flow for one benchmark, serially and without
// a disk cache. The Suite path adds coalescing, fan-out and caching.
func BuildPipeline(cfg Config, app *apps.App) (*Pipeline, error) {
	return buildPipeline(cfg, app, nil, "", nil, nil)
}

// BuildDesign runs the design flow alone — probe simulation, clustering
// and V/F assignment, or a load from the config-keyed disk cache — without
// simulating the derived systems. It is the entry point for callers (the
// sweep orchestrator) that compose their own system set from the returned
// profile and plan while still deduplicating design work across scenarios
// through the shared cache. The returned workload is the one the profile
// was characterized with; fromCache reports a design-cache hit.
func BuildDesign(cfg Config, app *apps.App, pool *sim.Pool, cacheDir string) (*sim.Workload, platform.Profile, vfi.Plan, bool, error) {
	w, err := app.Workload(cfg.Build.Chip.NumCores())
	if err != nil {
		return nil, platform.Profile{}, vfi.Plan{}, false, fmt.Errorf("expt: %s workload: %w", app.Name, err)
	}
	prof, plan, cached, err := designFlow(cfg, app, w, pool, cacheDir, nil, nil)
	if err != nil {
		return nil, platform.Profile{}, vfi.Plan{}, false, err
	}
	return w, prof, plan, cached, nil
}

// BuildPipelineObserved is the serving-layer entry point: one pipeline
// build for an arbitrary request Config, fanned out over the caller's
// shared pool, consulting the design cache at cacheDir ("" disables), with
// per-stage progress delivered through ob (nil for none).
func BuildPipelineObserved(cfg Config, app *apps.App, pool *sim.Pool, cacheDir string, ob *BuildObserver) (*Pipeline, error) {
	return buildPipeline(cfg, app, pool, cacheDir, nil, ob)
}

// buildPipeline runs the design flow and then fans the five independent
// system simulations (baseline, VFI 1 mesh, VFI 2 mesh, two WiNoC
// placements) out over the pool. A nil pool runs everything inline.
func buildPipeline(cfg Config, app *apps.App, pool *sim.Pool, cacheDir string, stats *cacheStats, ob *BuildObserver) (*Pipeline, error) {
	if buildHook != nil {
		buildHook(app.Name)
	}
	// One orchestration track per benchmark; the leaf simulations below
	// trace onto per-pool-slot tracks instead.
	track := int32(0)
	if obs.Enabled() {
		track = obs.TrackFor("pipeline-" + app.Name)
	}
	pspan := obs.StartSpanOn(track, "pipeline", app.Name)
	defer pspan.End()
	w, err := app.Workload(cfg.Build.Chip.NumCores())
	if err != nil {
		return nil, fmt.Errorf("expt: %s workload: %w", app.Name, err)
	}

	// Steps 1-4 (Fig. 3): characterize on the plain non-VFI system, then
	// cluster, assign V/F and re-assign for bottlenecks — or reload both
	// artifacts from the config-keyed disk cache.
	ob.stage("design-flow", "start")
	dspan := obs.StartSpanOn(track, "design-flow", app.Name)
	prof, plan, cached, err := designFlow(cfg, app, w, pool, cacheDir, stats, ob)
	dspan.End()
	ob.stage("design-flow", "done")
	if err != nil {
		return nil, err
	}

	pl := &Pipeline{
		App:       app,
		Workload:  w,
		Profile:   prof,
		Plan:      plan,
		WiNoC:     map[sim.Strategy]*sim.RunResult{},
		FromCache: cached,
	}

	// The five remaining simulations are mutually independent: they each
	// construct their own system from (cfg, prof, plan) and write to a
	// distinct destination, so they can run concurrently in any order
	// without changing the result.
	var wiMinHop, wiMaxWireless *sim.RunResult
	jobs := []struct {
		stage string
		dst   **sim.RunResult
		build func() (*sim.System, error)
	}{
		{"sim:nvfi-mesh", &pl.Baseline, func() (*sim.System, error) { return sim.NVFIMeshMapped(cfg.Build, prof.Traffic) }},
		{"sim:vfi1-mesh", &pl.VFI1Mesh, func() (*sim.System, error) { return sim.VFIMesh(cfg.Build, plan.VFI1, prof.Traffic) }},
		{"sim:vfi2-mesh", &pl.VFI2Mesh, func() (*sim.System, error) { return sim.VFIMesh(cfg.Build, plan.VFI2, prof.Traffic) }},
		{"sim:winoc-min-hop", &wiMinHop, func() (*sim.System, error) {
			return sim.VFIWiNoC(cfg.Build, plan.VFI2, prof.Traffic, sim.MinHop)
		}},
		{"sim:winoc-max-wireless", &wiMaxWireless, func() (*sim.System, error) {
			return sim.VFIWiNoC(cfg.Build, plan.VFI2, prof.Traffic, sim.MaxWireless)
		}},
	}
	errs := make([]error, len(jobs))
	var wg sync.WaitGroup
	for i, job := range jobs {
		wg.Add(1)
		go func(i int, stage string, dst **sim.RunResult, build func() (*sim.System, error)) {
			defer wg.Done()
			pool.DoNamed(stage, app.Name, func() {
				ob.stage(stage, "start")
				defer ob.stage(stage, "done")
				sys, err := build()
				if err != nil {
					errs[i] = err
					return
				}
				res, err := sim.Run(w, sys)
				if err != nil {
					errs[i] = err
					return
				}
				*dst = res
			})
		}(i, job.stage, job.dst, job.build)
	}
	wg.Wait()
	for _, err := range errs { // first error in fixed job order, deterministically
		if err != nil {
			return nil, fmt.Errorf("expt: %s: %w", app.Name, err)
		}
	}

	pl.WiNoC[sim.MinHop] = wiMinHop
	pl.WiNoC[sim.MaxWireless] = wiMaxWireless
	pl.BestStrategy = sim.MinHop
	if pl.WiNoC[sim.MaxWireless].Report.EDP() < pl.WiNoC[sim.MinHop].Report.EDP() {
		pl.BestStrategy = sim.MaxWireless
	}
	return pl, nil
}

// designFlow produces the profile and VFI plan, consulting the disk cache
// when cacheDir is non-empty. Cache writes are best-effort: a read-only or
// full disk degrades to recomputation, never to failure.
func designFlow(cfg Config, app *apps.App, w *sim.Workload, pool *sim.Pool, cacheDir string, stats *cacheStats, ob *BuildObserver) (platform.Profile, vfi.Plan, bool, error) {
	if cacheDir != "" {
		prof, plan, outcome := loadDesign(cacheDir, cfg, app.Name)
		stats.count(outcome)
		if outcome == cacheHit {
			ob.cache(true)
			return prof, plan, true, nil
		}
	}
	ob.cache(false)
	var prof platform.Profile
	var probeErr error
	pool.DoNamed("probe-sim", app.Name, func() {
		ob.stage("probe-sim", "start")
		defer ob.stage("probe-sim", "done")
		probeSys, err := sim.NVFIMesh(cfg.Build)
		if err != nil {
			probeErr = err
			return
		}
		probeRes, err := sim.Run(w, probeSys)
		if err != nil {
			probeErr = fmt.Errorf("expt: %s profiling run: %w", app.Name, err)
			return
		}
		prof = probeRes.Profile()
	})
	if probeErr != nil {
		return platform.Profile{}, vfi.Plan{}, false, probeErr
	}
	var plan vfi.Plan
	var designErr error
	pool.DoNamed("vfi-design", app.Name, func() {
		ob.stage("vfi-design", "start")
		defer ob.stage("vfi-design", "done")
		plan, designErr = vfi.Design(prof, cfg.VFI)
	})
	if designErr != nil {
		return platform.Profile{}, vfi.Plan{}, false, fmt.Errorf("expt: %s VFI design: %w", app.Name, designErr)
	}
	if cacheDir != "" {
		saveDesign(cacheDir, cfg, app.Name, prof, plan) // best effort
	}
	return prof, plan, false, nil
}

// suiteEntry is the singleflight slot for one benchmark: the first caller
// runs the build under the entry's Once, later and concurrent callers for
// the same name wait on it, and callers for other names proceed
// independently.
type suiteEntry struct {
	once sync.Once
	pl   *Pipeline
	err  error
}

// Suite lazily builds and caches one pipeline per benchmark. Distinct
// benchmarks build concurrently; duplicate requests coalesce. The
// zero-value-like suite from NewSuite is ready to use and safe for
// concurrent use by multiple goroutines.
type Suite struct {
	Config Config

	mu      sync.Mutex
	entries map[string]*suiteEntry

	pool     *sim.Pool
	cacheDir string
	stats    cacheStats
}

// Option configures a Suite beyond its platform Config.
type Option func(*Suite)

// WithParallelism bounds the suite-wide worker pool to n concurrent
// simulations (n <= 1 means fully serial). The default is GOMAXPROCS.
func WithParallelism(n int) Option {
	return func(s *Suite) { s.pool = sim.NewPool(n) }
}

// WithCacheDir enables the on-disk design cache rooted at dir: pipelines
// store their profiling run and VFI plan keyed by a hash of the suite
// Config and benchmark name, so later suites with the same configuration
// skip the probe simulation and the clustering anneal. An empty dir
// disables caching (the default).
func WithCacheDir(dir string) Option {
	return func(s *Suite) { s.cacheDir = dir }
}

// NewSuite returns an empty suite for the configuration.
func NewSuite(cfg Config, opts ...Option) *Suite {
	s := &Suite{
		Config:  cfg,
		entries: map[string]*suiteEntry{},
		pool:    sim.DefaultPool(),
	}
	for _, opt := range opts {
		opt(s)
	}
	return s
}

// Parallelism reports the size of the suite's worker pool.
func (s *Suite) Parallelism() int { return s.pool.Size() }

// entry returns (creating if needed) the singleflight slot for a name. The
// suite lock protects only the map, never a build.
func (s *Suite) entry(name string) *suiteEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[name]
	if !ok {
		e = &suiteEntry{}
		s.entries[name] = e
	}
	return e
}

// Pipeline returns (building on first use) the pipeline for a benchmark.
// Concurrent calls for the same benchmark build it exactly once; calls for
// different benchmarks run concurrently.
func (s *Suite) Pipeline(name string) (*Pipeline, error) {
	e := s.entry(name)
	e.once.Do(func() {
		app, err := apps.ByName(name)
		if err != nil {
			e.err = err
			return
		}
		start := time.Now() //lint:wallclock times the build for the stderr -v progress line only
		e.pl, e.err = buildPipeline(s.Config, app, s.pool, s.cacheDir, &s.stats, nil)
		if obs.Verbose() && e.err == nil {
			elapsed := time.Since(start) //lint:wallclock elapsed build time goes to stderr progress, never into results
			obs.Logf("expt: pipeline %-6s built in %6.2fs (from cache: %v)",
				name, elapsed.Seconds(), e.pl.FromCache)
		}
	})
	return e.pl, e.err
}

// CacheStats snapshots the suite's design-cache outcomes so far.
func (s *Suite) CacheStats() CacheStats {
	return CacheStats{
		Hits:           s.stats.hits.Load(),
		Misses:         s.stats.misses.Load(),
		CorruptEvicted: s.stats.corrupt.Load(),
	}
}

// Prewarm builds the named pipelines (all of AppOrder when none are given)
// concurrently and returns the first error in argument order. It is the
// fan-out entry point for cmd/reproduce -j and the benchmarks; afterwards
// every Pipeline call is a cache hit.
func (s *Suite) Prewarm(names ...string) error {
	if len(names) == 0 {
		names = AppOrder
	}
	errs := make([]error, len(names))
	var wg sync.WaitGroup
	for i, name := range names {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			_, errs[i] = s.Pipeline(name)
		}(i, name)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// AppOrder is the benchmark ordering used by the figure drivers (Fig. 8's
// x-axis order).
var AppOrder = []string{"mm", "wc", "pca", "lr", "hist", "kmeans"}

// ForEach runs fn over every benchmark pipeline in AppOrder. The pipelines
// are prewarmed concurrently; fn itself runs serially in AppOrder so
// drivers emit rows deterministically.
func (s *Suite) ForEach(fn func(*Pipeline) error) error {
	if err := s.Prewarm(AppOrder...); err != nil {
		return err
	}
	for _, name := range AppOrder {
		pl, err := s.Pipeline(name)
		if err != nil {
			return err
		}
		if err := fn(pl); err != nil {
			return err
		}
	}
	return nil
}
