package expt

import (
	"bytes"
	"fmt"
	"math"
	"reflect"
	"testing"

	"wivfi/internal/governor"
	"wivfi/internal/obs"
)

// governedArtifacts runs one governed wc simulation on a fresh suite and
// returns the byte-exact decision log plus the run's EDP-relevant report —
// the pair every determinism axis below must reproduce bit-for-bit.
func governedArtifacts(t *testing.T, jobs int, pol governor.Policy, capW float64, opts ...Option) ([]byte, string) {
	t.Helper()
	s := NewSuite(DefaultConfig(), append([]Option{WithParallelism(jobs)}, opts...)...)
	pl, err := s.Pipeline("wc")
	if err != nil {
		t.Fatal(err)
	}
	log := governor.NewLog()
	run, sum, err := GovernedMesh(s.Config, pl, pol, capW, log, nil)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := log.NDJSON()
	if err != nil {
		t.Fatal(err)
	}
	if sum.Decisions != log.Len() {
		t.Fatalf("summary counts %d decisions, log holds %d", sum.Decisions, log.Len())
	}
	exec, en, edp := run.Report.Relative(pl.Baseline.Report)
	// Bit-exact float identity: compare the IEEE-754 patterns, not rounded
	// decimals, so "equal" means equal.
	return blob, fmt.Sprintf("%016x/%016x/%016x",
		math.Float64bits(exec), math.Float64bits(en), math.Float64bits(edp))
}

// TestGovernedStaticMatchesMesh locks the baseline identity: the governed
// run under the static policy holds the paper plan fixed at every phase
// boundary, so it must reproduce the pipeline's VFI 2 mesh run exactly —
// same report, zero transitions, zero sheds.
func TestGovernedStaticMatchesMesh(t *testing.T) {
	s := sharedSuite(t)
	pl, err := s.Pipeline("wc")
	if err != nil {
		t.Fatal(err)
	}
	run, sum, err := GovernedMesh(s.Config, pl, governor.Static, 0, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if run.Report != pl.VFI2Mesh.Report {
		t.Errorf("static governed report %+v != mesh report %+v", run.Report, pl.VFI2Mesh.Report)
	}
	if sum.Transitions != 0 || sum.Sheds != 0 || sum.CapViolations != 0 {
		t.Errorf("static policy actuated: %+v", sum)
	}
	if sum.Decisions != len(run.Phases) {
		t.Errorf("%d decisions for %d phases", sum.Decisions, len(run.Phases))
	}
}

// TestGovernorDecisionLogDeterministic is the tentpole's determinism
// contract: same config, same decisions — bit-equal NDJSON log and
// bit-equal EDP at any parallelism, with the design cache cold or hot, and
// with telemetry recording on or off.
func TestGovernorDecisionLogDeterministic(t *testing.T) {
	refLog, refEDP := governedArtifacts(t, 1, governor.Cap, DefaultGovernorCapW)

	jLog, jEDP := governedArtifacts(t, 8, governor.Cap, DefaultGovernorCapW)
	if !bytes.Equal(refLog, jLog) || refEDP != jEDP {
		t.Error("decision log or EDP differs between -j 1 and -j 8")
	}

	dir := t.TempDir()
	coldLog, coldEDP := governedArtifacts(t, 4, governor.Cap, DefaultGovernorCapW, WithCacheDir(dir))
	hotLog, hotEDP := governedArtifacts(t, 4, governor.Cap, DefaultGovernorCapW, WithCacheDir(dir))
	if !bytes.Equal(refLog, coldLog) || refEDP != coldEDP {
		t.Error("decision log or EDP differs on a cold design cache")
	}
	if !bytes.Equal(refLog, hotLog) || refEDP != hotEDP {
		t.Error("decision log or EDP differs on a hot design cache")
	}

	rec := obs.NewRecorder()
	obs.Install(rec)
	defer obs.Install(nil)
	tLog, tEDP := governedArtifacts(t, 4, governor.Cap, DefaultGovernorCapW)
	if !bytes.Equal(refLog, tLog) || refEDP != tEDP {
		t.Error("decision log or EDP differs with telemetry recording")
	}

	if len(refLog) == 0 {
		t.Fatal("empty decision log")
	}
}

// TestGovernorStudyCapRespected is the cap-safety acceptance check: in
// every benchmark's capped run, measured phase power never exceeds the
// admitted worst-case bound, the bound never exceeds the cap, and no
// decision was a violation.
func TestGovernorStudyCapRespected(t *testing.T) {
	rows, err := sharedSuite(t).GovernorStudy(DefaultGovernorCapW)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(AppOrder) {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.Violations != 0 {
			t.Errorf("%s: %d cap violations", r.App, r.Violations)
		}
		if r.MaxPowerCapW > r.WorstCaseCapW+1e-9 {
			t.Errorf("%s: measured %.3f W exceeds admitted worst case %.3f W", r.App, r.MaxPowerCapW, r.WorstCaseCapW)
		}
		if r.WorstCaseCapW > r.CapW+1e-9 {
			t.Errorf("%s: admitted worst case %.3f W exceeds cap %.0f W", r.App, r.WorstCaseCapW, r.CapW)
		}
		if r.StaticEDP <= 0 || r.UtilEDP <= 0 || r.CapEDP <= 0 {
			t.Errorf("%s: non-positive EDP ratios %+v", r.App, r)
		}
	}
}

// TestGovernorStudyDeterministicAcrossJ locks the study table itself:
// fixed-slot fan-out must make rows identical at any parallelism.
func TestGovernorStudyDeterministicAcrossJ(t *testing.T) {
	serial, err := NewSuite(DefaultConfig(), WithParallelism(1)).GovernorStudy(DefaultGovernorCapW)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := NewSuite(DefaultConfig(), WithParallelism(8)).GovernorStudy(DefaultGovernorCapW)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("governor study differs across -j:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
}
