package expt

import (
	"bytes"
	"encoding/json"
	"strconv"
	"strings"
	"testing"

	"wivfi/internal/timeline"
)

func collectSet(t *testing.T, jobs int, names ...string) []byte {
	t.Helper()
	s := NewSuite(DefaultConfig(), WithParallelism(jobs))
	col := timeline.NewCollector()
	if err := s.CollectTimelines(col, names...); err != nil {
		t.Fatal(err)
	}
	set := col.Export("test")
	if err := set.Validate(); err != nil {
		t.Fatal(err)
	}
	blob, err := json.MarshalIndent(set, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

func TestCollectTimelinesByteIdenticalAcrossJ(t *testing.T) {
	serial := collectSet(t, 1, "wc", "mm")
	parallel := collectSet(t, 4, "wc", "mm")
	if !bytes.Equal(serial, parallel) {
		t.Fatal("timeline artifacts differ between -j 1 and -j 4")
	}
	repeat := collectSet(t, 4, "wc", "mm")
	if !bytes.Equal(parallel, repeat) {
		t.Fatal("timeline artifacts differ across repeated runs")
	}
}

func TestCollectTimelinesSeriesShape(t *testing.T) {
	s := NewSuite(DefaultConfig(), WithParallelism(2))
	col := timeline.NewCollector()
	if err := s.CollectTimelines(col, "wc"); err != nil {
		t.Fatal(err)
	}
	set := col.Export("test")

	// Phase strips: one track per core, starting at 0, ending "done".
	tracks := set.Prefix("expt/wc/worker/")
	if len(tracks) != 64 {
		t.Fatalf("worker tracks = %d, want 64", len(tracks))
	}
	kinds := map[string]bool{}
	for _, tr := range tracks {
		if tr.Kind != timeline.KindTrack || len(tr.Points) == 0 {
			t.Fatalf("bad track %q", tr.Name)
		}
		if tr.Points[0].Index != 0 {
			t.Fatalf("%s starts at %d", tr.Name, tr.Points[0].Index)
		}
		if last := tr.Points[len(tr.Points)-1]; last.State != "done" {
			t.Fatalf("%s ends %q", tr.Name, last.State)
		}
		for _, p := range tr.Points {
			kinds[p.State] = true
		}
	}
	// wc's workload model runs libinit/map/reduce/merge (no split phase).
	for _, want := range []string{"libinit", "map", "reduce", "merge", "idle"} {
		if !kinds[want] {
			t.Errorf("no worker strip shows phase %q", want)
		}
	}

	// Island series: 4 utilization samplers in [0,1], 4 V/F step tracks.
	utils := 0
	for isl := 0; isl < 4; isl++ {
		name := "expt/wc/island/" + string(rune('0'+isl))
		if u := set.Lookup(name + "/util"); u != nil {
			utils++
			for _, v := range u.Values {
				if v < 0 || v > 1 {
					t.Fatalf("%s value %v out of [0,1]", u.Name, v)
				}
			}
		}
		vf := set.Lookup(name + "/vf")
		if vf == nil {
			t.Fatalf("missing %s/vf", name)
		}
		if vf.IndexUnit != "design-step" {
			t.Fatalf("%s index unit %q", vf.Name, vf.IndexUnit)
		}
		for _, p := range vf.Points {
			if !strings.Contains(p.State, "/") {
				t.Fatalf("%s state %q not a V/F label", vf.Name, p.State)
			}
		}
	}
	if utils != 4 {
		t.Fatalf("island util series = %d, want 4", utils)
	}

	// Energy series for all three systems, with positive total mass.
	for _, label := range []string{"vfi1-mesh", "vfi2-mesh", "winoc-best"} {
		e := set.Lookup("expt/wc/energy/" + label)
		if e == nil {
			t.Fatalf("missing energy series %s", label)
		}
		var mass float64
		for _, v := range e.Values {
			mass += v
		}
		if mass <= 0 {
			t.Fatalf("energy/%s mass = %v", label, mass)
		}
	}
	if set.Lookup("expt/wc/steals") == nil {
		t.Fatal("missing steals series")
	}

	// DES replay: latency histogram plus at least one link series.
	lat := set.Lookup("noc/wc/latency")
	if lat == nil || lat.Histogram == nil {
		t.Fatal("missing noc/wc/latency histogram")
	}
	if lat.Histogram.Count != desReplayPackets {
		t.Fatalf("latency count = %d, want %d", lat.Histogram.Count, desReplayPackets)
	}
	if lat.Histogram.P99 < lat.Histogram.P50 {
		t.Fatalf("p99 %d < p50 %d", lat.Histogram.P99, lat.Histogram.P50)
	}
	if links := set.Prefix("noc/wc/link/"); len(links) == 0 {
		t.Fatal("no link heatmap series")
	}
}

func TestSpread(t *testing.T) {
	vals := make([]float64, 4)
	spread(vals, 10, 5, 25, 2.0) // spans bins 0..2 with weights 5,10,5
	want := []float64{0.5, 1.0, 0.5, 0}
	for i := range want {
		if diff := vals[i] - want[i]; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("vals = %v, want %v", vals, want)
		}
	}
	// Zero-width span lands its whole mass in one bin.
	vals = make([]float64, 4)
	spread(vals, 10, 35, 35, 3.0)
	if vals[3] != 3.0 {
		t.Fatalf("zero-width spread: %v", vals)
	}
}

// islandUtilSeriesRescan is the pre-hoist derivation of islandUtilSeries:
// one full pass over every phase's BusySec strip per island. It is kept
// verbatim as the reference for the byte-identity lock below — the hoisted
// implementation shares one aggregation pass across islands and must not
// change a single output byte.
func islandUtilSeriesRescan(pl *Pipeline) []timeline.Series {
	res := pl.BestWiNoC()
	spans, total := phaseSpans(res)
	window := windowFor(total)
	bins := int(total/window) + 1
	islands := pl.Plan.VFI2.Islands()
	out := make([]timeline.Series, 0, len(islands))
	for isl, cores := range islands {
		vals := make([]float64, bins)
		for i, ph := range res.Phases {
			var islandBusy float64
			for _, c := range cores {
				if c < len(ph.BusySec) {
					islandBusy += ph.BusySec[c]
				}
			}
			spread(vals, window, spans[i][0], spans[i][1], islandBusy)
		}
		denom := float64(len(cores)) * float64(window) / 1e9
		for b := range vals {
			if denom > 0 {
				vals[b] /= denom
			}
			if vals[b] > 1 {
				vals[b] = 1
			}
		}
		out = append(out, timeline.Series{
			Meta:   timeline.Meta{Name: "expt/" + pl.App.Name + "/island/" + itoa(isl) + "/util", IndexUnit: "vns", Unit: "util"},
			Kind:   timeline.KindSampler,
			Agg:    timeline.Mean.String(),
			Window: window,
			Values: vals,
		})
	}
	return out
}

func itoa(i int) string {
	return strconv.Itoa(i)
}

// TestIslandUtilSeriesMatchesRescan locks the hoisted island-utilization
// derivation to the original per-island rescan, byte for byte, across all
// six benchmarks.
func TestIslandUtilSeriesMatchesRescan(t *testing.T) {
	s := sharedSuite(t)
	for _, name := range AppOrder {
		pl, err := s.Pipeline(name)
		if err != nil {
			t.Fatal(err)
		}
		hoisted := islandUtilSeries(pl)
		reference := islandUtilSeriesRescan(pl)
		got, err := json.Marshal(hoisted)
		if err != nil {
			t.Fatal(err)
		}
		want, err := json.Marshal(reference)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s: hoisted island-util series differ from the rescan reference", name)
		}
	}
}
