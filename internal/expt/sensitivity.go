package expt

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"wivfi/internal/sim"
	"wivfi/internal/vfi"
)

// MarginRow is one point of the V/F-margin sensitivity study for one
// benchmark: the margin value, the resulting VFI 2 frequency multiset, and
// the full-system outcome on the mesh.
type MarginRow struct {
	App    string
	Margin float64
	// Freqs is the ascending VFI 2 frequency multiset the margin produces.
	Freqs []float64
	// ExecRatio and EDPRatio are vs the NVFI mesh baseline.
	ExecRatio float64
	EDPRatio  float64
}

// MarginSweep quantifies how sensitive the design flow is to the
// reconstructed V/F-selection margin (the one free parameter the paper does
// not specify; 0.35 reproduces Table 2). Small margins under-provision and
// slow the chip; large margins collapse every island to f_max and erase the
// savings.
func (s *Suite) MarginSweep(appName string, margins []float64) ([]MarginRow, error) {
	pl, err := s.Pipeline(appName)
	if err != nil {
		return nil, err
	}
	for _, m := range margins {
		if m < 0 || m > 1 {
			return nil, fmt.Errorf("expt: margin %v out of [0,1]", m)
		}
	}
	// Every margin point re-runs the design flow and one mesh simulation on
	// the shared profile — independent work, fanned out over the pool with
	// rows assembled in argument order.
	rows := make([]MarginRow, len(margins))
	errs := make([]error, len(margins))
	var wg sync.WaitGroup
	for i, m := range margins {
		wg.Add(1)
		go func(i int, m float64) {
			defer wg.Done()
			s.pool.DoNamed("sim:margin-sweep", appName, func() {
				opts := s.Config.VFI
				opts.FreqMargin = m
				plan, err := vfi.Design(pl.Profile, opts)
				if err != nil {
					errs[i] = err
					return
				}
				sys, err := sim.VFIMesh(s.Config.Build, plan.VFI2, pl.Profile.Traffic)
				if err != nil {
					errs[i] = err
					return
				}
				run, err := sim.Run(pl.Workload, sys)
				if err != nil {
					errs[i] = err
					return
				}
				var fs []float64
				for _, p := range plan.VFI2.Points {
					fs = append(fs, p.FreqGHz)
				}
				sort.Float64s(fs)
				exec, _, edp := run.Report.Relative(pl.Baseline.Report)
				rows[i] = MarginRow{
					App: appName, Margin: m, Freqs: fs,
					ExecRatio: exec, EDPRatio: edp,
				}
			})
		}(i, m)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// FormatMargin renders the sensitivity study.
func FormatMargin(rows []MarginRow) string {
	var b strings.Builder
	b.WriteString("Sensitivity: V/F-selection margin (VFI 2 mesh, vs NVFI mesh)\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-8s margin=%.2f islands=%v exec=%.3f EDP=%.3f\n",
			r.App, r.Margin, r.Freqs, r.ExecRatio, r.EDPRatio)
	}
	return b.String()
}
