package expt

import (
	"fmt"
	"strings"
	"sync"

	"wivfi/internal/platform"
	"wivfi/internal/sim"
)

// PhasedRow compares the paper's static VFI 2 mesh system against the
// phase-adaptive DVFS extension on the same mesh platform.
type PhasedRow struct {
	App string
	// Static is the EDP ratio of the paper's static VFI 2 mesh system vs
	// the NVFI mesh baseline; Mean and MaxCore are the two phase-adaptive
	// controllers.
	StaticEDP  float64
	MeanEDP    float64
	MaxCoreEDP float64
	// Execution-time ratios for the same three systems.
	ExecStatic  float64
	ExecMean    float64
	ExecMaxCore float64
	// Transitions counts phase boundaries where at least one island moved
	// (max-core controller).
	Transitions int
}

// PhaseAdaptiveStudy runs the extension study: per-phase island V/F derived
// from the baseline phase profile. The mean-utilization controller throttles
// islands whose average is low — and stretches master-critical coordination
// phases; the bottleneck-aware max-core controller only throttles islands
// with no core on the critical path (Kmeans' idle half during iteration two
// is the showcase).
func (s *Suite) PhaseAdaptiveStudy() ([]PhasedRow, error) {
	if err := s.Prewarm(AppOrder...); err != nil {
		return nil, err
	}
	table := platform.DefaultDVFSTable()
	rows := make([]PhasedRow, len(AppOrder))
	modes := []sim.PhaseUtilMode{sim.PhaseUtilMean, sim.PhaseUtilMaxCore}
	errs := make([]error, len(AppOrder)*len(modes))
	var wg sync.WaitGroup
	for i, name := range AppOrder {
		pl, err := s.Pipeline(name)
		if err != nil {
			return nil, err
		}
		rows[i].App = pl.App.Name
		rows[i].ExecStatic, _, rows[i].StaticEDP = pl.VFI2Mesh.Report.Relative(pl.Baseline.Report)
		// The mesh system is read-only under RunPhased (it simulates on a
		// copy), so both controller runs can share it and fan out.
		meshSys, err := sim.VFIMesh(s.Config.Build, pl.Plan.VFI2, pl.Profile.Traffic)
		if err != nil {
			return nil, err
		}
		for m, mode := range modes {
			wg.Add(1)
			go func(i, m int, pl *Pipeline, mode sim.PhaseUtilMode, meshSys *sim.System) {
				defer wg.Done()
				s.pool.DoNamed("sim:phased-dvfs", pl.App.Name, func() {
					configs := sim.PhaseConfigs(pl.Baseline, pl.Plan.VFI2, table, s.Config.VFI.FreqMargin, mode)
					phased, err := sim.RunPhased(pl.Workload, meshSys, configs, sim.DefaultDVFSTransition())
					if err != nil {
						errs[i*len(modes)+m] = err
						return
					}
					exec, _, edp := phased.Report.Relative(pl.Baseline.Report)
					if mode == sim.PhaseUtilMean {
						rows[i].ExecMean, rows[i].MeanEDP = exec, edp
					} else {
						rows[i].ExecMaxCore, rows[i].MaxCoreEDP = exec, edp
						for p := 1; p < len(configs); p++ {
							for j := range configs[p].Points {
								if configs[p].Points[j] != configs[p-1].Points[j] {
									rows[i].Transitions++
									break
								}
							}
						}
					}
				})
			}(i, m, pl, mode, meshSys)
		}
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// FormatPhased renders the extension study.
func FormatPhased(rows []PhasedRow) string {
	var b strings.Builder
	b.WriteString("Extension: static VFI 2 vs phase-adaptive DVFS controllers (mesh, vs NVFI mesh)\n")
	b.WriteString("  app      EDP static/mean/max-core   exec static/mean/max-core  transitions\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-8s %7.3f %7.3f %7.3f    %7.3f %7.3f %7.3f   %6d\n",
			r.App, r.StaticEDP, r.MeanEDP, r.MaxCoreEDP,
			r.ExecStatic, r.ExecMean, r.ExecMaxCore, r.Transitions)
	}
	return b.String()
}
