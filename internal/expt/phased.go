package expt

import (
	"fmt"
	"strings"

	"wivfi/internal/platform"
	"wivfi/internal/sim"
)

// PhasedRow compares the paper's static VFI 2 mesh system against the
// phase-adaptive DVFS extension on the same mesh platform.
type PhasedRow struct {
	App string
	// Static is the EDP ratio of the paper's static VFI 2 mesh system vs
	// the NVFI mesh baseline; Mean and MaxCore are the two phase-adaptive
	// controllers.
	StaticEDP  float64
	MeanEDP    float64
	MaxCoreEDP float64
	// Execution-time ratios for the same three systems.
	ExecStatic  float64
	ExecMean    float64
	ExecMaxCore float64
	// Transitions counts phase boundaries where at least one island moved
	// (max-core controller).
	Transitions int
}

// PhaseAdaptiveStudy runs the extension study: per-phase island V/F derived
// from the baseline phase profile. The mean-utilization controller throttles
// islands whose average is low — and stretches master-critical coordination
// phases; the bottleneck-aware max-core controller only throttles islands
// with no core on the critical path (Kmeans' idle half during iteration two
// is the showcase).
func (s *Suite) PhaseAdaptiveStudy() ([]PhasedRow, error) {
	var rows []PhasedRow
	table := platform.DefaultDVFSTable()
	err := s.ForEach(func(pl *Pipeline) error {
		meshSys, err := sim.VFIMesh(s.Config.Build, pl.Plan.VFI2, pl.Profile.Traffic)
		if err != nil {
			return err
		}
		row := PhasedRow{App: pl.App.Name}
		execStatic, _, staticEDP := pl.VFI2Mesh.Report.Relative(pl.Baseline.Report)
		row.ExecStatic, row.StaticEDP = execStatic, staticEDP
		for _, mode := range []sim.PhaseUtilMode{sim.PhaseUtilMean, sim.PhaseUtilMaxCore} {
			configs := sim.PhaseConfigs(pl.Baseline, pl.Plan.VFI2, table, s.Config.VFI.FreqMargin, mode)
			phased, err := sim.RunPhased(pl.Workload, meshSys, configs, sim.DefaultDVFSTransition())
			if err != nil {
				return err
			}
			exec, _, edp := phased.Report.Relative(pl.Baseline.Report)
			if mode == sim.PhaseUtilMean {
				row.ExecMean, row.MeanEDP = exec, edp
			} else {
				row.ExecMaxCore, row.MaxCoreEDP = exec, edp
				for i := 1; i < len(configs); i++ {
					for j := range configs[i].Points {
						if configs[i].Points[j] != configs[i-1].Points[j] {
							row.Transitions++
							break
						}
					}
				}
			}
		}
		rows = append(rows, row)
		return nil
	})
	return rows, err
}

// FormatPhased renders the extension study.
func FormatPhased(rows []PhasedRow) string {
	var b strings.Builder
	b.WriteString("Extension: static VFI 2 vs phase-adaptive DVFS controllers (mesh, vs NVFI mesh)\n")
	b.WriteString("  app      EDP static/mean/max-core   exec static/mean/max-core  transitions\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-8s %7.3f %7.3f %7.3f    %7.3f %7.3f %7.3f   %6d\n",
			r.App, r.StaticEDP, r.MeanEDP, r.MaxCoreEDP,
			r.ExecStatic, r.ExecMean, r.ExecMaxCore, r.Transitions)
	}
	return b.String()
}
