package expt

import (
	"fmt"

	"wivfi/internal/fidelity"
)

// PaperChecks returns the declarative scoreboard: every quantitative and
// categorical claim of the paper this reproduction tracks, with two
// tolerance bands. The tight band (pass) means the metric matches the paper;
// the wide band (warn) is the documented reproduction-quality envelope —
// EXPERIMENTS.md's damped deviations land there by design. Anything outside
// the wide band fails and gates -check, so the scoreboard distinguishes
// "known modeling gap" from "the reproduction broke".
func PaperChecks() []fidelity.Check {
	var checks []fidelity.Check
	add := func(c fidelity.Check) { checks = append(checks, c) }

	// Abstract headline numbers. The analytic platform damps the savings
	// (19%/51% vs the paper's 33.7%/66.2%), so these sit in the warn band;
	// the categorical claims (largest saving on kmeans) hold exactly.
	add(fidelity.Check{
		ID:      "headline.avg_edp_saving",
		Detail:  "average WiNoC EDP saving vs NVFI mesh (paper: 33.7%)",
		Section: "summary", Row: "headline", Value: "avg_edp_saving_pct",
		Kind: fidelity.Near, Want: 33.7, PassTol: 5, WarnTol: 25,
	})
	add(fidelity.Check{
		ID:      "headline.max_edp_saving",
		Detail:  "maximum WiNoC EDP saving (paper: 66.2% on kmeans)",
		Section: "summary", Row: "headline", Value: "max_edp_saving_pct",
		Kind: fidelity.Near, Want: 66.2, PassTol: 8, WarnTol: 25,
	})
	add(fidelity.Check{
		ID:      "headline.max_edp_saving_app",
		Detail:  "benchmark with the largest EDP saving (paper: kmeans)",
		Section: "summary", Row: "headline", Value: "max_edp_saving_app",
		Kind: fidelity.LabelIs, WantLabel: "kmeans",
	})
	add(fidelity.Check{
		ID:      "headline.max_exec_penalty",
		Detail:  "maximum execution-time penalty of the WiNoC (paper: 3.22%)",
		Section: "summary", Row: "headline", Value: "max_exec_penalty_pct",
		Kind: fidelity.AtMost, Want: 3.22, WarnTol: 4.78,
	})

	// Fig. 8: on every benchmark the WiNoC beats the mesh on EDP, and the
	// VFI mesh itself never loses to the NVFI baseline.
	for _, app := range AppOrder {
		add(fidelity.Check{
			ID:      "fig8." + app + ".winoc_beats_mesh",
			Detail:  "VFI WiNoC EDP below VFI mesh EDP (Fig. 8)",
			Section: "fig8", Row: app, Value: "edp_winoc",
			Kind: fidelity.LessThanMetric, OtherValue: "edp_mesh",
		})
		add(fidelity.Check{
			ID:      "fig8." + app + ".mesh_saves",
			Detail:  "VFI mesh EDP at or below the NVFI baseline (Fig. 8)",
			Section: "fig8", Row: app, Value: "edp_mesh",
			Kind: fidelity.AtMost, Want: 1.0, WarnTol: 0.05,
		})
	}

	// Fig. 4: VFI 2 never executes slower than VFI 1 (the re-assignment
	// raises frequencies), and its EDP still beats the NVFI baseline.
	for _, app := range Fig4Apps {
		add(fidelity.Check{
			ID:      "fig4." + app + ".vfi2_not_slower",
			Detail:  "VFI 2 execution time at or below VFI 1 (Fig. 4)",
			Section: "fig4", Row: app, Value: "exec_vfi2",
			Kind: fidelity.LessThanMetric, OtherValue: "exec_vfi1",
			PassTol: 1e-9,
		})
		add(fidelity.Check{
			ID:      "fig4." + app + ".vfi2_saves",
			Detail:  "VFI 2 EDP at or below the NVFI baseline (Fig. 4)",
			Section: "fig4", Row: app, Value: "edp_vfi2",
			Kind: fidelity.AtMost, Want: 1.0, WarnTol: 0.02,
		})
	}

	// Fig. 5: bottleneck severity orders pca > mm > hist, the reason pca
	// alone stays homogeneous in Table 2.
	add(fidelity.Check{
		ID:      "fig5.mm_below_pca",
		Detail:  "bottleneck/average utilization ratio: mm below pca (Fig. 5)",
		Section: "fig5", Row: "mm", Value: "ratio",
		Kind: fidelity.LessThanMetric, OtherRow: "pca",
	})
	add(fidelity.Check{
		ID:      "fig5.hist_below_mm",
		Detail:  "bottleneck/average utilization ratio: hist below mm (Fig. 5)",
		Section: "fig5", Row: "hist", Value: "ratio",
		Kind: fidelity.LessThanMetric, OtherRow: "mm",
	})

	// Fig. 6: the max-wireless-utilization placement stays within a few
	// percent of min-hop on every benchmark (paper band 0.90-1.00; this
	// reproduction lands 0.95-1.10, deviation 2 of EXPERIMENTS.md).
	for _, app := range AppOrder {
		add(fidelity.Check{
			ID:      "fig6." + app + ".ratio",
			Detail:  "max-wireless vs min-hop network EDP ratio near parity (Fig. 6)",
			Section: "fig6", Row: app, Value: "ratio",
			Kind: fidelity.Near, Want: 1.0, PassTol: 0.12, WarnTol: 0.2,
		})
	}

	// Table 2: the design flow reproduces the paper's V/F multisets exactly,
	// and only the three nearly-homogeneous benchmarks get a re-assignment.
	wantVFI1 := map[string]string{
		"mm": "2.25 2.25 2.5 2.5", "hist": "2.25 2.25 2.5 2.5",
		"kmeans": "1.5 1.5 2 2", "wc": "2 2 2.5 2.5",
		"pca": "2.25 2.25 2.25 2.25", "lr": "2.25 2.25 2.5 2.5",
	}
	wantVFI2 := map[string]string{
		"mm": "2.25 2.5 2.5 2.5", "hist": "2.25 2.5 2.5 2.5",
		"kmeans": "1.5 1.5 2 2", "wc": "2 2 2.5 2.5",
		"pca": "2.25 2.25 2.25 2.5", "lr": "2.25 2.25 2.5 2.5",
	}
	raised := map[string]float64{"mm": 1, "hist": 1, "pca": 1}
	for _, app := range AppOrder {
		add(fidelity.Check{
			ID:      "table2." + app + ".vfi1",
			Detail:  "VFI 1 frequency multiset matches Table 2",
			Section: "table2", Row: app, Value: "vfi1_ghz",
			Kind: fidelity.LabelIs, WantLabel: wantVFI1[app],
		})
		add(fidelity.Check{
			ID:      "table2." + app + ".vfi2",
			Detail:  "VFI 2 frequency multiset matches Table 2",
			Section: "table2", Row: app, Value: "vfi2_ghz",
			Kind: fidelity.LabelIs, WantLabel: wantVFI2[app],
		})
		add(fidelity.Check{
			ID:      "table2." + app + ".raised",
			Detail:  "number of re-assigned islands matches Table 2",
			Section: "table2", Row: app, Value: "raised",
			Kind: fidelity.Near, Want: raised[app],
		})
	}

	// Section 7.2: (3,1) always yields lower network EDP than (2,2).
	for _, app := range AppOrder {
		add(fidelity.Check{
			ID:      "kintra." + app + ".31_wins",
			Detail:  "(k_intra,k_inter)=(3,1) network EDP below (2,2) (Section 7.2)",
			Section: "kintra", Row: app, Value: "edp31",
			Kind: fidelity.LessThanMetric, OtherValue: "edp22",
			WarnTol: 0.10,
		})
	}

	// Section 4.3: the Word Count case study's task-duration statistics and
	// stealing behaviour. Bounds are the paper's measured ranges plus the
	// calibration slack the suite's own tests allow.
	steal := func(id, detail, value string, kind fidelity.CheckKind, want, passTol, warnTol float64) {
		add(fidelity.Check{
			ID: "stealing." + id, Detail: detail,
			Section: "stealing", Row: "wc", Value: value,
			Kind: kind, Want: want, PassTol: passTol, WarnTol: warnTol,
		})
	}
	steal("f1_avg", "f1 task duration average (paper: 0.270 s)", "f1_avg",
		fidelity.Near, 0.270, 0.015, 0.03)
	steal("f2_avg", "f2 task duration average (paper: 0.320 s)", "f2_avg",
		fidelity.Near, 0.320, 0.02, 0.04)
	steal("f1_min", "f1 duration range lower edge (paper: 0.268 s)", "f1_min",
		fidelity.AtLeast, 0.262, 0, 0.01)
	steal("f1_max", "f1 duration range upper edge (paper: 0.284 s)", "f1_max",
		fidelity.AtMost, 0.292, 0, 0.01)
	steal("f2_min", "f2 duration range lower edge (paper: 0.280 s)", "f2_min",
		fidelity.AtLeast, 0.272, 0, 0.01)
	steal("f2_max", "f2 duration range upper edge (paper: 0.342 s)", "f2_max",
		fidelity.AtMost, 0.350, 0, 0.01)
	steal("nf", "Eq. 3 steal cap for the slow cores (Nf = 1)", "nf",
		fidelity.Near, 1, 0, 0)
	steal("capped_steals", "the cap eliminates slow-core steals", "capped_steals",
		fidelity.AtMost, 0, 0, 0)
	add(fidelity.Check{
		ID:      "stealing.default_helps",
		Detail:  "default stealing improves the no-stealing makespan (Section 4.3)",
		Section: "stealing", Row: "wc", Value: "makespan_default",
		Kind: fidelity.LessThanMetric, OtherValue: "makespan_nosteal",
	})
	add(fidelity.Check{
		ID:      "stealing.cap_cheap",
		Detail:  "capping costs at most 2% makespan vs default stealing (Section 4.3)",
		Section: "stealing", Row: "wc", Value: "makespan_capped",
		Kind: fidelity.LessThanMetric, OtherValue: "makespan_default",
		PassTol: 0.02,
	})

	// Extension invariant: the WiNoC degrades gracefully as wireless
	// interfaces fail — all 12 WIs out costs at most 10% EDP.
	add(fidelity.Check{
		ID: "wifail.graceful",
		Detail: fmt.Sprintf("EDP with all %d WIs failed within 10%% of healthy",
			DefaultWIFailures[len(DefaultWIFailures)-1]),
		Section: "wifail",
		Row:     fmt.Sprintf("%s/%d", DefaultWIFailureApp, DefaultWIFailures[len(DefaultWIFailures)-1]),
		Value:   "edp_ratio",
		Kind:    fidelity.AtMost, Want: 1.10, WarnTol: 0.10,
	})

	// Closed-loop governor invariants. The cap checks are hard (PassTol 0,
	// no warn band): the admission rule proves measured power can never
	// exceed the admitted worst-case bound, and the bound never exceeds
	// the cap, so any excursion at all means the governor broke.
	for _, app := range AppOrder {
		add(fidelity.Check{
			ID:      "governor." + app + ".cap_respected",
			Detail:  fmt.Sprintf("capped governor's measured core power stays under %.0f W", DefaultGovernorCapW),
			Section: "governor", Row: app, Value: "max_power_cap_w",
			Kind: fidelity.AtMost, Want: DefaultGovernorCapW,
		})
		add(fidelity.Check{
			ID:      "governor." + app + ".no_violations",
			Detail:  "capped governor admitted every decision under the cap",
			Section: "governor", Row: app, Value: "violations",
			Kind: fidelity.AtMost, Want: 0,
		})
		add(fidelity.Check{
			ID:      "governor." + app + ".util_beats_static",
			Detail:  "utilization governor's EDP at or below the static plan's",
			Section: "governor", Row: app, Value: "edp_util",
			Kind: fidelity.LessThanMetric, OtherValue: "edp_static",
			PassTol: 0.01, WarnTol: 0.05,
		})
	}

	return checks
}
