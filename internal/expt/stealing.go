package expt

import (
	"fmt"
	"strings"

	"wivfi/internal/sched"
)

// StealingStudy reproduces the Word Count case study of Section 4.3: 100
// map tasks on 64 cores, half at f1 = 2.5 GHz and half at f2 = 2.0 GHz,
// with per-task durations matching the paper's measured ranges
// (0.268-0.284 s at f1, 0.280-0.342 s at f2).
type StealingStudy struct {
	// Duration ranges per frequency class (seconds).
	F1Min, F1Max, F1Avg float64
	F2Min, F2Max, F2Avg float64
	// Makespans under the three policies.
	MakespanNoSteal float64
	MakespanDefault float64
	MakespanCapped  float64
	// Nf is the Eq. 3 cap for the slow cores.
	Nf int
	// SlowSteals counts tasks stolen by slow cores under the default
	// policy (the behaviour the cap eliminates).
	DefaultSteals int
	CappedSteals  int
}

// RunStealingStudy executes the case study.
func RunStealingStudy() (StealingStudy, error) {
	const (
		numTasks = 100
		numCores = 64
		f1, f2   = 2.5, 2.0
	)
	// 0.5 Gcycles +-7.5% plus a 72 ms frequency-independent stall
	// reproduces the paper's measured duration ranges (see sched docs).
	tasks := sched.UniformTasks(numTasks, 0.495e9, 0.075, 0.072)
	freqs := make([]float64, numCores)
	for c := range freqs {
		if c < numCores/2 {
			freqs[c] = f1
		} else {
			freqs[c] = f2
		}
	}
	var st StealingStudy
	st.F1Min, st.F2Min = 1e9, 1e9
	var sum1, sum2 float64
	for _, t := range tasks {
		d1 := t.Cycles/(f1*1e9) + t.FixedSec
		d2 := t.Cycles/(f2*1e9) + t.FixedSec
		st.F1Min = min(st.F1Min, d1)
		st.F1Max = max(st.F1Max, d1)
		st.F2Min = min(st.F2Min, d2)
		st.F2Max = max(st.F2Max, d2)
		sum1 += d1
		sum2 += d2
	}
	st.F1Avg = sum1 / numTasks
	st.F2Avg = sum2 / numTasks
	st.Nf = sched.Caps(numTasks, freqs)[numCores-1]

	assign := sched.DealRoundRobin(numTasks, numCores)
	for _, run := range []struct {
		policy sched.Policy
		span   *float64
		steals *int
	}{
		{sched.NoStealing, &st.MakespanNoSteal, nil},
		{sched.DefaultStealing, &st.MakespanDefault, &st.DefaultSteals},
		{sched.CapVFI, &st.MakespanCapped, &st.CappedSteals},
	} {
		res, err := sched.RunPhase(tasks, assign, freqs, run.policy, 0)
		if err != nil {
			return StealingStudy{}, err
		}
		*run.span = res.MakespanSec
		if run.steals != nil {
			*run.steals = res.Steals
		}
	}
	return st, nil
}

// FormatStealing renders the case study next to the paper's numbers.
func FormatStealing(st StealingStudy) string {
	var b strings.Builder
	b.WriteString("Section 4.3: Word Count task-stealing case study (100 tasks, 64 cores, f1=2.5 f2=2.0)\n")
	fmt.Fprintf(&b, "  f1 task duration: %.3f-%.3f s avg %.3f (paper: 0.268-0.284, avg 0.270)\n",
		st.F1Min, st.F1Max, st.F1Avg)
	fmt.Fprintf(&b, "  f2 task duration: %.3f-%.3f s avg %.3f (paper: 0.280-0.342, avg 0.320)\n",
		st.F2Min, st.F2Max, st.F2Avg)
	fmt.Fprintf(&b, "  Eq. 3 cap for f2 cores: Nf = %d\n", st.Nf)
	fmt.Fprintf(&b, "  makespan: no-steal %.3f s, default %.3f s (%d steals), capped %.3f s (%d steals)\n",
		st.MakespanNoSteal, st.MakespanDefault, st.DefaultSteals, st.MakespanCapped, st.CappedSteals)
	return b.String()
}

func min(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func max(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
