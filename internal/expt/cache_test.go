package expt

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
)

func TestDesignCacheRoundTrip(t *testing.T) {
	s := sharedSuite(t)
	pl, err := s.Pipeline("mm")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := saveDesign(dir, s.Config, "mm", pl.Profile, pl.Plan); err != nil {
		t.Fatal(err)
	}
	prof, plan, outcome := loadDesign(dir, s.Config, "mm")
	if outcome != cacheHit {
		t.Fatalf("outcome = %v immediately after save, want cacheHit", outcome)
	}
	if !reflect.DeepEqual(prof, pl.Profile) {
		t.Error("profile changed across the cache round trip")
	}
	if !reflect.DeepEqual(plan, pl.Plan) {
		t.Errorf("plan changed across the cache round trip:\nsaved:  %+v\nloaded: %+v", pl.Plan, plan)
	}
}

// TestConcurrentSaveDesignSameKey races many writers of one cache key —
// the serving layer's singleflight makes duplicate writes rare but cannot
// rule them out across processes. Every writer must succeed (losing the
// rename race is success), the surviving entry must load as a clean hit
// with the exact artifacts, and no temp directories may leak.
func TestConcurrentSaveDesignSameKey(t *testing.T) {
	s := sharedSuite(t)
	pl, err := s.Pipeline("mm")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	const writers = 16
	errs := make([]error, writers)
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = saveDesign(dir, s.Config, "mm", pl.Profile, pl.Plan)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("writer %d: %v", i, err)
		}
	}
	prof, plan, outcome := loadDesign(dir, s.Config, "mm")
	if outcome != cacheHit {
		t.Fatalf("outcome = %v after %d racing writers, want cacheHit", outcome, writers)
	}
	if !reflect.DeepEqual(prof, pl.Profile) || !reflect.DeepEqual(plan, pl.Plan) {
		t.Error("artifacts damaged by racing writers")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".tmp-") {
			t.Errorf("temp directory %s leaked", e.Name())
		}
	}
	if len(entries) != 1 {
		t.Errorf("%d cache entries after racing same-key writers, want 1", len(entries))
	}
}

// TestSaveDesignNeverExposesPartialEntries: while a writer is mid-save, a
// concurrent reader sees either nothing (miss) or the complete entry (hit)
// — never the corrupt classification that a torn multi-file write used to
// produce.
func TestSaveDesignNeverExposesPartialEntries(t *testing.T) {
	s := sharedSuite(t)
	pl, err := s.Pipeline("mm")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	stop := make(chan struct{})
	var readerWG sync.WaitGroup
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, _, outcome := loadDesign(dir, s.Config, "mm"); outcome == cacheCorrupt {
				t.Error("reader observed a partially written entry")
				return
			}
		}
	}()
	for i := 0; i < 8; i++ {
		if err := saveDesign(dir, s.Config, "mm", pl.Profile, pl.Plan); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	readerWG.Wait()
}

func TestCacheKeySensitivity(t *testing.T) {
	cfg := DefaultConfig()
	base, err := cacheKey(cfg, "mm")
	if err != nil {
		t.Fatal(err)
	}
	otherApp, err := cacheKey(cfg, "wc")
	if err != nil {
		t.Fatal(err)
	}
	if base == otherApp {
		t.Error("different benchmarks share a cache key")
	}
	cfg2 := cfg
	cfg2.VFI.FreqMargin += 0.01
	otherCfg, err := cacheKey(cfg2, "mm")
	if err != nil {
		t.Fatal(err)
	}
	if base == otherCfg {
		t.Error("changing the config did not change the cache key")
	}
	again, err := cacheKey(DefaultConfig(), "mm")
	if err != nil {
		t.Fatal(err)
	}
	if base != again {
		t.Error("cache key not stable for identical inputs")
	}
}

func TestCorruptCacheEntryIsAMiss(t *testing.T) {
	s := sharedSuite(t)
	pl, err := s.Pipeline("mm")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := saveDesign(dir, s.Config, "mm", pl.Profile, pl.Plan); err != nil {
		t.Fatal(err)
	}
	ed, err := entryDir(dir, s.Config, "mm")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(ed, "plan.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, outcome := loadDesign(dir, s.Config, "mm"); outcome != cacheCorrupt {
		t.Errorf("corrupt plan.json classified %v, want cacheCorrupt", outcome)
	}
	// The damaged entry must have been evicted, so the next load is a
	// clean miss rather than corrupt again.
	if _, err := os.Stat(ed); !os.IsNotExist(err) {
		t.Errorf("corrupt entry not evicted from disk (stat err = %v)", err)
	}
	if _, _, outcome := loadDesign(dir, s.Config, "mm"); outcome != cacheMiss {
		t.Errorf("post-eviction load classified %v, want cacheMiss", outcome)
	}
}

// TestCacheStatsClassifyOutcomes drives a suite through a miss, a hit and a
// corrupt eviction and checks the per-suite tallies surfaced to the
// reproduce summary and manifest.
func TestCacheStatsClassifyOutcomes(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a pipeline three times")
	}
	dir := t.TempDir()
	cfg := DefaultConfig()

	s1 := NewSuite(cfg, WithCacheDir(dir))
	if _, err := s1.Pipeline("wc"); err != nil {
		t.Fatal(err)
	}
	if got := s1.CacheStats(); got != (CacheStats{Misses: 1}) {
		t.Errorf("cold suite stats = %+v, want 1 miss", got)
	}

	s2 := NewSuite(cfg, WithCacheDir(dir))
	if _, err := s2.Pipeline("wc"); err != nil {
		t.Fatal(err)
	}
	if got := s2.CacheStats(); got != (CacheStats{Hits: 1}) {
		t.Errorf("warm suite stats = %+v, want 1 hit", got)
	}

	ed, err := entryDir(dir, cfg, "wc")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(filepath.Join(ed, "vfi2.json"), 3); err != nil {
		t.Fatal(err)
	}
	s3 := NewSuite(cfg, WithCacheDir(dir))
	if _, err := s3.Pipeline("wc"); err != nil {
		t.Fatal(err)
	}
	if got := s3.CacheStats(); got != (CacheStats{CorruptEvicted: 1}) {
		t.Errorf("corrupt-entry suite stats = %+v, want 1 corrupt eviction", got)
	}
}

// TestSuiteUsesDesignCache: a second suite sharing a cache directory skips
// the probe run and anneal (FromCache) yet reproduces the exact results of
// the suite that populated it.
func TestSuiteUsesDesignCache(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a pipeline twice")
	}
	dir := t.TempDir()
	cfg := DefaultConfig()

	s1 := NewSuite(cfg, WithCacheDir(dir))
	pl1, err := s1.Pipeline("wc")
	if err != nil {
		t.Fatal(err)
	}
	if pl1.FromCache {
		t.Error("cold cache reported a hit")
	}

	s2 := NewSuite(cfg, WithCacheDir(dir))
	pl2, err := s2.Pipeline("wc")
	if err != nil {
		t.Fatal(err)
	}
	if !pl2.FromCache {
		t.Fatal("warm cache missed")
	}
	if !reflect.DeepEqual(pl2.Plan, pl1.Plan) {
		t.Error("cached plan differs from the computed plan")
	}
	if !reflect.DeepEqual(pl2.Profile, pl1.Profile) {
		t.Error("cached profile differs from the computed profile")
	}
	if !reflect.DeepEqual(pl2.Baseline.Report, pl1.Baseline.Report) {
		t.Error("baseline run differs when built from the cache")
	}
	if !reflect.DeepEqual(pl2.VFI2Mesh.Report, pl1.VFI2Mesh.Report) {
		t.Error("VFI2 mesh run differs when built from the cache")
	}
	if pl2.BestStrategy != pl1.BestStrategy {
		t.Errorf("best strategy flipped from %v to %v under the cache", pl1.BestStrategy, pl2.BestStrategy)
	}
}
