package expt

import (
	"os"
	"path/filepath"
	"testing"

	"wivfi/internal/fidelity"
)

// TestCommittedBaseline diffs a live snapshot against the golden baseline
// committed at testdata/fidelity-baseline.json (repo root). The tolerance is
// loose (1e-3 relative) so legitimate cross-machine floating-point drift
// never trips it; anything it catches is a real model change. When a change
// is intentional, regenerate with:
//
//	go run ./cmd/reproduce -cache "" -snapshot testdata/fidelity-baseline.json
func TestCommittedBaseline(t *testing.T) {
	path := filepath.Join("..", "..", "testdata", "fidelity-baseline.json")
	if _, err := os.Stat(path); err != nil {
		t.Skipf("no committed baseline: %v", err)
	}
	base, err := fidelity.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	snap := fullSnapshot(t)
	if base.ConfigHash != snap.ConfigHash {
		t.Fatalf("baseline config hash %s != current %s — regenerate the baseline (see test comment)",
			base.ConfigHash, snap.ConfigHash)
	}
	d := fidelity.Diff(snap, base, fidelity.DiffOptions{RelTol: 1e-3, AbsTol: 1e-6})
	for _, f := range d.Regressions() {
		t.Errorf("drift from committed baseline: %s", f)
	}
	if t.Failed() {
		t.Log("if the change is intentional: go run ./cmd/reproduce -cache \"\" -snapshot testdata/fidelity-baseline.json")
	}
}
