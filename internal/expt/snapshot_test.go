package expt

import (
	"encoding/json"
	"path/filepath"
	"sync"
	"testing"

	"wivfi/internal/fidelity"
	"wivfi/internal/platform"
)

var (
	fullSnapOnce sync.Once
	fullSnap     *fidelity.Snapshot
	fullSnapErr  error
)

// fullSnapshot collects the complete snapshot once for the whole package;
// every study it runs is also exercised individually by the older tests, so
// the marginal cost is one extra pass over the already-warm pipelines.
func fullSnapshot(t *testing.T) *fidelity.Snapshot {
	t.Helper()
	if testing.Short() {
		t.Skip("full snapshot collection is slow")
	}
	s := sharedSuite(t)
	fullSnapOnce.Do(func() { fullSnap, fullSnapErr = CollectSnapshot(s) })
	if fullSnapErr != nil {
		t.Fatal(fullSnapErr)
	}
	return fullSnap
}

func TestGHzMultiset(t *testing.T) {
	pts := []platform.OperatingPoint{
		{VoltageV: 1.0, FreqGHz: 2.5},
		{VoltageV: 0.9, FreqGHz: 2.0},
		{VoltageV: 1.0, FreqGHz: 2.5},
		{VoltageV: 0.95, FreqGHz: 2.25},
	}
	if got, want := GHzMultiset(pts), "2 2.25 2.5 2.5"; got != want {
		t.Errorf("GHzMultiset = %q, want %q", got, want)
	}
}

// TestSnapshotCoverage pins the snapshot's shape: every figure, table and
// study of the reproduction is present, with the expected rows. A section
// silently dropping out of the snapshot would otherwise only be caught by
// the scoreboard's missing-metric failures.
func TestSnapshotCoverage(t *testing.T) {
	snap := fullSnapshot(t)

	if snap.Schema != fidelity.SchemaVersion {
		t.Errorf("schema = %d, want %d", snap.Schema, fidelity.SchemaVersion)
	}
	if snap.ConfigHash != ConfigHash(sharedSuite(t).Config) {
		t.Errorf("config hash %q does not match the suite config", snap.ConfigHash)
	}

	wantRows := map[string]int{
		"table1":   len(AppOrder),
		"table2":   len(AppOrder),
		"fig2":     len(Fig2Apps),
		"fig4":     len(Fig4Apps),
		"fig5":     len(Fig4Apps),
		"fig6":     len(AppOrder),
		"fig7":     2 * len(AppOrder),
		"fig8":     len(AppOrder),
		"kintra":   len(AppOrder),
		"stealing": 1,
		"phased":   len(AppOrder),
		"wifail":   len(DefaultWIFailures),
		"margins":  len(DefaultMargins),
		"governor": len(AppOrder),
		"summary":  1,
	}
	if len(snap.Sections) != len(wantRows) {
		t.Errorf("snapshot has %d sections, want %d", len(snap.Sections), len(wantRows))
	}
	for id, want := range wantRows {
		sec := snap.Section(id)
		if sec == nil {
			t.Errorf("section %q missing", id)
			continue
		}
		if len(sec.Rows) != want {
			t.Errorf("section %q has %d rows, want %d", id, len(sec.Rows), want)
		}
	}

	// spot-check the row shapes consumers rely on
	for _, app := range Fig2Apps {
		r := snap.Section("fig2").Row(app)
		if r == nil || len(r.Series) != 64 {
			t.Errorf("fig2[%s] should carry the 64-point utilization series", app)
		}
	}
	for _, app := range AppOrder {
		if _, ok := snap.Label("fig8", app, "strategy"); !ok {
			t.Errorf("fig8[%s] missing the placement-strategy label", app)
		}
		if _, ok := snap.Label("table2", app, "vfi2_ghz"); !ok {
			t.Errorf("table2[%s] missing the vfi2_ghz multiset label", app)
		}
		if _, ok := snap.Metric("fig7", app+"/vfi-winoc", "total"); !ok {
			t.Errorf("fig7[%s/vfi-winoc].total missing", app)
		}
	}
	if _, ok := snap.Metric("wifail", "wc/12", "edp_ratio"); !ok {
		t.Error("wifail[wc/12].edp_ratio missing")
	}
	if _, ok := snap.Metric("margins", "kmeans/0.35", "edp_ratio"); !ok {
		t.Error("margins[kmeans/0.35].edp_ratio missing")
	}
	if _, ok := snap.Label("summary", "headline", "max_edp_saving_app"); !ok {
		t.Error("summary[headline].max_edp_saving_app missing")
	}
}

// TestSnapshotLeavesOutputUnchanged is the tentpole guarantee: collecting a
// snapshot must not perturb the rendered text in any way. Render, collect,
// render again — byte-identical.
func TestSnapshotLeavesOutputUnchanged(t *testing.T) {
	if testing.Short() {
		t.Skip("full snapshot collection is slow")
	}
	s := sharedSuite(t)
	render := func() string {
		rows8, err := s.Fig8()
		if err != nil {
			t.Fatal(err)
		}
		rows2, err := s.Table2()
		if err != nil {
			t.Fatal(err)
		}
		return FormatTable2(rows2) + FormatFig8(rows8) + FormatSummary(Summarize(rows8))
	}
	before := render()
	fullSnapshot(t)
	after := render()
	if before != after {
		t.Errorf("rendered output changed across CollectSnapshot:\nbefore:\n%s\nafter:\n%s", before, after)
	}
}

// TestSnapshotRoundTrip writes the snapshot to disk and reads it back.
func TestSnapshotRoundTrip(t *testing.T) {
	snap := fullSnapshot(t)
	path := filepath.Join(t.TempDir(), "snap.json")
	if err := fidelity.WriteFile(path, snap); err != nil {
		t.Fatal(err)
	}
	loaded, err := fidelity.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.ConfigHash != snap.ConfigHash {
		t.Errorf("config hash changed across round trip")
	}
	rep := fidelity.Diff(loaded, snap, fidelity.DiffOptions{})
	if regs := rep.Regressions(); len(regs) != 0 {
		t.Errorf("round-tripped snapshot diffs against itself: %v", regs)
	}
}

// TestPaperChecksAllGreen evaluates the scoreboard against a live snapshot:
// no check may fail. Warns are expected — the damped headline savings are
// documented deviations — but a fail means either the reproduction or the
// scoreboard's tolerances are broken, and -check would gate CI.
func TestPaperChecksAllGreen(t *testing.T) {
	snap := fullSnapshot(t)
	results := fidelity.Evaluate(snap, PaperChecks())
	tally := fidelity.Count(results)
	for _, r := range fidelity.Failures(results) {
		t.Errorf("check %s failed at %s: %s", r.ID, r.Addr(), r.Note)
	}
	if tally.Pass < 40 {
		t.Errorf("only %d checks pass (%d warn) — scoreboard coverage collapsed", tally.Pass, tally.Warn)
	}
}

// TestPaperChecksCatchTampering flips one metric and one label and expects
// the matching checks to fail — the scoreboard must actually be wired to the
// values it claims to guard.
func TestPaperChecksCatchTampering(t *testing.T) {
	snap := fullSnapshot(t)
	blob, err := snap.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	tampered := tamper(t, blob, func(s *fidelity.Snapshot) {
		s.Section("fig8").Row("kmeans").Values["edp_winoc"] = 2.0
		s.Section("table2").Row("pca").Labels["vfi2_ghz"] = "1.5 1.5 1.5 1.5"
	})
	failed := map[string]bool{}
	for _, r := range fidelity.Failures(fidelity.Evaluate(tampered, PaperChecks())) {
		failed[r.ID] = true
	}
	for _, id := range []string{"fig8.kmeans.winoc_beats_mesh", "table2.pca.vfi2"} {
		if !failed[id] {
			t.Errorf("tampering did not fail check %s (failed: %v)", id, failed)
		}
	}
}

func tamper(t *testing.T, blob []byte, mutate func(*fidelity.Snapshot)) *fidelity.Snapshot {
	t.Helper()
	var s fidelity.Snapshot
	if err := json.Unmarshal(blob, &s); err != nil {
		t.Fatal(err)
	}
	mutate(&s)
	return &s
}
