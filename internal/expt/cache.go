package expt

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync/atomic"

	"wivfi/internal/obs"
	"wivfi/internal/platform"
	"wivfi/internal/vfi"
)

// The design cache persists the two expensive, simulation-independent
// artifacts of a pipeline — the profiling run's platform.Profile and the
// vfi.Plan — keyed by a hash of the full experiment Config plus the
// benchmark name. Everything downstream (baseline and VFI system runs) is
// deterministic given those artifacts, so a cache hit reproduces the exact
// pipeline while skipping the probe simulation and the clustering anneal.
//
// Invalidation is purely key-based: any change to the Config (platform,
// models, VFI options) or to the schema version below produces a new key,
// and stale entries are simply never read again. Deleting the cache
// directory is always safe.

// cacheSchemaVersion is folded into every cache key; bump it when the
// meaning of the cached artifacts changes (e.g. the profile definition or
// the design flow itself).
const cacheSchemaVersion = 1

// Metric names registered below. Declared constants (enforced by
// wivfi-lint countersafe) so every lookup site shares one authoritative
// spelling.
const (
	MetricCacheHits           = "expt.cache.hits"
	MetricCacheMisses         = "expt.cache.misses"
	MetricCacheCorruptEvicted = "expt.cache.corrupt_evicted"
)

// Process-wide cache outcome counters (the per-Suite cacheStats below
// scope the same outcomes to one suite for its end-of-run summary).
var (
	cacheHitCounter     = obs.NewCounter(MetricCacheHits)
	cacheMissCounter    = obs.NewCounter(MetricCacheMisses)
	cacheCorruptCounter = obs.NewCounter(MetricCacheCorruptEvicted)
)

// cacheOutcome classifies one loadDesign attempt.
type cacheOutcome int

const (
	// cacheMiss: no entry on disk (or no usable key) — the clean cold path.
	cacheMiss cacheOutcome = iota
	// cacheHit: the full entry loaded and validated.
	cacheHit
	// cacheCorrupt: an entry existed but was unreadable, incomplete or
	// schema-mismatched; it has been evicted from disk.
	cacheCorrupt
)

// cacheStats counts one suite's cache outcomes.
type cacheStats struct {
	hits, misses, corrupt atomic.Int64
}

// count records one outcome on both the suite-local stats (when non-nil)
// and the process-wide counters.
func (s *cacheStats) count(o cacheOutcome) {
	switch o {
	case cacheHit:
		cacheHitCounter.Add(1)
		if s != nil {
			s.hits.Add(1)
		}
	case cacheMiss:
		cacheMissCounter.Add(1)
		if s != nil {
			s.misses.Add(1)
		}
	case cacheCorrupt:
		cacheCorruptCounter.Add(1)
		if s != nil {
			s.corrupt.Add(1)
		}
	}
}

// CacheStats is a point-in-time snapshot of a suite's design-cache
// outcomes, surfaced in the reproduce end-of-run summary and the run
// manifest.
type CacheStats struct {
	Hits           int64
	Misses         int64
	CorruptEvicted int64
}

// planMeta is the on-disk schema for the vfi.Plan fields that are not
// covered by the two VFIConfig files.
type planMeta struct {
	Version            int     `json:"version"`
	Bottlenecks        []int   `json:"bottlenecks"`
	RaisedIslands      []int   `json:"raised_islands"`
	ClusterCost        float64 `json:"cluster_cost"`
	HomogeneousPattern bool    `json:"homogeneous_pattern"`
}

// cacheKey hashes the configuration and benchmark name into the cache
// entry's directory name. Config is a tree of plain structs, so its JSON
// form is canonical (struct fields encode in declaration order). The
// optional extras salt the key for request dimensions that live outside
// the design-cache Config (the serving layer's governor knobs); with no
// extras the JSON blob — and therefore every existing key — is unchanged.
func cacheKey(cfg Config, appName string, extras ...string) (string, error) {
	blob, err := json.Marshal(struct {
		Schema int
		App    string
		Config Config
		Extras []string `json:",omitempty"`
	}{cacheSchemaVersion, appName, cfg, extras})
	if err != nil {
		return "", fmt.Errorf("expt: hashing config: %w", err)
	}
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:16]), nil
}

// entryDir is the directory holding one cache entry's files.
func entryDir(cacheDir string, cfg Config, appName string) (string, error) {
	key, err := cacheKey(cfg, appName)
	if err != nil {
		return "", err
	}
	return filepath.Join(cacheDir, appName+"-"+key), nil
}

// loadDesign returns the cached (profile, plan) for the key plus the
// outcome class. An absent entry is a clean miss; a present-but-damaged
// entry (unreadable file, incomplete write, schema mismatch, validation
// failure) is classified corrupt and evicted from disk so the rebuilt
// design is rewritten into a clean slot. Damage is never an error — it
// only costs recomputation.
func loadDesign(cacheDir string, cfg Config, appName string) (platform.Profile, vfi.Plan, cacheOutcome) {
	dir, err := entryDir(cacheDir, cfg, appName)
	if err != nil {
		return platform.Profile{}, vfi.Plan{}, cacheMiss
	}
	// The profile is written first and read first: if it does not exist
	// the entry was never (fully) created — a clean miss. Any later
	// failure means a damaged entry.
	corrupt := func() (platform.Profile, vfi.Plan, cacheOutcome) {
		os.RemoveAll(dir) // best effort; a read-only cache just stays damaged
		return platform.Profile{}, vfi.Plan{}, cacheCorrupt
	}
	prof, err := platform.LoadProfile(filepath.Join(dir, "profile.json"))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return platform.Profile{}, vfi.Plan{}, cacheMiss
		}
		return corrupt()
	}
	vfi1, err := platform.LoadVFIConfig(filepath.Join(dir, "vfi1.json"))
	if err != nil {
		return corrupt()
	}
	vfi2, err := platform.LoadVFIConfig(filepath.Join(dir, "vfi2.json"))
	if err != nil {
		return corrupt()
	}
	raw, err := os.ReadFile(filepath.Join(dir, "plan.json"))
	if err != nil {
		return corrupt()
	}
	var meta planMeta
	if err := json.Unmarshal(raw, &meta); err != nil || meta.Version != cacheSchemaVersion {
		return corrupt()
	}
	plan := vfi.Plan{
		VFI1:               vfi1,
		VFI2:               vfi2,
		Bottlenecks:        meta.Bottlenecks,
		RaisedIslands:      meta.RaisedIslands,
		ClusterCost:        meta.ClusterCost,
		HomogeneousPattern: meta.HomogeneousPattern,
	}
	return prof, plan, cacheHit
}

// saveDesign writes one cache entry, best-effort: it returns the first
// error for observability (tests, logging) but callers may ignore it — a
// failed write only costs future recomputation.
//
// The entry is crash-safe and race-safe as a unit: all four files are
// written into a hidden temp directory which is then renamed into place,
// so a reader can never observe a partially written entry (a crash leaves
// only an ignored .tmp-* directory) and concurrent writers of the same key
// race on the final rename — the loser detects the winner's entry, which
// holds identical content, and quietly discards its own.
func saveDesign(cacheDir string, cfg Config, appName string, prof platform.Profile, plan vfi.Plan) error {
	dir, err := entryDir(cacheDir, cfg, appName)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(cacheDir, 0o755); err != nil {
		return err
	}
	tmp, err := os.MkdirTemp(cacheDir, ".tmp-"+filepath.Base(dir)+"-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)
	if err := platform.SaveProfile(filepath.Join(tmp, "profile.json"), prof); err != nil {
		return err
	}
	if err := platform.SaveVFIConfig(filepath.Join(tmp, "vfi1.json"), plan.VFI1); err != nil {
		return err
	}
	if err := platform.SaveVFIConfig(filepath.Join(tmp, "vfi2.json"), plan.VFI2); err != nil {
		return err
	}
	blob, err := json.Marshal(planMeta{
		Version:            cacheSchemaVersion,
		Bottlenecks:        plan.Bottlenecks,
		RaisedIslands:      plan.RaisedIslands,
		ClusterCost:        plan.ClusterCost,
		HomogeneousPattern: plan.HomogeneousPattern,
	})
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(tmp, "plan.json"), blob, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, dir); err != nil {
		if _, statErr := os.Stat(filepath.Join(dir, "plan.json")); statErr == nil {
			// A racing writer of the same key won the rename. Its entry was
			// computed from the same (cfg, app), so the content matches ours
			// — losing the race is success.
			return nil
		}
		return err
	}
	return nil
}

// ConfigHash returns the short hex digest identifying cfg — the same
// SHA-256-based key that scopes the design cache, computed without a
// benchmark name. Run manifests carry it so before/after comparisons can
// verify they measured the same configuration.
func ConfigHash(cfg Config) string {
	key, err := cacheKey(cfg, "")
	if err != nil {
		return ""
	}
	return key
}

// RequestKey returns the short hex digest identifying one (config,
// benchmark) pair — the exact key that scopes the design cache entry. The
// serving layer uses it as the singleflight and result-store key, so a
// request is deduplicated precisely when it would reuse the same cache
// entry. Extras salt the key for request dimensions the design cache does
// not know about (governor policy and cap): governed and static requests
// must never collide in the flight map or the result memo even though
// they share one design-cache entry. No extras reproduces the historical
// key exactly.
func RequestKey(cfg Config, appName string, extras ...string) string {
	key, err := cacheKey(cfg, appName, extras...)
	if err != nil {
		return ""
	}
	return key
}

// DefaultCacheDir returns the conventional location of the design cache
// (under the user cache directory), or "" when no user cache directory is
// available — callers treat "" as cache-disabled.
func DefaultCacheDir() string {
	base, err := os.UserCacheDir()
	if err != nil {
		return ""
	}
	return filepath.Join(base, "wivfi", "pipelines")
}
