package expt

import (
	"fmt"
	"strings"
	"sync"

	"wivfi/internal/sim"
	"wivfi/internal/topo"
)

// networkEDP aggregates a run's network energy-delay product: each phase
// contributes its network energy times its average packet latency, the
// figure of merit Section 7.2 optimizes.
func networkEDP(res *sim.RunResult) float64 {
	var edp float64
	for _, ph := range res.Phases {
		edp += ph.NetJ * ph.NetLatencyCycles
	}
	return edp
}

// Fig6Row is one benchmark of Fig. 6: the network EDP of the
// maximized-wireless-utilization placement relative to the minimized
// hop-count placement.
type Fig6Row struct {
	App string
	// Ratio < 1 means max-wireless wins, as the paper reports for all
	// benchmarks (0.90-1.00).
	Ratio float64
	// WirelessEDP and MinHopEDP are the absolute network EDPs (J x cycles).
	WirelessEDP, MinHopEDP float64
}

// Fig6 reproduces the placement-strategy comparison.
func (s *Suite) Fig6() ([]Fig6Row, error) {
	var rows []Fig6Row
	err := s.ForEach(func(pl *Pipeline) error {
		maxW := networkEDP(pl.WiNoC[sim.MaxWireless])
		minH := networkEDP(pl.WiNoC[sim.MinHop])
		rows = append(rows, Fig6Row{
			App:         pl.App.Name,
			Ratio:       maxW / minH,
			WirelessEDP: maxW,
			MinHopEDP:   minH,
		})
		return nil
	})
	return rows, err
}

// FormatFig6 renders the strategy comparison.
func FormatFig6(rows []Fig6Row) string {
	var b strings.Builder
	b.WriteString("Fig. 6. Network EDP: max-wireless-utilization relative to min-hop-count placement\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-8s ratio=%.3f\n", r.App, r.Ratio)
	}
	return b.String()
}

// KIntraRow is one benchmark of the Section 7.2 parameter study: the WiNoC
// with (k_intra, k_inter) = (3,1) versus (2,2).
type KIntraRow struct {
	App string
	// EDP31 and EDP22 are network EDPs under the two configurations.
	EDP31, EDP22 float64
	// Exec31 and Exec22 are full execution times (seconds).
	Exec31, Exec22 float64
}

// KIntraSweep reproduces the (3,1)-vs-(2,2) finding: the paper reports
// (3,1) always performs better. The twelve (app × configuration) WiNoC
// simulations are independent, so they fan out over the suite's pool; the
// row order stays AppOrder regardless of completion order.
func (s *Suite) KIntraSweep() ([]KIntraRow, error) {
	if err := s.Prewarm(AppOrder...); err != nil {
		return nil, err
	}
	rows := make([]KIntraRow, len(AppOrder))
	variants := []struct{ kIntra, kInter float64 }{{3, 1}, {2, 2}}
	errs := make([]error, len(AppOrder)*len(variants))
	var wg sync.WaitGroup
	for i, name := range AppOrder {
		pl, err := s.Pipeline(name)
		if err != nil {
			return nil, err
		}
		rows[i].App = pl.App.Name
		for v, variant := range variants {
			wg.Add(1)
			go func(i, v int, pl *Pipeline, kIntra, kInter float64) {
				defer wg.Done()
				s.pool.DoNamed("sim:kintra-sweep", pl.App.Name, func() {
					cfg := s.Config.Build
					cfg.SmallWorld.KIntra = kIntra
					cfg.SmallWorld.KInter = kInter
					sys, err := sim.VFIWiNoC(cfg, pl.Plan.VFI2, pl.Profile.Traffic, pl.BestStrategy)
					if err != nil {
						errs[i*len(variants)+v] = err
						return
					}
					res, err := sim.Run(pl.Workload, sys)
					if err != nil {
						errs[i*len(variants)+v] = err
						return
					}
					if v == 0 {
						rows[i].EDP31 = networkEDP(res)
						rows[i].Exec31 = res.Report.ExecSeconds
					} else {
						rows[i].EDP22 = networkEDP(res)
						rows[i].Exec22 = res.Report.ExecSeconds
					}
				})
			}(i, v, pl, variant.kIntra, variant.kInter)
		}
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// FormatKIntra renders the parameter study.
func FormatKIntra(rows []KIntraRow) string {
	var b strings.Builder
	b.WriteString("Section 7.2: (k_intra,k_inter) = (3,1) vs (2,2), network EDP and execution time\n")
	for _, r := range rows {
		verdict := "(3,1) wins"
		if r.EDP31 > r.EDP22 {
			verdict = "(2,2) wins"
		}
		fmt.Fprintf(&b, "  %-8s EDP31=%.4g EDP22=%.4g exec31=%.3fs exec22=%.3fs  %s\n",
			r.App, r.EDP31, r.EDP22, r.Exec31, r.Exec22, verdict)
	}
	return b.String()
}

// MinKIntraNote returns the feasibility bound of Section 7.2: 16-switch
// clusters need k_intra >= 1.875.
func MinKIntraNote() string {
	return fmt.Sprintf("fully connected 16-switch clusters require k_intra >= %.3f\n", topo.MinKIntra(16))
}
