package expt

import (
	"fmt"
	"strings"

	"wivfi/internal/sim"
	"wivfi/internal/topo"
)

// networkEDP aggregates a run's network energy-delay product: each phase
// contributes its network energy times its average packet latency, the
// figure of merit Section 7.2 optimizes.
func networkEDP(res *sim.RunResult) float64 {
	var edp float64
	for _, ph := range res.Phases {
		edp += ph.NetJ * ph.NetLatencyCycles
	}
	return edp
}

// Fig6Row is one benchmark of Fig. 6: the network EDP of the
// maximized-wireless-utilization placement relative to the minimized
// hop-count placement.
type Fig6Row struct {
	App string
	// Ratio < 1 means max-wireless wins, as the paper reports for all
	// benchmarks (0.90-1.00).
	Ratio float64
	// WirelessEDP and MinHopEDP are the absolute network EDPs (J x cycles).
	WirelessEDP, MinHopEDP float64
}

// Fig6 reproduces the placement-strategy comparison.
func (s *Suite) Fig6() ([]Fig6Row, error) {
	var rows []Fig6Row
	err := s.ForEach(func(pl *Pipeline) error {
		maxW := networkEDP(pl.WiNoC[sim.MaxWireless])
		minH := networkEDP(pl.WiNoC[sim.MinHop])
		rows = append(rows, Fig6Row{
			App:         pl.App.Name,
			Ratio:       maxW / minH,
			WirelessEDP: maxW,
			MinHopEDP:   minH,
		})
		return nil
	})
	return rows, err
}

// FormatFig6 renders the strategy comparison.
func FormatFig6(rows []Fig6Row) string {
	var b strings.Builder
	b.WriteString("Fig. 6. Network EDP: max-wireless-utilization relative to min-hop-count placement\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-8s ratio=%.3f\n", r.App, r.Ratio)
	}
	return b.String()
}

// KIntraRow is one benchmark of the Section 7.2 parameter study: the WiNoC
// with (k_intra, k_inter) = (3,1) versus (2,2).
type KIntraRow struct {
	App string
	// EDP31 and EDP22 are network EDPs under the two configurations.
	EDP31, EDP22 float64
	// Exec31 and Exec22 are full execution times (seconds).
	Exec31, Exec22 float64
}

// KIntraSweep reproduces the (3,1)-vs-(2,2) finding: the paper reports
// (3,1) always performs better.
func (s *Suite) KIntraSweep() ([]KIntraRow, error) {
	var rows []KIntraRow
	err := s.ForEach(func(pl *Pipeline) error {
		row := KIntraRow{App: pl.App.Name}
		for _, variant := range []struct {
			kIntra, kInter float64
			edp            *float64
			exec           *float64
		}{
			{3, 1, &row.EDP31, &row.Exec31},
			{2, 2, &row.EDP22, &row.Exec22},
		} {
			cfg := s.Config.Build
			cfg.SmallWorld.KIntra = variant.kIntra
			cfg.SmallWorld.KInter = variant.kInter
			sys, err := sim.VFIWiNoC(cfg, pl.Plan.VFI2, pl.Profile.Traffic, pl.BestStrategy)
			if err != nil {
				return err
			}
			res, err := sim.Run(pl.Workload, sys)
			if err != nil {
				return err
			}
			*variant.edp = networkEDP(res)
			*variant.exec = res.Report.ExecSeconds
		}
		rows = append(rows, row)
		return nil
	})
	return rows, err
}

// FormatKIntra renders the parameter study.
func FormatKIntra(rows []KIntraRow) string {
	var b strings.Builder
	b.WriteString("Section 7.2: (k_intra,k_inter) = (3,1) vs (2,2), network EDP and execution time\n")
	for _, r := range rows {
		verdict := "(3,1) wins"
		if r.EDP31 > r.EDP22 {
			verdict = "(2,2) wins"
		}
		fmt.Fprintf(&b, "  %-8s EDP31=%.4g EDP22=%.4g exec31=%.3fs exec22=%.3fs  %s\n",
			r.App, r.EDP31, r.EDP22, r.Exec31, r.Exec22, verdict)
	}
	return b.String()
}

// MinKIntraNote returns the feasibility bound of Section 7.2: 16-switch
// clusters need k_intra >= 1.875.
func MinKIntraNote() string {
	return fmt.Sprintf("fully connected 16-switch clusters require k_intra >= %.3f\n", topo.MinKIntra(16))
}
