package expt

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden files under testdata/")

// checkGolden compares got against testdata/<name>.golden byte-for-byte.
// The golden files lock the exact text cmd/reproduce prints, so an
// accidental formatting change (or a telemetry path leaking onto stdout)
// fails here before it invalidates anyone's saved output. Regenerate with
// `go test ./internal/expt -run TestGolden -update`.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *updateGolden {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("%s output drifted from %s:\n--- got ---\n%s--- want ---\n%s", name, path, got, want)
	}
}

// TestGoldenStatic locks the renderers that need no simulation.
func TestGoldenStatic(t *testing.T) {
	checkGolden(t, "table1", FormatTable1(Table1()))
	checkGolden(t, "kintra_note", MinKIntraNote())
	st, err := RunStealingStudy()
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "stealing", FormatStealing(st))
}

// TestGoldenFigures locks every figure and table renderer against the
// deterministic simulation results.
func TestGoldenFigures(t *testing.T) {
	s := sharedSuite(t)
	sections := []struct {
		name   string
		render func() (string, error)
	}{
		{"table2", func() (string, error) {
			rows, err := s.Table2()
			if err != nil {
				return "", err
			}
			return FormatTable2(rows), nil
		}},
		{"fig2", func() (string, error) {
			rows, err := s.Fig2()
			if err != nil {
				return "", err
			}
			return FormatFig2(rows), nil
		}},
		{"fig4", func() (string, error) {
			rows, err := s.Fig4()
			if err != nil {
				return "", err
			}
			return FormatFig4(rows), nil
		}},
		{"fig5", func() (string, error) {
			rows, err := s.Fig5()
			if err != nil {
				return "", err
			}
			return FormatFig5(rows), nil
		}},
		{"fig6", func() (string, error) {
			rows, err := s.Fig6()
			if err != nil {
				return "", err
			}
			return FormatFig6(rows), nil
		}},
		{"fig7", func() (string, error) {
			rows, err := s.Fig7()
			if err != nil {
				return "", err
			}
			return FormatFig7(rows), nil
		}},
		{"fig8", func() (string, error) {
			rows, err := s.Fig8()
			if err != nil {
				return "", err
			}
			return FormatFig8(rows), nil
		}},
		{"summary", func() (string, error) {
			rows, err := s.Fig8()
			if err != nil {
				return "", err
			}
			return FormatSummary(Summarize(rows)), nil
		}},
	}
	for _, sec := range sections {
		out, err := sec.render()
		if err != nil {
			t.Fatalf("%s: %v", sec.name, err)
		}
		checkGolden(t, sec.name, out)
	}
}

// TestGoldenStudies locks the heavier studies' renderers.
func TestGoldenStudies(t *testing.T) {
	if testing.Short() {
		t.Skip("studies are slow")
	}
	s := sharedSuite(t)

	kin, err := s.KIntraSweep()
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "kintra", FormatKIntra(kin))

	ph, err := s.PhaseAdaptiveStudy()
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "phased", FormatPhased(ph))

	wf, err := s.WIFailureStudy(DefaultWIFailureApp, DefaultWIFailures)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "wifail", FormatWIFailure(wf))

	mg, err := s.MarginSweep(DefaultMarginApp, DefaultMargins)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "margins", FormatMargin(mg))

	gov, err := s.GovernorStudy(DefaultGovernorCapW)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "governor", FormatGovernor(gov))
}
