package expt

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"wivfi/internal/fidelity"
	"wivfi/internal/obs"
	"wivfi/internal/platform"
)

// Study parameters shared by cmd/reproduce and CollectSnapshot, exported so
// the text output and the snapshot are guaranteed to describe the same
// experiment points.
var (
	// DefaultWIFailureApp / DefaultWIFailures parameterize the
	// wireless-interface robustness extension.
	DefaultWIFailureApp = "wc"
	DefaultWIFailures   = []int{0, 3, 6, 12}
	// DefaultMarginApp / DefaultMargins parameterize the V/F-margin
	// sensitivity sweep; 0.35 is the Table 2 operating point.
	DefaultMarginApp = "kmeans"
	DefaultMargins   = []float64{0.15, 0.25, 0.35, 0.45, 0.65}
)

// GHzMultiset renders an island frequency multiset as a canonical
// ascending-sorted label like "2.25 2.25 2.5 2.5" — the categorical form
// Table 2 checks compare against the paper.
func GHzMultiset(points []platform.OperatingPoint) string {
	fs := make([]float64, 0, len(points))
	for _, p := range points {
		fs = append(fs, p.FreqGHz)
	}
	return ghzLabel(fs)
}

func ghzLabel(fs []float64) string {
	sorted := append([]float64(nil), fs...)
	sort.Float64s(sorted)
	parts := make([]string, len(sorted))
	for i, f := range sorted {
		parts[i] = strconv.FormatFloat(f, 'g', -1, 64)
	}
	return strings.Join(parts, " ")
}

func pointsLabel(points []platform.OperatingPoint) string {
	parts := make([]string, len(points))
	for i, p := range points {
		parts[i] = p.String()
	}
	return strings.Join(parts, " ")
}

// CollectSnapshot runs every figure, table and study of the reproduction on
// the suite and serializes the complete results into one fidelity.Snapshot
// keyed by the suite's configuration hash. It only reads pipelines (warming
// them on demand) and never writes to stdout, so collecting a snapshot after
// rendering the text output leaves that output byte-identical.
func CollectSnapshot(s *Suite) (*fidelity.Snapshot, error) {
	defer obs.StartSpan("snapshot", "collect").End()
	snap := &fidelity.Snapshot{
		Schema:     fidelity.SchemaVersion,
		Tool:       "reproduce",
		ConfigHash: ConfigHash(s.Config),
	}
	add := func(sec fidelity.Section, err error) error {
		if err != nil {
			return fmt.Errorf("expt: snapshot section %s: %w", sec.ID, err)
		}
		snap.Sections = append(snap.Sections, sec)
		return nil
	}
	builders := []func() (fidelity.Section, error){
		collectTable1,
		s.collectTable2,
		s.collectFig2,
		s.collectFig4,
		s.collectFig5,
		s.collectFig6,
		s.collectFig7,
		s.collectFig8,
		s.collectKIntra,
		collectStealing,
		s.collectPhased,
		s.collectGovernor,
		s.collectWIFail,
		s.collectMargins,
		s.collectSummary,
	}
	for _, build := range builders {
		sec, err := build()
		if err := add(sec, err); err != nil {
			return nil, err
		}
	}
	return snap, nil
}

func collectTable1() (fidelity.Section, error) {
	sec := fidelity.Section{ID: "table1", Title: "Table 1. Applications and datasets"}
	for _, r := range Table1() {
		sec.Rows = append(sec.Rows, fidelity.Row{
			Key:    r.App,
			Labels: map[string]string{"dataset": r.Dataset},
		})
	}
	return sec, nil
}

func (s *Suite) collectTable2() (fidelity.Section, error) {
	sec := fidelity.Section{ID: "table2", Title: "Table 2. V/F assignments"}
	rows, err := s.Table2()
	if err != nil {
		return sec, err
	}
	for _, r := range rows {
		sec.Rows = append(sec.Rows, fidelity.Row{
			Key:    r.App,
			Values: map[string]float64{"raised": float64(len(r.Raised))},
			Labels: map[string]string{
				// canonical cluster order, full V/F points
				"vfi1": pointsLabel(r.VFI1),
				"vfi2": pointsLabel(r.VFI2),
				// ascending frequency multisets, the paper-check form
				"vfi1_ghz": GHzMultiset(r.VFI1),
				"vfi2_ghz": GHzMultiset(r.VFI2),
			},
		})
	}
	return sec, nil
}

func (s *Suite) collectFig2() (fidelity.Section, error) {
	sec := fidelity.Section{ID: "fig2", Title: "Fig. 2. Core utilization distributions"}
	rows, err := s.Fig2()
	if err != nil {
		return sec, err
	}
	for _, r := range rows {
		sec.Rows = append(sec.Rows, fidelity.Row{
			Key: r.App,
			Values: map[string]float64{
				"average": r.Average,
				"max":     r.Sorted[0],
				"min":     r.Sorted[len(r.Sorted)-1],
			},
			Series: append([]float64(nil), r.Sorted...),
		})
	}
	return sec, nil
}

func (s *Suite) collectFig4() (fidelity.Section, error) {
	sec := fidelity.Section{ID: "fig4", Title: "Fig. 4. VFI 1 vs VFI 2 (vs NVFI mesh)"}
	rows, err := s.Fig4()
	if err != nil {
		return sec, err
	}
	for _, r := range rows {
		sec.Rows = append(sec.Rows, fidelity.Row{
			Key: r.App,
			Values: map[string]float64{
				"exec_vfi1": r.ExecVFI1,
				"exec_vfi2": r.ExecVFI2,
				"edp_vfi1":  r.EDPVFI1,
				"edp_vfi2":  r.EDPVFI2,
			},
		})
	}
	return sec, nil
}

func (s *Suite) collectFig5() (fidelity.Section, error) {
	sec := fidelity.Section{ID: "fig5", Title: "Fig. 5. Average vs bottleneck utilization"}
	rows, err := s.Fig5()
	if err != nil {
		return sec, err
	}
	for _, r := range rows {
		sec.Rows = append(sec.Rows, fidelity.Row{
			Key: r.App,
			Values: map[string]float64{
				"avg_util":        r.AverageUtil,
				"bottleneck_util": r.BottleneckUtil,
				"ratio":           r.BottleneckUtil / r.AverageUtil,
			},
		})
	}
	return sec, nil
}

func (s *Suite) collectFig6() (fidelity.Section, error) {
	sec := fidelity.Section{ID: "fig6", Title: "Fig. 6. Placement strategy network EDP ratio"}
	rows, err := s.Fig6()
	if err != nil {
		return sec, err
	}
	for _, r := range rows {
		sec.Rows = append(sec.Rows, fidelity.Row{
			Key: r.App,
			Values: map[string]float64{
				"ratio":        r.Ratio,
				"wireless_edp": r.WirelessEDP,
				"min_hop_edp":  r.MinHopEDP,
			},
		})
	}
	return sec, nil
}

func (s *Suite) collectFig7() (fidelity.Section, error) {
	sec := fidelity.Section{ID: "fig7", Title: "Fig. 7. Execution-time breakdown (vs NVFI mesh)"}
	rows, err := s.Fig7()
	if err != nil {
		return sec, err
	}
	for _, r := range rows {
		sec.Rows = append(sec.Rows, fidelity.Row{
			Key: r.App + "/" + r.System,
			Values: map[string]float64{
				"map":     r.Map,
				"reduce":  r.Reduce,
				"merge":   r.Merge,
				"libinit": r.LibInit,
				"total":   r.Total,
			},
		})
	}
	return sec, nil
}

func (s *Suite) collectFig8() (fidelity.Section, error) {
	sec := fidelity.Section{ID: "fig8", Title: "Fig. 8. Full-system EDP (vs NVFI mesh)"}
	rows, err := s.Fig8()
	if err != nil {
		return sec, err
	}
	for _, r := range rows {
		sec.Rows = append(sec.Rows, fidelity.Row{
			Key: r.App,
			Values: map[string]float64{
				"edp_mesh":   r.EDPMesh,
				"edp_winoc":  r.EDPWiNoC,
				"exec_mesh":  r.ExecMesh,
				"exec_winoc": r.ExecWiNoC,
			},
			Labels: map[string]string{"strategy": r.Strategy},
		})
	}
	return sec, nil
}

func (s *Suite) collectKIntra() (fidelity.Section, error) {
	sec := fidelity.Section{ID: "kintra", Title: "Section 7.2: (3,1) vs (2,2) small-world degree"}
	rows, err := s.KIntraSweep()
	if err != nil {
		return sec, err
	}
	for _, r := range rows {
		sec.Rows = append(sec.Rows, fidelity.Row{
			Key: r.App,
			Values: map[string]float64{
				"edp31":  r.EDP31,
				"edp22":  r.EDP22,
				"exec31": r.Exec31,
				"exec22": r.Exec22,
			},
		})
	}
	return sec, nil
}

func collectStealing() (fidelity.Section, error) {
	sec := fidelity.Section{ID: "stealing", Title: "Section 4.3: Word Count task-stealing case study"}
	st, err := RunStealingStudy()
	if err != nil {
		return sec, err
	}
	sec.Rows = append(sec.Rows, fidelity.Row{
		Key: "wc",
		Values: map[string]float64{
			"f1_min": st.F1Min, "f1_max": st.F1Max, "f1_avg": st.F1Avg,
			"f2_min": st.F2Min, "f2_max": st.F2Max, "f2_avg": st.F2Avg,
			"nf":               float64(st.Nf),
			"makespan_nosteal": st.MakespanNoSteal,
			"makespan_default": st.MakespanDefault,
			"makespan_capped":  st.MakespanCapped,
			"default_steals":   float64(st.DefaultSteals),
			"capped_steals":    float64(st.CappedSteals),
		},
	})
	return sec, nil
}

func (s *Suite) collectPhased() (fidelity.Section, error) {
	sec := fidelity.Section{ID: "phased", Title: "Extension: phase-adaptive DVFS controllers"}
	rows, err := s.PhaseAdaptiveStudy()
	if err != nil {
		return sec, err
	}
	for _, r := range rows {
		sec.Rows = append(sec.Rows, fidelity.Row{
			Key: r.App,
			Values: map[string]float64{
				"edp_static":   r.StaticEDP,
				"edp_mean":     r.MeanEDP,
				"edp_maxcore":  r.MaxCoreEDP,
				"exec_static":  r.ExecStatic,
				"exec_mean":    r.ExecMean,
				"exec_maxcore": r.ExecMaxCore,
				"transitions":  float64(r.Transitions),
			},
		})
	}
	return sec, nil
}

func (s *Suite) collectGovernor() (fidelity.Section, error) {
	sec := fidelity.Section{ID: "governor", Title: "Extension: closed-loop DVFS governor"}
	rows, err := s.GovernorStudy(DefaultGovernorCapW)
	if err != nil {
		return sec, err
	}
	for _, r := range rows {
		sec.Rows = append(sec.Rows, fidelity.Row{
			Key: r.App,
			Values: map[string]float64{
				"edp_static":         r.StaticEDP,
				"edp_util":           r.UtilEDP,
				"edp_cap":            r.CapEDP,
				"exec_static":        r.ExecStatic,
				"exec_util":          r.ExecUtil,
				"exec_cap":           r.ExecCap,
				"transitions_util":   float64(r.UtilTransitions),
				"transitions_cap":    float64(r.CapTransitions),
				"sheds":              float64(r.Sheds),
				"violations":         float64(r.Violations),
				"max_power_static_w": r.MaxPowerStaticW,
				"max_power_util_w":   r.MaxPowerUtilW,
				"max_power_cap_w":    r.MaxPowerCapW,
				"worst_case_cap_w":   r.WorstCaseCapW,
				"cap_w":              r.CapW,
			},
		})
	}
	return sec, nil
}

func (s *Suite) collectWIFail() (fidelity.Section, error) {
	sec := fidelity.Section{ID: "wifail", Title: "Extension: wireless-interface failure robustness"}
	rows, err := s.WIFailureStudy(DefaultWIFailureApp, DefaultWIFailures)
	if err != nil {
		return sec, err
	}
	for _, r := range rows {
		sec.Rows = append(sec.Rows, fidelity.Row{
			Key: fmt.Sprintf("%s/%d", r.App, r.FailedWIs),
			Values: map[string]float64{
				"exec_ratio": r.ExecRatio,
				"edp_ratio":  r.EDPRatio,
			},
		})
	}
	return sec, nil
}

func (s *Suite) collectMargins() (fidelity.Section, error) {
	sec := fidelity.Section{ID: "margins", Title: "Sensitivity: V/F-selection margin"}
	rows, err := s.MarginSweep(DefaultMarginApp, DefaultMargins)
	if err != nil {
		return sec, err
	}
	for _, r := range rows {
		sec.Rows = append(sec.Rows, fidelity.Row{
			Key: fmt.Sprintf("%s/%.2f", r.App, r.Margin),
			Values: map[string]float64{
				"exec_ratio": r.ExecRatio,
				"edp_ratio":  r.EDPRatio,
			},
			Labels: map[string]string{"islands_ghz": ghzLabel(r.Freqs)},
			Series: append([]float64(nil), r.Freqs...),
		})
	}
	return sec, nil
}

func (s *Suite) collectSummary() (fidelity.Section, error) {
	sec := fidelity.Section{ID: "summary", Title: "Headline numbers (abstract)"}
	rows, err := s.Fig8()
	if err != nil {
		return sec, err
	}
	sum := Summarize(rows)
	sec.Rows = append(sec.Rows, fidelity.Row{
		Key: "headline",
		Values: map[string]float64{
			"avg_edp_saving_pct":   sum.AvgEDPSavingPct,
			"max_edp_saving_pct":   sum.MaxEDPSavingPct,
			"max_exec_penalty_pct": sum.MaxExecPenaltyPct,
		},
		Labels: map[string]string{
			"max_edp_saving_app":   sum.MaxEDPSavingApp,
			"max_exec_penalty_app": sum.MaxExecPenaltyApp,
		},
	})
	return sec, nil
}
