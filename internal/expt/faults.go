package expt

import (
	"fmt"
	"sort"
	"strings"

	"wivfi/internal/noc"
	"wivfi/internal/place"
	"wivfi/internal/sched"
	"wivfi/internal/sim"
	"wivfi/internal/topo"
)

// WIFailureRow is one point of the wireless-fault robustness study: the
// WiNoC with the given number of failed wireless interfaces, relative to
// the healthy WiNoC.
type WIFailureRow struct {
	App       string
	FailedWIs int
	// ExecRatio and EDPRatio are relative to the healthy (0-failure)
	// WiNoC run.
	ExecRatio float64
	EDPRatio  float64
}

// WIFailureStudy is an extension beyond the paper: it quantifies how
// gracefully the VFI WiNoC degrades as mm-wave interfaces fail. The
// wireline small-world fabric keeps the network connected by construction,
// so failures cost latency and energy, never correctness.
func (s *Suite) WIFailureStudy(appName string, failures []int) ([]WIFailureRow, error) {
	pl, err := s.Pipeline(appName)
	if err != nil {
		return nil, err
	}
	cfg := s.Config.Build

	// rebuild the WiNoC placement once; failures then disable WIs in
	// deterministic id order
	opts := cfg.Place
	opts.SmallWorld = cfg.SmallWorld
	opts.Costs = cfg.LinkCosts
	opts.Routing = noc.UpDown
	res, err := place.MaxWirelessUtil(cfg.Chip, pl.Plan.VFI2.Assign, pl.Profile.Traffic, opts)
	if err != nil {
		return nil, err
	}

	var rows []WIFailureRow
	var healthy *sim.RunResult
	sorted := append([]int(nil), failures...)
	sort.Ints(sorted)
	for _, k := range sorted {
		if k < 0 || k > len(res.Topology.WIs) {
			return nil, fmt.Errorf("expt: cannot fail %d of %d WIs", k, len(res.Topology.WIs))
		}
		// fresh topology per point (DisableWI mutates)
		tp, err := place.BuildTopology(cfg.Chip, nil, res.WIPlacement, opts.SmallWorld)
		if err != nil {
			return nil, err
		}
		wis := append([]int(nil), tp.WIs...)
		for i := 0; i < k; i++ {
			if err := topo.DisableWI(tp, wis[i]); err != nil {
				return nil, err
			}
		}
		rt, err := noc.BuildRoutes(tp, cfg.LinkCosts, noc.UpDown)
		if err != nil {
			return nil, err
		}
		sys := &sim.System{
			Name:               fmt.Sprintf("vfi-winoc-%dfailed", k),
			Chip:               cfg.Chip,
			VFI:                pl.Plan.VFI2,
			Mapping:            res.Mapping,
			Routes:             rt,
			NetModel:           cfg.NetModel,
			CoreModel:          cfg.CoreModel,
			Analytic:           cfg.Analytic,
			NetClockGHz:        cfg.NetClockGHz,
			Policy:             sched.CapVFI,
			MemRoundTripFactor: cfg.MemRoundTripFactor,
			AdaptiveRouting:    true,
		}
		run, err := sim.Run(pl.Workload, sys)
		if err != nil {
			return nil, err
		}
		if k == 0 {
			healthy = run
		}
		base := healthy
		if base == nil {
			// failures list did not include 0: normalize to the first row
			base = run
			healthy = run
		}
		rows = append(rows, WIFailureRow{
			App:       appName,
			FailedWIs: k,
			ExecRatio: run.Report.ExecSeconds / base.Report.ExecSeconds,
			EDPRatio:  run.Report.EDP() / base.Report.EDP(),
		})
	}
	return rows, nil
}

// FormatWIFailure renders the robustness study.
func FormatWIFailure(rows []WIFailureRow) string {
	var b strings.Builder
	b.WriteString("WI-failure robustness (relative to healthy WiNoC)\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-8s failed=%2d exec=%.3f EDP=%.3f\n", r.App, r.FailedWIs, r.ExecRatio, r.EDPRatio)
	}
	return b.String()
}
