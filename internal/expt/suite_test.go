package expt

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestDistinctBenchmarksBuildConcurrently is the singleflight regression
// test for the old suite-wide lock: two goroutines requesting different
// benchmarks must both reach their build before either finishes. Each build
// parks inside the test hook until both have arrived; under a suite-wide
// lock the second build can never start and the rendezvous times out.
func TestDistinctBenchmarksBuildConcurrently(t *testing.T) {
	if testing.Short() {
		t.Skip("builds two pipelines")
	}
	var entered sync.WaitGroup
	entered.Add(2)
	release := make(chan struct{})
	buildHook = func(string) {
		entered.Done()
		<-release
	}
	defer func() { buildHook = nil }()

	s := NewSuite(DefaultConfig(), WithParallelism(2))
	names := []string{"mm", "wc"}
	errs := make([]error, len(names))
	var wg sync.WaitGroup
	for i, name := range names {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			_, errs[i] = s.Pipeline(name)
		}(i, name)
	}

	both := make(chan struct{})
	go func() { entered.Wait(); close(both) }()
	select {
	case <-both:
	case <-time.After(30 * time.Second):
		close(release)
		t.Fatal("builds serialized: second benchmark never started while the first was in flight")
	}
	close(release)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("%s: %v", names[i], err)
		}
	}
}

// TestSameBenchmarkBuildsExactlyOnce: concurrent requests for one benchmark
// coalesce onto a single build and all callers get the same pipeline.
func TestSameBenchmarkBuildsExactlyOnce(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a pipeline")
	}
	var builds atomic.Int64
	buildHook = func(string) { builds.Add(1) }
	defer func() { buildHook = nil }()

	s := NewSuite(DefaultConfig())
	const callers = 8
	ptrs := make([]*Pipeline, callers)
	errs := make([]error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ptrs[i], errs[i] = s.Pipeline("mm")
		}(i)
	}
	wg.Wait()
	if n := builds.Load(); n != 1 {
		t.Errorf("%d builds for one benchmark, want 1", n)
	}
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if ptrs[i] != ptrs[0] {
			t.Errorf("caller %d got a different pipeline instance", i)
		}
	}
}

// TestParallelSuiteMatchesSerial is the determinism guarantee behind -j:
// a suite hammered by concurrent callers over a 4-wide pool must render
// byte-identical tables and figures to the package's shared (serially
// consumed) suite. It doubles as the -race stress test for the parallel
// suite path.
func TestParallelSuiteMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a second full suite")
	}
	ref := sharedSuite(t)

	par := NewSuite(DefaultConfig(), WithParallelism(4))
	const rounds = 4
	ptrs := make([]*Pipeline, rounds*len(AppOrder))
	errs := make([]error, rounds*len(AppOrder))
	var wg sync.WaitGroup
	for g := 0; g < rounds; g++ {
		for i, name := range AppOrder {
			wg.Add(1)
			go func(slot int, name string) {
				defer wg.Done()
				ptrs[slot], errs[slot] = par.Pipeline(name)
			}(g*len(AppOrder)+i, name)
		}
	}
	wg.Wait()
	for slot, err := range errs {
		if err != nil {
			t.Fatalf("slot %d: %v", slot, err)
		}
	}
	for g := 1; g < rounds; g++ {
		for i := range AppOrder {
			if ptrs[g*len(AppOrder)+i] != ptrs[i] {
				t.Errorf("%s: round %d got a different pipeline instance", AppOrder[i], g)
			}
		}
	}

	type render struct {
		name string
		from func(s *Suite) (string, error)
	}
	renders := []render{
		{"Table2", func(s *Suite) (string, error) {
			rows, err := s.Table2()
			return FormatTable2(rows), err
		}},
		{"Fig7", func(s *Suite) (string, error) {
			rows, err := s.Fig7()
			return FormatFig7(rows), err
		}},
		{"Fig8", func(s *Suite) (string, error) {
			rows, err := s.Fig8()
			return FormatFig8(rows), err
		}},
	}
	for _, r := range renders {
		want, err := r.from(ref)
		if err != nil {
			t.Fatalf("%s (serial): %v", r.name, err)
		}
		got, err := r.from(par)
		if err != nil {
			t.Fatalf("%s (parallel): %v", r.name, err)
		}
		if got != want {
			t.Errorf("%s differs between serial and parallel suites:\n--- serial ---\n%s--- parallel ---\n%s", r.name, want, got)
		}
	}
}
