package expt

import (
	"sort"
	"strings"
	"sync"
	"testing"

	"wivfi/internal/platform"
)

var (
	suiteOnce sync.Once
	suite     *Suite
)

// sharedSuite builds the six pipelines once for the whole test binary.
func sharedSuite(t *testing.T) *Suite {
	t.Helper()
	suiteOnce.Do(func() {
		suite = NewSuite(DefaultConfig())
	})
	return suite
}

func freqMultiset(points []platform.OperatingPoint) []float64 {
	var fs []float64
	for _, p := range points {
		fs = append(fs, p.FreqGHz)
	}
	sort.Float64s(fs)
	return fs
}

func sameMultiset(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestTable1MatchesPaper(t *testing.T) {
	rows := Table1()
	want := map[string]string{
		"mm":     "Matrix with dimension 999 x 999",
		"kmeans": "Vectors with dimension of 512",
		"pca":    "Matrix with dimension 960 x 960",
		"hist":   "Medium (399 MB)",
		"wc":     "Large (100 MB)",
		"lr":     "Medium (100 MB)",
	}
	if len(rows) != len(want) {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if want[r.App] != r.Dataset {
			t.Errorf("%s dataset %q, want %q", r.App, r.Dataset, want[r.App])
		}
	}
	if !strings.Contains(FormatTable1(rows), "999 x 999") {
		t.Error("FormatTable1 missing content")
	}
}

// TestTable2MatchesPaper is the central calibration assertion: the design
// flow must reproduce the paper's V/F assignments for every benchmark
// (compared as frequency multisets; cluster labels are canonical order).
func TestTable2MatchesPaper(t *testing.T) {
	s := sharedSuite(t)
	rows, err := s.Table2()
	if err != nil {
		t.Fatal(err)
	}
	wantVFI1 := map[string][]float64{
		"mm":     {2.25, 2.25, 2.5, 2.5},
		"hist":   {2.25, 2.25, 2.5, 2.5},
		"kmeans": {1.5, 1.5, 2.0, 2.0},
		"wc":     {2.0, 2.0, 2.5, 2.5},
		"pca":    {2.25, 2.25, 2.25, 2.25},
		"lr":     {2.25, 2.25, 2.5, 2.5},
	}
	wantVFI2 := map[string][]float64{
		"mm":     {2.25, 2.5, 2.5, 2.5},
		"hist":   {2.25, 2.5, 2.5, 2.5},
		"kmeans": {1.5, 1.5, 2.0, 2.0},
		"wc":     {2.0, 2.0, 2.5, 2.5},
		"pca":    {2.25, 2.25, 2.25, 2.5},
		"lr":     {2.25, 2.25, 2.5, 2.5},
	}
	for _, r := range rows {
		if got := freqMultiset(r.VFI1); !sameMultiset(got, wantVFI1[r.App]) {
			t.Errorf("%s VFI1 = %v, want %v", r.App, got, wantVFI1[r.App])
		}
		if got := freqMultiset(r.VFI2); !sameMultiset(got, wantVFI2[r.App]) {
			t.Errorf("%s VFI2 = %v, want %v", r.App, got, wantVFI2[r.App])
		}
	}
	// only the three nearly-homogeneous apps get a re-assignment
	for _, r := range rows {
		raised := len(r.Raised) > 0
		wantRaised := r.App == "mm" || r.App == "hist" || r.App == "pca"
		if raised != wantRaised {
			t.Errorf("%s raised=%v, want %v", r.App, raised, wantRaised)
		}
	}
	if !strings.Contains(FormatTable2(rows), "1.0/2.5") {
		t.Error("FormatTable2 missing V/F cells")
	}
}

func TestFig2Shapes(t *testing.T) {
	s := sharedSuite(t)
	rows, err := s.Fig2()
	if err != nil {
		t.Fatal(err)
	}
	byApp := map[string]Fig2Row{}
	for _, r := range rows {
		if len(r.Sorted) != 64 {
			t.Fatalf("%s has %d cores", r.App, len(r.Sorted))
		}
		// sorted descending
		for i := 1; i < len(r.Sorted); i++ {
			if r.Sorted[i] > r.Sorted[i-1] {
				t.Fatalf("%s utilization not sorted", r.App)
			}
		}
		byApp[r.App] = r
	}
	// Kmeans: "about 32 cores have less than 50% utilization when compared
	// to the average"
	km := byApp["kmeans"]
	low := 0
	for _, u := range km.Sorted {
		if u < 0.5*km.Average {
			low++
		}
	}
	if low < 24 || low > 40 {
		t.Errorf("kmeans has %d cores below half the average, want ~32", low)
	}
	// PCA/MM/HIST: nearly homogeneous with a visible bottleneck spike
	for _, name := range []string{"pca", "mm", "hist"} {
		r := byApp[name]
		if r.Sorted[0] < 1.2*r.Average {
			t.Errorf("%s bottleneck %0.3f not above 1.2x average %.3f", name, r.Sorted[0], r.Average)
		}
		// background flat: median close to average
		if r.Sorted[32] < 0.8*r.Average || r.Sorted[32] > 1.2*r.Average {
			t.Errorf("%s background not homogeneous: median %.3f vs avg %.3f", name, r.Sorted[32], r.Average)
		}
	}
	if FormatFig2(rows) == "" {
		t.Error("empty Fig2 format")
	}
}

// TestFig4Shape: re-assignment must speed up all three applications (or at
// worst leave HIST unchanged) without EDP penalty beyond a small margin —
// "PCA benefits most by re-assigning the V/F values".
func TestFig4Shape(t *testing.T) {
	s := sharedSuite(t)
	rows, err := s.Fig4()
	if err != nil {
		t.Fatal(err)
	}
	byApp := map[string]Fig4Row{}
	for _, r := range rows {
		byApp[r.App] = r
		if r.ExecVFI2 > r.ExecVFI1+1e-9 {
			t.Errorf("%s: VFI2 slower than VFI1 (%.3f vs %.3f)", r.App, r.ExecVFI2, r.ExecVFI1)
		}
		// VFI1 can pay a marginal EDP penalty on the bottlenecked apps
		// (that is exactly why VFI2 exists); it must stay near baseline.
		if r.EDPVFI1 >= 1.05 {
			t.Errorf("%s: VFI1 EDP %.3f far above baseline", r.App, r.EDPVFI1)
		}
		if r.EDPVFI2 >= 1.0 {
			t.Errorf("%s: VFI2 EDP %.3f not below baseline", r.App, r.EDPVFI2)
		}
		if r.EDPVFI2 > r.EDPVFI1*1.05 {
			t.Errorf("%s: VFI2 EDP %.3f much worse than VFI1 %.3f", r.App, r.EDPVFI2, r.EDPVFI1)
		}
	}
	pcaGain := byApp["pca"].ExecVFI1 - byApp["pca"].ExecVFI2
	histGain := byApp["hist"].ExecVFI1 - byApp["hist"].ExecVFI2
	if pcaGain < histGain {
		t.Errorf("PCA should benefit most from re-assignment: pca %.4f vs hist %.4f", pcaGain, histGain)
	}
}

// TestFig5Shape: PCA has the highest bottleneck-to-average ratio, HIST the
// lowest of the three (Section 7.1).
func TestFig5Shape(t *testing.T) {
	s := sharedSuite(t)
	rows, err := s.Fig5()
	if err != nil {
		t.Fatal(err)
	}
	ratio := map[string]float64{}
	for _, r := range rows {
		if r.BottleneckUtil <= r.AverageUtil {
			t.Errorf("%s bottleneck not above average", r.App)
		}
		ratio[r.App] = r.BottleneckUtil / r.AverageUtil
	}
	if !(ratio["pca"] > ratio["mm"] && ratio["mm"] > ratio["hist"]) {
		t.Errorf("bottleneck ratio order pca > mm > hist violated: %v", ratio)
	}
}

// TestFig7Shape: the mesh VFI penalty stays bounded (paper: up to 10.5%)
// and the WiNoC recovers it for the majority of the benchmarks.
func TestFig7Shape(t *testing.T) {
	s := sharedSuite(t)
	rows, err := s.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	faster := 0
	for _, r := range rows {
		if r.Total <= 0 {
			t.Fatalf("%s/%s zero total", r.App, r.System)
		}
		switch r.System {
		case "vfi-mesh":
			if r.Total > 1.16 {
				t.Errorf("%s mesh VFI penalty %.3f exceeds 16%%", r.App, r.Total)
			}
		case "vfi-winoc":
			if r.Total > 1.12 {
				t.Errorf("%s WiNoC penalty %.3f exceeds 12%%", r.App, r.Total)
			}
			if r.Total < 1.0 {
				faster++
			}
		}
	}
	if faster < 3 {
		t.Errorf("only %d benchmarks run faster than NVFI mesh on the WiNoC, want >= 3", faster)
	}
}

// TestFig7WiNoCBeatsMesh: the WiNoC execution time must not exceed the VFI
// mesh for any benchmark, with WC and Kmeans showing the largest gains
// (Section 7.3).
func TestFig7WiNoCBeatsMesh(t *testing.T) {
	s := sharedSuite(t)
	rows, err := s.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	mesh := map[string]float64{}
	winoc := map[string]float64{}
	for _, r := range rows {
		if r.System == "vfi-mesh" {
			mesh[r.App] = r.Total
		} else {
			winoc[r.App] = r.Total
		}
	}
	gains := map[string]float64{}
	for app := range mesh {
		if winoc[app] > mesh[app]+1e-9 {
			t.Errorf("%s: WiNoC %.3f slower than VFI mesh %.3f", app, winoc[app], mesh[app])
		}
		gains[app] = mesh[app] - winoc[app]
	}
	// WC and Kmeans lead the gains; LR trails (its traffic is neighbour
	// -local, Section 7.3)
	if gains["wc"] < gains["lr"] || gains["kmeans"] < gains["lr"] {
		t.Errorf("gain order violated: wc=%.4f kmeans=%.4f lr=%.4f", gains["wc"], gains["kmeans"], gains["lr"])
	}
}

// TestFig8Shape: every benchmark saves EDP on both VFI systems, the WiNoC
// strictly beats the mesh, and Kmeans saves the most (Section 7.3).
func TestFig8Shape(t *testing.T) {
	s := sharedSuite(t)
	rows, err := s.Fig8()
	if err != nil {
		t.Fatal(err)
	}
	var kmeansEDP, minEDP float64 = 0, 2
	var minApp string
	for _, r := range rows {
		if r.EDPMesh >= 1.0 {
			t.Errorf("%s: VFI mesh EDP %.3f not below 1", r.App, r.EDPMesh)
		}
		if r.EDPWiNoC >= r.EDPMesh {
			t.Errorf("%s: WiNoC EDP %.3f not below mesh %.3f", r.App, r.EDPWiNoC, r.EDPMesh)
		}
		if r.App == "kmeans" {
			kmeansEDP = r.EDPWiNoC
		}
		if r.EDPWiNoC < minEDP {
			minEDP = r.EDPWiNoC
			minApp = r.App
		}
	}
	if minApp != "kmeans" {
		t.Errorf("largest EDP saving on %s (%.3f), want kmeans (%.3f)", minApp, minEDP, kmeansEDP)
	}
}

// TestSummaryHeadline: the headline savings land in a paper-comparable
// band: average EDP saving >= 15%, maximum >= 40%, max slowdown <= 8%.
func TestSummaryHeadline(t *testing.T) {
	s := sharedSuite(t)
	rows, err := s.Fig8()
	if err != nil {
		t.Fatal(err)
	}
	sum := Summarize(rows)
	if sum.AvgEDPSavingPct < 15 {
		t.Errorf("avg EDP saving %.1f%% below 15%% (paper: 33.7%%)", sum.AvgEDPSavingPct)
	}
	if sum.MaxEDPSavingPct < 40 {
		t.Errorf("max EDP saving %.1f%% below 40%% (paper: 66.2%%)", sum.MaxEDPSavingPct)
	}
	if sum.MaxEDPSavingApp != "kmeans" {
		t.Errorf("max saving on %s, want kmeans", sum.MaxEDPSavingApp)
	}
	if sum.MaxExecPenaltyPct > 8 {
		t.Errorf("max exec penalty %.2f%% above 8%% (paper: 3.22%%)", sum.MaxExecPenaltyPct)
	}
	if FormatSummary(sum) == "" {
		t.Error("empty summary")
	}
}

// TestFig6Bounded: the two placement strategies must stay close — the
// paper reports 0.90-1.00 for the max-wireless/min-hop network-EDP ratio;
// our model lands in a band straddling 1.0 (0.95-1.10, see EXPERIMENTS.md),
// so we assert proximity and that the per-application choice mechanism has
// at least one winner on each side.
func TestFig6Bounded(t *testing.T) {
	s := sharedSuite(t)
	rows, err := s.Fig6()
	if err != nil {
		t.Fatal(err)
	}
	below := 0
	for _, r := range rows {
		if r.Ratio <= 0 {
			t.Fatalf("%s ratio %v", r.App, r.Ratio)
		}
		if r.Ratio < 0.85 || r.Ratio > 1.15 {
			t.Errorf("%s strategy ratio %.3f outside the close band [0.85, 1.15]", r.App, r.Ratio)
		}
		if r.Ratio <= 1.0 {
			below++
		}
	}
	if below == 0 {
		t.Error("max-wireless never wins network EDP; the strategy trade-off collapsed")
	}
}

func TestStealingStudyMatchesPaperNumbers(t *testing.T) {
	st, err := RunStealingStudy()
	if err != nil {
		t.Fatal(err)
	}
	// duration ranges within the paper's measured envelopes
	if st.F1Min < 0.262 || st.F1Max > 0.292 {
		t.Errorf("f1 range [%.3f, %.3f] outside paper's 0.268-0.284 (+tolerance)", st.F1Min, st.F1Max)
	}
	if st.F2Min < 0.272 || st.F2Max > 0.350 {
		t.Errorf("f2 range [%.3f, %.3f] outside paper's 0.280-0.342 (+tolerance)", st.F2Min, st.F2Max)
	}
	if st.F2Avg <= st.F1Avg {
		t.Error("slow cores should average longer tasks")
	}
	// Eq. 3: floor(100/64 * 0.8) = 1
	if st.Nf != 1 {
		t.Errorf("Nf = %d, want 1", st.Nf)
	}
	// stealing must help vs no stealing; the cap must not be worse than
	// default by more than a whisker on this workload
	if st.MakespanDefault >= st.MakespanNoSteal {
		t.Error("default stealing did not beat no-stealing")
	}
	if st.MakespanCapped > st.MakespanDefault*1.02 {
		t.Errorf("capped stealing %.3f much worse than default %.3f", st.MakespanCapped, st.MakespanDefault)
	}
	if FormatStealing(st) == "" {
		t.Error("empty stealing format")
	}
}

func TestKIntraSweepPrefers31(t *testing.T) {
	if testing.Short() {
		t.Skip("kintra sweep is slow")
	}
	s := sharedSuite(t)
	rows, err := s.KIntraSweep()
	if err != nil {
		t.Fatal(err)
	}
	wins31 := 0
	for _, r := range rows {
		if r.EDP31 <= r.EDP22 {
			wins31++
		}
	}
	// the paper reports (3,1) always better; require a clear majority
	if wins31 < 4 {
		t.Errorf("(3,1) wins only %d of %d benchmarks", wins31, len(rows))
	}
	if !strings.Contains(FormatKIntra(rows), "EDP31") {
		t.Error("FormatKIntra missing content")
	}
	if MinKIntraNote() == "" {
		t.Error("empty MinKIntra note")
	}
}

func TestPipelineInternalConsistency(t *testing.T) {
	s := sharedSuite(t)
	err := s.ForEach(func(pl *Pipeline) error {
		if err := pl.Profile.Validate(); err != nil {
			t.Errorf("%s profile: %v", pl.App.Name, err)
		}
		if err := pl.Plan.VFI1.Validate(); err != nil {
			t.Errorf("%s VFI1: %v", pl.App.Name, err)
		}
		if pl.Baseline.Report.ExecSeconds <= 0 {
			t.Errorf("%s baseline has zero exec", pl.App.Name)
		}
		// iterations: kmeans and pca run two MapReduce iterations
		iters := 0
		for _, ph := range pl.Baseline.Phases {
			if ph.Iteration+1 > iters {
				iters = ph.Iteration + 1
			}
		}
		if iters != pl.App.Iterations {
			t.Errorf("%s ran %d iterations, want %d", pl.App.Name, iters, pl.App.Iterations)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPhaseAdaptiveStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("extension study is slow")
	}
	s := sharedSuite(t)
	rows, err := s.PhaseAdaptiveStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("%d rows", len(rows))
	}
	winsOverMean := 0
	for _, r := range rows {
		if r.Transitions <= 0 {
			t.Errorf("%s: no DVFS transitions recorded", r.App)
		}
		// the bottleneck-aware controller must not blow up execution time
		if r.ExecMaxCore > 1.12 {
			t.Errorf("%s: max-core controller exec %.3f too slow", r.App, r.ExecMaxCore)
		}
		if r.MaxCoreEDP <= r.MeanEDP {
			winsOverMean++
		}
	}
	// bottleneck-awareness should beat the naive mean controller on most
	// benchmarks (the hot-master apps)
	if winsOverMean < 4 {
		t.Errorf("max-core beats mean on only %d of 6 benchmarks", winsOverMean)
	}
	if FormatPhased(rows) == "" {
		t.Error("empty phased format")
	}
}

func TestWIFailureGracefulDegradation(t *testing.T) {
	if testing.Short() {
		t.Skip("extension study is slow")
	}
	s := sharedSuite(t)
	rows, err := s.WIFailureStudy("wc", []int{0, 6, 12})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	prevEDP := 0.0
	for i, r := range rows {
		if r.ExecRatio < 1.0-1e-9 || r.EDPRatio < 1.0-1e-9 {
			t.Errorf("failing WIs improved the system: %+v", r)
		}
		// losing ALL wireless must still cost single-digit percent: the
		// wireline small-world fabric carries the traffic
		if r.EDPRatio > 1.10 {
			t.Errorf("failed=%d: EDP ratio %.3f is not graceful", r.FailedWIs, r.EDPRatio)
		}
		if i > 0 && r.EDPRatio < prevEDP-0.02 {
			t.Errorf("EDP improved markedly with more failures: %+v", rows)
		}
		prevEDP = r.EDPRatio
	}
	if rows[0].FailedWIs != 0 || rows[0].EDPRatio != 1.0 {
		t.Errorf("baseline row wrong: %+v", rows[0])
	}
	if FormatWIFailure(rows) == "" {
		t.Error("empty failure format")
	}
	// failing more WIs than exist is rejected
	if _, err := s.WIFailureStudy("wc", []int{13}); err == nil {
		t.Error("13 failures of 12 WIs accepted")
	}
}

func TestMarginSweep(t *testing.T) {
	s := sharedSuite(t)
	rows, err := s.MarginSweep("kmeans", []float64{0.15, 0.35, 0.65, 0.95})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	// frequencies rise monotonically with the margin
	for i := 1; i < len(rows); i++ {
		for j := range rows[i].Freqs {
			if rows[i].Freqs[j] < rows[i-1].Freqs[j]-1e-9 {
				t.Errorf("island %d frequency dropped as margin rose: %v -> %v",
					j, rows[i-1].Freqs, rows[i].Freqs)
			}
		}
	}
	// a huge margin collapses everything to f_max and erases savings
	last := rows[len(rows)-1]
	for _, f := range last.Freqs {
		if f != 2.5 {
			t.Errorf("margin 0.95 left an island at %v GHz", f)
		}
	}
	if last.EDPRatio < 0.95 {
		t.Errorf("all-f_max system should have ~no EDP saving, got %.3f", last.EDPRatio)
	}
	// a small margin slows the chip more than the calibrated one
	if rows[0].ExecRatio <= rows[1].ExecRatio {
		t.Errorf("margin 0.15 exec %.3f not above margin 0.35 exec %.3f",
			rows[0].ExecRatio, rows[1].ExecRatio)
	}
	if FormatMargin(rows) == "" {
		t.Error("empty margin format")
	}
	if _, err := s.MarginSweep("kmeans", []float64{1.5}); err == nil {
		t.Error("margin > 1 accepted")
	}
}
