package expt

import (
	"testing"

	"wivfi/internal/obs"
)

// renderFig45 renders Fig. 4 and Fig. 5 (three pipelines) from a suite into
// the exact string cmd/reproduce would print for those sections.
func renderFig45(t *testing.T, s *Suite) string {
	t.Helper()
	f4, err := s.Fig4()
	if err != nil {
		t.Fatal(err)
	}
	f5, err := s.Fig5()
	if err != nil {
		t.Fatal(err)
	}
	return FormatFig4(f4) + FormatFig5(f5)
}

// TestOutputIdenticalWithTelemetry is the zero-perturbation regression
// test: building pipelines with a recorder installed (what -trace and
// -manifest do) must render byte-identical figures to a suite built with
// telemetry off.
func TestOutputIdenticalWithTelemetry(t *testing.T) {
	baseline := renderFig45(t, sharedSuite(t))

	rec := obs.NewRecorder()
	obs.Install(rec)
	defer obs.Install(nil)
	traced := renderFig45(t, NewSuite(DefaultConfig(), WithParallelism(2)))
	if traced != baseline {
		t.Errorf("figure output changed under telemetry:\nwith recorder:\n%s\nwithout:\n%s", traced, baseline)
	}

	// Sanity-check the recorder actually observed the instrumented build:
	// three pipeline spans (pca, hist, mm) must have been captured.
	m := rec.BuildManifest("test", nil)
	var pipelines int
	for _, st := range m.Stages {
		if st.Name == "pipeline" {
			pipelines = st.Count
		}
	}
	if pipelines != 3 {
		t.Errorf("recorder saw %d pipeline spans, want 3", pipelines)
	}
}
