package expt

import (
	"fmt"
	"sort"
	"strings"

	"wivfi/internal/sim"
	"wivfi/internal/stats"
)

// Fig2Row is one panel of Fig. 2: the per-core utilization distribution of
// one benchmark on the non-VFI system, sorted descending (the paper's bar
// order), plus the average the dotted arrow marks.
type Fig2Row struct {
	App     string
	Sorted  []float64 // 64 utilizations, highest first
	Average float64
}

// Fig2Apps are the four applications Fig. 2 plots.
var Fig2Apps = []string{"kmeans", "pca", "mm", "hist"}

// Fig2 reproduces the utilization distributions.
func (s *Suite) Fig2() ([]Fig2Row, error) {
	if err := s.Prewarm(Fig2Apps...); err != nil {
		return nil, err
	}
	var rows []Fig2Row
	for _, name := range Fig2Apps {
		pl, err := s.Pipeline(name)
		if err != nil {
			return nil, err
		}
		sorted := append([]float64(nil), pl.Profile.Util...)
		sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
		rows = append(rows, Fig2Row{
			App:     name,
			Sorted:  sorted,
			Average: stats.Mean(sorted),
		})
	}
	return rows, nil
}

// FormatFig2 renders compact text sparklines of the distributions.
func FormatFig2(rows []Fig2Row) string {
	var b strings.Builder
	b.WriteString("Fig. 2. Core utilization (sorted descending, avg marked)\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-8s avg=%.3f max=%.3f min=%.3f  ", r.App, r.Average, r.Sorted[0], r.Sorted[len(r.Sorted)-1])
		for i := 0; i < len(r.Sorted); i += 8 {
			fmt.Fprintf(&b, "%.2f ", r.Sorted[i])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Fig4Row is one benchmark of Fig. 4: execution time and EDP of the VFI 1
// and VFI 2 systems, normalized to the NVFI mesh.
type Fig4Row struct {
	App                string
	ExecVFI1, ExecVFI2 float64
	EDPVFI1, EDPVFI2   float64
}

// Fig4Apps are the three re-assigned applications Fig. 4 plots.
var Fig4Apps = []string{"pca", "hist", "mm"}

// Fig4 reproduces the VFI 1 vs VFI 2 comparison.
func (s *Suite) Fig4() ([]Fig4Row, error) {
	if err := s.Prewarm(Fig4Apps...); err != nil {
		return nil, err
	}
	var rows []Fig4Row
	for _, name := range Fig4Apps {
		pl, err := s.Pipeline(name)
		if err != nil {
			return nil, err
		}
		e1, _, d1 := pl.VFI1Mesh.Report.Relative(pl.Baseline.Report)
		e2, _, d2 := pl.VFI2Mesh.Report.Relative(pl.Baseline.Report)
		rows = append(rows, Fig4Row{
			App: name, ExecVFI1: e1, ExecVFI2: e2, EDPVFI1: d1, EDPVFI2: d2,
		})
	}
	return rows, nil
}

// FormatFig4 renders the comparison.
func FormatFig4(rows []Fig4Row) string {
	var b strings.Builder
	b.WriteString("Fig. 4. VFI 1 vs VFI 2 (normalized to NVFI mesh)\n")
	b.WriteString("  app      exec(VFI1) exec(VFI2)   EDP(VFI1)  EDP(VFI2)\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-8s %10.3f %10.3f  %10.3f %10.3f\n",
			r.App, r.ExecVFI1, r.ExecVFI2, r.EDPVFI1, r.EDPVFI2)
	}
	return b.String()
}

// Fig5Row is one benchmark of Fig. 5: average vs bottleneck-core
// utilization.
type Fig5Row struct {
	App            string
	AverageUtil    float64
	BottleneckUtil float64
}

// Fig5 reproduces the bottleneck-core comparison for PCA, HIST and MM.
func (s *Suite) Fig5() ([]Fig5Row, error) {
	if err := s.Prewarm(Fig4Apps...); err != nil {
		return nil, err
	}
	var rows []Fig5Row
	for _, name := range Fig4Apps { // same three applications
		pl, err := s.Pipeline(name)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig5Row{
			App:            name,
			AverageUtil:    stats.Mean(pl.Profile.Util),
			BottleneckUtil: stats.Max(pl.Profile.Util),
		})
	}
	return rows, nil
}

// FormatFig5 renders the comparison.
func FormatFig5(rows []Fig5Row) string {
	var b strings.Builder
	b.WriteString("Fig. 5. Average vs bottleneck core utilization\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-8s avg=%.3f bottleneck=%.3f ratio=%.2f\n",
			r.App, r.AverageUtil, r.BottleneckUtil, r.BottleneckUtil/r.AverageUtil)
	}
	return b.String()
}

// Fig7Row is one system bar of Fig. 7: per-phase execution time normalized
// to the NVFI mesh total.
type Fig7Row struct {
	App    string
	System string
	// Phase shares normalized to the baseline's total execution time.
	Map, Reduce, Merge, LibInit float64
	Total                       float64
}

// Fig7 reproduces the execution-time breakdown for VFI Mesh and VFI WiNoC.
func (s *Suite) Fig7() ([]Fig7Row, error) {
	var rows []Fig7Row
	err := s.ForEach(func(pl *Pipeline) error {
		baseT := pl.Baseline.Report.ExecSeconds
		for _, sys := range []struct {
			label string
			res   *sim.RunResult
		}{
			{"vfi-mesh", pl.VFI2Mesh},
			{"vfi-winoc", pl.BestWiNoC()},
		} {
			byKind := sys.res.SecondsByKind()
			row := Fig7Row{
				App:     pl.App.Name,
				System:  sys.label,
				Map:     byKind[sim.Map] / baseT,
				Reduce:  byKind[sim.Reduce] / baseT,
				Merge:   byKind[sim.Merge] / baseT,
				LibInit: (byKind[sim.LibInit] + byKind[sim.Split]) / baseT,
			}
			row.Total = row.Map + row.Reduce + row.Merge + row.LibInit
			rows = append(rows, row)
		}
		return nil
	})
	return rows, err
}

// FormatFig7 renders the stacked breakdown.
func FormatFig7(rows []Fig7Row) string {
	var b strings.Builder
	b.WriteString("Fig. 7. Normalized execution time per phase (vs NVFI mesh)\n")
	b.WriteString("  app      system     map    reduce merge  libinit total\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-8s %-10s %-6.3f %-6.3f %-6.3f %-7.3f %.3f\n",
			r.App, r.System, r.Map, r.Reduce, r.Merge, r.LibInit, r.Total)
	}
	return b.String()
}

// Fig8Row is one benchmark of Fig. 8: full-system EDP of VFI Mesh and VFI
// WiNoC relative to the NVFI mesh.
type Fig8Row struct {
	App      string
	EDPMesh  float64
	EDPWiNoC float64
	// ExecMesh/ExecWiNoC give the execution-time ratios backing the EDP.
	ExecMesh, ExecWiNoC float64
	// Strategy is the placement methodology the WiNoC used.
	Strategy string
}

// Fig8 reproduces the full-system EDP comparison.
func (s *Suite) Fig8() ([]Fig8Row, error) {
	var rows []Fig8Row
	err := s.ForEach(func(pl *Pipeline) error {
		em, _, dm := pl.VFI2Mesh.Report.Relative(pl.Baseline.Report)
		ew, _, dw := pl.BestWiNoC().Report.Relative(pl.Baseline.Report)
		rows = append(rows, Fig8Row{
			App: pl.App.Name, EDPMesh: dm, EDPWiNoC: dw,
			ExecMesh: em, ExecWiNoC: ew,
			Strategy: pl.BestStrategy.String(),
		})
		return nil
	})
	return rows, err
}

// FormatFig8 renders the comparison.
func FormatFig8(rows []Fig8Row) string {
	var b strings.Builder
	b.WriteString("Fig. 8. Full-system EDP (vs NVFI mesh)\n")
	b.WriteString("  app      EDP(mesh) EDP(winoc) exec(mesh) exec(winoc) strategy\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-8s %9.3f %10.3f %10.3f %11.3f %s\n",
			r.App, r.EDPMesh, r.EDPWiNoC, r.ExecMesh, r.ExecWiNoC, r.Strategy)
	}
	return b.String()
}

// Summary reports the abstract's headline numbers: the average and maximum
// EDP savings of the VFI WiNoC over the NVFI mesh, and its maximum
// execution-time penalty.
type Summary struct {
	AvgEDPSavingPct   float64
	MaxEDPSavingPct   float64
	MaxEDPSavingApp   string
	MaxExecPenaltyPct float64
	MaxExecPenaltyApp string
}

// Summarize computes the headline numbers from Fig. 8's rows.
func Summarize(rows []Fig8Row) Summary {
	var sum Summary
	var total float64
	for _, r := range rows {
		saving := (1 - r.EDPWiNoC) * 100
		total += saving
		if saving > sum.MaxEDPSavingPct {
			sum.MaxEDPSavingPct = saving
			sum.MaxEDPSavingApp = r.App
		}
		penalty := (r.ExecWiNoC - 1) * 100
		if penalty > sum.MaxExecPenaltyPct {
			sum.MaxExecPenaltyPct = penalty
			sum.MaxExecPenaltyApp = r.App
		}
	}
	sum.AvgEDPSavingPct = total / float64(len(rows))
	return sum
}

// FormatSummary renders the headline numbers next to the paper's.
func FormatSummary(s Summary) string {
	return fmt.Sprintf(
		"Summary: avg EDP saving %.1f%% (paper: 33.7%%), max %.1f%% on %s (paper: 66.2%% on kmeans), "+
			"max exec penalty %.2f%% on %s (paper: 3.22%%)\n",
		s.AvgEDPSavingPct, s.MaxEDPSavingPct, s.MaxEDPSavingApp,
		s.MaxExecPenaltyPct, s.MaxExecPenaltyApp)
}
