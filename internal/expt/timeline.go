package expt

import (
	"fmt"

	"wivfi/internal/governor"
	"wivfi/internal/noc"
	"wivfi/internal/place"
	"wivfi/internal/sim"
	"wivfi/internal/timeline"
)

// Timeline collection is post hoc by design: the series below are pure
// functions of a pipeline's deterministic results (phases, plans,
// profiles), computed serially in AppOrder after the (possibly concurrent)
// builds finish. A live collector capturing during the builds would order
// samples by goroutine interleaving and skip probe-run series on cache
// hits; deriving after the fact makes the artifacts byte-identical across
// -j levels, repeated runs and cache states.

// TimelineDESApp is the benchmark whose best WiNoC system additionally
// gets a cycle-accurate DES replay, producing the per-link heatmap and
// packet-latency histogram series.
const TimelineDESApp = "wc"

// timelineWindows is the target number of windows per virtual-time series.
const timelineWindows = 96

// desReplayPackets / desReplayFlits / desReplayHorizon shape the synthetic
// traffic of the DES replay: packet count, flits per packet and the
// injection horizon in cycles.
const (
	desReplayPackets = 2000
	desReplayFlits   = 4
	desReplayHorizon = 16384
)

// CollectTimelines derives the time-resolved series for the named
// benchmarks (all of AppOrder when none are given) into col: per-worker
// phase tracks, per-island utilization and windowed energy series, V/F
// design-step tracks, steal-rate series, and — for TimelineDESApp — the
// DES link heatmap and latency histogram. No-op when col is nil.
func (s *Suite) CollectTimelines(col *timeline.Collector, names ...string) error {
	if col == nil {
		return nil
	}
	if len(names) == 0 {
		names = AppOrder
	}
	if err := s.Prewarm(names...); err != nil {
		return err
	}
	for _, name := range names {
		pl, err := s.Pipeline(name)
		if err != nil {
			return err
		}
		col.AddSeries(pipelineTimelines(pl)...)
		gs, err := governorTimelines(s.Config, pl)
		if err != nil {
			return fmt.Errorf("expt: %s governor timelines: %w", name, err)
		}
		col.AddSeries(gs...)
		if name == TimelineDESApp {
			series, err := desReplayTimelines(s.Config, pl)
			if err != nil {
				return fmt.Errorf("expt: %s DES replay: %w", name, err)
			}
			col.AddSeries(series...)
		}
	}
	return nil
}

// pipelineTimelines derives one benchmark's virtual-time series from its
// pipeline results.
func pipelineTimelines(pl *Pipeline) []timeline.Series {
	var out []timeline.Series
	out = append(out, workerPhaseTracks(pl)...)
	out = append(out, islandUtilSeries(pl)...)
	out = append(out, vfStepTracks(pl)...)
	out = append(out, stealSeries(pl))
	for _, run := range []struct {
		label string
		res   *sim.RunResult
	}{
		{"vfi1-mesh", pl.VFI1Mesh},
		{"vfi2-mesh", pl.VFI2Mesh},
		{"winoc-best", pl.BestWiNoC()},
	} {
		out = append(out, energySeries(pl.App.Name, run.label, run.res))
	}
	return out
}

// phaseSpans returns each phase's [start, end) interval in virtual
// nanoseconds plus the run's total.
func phaseSpans(res *sim.RunResult) ([][2]int64, int64) {
	spans := make([][2]int64, len(res.Phases))
	var cum float64
	for i, ph := range res.Phases {
		t0 := int64(cum * 1e9)
		cum += ph.Seconds
		spans[i] = [2]int64{t0, int64(cum * 1e9)}
	}
	return spans, int64(cum * 1e9)
}

// windowFor sizes a fixed window so total spans ~timelineWindows bins.
func windowFor(total int64) int64 {
	w := total / timelineWindows
	if w < 1 {
		w = 1
	}
	return w
}

// spread adds total uniformly over [t0, t1) into fixed-width bins.
func spread(vals []float64, window, t0, t1 int64, total float64) {
	if total == 0 || len(vals) == 0 {
		return
	}
	if t1 <= t0 {
		b := int(t0 / window)
		if b >= len(vals) {
			b = len(vals) - 1
		}
		vals[b] += total
		return
	}
	for b := t0 / window; b*window < t1 && b < int64(len(vals)); b++ {
		lo, hi := b*window, (b+1)*window
		if lo < t0 {
			lo = t0
		}
		if hi > t1 {
			hi = t1
		}
		vals[b] += total * float64(hi-lo) / float64(t1-t0)
	}
}

// workerPhaseTracks builds the per-worker phase strips of the best WiNoC
// run: worker w is in the phase's state while it has busy time there, and
// idle otherwise.
func workerPhaseTracks(pl *Pipeline) []timeline.Series {
	res := pl.BestWiNoC()
	spans, total := phaseSpans(res)
	n := len(res.BusySec)
	out := make([]timeline.Series, 0, n)
	for w := 0; w < n; w++ {
		tr := timeline.NewTrack(timeline.Meta{
			Name:      fmt.Sprintf("expt/%s/worker/%02d/phase", pl.App.Name, w),
			IndexUnit: "vns",
		})
		for i, ph := range res.Phases {
			state := "idle"
			if w < len(ph.BusySec) && ph.BusySec[w] > 0 {
				state = ph.Kind.String()
			}
			tr.Set(spans[i][0], state)
		}
		tr.Set(total, "done")
		out = append(out, tr.Series())
	}
	return out
}

// islandUtilSeries bins each VFI island's utilization (busy core-seconds
// over available core-seconds) per window of the best WiNoC run — the
// time-resolved view of Fig. 5's bottleneck-island utilization.
func islandUtilSeries(pl *Pipeline) []timeline.Series {
	res := pl.BestWiNoC()
	spans, total := phaseSpans(res)
	window := windowFor(total)
	bins := int(total/window) + 1
	islands := pl.Plan.VFI2.Islands()
	// One shared pass over the per-phase worker strips, aggregating busy
	// seconds per island up front: the per-island loop below then only
	// spreads scalars, so collection cost no longer rescans every phase's
	// BusySec once per island. Cores within an island are summed in
	// ascending id order exactly as the per-island scan did (Islands()
	// lists cores ascending), so the float additions — and the output
	// bytes — are unchanged.
	assign := pl.Plan.VFI2.Assign
	busy := make([][]float64, len(res.Phases))
	for i, ph := range res.Phases {
		b := make([]float64, len(islands))
		for c, sec := range ph.BusySec {
			if c < len(assign) {
				b[assign[c]] += sec
			}
		}
		busy[i] = b
	}
	out := make([]timeline.Series, 0, len(islands))
	for isl, cores := range islands {
		vals := make([]float64, bins)
		for i := range res.Phases {
			spread(vals, window, spans[i][0], spans[i][1], busy[i][isl])
		}
		// busy seconds per window -> utilization of the island's cores.
		denom := float64(len(cores)) * float64(window) / 1e9
		for b := range vals {
			if denom > 0 {
				vals[b] /= denom
			}
			if vals[b] > 1 {
				vals[b] = 1
			}
		}
		out = append(out, timeline.Series{
			Meta:   timeline.Meta{Name: fmt.Sprintf("expt/%s/island/%d/util", pl.App.Name, isl), IndexUnit: "vns", Unit: "util"},
			Kind:   timeline.KindSampler,
			Agg:    timeline.Mean.String(),
			Window: window,
			Values: vals,
		})
	}
	return out
}

// vfStepTracks records each island's operating point across the design
// flow: index 0 is the VFI 1 assignment, index 1 the VFI 2 re-assignment,
// so islands raised for bottleneck cores (Plan.RaisedIslands) appear as
// state transitions.
func vfStepTracks(pl *Pipeline) []timeline.Series {
	out := make([]timeline.Series, 0, pl.Plan.VFI1.NumIslands())
	for isl := range pl.Plan.VFI1.Points {
		tr := timeline.NewTrack(timeline.Meta{
			Name:      fmt.Sprintf("expt/%s/island/%d/vf", pl.App.Name, isl),
			IndexUnit: "design-step",
			Unit:      "V/GHz",
		})
		tr.Set(0, pl.Plan.VFI1.Points[isl].String())
		tr.Set(1, pl.Plan.VFI2.Points[isl].String())
		out = append(out, tr.Series())
	}
	return out
}

// stealSeries bins the best WiNoC run's per-phase steal counts over
// virtual time.
func stealSeries(pl *Pipeline) timeline.Series {
	res := pl.BestWiNoC()
	spans, total := phaseSpans(res)
	window := windowFor(total)
	vals := make([]float64, int(total/window)+1)
	for i, ph := range res.Phases {
		spread(vals, window, spans[i][0], spans[i][1], float64(ph.Steals))
	}
	return timeline.Series{
		Meta:   timeline.Meta{Name: fmt.Sprintf("expt/%s/steals", pl.App.Name), IndexUnit: "vns", Unit: "steals"},
		Kind:   timeline.KindSampler,
		Agg:    timeline.Sum.String(),
		Window: window,
		Values: vals,
	}
}

// energySeries bins one run's total energy (core dynamic + leakage +
// network) per window of virtual time — the windowed energy accounting
// that makes the VFI1 -> VFI2 shift visible over time, not just in totals.
func energySeries(app, label string, res *sim.RunResult) timeline.Series {
	spans, total := phaseSpans(res)
	window := windowFor(total)
	vals := make([]float64, int(total/window)+1)
	for i, ph := range res.Phases {
		spread(vals, window, spans[i][0], spans[i][1], ph.CoreDynJ+ph.CoreLeakJ+ph.NetJ)
	}
	return timeline.Series{
		Meta:   timeline.Meta{Name: fmt.Sprintf("expt/%s/energy/%s", app, label), IndexUnit: "vns", Unit: "J"},
		Kind:   timeline.KindSampler,
		Agg:    timeline.Sum.String(),
		Window: window,
		Values: vals,
	}
}

// governorTimelines derives the closed-loop governor's observability
// series for one benchmark: per-island decision state tracks of the
// utilization governor (each island's operating point across phase
// boundaries, consecutive holds deduplicated) and the capped governor's
// per-phase power headroom — the gap between the default chip cap and the
// worst-case core power of the configuration each decision admitted.
// Like every other series here the derivation is post hoc and pure, so
// the artifacts stay byte-identical across -j levels and cache states.
func governorTimelines(cfg Config, pl *Pipeline) ([]timeline.Series, error) {
	utilLog := governor.NewLog()
	if _, _, err := GovernedMesh(cfg, pl, governor.Util, 0, utilLog, nil); err != nil {
		return nil, err
	}
	m := pl.Plan.VFI2.NumIslands()
	tracks := make([]*timeline.Track, m)
	for isl := 0; isl < m; isl++ {
		tracks[isl] = timeline.NewTrack(timeline.Meta{
			Name:      fmt.Sprintf("expt/%s/governor/island/%d/vf", pl.App.Name, isl),
			IndexUnit: "phase",
			Unit:      "V/GHz",
		})
	}
	for _, d := range utilLog.Decisions() {
		for _, id := range d.Islands {
			tracks[id.Island].Set(int64(d.Phase), id.To)
		}
	}
	out := make([]timeline.Series, 0, m+1)
	for _, tr := range tracks {
		out = append(out, tr.Series())
	}
	capLog := governor.NewLog()
	if _, _, err := GovernedMesh(cfg, pl, governor.Cap, DefaultGovernorCapW, capLog, nil); err != nil {
		return nil, err
	}
	headroom := make([]float64, capLog.Len())
	for i, d := range capLog.Decisions() {
		headroom[i] = d.HeadroomW
	}
	out = append(out, timeline.Series{
		Meta:   timeline.Meta{Name: fmt.Sprintf("expt/%s/governor/headroom", pl.App.Name), IndexUnit: "phase", Unit: "W"},
		Kind:   timeline.KindSampler,
		Agg:    timeline.Mean.String(),
		Window: 1,
		Values: headroom,
	})
	return out, nil
}

// desReplayTimelines rebuilds the benchmark's best WiNoC system and runs
// the cycle-accurate DES on synthetic traffic drawn from its profiled
// switch-to-switch flit rates, yielding per-link flit series (the heatmap)
// and the packet-latency histogram under noc/<app>/.
func desReplayTimelines(cfg Config, pl *Pipeline) ([]timeline.Series, error) {
	sys, err := sim.VFIWiNoC(cfg.Build, pl.Plan.VFI2, pl.Profile.Traffic, pl.BestStrategy)
	if err != nil {
		return nil, err
	}
	sw := place.MapTraffic(pl.Profile.Traffic, sys.Mapping)
	pkts := trafficPackets(sw, desReplayPackets, desReplayFlits, desReplayHorizon, 1)
	prefix := fmt.Sprintf("noc/%s/", pl.App.Name)
	_, series, err := noc.RunDESTimeline(sys.Routes, pkts, sys.NetModel, noc.DefaultDESConfig(), prefix)
	if err != nil {
		return nil, err
	}
	return series, nil
}

// trafficPackets draws packets whose (src, dst) distribution follows the
// switch-traffic matrix, with injection times uniform over the horizon.
// Deterministic: flows are scanned in row-major order and the PRNG is a
// seeded SplitMix64.
func trafficPackets(traffic [][]float64, packets, flits int, horizon int64, seed uint64) []noc.Packet {
	type flow struct {
		src, dst int
		cum      float64
	}
	var flows []flow
	var total float64
	for src, row := range traffic {
		for dst, rate := range row {
			if rate <= 0 || src == dst {
				continue
			}
			total += rate
			flows = append(flows, flow{src, dst, total})
		}
	}
	out := make([]noc.Packet, 0, packets)
	rng := seed
	next := func() uint64 {
		rng += 0x9e3779b97f4a7c15
		z := rng
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	uniform := func() float64 { return float64(next()>>11) / (1 << 53) }
	for i := 0; i < packets; i++ {
		src, dst := 0, 1
		if len(flows) > 0 {
			target := uniform() * total
			lo, hi := 0, len(flows)-1
			for lo < hi {
				mid := (lo + hi) / 2
				if flows[mid].cum < target {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			src, dst = flows[lo].src, flows[lo].dst
		}
		out = append(out, noc.Packet{
			ID: i, Src: src, Dst: dst, Flits: flits,
			Inject: int64(uniform() * float64(horizon)),
		})
	}
	return out
}
