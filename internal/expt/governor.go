package expt

import (
	"fmt"
	"strings"
	"sync"

	"wivfi/internal/governor"
	"wivfi/internal/platform"
	"wivfi/internal/sim"
	"wivfi/internal/vfi"
)

// DefaultGovernorCapW is the chip-level core-power cap (watts) of the
// governor-under-cap study column and the snapshot's governor section. It
// sits well below the static plan's worst-case core power (~166 W for the
// paper's typical Table 2 assignments) and well above the ladder floor
// (~41 W with every island at the minimum point), so the cap genuinely
// binds yet always admits a feasible configuration — the capped governor
// can guarantee zero violations.
const DefaultGovernorCapW = 120.0

// GovernedMesh executes the benchmark's workload on its VFI 2 mesh
// platform under a closed-loop DVFS governor: the same platform as the
// pipeline's static VFI2Mesh run, but with island operating points
// re-decided at every phase boundary from the run's own observations. The
// optional log records every decision; onDecision additionally streams
// them live (the serving layer's decision events). The returned summary
// carries the run's decision statistics and measured-power envelope.
func GovernedMesh(cfg Config, pl *Pipeline, pol governor.Policy, capW float64,
	log *governor.Log, onDecision func(governor.Decision)) (*sim.RunResult, governor.Summary, error) {
	meshSys, err := sim.VFIMesh(cfg.Build, pl.Plan.VFI2, pl.Profile.Traffic)
	if err != nil {
		return nil, governor.Summary{}, err
	}
	return governedRun(cfg, pl, meshSys, pol, capW, log, onDecision)
}

// governedRun is GovernedMesh on a prebuilt mesh system (the study shares
// one system across its three policy runs; the system is read-only under
// RunGoverned, which simulates on a copy).
func governedRun(cfg Config, pl *Pipeline, meshSys *sim.System, pol governor.Policy, capW float64,
	log *governor.Log, onDecision func(governor.Decision)) (*sim.RunResult, governor.Summary, error) {
	g := governor.New(governor.Config{
		Policy:    pol,
		Plan:      pl.Plan.VFI2,
		Table:     platform.DefaultDVFSTable(),
		Margin:    cfg.VFI.FreqMargin,
		CapW:      capW,
		Protected: pl.Plan.RaisedIslands,
		Core:      cfg.Build.CoreModel,
	})
	g.SetLog(log)
	g.OnDecision(onDecision)
	run, err := sim.RunGoverned(pl.Workload, meshSys, g, sim.DefaultDVFSTransition())
	if err != nil {
		return nil, governor.Summary{}, err
	}
	return run, g.Summary(), nil
}

// GovernedSystem executes workload w on a prebuilt VFI 2 mesh system under
// the closed-loop governor, from a bare (profile, plan) design rather than
// a full Pipeline — the sweep orchestrator's entry point for its governed
// scenario dimension.
func GovernedSystem(cfg Config, w *sim.Workload, plan vfi.Plan, meshSys *sim.System,
	pol governor.Policy, capW float64) (*sim.RunResult, governor.Summary, error) {
	g := governor.New(governor.Config{
		Policy:    pol,
		Plan:      plan.VFI2,
		Table:     platform.DefaultDVFSTable(),
		Margin:    cfg.VFI.FreqMargin,
		CapW:      capW,
		Protected: plan.RaisedIslands,
		Core:      cfg.Build.CoreModel,
	})
	run, err := sim.RunGoverned(w, meshSys, g, sim.DefaultDVFSTransition())
	if err != nil {
		return nil, governor.Summary{}, err
	}
	return run, g.Summary(), nil
}

// GovernorRow compares one benchmark's three governor policies on the
// VFI 2 mesh platform, all normalized against the NVFI mesh baseline.
type GovernorRow struct {
	App string
	// EDP and execution-time ratios vs the NVFI mesh baseline for the
	// static-plan, utilization-governor and governor-under-cap runs.
	StaticEDP  float64
	UtilEDP    float64
	CapEDP     float64
	ExecStatic float64
	ExecUtil   float64
	ExecCap    float64
	// Transition counts of the two closed-loop runs (island point changes
	// actuated across phase boundaries).
	UtilTransitions int
	CapTransitions  int
	// Sheds counts the capped run's shedding ladder steps; Violations its
	// decisions where even the ladder floor exceeded the cap (0 whenever
	// the cap admits the floor configuration).
	Sheds      int
	Violations int
	// Measured per-phase core-power maxima of the three runs, and the
	// capped run's worst-case admitted bound; CapW echoes the cap. The
	// cap guarantee is MaxPowerCapW <= WorstCaseCapW <= CapW.
	MaxPowerStaticW float64
	MaxPowerUtilW   float64
	MaxPowerCapW    float64
	WorstCaseCapW   float64
	CapW            float64
}

// GovernorStudy runs the closed-loop DVFS comparison across all six
// benchmarks: the static paper plan held fixed (baseline), the
// utilization-threshold governor, and the governor under a chip-level
// core-power cap of capW with priority shedding. The three policy runs of
// each benchmark fan out over the suite pool; results land in fixed slots
// so row order and content are deterministic at any parallelism.
func (s *Suite) GovernorStudy(capW float64) ([]GovernorRow, error) {
	if err := s.Prewarm(AppOrder...); err != nil {
		return nil, err
	}
	policies := []governor.Policy{governor.Static, governor.Util, governor.Cap}
	rows := make([]GovernorRow, len(AppOrder))
	errs := make([]error, len(AppOrder)*len(policies))
	var wg sync.WaitGroup
	for i, name := range AppOrder {
		pl, err := s.Pipeline(name)
		if err != nil {
			return nil, err
		}
		rows[i].App = pl.App.Name
		rows[i].CapW = capW
		meshSys, err := sim.VFIMesh(s.Config.Build, pl.Plan.VFI2, pl.Profile.Traffic)
		if err != nil {
			return nil, err
		}
		for p, pol := range policies {
			wg.Add(1)
			go func(i, p int, pl *Pipeline, pol governor.Policy, meshSys *sim.System) {
				defer wg.Done()
				s.pool.DoNamed("sim:governor", pl.App.Name, func() {
					run, sum, err := governedRun(s.Config, pl, meshSys, pol, capW, nil, nil)
					if err != nil {
						errs[i*len(policies)+p] = err
						return
					}
					exec, _, edp := run.Report.Relative(pl.Baseline.Report)
					r := &rows[i]
					switch pol {
					case governor.Static:
						r.ExecStatic, r.StaticEDP = exec, edp
						r.MaxPowerStaticW = sum.MaxPowerW
					case governor.Util:
						r.ExecUtil, r.UtilEDP = exec, edp
						r.MaxPowerUtilW = sum.MaxPowerW
						r.UtilTransitions = sum.Transitions
					case governor.Cap:
						r.ExecCap, r.CapEDP = exec, edp
						r.MaxPowerCapW = sum.MaxPowerW
						r.WorstCaseCapW = sum.WorstCasePowerW
						r.CapTransitions = sum.Transitions
						r.Sheds = sum.Sheds
						r.Violations = sum.CapViolations
					}
				})
			}(i, p, pl, pol, meshSys)
		}
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// FormatGovernor renders the closed-loop governor comparison.
func FormatGovernor(rows []GovernorRow) string {
	var b strings.Builder
	capW := DefaultGovernorCapW
	if len(rows) > 0 {
		capW = rows[0].CapW
	}
	fmt.Fprintf(&b, "Governor: closed-loop DVFS policies (VFI 2 mesh, vs NVFI mesh; cap %.0f W core power)\n", capW)
	b.WriteString("  app      EDP static/util/cap       exec static/util/cap     trans u/c    sheds  maxW s/u/c        viol\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-8s %7.3f %7.3f %7.3f   %7.3f %7.3f %7.3f   %4d %4d   %5d  %5.1f %5.1f %5.1f   %3d\n",
			r.App, r.StaticEDP, r.UtilEDP, r.CapEDP,
			r.ExecStatic, r.ExecUtil, r.ExecCap,
			r.UtilTransitions, r.CapTransitions, r.Sheds,
			r.MaxPowerStaticW, r.MaxPowerUtilW, r.MaxPowerCapW, r.Violations)
	}
	return b.String()
}
