package expt

import (
	"fmt"
	"strings"

	"wivfi/internal/apps"
	"wivfi/internal/platform"
)

// Table1Row is one line of Table 1: the benchmark and its dataset.
type Table1Row struct {
	App     string
	Dataset string
}

// Table1 reproduces Table 1 from the application registry.
func Table1() []Table1Row {
	var rows []Table1Row
	for _, a := range apps.All() {
		rows = append(rows, Table1Row{App: a.Name, Dataset: a.Table1Dataset})
	}
	return rows
}

// FormatTable1 renders Table 1 as text.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	b.WriteString("Table 1. Applications analyzed and datasets used\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-22s %s\n", r.App, r.Dataset)
	}
	return b.String()
}

// Table2Row is one line of Table 2: the per-cluster V/F assignments of the
// VFI 1 system and the final VFI 2 value of the re-assigned cluster.
// Clusters are reported in canonical order (ascending mean utilization).
type Table2Row struct {
	App  string
	VFI1 []platform.OperatingPoint
	VFI2 []platform.OperatingPoint
	// Raised lists the islands whose V/F changed between VFI 1 and VFI 2.
	Raised []int
}

// Table2 reproduces Table 2 for every benchmark.
func (s *Suite) Table2() ([]Table2Row, error) {
	var rows []Table2Row
	err := s.ForEach(func(pl *Pipeline) error {
		rows = append(rows, Table2Row{
			App:    pl.App.Name,
			VFI1:   pl.Plan.VFI1.Points,
			VFI2:   pl.Plan.VFI2.Points,
			Raised: pl.Plan.RaisedIslands,
		})
		return nil
	})
	return rows, err
}

// FormatTable2 renders Table 2 as text.
func FormatTable2(rows []Table2Row) string {
	var b strings.Builder
	b.WriteString("Table 2. V/F assignments (clusters ordered by ascending utilization; * = raised in VFI 2)\n")
	b.WriteString(fmt.Sprintf("  %-8s %-11s %-11s %-11s %-11s\n", "app", "cluster 1", "cluster 2", "cluster 3", "cluster 4"))
	for _, r := range rows {
		cells := make([]string, len(r.VFI1))
		for j := range r.VFI1 {
			cell := r.VFI1[j].String()
			if r.VFI2[j] != r.VFI1[j] {
				cell += "->" + r.VFI2[j].String() + "*"
			}
			cells[j] = cell
		}
		fmt.Fprintf(&b, "  %-8s %-11s %-11s %-11s %-11s\n", r.App, cells[0], cells[1], cells[2], cells[3])
	}
	return b.String()
}
