package sim

import (
	"fmt"

	"wivfi/internal/energy"
	"wivfi/internal/noc"
	"wivfi/internal/place"
	"wivfi/internal/platform"
	"wivfi/internal/sched"
	"wivfi/internal/topo"
)

// Strategy selects the WiNoC placement methodology of Section 6.
type Strategy int

const (
	// MinHop minimizes the traffic-weighted hop count (simulated
	// annealing over WI positions).
	MinHop Strategy = iota
	// MaxWireless maximizes wireless-link utilization (WIs at cluster
	// centres, hot threads placed beside them). The paper finds this
	// consistently better (Fig. 6) and uses it for the headline results.
	MaxWireless
)

func (s Strategy) String() string {
	if s == MinHop {
		return "min-hop"
	}
	return "max-wireless"
}

// BuildConfig carries the shared platform parameters for system builders.
type BuildConfig struct {
	Chip               platform.Chip
	CoreModel          energy.CoreModel
	NetModel           energy.NetworkModel
	Analytic           noc.AnalyticConfig
	LinkCosts          noc.LinkCosts
	SmallWorld         topo.SmallWorldConfig
	Place              place.Options
	NetClockGHz        float64
	MemRoundTripFactor float64
}

// DefaultBuildConfig returns the paper's 64-core platform with all default
// models.
func DefaultBuildConfig() BuildConfig {
	return BuildConfig{
		Chip:               platform.DefaultChip(),
		CoreModel:          energy.DefaultCoreModel(),
		NetModel:           energy.DefaultNetworkModel(),
		Analytic:           noc.DefaultAnalyticConfig(),
		LinkCosts:          noc.DefaultLinkCosts(),
		SmallWorld:         topo.DefaultSmallWorldConfig(),
		Place:              place.DefaultOptions(),
		NetClockGHz:        2.5,
		MemRoundTripFactor: 3,
	}
}

// NVFIMesh builds the baseline: every core at the DVFS maximum, threads
// mapped identically onto the mesh, default Phoenix stealing.
func NVFIMesh(cfg BuildConfig) (*System, error) {
	n := cfg.Chip.NumCores()
	mesh := topo.Mesh(cfg.Chip)
	routes, err := noc.BuildRoutes(mesh, cfg.LinkCosts, noc.XY)
	if err != nil {
		return nil, err
	}
	return &System{
		Name:               "nvfi-mesh",
		Chip:               cfg.Chip,
		VFI:                platform.Uniform(n, platform.MaxPoint(platform.DefaultDVFSTable())),
		Mapping:            place.NewIdentityMapping(n),
		Routes:             routes,
		NetModel:           cfg.NetModel,
		CoreModel:          cfg.CoreModel,
		Analytic:           cfg.Analytic,
		NetClockGHz:        cfg.NetClockGHz,
		Policy:             sched.DefaultStealing,
		MemRoundTripFactor: cfg.MemRoundTripFactor,
	}, nil
}

// NVFIMeshMapped builds the reporting baseline: the same non-VFI mesh but
// with a traffic-aware thread mapping (contiguous 16-thread groups mapped
// min-distance into the quadrants), so that VFI-vs-baseline comparisons
// measure the VFI and interconnect effects rather than a naive identity
// placement. The profile-gathering pass uses NVFIMesh; this uses its
// measured traffic.
func NVFIMeshMapped(cfg BuildConfig, traffic [][]float64) (*System, error) {
	n := cfg.Chip.NumCores()
	if n%4 != 0 {
		return nil, fmt.Errorf("sim: %d cores not divisible into the baseline's 4 contiguous thread groups", n)
	}
	assign := make([]int, n)
	for th := range assign {
		assign[th] = th / (n / 4)
	}
	mapping, err := place.MapThreadsMinDistance(cfg.Chip, assign, traffic, cfg.Place.Seed, cfg.Place.MappingSweeps)
	if err != nil {
		return nil, err
	}
	mesh := topo.Mesh(cfg.Chip)
	routes, err := noc.BuildRoutes(mesh, cfg.LinkCosts, noc.XY)
	if err != nil {
		return nil, err
	}
	return &System{
		Name:               "nvfi-mesh",
		Chip:               cfg.Chip,
		VFI:                platform.Uniform(n, platform.MaxPoint(platform.DefaultDVFSTable())),
		Mapping:            mapping,
		Routes:             routes,
		NetModel:           cfg.NetModel,
		CoreModel:          cfg.CoreModel,
		Analytic:           cfg.Analytic,
		NetClockGHz:        cfg.NetClockGHz,
		Policy:             sched.DefaultStealing,
		MemRoundTripFactor: cfg.MemRoundTripFactor,
	}, nil
}

// VFIMesh builds a VFI system on the conventional mesh: threads of island j
// are mapped into quadrant j (min-distance mapping) and the modified
// stealing policy applies.
func VFIMesh(cfg BuildConfig, vfi platform.VFIConfig, traffic [][]float64) (*System, error) {
	if err := vfi.Validate(); err != nil {
		return nil, fmt.Errorf("sim: VFI mesh config: %w", err)
	}
	mapping, err := place.MapThreadsMinDistance(cfg.Chip, vfi.Assign, traffic, cfg.Place.Seed, cfg.Place.MappingSweeps)
	if err != nil {
		return nil, err
	}
	mesh := topo.Mesh(cfg.Chip)
	routes, err := noc.BuildRoutes(mesh, cfg.LinkCosts, noc.XY)
	if err != nil {
		return nil, err
	}
	return &System{
		Name:               "vfi-mesh",
		Chip:               cfg.Chip,
		VFI:                vfi,
		Mapping:            mapping,
		Routes:             routes,
		NetModel:           cfg.NetModel,
		CoreModel:          cfg.CoreModel,
		Analytic:           cfg.Analytic,
		NetClockGHz:        cfg.NetClockGHz,
		Policy:             sched.CapVFI,
		MemRoundTripFactor: cfg.MemRoundTripFactor,
	}, nil
}

// VFIWiNoC builds the proposed system: small-world wireline fabric with
// traffic-apportioned inter-cluster links, 12 wireless interfaces, thread
// mapping and WI placement per the chosen strategy, up*/down* routing and
// the modified stealing policy.
func VFIWiNoC(cfg BuildConfig, vfi platform.VFIConfig, traffic [][]float64, strategy Strategy) (*System, error) {
	if err := vfi.Validate(); err != nil {
		return nil, fmt.Errorf("sim: VFI WiNoC config: %w", err)
	}
	opts := cfg.Place
	opts.SmallWorld = cfg.SmallWorld
	opts.Costs = cfg.LinkCosts
	opts.Routing = noc.UpDown
	var res place.Result
	var err error
	switch strategy {
	case MinHop:
		res, err = place.MinHopCount(cfg.Chip, vfi.Assign, traffic, opts)
	case MaxWireless:
		res, err = place.MaxWirelessUtil(cfg.Chip, vfi.Assign, traffic, opts)
	default:
		return nil, fmt.Errorf("sim: unknown strategy %d", strategy)
	}
	if err != nil {
		return nil, err
	}
	return &System{
		Name:               "vfi-winoc-" + strategy.String(),
		Chip:               cfg.Chip,
		VFI:                vfi,
		Mapping:            res.Mapping,
		Routes:             res.Routes,
		NetModel:           cfg.NetModel,
		CoreModel:          cfg.CoreModel,
		Analytic:           cfg.Analytic,
		NetClockGHz:        cfg.NetClockGHz,
		Policy:             sched.CapVFI,
		MemRoundTripFactor: cfg.MemRoundTripFactor,
		AdaptiveRouting:    true,
	}, nil
}
