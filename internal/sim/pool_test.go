package sim

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestPoolBoundsConcurrency(t *testing.T) {
	p := NewPool(3)
	if p.Size() != 3 {
		t.Fatalf("Size = %d", p.Size())
	}
	var cur, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.Do(func() {
				n := cur.Add(1)
				for {
					old := peak.Load()
					if n <= old || peak.CompareAndSwap(old, n) {
						break
					}
				}
				for j := 0; j < 1000; j++ { // hold the slot briefly
					_ = j
				}
				cur.Add(-1)
			})
		}()
	}
	wg.Wait()
	if got := peak.Load(); got > 3 {
		t.Errorf("observed %d concurrent jobs in a pool of 3", got)
	}
}

func TestNilPoolRunsInline(t *testing.T) {
	var p *Pool
	if p.Size() != 1 {
		t.Fatalf("nil pool Size = %d", p.Size())
	}
	ran := false
	p.Do(func() { ran = true })
	if !ran {
		t.Error("nil pool did not run the job")
	}
}

func TestPoolClampsToOne(t *testing.T) {
	if got := NewPool(0).Size(); got != 1 {
		t.Errorf("NewPool(0).Size() = %d, want 1", got)
	}
	if got := NewPool(-5).Size(); got != 1 {
		t.Errorf("NewPool(-5).Size() = %d, want 1", got)
	}
}
