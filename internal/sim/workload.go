// Package sim is the full-system virtual-time simulator: it executes a
// benchmark's workload model — phases of compute, memory stalls and
// inter-thread traffic — on a configured platform (core DVFS state from a
// VFI plan plus a routed NoC), and reports execution time, energy and EDP
// per phase.
//
// The workload model is the substitution for gem5 full-system simulation
// (see DESIGN.md): each application in internal/apps is described by the
// structure the VFI/WiNoC machinery actually consumes — task counts and
// durations, per-thread phase work, memory intensity, and traffic patterns.
package sim

import (
	"fmt"
)

// PhaseKind is one of the Phoenix++ execution stages of Fig. 1.
type PhaseKind int

const (
	LibInit PhaseKind = iota
	Split
	Map
	Reduce
	Merge
)

func (k PhaseKind) String() string {
	switch k {
	case LibInit:
		return "libinit"
	case Split:
		return "split"
	case Map:
		return "map"
	case Reduce:
		return "reduce"
	case Merge:
		return "merge"
	default:
		return fmt.Sprintf("PhaseKind(%d)", int(k))
	}
}

// Phase describes one execution stage of the workload.
//
// A Map phase is executed by the task-stealing scheduler: Tasks tasks with
// TaskCycles base compute (spread by TaskSpread) and TaskMemOps memory
// operations each are dealt round-robin over the active threads.
//
// Every other phase is a barrier phase: thread i performs WorkCycles[i]
// compute cycles and MemOps[i] memory operations, and the phase ends when
// the slowest active thread finishes.
type Phase struct {
	Kind PhaseKind
	// Iteration tags the MapReduce iteration this phase belongs to
	// (Kmeans and PCA run two iterations).
	Iteration int

	// Map-phase parameters.
	Tasks      int
	TaskCycles float64
	TaskSpread float64
	TaskMemOps float64
	// ActiveThreads lists the threads that participate in a Map phase's
	// dealing; nil means all threads.
	ActiveThreads []int

	// Barrier-phase parameters: per-thread compute cycles and memory ops.
	WorkCycles []float64
	MemOps     []float64

	// Traffic is the total thread-to-thread flit count exchanged during
	// the phase (beyond the memory ops, which are modelled as latency).
	Traffic [][]float64
}

// Workload is a complete benchmark model.
type Workload struct {
	Name string
	// Threads is the number of worker threads (= cores on this platform).
	Threads int
	// Phases in execution order, already flattened across iterations.
	Phases []Phase
}

// Validate checks dimensional consistency.
func (w *Workload) Validate() error {
	if w.Threads <= 0 {
		return fmt.Errorf("sim: workload %q has %d threads", w.Name, w.Threads)
	}
	if len(w.Phases) == 0 {
		return fmt.Errorf("sim: workload %q has no phases", w.Name)
	}
	for i, ph := range w.Phases {
		if ph.Kind == Map {
			if ph.Tasks <= 0 || ph.TaskCycles <= 0 {
				return fmt.Errorf("sim: phase %d (map) needs tasks and cycles", i)
			}
			for _, th := range ph.ActiveThreads {
				if th < 0 || th >= w.Threads {
					return fmt.Errorf("sim: phase %d active thread %d out of range", i, th)
				}
			}
		} else {
			if len(ph.WorkCycles) != w.Threads {
				return fmt.Errorf("sim: phase %d (%v) has %d work entries for %d threads",
					i, ph.Kind, len(ph.WorkCycles), w.Threads)
			}
			if ph.MemOps != nil && len(ph.MemOps) != w.Threads {
				return fmt.Errorf("sim: phase %d memops length %d", i, len(ph.MemOps))
			}
		}
		if ph.Traffic != nil {
			if len(ph.Traffic) != w.Threads {
				return fmt.Errorf("sim: phase %d traffic has %d rows", i, len(ph.Traffic))
			}
			for r, row := range ph.Traffic {
				if len(row) != w.Threads {
					return fmt.Errorf("sim: phase %d traffic row %d has %d cols", i, r, len(row))
				}
			}
		}
	}
	return nil
}

// TrafficUniform builds a uniform background traffic matrix: each thread in
// active sends totalFlits/(n*(n-1)) flits to every other thread — the
// address-interleaved distributed-L2 pattern.
func TrafficUniform(threads int, active []int, totalFlits float64) [][]float64 {
	m := zeroMatrix(threads)
	if len(active) < 2 {
		return m
	}
	per := totalFlits / float64(len(active)*(len(active)-1))
	for _, i := range active {
		for _, j := range active {
			if i != j {
				m[i][j] = per
			}
		}
	}
	return m
}

// TrafficLocalized models distributed-L2 memory traffic with locality:
// each active thread sends localFrac of its share to the other active
// threads of its own blockSize-aligned group (its VFI island's L2 slices)
// and the remainder uniformly to all other active threads. This reflects
// the premise of the paper's VFI clustering, which co-locates each thread
// with the data it touches most.
func TrafficLocalized(threads int, active []int, totalFlits, localFrac float64, blockSize int) [][]float64 {
	m := zeroMatrix(threads)
	if len(active) < 2 {
		return m
	}
	perThread := totalFlits / float64(len(active))
	// group active threads by block
	byBlock := map[int][]int{}
	for _, th := range active {
		b := th / blockSize
		byBlock[b] = append(byBlock[b], th)
	}
	for _, i := range active {
		peers := byBlock[i/blockSize]
		nLocal := len(peers) - 1
		lf := localFrac
		if nLocal == 0 {
			lf = 0 // no local peers: everything goes global
		} else {
			per := perThread * lf / float64(nLocal)
			for _, j := range peers {
				if j != i {
					m[i][j] += per
				}
			}
		}
		per := perThread * (1 - lf) / float64(len(active)-1)
		for _, j := range active {
			if j != i {
				m[i][j] += per
			}
		}
	}
	return m
}

// TrafficKeyExchange models Reduce-time key/value redistribution: every
// active thread scatters its share to key-owner threads; ownership is
// spread over all active threads, so the pattern is all-to-all but scaled
// by the key count (more keys, more traffic).
func TrafficKeyExchange(threads int, active []int, flitsPerThread float64) [][]float64 {
	m := zeroMatrix(threads)
	if len(active) < 2 {
		return m
	}
	per := flitsPerThread / float64(len(active)-1)
	for _, i := range active {
		for _, j := range active {
			if i != j {
				m[i][j] = per
			}
		}
	}
	return m
}

// TrafficNeighbor models Linear Regression's "exchanges large data units
// with nearer cores" pattern: each active thread sends flitsPerThread to
// its radius nearest neighbours (by thread id, wrapping).
func TrafficNeighbor(threads int, active []int, flitsPerThread float64, radius int) [][]float64 {
	m := zeroMatrix(threads)
	if len(active) < 2 || radius < 1 {
		return m
	}
	per := flitsPerThread / float64(2*radius)
	for idx, i := range active {
		for d := 1; d <= radius; d++ {
			j := active[(idx+d)%len(active)]
			k := active[(idx-d+len(active))%len(active)]
			if i != j {
				m[i][j] += per
			}
			if i != k {
				m[i][k] += per
			}
		}
	}
	return m
}

// TrafficConvergent models a Merge stage: each sender thread ships its
// partial result to its merge partner (pair i -> i-step), concentrating
// traffic toward thread 0 as stages progress.
func TrafficConvergent(threads int, senders, receivers []int, flitsPerSender float64) [][]float64 {
	m := zeroMatrix(threads)
	for i, s := range senders {
		if i < len(receivers) && s != receivers[i] {
			m[s][receivers[i]] += flitsPerSender
		}
	}
	return m
}

// TrafficMaster models library initialization and Split: the master thread
// broadcasts task descriptors and storage pointers to every other thread.
func TrafficMaster(threads, master int, flitsPerThread float64) [][]float64 {
	m := zeroMatrix(threads)
	for j := 0; j < threads; j++ {
		if j != master {
			m[master][j] = flitsPerThread
			m[j][master] = flitsPerThread * 0.25 // acks
		}
	}
	return m
}

// AddTraffic sums matrices b into a (a is modified and returned; matrices
// must agree in size).
func AddTraffic(a [][]float64, bs ...[][]float64) [][]float64 {
	for _, b := range bs {
		for i := range a {
			for j := range a[i] {
				a[i][j] += b[i][j]
			}
		}
	}
	return a
}

func zeroMatrix(n int) [][]float64 {
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
	}
	return m
}

// AllThreads returns [0, 1, ..., n-1].
func AllThreads(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
