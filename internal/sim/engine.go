package sim

import (
	"fmt"

	"wivfi/internal/energy"
	"wivfi/internal/noc"
	"wivfi/internal/place"
	"wivfi/internal/platform"
	"wivfi/internal/sched"
)

// System is one fully configured platform: cores with per-island DVFS
// state, a thread-to-tile mapping and a routed interconnect.
type System struct {
	Name string
	Chip platform.Chip
	// VFI assigns threads (not tiles) to islands and islands to operating
	// points; thread i's core runs at VFI.PointOf(i).
	VFI platform.VFIConfig
	// Mapping places thread i on tile Mapping.ThreadToTile[i].
	Mapping place.Mapping
	// Routes is the routed interconnect topology.
	Routes *noc.RouteTable
	// Models and configuration.
	NetModel    energy.NetworkModel
	CoreModel   energy.CoreModel
	Analytic    noc.AnalyticConfig
	NetClockGHz float64
	// Policy selects the Map-phase stealing behaviour.
	Policy sched.Policy
	// MemRoundTripFactor converts one memory operation into this many
	// network packet traversals; 3 models the MOESI directory indirection
	// (requester -> home -> owner/data -> requester).
	MemRoundTripFactor float64
	// AdaptiveRouting enables per-phase congestion-aware route refinement
	// (irregular fabrics configure their routing tables per application;
	// XY mesh routing is oblivious and unaffected).
	AdaptiveRouting bool
}

// Validate checks the system is complete and dimensionally consistent.
func (s *System) Validate() error {
	n := s.Chip.NumCores()
	if len(s.VFI.Assign) != n {
		return fmt.Errorf("sim: VFI covers %d threads for %d cores", len(s.VFI.Assign), n)
	}
	if err := s.VFI.Validate(); err != nil {
		return err
	}
	if err := s.Mapping.Validate(); err != nil {
		return err
	}
	if len(s.Mapping.ThreadToTile) != n {
		return fmt.Errorf("sim: mapping covers %d threads", len(s.Mapping.ThreadToTile))
	}
	if s.Routes == nil {
		return fmt.Errorf("sim: system %q has no routes", s.Name)
	}
	if s.NetClockGHz <= 0 {
		return fmt.Errorf("sim: net clock %v", s.NetClockGHz)
	}
	if s.MemRoundTripFactor <= 0 {
		return fmt.Errorf("sim: memory round-trip factor %v", s.MemRoundTripFactor)
	}
	return nil
}

// PhaseResult reports one executed phase.
type PhaseResult struct {
	Kind             PhaseKind
	Iteration        int
	Seconds          float64
	BusySec          []float64 // per thread
	CoreDynJ         float64
	CoreLeakJ        float64
	NetJ             float64
	NetLatencyCycles float64
	MemStallSec      float64 // per-memory-op stall used this phase
	Steals           int
}

// RunResult aggregates a full workload execution on one system.
type RunResult struct {
	System   string
	Workload string
	Phases   []PhaseResult
	Report   energy.Report
	// BusySec is the per-thread total busy time.
	BusySec []float64
	// ThreadTraffic is the total thread-to-thread flits exchanged.
	ThreadTraffic [][]float64
}

// SecondsByKind sums phase durations per kind (the Fig. 7 breakdown).
func (r *RunResult) SecondsByKind() map[PhaseKind]float64 {
	out := map[PhaseKind]float64{}
	for _, ph := range r.Phases {
		out[ph.Kind] += ph.Seconds
	}
	return out
}

// Profile derives the platform profile the VFI design flow consumes:
// per-thread utilization over the whole run and thread-to-thread traffic
// rates in flits per microsecond. Run this on the non-VFI baseline system,
// per step 1 of the paper's design flow.
func (r *RunResult) Profile() platform.Profile {
	n := len(r.BusySec)
	util := make([]float64, n)
	total := r.Report.ExecSeconds
	for i, b := range r.BusySec {
		if total > 0 {
			util[i] = b / total
		}
		if util[i] > 1 {
			util[i] = 1
		}
	}
	traffic := make([][]float64, n)
	for i := range traffic {
		traffic[i] = make([]float64, n)
		for j := range traffic[i] {
			if total > 0 && i != j {
				traffic[i][j] = r.ThreadTraffic[i][j] / (total * 1e6)
			}
		}
	}
	return platform.Profile{Util: util, Traffic: traffic}
}

// Run executes the workload on the system.
func Run(w *Workload, s *System) (*RunResult, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	n := s.Chip.NumCores()
	if w.Threads != n {
		return nil, fmt.Errorf("sim: workload has %d threads for %d cores", w.Threads, n)
	}
	res := &RunResult{
		System:        s.Name,
		Workload:      w.Name,
		BusySec:       make([]float64, n),
		ThreadTraffic: zeroMatrix(n),
	}
	freqs := make([]float64, n)
	for th := 0; th < n; th++ {
		freqs[th] = s.VFI.FreqOf(th)
	}
	for _, ph := range w.Phases {
		pr, err := runPhase(&ph, s, freqs)
		if err != nil {
			return nil, fmt.Errorf("sim: %s/%v: %w", w.Name, ph.Kind, err)
		}
		res.Phases = append(res.Phases, pr)
		res.Report.ExecSeconds += pr.Seconds
		res.Report.CoreDynamicJ += pr.CoreDynJ
		res.Report.CoreLeakageJ += pr.CoreLeakJ
		res.Report.NetworkJ += pr.NetJ
		for th := range pr.BusySec {
			res.BusySec[th] += pr.BusySec[th]
		}
		if ph.Traffic != nil {
			AddTraffic(res.ThreadTraffic, ph.Traffic)
		}
	}
	return res, nil
}

// runPhase executes one phase with a small fixed-point iteration between
// phase duration and network-dependent memory stall time.
func runPhase(ph *Phase, s *System, freqs []float64) (PhaseResult, error) {
	n := len(freqs)
	// Switch-level traffic for this phase.
	var switchTraffic [][]float64
	var totalFlits float64
	if ph.Traffic != nil {
		switchTraffic = place.MapTraffic(ph.Traffic, s.Mapping)
		for _, row := range ph.Traffic {
			for _, f := range row {
				totalFlits += f
			}
		}
	}
	memStall := 0.0 // seconds per memory op; refined by fixed point
	var dur float64
	var busy []float64
	var steals int
	var netLat float64
	var err error
	routes := s.Routes
	// rates is reused across fixed-point iterations; every entry is
	// rewritten before each evaluation.
	var rates [][]float64
	if switchTraffic != nil {
		rates = make([][]float64, n)
		for i := range rates {
			rates[i] = make([]float64, n)
		}
	}
	for iter := 0; iter < 3; iter++ {
		dur, busy, steals, err = phaseDuration(ph, s, freqs, memStall)
		if err != nil {
			return PhaseResult{}, err
		}
		if switchTraffic == nil || totalFlits == 0 || dur <= 0 {
			break
		}
		// Convert phase flit totals into flits/cycle rates and evaluate
		// the network.
		cycles := dur * s.NetClockGHz * 1e9
		for i := range rates {
			for j := range rates[i] {
				rates[i][j] = switchTraffic[i][j] / cycles
			}
		}
		if s.AdaptiveRouting && iter == 0 {
			refined, rerr := noc.RefineRoutes(routes, rates, 2, s.Analytic.MaxUtilization)
			if rerr != nil {
				return PhaseResult{}, rerr
			}
			routes = refined
		}
		ana, aerr := noc.Analytic(routes, rates, s.NetModel, s.Analytic)
		if aerr != nil {
			return PhaseResult{}, aerr
		}
		netLat = ana.AvgLatencyCycles
		memStall = s.MemRoundTripFactor * netLat / (s.NetClockGHz * 1e9)
	}

	pr := PhaseResult{
		Kind:             ph.Kind,
		Iteration:        ph.Iteration,
		Seconds:          dur,
		BusySec:          busy,
		NetLatencyCycles: netLat,
		MemStallSec:      memStall,
		Steals:           steals,
	}
	// Network energy: every flit travels its (possibly refined) route once.
	if switchTraffic != nil {
		var pj float64
		for src := 0; src < n; src++ {
			for dst := 0; dst < n; dst++ {
				if f := switchTraffic[src][dst]; f != 0 && src != dst {
					pj += f * routes.PathEnergyPJ(src, dst, s.NetModel)
				}
			}
		}
		pr.NetJ = pj * 1e-12
	}
	// Core energy: dynamic while busy, idle-clock for the rest, leakage
	// for the whole phase, all at the thread's island operating point.
	for th := 0; th < n; th++ {
		op := s.VFI.PointOf(th)
		b := busy[th]
		if b > dur {
			b = dur
		}
		pr.CoreDynJ += s.CoreModel.DynamicPowerW(op, 1)*b +
			s.CoreModel.DynamicPowerW(op, 1)*s.CoreModel.IdleFrac*(dur-b)
		pr.CoreLeakJ += s.CoreModel.LeakagePowerW(op) * dur
	}
	return pr, nil
}

// phaseDuration computes the phase makespan and per-thread busy times for a
// given per-memory-op stall.
func phaseDuration(ph *Phase, s *System, freqs []float64, memStall float64) (float64, []float64, int, error) {
	n := len(freqs)
	busy := make([]float64, n)
	switch ph.Kind {
	case Map:
		active := ph.ActiveThreads
		if active == nil {
			active = AllThreads(n)
		}
		activeFreqs := make([]float64, len(active))
		for i, th := range active {
			activeFreqs[i] = freqs[th]
		}
		tasks := sched.UniformTasks(ph.Tasks, ph.TaskCycles, ph.TaskSpread, ph.TaskMemOps*memStall)
		assign := sched.DealRoundRobin(ph.Tasks, len(active))
		res, err := sched.RunPhase(tasks, assign, activeFreqs, s.Policy, 0)
		if err != nil {
			return 0, nil, 0, err
		}
		for i, th := range active {
			busy[th] = res.BusySec[i]
		}
		return res.MakespanSec, busy, res.Steals, nil
	default:
		var dur float64
		for th := 0; th < n; th++ {
			w := ph.WorkCycles[th]
			if w == 0 {
				continue
			}
			compute := w / (freqs[th] * 1e9)
			d := compute
			if ph.MemOps != nil {
				d += ph.MemOps[th] * memStall
			}
			// Busy counts compute only: memory stalls commit no
			// instructions, so they do not raise IPC-based utilization.
			busy[th] = compute
			if d > dur {
				dur = d
			}
		}
		return dur, busy, 0, nil
	}
}
