package sim

import (
	"math"
	"testing"

	"wivfi/internal/noc"
	"wivfi/internal/platform"
	"wivfi/internal/sched"
	"wivfi/internal/topo"
)

// rebuildMeshRoutes rebuilds XY mesh routes with altered link costs.
func rebuildMeshRoutes(s *System, costs noc.LinkCosts) (*noc.RouteTable, error) {
	return noc.BuildRoutes(topo.Mesh(s.Chip), costs, noc.XY)
}

// testWorkload builds a small but complete workload on 64 threads:
// libinit (master only) -> map -> reduce -> merge.
func testWorkload() *Workload {
	n := 64
	all := AllThreads(n)
	libWork := make([]float64, n)
	libWork[0] = 0.2e9 // master busy 80 ms at 2.5 GHz
	libMem := make([]float64, n)
	libMem[0] = 1e5

	redWork := make([]float64, n)
	redMem := make([]float64, n)
	for i := range redWork {
		redWork[i] = 0.1e9
		redMem[i] = 5e4
	}
	mergeWork := make([]float64, n)
	for i := 0; i < 8; i++ {
		mergeWork[i] = 0.05e9
	}
	return &Workload{
		Name:    "test",
		Threads: n,
		Phases: []Phase{
			{
				Kind:       LibInit,
				WorkCycles: libWork,
				MemOps:     libMem,
				Traffic:    TrafficMaster(n, 0, 2e4),
			},
			{
				Kind:       Map,
				Tasks:      256,
				TaskCycles: 0.05e9,
				TaskSpread: 0.1,
				TaskMemOps: 2e4,
				Traffic:    TrafficUniform(n, all, 5e5),
			},
			{
				Kind:       Reduce,
				WorkCycles: redWork,
				MemOps:     redMem,
				Traffic:    TrafficKeyExchange(n, all, 2e4),
			},
			{
				Kind:       Merge,
				WorkCycles: mergeWork,
				Traffic:    TrafficConvergent(n, []int{4, 5, 6, 7}, []int{0, 1, 2, 3}, 1e4),
			},
		},
	}
}

func nvfi(t *testing.T) *System {
	t.Helper()
	s, err := NVFIMesh(DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestWorkloadValidate(t *testing.T) {
	w := testWorkload()
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &Workload{Name: "x", Threads: 0}
	if err := bad.Validate(); err == nil {
		t.Error("zero threads accepted")
	}
	w2 := testWorkload()
	w2.Phases[0].WorkCycles = w2.Phases[0].WorkCycles[:3]
	if err := w2.Validate(); err == nil {
		t.Error("short work vector accepted")
	}
	w3 := testWorkload()
	w3.Phases[1].Tasks = 0
	if err := w3.Validate(); err == nil {
		t.Error("map phase without tasks accepted")
	}
}

func TestRunProducesSaneResult(t *testing.T) {
	w := testWorkload()
	s := nvfi(t)
	res, err := Run(w, s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.ExecSeconds <= 0 {
		t.Fatal("zero execution time")
	}
	if res.Report.TotalJ() <= 0 {
		t.Fatal("zero energy")
	}
	if len(res.Phases) != 4 {
		t.Fatalf("%d phases", len(res.Phases))
	}
	// phase kinds in order
	wantKinds := []PhaseKind{LibInit, Map, Reduce, Merge}
	var sum float64
	for i, ph := range res.Phases {
		if ph.Kind != wantKinds[i] {
			t.Errorf("phase %d kind %v", i, ph.Kind)
		}
		if ph.Seconds <= 0 {
			t.Errorf("phase %v has zero duration", ph.Kind)
		}
		sum += ph.Seconds
	}
	if math.Abs(sum-res.Report.ExecSeconds) > 1e-9 {
		t.Error("phase durations do not sum to total")
	}
	// libinit busy only on master
	lib := res.Phases[0]
	for th := 1; th < 64; th++ {
		if lib.BusySec[th] != 0 {
			t.Fatalf("thread %d busy during libinit", th)
		}
	}
	if lib.BusySec[0] <= 0 {
		t.Fatal("master idle during libinit")
	}
	// network energy accounted
	if res.Report.NetworkJ <= 0 {
		t.Error("no network energy")
	}
}

func TestProfileDerivation(t *testing.T) {
	w := testWorkload()
	s := nvfi(t)
	res, err := Run(w, s)
	if err != nil {
		t.Fatal(err)
	}
	prof := res.Profile()
	if err := prof.Validate(); err != nil {
		t.Fatal(err)
	}
	// master (thread 0) must have above-average utilization: it works in
	// every phase including libinit and merge
	mean := 0.0
	for _, u := range prof.Util {
		mean += u
	}
	mean /= 64
	if prof.Util[0] <= mean {
		t.Errorf("master utilization %v not above mean %v", prof.Util[0], mean)
	}
	if prof.TotalTraffic() <= 0 {
		t.Error("profile has no traffic")
	}
}

func TestVFISlowdownAndEnergySavings(t *testing.T) {
	// The core claim of VFI: running half the islands slower must save
	// energy at a bounded execution-time cost.
	w := testWorkload()
	base := nvfi(t)
	baseRes, err := Run(w, base)
	if err != nil {
		t.Fatal(err)
	}
	// hand-built VFI: islands of 16 threads, two at 1.0/2.5, two at 0.8/2.0
	assign := make([]int, 64)
	for i := range assign {
		assign[i] = i / 16
	}
	vfiCfg := platform.VFIConfig{
		Assign: assign,
		Points: []platform.OperatingPoint{
			{VoltageV: 1.0, FreqGHz: 2.5},
			{VoltageV: 1.0, FreqGHz: 2.5},
			{VoltageV: 0.8, FreqGHz: 2.0},
			{VoltageV: 0.8, FreqGHz: 2.0},
		},
	}
	prof := baseRes.Profile()
	vfiSys, err := VFIMesh(DefaultBuildConfig(), vfiCfg, prof.Traffic)
	if err != nil {
		t.Fatal(err)
	}
	vfiRes, err := Run(w, vfiSys)
	if err != nil {
		t.Fatal(err)
	}
	execR, enR, edpR := vfiRes.Report.Relative(baseRes.Report)
	if execR < 1.0 {
		t.Errorf("VFI system faster than baseline: %v", execR)
	}
	if execR > 1.30 {
		t.Errorf("VFI slowdown %v unreasonably high", execR)
	}
	if enR >= 1.0 {
		t.Errorf("VFI did not save energy: ratio %v", enR)
	}
	if edpR >= 1.0 {
		t.Errorf("VFI did not improve EDP: ratio %v", edpR)
	}
}

func TestWiNoCImprovesOnVFIMesh(t *testing.T) {
	w := testWorkload()
	base := nvfi(t)
	baseRes, err := Run(w, base)
	if err != nil {
		t.Fatal(err)
	}
	prof := baseRes.Profile()
	assign := make([]int, 64)
	for i := range assign {
		assign[i] = i / 16
	}
	vfiCfg := platform.VFIConfig{
		Assign: assign,
		Points: []platform.OperatingPoint{
			{VoltageV: 1.0, FreqGHz: 2.5},
			{VoltageV: 1.0, FreqGHz: 2.5},
			{VoltageV: 0.8, FreqGHz: 2.0},
			{VoltageV: 0.8, FreqGHz: 2.0},
		},
	}
	cfg := DefaultBuildConfig()
	meshSys, err := VFIMesh(cfg, vfiCfg, prof.Traffic)
	if err != nil {
		t.Fatal(err)
	}
	winocSys, err := VFIWiNoC(cfg, vfiCfg, prof.Traffic, MaxWireless)
	if err != nil {
		t.Fatal(err)
	}
	meshRes, err := Run(w, meshSys)
	if err != nil {
		t.Fatal(err)
	}
	winocRes, err := Run(w, winocSys)
	if err != nil {
		t.Fatal(err)
	}
	// WiNoC must not be slower than the VFI mesh and must cut network
	// energy (the premise of Figs. 7 and 8).
	if winocRes.Report.ExecSeconds > meshRes.Report.ExecSeconds*1.005 {
		t.Errorf("WiNoC exec %v above VFI mesh %v", winocRes.Report.ExecSeconds, meshRes.Report.ExecSeconds)
	}
	if winocRes.Report.NetworkJ >= meshRes.Report.NetworkJ {
		t.Errorf("WiNoC network energy %v not below mesh %v", winocRes.Report.NetworkJ, meshRes.Report.NetworkJ)
	}
	if winocRes.Report.EDP() >= meshRes.Report.EDP() {
		t.Errorf("WiNoC EDP %v not below VFI mesh %v", winocRes.Report.EDP(), meshRes.Report.EDP())
	}
	_, _, edpR := winocRes.Report.Relative(baseRes.Report)
	if edpR >= 1.0 {
		t.Errorf("WiNoC EDP ratio vs NVFI = %v, want < 1", edpR)
	}
}

func TestSystemValidate(t *testing.T) {
	s := nvfi(t)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := *s
	bad.NetClockGHz = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero net clock accepted")
	}
	bad2 := *s
	bad2.Routes = nil
	if err := bad2.Validate(); err == nil {
		t.Error("missing routes accepted")
	}
}

func TestRunRejectsMismatchedWorkload(t *testing.T) {
	w := testWorkload()
	w.Threads = 32
	w.Phases = w.Phases[1:2] // keep only map (no per-thread vectors)
	s := nvfi(t)
	if _, err := Run(w, s); err == nil {
		t.Error("thread-count mismatch accepted")
	}
}

func TestSecondsByKind(t *testing.T) {
	w := testWorkload()
	s := nvfi(t)
	res, err := Run(w, s)
	if err != nil {
		t.Fatal(err)
	}
	byKind := res.SecondsByKind()
	var sum float64
	for _, v := range byKind {
		sum += v
	}
	if math.Abs(sum-res.Report.ExecSeconds) > 1e-9 {
		t.Error("SecondsByKind does not cover total")
	}
	if byKind[Map] <= 0 {
		t.Error("no map time")
	}
}

func TestTrafficPatterns(t *testing.T) {
	n := 8
	all := AllThreads(n)
	checkTotal := func(name string, m [][]float64, want float64) {
		t.Helper()
		var sum float64
		for i := range m {
			if m[i][i] != 0 {
				t.Fatalf("%s: self traffic at %d", name, i)
			}
			for _, v := range m[i] {
				if v < 0 {
					t.Fatalf("%s: negative entry", name)
				}
				sum += v
			}
		}
		if math.Abs(sum-want) > 1e-9 {
			t.Errorf("%s total = %v, want %v", name, sum, want)
		}
	}
	checkTotal("uniform", TrafficUniform(n, all, 100), 100)
	checkTotal("keyexchange", TrafficKeyExchange(n, all, 10), 10*float64(n))
	checkTotal("neighbor", TrafficNeighbor(n, all, 10, 2), 10*float64(n))
	checkTotal("convergent", TrafficConvergent(n, []int{4, 5}, []int{0, 1}, 7), 14)
	master := TrafficMaster(n, 0, 8)
	if master[0][1] != 8 || master[1][0] != 2 {
		t.Errorf("master pattern wrong: %v", master[0][1])
	}
	// subset activity leaves outsiders untouched
	sub := TrafficUniform(n, []int{1, 2, 3}, 30)
	if sub[0][1] != 0 || sub[4][5] != 0 {
		t.Error("inactive threads received traffic")
	}
}

func TestMemStallCouplesNetworkToExecTime(t *testing.T) {
	// A memory-heavy phase must get slower when the network is slower. Use
	// the same workload on mesh vs a deliberately degraded-latency system.
	w := testWorkload()
	s := nvfi(t)
	res, err := Run(w, s)
	if err != nil {
		t.Fatal(err)
	}
	slow := *s
	costs := s.Routes.Costs()
	costs.RouterCycles *= 8
	slowRoutes, err := rebuildMeshRoutes(s, costs)
	if err != nil {
		t.Fatal(err)
	}
	slow.Routes = slowRoutes
	res2, err := Run(w, &slow)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Report.ExecSeconds <= res.Report.ExecSeconds {
		t.Errorf("slower network did not stretch execution: %v vs %v",
			res2.Report.ExecSeconds, res.Report.ExecSeconds)
	}
}

func TestNoStealingPolicyWiredThrough(t *testing.T) {
	w := testWorkload()
	s := nvfi(t)
	s.Policy = sched.NoStealing
	res, err := Run(w, s)
	if err != nil {
		t.Fatal(err)
	}
	for _, ph := range res.Phases {
		if ph.Steals != 0 {
			t.Errorf("steals with NoStealing policy: %d", ph.Steals)
		}
	}
}

func TestTrafficLocalized(t *testing.T) {
	n := 32
	all := AllThreads(n)
	m := TrafficLocalized(n, all, 1000, 0.6, 16)
	var local, global, total float64
	for i := range m {
		if m[i][i] != 0 {
			t.Fatal("self traffic")
		}
		for j, v := range m[i] {
			total += v
			if i/16 == j/16 {
				local += v
			} else {
				global += v
			}
		}
	}
	if math.Abs(total-1000) > 1e-6 {
		t.Errorf("total = %v, want 1000", total)
	}
	// local share = localFrac + (1-localFrac) * (in-block share of uniform)
	// = 0.6 + 0.4*15/31
	want := 0.6 + 0.4*15.0/31.0
	if math.Abs(local/total-want) > 1e-9 {
		t.Errorf("local share = %v, want %v", local/total, want)
	}
	// a thread alone in its block routes everything globally
	solo := TrafficLocalized(n, []int{0, 16, 17}, 300, 0.6, 16)
	if solo[0][16]+solo[0][17] <= 0 {
		t.Error("solo thread sent nothing")
	}
	var soloTotal float64
	for i := range solo {
		for _, v := range solo[i] {
			soloTotal += v
		}
	}
	if math.Abs(soloTotal-300) > 1e-6 {
		t.Errorf("solo total = %v", soloTotal)
	}
}

func TestRunPhasedMatchesRunWithStaticConfigs(t *testing.T) {
	// With every phase pinned to the same configuration and zero
	// transition cost, RunPhased must agree with Run exactly.
	w := testWorkload()
	s := nvfi(t)
	static, err := Run(w, s)
	if err != nil {
		t.Fatal(err)
	}
	configs := make([]platform.VFIConfig, len(w.Phases))
	for i := range configs {
		configs[i] = s.VFI
	}
	phased, err := RunPhased(w, s, configs, DVFSTransition{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(phased.Report.ExecSeconds-static.Report.ExecSeconds) > 1e-9 {
		t.Errorf("exec differs: %v vs %v", phased.Report.ExecSeconds, static.Report.ExecSeconds)
	}
	if math.Abs(phased.Report.TotalJ()-static.Report.TotalJ()) > 1e-6 {
		t.Errorf("energy differs: %v vs %v", phased.Report.TotalJ(), static.Report.TotalJ())
	}
}

func TestRunPhasedTransitionCosts(t *testing.T) {
	w := testWorkload()
	s := nvfi(t)
	// alternate island 0 between two rails each phase
	lowCfg := s.VFI.Clone()
	lowCfg.Points[0] = platform.OperatingPoint{VoltageV: 0.8, FreqGHz: 2.0}
	configs := make([]platform.VFIConfig, len(w.Phases))
	for i := range configs {
		if i%2 == 0 {
			configs[i] = s.VFI
		} else {
			configs[i] = lowCfg
		}
	}
	tr := DVFSTransition{SettleSec: 0.01, EnergyJ: 0.5}
	withCost, err := RunPhased(w, s, configs, tr)
	if err != nil {
		t.Fatal(err)
	}
	free, err := RunPhased(w, s, configs, DVFSTransition{})
	if err != nil {
		t.Fatal(err)
	}
	transitions := float64(len(w.Phases) - 1) // every boundary flips island 0
	wantExtraSec := transitions * tr.SettleSec
	if math.Abs((withCost.Report.ExecSeconds-free.Report.ExecSeconds)-wantExtraSec) > 1e-9 {
		t.Errorf("settle time delta = %v, want %v",
			withCost.Report.ExecSeconds-free.Report.ExecSeconds, wantExtraSec)
	}
	wantExtraJ := transitions * tr.EnergyJ
	deltaJ := withCost.Report.CoreDynamicJ - free.Report.CoreDynamicJ
	if math.Abs(deltaJ-wantExtraJ) > 1e-6 {
		t.Errorf("transition energy delta = %v, want %v", deltaJ, wantExtraJ)
	}
}

func TestRunPhasedRejectsIslandMigration(t *testing.T) {
	w := testWorkload()
	s := nvfi(t)
	configs := make([]platform.VFIConfig, len(w.Phases))
	for i := range configs {
		configs[i] = s.VFI.Clone()
	}
	// illegal: move thread 0 to a different island mid-run
	configs[1].Assign = append([]int(nil), configs[1].Assign...)
	configs[1].Points = append(configs[1].Points, platform.OperatingPoint{VoltageV: 0.8, FreqGHz: 2.0})
	configs[1].Assign[0] = 1
	if _, err := RunPhased(w, s, configs, DVFSTransition{}); err == nil {
		t.Error("island migration accepted")
	}
	// wrong config count
	if _, err := RunPhased(w, s, configs[:2], DVFSTransition{}); err == nil {
		t.Error("short config list accepted")
	}
}

func TestPhaseConfigsModes(t *testing.T) {
	w := testWorkload()
	s := nvfi(t)
	base, err := Run(w, s)
	if err != nil {
		t.Fatal(err)
	}
	// 4 islands of 16 threads
	assign := make([]int, 64)
	for i := range assign {
		assign[i] = i / 16
	}
	static := platform.VFIConfig{
		Assign: assign,
		Points: make([]platform.OperatingPoint, 4),
	}
	for j := range static.Points {
		static.Points[j] = platform.OperatingPoint{VoltageV: 1.0, FreqGHz: 2.5}
	}
	table := platform.DefaultDVFSTable()
	mean := PhaseConfigs(base, static, table, 0.35, PhaseUtilMean)
	maxc := PhaseConfigs(base, static, table, 0.35, PhaseUtilMaxCore)
	if len(mean) != len(w.Phases) || len(maxc) != len(w.Phases) {
		t.Fatal("config count mismatch")
	}
	// libinit: only the master (thread 0, island 0) works. Mean mode
	// throttles island 0; max-core mode must keep it faster.
	libMean := mean[0].Points[0].FreqGHz
	libMax := maxc[0].Points[0].FreqGHz
	if libMax < libMean {
		t.Errorf("max-core gave master island %v GHz, below mean mode's %v", libMax, libMean)
	}
	// idle islands during libinit drop to the lowest rail in both modes
	if mean[0].Points[3].FreqGHz != 1.5 || maxc[0].Points[3].FreqGHz != 1.5 {
		t.Errorf("idle island not throttled: mean %v, max %v",
			mean[0].Points[3].FreqGHz, maxc[0].Points[3].FreqGHz)
	}
	if PhaseUtilMean.String() != "mean" || PhaseUtilMaxCore.String() != "max-core" {
		t.Error("mode labels wrong")
	}
}
