package sim

import (
	"fmt"

	"wivfi/internal/platform"
	"wivfi/internal/sched"
)

// PhaseObservation is the live signal packet a governed run hands its
// controller after each phase completes: exactly the per-island
// utilization and queue-depth signals the post-hoc timeline samplers
// derive, but produced at the phase boundary of the run being governed, so
// a controller can act on them before the next phase starts. All fields
// describe the completed phase only — a controller never sees the future.
type PhaseObservation struct {
	// Index and Kind identify the completed phase.
	Index int
	Kind  PhaseKind
	// Seconds is the phase makespan (before any transition stall charged
	// to the phase for the controller's own decision).
	Seconds float64
	// IslandUtil is busy core-seconds over available core-seconds per
	// island, clamped to [0, 1] — the same summary the static design flow
	// feeds its margin-quantize rule.
	IslandUtil []float64
	// QueueDepth is the initial per-worker task backlog of a Map phase
	// (tasks dealt per active thread of the island); 0 for barrier phases
	// and for islands with no active threads.
	QueueDepth []float64
	// IslandPowerW is the measured core power (dynamic + idle clock +
	// leakage) per island over the phase, at the operating points the
	// phase actually ran at.
	IslandPowerW []float64
	// CorePowerW is the chip total of IslandPowerW.
	CorePowerW float64
}

// Controller is the observe->decide->actuate hook of a governed run: it is
// called at every phase boundary with the observation of the phase that
// just completed (nil before the first phase) and must return the VFI
// configuration for the phase about to run. All returned configurations
// must share the system's island partition — cores never migrate between
// islands at run time, only rails move. Finish delivers the last phase's
// observation, which no Decide call ever sees.
type Controller interface {
	Decide(prev *PhaseObservation, index int, kind PhaseKind) platform.VFIConfig
	Finish(last *PhaseObservation)
}

// RunGoverned executes the workload under a closed-loop DVFS controller:
// where RunPhased replays a precomputed (offline, oracle) per-phase plan,
// RunGoverned asks the controller for each phase's configuration online,
// feeding it only observations of phases the governed run itself has
// already executed. Island transitions between consecutive phases pay the
// DVFSTransition cost exactly as in RunPhased, so results are directly
// comparable to Run and RunPhased on the same system.
func RunGoverned(w *Workload, s *System, ctrl Controller, tr DVFSTransition) (*RunResult, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	n := s.Chip.NumCores()
	if w.Threads != n {
		return nil, fmt.Errorf("sim: workload has %d threads for %d cores", w.Threads, n)
	}
	islands := s.VFI.Islands()
	res := &RunResult{
		System:        s.Name + "+governed",
		Workload:      w.Name,
		BusySec:       make([]float64, n),
		ThreadTraffic: zeroMatrix(n),
	}
	governedSys := *s
	var prevCfg platform.VFIConfig
	var obs *PhaseObservation
	for i := range w.Phases {
		ph := w.Phases[i]
		cfg := ctrl.Decide(obs, i, ph.Kind)
		if len(cfg.Assign) != n {
			return nil, fmt.Errorf("sim: phase %d governor config covers %d threads", i, len(cfg.Assign))
		}
		if err := cfg.Validate(); err != nil {
			return nil, fmt.Errorf("sim: phase %d governor config: %w", i, err)
		}
		for th := 0; th < n; th++ {
			if cfg.Assign[th] != s.VFI.Assign[th] {
				return nil, fmt.Errorf("sim: phase %d governor reassigns thread %d between islands", i, th)
			}
		}
		governedSys.VFI = cfg
		freqs := make([]float64, n)
		for th := 0; th < n; th++ {
			freqs[th] = cfg.FreqOf(th)
		}
		pr, err := runPhase(&ph, &governedSys, freqs)
		if err != nil {
			return nil, fmt.Errorf("sim: %s/%v: %w", w.Name, ph.Kind, err)
		}
		// The observation describes the phase as executed, before the
		// boundary transition stall is charged — the controller reasons
		// about steady-state phase behaviour, not about its own actuation
		// overhead (which it pays, and can count, separately).
		obs = observePhase(i, &ph, &pr, cfg, islands, &governedSys)
		if i > 0 {
			changed := 0
			for j := range cfg.Points {
				if cfg.Points[j] != prevCfg.Points[j] {
					changed++
				}
			}
			if changed > 0 {
				pr.Seconds += tr.SettleSec
				pr.CoreDynJ += float64(changed) * tr.EnergyJ
			}
		}
		prevCfg = cfg
		res.Phases = append(res.Phases, pr)
		res.Report.ExecSeconds += pr.Seconds
		res.Report.CoreDynamicJ += pr.CoreDynJ
		res.Report.CoreLeakageJ += pr.CoreLeakJ
		res.Report.NetworkJ += pr.NetJ
		for th := range pr.BusySec {
			res.BusySec[th] += pr.BusySec[th]
		}
		if ph.Traffic != nil {
			AddTraffic(res.ThreadTraffic, ph.Traffic)
		}
	}
	ctrl.Finish(obs)
	return res, nil
}

// observePhase condenses one executed phase into the controller's signal
// packet: per-island utilization, Map-phase queue depth and measured core
// power at the operating points the phase ran at.
func observePhase(index int, ph *Phase, pr *PhaseResult, cfg platform.VFIConfig,
	islands [][]int, s *System) *PhaseObservation {
	m := len(islands)
	o := &PhaseObservation{
		Index:        index,
		Kind:         ph.Kind,
		Seconds:      pr.Seconds,
		IslandUtil:   make([]float64, m),
		QueueDepth:   make([]float64, m),
		IslandPowerW: make([]float64, m),
	}
	dur := pr.Seconds
	for isl, cores := range islands {
		var busy, energy float64
		for _, th := range cores {
			b := pr.BusySec[th]
			if b > dur {
				b = dur
			}
			busy += b
			op := cfg.PointOf(th)
			energy += s.CoreModel.DynamicPowerW(op, 1)*b +
				s.CoreModel.DynamicPowerW(op, 1)*s.CoreModel.IdleFrac*(dur-b) +
				s.CoreModel.LeakagePowerW(op)*dur
		}
		if dur > 0 {
			o.IslandUtil[isl] = busy / (dur * float64(len(cores)))
			o.IslandPowerW[isl] = energy / dur
		}
		if o.IslandUtil[isl] > 1 {
			o.IslandUtil[isl] = 1
		}
		o.CorePowerW += o.IslandPowerW[isl]
	}
	if ph.Kind == Map {
		active := ph.ActiveThreads
		if active == nil {
			active = AllThreads(len(cfg.Assign))
		}
		assign := sched.DealRoundRobin(ph.Tasks, len(active))
		islandTasks := make([]float64, m)
		islandWorkers := make([]float64, m)
		for _, th := range active {
			islandWorkers[cfg.Assign[th]]++
		}
		for _, w := range assign {
			islandTasks[cfg.Assign[active[w]]]++
		}
		for isl := range islandTasks {
			if islandWorkers[isl] > 0 {
				o.QueueDepth[isl] = islandTasks[isl] / islandWorkers[isl]
			}
		}
	}
	return o
}
