package sim

import (
	"fmt"

	"wivfi/internal/platform"
)

// DVFSTransition models the cost of re-programming an island's
// voltage/frequency between phases: per-island regulators need time to
// settle and burn charge moving the rail.
type DVFSTransition struct {
	// SettleSec is the stall while an island's rail moves (typical on-chip
	// regulator + PLL relock budgets are in the microseconds).
	SettleSec float64
	// EnergyJ is the charge moved per island transition.
	EnergyJ float64
}

// DefaultDVFSTransition returns a 20 us / 2 uJ transition, consistent with
// fast on-chip regulation at 65 nm.
func DefaultDVFSTransition() DVFSTransition {
	return DVFSTransition{SettleSec: 20e-6, EnergyJ: 2e-6}
}

// RunPhased executes the workload with a per-phase VFI configuration — the
// extension the paper's introduction gestures at ("the execution of
// MapReduce generates varying workload patterns depending on the execution
// stages"): instead of one static V/F per island for the whole run, every
// phase gets its own assignment. configs[i] applies to workload phase i;
// all configurations must share the system's island partition (cores never
// migrate between islands at run time — only rails move).
//
// Island transitions between consecutive phases pay the DVFSTransition
// cost. The result is directly comparable to Run on the same system.
func RunPhased(w *Workload, s *System, configs []platform.VFIConfig, tr DVFSTransition) (*RunResult, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if len(configs) != len(w.Phases) {
		return nil, fmt.Errorf("sim: %d phase configs for %d phases", len(configs), len(w.Phases))
	}
	n := s.Chip.NumCores()
	for i, cfg := range configs {
		if len(cfg.Assign) != n {
			return nil, fmt.Errorf("sim: phase %d config covers %d threads", i, len(cfg.Assign))
		}
		if err := cfg.Validate(); err != nil {
			return nil, fmt.Errorf("sim: phase %d config: %w", i, err)
		}
		for th := 0; th < n; th++ {
			if cfg.Assign[th] != configs[0].Assign[th] {
				return nil, fmt.Errorf("sim: phase %d reassigns thread %d between islands", i, th)
			}
		}
	}
	res := &RunResult{
		System:        s.Name + "+phased-dvfs",
		Workload:      w.Name,
		BusySec:       make([]float64, n),
		ThreadTraffic: zeroMatrix(n),
	}
	phasedSys := *s
	for i := range w.Phases {
		ph := w.Phases[i]
		phasedSys.VFI = configs[i]
		freqs := make([]float64, n)
		for th := 0; th < n; th++ {
			freqs[th] = configs[i].FreqOf(th)
		}
		pr, err := runPhase(&ph, &phasedSys, freqs)
		if err != nil {
			return nil, fmt.Errorf("sim: %s/%v: %w", w.Name, ph.Kind, err)
		}
		// transition cost: every island whose point changed since the
		// previous phase pays settle time (serializing the phase start)
		// and transition energy
		if i > 0 {
			changed := 0
			for j := range configs[i].Points {
				if configs[i].Points[j] != configs[i-1].Points[j] {
					changed++
				}
			}
			if changed > 0 {
				pr.Seconds += tr.SettleSec
				pr.CoreDynJ += float64(changed) * tr.EnergyJ
			}
		}
		res.Phases = append(res.Phases, pr)
		res.Report.ExecSeconds += pr.Seconds
		res.Report.CoreDynamicJ += pr.CoreDynJ
		res.Report.CoreLeakageJ += pr.CoreLeakJ
		res.Report.NetworkJ += pr.NetJ
		for th := range pr.BusySec {
			res.BusySec[th] += pr.BusySec[th]
		}
		if ph.Traffic != nil {
			AddTraffic(res.ThreadTraffic, ph.Traffic)
		}
	}
	return res, nil
}

// PhaseUtilMode selects how an island's per-phase utilization is summarized
// when deriving phase-adaptive V/F.
type PhaseUtilMode int

const (
	// PhaseUtilMean scales by the island's mean utilization within the
	// phase. Aggressive: an island with one hot master and fifteen idle
	// threads reads as idle and gets throttled — which stretches
	// master-critical phases (library init, merge).
	PhaseUtilMean PhaseUtilMode = iota
	// PhaseUtilMaxCore scales by the busiest core of the island within the
	// phase — bottleneck-aware: an island is only throttled when *no* core
	// in it is on the critical path.
	PhaseUtilMaxCore
)

func (m PhaseUtilMode) String() string {
	if m == PhaseUtilMean {
		return "mean"
	}
	return "max-core"
}

// PhaseConfigs derives a per-phase VFI assignment from a baseline run: for
// each phase, each island's V/F follows the same margin-quantize rule as
// the static flow but fed with that phase's island utilization (per the
// chosen mode). Idle islands drop to the lowest rail.
func PhaseConfigs(base *RunResult, static platform.VFIConfig,
	table []platform.OperatingPoint, margin float64, mode PhaseUtilMode) []platform.VFIConfig {
	islands := static.Islands()
	fmax := platform.MaxPoint(table).FreqGHz
	configs := make([]platform.VFIConfig, len(base.Phases))
	for i, ph := range base.Phases {
		cfg := static.Clone()
		for j, cores := range islands {
			util := 0.0
			if ph.Seconds > 0 {
				switch mode {
				case PhaseUtilMaxCore:
					for _, th := range cores {
						if u := ph.BusySec[th] / ph.Seconds; u > util {
							util = u
						}
					}
				default:
					var busy float64
					for _, th := range cores {
						busy += ph.BusySec[th]
					}
					util = busy / (ph.Seconds * float64(len(cores)))
				}
			}
			target := util + margin
			if target > 1 {
				target = 1
			}
			cfg.Points[j] = platform.QuantizeUp(table, fmax*target)
		}
		configs[i] = cfg
	}
	return configs
}
