package sim

import (
	"fmt"
	"runtime"
	"time"

	"wivfi/internal/obs"
)

// Telemetry: jobs admitted, total time jobs waited for a slot, and the
// number in flight (with high-water mark). Counters are always live and
// allocation-free; the spans in DoNamed record only while a recorder is
// installed.
// Metric names registered below. Declared constants (enforced by
// wivfi-lint countersafe) so every lookup site shares one authoritative
// spelling.
const (
	MetricPoolJobs        = "sim.pool.jobs"
	MetricPoolQueueWaitNS = "sim.pool.queue_wait_ns"
	MetricPoolInFlight    = "sim.pool.in_flight"
)

var (
	poolJobs      = obs.NewCounter(MetricPoolJobs)
	poolQueueWait = obs.NewCounter(MetricPoolQueueWaitNS)
	poolInFlight  = obs.NewGauge(MetricPoolInFlight)
)

// Pool bounds the number of CPU-heavy jobs (system simulations, annealing
// passes) running concurrently. The experiment harness shares one Pool per
// Suite so that fanning out many pipelines does not oversubscribe the host:
// any number of goroutines may queue work, at most cap(sem) of them compute
// at once.
//
// A nil *Pool is valid and runs every job inline, which keeps call sites
// free of nil checks and makes serial execution (-j 1 semantics with no
// pool at all) trivially available.
type Pool struct {
	// sem carries the slot ids 0..n-1; holding an id is holding an
	// admission slot. The id keys the per-slot trace track, so a Chrome
	// trace shows one lane per concurrent job.
	sem chan int
}

// NewPool returns a pool admitting n concurrent jobs; n < 1 is clamped to 1.
func NewPool(n int) *Pool {
	if n < 1 {
		n = 1
	}
	p := &Pool{sem: make(chan int, n)}
	for i := 0; i < n; i++ {
		p.sem <- i
	}
	return p
}

// DefaultPool sizes the pool to GOMAXPROCS, the right bound for the
// pure-CPU simulation jobs it gates.
func DefaultPool() *Pool {
	return NewPool(runtime.GOMAXPROCS(0))
}

// Size reports the admission bound (1 for a nil pool).
func (p *Pool) Size() int {
	if p == nil {
		return 1
	}
	return cap(p.sem)
}

// Do runs fn once an admission slot is free and releases the slot when fn
// returns. Callers must not call Do from inside fn (the pool is a simple
// semaphore; nested acquisition can deadlock when the pool is saturated
// with parents waiting on children). The harness always acquires slots for
// leaf jobs only.
func (p *Pool) Do(fn func()) { p.DoNamed("", "", fn) }

// DoNamed is Do plus a tracing span: when a recorder is installed and
// name is non-empty, fn's execution is recorded as a span named name
// (detail distinguishes instances) on the track of the admitting pool
// slot, so traces show one lane per concurrent simulation. With telemetry
// disabled it behaves exactly like Do.
func (p *Pool) DoNamed(name, detail string, fn func()) {
	if p == nil {
		if name != "" && obs.Enabled() {
			sp := obs.StartSpan(name, detail)
			defer sp.End()
		}
		fn()
		return
	}
	enqueued := time.Now()
	slot := <-p.sem
	poolQueueWait.Add(int64(time.Since(enqueued)))
	poolJobs.Add(1)
	poolInFlight.Add(1)
	defer func() {
		poolInFlight.Add(-1)
		p.sem <- slot
	}()
	if name != "" && obs.Enabled() {
		sp := obs.StartSpanOn(obs.TrackFor(fmt.Sprintf("pool-slot-%02d", slot)), name, detail)
		defer sp.End()
	}
	fn()
}
