package sim

import "runtime"

// Pool bounds the number of CPU-heavy jobs (system simulations, annealing
// passes) running concurrently. The experiment harness shares one Pool per
// Suite so that fanning out many pipelines does not oversubscribe the host:
// any number of goroutines may queue work, at most cap(sem) of them compute
// at once.
//
// A nil *Pool is valid and runs every job inline, which keeps call sites
// free of nil checks and makes serial execution (-j 1 semantics with no
// pool at all) trivially available.
type Pool struct {
	sem chan struct{}
}

// NewPool returns a pool admitting n concurrent jobs; n < 1 is clamped to 1.
func NewPool(n int) *Pool {
	if n < 1 {
		n = 1
	}
	return &Pool{sem: make(chan struct{}, n)}
}

// DefaultPool sizes the pool to GOMAXPROCS, the right bound for the
// pure-CPU simulation jobs it gates.
func DefaultPool() *Pool {
	return NewPool(runtime.GOMAXPROCS(0))
}

// Size reports the admission bound (1 for a nil pool).
func (p *Pool) Size() int {
	if p == nil {
		return 1
	}
	return cap(p.sem)
}

// Do runs fn once an admission slot is free and releases the slot when fn
// returns. Callers must not call Do from inside fn (the pool is a simple
// semaphore; nested acquisition can deadlock when the pool is saturated
// with parents waiting on children). The harness always acquires slots for
// leaf jobs only.
func (p *Pool) Do(fn func()) {
	if p == nil {
		fn()
		return
	}
	p.sem <- struct{}{}
	defer func() { <-p.sem }()
	fn()
}
