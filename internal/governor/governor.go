// Package governor is the closed-loop DVFS control plane: a
// sim.Controller that consumes the per-island utilization and queue-depth
// signals a governed run produces at every phase boundary and re-assigns
// island operating points online, under three policies — the paper's
// static plan held fixed (the baseline), a utilization-threshold governor
// applying the paper's margin-quantize rule to live observations, and the
// same governor under a chip-level core-power cap with priority shedding.
//
// Every decision is observable (a deterministic decision log, live
// decision callbacks for the serving layer, process-wide obs counters and
// a cap-violation gauge) and deterministic: decisions are pure functions
// of the observations, which are themselves pure functions of the
// configuration, so the decision log is byte-identical across -j levels,
// cache states and telemetry settings.
//
// Cap semantics: the cap bounds worst-case core-rail power — every core of
// every island busy at its island's operating point, plus leakage (the
// NoC is excluded; it is not behind the island rails). Because measured
// core power is monotone in utilization and utilization is at most 1, a
// configuration admitted under the worst-case bound can never exceed the
// cap in measurement, whatever the workload does next phase.
package governor

import (
	"fmt"

	"wivfi/internal/energy"
	"wivfi/internal/platform"
	"wivfi/internal/sim"
)

// Policy selects the governor's decision rule.
type Policy int

const (
	// Static holds the paper's offline plan for every phase — the
	// baseline the two closed-loop policies are compared against.
	Static Policy = iota
	// Util re-derives each island's operating point at every phase
	// boundary from an EWMA of its observed utilization, using the same
	// margin-quantize rule as the static design flow, with a queue-backlog
	// boost for saturated islands.
	Util
	// Cap is Util with a chip-level core-power cap: when the utilization
	// targets would exceed the cap's worst-case bound, islands shed one
	// ladder step at a time — lowest observed utilization first, islands
	// raised for bottleneck cores last.
	Cap
)

// String names the policy as spelled on -policy flags and request fields.
func (p Policy) String() string {
	switch p {
	case Static:
		return "static"
	case Util:
		return "util"
	case Cap:
		return "cap"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// PolicyNames lists the accepted policy spellings.
func PolicyNames() []string { return []string{"static", "util", "cap"} }

// ParsePolicy resolves a -policy flag or request field value.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "static":
		return Static, nil
	case "util":
		return Util, nil
	case "cap":
		return Cap, nil
	}
	return Static, fmt.Errorf("governor: unknown policy %q (one of %v)", s, PolicyNames())
}

// Config parameterizes one Governor.
type Config struct {
	// Policy selects the decision rule.
	Policy Policy
	// Plan is the offline design (the paper's VFI 2 configuration): the
	// island partition every decision preserves, the Static policy's fixed
	// assignment, and the closed-loop policies' phase-0 starting point.
	Plan platform.VFIConfig
	// Table is the DVFS ladder decisions quantize onto.
	Table []platform.OperatingPoint
	// Margin is the utilization headroom added before quantizing, the
	// same knob as the static flow's FreqMargin (paper: 0.35).
	Margin float64
	// Alpha is the EWMA smoothing weight on new utilization observations,
	// in (0, 1]; 0 selects DefaultAlpha.
	Alpha float64
	// QueueBoost is the Map-phase backlog (initial tasks per worker) at or
	// above which a saturated island is boosted straight to the ladder
	// maximum; 0 selects DefaultQueueBoost.
	QueueBoost float64
	// CapW is the chip-level core-power cap in watts (Cap policy only).
	CapW float64
	// Protected lists islands shed last under the cap — the design flow's
	// bottleneck-raised islands, whose cores gate the critical path.
	Protected []int
	// Core prices operating points; must match the simulated platform.
	Core energy.CoreModel
}

// DefaultAlpha is the EWMA smoothing weight: equal parts history and the
// newest phase, enough memory to ride out one-phase spikes while still
// tracking the Map/Reduce utilization swing.
const DefaultAlpha = 0.5

// DefaultQueueBoost is the backlog threshold (initial tasks per worker of
// a Map phase) that marks an island saturated enough to boost.
const DefaultQueueBoost = 4.0

// saturatedUtil is the observed utilization above which a deep queue
// triggers the boost-to-maximum rule.
const saturatedUtil = 0.9

// Decision reason codes, stamped per island on every decision log entry.
const (
	ReasonPlan  = "plan"        // phase 0: start from the offline plan
	ReasonHold  = "hold"        // point unchanged
	ReasonUp    = "up:util"     // utilization rule raised the point
	ReasonDown  = "down:util"   // utilization rule lowered the point
	ReasonBoost = "boost:queue" // saturated island with deep backlog -> ladder max
	ReasonShed  = "shed:cap"    // cap shedding lowered the point
)

// Governor is one closed-loop DVFS controller instance. It implements
// sim.Controller; use one instance per governed run (it carries per-run
// EWMA and summary state). Not safe for concurrent use.
type Governor struct {
	cfg        Config
	islandSize []float64
	ewma       []float64
	seeded     bool
	current    []platform.OperatingPoint
	log        *Log
	onDecision func(Decision)
	measured   []float64
	sum        Summary
}

// New builds a governor for one governed run. The zero-value knobs of cfg
// (Alpha, QueueBoost) take their defaults.
func New(cfg Config) *Governor {
	if cfg.Alpha <= 0 || cfg.Alpha > 1 {
		cfg.Alpha = DefaultAlpha
	}
	if cfg.QueueBoost <= 0 {
		cfg.QueueBoost = DefaultQueueBoost
	}
	m := cfg.Plan.NumIslands()
	g := &Governor{
		cfg:        cfg,
		islandSize: make([]float64, m),
		ewma:       make([]float64, m),
		current:    make([]platform.OperatingPoint, m),
	}
	for _, isl := range cfg.Plan.Assign {
		g.islandSize[isl]++
	}
	copy(g.current, cfg.Plan.Points)
	g.sum.Policy = cfg.Policy.String()
	if cfg.Policy == Cap {
		g.sum.CapW = cfg.CapW
	}
	return g
}

// SetLog attaches a decision log; a nil log (the default) records nothing.
func (g *Governor) SetLog(l *Log) { g.log = l }

// OnDecision attaches a live decision callback (the serving layer streams
// these as events); nil disables it.
func (g *Governor) OnDecision(fn func(Decision)) { g.onDecision = fn }

// Summary returns the run's aggregate decision statistics; complete after
// sim.RunGoverned returns (Finish folds in the last phase's measurement).
func (g *Governor) Summary() Summary { return g.sum }

// MeasuredPowerW returns the per-phase measured core power observed so
// far, in phase order — the cap-headroom series is derived from it.
func (g *Governor) MeasuredPowerW() []float64 { return g.measured }

// Decide implements sim.Controller: fold the completed phase's observation
// into the EWMA state, then choose the next phase's operating points under
// the configured policy.
func (g *Governor) Decide(prev *sim.PhaseObservation, index int, kind sim.PhaseKind) platform.VFIConfig {
	g.observe(prev)
	m := len(g.current)
	d := Decision{
		Phase:   index,
		Kind:    kind.String(),
		Policy:  g.cfg.Policy.String(),
		Islands: make([]IslandDecision, m),
	}
	next := make([]platform.OperatingPoint, m)
	switch {
	case g.cfg.Policy == Static:
		copy(next, g.cfg.Plan.Points)
		for isl := range d.Islands {
			d.Islands[isl] = IslandDecision{
				Island: isl, From: g.current[isl].String(), To: next[isl].String(),
				Reason: ReasonHold, Util: g.ewma[isl],
			}
		}
	case prev == nil:
		// First boundary: nothing observed yet, start from the plan.
		copy(next, g.cfg.Plan.Points)
		for isl := range d.Islands {
			d.Islands[isl] = IslandDecision{
				Island: isl, From: g.current[isl].String(), To: next[isl].String(),
				Reason: ReasonPlan, Util: g.ewma[isl],
			}
		}
	default:
		fmax := platform.MaxPoint(g.cfg.Table).FreqGHz
		for isl := range next {
			target := g.ewma[isl] + g.cfg.Margin
			if target > 1 {
				target = 1
			}
			op := platform.QuantizeUp(g.cfg.Table, fmax*target)
			reason := ReasonHold
			queue := prev.QueueDepth[isl]
			if queue >= g.cfg.QueueBoost && prev.IslandUtil[isl] >= saturatedUtil {
				op = platform.MaxPoint(g.cfg.Table)
				reason = ReasonBoost
			}
			if reason != ReasonBoost {
				switch {
				case op.FreqGHz > g.current[isl].FreqGHz:
					reason = ReasonUp
				case op.FreqGHz < g.current[isl].FreqGHz:
					reason = ReasonDown
				}
			}
			next[isl] = op
			d.Islands[isl] = IslandDecision{
				Island: isl, From: g.current[isl].String(), To: op.String(),
				Reason: reason, Util: g.ewma[isl], Queue: queue,
			}
		}
	}
	// The cap binds every decision, including the phase-0 start from the
	// plan: an uncapped first phase could exceed the cap before the first
	// observation arrives.
	if g.cfg.Policy == Cap {
		g.shed(next, &d)
	}
	d.PredPowerW = g.worstCasePowerW(next)
	if g.cfg.Policy == Cap {
		d.CapW = g.cfg.CapW
		d.HeadroomW = g.cfg.CapW - d.PredPowerW
	}
	changed := 0
	for isl := range next {
		if next[isl] != g.current[isl] {
			changed++
		}
	}
	if index > 0 {
		d.Changed = changed
		g.sum.Transitions += changed
		transitionCounter.Add(int64(changed))
	}
	if d.PredPowerW > g.sum.WorstCasePowerW {
		g.sum.WorstCasePowerW = d.PredPowerW
	}
	g.sum.Decisions++
	decisionCounter.Add(1)
	copy(g.current, next)
	g.log.Record(d)
	if g.onDecision != nil {
		g.onDecision(d)
	}
	points := make([]platform.OperatingPoint, m)
	copy(points, next)
	return platform.VFIConfig{Assign: g.cfg.Plan.Assign, Points: points}
}

// Finish implements sim.Controller: fold in the final phase's observation,
// which no Decide call sees.
func (g *Governor) Finish(last *sim.PhaseObservation) {
	g.observe(last)
}

// observe folds one completed phase's signals into the governor state.
func (g *Governor) observe(o *sim.PhaseObservation) {
	if o == nil {
		return
	}
	if !g.seeded {
		copy(g.ewma, o.IslandUtil)
		g.seeded = true
	} else {
		for isl, u := range o.IslandUtil {
			g.ewma[isl] = g.cfg.Alpha*u + (1-g.cfg.Alpha)*g.ewma[isl]
		}
	}
	g.measured = append(g.measured, o.CorePowerW)
	if o.CorePowerW > g.sum.MaxPowerW {
		g.sum.MaxPowerW = o.CorePowerW
	}
}

// worstCasePowerW upper-bounds the chip's core-rail power under points:
// every core busy (utilization 1) at its island's operating point. Core
// power is monotone in utilization, so measured power never exceeds it.
func (g *Governor) worstCasePowerW(points []platform.OperatingPoint) float64 {
	var p float64
	for isl, op := range points {
		p += g.islandSize[isl] * g.cfg.Core.PowerW(op, 1)
	}
	return p
}

// shed lowers islands one ladder step at a time until the worst-case bound
// fits under the cap. Victim priority: unprotected islands before
// bottleneck-raised ones, lowest EWMA utilization first, lowest island
// index on ties — so idle islands absorb the cap before critical-path
// islands are touched. Runs out of victims only when every island sits at
// the ladder minimum; if the cap is still exceeded there, the decision is
// recorded as a violation (the platform floor exceeds the cap).
func (g *Governor) shed(points []platform.OperatingPoint, d *Decision) {
	protected := make([]bool, len(points))
	for _, isl := range g.cfg.Protected {
		if isl >= 0 && isl < len(protected) {
			protected[isl] = true
		}
	}
	for g.worstCasePowerW(points) > g.cfg.CapW {
		victim := -1
		for pass := 0; pass < 2 && victim < 0; pass++ {
			// pass 0 considers only unprotected islands; pass 1 admits all.
			for isl := range points {
				if pass == 0 && protected[isl] {
					continue
				}
				if _, ok := stepDown(g.cfg.Table, points[isl]); !ok {
					continue
				}
				if victim < 0 || g.ewma[isl] < g.ewma[victim] {
					victim = isl
				}
			}
		}
		if victim < 0 {
			d.Violation = true
			g.sum.CapViolations++
			capViolationGauge.Add(1)
			return
		}
		down, _ := stepDown(g.cfg.Table, points[victim])
		points[victim] = down
		d.Sheds++
		g.sum.Sheds++
		shedCounter.Add(1)
		id := &d.Islands[victim]
		id.To = down.String()
		id.Reason = ReasonShed
	}
}

// stepDown returns the highest table point strictly below op's frequency,
// or ok=false when op already sits at the ladder minimum.
func stepDown(table []platform.OperatingPoint, op platform.OperatingPoint) (platform.OperatingPoint, bool) {
	var best platform.OperatingPoint
	ok := false
	for _, p := range table {
		if p.FreqGHz < op.FreqGHz && (!ok || p.FreqGHz > best.FreqGHz) {
			best, ok = p, true
		}
	}
	return best, ok
}

// Summary aggregates one governed run's decision statistics.
type Summary struct {
	// Policy and CapW echo the configuration.
	Policy string  `json:"policy"`
	CapW   float64 `json:"cap_w,omitempty"`
	// Decisions counts phase boundaries decided; Transitions counts
	// island point changes actually actuated (phase 0 start excluded).
	Decisions   int `json:"decisions"`
	Transitions int `json:"transitions"`
	// Sheds counts cap-shedding ladder steps; CapViolations counts
	// decisions where even the ladder floor exceeded the cap.
	Sheds         int `json:"sheds,omitempty"`
	CapViolations int `json:"cap_violations,omitempty"`
	// MaxPowerW is the maximum measured per-phase core power;
	// WorstCasePowerW the maximum worst-case bound of any admitted
	// configuration. Under Cap, WorstCasePowerW <= CapW unless
	// CapViolations > 0, and MaxPowerW <= WorstCasePowerW always.
	MaxPowerW       float64 `json:"max_power_w"`
	WorstCasePowerW float64 `json:"worst_case_power_w"`
}
