package governor

import (
	"bytes"
	"encoding/json"
	"testing"

	"wivfi/internal/energy"
	"wivfi/internal/platform"
)

func TestParsePolicyRoundTrip(t *testing.T) {
	for _, name := range PolicyNames() {
		p, err := ParsePolicy(name)
		if err != nil {
			t.Fatalf("ParsePolicy(%q): %v", name, err)
		}
		if p.String() != name {
			t.Errorf("ParsePolicy(%q).String() = %q", name, p.String())
		}
	}
	if _, err := ParsePolicy("turbo"); err == nil {
		t.Error("ParsePolicy accepted an unknown policy")
	}
}

func TestStepDown(t *testing.T) {
	table := platform.DefaultDVFSTable()
	if _, ok := stepDown(table, table[0]); ok {
		t.Error("stepDown below the ladder minimum")
	}
	for i := 1; i < len(table); i++ {
		down, ok := stepDown(table, table[i])
		if !ok || down != table[i-1] {
			t.Errorf("stepDown(%v) = %v, %v; want %v", table[i], down, ok, table[i-1])
		}
	}
}

// twoIslandGovernor builds a Cap governor over two 2-core islands at the
// ladder maximum, with island 1 protected.
func twoIslandGovernor(capW float64) *Governor {
	table := platform.DefaultDVFSTable()
	top := platform.MaxPoint(table)
	return New(Config{
		Policy: Cap,
		Plan: platform.VFIConfig{
			Assign: []int{0, 0, 1, 1},
			Points: []platform.OperatingPoint{top, top},
		},
		Table:     table,
		Margin:    0.35,
		CapW:      capW,
		Protected: []int{1},
		Core:      energy.DefaultCoreModel(),
	})
}

// TestShedPrefersUnprotectedLowUtilization: under a cap that forces
// shedding, the unprotected island must give up ladder steps before the
// protected one, even when the protected island is the idler.
func TestShedPrefersUnprotectedLowUtilization(t *testing.T) {
	core := energy.DefaultCoreModel()
	table := platform.DefaultDVFSTable()
	top := platform.MaxPoint(table)
	// Cap at: protected island at max + unprotected at min, plus slack.
	min := table[0]
	capW := 2*core.PowerW(top, 1) + 2*core.PowerW(min, 1) + 0.01
	g := twoIslandGovernor(capW)
	log := NewLog()
	g.SetLog(log)

	cfg := g.Decide(nil, 0, 0)
	if got := cfg.Points[1]; got != top {
		t.Errorf("protected island shed to %v with unprotected steps available", got)
	}
	if got := cfg.Points[0]; got != min {
		t.Errorf("unprotected island at %v, want ladder minimum %v", got, min)
	}
	d := log.Decisions()[0]
	if d.Violation {
		t.Error("feasible cap recorded as a violation")
	}
	if d.Islands[0].Reason != ReasonShed {
		t.Errorf("island 0 reason %q, want %q", d.Islands[0].Reason, ReasonShed)
	}
	if d.PredPowerW > capW {
		t.Errorf("admitted worst case %.3f W over cap %.3f W", d.PredPowerW, capW)
	}
}

// TestShedTakesProtectedWhenUnprotectedExhausted: once the unprotected
// island hits the ladder floor, pass 2 sheds the protected island rather
// than violating the cap.
func TestShedTakesProtectedWhenUnprotectedExhausted(t *testing.T) {
	core := energy.DefaultCoreModel()
	table := platform.DefaultDVFSTable()
	min := table[0]
	// Cap only admits both islands at the floor.
	capW := 4*core.PowerW(min, 1) + 0.01
	g := twoIslandGovernor(capW)
	cfg := g.Decide(nil, 0, 0)
	for isl, op := range cfg.Points {
		if op != min {
			t.Errorf("island %d at %v, want floor %v", isl, op, min)
		}
	}
	if g.Summary().CapViolations != 0 {
		t.Error("feasible cap counted as violation")
	}
}

// TestInfeasibleCapIsAViolation: a cap below the platform floor cannot be
// met; the decision must be flagged, not silently admitted.
func TestInfeasibleCapIsAViolation(t *testing.T) {
	g := twoIslandGovernor(1.0) // 1 W: below any 4-core configuration
	log := NewLog()
	g.SetLog(log)
	g.Decide(nil, 0, 0)
	if g.Summary().CapViolations != 1 {
		t.Errorf("CapViolations = %d, want 1", g.Summary().CapViolations)
	}
	if !log.Decisions()[0].Violation {
		t.Error("decision not flagged as violation")
	}
}

func TestLogNDJSONOneObjectPerLine(t *testing.T) {
	log := NewLog()
	log.Record(Decision{Phase: 0, Policy: "util"})
	log.Record(Decision{Phase: 1, Policy: "util", Changed: 2})
	blob, err := log.NDJSON()
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimRight(blob, "\n"), []byte("\n"))
	if len(lines) != 2 {
		t.Fatalf("%d lines, want 2", len(lines))
	}
	for _, line := range lines {
		var d Decision
		if err := json.Unmarshal(line, &d); err != nil {
			t.Fatalf("line %q: %v", line, err)
		}
	}
}

// TestNilLogZeroAlloc is the disabled-governor-path allocation gate
// backing the nilsafe contract: recording into a nil *Log (what every
// ungoverned run does implicitly) must be free.
func TestNilLogZeroAlloc(t *testing.T) {
	var l *Log
	d := Decision{Phase: 3, Policy: "util"}
	allocs := testing.AllocsPerRun(100, func() {
		l.Record(d)
		_ = l.Len()
		_ = l.Decisions()
	})
	if allocs != 0 {
		t.Errorf("nil *Log path allocates %.1f times per op, want 0", allocs)
	}
	if blob, err := l.NDJSON(); err != nil || blob != nil {
		t.Errorf("nil *Log NDJSON = %q, %v; want nil, nil", blob, err)
	}
}
