package governor

import (
	"bytes"
	"encoding/json"
)

// IslandDecision is one island's share of a boundary decision.
type IslandDecision struct {
	Island int `json:"island"`
	// From and To are operating points in platform notation ("0.9/2.25").
	From string `json:"from"`
	To   string `json:"to"`
	// Reason is one of the Reason* codes.
	Reason string `json:"reason"`
	// Util is the EWMA utilization the decision was made on; Queue the
	// observed Map-phase backlog (initial tasks per worker).
	Util  float64 `json:"util"`
	Queue float64 `json:"queue,omitempty"`
}

// Decision is one phase-boundary record: which phase it gates, what every
// island moved from and to and why, and the power accounting the choice
// was admitted under. Decisions are pure functions of the governed run's
// own observations, so a run's decision sequence is byte-identical across
// -j levels, cache states and telemetry settings.
type Decision struct {
	// Phase and Kind identify the phase the decision configures.
	Phase int    `json:"phase"`
	Kind  string `json:"kind"`
	// Policy echoes the governing policy.
	Policy string `json:"policy"`
	// Islands records every island's move (holds included).
	Islands []IslandDecision `json:"islands"`
	// Changed counts islands whose point differs from the previous phase
	// (0 on the first boundary, which sets rather than changes points).
	Changed int `json:"changed"`
	// Sheds counts cap-shedding ladder steps taken in this decision.
	Sheds int `json:"sheds,omitempty"`
	// PredPowerW is the worst-case core power of the admitted
	// configuration; CapW/HeadroomW frame it against the cap (Cap policy).
	PredPowerW float64 `json:"pred_power_w"`
	CapW       float64 `json:"cap_w,omitempty"`
	HeadroomW  float64 `json:"headroom_w,omitempty"`
	// Violation marks a decision where even the ladder floor exceeded the
	// cap; the floor configuration is used and the violation counted.
	Violation bool `json:"violation,omitempty"`
}

// Log accumulates a governed run's decisions in phase order. A nil *Log is
// a valid no-op recorder (the "nil receiver" contract shared with the
// obs/timeline collectors): the disabled-governor-observability path calls
// methods on a nil handle and must stay an allocation-free no-op.
type Log struct {
	decisions []Decision
}

// NewLog returns an empty decision log.
func NewLog() *Log { return &Log{} }

// Record appends one decision. No-op on a nil log.
func (l *Log) Record(d Decision) {
	if l == nil {
		return
	}
	l.decisions = append(l.decisions, d)
}

// Len reports the number of recorded decisions.
func (l *Log) Len() int {
	if l == nil {
		return 0
	}
	return len(l.decisions)
}

// Decisions returns the recorded decisions in phase order. The slice is
// shared; callers must not mutate it.
func (l *Log) Decisions() []Decision {
	if l == nil {
		return nil
	}
	return l.decisions
}

// NDJSON renders the log as newline-delimited JSON, one decision per line
// — the decision-log artifact format (mrsim -decision-log, CI uploads) and
// the byte-equality surface of the determinism suite.
func (l *Log) NDJSON() ([]byte, error) {
	if l == nil {
		return nil, nil
	}
	var buf bytes.Buffer
	for i := range l.decisions {
		blob, err := json.Marshal(&l.decisions[i])
		if err != nil {
			return nil, err
		}
		buf.Write(blob)
		buf.WriteByte('\n')
	}
	return buf.Bytes(), nil
}
