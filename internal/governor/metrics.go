package governor

import "wivfi/internal/obs"

// Metric names registered below. Declared constants (enforced by
// wivfi-lint countersafe) so every lookup site — /metrics scrapes, run
// manifests, tests — shares one authoritative spelling.
const (
	// MetricDecisions counts phase-boundary decisions taken.
	MetricDecisions = "governor.decisions"
	// MetricTransitions counts island operating-point changes actuated.
	MetricTransitions = "governor.transitions"
	// MetricCapSheds counts cap-shedding ladder steps.
	MetricCapSheds = "governor.cap_sheds"
	// MetricCapViolations gauges decisions where even the ladder floor
	// exceeded the configured cap.
	MetricCapViolations = "governor.cap_violations"
)

// Process-wide decision telemetry: always-live atomic counters plus the
// cap-violation gauge, exported on /metrics wherever the obs debug server
// runs (wivfid, -debug-addr). Decisions never read these, so telemetry
// cannot perturb the decision log.
var (
	decisionCounter   = obs.NewCounter(MetricDecisions)
	transitionCounter = obs.NewCounter(MetricTransitions)
	shedCounter       = obs.NewCounter(MetricCapSheds)
	capViolationGauge = obs.NewGauge(MetricCapViolations)
)
