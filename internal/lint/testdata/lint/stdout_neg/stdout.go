// Package stdout_neg holds the sanctioned output paths for library code:
// io.Writer parameters, strings, stderr, and one audited stdout reference.
package stdout_neg

import (
	"fmt"
	"io"
	"os"
)

// Report renders into a caller-chosen sink.
func Report(w io.Writer, name string, v float64) {
	fmt.Fprintf(w, "%s: %f\n", name, v)
}

// Render returns text instead of printing it.
func Render(name string) string {
	return fmt.Sprintf("[%s]", name)
}

// Warn writes diagnostics to stderr, which the byte-identical gate ignores.
func Warn(msg string) {
	fmt.Fprintln(os.Stderr, msg)
}

// Interactive detects a terminal, an audited read-only use of the handle.
func Interactive() bool {
	return os.Stdout != nil //lint:stdout terminal detection only reads the handle; nothing is written
}
