// Package seedflow_neg holds the sanctioned seeding idioms that must
// stay clean under seedflow: seeds that derive from parameters or config
// fields (traced through locals, arithmetic, conversions, and pure
// helper calls) and named constants.
package seedflow_neg

import (
	"math/rand"
	randv2 "math/rand/v2"
)

// defaultSeed is the named, auditable fallback stream identity.
const defaultSeed = 0x5eed

type config struct {
	Seed int64
}

// fromParam: the seed is caller-controlled.
func fromParam(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// fromConfig: a config field reaches the source through a local.
func fromConfig(cfg config) *rand.Rand {
	s := cfg.Seed
	return rand.New(rand.NewSource(s))
}

// fromConst: the named constant is auditable.
func fromConst() *rand.Rand {
	return rand.New(rand.NewSource(defaultSeed))
}

// derivedArithmetic: streams split off a base seed stay derived.
func derivedArithmetic(cfg config, lane int64) *rand.Rand {
	return rand.New(rand.NewSource(cfg.Seed*31 + lane))
}

// v2Derived: both PCG words derive from the config seed.
func v2Derived(cfg config) *randv2.Rand {
	return randv2.New(randv2.NewPCG(uint64(cfg.Seed), uint64(cfg.Seed)+defaultSeed))
}

func mix(seed int64, name string) int64 {
	h := seed
	for _, c := range name {
		h = h*131 + int64(c)
	}
	return h
}

// viaHash: seeds may pass through pure functions of derived values.
func viaHash(cfg config, name string) *rand.Rand {
	return rand.New(rand.NewSource(mix(cfg.Seed, name)))
}
