// Package sweep_neg mirrors sweep_pos the sanctioned way: every metric
// name is a declared constant — the sweep package's own exported
// constants where one exists — and the one wall-clock read carries the
// annotation declaring it journal-only runtime observability.
package sweep_neg

import (
	"time"

	"wivfi/internal/obs"
	"wivfi/internal/sweep"
)

// MetricFixtureRetries is the one authoritative spelling of the local
// fixture counter.
const MetricFixtureRetries = "sweep.fixture_retries"

var (
	planned  = obs.NewCounter(sweep.MetricScenariosPlanned)
	outliers = obs.NewCounter(sweep.MetricOutliers)
	inflight = obs.NewGauge(sweep.MetricInFlight)
	retries  = obs.NewCounter(MetricFixtureRetries)
)

// Elapsed reads the wall clock for the journal's wall_ms field only,
// which the atlas excludes — exactly what the annotation asserts.
func Elapsed(start time.Time) int64 {
	return time.Since(start).Milliseconds() //lint:wallclock journal wall_ms is runtime observability, excluded from the atlas
}

// Touch keeps the registrations referenced.
func Touch() {
	planned.Add(1)
	outliers.Add(1)
	inflight.Add(1)
	retries.Add(1)
}
