// Package sweep_pos seeds the violations the sweep package must never
// ship: inline metric-name literals and unannotated wall clock in a
// result-producing (journal/atlas-writing) package.
package sweep_pos

import (
	"time"

	"wivfi/internal/obs"
)

var (
	// A typo in a literal here records a metric no dashboard reads.
	planned = obs.NewCounter("sweep.scenarios_planed")
	// Computed names defeat grep just as thoroughly.
	inflight = obs.NewGauge("sweep." + "in_flight")
)

// Elapsed leaks the wall clock into a would-be record field without the
// //lint:wallclock annotation that declares it journal-only.
func Elapsed(start time.Time) int64 {
	return time.Since(start).Milliseconds()
}

// Touch keeps the registrations referenced.
func Touch() {
	planned.Add(1)
	inflight.Add(1)
}
