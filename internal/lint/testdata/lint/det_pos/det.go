// Package det_pos seeds every determinism violation: unguarded wall
// clock, math/rand global state, and a float accumulation driven by map
// iteration order. wivfi-lint must flag all of them.
package det_pos

import (
	"math/rand"
	"time"
)

// Timestamp leaks the wall clock into a result-producing package.
func Timestamp() int64 {
	return time.Now().UnixNano()
}

// Elapsed compounds it with time.Since.
func Elapsed(start time.Time) time.Duration {
	return time.Since(start)
}

// Jitter draws from the shared global source: unseeded, order-dependent
// across goroutines.
func Jitter(n int) int {
	return rand.Intn(n)
}

// TotalEnergy accumulates floats in map order: rounding differs per run.
func TotalEnergy(perCore map[int]float64) float64 {
	var total float64
	for _, e := range perCore {
		total += e
	}
	return total
}

// scaleAll writes floats through an outer map inside a map range.
func scaleAll(in map[string]float64, out map[string]float64, k float64) {
	for name, v := range in {
		out[name] = out[name]*k + v
	}
}
