// Package det_neg holds the sanctioned counterparts of every det_pos
// violation: seeded randomness, sorted-keys iteration, audited
// annotations, and loop-local float temporaries. wivfi-lint must stay
// silent.
package det_neg

import (
	"math/rand"
	"sort"
	"time"
)

// SeededDraw uses a seeded local source — the sanctioned path.
func SeededDraw(seed int64, n int) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(n)
}

// TotalEnergy iterates sorted keys, so the float accumulation order is
// fixed.
func TotalEnergy(perCore map[int]float64) float64 {
	keys := make([]int, 0, len(perCore))
	for k := range perCore {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	var total float64
	for _, k := range keys {
		total += perCore[k]
	}
	return total
}

// MaxEnergy accumulates in map order but the reduction is exact, which an
// audit records inline.
func MaxEnergy(perCore map[int]float64) float64 {
	var max float64
	//lint:ordered max of non-negative floats is exact; order cannot change the result
	for _, e := range perCore {
		if e > max {
			max = e
		}
	}
	return max
}

// CountCores only writes ints; integer addition is order-independent.
func CountCores(perCore map[int]float64) int {
	n := 0
	for range perCore {
		n++
	}
	return n
}

// LocalTemp scales each entry through a loop-local float: nothing outer
// accumulates, so iteration order is irrelevant.
func LocalTemp(perCore map[int]float64) []float64 {
	keys := make([]int, 0, len(perCore))
	for k := range perCore {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	out := make([]float64, 0, len(keys))
	for _, k := range keys {
		v := perCore[k]
		v *= 2
		out = append(out, v)
	}
	return out
}

// Deadline is telemetry-only wall clock, audited in place.
func Deadline() time.Time {
	return time.Now() //lint:wallclock progress-reporting deadline; never feeds results
}
