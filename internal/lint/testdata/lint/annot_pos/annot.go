// Package annot_pos seeds rotten suppression annotations: a missing
// justification, an unknown key, and a stale annotation that silences
// nothing. The audit trail itself is linted.
package annot_pos

import "time"

// Stamp carries a keyless justification-free annotation: the finding stays
// AND the annotation is flagged.
func Stamp() int64 {
	return time.Now().UnixNano() //lint:wallclock
}

// Mystery uses a key no analyzer owns.
func Mystery() int {
	return 1 //lint:determinsm typo'd key, nothing registers it
}

// Quiet annotates a line with nothing to suppress.
func Quiet() int {
	return 2 //lint:ordered stale: no map range here
}
