// Package locksafe_pos collects the mutex-discipline violations the
// locksafe analyzer must catch: blocking channel operations and pool
// acquisition under a held lock, early returns that skip the unlock, and
// calls that re-lock a mutex the caller already holds.
package locksafe_pos

import (
	"sync"

	"wivfi/internal/sim"
)

type box struct {
	mu  sync.Mutex
	val int
}

// earlyReturn leaks the lock on the failure path: the return before the
// unlock leaves b.mu held forever.
func earlyReturn(b *box, fail bool) int {
	b.mu.Lock()
	if fail {
		return -1
	}
	v := b.val
	b.mu.Unlock()
	return v
}

// sendUnderLock blocks on a channel send while holding the lock.
func sendUnderLock(b *box, ch chan int) {
	b.mu.Lock()
	ch <- b.val
	b.mu.Unlock()
}

// recvUnderLock blocks on a receive while holding the lock; the deferred
// unlock does not excuse the unbounded wait.
func recvUnderLock(b *box, ch chan int) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.val + <-ch
}

// selectUnderLock parks in a select while holding the lock.
func selectUnderLock(b *box, ch chan int, done chan struct{}) {
	b.mu.Lock()
	defer b.mu.Unlock()
	select {
	case v := <-ch:
		b.val = v
	case <-done:
	}
}

// drainUnderLock ranges over a channel while holding the lock: every
// iteration is an unbounded wait.
func drainUnderLock(b *box, ch chan int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for v := range ch {
		b.val += v
	}
}

// poolUnderLock waits for an admission slot while holding the lock; a
// saturated pool stalls every contender of b.mu.
func poolUnderLock(b *box, pool *sim.Pool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	pool.Do(func() {})
}

type counter struct {
	mu sync.Mutex
	n  int
}

func (c *counter) bump() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

// snapshotAndBump self-deadlocks: bump re-locks the mutex this method
// already holds.
func (c *counter) snapshotAndBump() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.bump()
	return c.n
}
