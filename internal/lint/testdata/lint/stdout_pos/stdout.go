// Package stdout_pos seeds stdout-purity violations in a library package:
// direct fmt prints and an os.Stdout reference.
package stdout_pos

import (
	"fmt"
	"os"
)

// Report prints straight to stdout from library code.
func Report(name string, v float64) {
	fmt.Printf("%s: %f\n", name, v)
}

// Banner compounds it with Println.
func Banner() {
	fmt.Println("banner")
}

// Writer leaks os.Stdout as a default sink.
func Writer() *os.File {
	return os.Stdout
}
