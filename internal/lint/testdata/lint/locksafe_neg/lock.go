// Package locksafe_neg holds the sanctioned locking idioms that must stay
// clean under locksafe: copy-under-lock-then-block, deferred unlocks
// covering early returns, explicit unlocks on every branch, read locks,
// deferred-closure unlocks, and locked calls to methods that do not lock.
package locksafe_neg

import "sync"

type box struct {
	mu  sync.Mutex
	val int
}

// copyThenSend copies state under the lock, releases, then blocks — the
// discipline the analyzer's message prescribes.
func copyThenSend(b *box, ch chan int) {
	b.mu.Lock()
	v := b.val
	b.mu.Unlock()
	ch <- v
}

// deferredUnlock covers every return path, the early one included.
func deferredUnlock(b *box, fail bool) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	if fail {
		return -1
	}
	return b.val
}

// branchUnlock releases explicitly on each branch before returning.
func branchUnlock(b *box, fail bool) int {
	b.mu.Lock()
	if fail {
		b.mu.Unlock()
		return -1
	}
	v := b.val
	b.mu.Unlock()
	return v
}

type gauge struct {
	mu sync.RWMutex
	v  float64
}

// read holds only the read lock, released by defer.
func (g *gauge) read() float64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.v
}

// write pairs the write lock with an explicit unlock.
func (g *gauge) write(x float64) {
	g.mu.Lock()
	g.v = x
	g.mu.Unlock()
}

// closureUnlock registers the unlock inside a deferred closure.
func closureUnlock(b *box) int {
	b.mu.Lock()
	defer func() {
		b.mu.Unlock()
	}()
	return b.val
}

type counter struct {
	mu sync.Mutex
	n  int
}

func (c *counter) raw() int { return c.n }

// snapshot calls a method under the lock, but raw never locks, so there
// is no re-lock hazard.
func (c *counter) snapshot() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.raw()
}
