// Package cachekey_neg is the clean mirror of cachekey_pos: every field
// of the hash root serializes, and every request field reaches the key —
// directly, through a producer method, or through a (value, error) tuple
// assignment, which pins the dataflow tracer's multi-assign handling.
package cachekey_neg

import (
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
)

// Config is the fixture's hash root; all state serializes into the hash.
type Config struct {
	Cores  int     `json:"cores"`
	Volt   float64 `json:"volt"`
	Tuning Tuning  `json:"tuning"`
}

// Tuning is reachable from Config through a serialized field.
type Tuning struct {
	Margin float64 `json:"margin"`
}

// Request's every field reaches KeyOf: App as a direct salt, Margin
// through Config(), Lane through the extras() producer.
type Request struct {
	App    string
	Margin *float64
	Lane   string
}

// Config validates the request and resolves it against base.
func (r Request) Config(base Config) (Config, error) {
	if r.Margin != nil {
		if *r.Margin < 0 {
			return Config{}, errors.New("negative margin")
		}
		base.Tuning.Margin = *r.Margin
	}
	return base, nil
}

// extras spells the lane into the key salt.
func (r Request) extras() []string {
	if r.Lane == "" {
		return nil
	}
	return []string{"lane=" + r.Lane}
}

// KeyOf is the fixture's configured key constructor.
func KeyOf(cfg Config, extras ...string) string {
	b, err := json.Marshal(cfg)
	if err != nil {
		return ""
	}
	sum := sha256.Sum256(append(b, []byte(strings.Join(extras, "|"))...))
	return fmt.Sprintf("%x", sum[:8])
}

// key reaches the key call through a tuple assignment: cfg arrives from
// a (Config, error) return, which the tracer must follow to Config().
func key(r Request, base Config) (string, error) {
	cfg, err := r.Config(base)
	if err != nil {
		return "", err
	}
	return KeyOf(cfg, append([]string{r.App}, r.extras()...)...), nil
}

var _, _ = key(Request{}, Config{})
