// Package counter_pos seeds metric-name violations: inline literals and
// computed strings at obs registration sites.
package counter_pos

import "wivfi/internal/obs"

var (
	// A literal typo here would record a metric nothing reads.
	runs = obs.NewCounter("fixture.runs")
	// Computed names defeat grep just as thoroughly.
	depth = obs.NewGauge("fixture" + ".depth")
)

// Touch keeps the registrations referenced.
func Touch() {
	runs.Add(1)
	depth.Add(1)
}
