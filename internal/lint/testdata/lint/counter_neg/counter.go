// Package counter_neg registers metrics the sanctioned way: every name is
// a declared constant, local or imported.
package counter_neg

import (
	"wivfi/internal/governor"
	"wivfi/internal/obs"
	"wivfi/internal/sim"
)

// MetricRuns is the one authoritative spelling of the fixture counter.
const MetricRuns = "fixture.runs"

var (
	runs = obs.NewCounter(MetricRuns)
	// A constant imported from the package that owns the name works too.
	jobs = obs.NewCounter(sim.MetricPoolJobs)
	// The governor's decision metric constants are covered the same way.
	decisions = obs.NewCounter(governor.MetricDecisions)
	caps      = obs.NewGauge(governor.MetricCapViolations)
)

// Touch keeps the registrations referenced.
func Touch() {
	runs.Add(1)
	jobs.Add(1)
	decisions.Add(1)
	caps.Add(1)
}
