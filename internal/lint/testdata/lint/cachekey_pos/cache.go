// Package cachekey_pos holds the cache-key completeness violations the
// cachekey analyzer must catch: hash-invisible fields on structs
// reachable from the hash root (unexported, json:"-", unserializable),
// and a request-struct field that never reaches the request key — two
// requests differing only there would share one cached result.
package cachekey_pos

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"strings"
)

// Config is the fixture's hash root: its JSON serialization is the cache
// key's alphabet.
type Config struct {
	Cores int     `json:"cores"`
	Volt  float64 `json:"volt"`
	// secret never serializes: configs differing only here collide.
	secret int
	// Debug is explicitly cut out of the hash.
	Debug bool `json:"-"`
	// Probe cannot round-trip through json.Marshal.
	Probe  func() float64 `json:"probe"`
	Tuning Tuning         `json:"tuning"`
}

// Tuning is reachable from Config through a serialized field, so its
// fields are part of the key alphabet too.
type Tuning struct {
	Margin float64 `json:"margin"`
	// trace is hash-invisible below the root.
	trace []string
}

// Request is the request struct whose every field must reach KeyOf.
type Request struct {
	// App reaches the key directly as a salt argument.
	App string
	// Margin reaches the key through Config().
	Margin *float64
	// Priority was added without wiring it into the key: requests
	// differing only in Priority share a cached result.
	Priority int
}

// Config resolves the request's overrides against a base config.
func (r Request) Config(base Config) Config {
	if r.Margin != nil {
		base.Tuning.Margin = *r.Margin
	}
	return base
}

// KeyOf is the fixture's configured key constructor.
func KeyOf(cfg Config, extras ...string) string {
	b, err := json.Marshal(cfg)
	if err != nil {
		return ""
	}
	sum := sha256.Sum256(append(b, []byte(strings.Join(extras, "|"))...))
	return fmt.Sprintf("%x", sum[:8])
}

// key routes a request into the cache key.
func key(r Request, base Config) string {
	return KeyOf(r.Config(base), r.App)
}

var _ = key
