// Package leaksafe_neg holds the sanctioned goroutine idioms that must
// stay clean under leaksafe: WaitGroup joins, channel-delivered results,
// close-terminated queue drains, and pool-bounded work.
package leaksafe_neg

import (
	"sync"

	"wivfi/internal/sim"
)

// waitGroup joins every worker through wg.Done/Wait.
func waitGroup(xs []float64) float64 {
	var wg sync.WaitGroup
	out := make([]float64, len(xs))
	for i, x := range xs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out[i] = x * x
		}()
	}
	wg.Wait()
	s := 0.0
	for _, v := range out {
		s += v
	}
	return s
}

// channelResult delivers through a channel the launcher receives on.
func channelResult(x float64) float64 {
	ch := make(chan float64, 1)
	go func() {
		ch <- x * 2
	}()
	return <-ch
}

// drainWorker ranges a work queue that closing terminates, and signals
// completion through the WaitGroup.
func drainWorker(work chan int, done *sync.WaitGroup) {
	done.Add(1)
	go func() {
		defer done.Done()
		for range work {
		}
	}()
}

// poolBounded runs the work under a pool admission slot: the pool bounds
// and accounts the goroutine.
func poolBounded(pool *sim.Pool, job func()) {
	go func() {
		pool.Do(job)
	}()
}
