// Package nilsafe_neg holds collector types that honour the nil-receiver
// contract, plus non-collector types the analyzer must leave alone.
package nilsafe_neg

// Probe is a collector primitive; every method is a no-op on a nil
// receiver.
type Probe struct {
	n int64
}

// Add guards first and returns: the disabled path is a no-op.
func (p *Probe) Add(d int64) {
	if p == nil {
		return
	}
	p.n += d
}

// Total guards with the operands reversed, which is the same contract.
func (p *Probe) Total() int64 {
	if nil == p {
		return 0
	}
	return p.n
}

// ID is a value-receiver method: there is no nil receiver to guard.
func (p Probe) ID() string { return "probe" }

// Eager is plain data with no nil-receiver contract in its doc comment;
// its methods may assume a live receiver.
type Eager struct {
	n int64
}

// Bump needs no guard: Eager is not a collector.
func (e *Eager) Bump() { e.n++ }
