// Package leaksafe_pos holds the goroutine shapes the leaksafe analyzer
// must flag in result packages: fire-and-forget launches whose work can
// be dropped or outlive the run, and launches whose body cannot be
// resolved for auditing.
package leaksafe_pos

var sink float64

// fireAndForget launches work nobody joins.
func fireAndForget(xs []float64) {
	go func() {
		s := 0.0
		for _, x := range xs {
			s += x
		}
		sink = s
	}()
}

func tick() { sink++ }

// namedNoJoin launches a package function that has no join path either.
func namedNoJoin() {
	go tick()
}

// unresolvable launches through a function value: the analyzer cannot
// see the body, so it must flag conservatively.
func unresolvable(f func()) {
	go f()
}
