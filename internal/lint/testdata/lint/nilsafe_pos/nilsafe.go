// Package nilsafe_pos seeds nil-guard violations on collector types: the
// doc comments declare the nil-receiver no-op contract, but the methods
// break it.
package nilsafe_pos

// Probe is a collector primitive; every method is a no-op on a nil
// receiver.
type Probe struct {
	n int64
}

// Add is missing the guard entirely: it panics on the disabled path.
func (p *Probe) Add(d int64) {
	p.n += d
}

// Total does work before the guard, so the disabled path pays it.
func (p *Probe) Total() int64 {
	t := int64(0)
	if p == nil {
		return t
	}
	return p.n + t
}

// Reset has an unnamed receiver, so it cannot guard at all.
func (*Probe) Reset() {}

// local stays unexported: the analyzer only polices the exported API.
func (p *Probe) local() int64 { return p.n }
