// Package poolsafe_neg holds the sanctioned pool idioms that must stay
// clean under poolsafe: inner stages on a nil pool (inline execution),
// freshly constructed inner pools, provably distinct pools, and
// sequential re-acquisition after the job returns.
package poolsafe_neg

import "wivfi/internal/sim"

// nilParam runs the inner stage inline by passing a nil pool — the fix
// the PR 9 postmortem settled on.
func nilParam(pool *sim.Pool) {
	pool.Do(func() { runInline(nil) })
}

func runInline(inner *sim.Pool) {
	inner.Do(func() {})
}

// declaredNil binds the nil pool to a local first.
func declaredNil(pool *sim.Pool) {
	pool.Do(func() {
		var inner *sim.Pool = nil
		inner.Do(func() {})
	})
}

// fresh gives the inner stage its own newly constructed pool, which can
// never be the held one.
func fresh(pool *sim.Pool) {
	pool.Do(func() {
		inner := sim.NewPool(1)
		inner.Do(func() {})
	})
}

// outerPool and innerPool are distinct package-level pools: nesting
// across them cannot self-deadlock.
var (
	outerPool = sim.NewPool(2)
	innerPool = sim.NewPool(2)
)

func distinct() {
	outerPool.Do(func() {
		innerPool.Do(func() {})
	})
}

// helperDistinct binds the helper's pool parameter to a fresh pool, so
// the helper's acquisition is provably not the held slot's pool.
func helperDistinct(pool *sim.Pool) {
	pool.Do(func() { runInline(sim.NewPool(1)) })
}

// sequential acquires one slot at a time; the second acquisition only
// happens after the first job released its slot.
func sequential(pool *sim.Pool, jobs []func()) {
	for _, j := range jobs {
		pool.Do(j)
	}
}
