// Package poolsafe_pos reproduces the nested pool-acquisition shapes the
// poolsafe analyzer exists for: a job holding a sim.Pool admission slot
// re-acquires, directly or transitively, from the same pool. Under
// saturation every slot holder waits for a slot and the run deadlocks —
// the PR 9 sweep/pipeline incident, committed here as a fixture.
package poolsafe_pos

import "wivfi/internal/sim"

// direct re-acquires inside the job closure itself.
func direct(pool *sim.Pool, work []func()) {
	pool.Do(func() {
		for _, w := range work {
			pool.Do(w)
		}
	})
}

// viaHelper leaks the held pool into a stage helper's parameter; the
// helper's acquisition is two call-graph edges away from the slot.
func viaHelper(pool *sim.Pool) {
	pool.DoNamed("outer", "stage", func() {
		runStage(pool)
	})
}

func runStage(p *sim.Pool) {
	p.Do(func() {})
}

// runner carries its pool in a field: the held pool is r.pool, and the
// method reached from the job acquires it again through the receiver.
type runner struct {
	pool *sim.Pool
}

func (r *runner) run() {
	r.pool.Do(func() { r.stage() })
}

func (r *runner) stage() {
	r.pool.Do(func() {})
}

// shared is a package-level pool; sharedLeaf names it directly, so
// passing sharedLeaf as a job nests the acquisition with no parameters
// involved at all.
var shared = sim.NewPool(2)

func sharedLeaf() { shared.Do(func() {}) }

func nestedShared() {
	shared.Do(sharedLeaf)
}

// viaGoroutine launches and joins a goroutine from the job: the slot is
// held for the goroutine's whole life, so its acquisition still nests.
func viaGoroutine(pool *sim.Pool) {
	pool.Do(func() {
		done := make(chan struct{})
		go func() {
			defer close(done)
			pool.Do(func() {})
		}()
		<-done
	})
}

// registry hands out pools of unprovable identity; acquiring one while
// holding a slot is flagged conservatively.
var registry = map[string]*sim.Pool{}

func lookup(name string) *sim.Pool { return registry[name] }

func viaLookup(pool *sim.Pool) {
	pool.Do(func() {
		lookup("inner").Do(func() {})
	})
}
