// Package seedflow_pos holds the seed origins the seedflow analyzer must
// flag in result packages: bare magic literals, mutable package state,
// and opaque zero-operand calls — all of which make a "deterministic"
// stream's identity untraceable from config.
package seedflow_pos

import (
	"math/rand"
	randv2 "math/rand/v2"
)

var globalSeed int64

// bareLiteral seeds with a magic number nobody can audit from config.
func bareLiteral() *rand.Rand {
	return rand.New(rand.NewSource(12345))
}

// fromGlobal seeds from a mutable package variable.
func fromGlobal() *rand.Rand {
	return rand.New(rand.NewSource(globalSeed))
}

func pid() int64 { return globalSeed + 1 }

// fromOpaqueCall seeds from a call with no traceable operands.
func fromOpaqueCall() *rand.Rand {
	return rand.New(rand.NewSource(pid()))
}

// v2Literals seeds both PCG words with magic numbers.
func v2Literals() *randv2.Rand {
	return randv2.New(randv2.NewPCG(7, 9))
}
