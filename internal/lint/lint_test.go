package lint

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
)

// TestRepoIsLintClean is the repo gate: the full analyzer suite over every
// package in the module must report nothing. This is what makes the
// determinism/nilsafe/stdoutpure/countersafe contracts enforced-by-machine:
// `go build ./... && go test ./...` fails on any violation with zero extra
// tooling.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	mod, err := FindModule(".")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := Lint(mod.Root, []string{"./..."}, "")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
	if len(findings) > 0 {
		t.Errorf("wivfi-lint: %d finding(s); fix them or add an audited //lint:<key> <reason> annotation", len(findings))
	}
}

// TestSeededViolationFailsCLI drives the real CLI over a fixture package
// seeded with violations and requires the non-zero exit the CI step relies
// on.
func TestSeededViolationFailsCLI(t *testing.T) {
	mod, err := FindModule(".")
	if err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	code := RunCLI([]string{"./internal/lint/testdata/lint/stdout_pos"}, mod.Root, &stdout, &stderr)
	if code != ExitFindings {
		t.Fatalf("exit code = %d, want %d (stderr: %s)", code, ExitFindings, stderr.String())
	}
	if !strings.Contains(stdout.String(), "[stdoutpure]") {
		t.Errorf("stdout missing [stdoutpure] findings:\n%s", stdout.String())
	}
}

// TestCLICleanPackage pins the zero exit on a clean package.
func TestCLICleanPackage(t *testing.T) {
	mod, err := FindModule(".")
	if err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	code := RunCLI([]string{"./internal/topo"}, mod.Root, &stdout, &stderr)
	if code != ExitClean {
		t.Fatalf("exit code = %d, want %d\nstdout: %s\nstderr: %s", code, ExitClean, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("clean run wrote to stdout: %s", stdout.String())
	}
}

// TestCLIJSON checks the machine-readable mode: a valid JSON array whose
// entries carry file/line/analyzer/message, and still a failing exit.
func TestCLIJSON(t *testing.T) {
	mod, err := FindModule(".")
	if err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	code := RunCLI([]string{"-json", "./internal/lint/testdata/lint/counter_pos"}, mod.Root, &stdout, &stderr)
	if code != ExitFindings {
		t.Fatalf("exit code = %d, want %d (stderr: %s)", code, ExitFindings, stderr.String())
	}
	var findings []Finding
	if err := json.Unmarshal(stdout.Bytes(), &findings); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, stdout.String())
	}
	if len(findings) == 0 {
		t.Fatal("JSON output has no findings")
	}
	for _, f := range findings {
		if f.File == "" || f.Line == 0 || f.Analyzer == "" || f.Message == "" {
			t.Errorf("incomplete finding: %+v", f)
		}
		if filepath.IsAbs(f.File) {
			t.Errorf("finding path should be module-relative, got %s", f.File)
		}
	}
}

// TestCLIJSONCleanIsEmptyArray keeps the no-findings JSON form a valid
// empty array (not null), so CI artifact consumers can always json.load it.
func TestCLIJSONCleanIsEmptyArray(t *testing.T) {
	mod, err := FindModule(".")
	if err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	code := RunCLI([]string{"-json", "./internal/topo"}, mod.Root, &stdout, &stderr)
	if code != ExitClean {
		t.Fatalf("exit code = %d, want %d (stderr: %s)", code, ExitClean, stderr.String())
	}
	if got := strings.TrimSpace(stdout.String()); got != "[]" {
		t.Errorf("clean -json output = %q, want []", got)
	}
}

// TestCLIOnlySelection runs a single analyzer and requires findings from
// the others to vanish: counter_pos violates countersafe but is clean
// under -only determinism.
func TestCLIOnlySelection(t *testing.T) {
	mod, err := FindModule(".")
	if err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	code := RunCLI([]string{"-only", "determinism", "./internal/lint/testdata/lint/counter_pos"}, mod.Root, &stdout, &stderr)
	if code != ExitClean {
		t.Fatalf("exit code = %d, want %d\nstdout: %s", code, ExitClean, stdout.String())
	}
}

// TestCLIPkgsFilter pins the -pkgs package filter: the violating package
// still loads (whole-program context), but findings come only from the
// packages the filter names; without the flag behavior is unchanged.
func TestCLIPkgsFilter(t *testing.T) {
	mod, err := FindModule(".")
	if err != nil {
		t.Fatal(err)
	}
	pos := "./internal/lint/testdata/lint/stdout_pos"
	neg := "./internal/lint/testdata/lint/stdout_neg"

	var stdout, stderr bytes.Buffer
	if code := RunCLI([]string{pos, neg}, mod.Root, &stdout, &stderr); code != ExitFindings {
		t.Fatalf("unfiltered exit = %d, want %d (stderr: %s)", code, ExitFindings, stderr.String())
	}

	stdout.Reset()
	stderr.Reset()
	if code := RunCLI([]string{"-pkgs", neg, pos, neg}, mod.Root, &stdout, &stderr); code != ExitClean {
		t.Fatalf("filtered-to-clean exit = %d, want %d\nstdout: %s", code, ExitClean, stdout.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("filtered-to-clean run reported findings:\n%s", stdout.String())
	}

	stdout.Reset()
	stderr.Reset()
	if code := RunCLI([]string{"-pkgs", pos, pos, neg}, mod.Root, &stdout, &stderr); code != ExitFindings {
		t.Fatalf("filtered-to-violating exit = %d, want %d", code, ExitFindings)
	}
	if !strings.Contains(stdout.String(), "[stdoutpure]") {
		t.Errorf("filtered run lost the [stdoutpure] findings:\n%s", stdout.String())
	}
}

// TestCLIPkgsBadPattern pins the usage-error exit for an unresolvable
// -pkgs pattern.
func TestCLIPkgsBadPattern(t *testing.T) {
	mod, err := FindModule(".")
	if err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := RunCLI([]string{"-pkgs", "./does-not-exist", "./internal/topo"}, mod.Root, &stdout, &stderr); code != ExitError {
		t.Fatalf("exit code = %d, want %d", code, ExitError)
	}
	if !strings.Contains(stderr.String(), "-pkgs") {
		t.Errorf("stderr should attribute the error to -pkgs: %s", stderr.String())
	}
}

// TestCLIUnknownAnalyzer pins the usage-error exit code.
func TestCLIUnknownAnalyzer(t *testing.T) {
	mod, err := FindModule(".")
	if err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := RunCLI([]string{"-only", "nope", "./internal/topo"}, mod.Root, &stdout, &stderr); code != ExitError {
		t.Fatalf("exit code = %d, want %d", code, ExitError)
	}
	if !strings.Contains(stderr.String(), "unknown analyzer") {
		t.Errorf("stderr missing analyzer list: %s", stderr.String())
	}
}

// TestSuppressionMatching pins the annotation scope: same line and the
// line above suppress; two lines above does not.
func TestSuppressionMatching(t *testing.T) {
	s := &suppressionSet{byLine: map[string]map[int]*suppression{
		"f.go": {
			10: {file: "f.go", line: 10, key: "ordered", reason: "audited"},
			20: {file: "f.go", line: 20, key: "ordered", reason: ""},
		},
	}}
	if !s.use("f.go", 10, "ordered") {
		t.Error("same-line annotation should suppress")
	}
	if !s.use("f.go", 11, "ordered") {
		t.Error("line-above annotation should suppress")
	}
	if s.use("f.go", 12, "ordered") {
		t.Error("two lines below should not suppress")
	}
	if s.use("f.go", 10, "wallclock") {
		t.Error("key mismatch should not suppress")
	}
	if s.use("f.go", 20, "ordered") {
		t.Error("reasonless annotation must not suppress")
	}
}

// TestStaleSuppressionOnlyScoping is the regression for per-key stale
// auditing: det_neg carries //lint:wallclock annotations that are used
// when determinism runs; under -only nilsafe the determinism keys are
// inactive, so the now-unused annotations must NOT be condemned as stale.
func TestStaleSuppressionOnlyScoping(t *testing.T) {
	mod, pkgs, root := loadFixtures(t, "det_neg")
	p := fixturePath(mod, root, "det_neg")
	cfg := DefaultConfig(mod.Path)
	cfg.ResultPackages = append(cfg.ResultPackages, p)
	suite := NewSuite(cfg, root)
	sel, err := Select([]string{"nilsafe"})
	if err != nil {
		t.Fatal(err)
	}
	suite.Analyzers = sel
	for _, f := range suite.Run(pkgs) {
		t.Errorf("unexpected finding under -only nilsafe: %s", f)
	}
}

// TestStaleSuppressionPkgsScoping is the -pkgs counterpart: a package
// excluded by the filter contributes context only — its annotations are
// not audited, so they cannot be reported stale either.
func TestStaleSuppressionPkgsScoping(t *testing.T) {
	mod, pkgs, root := loadFixtures(t, "det_neg", "stdout_neg")
	det := fixturePath(mod, root, "det_neg")
	cfg := DefaultConfig(mod.Path)
	cfg.ResultPackages = append(cfg.ResultPackages, det)
	suite := NewSuite(cfg, root)
	suite.Only = map[string]bool{fixturePath(mod, root, "stdout_neg"): true}
	for _, f := range suite.Run(pkgs) {
		t.Errorf("unexpected finding with det_neg filtered out: %s", f)
	}
}

// TestStaleSuppressionStillFires pins the other side: under a full active
// suite, an annotation that suppresses nothing IS stale (annot_pos's
// //lint:ordered line stays a finding — see the annotation golden).
func TestStaleSuppressionStillFires(t *testing.T) {
	mod, pkgs, root := loadFixtures(t, "annot_pos")
	cfg := DefaultConfig(mod.Path)
	cfg.ResultPackages = append(cfg.ResultPackages, fixturePath(mod, root, "annot_pos"))
	stale := false
	for _, f := range NewSuite(cfg, root).Run(pkgs) {
		if f.Analyzer == "annotation" && strings.Contains(f.Message, "stale") {
			stale = true
		}
	}
	if !stale {
		t.Error("full-suite run should still report the stale annotation")
	}
}

// TestDefaultConfigCoversRoadmapPackages guards the config against drift:
// every result-producing package named in the issue stays enforced.
func TestDefaultConfigCoversRoadmapPackages(t *testing.T) {
	cfg := DefaultConfig("wivfi")
	for _, rel := range []string{
		"internal/noc", "internal/mapreduce", "internal/expt", "internal/vfi",
		"internal/qp", "internal/energy", "internal/topo", "internal/place",
		"internal/sched", "internal/stats", "internal/fidelity",
		"internal/serve", "internal/sweep",
	} {
		if !contains(cfg.ResultPackages, "wivfi/"+rel) {
			t.Errorf("ResultPackages missing %s", rel)
		}
	}
	if !contains(cfg.NilsafePackages, "wivfi/internal/obs") ||
		!contains(cfg.NilsafePackages, "wivfi/internal/timeline") {
		t.Error("NilsafePackages must cover internal/obs and internal/timeline")
	}
	if !contains(cfg.PoolTypes, "wivfi/internal/sim.Pool") {
		t.Error("PoolTypes must cover sim.Pool (the PR 9 deadlock contract)")
	}
	if !contains(cfg.HashRoots, "wivfi/internal/expt.Config") {
		t.Error("HashRoots must cover expt.Config")
	}
	if !contains(cfg.KeyFuncs, "wivfi/internal/expt.RequestKey") ||
		!contains(cfg.KeyFuncs, "wivfi/internal/expt.ConfigHash") {
		t.Error("KeyFuncs must cover expt.RequestKey and expt.ConfigHash")
	}
	if !contains(cfg.RequestStructs, "wivfi/internal/serve.Request") ||
		!contains(cfg.RequestStructs, "wivfi/internal/sweep.Scenario") {
		t.Error("RequestStructs must cover serve.Request and sweep.Scenario")
	}
}
