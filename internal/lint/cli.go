package lint

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"strings"
)

// Exit codes of the wivfi-lint CLI.
const (
	ExitClean    = 0
	ExitFindings = 1
	ExitError    = 2
)

// RunCLI is the whole wivfi-lint command: parse flags, load the packages
// matched by the argument patterns (default ./...), run the selected
// analyzers, print findings. It returns the process exit code, so the
// cmd/wivfi-lint shim is one line and tests drive the real thing.
func RunCLI(args []string, cwd string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("wivfi-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array (machine-readable, for CI artifacts)")
	only := fs.String("only", "", "comma-separated analyzer subset to run, e.g. determinism,nilsafe (default: all of "+strings.Join(AnalyzerNames(), ",")+")")
	pkgsFilter := fs.String("pkgs", "", "comma-separated package patterns to analyze and report, e.g. ./internal/noc,./internal/sweep; the positional patterns are still loaded in full for cross-package context (default: report on every loaded package)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: wivfi-lint [-json] [-only a,b] [-pkgs p1,p2] [packages]\n\n"+
			"Analyzers:\n")
		for _, a := range Analyzers() {
			fmt.Fprintf(stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(stderr, "\nFlags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return ExitError
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	findings, err := LintScoped(cwd, patterns, *only, *pkgsFilter)
	if err != nil {
		fmt.Fprintf(stderr, "wivfi-lint: %v\n", err)
		return ExitError
	}
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintf(stderr, "wivfi-lint: %v\n", err)
			return ExitError
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "wivfi-lint: %d finding(s)\n", len(findings))
		return ExitFindings
	}
	return ExitClean
}

// Lint loads the packages matched by patterns (resolved against cwd inside
// the enclosing module) and runs the analyzer subset named by only (empty
// = full suite) under the repo's production config.
func Lint(cwd string, patterns []string, only string) ([]Finding, error) {
	return LintScoped(cwd, patterns, only, "")
}

// LintScoped is Lint with a package filter: when pkgsFilter is non-empty,
// the comma-separated patterns it names are the only packages analyzers
// report on (and whose annotations are audited) — everything matched by
// patterns still loads, so cross-package analyses keep whole-program
// context. CI and pre-commit hooks use this to lint just the changed
// packages.
func LintScoped(cwd string, patterns []string, only, pkgsFilter string) ([]Finding, error) {
	mod, err := FindModule(cwd)
	if err != nil {
		return nil, err
	}
	var names []string
	if strings.TrimSpace(only) != "" {
		names = strings.Split(only, ",")
	}
	analyzers, err := Select(names)
	if err != nil {
		return nil, err
	}
	loader := NewLoader(mod)
	pkgs, err := loader.LoadPatterns(patterns, cwd)
	if err != nil {
		return nil, err
	}
	suite := NewSuite(DefaultConfig(mod.Path), mod.Root)
	suite.Analyzers = analyzers
	if strings.TrimSpace(pkgsFilter) != "" {
		dirs, err := loader.ExpandPatterns(strings.Split(pkgsFilter, ","), cwd)
		if err != nil {
			return nil, fmt.Errorf("-pkgs: %w", err)
		}
		suite.Only = map[string]bool{}
		for _, dir := range dirs {
			path, err := loader.ImportPathFor(dir)
			if err != nil {
				return nil, fmt.Errorf("-pkgs: %w", err)
			}
			suite.Only[path] = true
		}
	}
	return suite.Run(pkgs), nil
}
