package lint

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"strings"
)

// Exit codes of the wivfi-lint CLI.
const (
	ExitClean    = 0
	ExitFindings = 1
	ExitError    = 2
)

// RunCLI is the whole wivfi-lint command: parse flags, load the packages
// matched by the argument patterns (default ./...), run the selected
// analyzers, print findings. It returns the process exit code, so the
// cmd/wivfi-lint shim is one line and tests drive the real thing.
func RunCLI(args []string, cwd string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("wivfi-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array (machine-readable, for CI artifacts)")
	only := fs.String("only", "", "comma-separated analyzer subset to run, e.g. determinism,nilsafe (default: all of "+strings.Join(AnalyzerNames(), ",")+")")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: wivfi-lint [-json] [-only a,b] [packages]\n\n"+
			"Analyzers:\n")
		for _, a := range Analyzers() {
			fmt.Fprintf(stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(stderr, "\nFlags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return ExitError
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	findings, err := Lint(cwd, patterns, *only)
	if err != nil {
		fmt.Fprintf(stderr, "wivfi-lint: %v\n", err)
		return ExitError
	}
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintf(stderr, "wivfi-lint: %v\n", err)
			return ExitError
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "wivfi-lint: %d finding(s)\n", len(findings))
		return ExitFindings
	}
	return ExitClean
}

// Lint loads the packages matched by patterns (resolved against cwd inside
// the enclosing module) and runs the analyzer subset named by only (empty
// = full suite) under the repo's production config.
func Lint(cwd string, patterns []string, only string) ([]Finding, error) {
	mod, err := FindModule(cwd)
	if err != nil {
		return nil, err
	}
	var names []string
	if strings.TrimSpace(only) != "" {
		names = strings.Split(only, ",")
	}
	analyzers, err := Select(names)
	if err != nil {
		return nil, err
	}
	loader := NewLoader(mod)
	pkgs, err := loader.LoadPatterns(patterns, cwd)
	if err != nil {
		return nil, err
	}
	suite := NewSuite(DefaultConfig(mod.Path), mod.Root)
	suite.Analyzers = analyzers
	return suite.Run(pkgs), nil
}
