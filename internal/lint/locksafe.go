package lint

// locksafe: flow-sensitive mutex discipline over the funcCFG. Three
// contracts, all rooted in postmortems of the serving/sweep layers where a
// blocked goroutine holding a lock stalls every other request:
//
//  1. a sync.Mutex/RWMutex must not be held across a blocking channel
//     operation (send, receive, select, range-over-channel) — the server
//     and sweep paths all copy state under the lock, release, then block;
//  2. it must not be held across a sim.Pool slot acquisition (the slot
//     wait can be unbounded under saturation) or across a call that may
//     re-lock the same receiver's mutex (self-deadlock);
//  3. every path from Lock() to return must unlock (explicitly or via a
//     defer registered on that path).
//
// The analysis is a forward may-held dataflow: the state maps each mutex
// (root variable object + field path, write vs read mode) to held/deferred
// bits, joined by union over CFG edges. Deferred unlocks are modeled at
// the DeferStmt node, so a return *before* the defer registers is still a
// missing-unlock path. Closure bodies are analyzed as separate functions;
// locks do not propagate across closure boundaries.

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// LockSafeAnalyzer enforces the mutex discipline contracts.
var LockSafeAnalyzer = &Analyzer{
	Name: "locksafe",
	Doc:  "mutex held across channel ops/pool acquisition/re-locking calls, or not released on an early return",
	Keys: []string{"lock"},
	Run:  runLockSafe,
}

type lockOp int

const (
	lockOpNone lockOp = iota
	lockOpLock
	lockOpUnlock
	lockOpRLock
	lockOpRUnlock
)

// mutexOp classifies call as a sync.Mutex/RWMutex lock-state transition
// and returns the receiver expression.
func mutexOp(info *types.Info, call *ast.CallExpr) (lockOp, ast.Expr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockOpNone, nil
	}
	switch methodFullName(info, call) {
	case "(*sync.Mutex).Lock", "(*sync.RWMutex).Lock":
		return lockOpLock, sel.X
	case "(*sync.Mutex).Unlock", "(*sync.RWMutex).Unlock":
		return lockOpUnlock, sel.X
	case "(*sync.RWMutex).RLock":
		return lockOpRLock, sel.X
	case "(*sync.RWMutex).RUnlock":
		return lockOpRUnlock, sel.X
	}
	return lockOpNone, nil
}

// lockKey identifies one mutex within a function: the root object of its
// selector chain plus the field path ("s" + ".mu"), and the lock mode.
type lockKey struct {
	root types.Object
	path string
	read bool
}

func (k lockKey) label() string {
	if k.root == nil {
		return "<mutex>" + k.path
	}
	return k.root.Name() + k.path
}

const (
	lockHeld     uint8 = 1 << iota // may be locked
	lockDeferred                   // an unlock is defer-registered
)

type lockState map[lockKey]uint8

func (s lockState) clone() lockState {
	out := make(lockState, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// join unions src into dst (may-analysis) and reports change.
func (s lockState) join(src lockState) bool {
	changed := false
	for k, v := range src {
		if s[k]|v != s[k] {
			s[k] |= v
			changed = true
		}
	}
	return changed
}

// heldKeys returns the held-but-relevant keys sorted for deterministic
// messages.
func (s lockState) heldKeys() []lockKey {
	var out []lockKey
	for k, v := range s {
		if v&lockHeld != 0 {
			out = append(out, k)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].label() < out[j].label() })
	return out
}

func runLockSafe(p *Pass) {
	for _, file := range p.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			analyzeLocks(p, fd.Body)
			// Closures are separate functions for lock purposes.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					analyzeLocks(p, lit.Body)
				}
				return true
			})
		}
	}
}

func analyzeLocks(p *Pass, body *ast.BlockStmt) {
	// Cheap pre-screen: no Lock call, nothing to analyze.
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if op, _ := mutexOp(p.Pkg.Info, call); op == lockOpLock || op == lockOpRLock {
				found = true
			}
		}
		return true
	})
	if !found {
		return
	}

	c := p.prog().cfgFor(body)
	reachable := c.reachableBlocks()
	in := map[*cfgBlock]lockState{}
	for _, blk := range reachable {
		in[blk] = lockState{}
	}
	work := append([]*cfgBlock(nil), reachable...)
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		state := in[blk].clone()
		for _, n := range blk.nodes {
			applyLockNode(p, state, n, nil)
		}
		for _, s := range blk.succs {
			if dst, ok := in[s]; ok && dst.join(state) {
				work = append(work, s)
			}
		}
	}

	// Report pass: replay each reachable block once with hazard reporting.
	for _, blk := range reachable {
		state := in[blk].clone()
		for _, n := range blk.nodes {
			applyLockNode(p, state, n, func(pos ast.Node, what string, keys []lockKey) {
				p.Reportf(pos.Pos(), "lock", "%s while holding %s: a blocked goroutine keeps the lock and stalls every contender — copy state under the lock, release, then block (annotate //lint:lock <why> if the wait is provably bounded)",
					what, lockLabels(keys))
			})
		}
		// Exit discipline at return / fall-off-the-end.
		exiting := false
		for _, s := range blk.succs {
			if s == c.exit {
				exiting = true
			}
		}
		if !exiting {
			continue
		}
		pos := body.Rbrace
		if r := blk.terminalReturn(); r != nil {
			pos = r.Pos()
		} else if len(blk.nodes) > 0 {
			if es, ok := blk.nodes[len(blk.nodes)-1].(*ast.ExprStmt); ok && isTerminalCall(es.X) {
				continue // panic/os.Exit: not a return path
			}
		}
		var leaked []lockKey
		for _, k := range state.heldKeys() {
			if state[k]&lockDeferred == 0 {
				leaked = append(leaked, k)
			}
		}
		if len(leaked) > 0 {
			p.Reportf(pos, "lock", "%s may still be held at this return: an early-return path skips the unlock — release before returning or defer the unlock right after locking",
				lockLabels(leaked))
		}
	}
}

// applyLockNode advances state over one CFG node, reporting hazards via
// report when non-nil. FuncLit and GoStmt subtrees are skipped: closures
// and goroutines do not run under this function's locks.
func applyLockNode(p *Pass, state lockState, n ast.Node, report func(ast.Node, string, []lockKey)) {
	info := p.Pkg.Info
	hazard := func(at ast.Node, what string) {
		if report == nil {
			return
		}
		if held := state.heldKeys(); len(held) > 0 {
			report(at, what, held)
		}
	}

	switch n := n.(type) {
	case *ast.SelectStmt: // composite marker: the select blocks here
		hazard(n, "select")
		return
	case *ast.RangeStmt: // composite marker: header; a channel range blocks
		if _, ok := info.Types[n.X].Type.Underlying().(*types.Chan); ok {
			hazard(n, "range over channel")
		}
		return
	case *ast.DeferStmt:
		markDeferredUnlocks(info, n.Call, state)
		return
	case *ast.GoStmt:
		return
	}

	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.DeferStmt:
			markDeferredUnlocks(info, m.Call, state)
			return false
		case *ast.SendStmt:
			hazard(m, "channel send")
		case *ast.UnaryExpr:
			if m.Op.String() == "<-" {
				hazard(m, "channel receive")
			}
		case *ast.CallExpr:
			if op, recv := mutexOp(info, m); op != lockOpNone {
				if root, path, ok := rootPath(info, recv); ok {
					switch op {
					case lockOpLock:
						state[lockKey{root, path, false}] |= lockHeld
					case lockOpRLock:
						state[lockKey{root, path, true}] |= lockHeld
					case lockOpUnlock:
						delete(state, lockKey{root, path, false})
					case lockOpRUnlock:
						delete(state, lockKey{root, path, true})
					}
				}
				return true
			}
			if _, _, ok := poolAcquire(p.Config, info, m); ok {
				hazard(m, "pool slot acquisition")
				return true
			}
			checkRelock(p, state, m, report)
		}
		return true
	})
}

// markDeferredUnlocks flags mutexes whose unlock is defer-registered by
// call — either `defer mu.Unlock()` directly or unlock calls inside a
// deferred closure.
func markDeferredUnlocks(info *types.Info, call *ast.CallExpr, state lockState) {
	mark := func(c *ast.CallExpr) {
		op, recv := mutexOp(info, c)
		read := false
		switch op {
		case lockOpRUnlock:
			read = true
		case lockOpUnlock:
		default:
			return
		}
		if root, path, ok := rootPath(info, recv); ok {
			k := lockKey{root, path, read}
			state[k] |= lockDeferred
		}
	}
	mark(call)
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if c, ok := n.(*ast.CallExpr); ok {
				mark(c)
			}
			return true
		})
	}
}

// checkRelock reports a call to a method whose lock summary says it locks
// a mutex this function currently holds on the same receiver chain.
func checkRelock(p *Pass, state lockState, call *ast.CallExpr, report func(ast.Node, string, []lockKey)) {
	if report == nil || len(state) == 0 {
		return
	}
	fn := staticCallee(p.Pkg.Info, call)
	if fn == nil || fn.Type().(*types.Signature).Recv() == nil {
		return
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	root, base, ok := rootPath(p.Pkg.Info, sel.X)
	if !ok {
		return
	}
	sum := p.prog().lockSummary(fn)
	for path := range sum {
		for k, v := range state {
			if v&lockHeld != 0 && k.root == root && k.path == base+path && !k.read {
				report(call, fmt.Sprintf("call to %s (which locks %s)", fn.Name(), k.label()), []lockKey{k})
				return
			}
		}
	}
}

// lockSummary computes, memoized, the set of receiver-relative mutex field
// paths a method may lock — directly or through calls to other methods on
// the same receiver (closures excluded: their execution is deferred to an
// unknown time). Used by locksafe's re-lock check.
func (ix *progIndex) lockSummary(fn *types.Func) map[string]bool {
	if s, ok := ix.lockSums[fn]; ok {
		return s
	}
	if ix.lockBusy[fn] {
		return nil // recursion: the cycle adds nothing new
	}
	ix.lockBusy[fn] = true
	defer delete(ix.lockBusy, fn)

	paths := map[string]bool{}
	ix.lockSums[fn] = paths
	src := ix.srcOf(fn)
	if src == nil || src.decl.Recv == nil || len(src.decl.Recv.List) == 0 || len(src.decl.Recv.List[0].Names) == 0 {
		return paths
	}
	recvObj := src.pkg.Info.Defs[src.decl.Recv.List[0].Names[0]]
	if recvObj == nil {
		return paths
	}
	info := src.pkg.Info
	ast.Inspect(src.decl.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if op, recv := mutexOp(info, call); op == lockOpLock || op == lockOpRLock {
			if root, path, ok := rootPath(info, recv); ok && root == recvObj {
				paths[path] = true
			}
			return true
		}
		if callee := staticCallee(info, call); callee != nil && callee != fn {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				if root, base, ok := rootPath(info, sel.X); ok && root == recvObj && base == "" {
					for sub := range ix.lockSummary(callee) {
						paths[sub] = true
					}
				}
			}
		}
		return true
	})
	return paths
}

func lockLabels(keys []lockKey) string {
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k.label()
	}
	return strings.Join(parts, ", ")
}
