package lint

// leaksafe: goroutines launched in result-producing packages must have a
// join or cancel path. A fire-and-forget goroutine in a result package
// either drops work (the run completes before the goroutine contributes,
// so output depends on scheduling) or outlives the run (leaking into the
// next benchmark's measurements). Accepted join/cancel shapes, matching
// the repo's worker idioms:
//
//   - sync.WaitGroup.Done (almost always deferred) — the launcher Waits;
//   - a send on / close of a channel — someone receives the completion;
//   - a receive, select, or range over a channel — the goroutine drains a
//     work queue that closing terminates, or watches a done/ctx channel;
//   - acquiring a configured pool slot — the pool bounds and accounts it.
//
// The check is per-goroutine-body and syntactic over the resolved body
// (closure literal or static callee declaration); a goroutine whose body
// cannot be resolved is a conservative finding.

import (
	"go/ast"
	"go/types"
)

// LeakSafeAnalyzer enforces the goroutine join/cancel contract.
var LeakSafeAnalyzer = &Analyzer{
	Name: "leaksafe",
	Doc:  "goroutines in result-producing packages need a join/cancel path (WaitGroup, channel, or pool slot)",
	Keys: []string{"leak"},
	Run:  runLeakSafe,
}

func runLeakSafe(p *Pass) {
	if !contains(p.Config.ResultPackages, p.Pkg.ImportPath) {
		return
	}
	for _, file := range p.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			body := goroutineBody(p, g.Call)
			if body == nil {
				p.Reportf(g.Pos(), "leak",
					"cannot resolve this goroutine's body to audit its join/cancel path — launch a closure or a package function, or annotate //lint:leak <why>")
				return true
			}
			if !hasJoinPath(p, body) {
				p.Reportf(g.Pos(), "leak",
					"goroutine has no join or cancel path (no WaitGroup.Done, channel operation, or pool slot): its work can be dropped or outlive the run — join it, or annotate //lint:leak <why> if it is joined externally")
			}
			return true
		})
	}
}

// goroutineBody resolves the launched function's body: a closure literal
// directly, or the declaration of a statically-called module function.
func goroutineBody(p *Pass, call *ast.CallExpr) *ast.BlockStmt {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		return lit.Body
	}
	if fn := staticCallee(p.Pkg.Info, call); fn != nil {
		if src := p.prog().srcOf(fn); src != nil {
			return src.decl.Body
		}
	}
	return nil
}

// hasJoinPath scans body (nested closures included — a deferred
// wg.Done closure still joins) for any accepted join/cancel shape.
func hasJoinPath(p *Pass, body *ast.BlockStmt) bool {
	info := p.Pkg.Info
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt, *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				found = true
			}
		case *ast.RangeStmt:
			if t := info.Types[n.X].Type; t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true
				}
			}
		case *ast.CallExpr:
			switch methodFullName(info, n) {
			case "(*sync.WaitGroup).Done", "(*sync.WaitGroup).Wait":
				found = true
			}
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "close" && info.Uses[id] == nil {
				found = true // builtin close
			}
			if _, _, ok := poolAcquire(p.Config, info, n); ok {
				found = true
			}
		}
		return !found
	})
	return found
}
