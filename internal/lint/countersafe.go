package lint

import (
	"go/ast"
	"go/types"
)

// CounterSafeAnalyzer requires every obs counter/gauge name to be a
// declared constant. Metric names are looked up by string in manifests,
// fidelity summaries and tests; a literal typo'd at the registration site
// records forever into a name nothing reads. A declared constant gives the
// name one authoritative spelling that lookup sites can share.
var CounterSafeAnalyzer = &Analyzer{
	Name: "countersafe",
	Doc: "obs.NewCounter/NewGauge name arguments must reference a declared " +
		"constant, not an inline literal, so metric names have one " +
		"authoritative spelling shared with every lookup site",
	Keys: []string{"metricname"},
	Run:  runCounterSafe,
}

func runCounterSafe(pass *Pass) {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			qname := funcQName(calleeObject(info, call))
			if qname == "" || !contains(pass.Config.MetricFuncs, qname) || len(call.Args) == 0 {
				return true
			}
			if !isDeclaredConstRef(info, call.Args[0]) {
				pass.Reportf(call.Args[0].Pos(), "metricname",
					"%s name must be a declared constant (a literal typo here records a metric nothing reads)",
					qname)
			}
			return true
		})
	}
}

// isDeclaredConstRef reports whether e references a declared named
// constant (directly or via selector), as opposed to an inline literal or
// computed string.
func isDeclaredConstRef(info *types.Info, e ast.Expr) bool {
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		_, ok := info.Uses[v].(*types.Const)
		return ok
	case *ast.SelectorExpr:
		_, ok := info.Uses[v.Sel].(*types.Const)
		return ok
	}
	return false
}
