package lint

// cachekey: the design cache and request memo are content-addressed — a
// result is reused whenever expt.ConfigHash/RequestKey hash equal bytes.
// Two dual audits keep that sound as structs grow:
//
//  1. Hash-tree audit: every struct type transitively reachable from the
//     configured hash roots (expt.Config) through serialized fields is the
//     cache key's alphabet. An unexported field, a `json:"-"` tag, or an
//     unserializable type (func/chan) silently drops state from the hash:
//     two configs that differ only there collide on one cached design.
//  2. Request-flow audit: every field of a configured request struct
//     (serve.Request, sweep.Scenario) must flow into a KeyFuncs call —
//     traced from the call's arguments through reaching definitions into
//     the producer methods (Config(), keyExtras(), ...) and their callees.
//     A new request field that never reaches the key means two requests
//     differing only in that field share a cached result.
//
// The flow audit is read-based: a field counts as covered when any
// producer reachable from the key call's arguments reads it. That is
// deliberately generous (a producer may read a field for validation only)
// — the contract it enforces is "a request field must at least be examined
// on the key path", which catches the silent-new-field hazard this
// analyzer exists for.

import (
	"go/ast"
	"go/types"
	"reflect"
	"sort"
	"strings"
)

// CacheKeyAnalyzer audits cache-key completeness.
var CacheKeyAnalyzer = &Analyzer{
	Name: "cachekey",
	Doc:  "every serialized config field must feed the content hash, and every request field must reach the request key",
	Keys: []string{"hashfield", "keyfield"},
	Run:  runCacheKey,
}

func runCacheKey(p *Pass) {
	auditHashTree(p)
	for _, q := range p.Config.RequestStructs {
		pkgPath, name := splitQName(q)
		if pkgPath != p.Pkg.ImportPath {
			continue
		}
		if obj, ok := p.Pkg.Types.Scope().Lookup(name).(*types.TypeName); ok {
			if named, ok := obj.Type().(*types.Named); ok {
				auditRequestFlow(p, named)
			}
		}
	}
}

// ---- hash-tree audit -------------------------------------------------------

// auditHashTree reports fields of hash-reachable structs declared in this
// package that cannot contribute to the JSON hash.
func auditHashTree(p *Pass) {
	for _, named := range hashReachableStructs(p) {
		if named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != p.Pkg.ImportPath {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			tag := reflect.StructTag(st.Tag(i)).Get("json")
			tagName, _, _ := strings.Cut(tag, ",")
			switch {
			case !f.Exported():
				p.Reportf(f.Pos(), "hashfield",
					"unexported field %s of hash-keyed struct %s is invisible to the JSON config hash: configs differing only here collide on one cached design — export it, or annotate //lint:hashfield <why> if it provably never affects results",
					f.Name(), named.Obj().Name())
			case tagName == "-":
				p.Reportf(f.Pos(), "hashfield",
					"field %s of hash-keyed struct %s is excluded from the config hash by json:\"-\": configs differing only here collide on one cached design — drop the tag, or annotate //lint:hashfield <why> if it provably never affects results",
					f.Name(), named.Obj().Name())
			case unserializable(f.Type()):
				p.Reportf(f.Pos(), "hashfield",
					"field %s of hash-keyed struct %s has an unserializable type (%s): json.Marshal fails and the config hash degenerates — use a serializable representation, or annotate //lint:hashfield <why>",
					f.Name(), named.Obj().Name(), f.Type().String())
			}
		}
	}
}

// hashReachableStructs resolves the configured hash roots and returns every
// module-internal named struct reachable through serialized fields, cached
// per suite run.
func hashReachableStructs(p *Pass) []*types.Named {
	if p.suite.hashStructs != nil {
		return p.suite.hashStructs
	}
	seen := map[*types.TypeName]bool{}
	var out []*types.Named
	var walk func(t types.Type)
	walk = func(t types.Type) {
		switch t := t.(type) {
		case *types.Pointer:
			walk(t.Elem())
		case *types.Slice:
			walk(t.Elem())
		case *types.Array:
			walk(t.Elem())
		case *types.Map:
			walk(t.Key())
			walk(t.Elem())
		case *types.Named:
			obj := t.Obj()
			if obj.Pkg() == nil || seen[obj] {
				return
			}
			if !strings.HasPrefix(obj.Pkg().Path(), p.Config.ModulePath) {
				return // stdlib types serialize as documented; out of scope
			}
			seen[obj] = true
			if st, ok := t.Underlying().(*types.Struct); ok {
				out = append(out, t)
				walkStructFields(st, walk)
			} else {
				walk(t.Underlying())
			}
		case *types.Struct:
			walkStructFields(t, walk)
		}
	}
	for _, q := range p.Config.HashRoots {
		pkgPath, name := splitQName(q)
		pkg := p.prog().pkgByPath[pkgPath]
		if pkg == nil {
			continue
		}
		if obj, ok := pkg.Types.Scope().Lookup(name).(*types.TypeName); ok {
			walk(obj.Type())
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].Obj().Pkg().Path()+out[i].Obj().Name() < out[j].Obj().Pkg().Path()+out[j].Obj().Name()
	})
	p.suite.hashStructs = out
	return out
}

// walkStructFields recurses into the types of fields that serialize.
func walkStructFields(st *types.Struct, walk func(types.Type)) {
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		tag := reflect.StructTag(st.Tag(i)).Get("json")
		tagName, _, _ := strings.Cut(tag, ",")
		if !f.Exported() || tagName == "-" {
			continue
		}
		walk(f.Type())
	}
}

// unserializable reports whether t cannot round-trip through json.Marshal.
func unserializable(t types.Type) bool {
	switch t := t.Underlying().(type) {
	case *types.Signature, *types.Chan:
		return true
	case *types.Basic:
		return t.Info()&types.IsComplex != 0
	case *types.Pointer:
		return unserializable(t.Elem())
	case *types.Slice:
		return unserializable(t.Elem())
	case *types.Array:
		return unserializable(t.Elem())
	}
	return false
}

// ---- request-flow audit ----------------------------------------------------

// auditRequestFlow checks that every field of the request struct S reaches
// a KeyFuncs call declared in this package.
func auditRequestFlow(p *Pass, s *types.Named) {
	st, ok := s.Underlying().(*types.Struct)
	if !ok || st.NumFields() == 0 {
		return
	}

	used := map[string]bool{}
	producers := map[*types.Func]bool{}
	foundCall := false

	// Seed: arguments of every KeyFuncs call in this package.
	for _, file := range p.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			sc := declScope(p.prog(), p.Pkg, fd)
			visitFuncBody(sc, func(n ast.Node, nsc *fnScope) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if !contains(p.Config.KeyFuncs, funcQName(calleeObject(p.Pkg.Info, call))) {
					return true
				}
				foundCall = true
				for _, arg := range call.Args {
					traceKeyArg(p, s, arg, nsc, used, producers, 0)
				}
				return true
			})
		}
	}

	if !foundCall {
		p.Reportf(s.Obj().Pos(), "keyfield",
			"request struct %s has no %s call in its package: cachekey cannot audit that its fields reach the cache key — route requests through a key, or annotate //lint:keyfield <why>",
			s.Obj().Name(), strings.Join(shortNames(p.Config.KeyFuncs), "/"))
		return
	}

	// Close over the producer methods: field reads anywhere in a producer
	// (or in a callee that also handles S) count as reaching the key.
	work := make([]*types.Func, 0, len(producers))
	for fn := range producers {
		work = append(work, fn)
	}
	sort.Slice(work, func(i, j int) bool { return work[i].FullName() < work[j].FullName() })
	visited := map[*types.Func]bool{}
	for len(work) > 0 {
		fn := work[0]
		work = work[1:]
		if visited[fn] {
			continue
		}
		visited[fn] = true
		src := p.prog().srcOf(fn)
		if src == nil {
			continue
		}
		info := src.pkg.Info
		ast.Inspect(src.decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				markFieldRead(info, s, n, used)
			case *ast.CallExpr:
				if callee := staticCallee(info, n); callee != nil && handlesStruct(callee, s) {
					work = append(work, callee)
				}
			}
			return true
		})
	}

	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if used[f.Name()] {
			continue
		}
		p.Reportf(f.Pos(), "keyfield",
			"field %s of request struct %s never reaches the request key: two requests differing only in %s share a cached result — wire it into the key (or its producers), or annotate //lint:keyfield <why> if it provably cannot affect results",
			f.Name(), s.Obj().Name(), f.Name())
	}
}

// traceKeyArg walks one key-call argument: direct field reads mark fields,
// method calls on S become producers, and identifiers are traced through
// their reaching definitions.
func traceKeyArg(p *Pass, s *types.Named, arg ast.Expr, sc *fnScope, used map[string]bool, producers map[*types.Func]bool, depth int) {
	if depth > 6 {
		return
	}
	info := sc.pkg.Info
	ast.Inspect(arg, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			markFieldRead(info, s, n, used)
		case *ast.CallExpr:
			if callee := staticCallee(info, n); callee != nil && handlesStruct(callee, s) {
				producers[callee] = true
			}
		case *ast.Ident:
			for _, d := range sc.defsOf(n) {
				if d.rhs != nil {
					traceKeyArg(p, s, d.rhs, sc, used, producers, depth+1)
				}
			}
		}
		return true
	})
}

// markFieldRead marks sel as a use of one of S's fields when its base is
// S-typed.
func markFieldRead(info *types.Info, s *types.Named, sel *ast.SelectorExpr, used map[string]bool) {
	t := info.Types[sel.X].Type
	if t == nil {
		return
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok && named.Obj() == s.Obj() {
		used[sel.Sel.Name] = true
	}
}

// handlesStruct reports whether fn's receiver or any parameter is S-typed,
// i.e. field reads inside it can concern an S value on the key path.
func handlesStruct(fn *types.Func, s *types.Named) bool {
	sig := fn.Type().(*types.Signature)
	isS := func(t types.Type) bool {
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		named, ok := t.(*types.Named)
		return ok && named.Obj() == s.Obj()
	}
	if sig.Recv() != nil && isS(sig.Recv().Type()) {
		return true
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isS(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

func shortNames(qnames []string) []string {
	out := make([]string, len(qnames))
	for i, q := range qnames {
		_, out[i] = splitQName(q)
	}
	return out
}
