package lint

import (
	"go/ast"
)

// StdoutPureAnalyzer protects the byte-identical-stdout gate: the
// reproduce pipeline's stdout is diffed against golden output across -j
// levels and cache states, so only the designated render paths
// (Config.StdoutAllowed — cmd/* and examples/*) may write to it. Library
// packages report through return values, io.Writer parameters, or the
// stderr-only telemetry layer (obs.Logf).
var StdoutPureAnalyzer = &Analyzer{
	Name: "stdoutpure",
	Doc: "fmt.Print/Printf/Println and os.Stdout references are forbidden " +
		"outside cmd/* and examples/* render paths; library output goes " +
		"through io.Writer parameters or stderr telemetry",
	Keys: []string{"stdout"},
	Run:  runStdoutPure,
}

// stdoutWriters are the fmt entry points hard-wired to os.Stdout.
var stdoutWriters = map[string]bool{
	"fmt.Print":   true,
	"fmt.Printf":  true,
	"fmt.Println": true,
}

func runStdoutPure(pass *Pass) {
	if hasPrefixAny(pass.Pkg.ImportPath+"/", pass.Config.StdoutAllowed) {
		return
	}
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if qname := funcQName(calleeObject(info, n)); stdoutWriters[qname] {
					pass.Reportf(n.Pos(), "stdout",
						"%s writes to stdout from %s: only cmd/* and examples/* render paths may print — take an io.Writer or use obs.Logf (stderr)",
						qname, pass.Pkg.ImportPath)
				}
			case *ast.SelectorExpr:
				if obj := info.Uses[n.Sel]; obj != nil && obj.Pkg() != nil &&
					obj.Pkg().Path() == "os" && obj.Name() == "Stdout" {
					pass.Reportf(n.Pos(), "stdout",
						"os.Stdout referenced in %s: stdout belongs to the render paths; pass an io.Writer instead",
						pass.Pkg.ImportPath)
				}
			}
			return true
		})
	}
}
