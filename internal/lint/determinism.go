package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// DeterminismAnalyzer guards the byte-identical-results contract in the
// result-producing packages (Config.ResultPackages): no wall clock, no
// global math/rand state, and no map iteration order feeding float
// accumulations.
var DeterminismAnalyzer = &Analyzer{
	Name: "determinism",
	Doc: "in result-producing packages, flag time.Now/time.Since (unless " +
		"//lint:wallclock-audited as telemetry-only), math/rand global-state " +
		"use, and range-over-map bodies that accumulate floats into outer " +
		"state without a sorted-keys guard (//lint:ordered when audited)",
	Keys: []string{"wallclock", "ordered"},
	Run:  runDeterminism,
}

// wallClockFuncs are the time package entry points that read the wall
// clock. time.Sleep is included: a sleep in a result path means results
// depend on scheduling.
var wallClockFuncs = map[string]bool{
	"time.Now":   true,
	"time.Since": true,
	"time.Until": true,
	"time.Sleep": true,
}

// globalRandFuncs are the math/rand (and v2) package-level functions backed
// by the shared global source. Constructors (New, NewSource, NewZipf) and
// *rand.Rand methods are the sanctioned, seedable path and stay legal.
var globalRandFuncs = map[string]bool{}

func init() {
	for _, name := range []string{
		"Seed", "Int", "Intn", "Int31", "Int31n", "Int63", "Int63n",
		"Uint32", "Uint64", "Float32", "Float64", "ExpFloat64",
		"NormFloat64", "Perm", "Shuffle", "Read",
		// math/rand/v2 spellings
		"N", "IntN", "Int32", "Int32N", "Int64", "Int64N",
		"Uint", "UintN", "Uint32N", "Uint64N",
	} {
		globalRandFuncs["math/rand."+name] = true
		globalRandFuncs["math/rand/v2."+name] = true
	}
}

func runDeterminism(pass *Pass) {
	if !contains(pass.Config.ResultPackages, pass.Pkg.ImportPath) {
		return
	}
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				qname := funcQName(calleeObject(info, n))
				if wallClockFuncs[qname] {
					pass.Reportf(n.Pos(), "wallclock",
						"%s in result-producing package %s: wall clock must never feed results (annotate //lint:wallclock <why> if telemetry-only)",
						qname, pass.Pkg.ImportPath)
				}
				if globalRandFuncs[qname] {
					pass.Reportf(n.Pos(), "",
						"%s uses math/rand global state; use a seeded *rand.Rand local so runs replay byte-identically",
						qname)
				}
			case *ast.RangeStmt:
				checkMapRange(pass, n)
			}
			return true
		})
	}
}

// checkMapRange flags `range m` over a map whose body writes floats into
// state declared outside the loop: iteration order is random per run, so
// float rounding makes the accumulated value differ between runs. The fix
// is iterating sorted keys; an audited commutative accumulation carries
// //lint:ordered <why>.
func checkMapRange(pass *Pass, rng *ast.RangeStmt) {
	info := pass.Pkg.Info
	tv, ok := info.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	var hit ast.Node
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if hit != nil {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			// := only creates loop-local variables; they cannot carry
			// order-dependence out of the loop by themselves.
			if n.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range n.Lhs {
				if isOuterFloatWrite(info, lhs, rng) {
					hit = n
					return false
				}
			}
		case *ast.IncDecStmt:
			if isOuterFloatWrite(info, n.X, rng) {
				hit = n
				return false
			}
		}
		return true
	})
	if hit != nil {
		pass.Reportf(rng.Pos(), "ordered",
			"range over map writes floats into outer state (%s:%d): iteration order is random, so rounding differs per run — iterate sorted keys, or annotate //lint:ordered <why> if audited order-independent",
			pass.suite.relPath(pass.Pkg.Fset.Position(hit.Pos()).Filename),
			pass.Pkg.Fset.Position(hit.Pos()).Line)
	}
}

// isOuterFloatWrite reports whether lhs is a float-typed store whose root
// variable is declared outside the range statement (a result/accumulator),
// as opposed to a loop-local temporary or the iteration variables
// themselves.
func isOuterFloatWrite(info *types.Info, lhs ast.Expr, rng *ast.RangeStmt) bool {
	tv, ok := info.Types[lhs]
	if !ok || !isFloat(tv.Type) {
		return false
	}
	root := rootIdent(lhs)
	if root == nil {
		// Not traceable to a single variable (e.g. a call result);
		// conservatively treat stores through it as escaping.
		return true
	}
	obj := info.Uses[root]
	if obj == nil {
		obj = info.Defs[root]
	}
	if obj == nil {
		return false
	}
	pos := obj.Pos()
	return pos < rng.Pos() || pos > rng.End()
}

// rootIdent walks to the base identifier of an lvalue expression:
// x, x.F.G, x[i], (*x).F all root at x.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return nil
		}
	}
}
