package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// NilsafeAnalyzer enforces the disabled-telemetry contract on collector
// types in Config.NilsafePackages: instrumented hot paths hold nil handles
// when telemetry is off and call methods unconditionally, so every exported
// pointer-receiver method must begin with a nil-receiver guard or the
// disabled path panics (and any work before the guard is paid on it).
//
// A collector type is one whose declaration doc comment states the
// contract (it mentions "nil receiver"), or one listed in
// Config.NilsafeTypes — the core primitives stay enforced even if a
// refactor drops the comment.
var NilsafeAnalyzer = &Analyzer{
	Name: "nilsafe",
	Doc: "exported pointer-receiver methods on obs/timeline collector types " +
		"(doc comment declares the nil-receiver no-op contract) must begin " +
		"with `if recv == nil` so the disabled path stays a zero-alloc no-op",
	Keys: []string{"nilsafe"},
	Run:  runNilsafe,
}

func runNilsafe(pass *Pass) {
	if !contains(pass.Config.NilsafePackages, pass.Pkg.ImportPath) {
		return
	}
	collectors := collectorTypes(pass)
	if len(collectors) == 0 {
		return
	}
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || !fn.Name.IsExported() || fn.Body == nil {
				continue
			}
			tname, ptr := receiverType(fn)
			if !ptr || !collectors[tname] {
				continue
			}
			recvName := receiverName(fn)
			if recvName == "" {
				pass.Reportf(fn.Pos(), "nilsafe",
					"exported method %s.%s on collector type has an unnamed receiver: name it and guard `if recv == nil` first",
					tname, fn.Name.Name)
				continue
			}
			if !beginsWithNilGuard(fn.Body, recvName) {
				pass.Reportf(fn.Pos(), "nilsafe",
					"exported method %s.%s must begin with `if %s == nil` — collector methods are called on nil handles when telemetry is disabled",
					tname, fn.Name.Name, recvName)
			}
		}
	}
}

// collectorTypes returns the names of this package's collector types: doc
// comment mentions the nil-receiver contract, or listed in NilsafeTypes.
func collectorTypes(pass *Pass) map[string]bool {
	out := map[string]bool{}
	for _, qual := range pass.Config.NilsafeTypes {
		if pkg, name, ok := strings.Cut(qual, "."); ok && pkg == pass.Pkg.ImportPath {
			out[name] = true
		}
	}
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || !ts.Name.IsExported() {
					continue
				}
				doc := ts.Doc
				if doc == nil {
					doc = gd.Doc
				}
				// Collapse line breaks so the contract phrase matches even
				// when comment wrapping splits it.
				if doc != nil && strings.Contains(
					strings.Join(strings.Fields(strings.ToLower(doc.Text())), " "),
					"nil receiver") {
					out[ts.Name.Name] = true
				}
			}
		}
	}
	return out
}

// receiverType returns the receiver's base type name and whether the
// receiver is a pointer.
func receiverType(fn *ast.FuncDecl) (string, bool) {
	if len(fn.Recv.List) != 1 {
		return "", false
	}
	t := fn.Recv.List[0].Type
	ptr := false
	if st, ok := t.(*ast.StarExpr); ok {
		ptr = true
		t = st.X
	}
	// Strip generic instantiation (Type[T]).
	if ix, ok := t.(*ast.IndexExpr); ok {
		t = ix.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name, ptr
	}
	return "", ptr
}

// receiverName returns the receiver variable's name, "" when unnamed or _.
func receiverName(fn *ast.FuncDecl) string {
	names := fn.Recv.List[0].Names
	if len(names) == 0 || names[0].Name == "_" {
		return ""
	}
	return names[0].Name
}

// beginsWithNilGuard reports whether the first statement of body is
// `if recv == nil { ... return ... }` (or nil == recv).
func beginsWithNilGuard(body *ast.BlockStmt, recv string) bool {
	if len(body.List) == 0 {
		return false
	}
	ifs, ok := body.List[0].(*ast.IfStmt)
	if !ok || ifs.Init != nil {
		return false
	}
	cmp, ok := ifs.Cond.(*ast.BinaryExpr)
	if !ok || cmp.Op != token.EQL {
		return false
	}
	if !isIdentNamed(cmp.X, recv) && !isIdentNamed(cmp.Y, recv) {
		return false
	}
	if !isIdentNamed(cmp.X, "nil") && !isIdentNamed(cmp.Y, "nil") {
		return false
	}
	// The guard must leave the method: its body ends in a return.
	if len(ifs.Body.List) == 0 {
		return false
	}
	_, ret := ifs.Body.List[len(ifs.Body.List)-1].(*ast.ReturnStmt)
	return ret
}

func isIdentNamed(e ast.Expr, name string) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == name
}
