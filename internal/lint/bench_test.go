package lint

import "testing"

// BenchmarkSuiteRun times a full nine-analyzer run over the entire
// repository — module discovery, loading, type-checking, CFG/dataflow
// construction, and every analyzer, exactly the work `wivfi-lint ./...`
// does. CI runs it once per push and gates the wall clock with
// benchgate -budget against the committed budget in
// testdata/lint-bench-budget, so analyzer additions that blow up lint
// latency fail loudly instead of silently taxing every future commit.
func BenchmarkSuiteRun(b *testing.B) {
	mod, err := FindModule(".")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		findings, err := Lint(mod.Root, []string{"./..."}, "")
		if err != nil {
			b.Fatal(err)
		}
		if len(findings) != 0 {
			b.Fatalf("repo not lint-clean: %d findings", len(findings))
		}
	}
}
