package lint

// Dataflow machinery shared by the flow-sensitive analyzers:
//
//   - progIndex: a whole-program view over every package the Loader has in
//     memory (the lint targets plus every module-internal dependency pulled
//     in during type-checking), mapping *types.Func objects to their
//     declarations. This is what makes the bounded interprocedural passes
//     (poolsafe call walks, locksafe re-lock summaries, cachekey producer
//     closures) possible without x/tools: the source importer already
//     parsed the dependency ASTs, the index just keeps them addressable.
//   - reaching definitions: a classic forward gen/kill pass over a funcCFG,
//     answering "which assignments may this identifier's value come from" —
//     the tracing primitive under seedflow and poolsafe origin
//     classification.
//   - fnScope: the lexical chain of function bodies (FuncDecl plus nested
//     FuncLits) so closures can resolve free variables against their
//     enclosing function's definitions. Closure bodies get flow-INsensitive
//     answers for free variables (all definitions in the enclosing body),
//     because a closure's execution time is unknown.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// funcSrc is a function declaration with the package that owns it.
type funcSrc struct {
	decl *ast.FuncDecl
	pkg  *Package
}

// progIndex addresses every function body the loader parsed, with caches
// for the derived per-function artifacts (CFGs, reaching defs, lock
// summaries).
type progIndex struct {
	fns       map[*types.Func]*funcSrc
	pkgByPath map[string]*Package

	cfgs     map[*ast.BlockStmt]*funcCFG
	defs     map[*ast.BlockStmt]*defsInfo
	lockSums map[*types.Func]map[string]bool
	lockBusy map[*types.Func]bool
}

// buildProgIndex indexes the given packages plus everything their loaders
// have memoized (module-internal dependencies).
func buildProgIndex(pkgs []*Package) *progIndex {
	ix := &progIndex{
		fns:       map[*types.Func]*funcSrc{},
		pkgByPath: map[string]*Package{},
		cfgs:      map[*ast.BlockStmt]*funcCFG{},
		defs:      map[*ast.BlockStmt]*defsInfo{},
		lockSums:  map[*types.Func]map[string]bool{},
		lockBusy:  map[*types.Func]bool{},
	}
	seen := map[*Package]bool{}
	var all []*Package
	add := func(p *Package) {
		if p != nil && !seen[p] {
			seen[p] = true
			all = append(all, p)
			ix.pkgByPath[p.ImportPath] = p
		}
	}
	for _, p := range pkgs {
		add(p)
		if p.loader != nil {
			paths := make([]string, 0, len(p.loader.pkgs))
			for path := range p.loader.pkgs {
				paths = append(paths, path)
			}
			sort.Strings(paths) // deterministic index order
			for _, path := range paths {
				add(p.loader.pkgs[path])
			}
		}
	}
	for _, p := range all {
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if fn, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
					ix.fns[fn] = &funcSrc{decl: fd, pkg: p}
				}
			}
		}
	}
	return ix
}

// srcOf returns the declaration of fn if its source is in the module.
func (ix *progIndex) srcOf(fn *types.Func) *funcSrc {
	return ix.fns[fn]
}

// cfgFor returns the (cached) CFG of a function body.
func (ix *progIndex) cfgFor(body *ast.BlockStmt) *funcCFG {
	if c, ok := ix.cfgs[body]; ok {
		return c
	}
	c := buildCFG(body)
	ix.cfgs[body] = c
	return c
}

// staticCallee resolves the *types.Func a call invokes, including methods;
// nil for builtins, conversions, and indirect calls through values.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	fn, _ := calleeObject(info, call).(*types.Func)
	return fn
}

// rootPath decomposes a selector chain x.f.g into its root identifier's
// object and the field path ".f.g". ok is false when the base is not a
// plain identifier (call results, index expressions...).
func rootPath(info *types.Info, expr ast.Expr) (root types.Object, path string, ok bool) {
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.Ident:
			return info.ObjectOf(e), path, true
		case *ast.SelectorExpr:
			path = "." + e.Sel.Name + path
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.UnaryExpr:
			expr = e.X
		default:
			return nil, "", false
		}
	}
}

// ---- function scopes -------------------------------------------------------

// fnScope is one function body in a lexical chain.
type fnScope struct {
	parent *fnScope
	pkg    *Package
	body   *ast.BlockStmt
	params map[types.Object]bool
	ix     *progIndex
}

// newFnScope builds the scope of a declared function or closure; nil recv
// for plain functions and closures.
func newFnScope(ix *progIndex, pkg *Package, parent *fnScope, body *ast.BlockStmt, ftype *ast.FuncType, recv *ast.FieldList) *fnScope {
	sc := &fnScope{parent: parent, pkg: pkg, body: body, params: map[types.Object]bool{}, ix: ix}
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if obj := pkg.Info.Defs[name]; obj != nil {
					sc.params[obj] = true
				}
			}
		}
	}
	addFields(recv)
	if ftype != nil {
		addFields(ftype.Params)
		addFields(ftype.Results)
	}
	return sc
}

// declScope builds the scope for a top-level function declaration.
func declScope(ix *progIndex, pkg *Package, decl *ast.FuncDecl) *fnScope {
	return newFnScope(ix, pkg, nil, decl.Body, decl.Type, decl.Recv)
}

// isParam reports whether obj is a parameter (or receiver or named result)
// of this function or any lexically enclosing one.
func (sc *fnScope) isParam(obj types.Object) bool {
	for s := sc; s != nil; s = s.parent {
		if s.params[obj] {
			return true
		}
	}
	return false
}

// defsInfo returns the cached reaching-definitions analysis of sc's body.
func (sc *fnScope) defsInfo() *defsInfo {
	if d, ok := sc.ix.defs[sc.body]; ok {
		return d
	}
	d := buildDefs(sc.ix.cfgFor(sc.body), sc.pkg.Info, sc.body)
	sc.ix.defs[sc.body] = d
	return d
}

// defsOf answers which definitions may produce the value of id, searching
// the scope chain: flow-sensitive in the innermost scope, flow-insensitive
// (all definitions) across closure boundaries.
func (sc *fnScope) defsOf(id *ast.Ident) []defSite {
	obj := sc.pkg.Info.ObjectOf(id)
	if obj == nil {
		return nil
	}
	if sc.isParam(obj) {
		return []defSite{{isParam: true}}
	}
	if sites := sc.defsInfo().reachingAt(id); sites != nil {
		return sites
	}
	for s := sc.parent; s != nil; s = s.parent {
		if sites := s.defsInfo().allOf(obj); sites != nil {
			return sites
		}
	}
	return nil
}

// visitFuncBody walks sc's body tracking lexical scope: visit is called for
// every node with the innermost enclosing scope; entering a FuncLit pushes
// a child scope. Return false from visit to prune the subtree.
func visitFuncBody(sc *fnScope, visit func(n ast.Node, sc *fnScope) bool) {
	var walk func(n ast.Node, sc *fnScope)
	walk = func(n ast.Node, sc *fnScope) {
		ast.Inspect(n, func(m ast.Node) bool {
			if m == nil {
				return false
			}
			if lit, ok := m.(*ast.FuncLit); ok {
				if !visit(lit, sc) {
					return false
				}
				walk(lit.Body, newFnScope(sc.ix, sc.pkg, sc, lit.Body, lit.Type, nil))
				return false
			}
			return visit(m, sc)
		})
	}
	walk(sc.body, sc)
}

// ---- reaching definitions --------------------------------------------------

// defSite is one definition of a variable: the assigned expression when the
// assignment is 1:1, the shared call/comma-ok expression when it is 1:n
// (`v, err := f()` — every LHS derives from that one RHS), nil otherwise
// (range variables, ++/--, op=); isParam marks the virtual entry definition
// of a parameter or a variable free in this body.
type defSite struct {
	rhs     ast.Expr
	isParam bool
}

// defsInfo is the result of a reaching-definitions pass over one body.
type defsInfo struct {
	// flat indexes every definition in the whole body, closures included,
	// flow-insensitively (for cross-closure queries).
	flat map[types.Object][]defSite
	// reach maps each identifier use to the definitions reaching it.
	reach map[*ast.Ident][]defSite
}

func (d *defsInfo) reachingAt(id *ast.Ident) []defSite { return d.reach[id] }
func (d *defsInfo) allOf(obj types.Object) []defSite   { return d.flat[obj] }

// defsBuilder numbers definition sites and runs the gen/kill fixpoint.
type defsBuilder struct {
	info  *types.Info
	out   *defsInfo
	sites []defSite
	objOf []types.Object
	byObj map[types.Object][]int
}

// localVar returns obj as a local (non-field, non-package-scope) variable.
func localVar(obj types.Object) *types.Var {
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() || v.Pkg() == nil || v.Parent() == v.Pkg().Scope() {
		return nil
	}
	return v
}

func (b *defsBuilder) addSite(id *ast.Ident, site defSite) int {
	if id == nil || id.Name == "_" {
		return -1
	}
	obj := b.info.ObjectOf(id)
	if localVar(obj) == nil {
		return -1
	}
	n := len(b.sites)
	b.sites = append(b.sites, site)
	b.objOf = append(b.objOf, obj)
	b.byObj[obj] = append(b.byObj[obj], n)
	return n
}

// assignRHS returns the expression the i-th LHS of an assignment derives
// from: its paired RHS when 1:1, the single shared RHS of a tuple
// assignment (`v, err := f()`), nil for op= forms (the old value also
// contributes, so no single origin expression exists).
func assignRHS(n *ast.AssignStmt, i int) ast.Expr {
	if n.Tok != token.ASSIGN && n.Tok != token.DEFINE {
		return nil
	}
	if len(n.Lhs) == len(n.Rhs) {
		return n.Rhs[i]
	}
	if len(n.Rhs) == 1 {
		return n.Rhs[0]
	}
	return nil
}

// siteDefs lists the definition sites a single CFG node performs.
func (b *defsBuilder) siteDefs(n ast.Node) []int {
	var out []int
	add := func(i int) {
		if i >= 0 {
			out = append(out, i)
		}
	}
	switch n := n.(type) {
	case *ast.AssignStmt:
		for i, lhs := range n.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok {
				continue
			}
			add(b.addSite(id, defSite{rhs: assignRHS(n, i)}))
		}
	case *ast.DeclStmt:
		gd, ok := n.Decl.(*ast.GenDecl)
		if !ok {
			return nil
		}
		for _, spec := range gd.Specs {
			if vs, ok := spec.(*ast.ValueSpec); ok {
				for i, name := range vs.Names {
					var rhs ast.Expr
					if len(vs.Values) == len(vs.Names) {
						rhs = vs.Values[i]
					}
					add(b.addSite(name, defSite{rhs: rhs}))
				}
			}
		}
	case *ast.IncDecStmt:
		if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
			add(b.addSite(id, defSite{}))
		}
	case *ast.RangeStmt:
		if id, ok := n.Key.(*ast.Ident); ok {
			add(b.addSite(id, defSite{}))
		}
		if id, ok := n.Value.(*ast.Ident); ok {
			add(b.addSite(id, defSite{}))
		}
	}
	return out
}

// buildDefs runs the reaching-definitions pass over c.
func buildDefs(c *funcCFG, info *types.Info, body *ast.BlockStmt) *defsInfo {
	b := &defsBuilder{
		info:  info,
		out:   &defsInfo{flat: map[types.Object][]defSite{}, reach: map[*ast.Ident][]defSite{}},
		byObj: map[types.Object][]int{},
	}

	// Number the definition sites, per node, in block order.
	nodeDefs := map[ast.Node][]int{}
	for _, blk := range c.blocks {
		for _, n := range blk.nodes {
			nodeDefs[n] = b.siteDefs(n)
		}
	}

	// Flat index: every assignment anywhere in the body, closures included.
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				if obj := info.ObjectOf(id); localVar(obj) != nil {
					b.out.flat[obj] = append(b.out.flat[obj], defSite{rhs: assignRHS(n, i)})
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if name.Name == "_" {
					continue
				}
				if obj := info.ObjectOf(name); localVar(obj) != nil {
					var rhs ast.Expr
					if len(n.Values) == len(n.Names) {
						rhs = n.Values[i]
					}
					b.out.flat[obj] = append(b.out.flat[obj], defSite{rhs: rhs})
				}
			}
		}
		return true
	})

	// Fixpoint over def-site bitsets.
	words := (len(b.sites) + 63) / 64
	newBits := func() []uint64 { return make([]uint64, words) }
	union := func(dst, src []uint64) bool {
		changed := false
		for i := range dst {
			if v := dst[i] | src[i]; v != dst[i] {
				dst[i] = v
				changed = true
			}
		}
		return changed
	}
	transfer := func(state []uint64, n ast.Node) {
		for _, di := range nodeDefs[n] {
			for _, other := range b.byObj[b.objOf[di]] {
				state[other/64] &^= 1 << (other % 64)
			}
			state[di/64] |= 1 << (di % 64)
		}
	}

	reachable := c.reachableBlocks()
	in := map[*cfgBlock][]uint64{}
	for _, blk := range reachable {
		in[blk] = newBits()
	}
	work := append([]*cfgBlock(nil), reachable...)
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		state := newBits()
		copy(state, in[blk])
		for _, n := range blk.nodes {
			transfer(state, n)
		}
		for _, s := range blk.succs {
			if dst, ok := in[s]; ok && union(dst, state) {
				work = append(work, s)
			}
		}
	}

	// Record the reaching set at every identifier use; within a node, uses
	// read the state before the node's own definitions take effect.
	recordUse := func(state []uint64, id *ast.Ident) {
		obj := b.info.ObjectOf(id)
		if localVar(obj) == nil {
			return
		}
		if _, seen := b.out.reach[id]; seen {
			return
		}
		ids := b.byObj[obj]
		if len(ids) == 0 {
			return // no definition in this body: a parameter or free variable
		}
		out := []defSite{}
		for _, di := range ids {
			if state[di/64]&(1<<(di%64)) != 0 {
				out = append(out, b.sites[di])
			}
		}
		b.out.reach[id] = out
	}
	for _, blk := range reachable {
		state := newBits()
		copy(state, in[blk])
		for _, n := range blk.nodes {
			scanUses := n
			if r, ok := n.(*ast.RangeStmt); ok {
				scanUses = r.X // composite marker: only the header runs here
			}
			if _, ok := n.(*ast.SelectStmt); ok {
				scanUses = nil // comm clauses live in successor blocks
			}
			if scanUses != nil {
				ast.Inspect(scanUses, func(m ast.Node) bool {
					switch m := m.(type) {
					case *ast.FuncLit:
						return false
					case *ast.Ident:
						recordUse(state, m)
					}
					return true
				})
			}
			transfer(state, n)
		}
	}
	return b.out
}

// ---- qualified-name helpers ------------------------------------------------

// typeQName renders a (possibly pointer-wrapped) named type as
// "import/path.Name", or "".
func typeQName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj() == nil || n.Obj().Pkg() == nil {
		return ""
	}
	return n.Obj().Pkg().Path() + "." + n.Obj().Name()
}

// methodFullName returns go/types' FullName for the callee when the call
// invokes a method, e.g. "(*sync.Mutex).Lock"; "" otherwise.
func methodFullName(info *types.Info, call *ast.CallExpr) string {
	fn := staticCallee(info, call)
	if fn == nil || fn.Type().(*types.Signature).Recv() == nil {
		return ""
	}
	return fn.FullName()
}

// splitQName splits "import/path.Name" at the last dot.
func splitQName(q string) (pkgPath, name string) {
	i := strings.LastIndex(q, ".")
	if i < 0 {
		return "", q
	}
	return q[:i], q[i+1:]
}
