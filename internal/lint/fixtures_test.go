package lint

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden diagnostic files under testdata/lint")

// fixtureRoot is where the fixture packages and their goldens live.
func fixtureRoot(t *testing.T) string {
	t.Helper()
	abs, err := filepath.Abs(filepath.Join("testdata", "lint"))
	if err != nil {
		t.Fatal(err)
	}
	return abs
}

// loadFixtures loads the named fixture packages (dir names under
// testdata/lint) through the production loader, under their real
// module-qualified import paths so fixtures can import repo packages.
func loadFixtures(t *testing.T, names ...string) (*Module, []*Package, string) {
	t.Helper()
	mod, err := FindModule(".")
	if err != nil {
		t.Fatal(err)
	}
	root := fixtureRoot(t)
	loader := NewLoader(mod)
	var pkgs []*Package
	for _, name := range names {
		dir := filepath.Join(root, name)
		path, err := loader.ImportPathFor(dir)
		if err != nil {
			t.Fatal(err)
		}
		pkg, err := loader.LoadDir(dir, path)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", name, err)
		}
		pkgs = append(pkgs, pkg)
	}
	return mod, pkgs, root
}

// fixturePath returns the module import path of a fixture package.
func fixturePath(mod *Module, root, name string) string {
	rel, _ := filepath.Rel(mod.Root, filepath.Join(root, name))
	return mod.Path + "/" + filepath.ToSlash(rel)
}

// checkGolden compares findings against testdata/lint/<name>.golden,
// rewriting it under -update.
func checkGolden(t *testing.T, root, name string, findings []Finding) {
	t.Helper()
	var b strings.Builder
	for _, f := range findings {
		b.WriteString(f.String())
		b.WriteByte('\n')
	}
	got := b.String()
	goldenPath := filepath.Join(root, name+".golden")
	if *update {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden (run `go test ./internal/lint -update`): %v", err)
	}
	if got != string(want) {
		t.Errorf("diagnostics mismatch (run `go test ./internal/lint -update` after auditing)\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// runFixture runs the FULL suite (cross-analyzer silence is part of each
// golden) over the pos+neg fixture pair with cfg scoped by scope.
func runFixture(t *testing.T, golden string, fixtures []string, scope func(cfg *Config, paths []string)) {
	t.Helper()
	mod, pkgs, root := loadFixtures(t, fixtures...)
	cfg := DefaultConfig(mod.Path)
	paths := make([]string, len(fixtures))
	for i, name := range fixtures {
		paths[i] = fixturePath(mod, root, name)
	}
	scope(&cfg, paths)
	suite := NewSuite(cfg, root)
	checkGolden(t, root, golden, suite.Run(pkgs))
}

func TestDeterminismFixtures(t *testing.T) {
	runFixture(t, "determinism", []string{"det_pos", "det_neg"},
		func(cfg *Config, paths []string) { cfg.ResultPackages = paths })
}

func TestNilsafeFixtures(t *testing.T) {
	runFixture(t, "nilsafe", []string{"nilsafe_pos", "nilsafe_neg"},
		func(cfg *Config, paths []string) { cfg.NilsafePackages = paths })
}

func TestStdoutPureFixtures(t *testing.T) {
	// stdoutpure needs no scoping: any package outside the allowed
	// prefixes is checked, which is exactly what the fixtures are.
	runFixture(t, "stdoutpure", []string{"stdout_pos", "stdout_neg"},
		func(cfg *Config, paths []string) {})
}

func TestCounterSafeFixtures(t *testing.T) {
	runFixture(t, "countersafe", []string{"counter_pos", "counter_neg"},
		func(cfg *Config, paths []string) {})
}

func TestSweepFixtures(t *testing.T) {
	// The sweep fixtures exercise both analyzers the real package must
	// satisfy at once: countersafe (sweep.* names are declared constants)
	// and determinism (sweep is a result package; wall clock only behind
	// a reasoned //lint:wallclock).
	runFixture(t, "sweepmetrics", []string{"sweep_pos", "sweep_neg"},
		func(cfg *Config, paths []string) { cfg.ResultPackages = append(cfg.ResultPackages, paths...) })
}

func TestPoolSafeFixtures(t *testing.T) {
	// The fixtures import the real wivfi/internal/sim.Pool, which the
	// default config already names in PoolTypes — no scoping needed.
	runFixture(t, "poolsafe", []string{"poolsafe_pos", "poolsafe_neg"},
		func(cfg *Config, paths []string) {})
}

// scopeCacheKey points the cachekey roots at the fixtures' local
// Config/Request/KeyOf declarations.
func scopeCacheKey(cfg *Config, paths []string) {
	cfg.HashRoots = nil
	cfg.KeyFuncs = nil
	cfg.RequestStructs = nil
	for _, p := range paths {
		cfg.HashRoots = append(cfg.HashRoots, p+".Config")
		cfg.KeyFuncs = append(cfg.KeyFuncs, p+".KeyOf")
		cfg.RequestStructs = append(cfg.RequestStructs, p+".Request")
	}
}

func TestCacheKeyFixtures(t *testing.T) {
	runFixture(t, "cachekey", []string{"cachekey_pos", "cachekey_neg"}, scopeCacheKey)
}

func TestLockSafeFixtures(t *testing.T) {
	// locksafe has no package gate: the lock discipline holds everywhere.
	runFixture(t, "locksafe", []string{"locksafe_pos", "locksafe_neg"},
		func(cfg *Config, paths []string) {})
}

func TestLeakSafeFixtures(t *testing.T) {
	runFixture(t, "leaksafe", []string{"leaksafe_pos", "leaksafe_neg"},
		func(cfg *Config, paths []string) { cfg.ResultPackages = paths })
}

func TestSeedFlowFixtures(t *testing.T) {
	runFixture(t, "seedflow", []string{"seedflow_pos", "seedflow_neg"},
		func(cfg *Config, paths []string) { cfg.ResultPackages = paths })
}

func TestAnnotationHygieneFixtures(t *testing.T) {
	// The package is made a result package so the reasonless //lint:wallclock
	// provably fails to suppress the determinism finding it sits on.
	runFixture(t, "annotation", []string{"annot_pos"},
		func(cfg *Config, paths []string) { cfg.ResultPackages = paths })
}

// TestNegativesStayClean pins the core property of every *_neg fixture: a
// full-default-suite run over all of them together yields nothing.
func TestNegativesStayClean(t *testing.T) {
	names := []string{
		"det_neg", "nilsafe_neg", "stdout_neg", "counter_neg", "sweep_neg",
		"poolsafe_neg", "cachekey_neg", "locksafe_neg", "leaksafe_neg", "seedflow_neg",
	}
	mod, pkgs, root := loadFixtures(t, names...)
	cfg := DefaultConfig(mod.Path)
	for _, name := range names {
		p := fixturePath(mod, root, name)
		cfg.ResultPackages = append(cfg.ResultPackages, p)
		cfg.NilsafePackages = append(cfg.NilsafePackages, p)
	}
	// Aim the cachekey roots at the fixture's local declarations too, so
	// its negatives are exercised (not just unconfigured).
	ck := fixturePath(mod, root, "cachekey_neg")
	cfg.HashRoots = append(cfg.HashRoots, ck+".Config")
	cfg.KeyFuncs = append(cfg.KeyFuncs, ck+".KeyOf")
	cfg.RequestStructs = append(cfg.RequestStructs, ck+".Request")
	if findings := NewSuite(cfg, root).Run(pkgs); len(findings) != 0 {
		for _, f := range findings {
			t.Errorf("unexpected finding: %s", f)
		}
	}
}
