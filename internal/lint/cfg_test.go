package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseBody parses a function body from source (no type-checking — the
// CFG builder is purely syntactic).
func parseBody(t *testing.T, body string) *ast.BlockStmt {
	t.Helper()
	src := "package p\n\nfunc f() {\n" + body + "\n}\n"
	f, err := parser.ParseFile(token.NewFileSet(), "f.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return f.Decls[0].(*ast.FuncDecl).Body
}

// blockMentioning returns the first reachable block one of whose nodes
// contains an identifier with the given name, honouring the composite
// marker convention (a SelectStmt/RangeStmt marker means "the header
// executes here" — clause and body statements are not searched).
func blockMentioning(c *funcCFG, name string) *cfgBlock {
	for _, blk := range c.reachableBlocks() {
		for _, n := range blk.nodes {
			switch m := n.(type) {
			case *ast.SelectStmt:
				continue
			case *ast.RangeStmt:
				n = m.X
			}
			found := false
			ast.Inspect(n, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && id.Name == name {
					found = true
				}
				return !found
			})
			if found {
				return blk
			}
		}
	}
	return nil
}

// reaches reports whether to is reachable from from over successor edges.
func reaches(from, to *cfgBlock) bool {
	seen := map[*cfgBlock]bool{}
	var walk func(b *cfgBlock) bool
	walk = func(b *cfgBlock) bool {
		if b == to {
			return true
		}
		if seen[b] {
			return false
		}
		seen[b] = true
		for _, s := range b.succs {
			if walk(s) {
				return true
			}
		}
		return false
	}
	return walk(from)
}

// TestCFGDeferOnPath pins the property locksafe's exit check depends on:
// a defer is a flow node on the path where it textually executes, so a
// return BEFORE the defer registers must not see it, and a return after
// must.
func TestCFGDeferOnPath(t *testing.T) {
	c := buildCFG(parseBody(t, `
	lock()
	if early {
		earlyOut()
		return
	}
	defer unlock()
	late()
	return`))

	earlyBlk := blockMentioning(c, "earlyOut")
	lateBlk := blockMentioning(c, "late")
	deferBlk := blockMentioning(c, "unlock")
	if earlyBlk == nil || lateBlk == nil || deferBlk == nil {
		t.Fatal("missing expected blocks")
	}
	if deferBlk != lateBlk {
		t.Errorf("defer should share the late path's block: defer in #%d, late() in #%d", deferBlk.index, lateBlk.index)
	}
	if reaches(earlyBlk, deferBlk) {
		t.Error("early-return path must not pass through the defer")
	}
	if _, ok := deferBlk.nodes[0].(*ast.DeferStmt); !ok {
		t.Errorf("defer should appear as an *ast.DeferStmt flow node, got %T", deferBlk.nodes[0])
	}
	if earlyBlk.terminalReturn() == nil {
		t.Error("early block should end in an explicit return")
	}
}

// TestCFGGoroutineClosure pins the closure isolation convention: a go
// statement is one plain node in the launching block, and the closure's
// internal statements never appear in the enclosing CFG (closures get
// their own CFGs; their execution time is unknown).
func TestCFGGoroutineClosure(t *testing.T) {
	c := buildCFG(parseBody(t, `
	before()
	go func() {
		inner()
		if x {
			return
		}
		innerTail()
	}()
	after()`))

	for _, blk := range c.reachableBlocks() {
		for _, n := range blk.nodes {
			if call, ok := n.(*ast.ExprStmt); ok {
				if strings.Contains(exprIdent(call.X), "inner") {
					t.Errorf("closure statement leaked into outer CFG block #%d", blk.index)
				}
			}
		}
	}
	goBlk := blockMentioning(c, "before")
	if goBlk == nil {
		t.Fatal("missing launch block")
	}
	var haveGo bool
	for _, n := range goBlk.nodes {
		if _, ok := n.(*ast.GoStmt); ok {
			haveGo = true
		}
	}
	if !haveGo {
		t.Error("go statement should be a plain node in the launching block")
	}
	if blockMentioning(c, "after") != goBlk {
		t.Error("control continues past go in the same block")
	}
}

func exprIdent(e ast.Expr) string {
	if call, ok := e.(*ast.CallExpr); ok {
		if id, ok := call.Fun.(*ast.Ident); ok {
			return id.Name
		}
	}
	return ""
}

// TestCFGSelect pins the composite-marker convention: the SelectStmt node
// sits in the evaluating block (meaning "the select blocks here"), each
// comm clause lives in its own successor block, and — because a select
// with no default always blocks — there is no direct edge past it.
func TestCFGSelect(t *testing.T) {
	c := buildCFG(parseBody(t, `
	pre()
	select {
	case v := <-ch:
		use(v)
	case out <- 1:
		sent()
	}
	post()`))

	markerBlk := blockMentioning(c, "pre")
	if markerBlk == nil {
		t.Fatal("missing marker block")
	}
	var marker *ast.SelectStmt
	for _, n := range markerBlk.nodes {
		if s, ok := n.(*ast.SelectStmt); ok {
			marker = s
		}
	}
	if marker == nil {
		t.Fatal("SelectStmt marker should sit in the evaluating block")
	}
	if len(markerBlk.succs) != 2 {
		t.Fatalf("marker block should have one successor per clause, got %d", len(markerBlk.succs))
	}
	postBlk := blockMentioning(c, "post")
	for _, s := range markerBlk.succs {
		if s == postBlk {
			t.Error("select without default must not fall through directly")
		}
	}
	if useBlk := blockMentioning(c, "use"); useBlk == markerBlk || useBlk == nil {
		t.Error("clause bodies must live in successor blocks, not the marker block")
	}
	for _, s := range markerBlk.succs {
		if !reaches(s, postBlk) {
			t.Errorf("clause block #%d should reach the post-select block", s.index)
		}
	}
}

// TestCFGLabeledBreak pins label resolution: break with a label exits the
// labeled outer loop, not just the innermost one.
func TestCFGLabeledBreak(t *testing.T) {
	c := buildCFG(parseBody(t, `
outer:
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if hot {
				escape()
				break outer
			}
			innerWork()
		}
		outerWork()
	}
	done()`))

	escapeBlk := blockMentioning(c, "escape")
	doneBlk := blockMentioning(c, "done")
	outerWorkBlk := blockMentioning(c, "outerWork")
	if escapeBlk == nil || doneBlk == nil || outerWorkBlk == nil {
		t.Fatal("missing expected blocks")
	}
	foundDirect := false
	for _, s := range escapeBlk.succs {
		if s == doneBlk {
			foundDirect = true
		}
	}
	if !foundDirect {
		t.Error("break outer should edge directly to the block after the outer loop")
	}
	if reaches(escapeBlk, outerWorkBlk) {
		t.Error("break outer must not continue into the outer loop's remaining body")
	}
}

// TestCFGTerminalCalls pins that panic ends a path without creating a
// return edge: the block edges to exit (defers still run) but has no
// terminal return, and code after it is not reachable from it.
func TestCFGTerminalCalls(t *testing.T) {
	c := buildCFG(parseBody(t, `
	if bad {
		panic("boom")
	}
	cleanup()`))

	panicBlk := blockMentioning(c, "panic")
	cleanupBlk := blockMentioning(c, "cleanup")
	if panicBlk == nil || cleanupBlk == nil {
		t.Fatal("missing expected blocks")
	}
	if panicBlk.terminalReturn() != nil {
		t.Error("panic is not a return")
	}
	foundExit := false
	for _, s := range panicBlk.succs {
		if s == c.exit {
			foundExit = true
		}
		if s == cleanupBlk {
			t.Error("panic must not fall through to the next statement")
		}
	}
	if !foundExit {
		t.Error("panic block should edge to the synthetic exit")
	}
}
