package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// suppression is one `//lint:<key> <reason>` annotation in source. An
// annotation silences findings with the same key on its own line or the
// line directly below (the usual "comment above the statement" position).
type suppression struct {
	file   string
	line   int
	key    string
	reason string
	used   bool
}

// suppressionSet indexes a package's annotations by file and line.
type suppressionSet struct {
	byLine map[string]map[int]*suppression
	order  []*suppression
}

const suppressionPrefix = "//lint:"

// collectSuppressions scans every comment in the package's files.
func collectSuppressions(fset *token.FileSet, files []*ast.File) *suppressionSet {
	set := &suppressionSet{byLine: map[string]map[int]*suppression{}}
	for _, f := range files {
		for _, group := range f.Comments {
			for _, c := range group.List {
				rest, ok := strings.CutPrefix(c.Text, suppressionPrefix)
				if !ok {
					continue
				}
				key, reason, _ := strings.Cut(rest, " ")
				pos := fset.Position(c.Pos())
				sup := &suppression{
					file:   pos.Filename,
					line:   pos.Line,
					key:    strings.TrimSpace(key),
					reason: strings.TrimSpace(reason),
				}
				if set.byLine[sup.file] == nil {
					set.byLine[sup.file] = map[int]*suppression{}
				}
				set.byLine[sup.file][sup.line] = sup
				set.order = append(set.order, sup)
			}
		}
	}
	return set
}

// use marks the annotation covering (file, line, key) as used and reports
// whether one exists. A keyless or mismatched annotation never matches.
func (s *suppressionSet) use(file string, line int, key string) bool {
	lines := s.byLine[file]
	if lines == nil {
		return false
	}
	for _, l := range [2]int{line, line - 1} {
		if sup := lines[l]; sup != nil && sup.key == key && sup.reason != "" {
			sup.used = true
			return true
		}
	}
	return false
}

// all returns every annotation in source order.
func (s *suppressionSet) all() []*suppression { return s.order }
