package lint

// seedflow: the flow-sensitive upgrade of the determinism analyzer's rand
// rules. The AST-level check already bans the *global* math/rand functions
// in result packages; seedflow governs where explicitly-constructed
// sources get their seeds. Every seed reaching rand.NewSource / the v2
// generators in a result package must derive from a parameter (a
// config/seed argument, receiver field, or anything the caller controls)
// or from a declared named constant — traced through assignments,
// arithmetic, conversions, and calls. Anything else (a bare magic literal,
// a mutable package variable, an opaque zero-argument call) makes the
// stream's identity untraceable from config, which is exactly how
// "deterministic" runs drift apart.

import (
	"go/ast"
	"go/types"
)

// SeedFlowAnalyzer enforces config-derived RNG seeds in result packages.
var SeedFlowAnalyzer = &Analyzer{
	Name: "seedflow",
	Doc:  "rand sources in result packages must be seeded from config/seed parameters or named constants, traced through assignments",
	Keys: []string{"seed"},
	Run:  runSeedFlow,
}

// seedFuncs maps seeded-source constructors to the indices of their seed
// arguments.
var seedFuncs = map[string][]int{
	"math/rand.NewSource":     {0},
	"math/rand/v2.NewPCG":     {0, 1},
	"math/rand/v2.NewChaCha8": {0},
}

// seedVerdict is the trace lattice, ordered: offending > derived > named
// const > literal.
type seedVerdict int

const (
	seedLiteral    seedVerdict = iota // built only from bare literals
	seedNamedConst                    // involves a declared named constant
	seedDerived                       // derives from a parameter/config value
	seedOffending                     // untraceable / global state
)

func runSeedFlow(p *Pass) {
	if !contains(p.Config.ResultPackages, p.Pkg.ImportPath) {
		return
	}
	for _, file := range p.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			sc := declScope(p.prog(), p.Pkg, fd)
			visitFuncBody(sc, func(n ast.Node, nsc *fnScope) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				q := funcQName(calleeObject(p.Pkg.Info, call))
				argIdxs, ok := seedFuncs[q]
				if !ok {
					return true
				}
				for _, i := range argIdxs {
					if i >= len(call.Args) {
						continue
					}
					arg := call.Args[i]
					switch classifySeed(arg, nsc, 0) {
					case seedDerived, seedNamedConst:
						// Auditable: the seed is caller-controlled or named.
					case seedLiteral:
						p.Reportf(arg.Pos(), "seed",
							"seed for %s is a bare literal: name it as a declared constant or derive it from a config/seed parameter so the stream's identity is auditable (annotate //lint:seed <why> if neither fits)", q)
					case seedOffending:
						p.Reportf(arg.Pos(), "seed",
							"seed for %s does not derive from a config/seed parameter or named constant: untraceable seeds make \"deterministic\" runs drift — thread the seed through config (annotate //lint:seed <why> if audited)", q)
					}
				}
				return true
			})
		}
	}
}

// classifySeed traces a seed expression to its origins.
func classifySeed(e ast.Expr, sc *fnScope, depth int) seedVerdict {
	if depth > 10 {
		return seedOffending
	}
	info := sc.pkg.Info
	e = ast.Unparen(e)

	// Any compile-time constant that mentions a named constant is
	// auditable; a constant built only from bare literals is not.
	if tv, ok := info.Types[e]; ok && tv.Value != nil {
		if mentionsNamedConst(info, e) {
			return seedNamedConst
		}
		return seedLiteral
	}

	switch e := e.(type) {
	case *ast.Ident:
		return classifySeedIdent(e, sc, depth)
	case *ast.SelectorExpr:
		// A field read: auditable iff its root is (derived from) a
		// parameter — e.g. cfg.Seed, opts.Seed, s.Seed on a receiver.
		if root := baseIdent(e); root != nil {
			v := classifySeedIdent(root, sc, depth)
			if v == seedLiteral {
				return seedOffending // field of a literal-built value: untraceable
			}
			return v
		}
		return seedOffending
	case *ast.BinaryExpr:
		return combineSeed(classifySeed(e.X, sc, depth+1), classifySeed(e.Y, sc, depth+1))
	case *ast.UnaryExpr:
		return classifySeed(e.X, sc, depth+1)
	case *ast.IndexExpr:
		return classifySeed(e.X, sc, depth+1)
	case *ast.CallExpr:
		// Conversions pass through; real calls combine their operands
		// (receiver included), so hash(cfg.Seed) is derived while a
		// zero-operand call is opaque.
		if tv, ok := info.Types[e.Fun]; ok && tv.IsType() {
			if len(e.Args) == 1 {
				return classifySeed(e.Args[0], sc, depth+1)
			}
			return seedOffending
		}
		var operands []ast.Expr
		if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok {
			if fn := staticCallee(info, e); fn != nil && fn.Type().(*types.Signature).Recv() != nil {
				operands = append(operands, sel.X)
			}
		}
		operands = append(operands, e.Args...)
		if len(operands) == 0 {
			return seedOffending
		}
		v := seedLiteral
		for _, op := range operands {
			v = combineSeed(v, classifySeed(op, sc, depth+1))
		}
		return v
	}
	return seedOffending
}

// classifySeedIdent traces an identifier: parameters are derived, named
// constants auditable, package variables offending, locals traced through
// their reaching definitions.
func classifySeedIdent(id *ast.Ident, sc *fnScope, depth int) seedVerdict {
	info := sc.pkg.Info
	obj := info.ObjectOf(id)
	switch obj := obj.(type) {
	case *types.Const:
		return seedNamedConst
	case *types.Var:
		if sc.isParam(obj) {
			return seedDerived
		}
		if localVar(obj) == nil {
			return seedOffending // package-level variable: mutable global state
		}
		defs := sc.defsOf(id)
		if len(defs) == 0 {
			return seedOffending
		}
		v := seedLiteral
		for _, d := range defs {
			switch {
			case d.isParam:
				v = combineSeed(v, seedDerived)
			case d.rhs == nil:
				return seedOffending
			default:
				v = combineSeed(v, classifySeed(d.rhs, sc, depth+1))
			}
		}
		return v
	}
	return seedOffending
}

// combineSeed joins two verdicts: offending dominates, then derived, then
// named const, then literal.
func combineSeed(a, b seedVerdict) seedVerdict {
	if a > b {
		return a
	}
	return b
}

// mentionsNamedConst reports whether any identifier inside e resolves to a
// declared constant.
func mentionsNamedConst(info *types.Info, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if c, isConst := info.ObjectOf(id).(*types.Const); isConst && c.Pkg() != nil {
				found = true // a declared constant, not a universe literal
			}
		}
		return !found
	})
	return found
}
