package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package (non-test files only — the
// contracts guard shipped code; tests exercise them).
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info

	suppressions *suppressionSet
	// loader links back to the Loader that produced this package, giving
	// the flow-sensitive analyzers whole-program reach over every
	// module-internal dependency the type-checker already parsed.
	loader *Loader
}

// Module locates the enclosing Go module.
type Module struct {
	Root string // absolute directory containing go.mod
	Path string // module path declared in go.mod
}

// FindModule walks up from dir to the first go.mod.
func FindModule(dir string) (*Module, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module"); ok {
					return &Module{Root: d, Path: strings.TrimSpace(rest)}, nil
				}
			}
			return nil, fmt.Errorf("%s/go.mod: no module directive", d)
		}
		if parent := filepath.Dir(d); parent == d {
			return nil, fmt.Errorf("no go.mod found above %s", abs)
		}
	}
}

// Loader parses and type-checks module packages with a self-contained
// importer: module-internal imports resolve straight to their directories,
// everything else (the stdlib) goes through the compiler-independent
// source importer — no export data, no network, no x/tools.
type Loader struct {
	Module *Module
	Fset   *token.FileSet

	std   types.Importer
	pkgs  map[string]*Package // by import path
	loads map[string]bool     // cycle guard
}

// NewLoader returns a loader rooted at mod.
func NewLoader(mod *Module) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Module: mod,
		Fset:   fset,
		std:    importer.ForCompiler(fset, "source", nil),
		pkgs:   map[string]*Package{},
		loads:  map[string]bool{},
	}
}

// Import implements types.Importer over module-internal and stdlib paths.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.Module.Path || strings.HasPrefix(path, l.Module.Path+"/") {
		pkg, err := l.loadPath(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// dirFor maps a module-internal import path to its directory.
func (l *Loader) dirFor(path string) string {
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.Module.Path), "/")
	return filepath.Join(l.Module.Root, filepath.FromSlash(rel))
}

// loadPath loads a module-internal package by import path, memoized.
func (l *Loader) loadPath(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loads[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	l.loads[path] = true
	defer func() { l.loads[path] = false }()
	pkg, err := l.LoadDir(l.dirFor(path), path)
	if err != nil {
		return nil, err
	}
	return pkg, nil
}

// LoadDir parses and type-checks the package in dir under the given import
// path. Test files are skipped; files are loaded in sorted order so
// positions, and therefore findings, are deterministic.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	if pkg, ok := l.pkgs[importPath]; ok {
		return pkg, nil
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("%s: no Go files", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Defs:  map[*ast.Ident]types.Object{},
		Uses:  map[*ast.Ident]types.Object{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, err := conf.Check(importPath, l.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("%s: type errors: %v", importPath, typeErrs[0])
	}
	if err != nil {
		return nil, fmt.Errorf("%s: %w", importPath, err)
	}
	pkg := &Package{
		ImportPath:   importPath,
		Dir:          dir,
		Fset:         l.Fset,
		Files:        files,
		Types:        tpkg,
		Info:         info,
		suppressions: collectSuppressions(l.Fset, files),
		loader:       l,
	}
	l.pkgs[importPath] = pkg
	return pkg, nil
}

// ExpandPatterns resolves CLI-style package patterns ("./...", "./cmd/...",
// "internal/noc") against the module into package directories, sorted.
// Directories named testdata, hidden directories, and directories with no
// non-test Go files are skipped during ... expansion.
func (l *Loader) ExpandPatterns(patterns []string, cwd string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
			if pat == "." || pat == "" {
				pat = "."
			}
		} else if pat == "..." {
			recursive, pat = true, "."
		}
		base := pat
		if !filepath.IsAbs(base) {
			base = filepath.Join(cwd, base)
		}
		if !recursive {
			if hasGoFiles(base) {
				add(base)
				continue
			}
			return nil, fmt.Errorf("package pattern %q: no Go files in %s", pat, base)
		}
		err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") &&
			!strings.HasSuffix(name, "_test.go") && !strings.HasPrefix(name, ".") {
			return true
		}
	}
	return false
}

// ImportPathFor maps a directory inside the module to its import path.
func (l *Loader) ImportPathFor(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(l.Module.Root, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("%s is outside module %s", dir, l.Module.Root)
	}
	if rel == "." {
		return l.Module.Path, nil
	}
	return l.Module.Path + "/" + filepath.ToSlash(rel), nil
}

// LoadPatterns expands patterns and loads every matched package.
func (l *Loader) LoadPatterns(patterns []string, cwd string) ([]*Package, error) {
	dirs, err := l.ExpandPatterns(patterns, cwd)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, dir := range dirs {
		path, err := l.ImportPathFor(dir)
		if err != nil {
			return nil, err
		}
		pkg, err := l.LoadDir(dir, path)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}
