package lint

// Control-flow graphs for the flow-sensitive analyzers (locksafe, and the
// reaching-definitions pass under poolsafe/seedflow/cachekey). Stdlib-only,
// like the rest of the suite: built straight over go/ast, no x/tools.
//
// A funcCFG is a graph of basic blocks per function *body* (FuncDecl or
// FuncLit — closures get their own CFGs; a closure's execution time is
// unknown, so its statements must not appear inline in the enclosing
// flow). Each block holds an ordered list of ast.Nodes:
//
//   - plain statements (assignments, calls, sends, defers, go, returns)
//     appear as themselves and execute atomically within the block;
//   - control-test expressions (if/for conditions, switch tags) appear as
//     bare ast.Expr nodes in the block that evaluates them;
//   - *ast.RangeStmt and *ast.SelectStmt appear as composite markers: the
//     marker node means "the range/select header executes here", and
//     analyses must not descend into the marker's clause/body statements
//     (those live in successor blocks).
//
// Deferred calls are ordinary *ast.DeferStmt nodes in flow order, so a
// dataflow pass sees exactly on which paths a defer was registered. Every
// return (and the fall-off-the-end exit) has an edge to a synthetic
// empty exit block, giving "at function exit" checks a single join point.

import (
	"go/ast"
	"go/token"
)

// cfgBlock is one basic block.
type cfgBlock struct {
	index int
	nodes []ast.Node
	succs []*cfgBlock
	preds []*cfgBlock
}

// funcCFG is the control-flow graph of one function body.
type funcCFG struct {
	body   *ast.BlockStmt
	blocks []*cfgBlock
	entry  *cfgBlock
	exit   *cfgBlock // synthetic; preds are the return/fall-off blocks
}

// returnsTo reports whether b's terminal node is an explicit return
// (otherwise an edge into exit means control fell off the end).
func (b *cfgBlock) terminalReturn() *ast.ReturnStmt {
	if len(b.nodes) == 0 {
		return nil
	}
	r, _ := b.nodes[len(b.nodes)-1].(*ast.ReturnStmt)
	return r
}

type cfgBuilder struct {
	c *funcCFG
	// frames tracks enclosing breakable/continuable constructs, innermost
	// last.
	frames []cfgFrame
	// labelBlocks maps label names to their target blocks so goto and
	// labeled break/continue resolve even on forward references.
	labelBlocks map[string]*cfgBlock
}

type cfgFrame struct {
	label      string
	breakTo    *cfgBlock
	continueTo *cfgBlock // nil for switch/select frames
}

// buildCFG constructs the CFG for one function body.
func buildCFG(body *ast.BlockStmt) *funcCFG {
	b := &cfgBuilder{
		c:           &funcCFG{body: body},
		labelBlocks: map[string]*cfgBlock{},
	}
	b.c.exit = b.newBlock() // index 0 by convention
	b.c.entry = b.newBlock()
	end := b.stmtList(body.List, b.c.entry, "")
	if end != nil {
		b.edge(end, b.c.exit)
	}
	return b.c
}

func (b *cfgBuilder) newBlock() *cfgBlock {
	blk := &cfgBlock{index: len(b.c.blocks)}
	b.c.blocks = append(b.c.blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *cfgBlock) {
	from.succs = append(from.succs, to)
	to.preds = append(to.preds, from)
}

func (b *cfgBuilder) labelBlock(name string) *cfgBlock {
	if blk, ok := b.labelBlocks[name]; ok {
		return blk
	}
	blk := b.newBlock()
	b.labelBlocks[name] = blk
	return blk
}

// frameFor finds the innermost frame matching label ("" = innermost of the
// right kind; needLoop restricts to loops, for continue).
func (b *cfgBuilder) frameFor(label string, needLoop bool) *cfgFrame {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := &b.frames[i]
		if needLoop && f.continueTo == nil {
			continue
		}
		if label == "" || f.label == label {
			return f
		}
	}
	return nil
}

func (b *cfgBuilder) stmtList(list []ast.Stmt, cur *cfgBlock, label string) *cfgBlock {
	for i, s := range list {
		lbl := ""
		if i == 0 {
			lbl = label
		}
		cur = b.stmt(s, cur, lbl)
		if cur == nil && i < len(list)-1 {
			// Unreachable trailing code (after return/break): keep building
			// into a fresh dead block so every statement lives in some block.
			cur = b.newBlock()
		}
	}
	return cur
}

// stmt wires s into the graph starting at cur and returns the block where
// control continues, or nil when control cannot fall through s. label is
// the pending label when s is the direct body of a LabeledStmt.
func (b *cfgBuilder) stmt(s ast.Stmt, cur *cfgBlock, label string) *cfgBlock {
	switch s := s.(type) {
	case nil, *ast.EmptyStmt:
		return cur

	case *ast.BlockStmt:
		return b.stmtList(s.List, cur, "")

	case *ast.LabeledStmt:
		lb := b.labelBlock(s.Label.Name)
		b.edge(cur, lb)
		return b.stmt(s.Stmt, lb, s.Label.Name)

	case *ast.ReturnStmt:
		cur.nodes = append(cur.nodes, s)
		b.edge(cur, b.c.exit)
		return nil

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if f := b.frameFor(labelName(s.Label), false); f != nil {
				b.edge(cur, f.breakTo)
			}
			return nil
		case token.CONTINUE:
			if f := b.frameFor(labelName(s.Label), true); f != nil {
				b.edge(cur, f.continueTo)
			}
			return nil
		case token.GOTO:
			if s.Label != nil {
				b.edge(cur, b.labelBlock(s.Label.Name))
			}
			return nil
		case token.FALLTHROUGH:
			// The enclosing switch clause wires fallthrough edges; as a
			// statement it has no effect of its own.
			return cur
		}
		return cur

	case *ast.IfStmt:
		if s.Init != nil {
			cur = b.stmt(s.Init, cur, "")
		}
		cur.nodes = append(cur.nodes, s.Cond)
		thenB := b.newBlock()
		b.edge(cur, thenB)
		thenEnd := b.stmtList(s.Body.List, thenB, "")
		after := b.newBlock()
		if s.Else != nil {
			elseB := b.newBlock()
			b.edge(cur, elseB)
			elseEnd := b.stmt(s.Else, elseB, "")
			if elseEnd != nil {
				b.edge(elseEnd, after)
			}
		} else {
			b.edge(cur, after)
		}
		if thenEnd != nil {
			b.edge(thenEnd, after)
		}
		if len(after.preds) == 0 {
			return nil
		}
		return after

	case *ast.ForStmt:
		if s.Init != nil {
			cur = b.stmt(s.Init, cur, "")
		}
		cond := b.newBlock()
		b.edge(cur, cond)
		after := b.newBlock()
		if s.Cond != nil {
			cond.nodes = append(cond.nodes, s.Cond)
			b.edge(cond, after)
		}
		contTo := cond
		var post *cfgBlock
		if s.Post != nil {
			post = b.newBlock()
			contTo = post
		}
		body := b.newBlock()
		b.edge(cond, body)
		b.frames = append(b.frames, cfgFrame{label: label, breakTo: after, continueTo: contTo})
		bodyEnd := b.stmtList(s.Body.List, body, "")
		b.frames = b.frames[:len(b.frames)-1]
		if bodyEnd != nil {
			b.edge(bodyEnd, contTo)
		}
		if post != nil {
			post = b.stmt(s.Post, post, "")
			if post != nil {
				b.edge(post, cond)
			}
		}
		if len(after.preds) == 0 {
			return nil // for {} with no break: nothing falls through
		}
		return after

	case *ast.RangeStmt:
		head := b.newBlock()
		b.edge(cur, head)
		head.nodes = append(head.nodes, s) // composite marker: header only
		after := b.newBlock()
		b.edge(head, after)
		body := b.newBlock()
		b.edge(head, body)
		b.frames = append(b.frames, cfgFrame{label: label, breakTo: after, continueTo: head})
		bodyEnd := b.stmtList(s.Body.List, body, "")
		b.frames = b.frames[:len(b.frames)-1]
		if bodyEnd != nil {
			b.edge(bodyEnd, head)
		}
		return after

	case *ast.SwitchStmt:
		if s.Init != nil {
			cur = b.stmt(s.Init, cur, "")
		}
		if s.Tag != nil {
			cur.nodes = append(cur.nodes, s.Tag)
		}
		return b.switchClauses(s.Body.List, cur, label, func(c ast.Stmt) ([]ast.Node, []ast.Stmt, bool) {
			cc := c.(*ast.CaseClause)
			var tests []ast.Node
			for _, e := range cc.List {
				tests = append(tests, e)
			}
			return tests, cc.Body, cc.List == nil
		})

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			cur = b.stmt(s.Init, cur, "")
		}
		cur.nodes = append(cur.nodes, s.Assign)
		return b.switchClauses(s.Body.List, cur, label, func(c ast.Stmt) ([]ast.Node, []ast.Stmt, bool) {
			cc := c.(*ast.CaseClause)
			return nil, cc.Body, cc.List == nil
		})

	case *ast.SelectStmt:
		cur.nodes = append(cur.nodes, s) // composite marker: the select itself
		after := b.newBlock()
		b.frames = append(b.frames, cfgFrame{label: label, breakTo: after})
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			cb := b.newBlock()
			b.edge(cur, cb)
			if cc.Comm != nil {
				cb.nodes = append(cb.nodes, cc.Comm)
			}
			if end := b.stmtList(cc.Body, cb, ""); end != nil {
				b.edge(end, after)
			}
		}
		b.frames = b.frames[:len(b.frames)-1]
		if len(after.preds) == 0 {
			return nil
		}
		return after

	case *ast.ExprStmt:
		cur.nodes = append(cur.nodes, s)
		if isTerminalCall(s.X) {
			b.edge(cur, b.c.exit) // defers still run after panic
			return nil
		}
		return cur

	default:
		// Assign, Decl, IncDec, Send, Defer, Go, and anything else without
		// internal control flow: a plain node in the current block.
		cur.nodes = append(cur.nodes, s)
		return cur
	}
}

// switchClauses wires the clause blocks of a switch/type-switch: every
// clause is a successor of the dispatch block, fallthrough chains to the
// next clause, and a missing default adds a direct edge past the switch.
func (b *cfgBuilder) switchClauses(clauses []ast.Stmt, cur *cfgBlock, label string,
	split func(ast.Stmt) (tests []ast.Node, body []ast.Stmt, isDefault bool)) *cfgBlock {
	after := b.newBlock()
	b.frames = append(b.frames, cfgFrame{label: label, breakTo: after})
	blocks := make([]*cfgBlock, len(clauses))
	bodies := make([][]ast.Stmt, len(clauses))
	hasDefault := false
	for i, c := range clauses {
		tests, body, isDefault := split(c)
		hasDefault = hasDefault || isDefault
		cb := b.newBlock()
		b.edge(cur, cb)
		cb.nodes = append(cb.nodes, tests...)
		blocks[i] = cb
		bodies[i] = body
	}
	for i := range clauses {
		end := b.stmtList(bodies[i], blocks[i], "")
		if end == nil {
			continue
		}
		if n := len(bodies[i]); n > 0 {
			if br, ok := bodies[i][n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH && i+1 < len(blocks) {
				b.edge(end, blocks[i+1])
				continue
			}
		}
		b.edge(end, after)
	}
	b.frames = b.frames[:len(b.frames)-1]
	if !hasDefault {
		b.edge(cur, after)
	}
	if len(after.preds) == 0 {
		return nil
	}
	return after
}

func labelName(id *ast.Ident) string {
	if id == nil {
		return ""
	}
	return id.Name
}

// isTerminalCall reports whether expr is a call that never returns:
// builtin panic, or os.Exit / runtime.Goexit by selector shape. (Shape
// match is enough — a false positive merely prunes an edge in analyses
// that are conservative anyway.)
func isTerminalCall(expr ast.Expr) bool {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		if x, ok := fun.X.(*ast.Ident); ok {
			return (x.Name == "os" && fun.Sel.Name == "Exit") ||
				(x.Name == "runtime" && fun.Sel.Name == "Goexit")
		}
	}
	return false
}

// reachableBlocks returns the blocks reachable from entry in index order.
func (c *funcCFG) reachableBlocks() []*cfgBlock {
	seen := make([]bool, len(c.blocks))
	var stack []*cfgBlock
	push := func(b *cfgBlock) {
		if !seen[b.index] {
			seen[b.index] = true
			stack = append(stack, b)
		}
	}
	push(c.entry)
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range b.succs {
			push(s)
		}
	}
	var out []*cfgBlock
	for _, b := range c.blocks {
		if seen[b.index] {
			out = append(out, b)
		}
	}
	return out
}
