// Package lint is the repo's custom static-analysis suite: a small,
// stdlib-only analyzer framework (go/parser + go/types, no x/tools
// dependency, so it runs offline) plus the nine analyzers that
// mechanically enforce the contracts the paper reproduction depends on.
//
// Four are AST-level pattern checks:
//
//   - determinism: result-producing packages must not let wall clock,
//     global math/rand state, or unordered map iteration feed floats into
//     results. The fidelity scoreboard and timeline exports are
//     regression-gated on byte-identical output across -j levels and cache
//     states; one `range` over a map that reorders a float accumulation
//     breaks every downstream gate.
//   - nilsafe: exported methods on obs/timeline collector types must begin
//     with a nil-receiver guard, keeping the disabled telemetry path a
//     zero-alloc no-op.
//   - stdoutpure: fmt.Print*/os.Stdout writes are forbidden outside cmd/*
//     and examples/* render paths, protecting the byte-identical-stdout
//     gate.
//   - countersafe: obs counter/gauge names must come from declared
//     constants, so a typo'd metric name is a compile-visible diagnostic
//     instead of a silently empty manifest row.
//
// Five are flow-sensitive, built on the cfg.go/dataflow.go engine (basic
// blocks, reaching definitions, and bounded interprocedural call walks
// over every package the loader has in memory):
//
//   - poolsafe: a job holding a sim.Pool slot must not transitively
//     re-acquire from the same pool (nested acquisition deadlocks under
//     saturation — the PR 9 incident, machine-checked).
//   - cachekey: every serialized field reachable from the hash-root
//     structs must feed expt.ConfigHash, and every field of a request
//     struct must reach a RequestKey call — new fields that silently
//     collide cached results become findings.
//   - locksafe: no mutex held across channel operations, pool
//     acquisition, or calls that re-lock the same receiver; every path
//     from Lock to return must unlock.
//   - leaksafe: goroutines launched in result packages need a join/cancel
//     path (WaitGroup, channel, or pool slot).
//   - seedflow: rand sources in result packages must be seeded from
//     config/seed parameters or named constants, traced through
//     assignments and calls.
//
// Audited exceptions are annotated in source as `//lint:<key> <reason>` on
// the offending line or the line above; annotations without a reason, with
// an unknown key, or that no longer suppress anything are themselves
// findings, so the audit trail cannot rot.
//
// The suite runs three ways with identical results: `wivfi-lint ./...`
// (the CLI), `go test ./internal/lint` (the repo gate), and the CI lint
// step.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one diagnostic: a contract violation or a rotten suppression
// annotation.
type Finding struct {
	File     string `json:"file"` // path relative to the module root
	Line     int    `json:"line"`
	Analyzer string `json:"analyzer"`
	Key      string `json:"key,omitempty"` // suppression key that would silence it
	Message  string `json:"message"`
}

// String renders the canonical `file:line: [analyzer] message` form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.File, f.Line, f.Analyzer, f.Message)
}

// Analyzer is one named check run over every loaded package.
type Analyzer struct {
	Name string
	Doc  string
	// Keys lists the suppression keys this analyzer honours; a
	// `//lint:<key> reason` annotation is only considered "used" when its
	// key belongs to an analyzer that actually ran.
	Keys []string
	Run  func(*Pass)
}

// Pass hands one package to one analyzer.
type Pass struct {
	Config   Config
	Pkg      *Package
	analyzer *Analyzer
	suite    *Suite
}

// Reportf records a finding at pos unless an in-source annotation with the
// given suppression key covers that line. key may be empty for findings
// that must not be suppressible.
func (p *Pass) Reportf(pos token.Pos, key, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	line := position.Line
	if key != "" && p.Pkg.suppressions.use(position.Filename, line, key) {
		return
	}
	p.suite.findings = append(p.suite.findings, Finding{
		File:     p.suite.relPath(position.Filename),
		Line:     line,
		Analyzer: p.analyzer.Name,
		Key:      key,
		Message:  fmt.Sprintf(format, args...),
	})
}

// prog returns the whole-program index the suite built for this run.
func (p *Pass) prog() *progIndex {
	if p.suite.prog == nil {
		p.suite.prog = buildProgIndex([]*Package{p.Pkg})
	}
	return p.suite.prog
}

// Config scopes the analyzers. Paths are import paths; DefaultConfig wires
// the repo's real layout, tests substitute fixture packages.
type Config struct {
	// ModulePath is the module's import-path prefix ("wivfi").
	ModulePath string
	// ResultPackages are the packages whose outputs are regression-gated
	// byte-identical artifacts; the determinism analyzer runs only there.
	ResultPackages []string
	// StdoutAllowed are import-path prefixes permitted to write to stdout
	// (the render paths: cmd/*, examples/*).
	StdoutAllowed []string
	// NilsafePackages are scanned for collector types (types whose doc
	// comment declares the nil-receiver no-op contract).
	NilsafePackages []string
	// NilsafeTypes are always treated as collector types when present,
	// qualified as "import/path.TypeName" — deleting the doc comment must
	// not waive the check for the core primitives.
	NilsafeTypes []string
	// MetricFuncs are the constructors whose name argument must be a
	// declared constant, qualified as "import/path.FuncName".
	MetricFuncs []string
	// PoolTypes are the bounded worker-pool types whose Do/DoNamed methods
	// acquire an admission slot, qualified as "import/path.TypeName";
	// poolsafe guards their nested acquisition, locksafe and leaksafe
	// treat them as blocking/joining primitives.
	PoolTypes []string
	// HashRoots are the struct types whose JSON serialization feeds the
	// design-cache content hash; cachekey audits every struct reachable
	// from them through serialized fields.
	HashRoots []string
	// KeyFuncs are the cache-key constructors, qualified as
	// "import/path.FuncName"; request-struct fields must flow into a call
	// to one of them.
	KeyFuncs []string
	// RequestStructs are request-shaped structs (qualified type names)
	// whose every field must reach a KeyFuncs call.
	RequestStructs []string
}

// DefaultConfig returns the production configuration for this repo.
func DefaultConfig(modulePath string) Config {
	q := func(rels ...string) []string {
		out := make([]string, len(rels))
		for i, r := range rels {
			out[i] = modulePath + "/" + r
		}
		return out
	}
	return Config{
		ModulePath: modulePath,
		ResultPackages: q(
			"internal/noc", "internal/mapreduce", "internal/expt",
			"internal/vfi", "internal/qp", "internal/energy",
			"internal/topo", "internal/place", "internal/sched",
			"internal/stats", "internal/fidelity", "internal/serve",
			"internal/governor", "internal/sweep",
		),
		StdoutAllowed:   []string{modulePath + "/cmd/", modulePath + "/examples/"},
		NilsafePackages: q("internal/obs", "internal/timeline", "internal/governor"),
		NilsafeTypes: []string{
			modulePath + "/internal/timeline.Collector",
			modulePath + "/internal/timeline.Sampler",
			modulePath + "/internal/timeline.Histogram",
			modulePath + "/internal/timeline.Track",
			modulePath + "/internal/governor.Log",
		},
		MetricFuncs: []string{
			modulePath + "/internal/obs.NewCounter",
			modulePath + "/internal/obs.NewGauge",
			modulePath + "/internal/obs.RegisterHistogram",
		},
		PoolTypes: []string{modulePath + "/internal/sim.Pool"},
		HashRoots: []string{modulePath + "/internal/expt.Config"},
		KeyFuncs: []string{
			modulePath + "/internal/expt.RequestKey",
			modulePath + "/internal/expt.ConfigHash",
		},
		RequestStructs: []string{
			modulePath + "/internal/serve.Request",
			modulePath + "/internal/sweep.Scenario",
		},
	}
}

// Analyzers returns the full suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		DeterminismAnalyzer,
		NilsafeAnalyzer,
		StdoutPureAnalyzer,
		CounterSafeAnalyzer,
		PoolSafeAnalyzer,
		CacheKeyAnalyzer,
		LockSafeAnalyzer,
		LeakSafeAnalyzer,
		SeedFlowAnalyzer,
	}
}

// AnalyzerNames returns the names of the full suite.
func AnalyzerNames() []string {
	all := Analyzers()
	names := make([]string, len(all))
	for i, a := range all {
		names[i] = a.Name
	}
	return names
}

// Select returns the analyzers named in only (comma-split elsewhere); an
// empty selection means the full suite. Unknown names are an error.
func Select(only []string) ([]*Analyzer, error) {
	all := Analyzers()
	if len(only) == 0 {
		return all, nil
	}
	byName := make(map[string]*Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var sel []*Analyzer
	seen := map[string]bool{}
	for _, name := range only {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (have %s)", name, strings.Join(AnalyzerNames(), ", "))
		}
		if !seen[name] {
			seen[name] = true
			sel = append(sel, a)
		}
	}
	return sel, nil
}

// Suite runs a set of analyzers over loaded packages and owns the finding
// list and suppression hygiene.
type Suite struct {
	Config    Config
	Analyzers []*Analyzer
	// Root is the directory findings are reported relative to (the module
	// root in production, the fixture dir in tests).
	Root string
	// Only, when non-nil, restricts analysis and suppression auditing to
	// the named import paths (the -pkgs CLI filter). Every loaded package
	// still contributes whole-program context (call graphs, hash trees);
	// Only just scopes where findings are reported.
	Only map[string]bool

	findings    []Finding
	prog        *progIndex
	hashStructs []*types.Named
}

// NewSuite returns a suite with the full analyzer set.
func NewSuite(cfg Config, root string) *Suite {
	return &Suite{Config: cfg, Analyzers: Analyzers(), Root: root}
}

func (s *Suite) relPath(file string) string {
	if s.Root == "" {
		return file
	}
	rel := strings.TrimPrefix(file, strings.TrimSuffix(s.Root, "/")+"/")
	return rel
}

// activeKeys returns the suppression keys honoured by the analyzers that
// ran, plus every key any analyzer registers (for unknown-key checks).
func (s *Suite) activeKeys() (active, known map[string]bool) {
	active = map[string]bool{}
	known = map[string]bool{}
	for _, a := range Analyzers() {
		for _, k := range a.Keys {
			known[k] = true
		}
	}
	for _, a := range s.Analyzers {
		for _, k := range a.Keys {
			active[k] = true
		}
	}
	return active, known
}

// Run analyzes the given packages and returns the sorted findings. It runs
// every configured analyzer over every analyzed package (all of them, or
// the Only subset), then audits the suppression annotations themselves: an
// annotation with no reason, an unknown key, or one that silenced nothing
// is a finding. The stale check is per-key: an unused annotation is only
// stale when the analyzer owning its key actually ran here — a -only or
// -pkgs run must not condemn annotations it never gave a chance to fire.
func (s *Suite) Run(pkgs []*Package) []Finding {
	s.prog = buildProgIndex(pkgs)
	analyzed := pkgs
	if s.Only != nil {
		analyzed = nil
		for _, pkg := range pkgs {
			if s.Only[pkg.ImportPath] {
				analyzed = append(analyzed, pkg)
			}
		}
	}
	for _, pkg := range analyzed {
		for _, a := range s.Analyzers {
			a.Run(&Pass{Config: s.Config, Pkg: pkg, analyzer: a, suite: s})
		}
	}
	active, known := s.activeKeys()
	for _, pkg := range analyzed {
		for _, sup := range pkg.suppressions.all() {
			switch {
			case !known[sup.key]:
				s.findings = append(s.findings, Finding{
					File: s.relPath(sup.file), Line: sup.line, Analyzer: "annotation",
					Message: fmt.Sprintf("unknown suppression key %q (have %s)", sup.key, strings.Join(sortedKeys(known), ", ")),
				})
			case sup.reason == "":
				s.findings = append(s.findings, Finding{
					File: s.relPath(sup.file), Line: sup.line, Analyzer: "annotation",
					Message: fmt.Sprintf("//lint:%s needs a one-line justification after the key", sup.key),
				})
			case active[sup.key] && !sup.used:
				s.findings = append(s.findings, Finding{
					File: s.relPath(sup.file), Line: sup.line, Analyzer: "annotation",
					Message: fmt.Sprintf("//lint:%s suppresses nothing here — remove the stale annotation", sup.key),
				})
			}
		}
	}
	sort.Slice(s.findings, func(i, j int) bool {
		a, b := s.findings[i], s.findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return s.findings
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ---- shared analyzer helpers ----------------------------------------------

// contains reports whether list has exactly s.
func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

// hasPrefixAny reports whether s starts with any of the prefixes.
func hasPrefixAny(s string, prefixes []string) bool {
	for _, p := range prefixes {
		if strings.HasPrefix(s, p) {
			return true
		}
	}
	return false
}

// funcQName returns "import/path.Name" for a package-level function or
// method-less callee object, or "" when obj is not a function.
func funcQName(obj types.Object) string {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return ""
	}
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		return ""
	}
	return fn.Pkg().Path() + "." + fn.Name()
}

// calleeObject resolves the object a call expression invokes, looking
// through parens. Returns nil for builtins, conversions and indirect calls.
func calleeObject(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	}
	return nil
}

// isFloat reports whether t's core type is a floating-point kind.
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
