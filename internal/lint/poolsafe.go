package lint

// poolsafe: no function transitively reachable while holding a sim.Pool
// slot may acquire from the same pool. A pool slot is held for the whole
// dynamic extent of the job passed to Do/DoNamed; if that job (or anything
// it calls, or a goroutine it launches and joins) acquires from the same
// pool, the run deadlocks as soon as the pool saturates — every slot
// holder is waiting for a slot. PR 9 hit exactly this between the sweep's
// scenario pool and the experiment pipeline's stage pool and had to inline
// the inner pipeline by hand; this analyzer machine-checks the fix.
//
// The walk is a bounded interprocedural pass over the progIndex call
// graph: starting at the job closure, pool-typed arguments (and receivers
// whose fields hold the pool) are bound at each static call edge and
// traced through reaching definitions. Indirect calls (func-typed fields,
// interface methods) are not traversed — a deliberate soundness bound,
// matched by the repo's "leaf jobs only" pool discipline. Acquisitions
// whose pool provably differs (nil, a locally constructed New* pool, a
// distinct variable) pass; acquisitions on the held pool are findings, and
// untraceable origins are conservative findings.

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// PoolSafeAnalyzer detects nested acquisition of a held worker pool.
var PoolSafeAnalyzer = &Analyzer{
	Name: "poolsafe",
	Doc:  "a job holding a sim.Pool slot must not re-acquire from the same pool (nested acquisition deadlocks under saturation)",
	Keys: []string{"pool"},
	Run:  runPoolSafe,
}

// poolAcquire classifies call as a slot acquisition (Do/DoNamed on a
// configured pool type) and returns the receiver and the job argument.
func poolAcquire(cfg Config, info *types.Info, call *ast.CallExpr) (recv, job ast.Expr, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return nil, nil, false
	}
	fn := staticCallee(info, call)
	if fn == nil || (fn.Name() != "Do" && fn.Name() != "DoNamed") {
		return nil, nil, false
	}
	sig := fn.Type().(*types.Signature)
	if sig.Recv() == nil || !contains(cfg.PoolTypes, typeQName(sig.Recv().Type())) {
		return nil, nil, false
	}
	for i := len(call.Args) - 1; i >= 0; i-- {
		if t := info.Types[call.Args[i]].Type; t != nil {
			if _, isFn := t.Underlying().(*types.Signature); isFn {
				return sel.X, call.Args[i], true
			}
		}
	}
	return sel.X, nil, true
}

// poolVal is the origin lattice for a value relative to the held pool.
type poolVal struct {
	kind byte   // 'h' leads to the held pool, 'n' provably not it, 'u' unknown
	path string // for 'h': remaining field path to the pool ("" = is the pool)
}

type poolFrame struct {
	sc    *fnScope
	bind  map[types.Object]poolVal
	chain []string
}

type poolWalker struct {
	p        *Pass
	heldRoot types.Object
	heldPath string
	outer    *ast.CallExpr
	method   string
	visited  map[string]bool
	reported map[string]bool
	depth    int
}

func runPoolSafe(p *Pass) {
	for _, file := range p.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			sc := declScope(p.prog(), p.Pkg, fd)
			visitFuncBody(sc, func(n ast.Node, nsc *fnScope) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				recv, job, ok := poolAcquire(p.Config, p.Pkg.Info, call)
				if !ok || job == nil {
					return true
				}
				root, path, ok := rootPath(p.Pkg.Info, recv)
				if !ok || root == nil {
					return true
				}
				w := &poolWalker{
					p: p, heldRoot: root, heldPath: path, outer: call,
					method:   staticCallee(p.Pkg.Info, call).Name(),
					visited:  map[string]bool{},
					reported: map[string]bool{},
				}
				w.walkJob(job, nsc)
				return true
			})
		}
	}
}

// walkJob resolves the job expression to a body and walks it.
func (w *poolWalker) walkJob(job ast.Expr, sc *fnScope) {
	switch j := ast.Unparen(job).(type) {
	case *ast.FuncLit:
		child := newFnScope(sc.ix, sc.pkg, sc, j.Body, j.Type, nil)
		w.walkBody(&poolFrame{sc: child, bind: map[types.Object]poolVal{}})
	case *ast.Ident:
		if fn, ok := sc.pkg.Info.ObjectOf(j).(*types.Func); ok {
			w.walkCallee(fn, map[types.Object]poolVal{}, nil)
			return
		}
		for _, d := range sc.defsOf(j) {
			if d.rhs != nil {
				w.walkJob(d.rhs, sc)
			}
		}
	case *ast.SelectorExpr:
		if fn, ok := sc.pkg.Info.Uses[j.Sel].(*types.Func); ok {
			w.walkCallee(fn, map[types.Object]poolVal{}, nil)
		}
	}
}

// walkCallee walks a named function used as a job (or reached through a
// call edge) under the given parameter bindings.
func (w *poolWalker) walkCallee(fn *types.Func, bind map[types.Object]poolVal, chain []string) {
	src := w.p.prog().srcOf(fn)
	if src == nil {
		return
	}
	key := fn.FullName() + "|" + bindFingerprint(bind)
	if w.visited[key] {
		return
	}
	w.visited[key] = true
	w.walkBody(&poolFrame{
		sc:    declScope(w.p.prog(), src.pkg, src.decl),
		bind:  bind,
		chain: append(append([]string(nil), chain...), qualFnName(fn)),
	})
}

// walkBody scans one function body (closures and goroutine bodies
// included — a job that launches and joins goroutines still holds the
// slot while they run) for acquisitions and static call edges.
func (w *poolWalker) walkBody(f *poolFrame) {
	if w.depth > 40 {
		return
	}
	info := f.sc.pkg.Info
	visitFuncBody(f.sc, func(n ast.Node, nsc *fnScope) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		nf := &poolFrame{sc: nsc, bind: f.bind, chain: f.chain}
		if recv, _, ok := poolAcquire(w.p.Config, info, call); ok {
			switch v := w.classify(recv, nf); v.kind {
			case 'h':
				if v.path == "" {
					w.report(call, nf, true)
				}
			case 'u':
				w.report(call, nf, false)
			}
			return true
		}
		w.callEdge(call, nf)
		return true
	})
}

// callEdge binds pool-relevant arguments at a static call and walks the
// callee when any binding can reach the held pool.
func (w *poolWalker) callEdge(call *ast.CallExpr, f *poolFrame) {
	info := f.sc.pkg.Info
	fn := staticCallee(info, call)
	if fn == nil {
		return
	}
	src := w.p.prog().srcOf(fn)
	if src == nil {
		return
	}
	sig := fn.Type().(*types.Signature)
	bind := map[types.Object]poolVal{}
	interesting := false

	bindOne := func(obj types.Object, arg ast.Expr) {
		if obj == nil || arg == nil {
			return
		}
		v := w.classify(arg, f)
		bind[obj] = v
		if v.kind != 'n' {
			interesting = true
		}
	}

	// Receiver: the callee sees it as its receiver object.
	if sig.Recv() != nil && src.decl.Recv != nil && len(src.decl.Recv.List) > 0 && len(src.decl.Recv.List[0].Names) > 0 {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			bindOne(src.pkg.Info.Defs[src.decl.Recv.List[0].Names[0]], sel.X)
		}
	}
	// Positional parameters, matched to the declaration's param objects.
	params := declParamObjs(src)
	n := len(call.Args)
	if sig.Variadic() && len(params) > 0 {
		if n > len(params)-1 {
			n = len(params) - 1 // variadic tail not bound
		}
	}
	for i := 0; i < n && i < len(params); i++ {
		bindOne(params[i], call.Args[i])
	}

	if !interesting {
		return
	}
	key := fn.FullName() + "|" + bindFingerprint(bind)
	if w.visited[key] {
		return
	}
	w.visited[key] = true
	w.depth++
	w.walkBody(&poolFrame{
		sc:    declScope(w.p.prog(), src.pkg, src.decl),
		bind:  bind,
		chain: append(append([]string(nil), f.chain...), qualFnName(fn)),
	})
	w.depth--
}

// classify resolves an expression's origin relative to the held pool.
func (w *poolWalker) classify(e ast.Expr, f *poolFrame) poolVal {
	return w.classifyDepth(e, f, 0)
}

func (w *poolWalker) classifyDepth(e ast.Expr, f *poolFrame, depth int) poolVal {
	if depth > 8 {
		return poolVal{kind: 'u'}
	}
	info := f.sc.pkg.Info
	e = ast.Unparen(e)
	if tv, ok := info.Types[e]; ok && tv.IsNil() {
		return poolVal{kind: 'n'}
	}
	if call, ok := e.(*ast.CallExpr); ok {
		fn := staticCallee(info, call)
		if fn != nil && fn.Type().(*types.Signature).Recv() == nil && strings.HasPrefix(fn.Name(), "New") {
			return poolVal{kind: 'n'} // freshly constructed pool
		}
		return poolVal{kind: 'u'}
	}
	root, path, ok := rootPath(info, e)
	if !ok || root == nil {
		return poolVal{kind: 'u'}
	}
	// The held pool itself, or a container on the way to it.
	if root == w.heldRoot {
		if path == w.heldPath {
			return poolVal{kind: 'h'}
		}
		if rest, isPrefix := strings.CutPrefix(w.heldPath, path); isPrefix && (path == "" || strings.HasPrefix(rest, ".")) {
			return poolVal{kind: 'h', path: rest}
		}
		return poolVal{kind: 'n'}
	}
	if b, ok := f.bind[root]; ok {
		switch b.kind {
		case 'h':
			if path == b.path {
				return poolVal{kind: 'h'}
			}
			if rest, isPrefix := strings.CutPrefix(b.path, path); isPrefix && (path == "" || strings.HasPrefix(rest, ".")) {
				return poolVal{kind: 'h', path: rest}
			}
			return poolVal{kind: 'n'}
		default:
			return poolVal{kind: b.kind}
		}
	}
	// Distinct package-level variable: a different object than the held
	// root, so a different pool.
	if v, isVar := root.(*types.Var); isVar && localVar(root) == nil && !v.IsField() {
		return poolVal{kind: 'n'}
	}
	// Local variable (or free variable of an enclosing scope): trace its
	// definitions.
	if id := baseIdent(e); id != nil {
		defs := f.sc.defsOf(id)
		if len(defs) == 0 {
			return poolVal{kind: 'u'}
		}
		out := poolVal{kind: 'n'}
		for _, d := range defs {
			var v poolVal
			switch {
			case d.isParam:
				v = poolVal{kind: 'u'} // unbound parameter: cannot prove distinct
			case d.rhs == nil:
				v = poolVal{kind: 'u'}
			default:
				v = w.classifyDepth(d.rhs, f, depth+1)
			}
			if v.kind == 'h' {
				return poolVal{kind: 'h', path: v.path + path}
			}
			if v.kind == 'u' {
				out = v
			}
		}
		return out
	}
	return poolVal{kind: 'u'}
}

func (w *poolWalker) report(inner *ast.CallExpr, f *poolFrame, proven bool) {
	key := w.p.Pkg.Fset.Position(w.outer.Pos()).String() + "|" + f.sc.pkg.Fset.Position(inner.Pos()).String()
	if w.reported[key] {
		return
	}
	w.reported[key] = true
	where := "this job"
	if len(f.chain) > 0 {
		where = strings.Join(f.chain, " → ")
	}
	at := w.p.suite.relPath(f.sc.pkg.Fset.Position(inner.Pos()).String())
	if proven {
		w.p.Reportf(w.outer.Pos(), "pool",
			"job passed to this %s call re-acquires the pool whose slot it holds (%s at %s): nested acquisition deadlocks once the pool saturates — run the inner stage inline on a nil pool or give it a distinct pool",
			w.method, where, at)
		return
	}
	w.p.Reportf(w.outer.Pos(), "pool",
		"job passed to this %s call acquires a pool of unprovable origin (%s at %s) while holding a slot: if it is the same pool, a saturated run deadlocks — pass nil/a fresh pool explicitly, or annotate //lint:pool <why> after auditing",
		w.method, where, at)
}

// declParamObjs returns the declared parameter objects of a function in
// positional order.
func declParamObjs(src *funcSrc) []types.Object {
	var out []types.Object
	if src.decl.Type.Params == nil {
		return out
	}
	for _, field := range src.decl.Type.Params.List {
		if len(field.Names) == 0 {
			out = append(out, nil) // unnamed: position consumed, unbindable
			continue
		}
		for _, name := range field.Names {
			out = append(out, src.pkg.Info.Defs[name])
		}
	}
	return out
}

func bindFingerprint(bind map[types.Object]poolVal) string {
	parts := make([]string, 0, len(bind))
	for obj, v := range bind {
		if obj == nil {
			continue
		}
		parts = append(parts, obj.Name()+"="+string(v.kind)+v.path)
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

func qualFnName(fn *types.Func) string {
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}

// baseIdent returns the root identifier of a selector/star/paren chain.
func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		default:
			return nil
		}
	}
}
