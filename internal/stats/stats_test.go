package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestMean(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{}, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3, 4}, 2.5},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.in); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Mean(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEqual(got, 4, 1e-12) {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); !almostEqual(got, 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if got := Variance(nil); got != 0 {
		t.Errorf("Variance(nil) = %v, want 0", got)
	}
	if got := Variance([]float64{3}); got != 0 {
		t.Errorf("Variance singleton = %v, want 0", got)
	}
}

func TestMinMaxSum(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	if got := Min(xs); got != -1 {
		t.Errorf("Min = %v, want -1", got)
	}
	if got := Max(xs); got != 7 {
		t.Errorf("Max = %v, want 7", got)
	}
	if got := Sum(xs); got != 9 {
		t.Errorf("Sum = %v, want 9", got)
	}
}

func TestMinPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Min(empty) did not panic")
		}
	}()
	Min(nil)
}

func TestMaxPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Max(empty) did not panic")
		}
	}()
	Max(nil)
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		q    float64
		want float64
	}{
		{0, 1},
		{0.25, 2},
		{0.5, 3},
		{0.75, 4},
		{1, 5},
		{0.1, 1.4},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if got := Quantile([]float64{42}, 0.7); got != 42 {
		t.Errorf("Quantile singleton = %v, want 42", got)
	}
}

func TestQuantileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("Quantile mutated input: %v", xs)
	}
}

func TestQuantileRejectsBadQ(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Quantile(q=2) did not panic")
		}
	}()
	Quantile([]float64{1, 2}, 2)
}

func TestQuartileMeans(t *testing.T) {
	xs := []float64{8, 1, 5, 4, 7, 2, 6, 3} // sorted: 1..8
	got := QuartileMeans(xs, 4)
	want := []float64{1.5, 3.5, 5.5, 7.5}
	for i := range want {
		if !almostEqual(got[i], want[i], 1e-12) {
			t.Errorf("QuartileMeans[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestQuartileMeansSingleGroup(t *testing.T) {
	xs := []float64{2, 4, 6}
	got := QuartileMeans(xs, 1)
	if len(got) != 1 || !almostEqual(got[0], 4, 1e-12) {
		t.Errorf("QuartileMeans m=1 = %v, want [4]", got)
	}
}

func TestQuartileMeansPanicsOnIndivisible(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("QuartileMeans(5 values, 4 groups) did not panic")
		}
	}()
	QuartileMeans([]float64{1, 2, 3, 4, 5}, 4)
}

func TestNormalizeMax(t *testing.T) {
	got := NormalizeMax([]float64{2, 4, 8})
	want := []float64{0.25, 0.5, 1}
	for i := range want {
		if !almostEqual(got[i], want[i], 1e-12) {
			t.Errorf("NormalizeMax[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestNormalizeMaxZeroVector(t *testing.T) {
	got := NormalizeMax([]float64{0, 0})
	if got[0] != 0 || got[1] != 0 {
		t.Errorf("NormalizeMax zero vector = %v", got)
	}
}

func TestNormalizeMatrixMax(t *testing.T) {
	in := [][]float64{{1, 2}, {4, 0}}
	got := NormalizeMatrixMax(in)
	want := [][]float64{{0.25, 0.5}, {1, 0}}
	for i := range want {
		for j := range want[i] {
			if !almostEqual(got[i][j], want[i][j], 1e-12) {
				t.Errorf("NormalizeMatrixMax[%d][%d] = %v, want %v", i, j, got[i][j], want[i][j])
			}
		}
	}
	if in[1][0] != 4 {
		t.Error("NormalizeMatrixMax mutated its input")
	}
}

func TestArgSortDescending(t *testing.T) {
	xs := []float64{0.2, 0.9, 0.9, 0.1}
	got := ArgSortDescending(xs)
	want := []int{1, 2, 0, 3} // stable: index 1 before 2 on tie
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("ArgSortDescending = %v, want %v", got, want)
			break
		}
	}
}

func TestGeometricMean(t *testing.T) {
	if got := GeometricMean([]float64{1, 4}); !almostEqual(got, 2, 1e-12) {
		t.Errorf("GeometricMean = %v, want 2", got)
	}
	if got := GeometricMean(nil); got != 0 {
		t.Errorf("GeometricMean(nil) = %v, want 0", got)
	}
}

func TestGeometricMeanRejectsNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("GeometricMean with zero did not panic")
		}
	}()
	GeometricMean([]float64{1, 0})
}

// Property: the mean always lies between min and max.
func TestMeanBoundedProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e9 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		m := Mean(xs)
		return m >= Min(xs)-1e-6 && m <= Max(xs)+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: NormalizeMax output is within [0,1] for non-negative input and
// the maximum element maps to exactly 1 (unless all-zero).
func TestNormalizeMaxRangeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64() * 100
		}
		out := NormalizeMax(xs)
		sawOne := false
		for _, v := range out {
			if v < 0 || v > 1+1e-12 {
				t.Fatalf("normalized value %v out of range", v)
			}
			if almostEqual(v, 1, 1e-12) {
				sawOne = true
			}
		}
		if !sawOne {
			t.Fatalf("no element normalized to 1 in %v", out)
		}
	}
}

// Property: QuartileMeans are monotonically non-decreasing.
func TestQuartileMeansMonotoneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		m := 1 + rng.Intn(8)
		n := m * (1 + rng.Intn(10))
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64()
		}
		means := QuartileMeans(xs, m)
		for j := 1; j < len(means); j++ {
			if means[j] < means[j-1]-1e-12 {
				t.Fatalf("QuartileMeans not monotone: %v", means)
			}
		}
	}
}

// Property: quantile is monotone in q.
func TestQuantileMonotoneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(30)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64() * 10
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := Quantile(xs, q)
			if v < prev-1e-9 {
				t.Fatalf("quantile decreased at q=%v: %v < %v", q, v, prev)
			}
			prev = v
		}
	}
}
