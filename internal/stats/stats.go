// Package stats provides the small set of descriptive statistics used by the
// VFI clustering flow and the experiment reporting: means, variances,
// quantiles over sorted copies, and max-normalization of vectors and
// matrices. All functions are deterministic and allocate at most one copy of
// their input.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs. It returns 0 for an empty slice so
// that utilization accounting over empty core sets is well defined.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs (dividing by n, not n-1).
// The clustering objective in Eq. 1 of the paper sums squared deviations from
// a fixed target mean, which corresponds to population semantics.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var sum float64
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Min returns the smallest element of xs. It panics on an empty slice: every
// caller in this repository operates on fixed, non-empty core sets, so an
// empty input is a programming error rather than a data condition.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Min of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs. Like Min it panics on empty input.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics, matching the common "type 7"
// definition. It copies and sorts the input.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty slice")
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %v out of [0,1]", q))
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// QuartileMeans partitions xs (after sorting ascending) into m equally sized
// contiguous groups and returns the mean of each group, lowest group first.
// This implements the ū_j targets of Eq. 1: "the mean in each m-quartile of
// the utilization values". len(xs) must be divisible by m.
func QuartileMeans(xs []float64, m int) []float64 {
	if m <= 0 {
		panic("stats: QuartileMeans needs m > 0")
	}
	if len(xs)%m != 0 {
		panic(fmt.Sprintf("stats: %d values not divisible into %d groups", len(xs), m))
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	size := len(s) / m
	means := make([]float64, m)
	for j := 0; j < m; j++ {
		means[j] = Mean(s[j*size : (j+1)*size])
	}
	return means
}

// GroupMeansBySizes generalizes QuartileMeans to unequal groups: xs is
// sorted ascending and dealt into consecutive runs of the given sizes;
// the mean of each run is returned, lowest group first. The sizes must be
// positive and sum to len(xs).
func GroupMeansBySizes(xs []float64, sizes []int) []float64 {
	total := 0
	for _, s := range sizes {
		if s <= 0 {
			panic(fmt.Sprintf("stats: non-positive group size %d", s))
		}
		total += s
	}
	if total != len(xs) {
		panic(fmt.Sprintf("stats: group sizes sum to %d for %d values", total, len(xs)))
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	means := make([]float64, len(sizes))
	at := 0
	for j, sz := range sizes {
		means[j] = Mean(s[at : at+sz])
		at += sz
	}
	return means
}

// NormalizeMax divides every element of xs by the maximum element and
// returns the result as a new slice. If the maximum is zero the input is
// returned copied unchanged (an all-zero vector stays all-zero). The paper
// normalizes both the utilization vector u and the traffic matrix f by their
// maxima before forming the clustering objective.
func NormalizeMax(xs []float64) []float64 {
	out := append([]float64(nil), xs...)
	if len(out) == 0 {
		return out
	}
	m := Max(out)
	if m == 0 {
		return out
	}
	for i := range out {
		out[i] /= m
	}
	return out
}

// NormalizeMatrixMax divides every element of the matrix by the global
// maximum element, returning a newly allocated matrix. A zero matrix is
// returned copied unchanged.
func NormalizeMatrixMax(m [][]float64) [][]float64 {
	out := make([][]float64, len(m))
	var max float64
	for i, row := range m {
		out[i] = append([]float64(nil), row...)
		for _, v := range row {
			if v > max {
				max = v
			}
		}
	}
	if max == 0 {
		return out
	}
	for i := range out {
		for j := range out[i] {
			out[i][j] /= max
		}
	}
	return out
}

// ArgSortDescending returns the indices of xs ordered by descending value.
// Ties are broken by ascending index so the order is deterministic.
func ArgSortDescending(xs []float64) []int {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		if xs[idx[a]] != xs[idx[b]] {
			return xs[idx[a]] > xs[idx[b]]
		}
		return idx[a] < idx[b]
	})
	return idx
}

// GeometricMean returns the geometric mean of xs. All elements must be
// positive; the experiment summaries use it to average normalized EDP ratios.
func GeometricMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var logSum float64
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("stats: GeometricMean needs positive values, got %v", x))
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}
