// Package vfi implements the paper's VFI design flow (Fig. 3):
//
//  1. profile the application on the non-VFI baseline to obtain per-core
//     utilization u and the inter-core traffic matrix f (done upstream, the
//     profile arrives as a platform.Profile);
//  2. cluster the cores into m equal Voltage/Frequency Islands by solving
//     the 0-1 quadratic program of Eq. 1-2 (internal/qp);
//  3. pick one V/F operating point per island from the discrete DVFS table
//     ("VFI 1" in the paper);
//  4. detect bottleneck cores (master cores during library initialization,
//     surviving threads during Merge) and, for applications whose
//     utilization pattern is otherwise nearly homogeneous, raise the V/F of
//     the islands hosting them ("VFI 2").
//
// The per-island V/F selection rule is not spelled out in the paper ("the
// V/F design parameters are computed using a non-VFI system"); this package
// reconstructs it as
//
//	f_island = QuantizeUp(f_max · min(1, ū_island + margin))
//
// i.e. give every island enough frequency headroom above its mean
// utilization, then round up to the DVFS ladder. With the default margin of
// 0.35 this reproduces every row of the paper's Table 2 from the calibrated
// application profiles (see internal/apps and the Table 2 test).
package vfi

import (
	"fmt"
	"sort"

	"wivfi/internal/platform"
	"wivfi/internal/qp"
	"wivfi/internal/stats"
)

// Options configures the design flow.
type Options struct {
	// NumIslands is m, the number of equal-size VFIs (paper: 4).
	NumIslands int
	// IslandSizes optionally prescribes unequal island sizes: island j gets
	// exactly IslandSizes[j] cores (islands ordered by ascending target
	// utilization). When set it must have NumIslands entries summing to the
	// core count; nil (the default and the paper's setting) keeps the equal
	// n/m split. The json tag keeps the zero value out of config hashes so
	// existing design-cache keys are unchanged.
	IslandSizes []int `json:",omitempty"`
	// Table is the DVFS ladder to quantize onto.
	Table []platform.OperatingPoint
	// FreqMargin is the utilization headroom added before quantizing the
	// island frequency.
	FreqMargin float64
	// Wc, Wu are the clustering objective weights ω_c and ω_u (paper: 1, 1).
	Wc, Wu float64
	// BottleneckRatio flags core i as a bottleneck when
	// u_i >= BottleneckRatio · mean(u).
	BottleneckRatio float64
	// HomogeneityCV is the coefficient-of-variation threshold below which a
	// utilization pattern counts as "nearly homogeneous", enabling the
	// VFI 2 re-assignment. Heterogeneous apps (Kmeans, Word Count) place
	// their bottleneck cores in high-V/F islands on their own.
	HomogeneityCV float64
	// MaxBottleneckFrac bounds how many cores may be flagged before the
	// situation stops being a "few bottleneck cores" (Section 4.2) and
	// re-assignment is skipped: if more than this fraction of the chip is
	// hot, the utilization pattern is simply heterogeneous.
	MaxBottleneckFrac float64
	// Anneal configures the heuristic QP solver used for n > 14.
	Anneal qp.AnnealOptions
}

// DefaultOptions returns the paper's configuration: four islands, the
// five-point DVFS ladder, ω_c = ω_u = 1, and the calibrated margin and
// bottleneck thresholds.
func DefaultOptions() Options {
	return Options{
		NumIslands:        4,
		Table:             platform.DefaultDVFSTable(),
		FreqMargin:        0.35,
		Wc:                1,
		Wu:                1,
		BottleneckRatio:   1.25,
		HomogeneityCV:     0.25,
		MaxBottleneckFrac: 0.1,
		Anneal:            qp.DefaultAnnealOptions(),
	}
}

// Plan is the outcome of the full design flow for one application profile.
type Plan struct {
	// VFI1 is the initial system: clustering plus first V/F assignment.
	VFI1 platform.VFIConfig
	// VFI2 is the final system after bottleneck-driven V/F re-assignment.
	// When no re-assignment is needed VFI2 equals VFI1.
	VFI2 platform.VFIConfig
	// Bottlenecks lists the detected bottleneck core ids (may be empty).
	Bottlenecks []int
	// RaisedIslands lists islands whose operating point was raised in VFI2.
	RaisedIslands []int
	// ClusterCost is the Eq. 1 objective value of the chosen clustering.
	ClusterCost float64
	// HomogeneousPattern reports whether the utilization pattern qualified
	// as nearly homogeneous (precondition for re-assignment).
	HomogeneousPattern bool
}

// BuildProblem translates a profile into the Eq. 1 instance: inputs are
// max-normalized and the target means ū_j are the m-quantile means of the
// normalized utilizations, exactly as Section 4.1 prescribes.
func BuildProblem(p platform.Profile, opts Options) (*qp.Problem, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := p.NumCores()
	if opts.NumIslands <= 0 {
		return nil, fmt.Errorf("vfi: need a positive island count, got %d", opts.NumIslands)
	}
	normU := stats.NormalizeMax(p.Util)
	prob := &qp.Problem{
		N:    n,
		M:    opts.NumIslands,
		Comm: stats.NormalizeMatrixMax(p.Traffic),
		Util: normU,
		Wc:   opts.Wc,
		Wu:   opts.Wu,
	}
	if len(opts.IslandSizes) > 0 {
		if len(opts.IslandSizes) != opts.NumIslands {
			return nil, fmt.Errorf("vfi: %d island sizes for %d islands", len(opts.IslandSizes), opts.NumIslands)
		}
		total := 0
		for j, s := range opts.IslandSizes {
			if s <= 0 {
				return nil, fmt.Errorf("vfi: island %d has non-positive size %d", j, s)
			}
			total += s
		}
		if total != n {
			return nil, fmt.Errorf("vfi: island sizes sum to %d for %d cores", total, n)
		}
		prob.Sizes = append([]int(nil), opts.IslandSizes...)
		prob.TargetMeans = stats.GroupMeansBySizes(normU, opts.IslandSizes)
	} else {
		if n%opts.NumIslands != 0 {
			return nil, fmt.Errorf("vfi: %d cores not divisible into %d equal islands (set IslandSizes for an unequal split)", n, opts.NumIslands)
		}
		prob.TargetMeans = stats.QuartileMeans(normU, opts.NumIslands)
	}
	return prob, nil
}

// Cluster solves the clustering program and returns the core→island
// assignment and its objective value.
func Cluster(p platform.Profile, opts Options) ([]int, float64, error) {
	prob, err := BuildProblem(p, opts)
	if err != nil {
		return nil, 0, err
	}
	sol, err := qp.Solve(prob, opts.Anneal)
	if err != nil {
		return nil, 0, err
	}
	return canonicalize(sol.Assign, p.Util, opts.NumIslands), sol.Cost, nil
}

// canonicalize relabels islands by ascending mean utilization so that
// downstream reporting (Table 2 rows) is deterministic: island 0 is always
// the least-utilized island.
func canonicalize(assign []int, util []float64, m int) []int {
	sums := make([]float64, m)
	counts := make([]int, m)
	for core, isl := range assign {
		sums[isl] += util[core]
		counts[isl]++
	}
	order := make([]int, m)
	for j := range order {
		order[j] = j
	}
	sort.SliceStable(order, func(a, b int) bool {
		ma := sums[order[a]] / float64(counts[order[a]])
		mb := sums[order[b]] / float64(counts[order[b]])
		return ma < mb
	})
	relabel := make([]int, m)
	for newLabel, old := range order {
		relabel[old] = newLabel
	}
	out := make([]int, len(assign))
	for core, isl := range assign {
		out[core] = relabel[isl]
	}
	return out
}

// AssignVF applies the reconstructed selection rule to each island: quantize
// f_max·min(1, ū+margin) up onto the DVFS ladder and take that point's
// voltage with it.
func AssignVF(p platform.Profile, assign []int, opts Options) []platform.OperatingPoint {
	m := opts.NumIslands
	fmax := platform.MaxPoint(opts.Table).FreqGHz
	sums := make([]float64, m)
	counts := make([]int, m)
	for core, isl := range assign {
		sums[isl] += p.Util[core]
		counts[isl]++
	}
	points := make([]platform.OperatingPoint, m)
	for j := 0; j < m; j++ {
		mean := sums[j] / float64(counts[j])
		target := mean + opts.FreqMargin
		if target > 1 {
			target = 1
		}
		points[j] = platform.QuantizeUp(opts.Table, fmax*target)
	}
	return points
}

// DetectBottlenecks returns the ids of cores whose utilization is at least
// ratio times the chip-wide mean, sorted ascending. These are the master
// cores active through library initialization and the surviving threads of
// the Merge sub-stages (Section 4.2).
func DetectBottlenecks(util []float64, ratio float64) []int {
	mean := stats.Mean(util)
	var out []int
	for i, u := range util {
		if u >= ratio*mean {
			out = append(out, i)
		}
	}
	return out
}

// IsHomogeneous reports whether the utilization pattern counts as nearly
// homogeneous once the bottleneck cores themselves are excluded: the paper's
// PCA/HIST/MM have flat utilization apart from a handful of hot masters.
func IsHomogeneous(util []float64, bottlenecks []int, cvThreshold float64) bool {
	isB := make(map[int]bool, len(bottlenecks))
	for _, b := range bottlenecks {
		isB[b] = true
	}
	rest := make([]float64, 0, len(util))
	for i, u := range util {
		if !isB[i] {
			rest = append(rest, u)
		}
	}
	if len(rest) == 0 {
		return false
	}
	mean := stats.Mean(rest)
	if mean == 0 {
		return false
	}
	return stats.StdDev(rest)/mean <= cvThreshold
}

// Reassign produces the VFI 2 configuration: when the application pattern is
// nearly homogeneous and bottleneck cores sit in islands below the table
// maximum, those islands are raised to the maximum point (the paper raises
// 0.9 V/2.25 GHz clusters to 1.0 V/2.5 GHz). Core↔island placement is never
// changed, preserving the traffic patterns (Section 4.2).
func Reassign(cfg platform.VFIConfig, p platform.Profile, opts Options) (platform.VFIConfig, []int, []int, bool) {
	bottlenecks := DetectBottlenecks(p.Util, opts.BottleneckRatio)
	homog := IsHomogeneous(p.Util, bottlenecks, opts.HomogeneityCV)
	out := cfg.Clone()
	var raised []int
	maxB := int(opts.MaxBottleneckFrac * float64(p.NumCores()))
	if maxB < 1 {
		maxB = 1 // even the smallest chip can have one hot master
	}
	if len(bottlenecks) == 0 || len(bottlenecks) > maxB || !homog {
		return out, bottlenecks, raised, homog
	}
	maxPt := platform.MaxPoint(opts.Table)
	seen := make(map[int]bool)
	for _, b := range bottlenecks {
		isl := cfg.Assign[b]
		if seen[isl] {
			continue
		}
		seen[isl] = true
		if cfg.Points[isl].FreqGHz < maxPt.FreqGHz {
			out.Points[isl] = maxPt
			raised = append(raised, isl)
		}
	}
	sort.Ints(raised)
	return out, bottlenecks, raised, homog
}

// Design runs the complete Fig. 3 flow on one profile.
func Design(p platform.Profile, opts Options) (Plan, error) {
	assign, cost, err := Cluster(p, opts)
	if err != nil {
		return Plan{}, err
	}
	vfi1 := platform.VFIConfig{Assign: assign, Points: AssignVF(p, assign, opts)}
	if err := vfi1.Validate(); err != nil {
		return Plan{}, fmt.Errorf("vfi: invalid VFI1 config: %w", err)
	}
	vfi2, bottlenecks, raised, homog := Reassign(vfi1, p, opts)
	return Plan{
		VFI1:               vfi1,
		VFI2:               vfi2,
		Bottlenecks:        bottlenecks,
		RaisedIslands:      raised,
		ClusterCost:        cost,
		HomogeneousPattern: homog,
	}, nil
}
