package vfi

import (
	"math"
	"math/rand"
	"testing"

	"wivfi/internal/platform"
)

// syntheticProfile builds an n-core profile with per-core utilizations and
// a ring traffic pattern.
func syntheticProfile(util []float64) platform.Profile {
	n := len(util)
	traffic := make([][]float64, n)
	for i := range traffic {
		traffic[i] = make([]float64, n)
		traffic[i][(i+1)%n] = 1
	}
	return platform.Profile{Util: util, Traffic: traffic}
}

func TestBuildProblemNormalizes(t *testing.T) {
	p := syntheticProfile([]float64{0.2, 0.4, 0.6, 0.8})
	opts := DefaultOptions()
	opts.NumIslands = 2
	prob, err := BuildProblem(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if prob.N != 4 || prob.M != 2 {
		t.Fatalf("problem dims %dx%d", prob.N, prob.M)
	}
	// utilization normalized by max (0.8)
	if math.Abs(prob.Util[3]-1) > 1e-12 || math.Abs(prob.Util[0]-0.25) > 1e-12 {
		t.Errorf("normalized util = %v", prob.Util)
	}
	// target means: quartile means of normalized utils {0.25,0.5,0.75,1}
	if math.Abs(prob.TargetMeans[0]-0.375) > 1e-12 || math.Abs(prob.TargetMeans[1]-0.875) > 1e-12 {
		t.Errorf("target means = %v", prob.TargetMeans)
	}
	if prob.Wc != 1 || prob.Wu != 1 {
		t.Errorf("weights = %v,%v, want 1,1", prob.Wc, prob.Wu)
	}
}

func TestBuildProblemRejectsIndivisible(t *testing.T) {
	p := syntheticProfile([]float64{0.2, 0.4, 0.6})
	opts := DefaultOptions()
	opts.NumIslands = 2
	if _, err := BuildProblem(p, opts); err == nil {
		t.Error("3 cores into 2 islands accepted")
	}
}

func TestBuildProblemRejectsInvalidProfile(t *testing.T) {
	p := platform.Profile{Util: []float64{2.0}, Traffic: [][]float64{{0}}}
	if _, err := BuildProblem(p, DefaultOptions()); err == nil {
		t.Error("invalid profile accepted")
	}
}

func TestClusterCanonicalOrder(t *testing.T) {
	// 8 cores, 2 islands; utilizations split clearly into low and high.
	util := []float64{0.9, 0.85, 0.2, 0.25, 0.88, 0.15, 0.22, 0.92}
	p := syntheticProfile(util)
	opts := DefaultOptions()
	opts.NumIslands = 2
	assign, cost, err := Cluster(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if cost <= 0 {
		t.Errorf("cost = %v, want positive", cost)
	}
	// island 0 must be the low-utilization island after canonicalization
	var mean0, mean1 float64
	var n0, n1 int
	for core, isl := range assign {
		if isl == 0 {
			mean0 += util[core]
			n0++
		} else {
			mean1 += util[core]
			n1++
		}
	}
	if n0 != 4 || n1 != 4 {
		t.Fatalf("island sizes %d,%d", n0, n1)
	}
	if mean0/4 >= mean1/4 {
		t.Errorf("island 0 mean %v not below island 1 mean %v", mean0/4, mean1/4)
	}
}

func TestAssignVFQuantization(t *testing.T) {
	// Two islands with means 0.2 and 0.7; margin 0.35 gives targets 0.55
	// and 1.0 (clamped) of fmax=2.5: 1.375 -> 1.5 GHz and 2.5 GHz.
	util := []float64{0.2, 0.2, 0.7, 0.7}
	p := syntheticProfile(util)
	opts := DefaultOptions()
	opts.NumIslands = 2
	assign := []int{0, 0, 1, 1}
	points := AssignVF(p, assign, opts)
	if points[0].FreqGHz != 1.5 {
		t.Errorf("island 0 at %v GHz, want 1.5", points[0].FreqGHz)
	}
	if points[1].FreqGHz != 2.5 {
		t.Errorf("island 1 at %v GHz, want 2.5", points[1].FreqGHz)
	}
	// band checks at the margin-0.35 ladder: u=0.40 -> 1.875 -> 2.0 GHz;
	// u=0.50 -> 2.125 -> 2.25 GHz
	util2 := []float64{0.40, 0.40, 0.50, 0.50}
	p2 := syntheticProfile(util2)
	pts2 := AssignVF(p2, []int{0, 0, 1, 1}, opts)
	if pts2[0].FreqGHz != 2.0 || pts2[1].FreqGHz != 2.25 {
		t.Errorf("band quantization = %v/%v GHz, want 2.0/2.25", pts2[0].FreqGHz, pts2[1].FreqGHz)
	}
}

func TestAssignVFClampsFullyBusy(t *testing.T) {
	util := []float64{1, 1, 1, 1}
	p := syntheticProfile(util)
	opts := DefaultOptions()
	opts.NumIslands = 2
	points := AssignVF(p, []int{0, 0, 1, 1}, opts)
	for _, pt := range points {
		if pt.FreqGHz != 2.5 {
			t.Errorf("fully busy island at %v GHz, want 2.5", pt.FreqGHz)
		}
	}
}

func TestDetectBottlenecks(t *testing.T) {
	util := []float64{0.5, 0.5, 0.5, 0.95} // mean ~0.6125
	got := DetectBottlenecks(util, 1.25)
	if len(got) != 1 || got[0] != 3 {
		t.Errorf("bottlenecks = %v, want [3]", got)
	}
	if got := DetectBottlenecks([]float64{0.5, 0.5}, 1.25); len(got) != 0 {
		t.Errorf("flat profile produced bottlenecks %v", got)
	}
}

func TestIsHomogeneous(t *testing.T) {
	// flat background with one hot master: homogeneous once master removed
	util := make([]float64, 16)
	for i := range util {
		util[i] = 0.6
	}
	util[0] = 0.95
	if !IsHomogeneous(util, []int{0}, 0.30) {
		t.Error("flat-plus-master pattern should be homogeneous")
	}
	// spread pattern: heterogeneous
	rng := rand.New(rand.NewSource(1))
	for i := range util {
		util[i] = 0.1 + 0.8*rng.Float64()
	}
	if IsHomogeneous(util, nil, 0.30) {
		t.Error("wide uniform spread should be heterogeneous")
	}
	if IsHomogeneous(nil, nil, 0.30) {
		t.Error("empty profile cannot be homogeneous")
	}
	if IsHomogeneous([]float64{0, 0}, nil, 0.30) {
		t.Error("all-idle profile cannot be homogeneous")
	}
}

func TestReassignRaisesBottleneckIsland(t *testing.T) {
	// 8 cores, 2 islands. Background util 0.6, core 5 is a hot master in
	// island 0 (the slow island).
	util := []float64{0.6, 0.6, 0.6, 0.6, 0.6, 0.95, 0.6, 0.6}
	p := syntheticProfile(util)
	opts := DefaultOptions()
	opts.NumIslands = 2
	cfg := platform.VFIConfig{
		Assign: []int{0, 0, 0, 1, 1, 0, 1, 1},
		Points: []platform.OperatingPoint{{VoltageV: 0.9, FreqGHz: 2.25}, {VoltageV: 1.0, FreqGHz: 2.5}},
	}
	out, bottlenecks, raised, homog := Reassign(cfg, p, opts)
	if !homog {
		t.Fatal("pattern should be homogeneous")
	}
	if len(bottlenecks) != 1 || bottlenecks[0] != 5 {
		t.Fatalf("bottlenecks = %v", bottlenecks)
	}
	if len(raised) != 1 || raised[0] != 0 {
		t.Fatalf("raised islands = %v, want [0]", raised)
	}
	if out.Points[0].FreqGHz != 2.5 || out.Points[0].VoltageV != 1.0 {
		t.Errorf("island 0 raised to %v, want 1.0/2.5", out.Points[0])
	}
	if out.Points[1] != cfg.Points[1] {
		t.Error("island 1 should be unchanged")
	}
	// core placement untouched (traffic patterns preserved)
	for i := range cfg.Assign {
		if out.Assign[i] != cfg.Assign[i] {
			t.Fatal("Reassign moved cores between islands")
		}
	}
	// original config untouched
	if cfg.Points[0].FreqGHz != 2.25 {
		t.Error("Reassign mutated its input config")
	}
}

func TestReassignSkipsHeterogeneousPattern(t *testing.T) {
	// Kmeans-like spread: bottlenecks exist but the pattern is heterogeneous,
	// so no re-assignment happens (Section 4.2: Kmeans places its hot cores
	// in high-V/F islands by itself).
	util := []float64{0.1, 0.2, 0.3, 0.4, 0.6, 0.7, 0.8, 0.99}
	p := syntheticProfile(util)
	opts := DefaultOptions()
	opts.NumIslands = 2
	cfg := platform.VFIConfig{
		Assign: []int{0, 0, 0, 0, 1, 1, 1, 1},
		Points: []platform.OperatingPoint{{VoltageV: 0.6, FreqGHz: 1.5}, {VoltageV: 0.8, FreqGHz: 2.0}},
	}
	out, _, raised, homog := Reassign(cfg, p, opts)
	if homog {
		t.Error("spread pattern misclassified as homogeneous")
	}
	if len(raised) != 0 {
		t.Errorf("raised = %v, want none", raised)
	}
	for j := range out.Points {
		if out.Points[j] != cfg.Points[j] {
			t.Error("points changed despite heterogeneous pattern")
		}
	}
}

func TestReassignNoBottlenecks(t *testing.T) {
	// LR-like: flat utilization, no bottleneck cores at all.
	util := []float64{0.7, 0.7, 0.7, 0.7, 0.7, 0.7, 0.7, 0.7}
	p := syntheticProfile(util)
	opts := DefaultOptions()
	opts.NumIslands = 2
	cfg := platform.VFIConfig{
		Assign: []int{0, 0, 0, 0, 1, 1, 1, 1},
		Points: []platform.OperatingPoint{{VoltageV: 0.9, FreqGHz: 2.25}, {VoltageV: 0.9, FreqGHz: 2.25}},
	}
	_, bottlenecks, raised, _ := Reassign(cfg, p, opts)
	if len(bottlenecks) != 0 || len(raised) != 0 {
		t.Errorf("flat profile: bottlenecks=%v raised=%v", bottlenecks, raised)
	}
}

func TestReassignAlreadyAtMax(t *testing.T) {
	util := []float64{0.6, 0.6, 0.6, 0.95, 0.6, 0.6, 0.6, 0.6}
	p := syntheticProfile(util)
	opts := DefaultOptions()
	opts.NumIslands = 2
	cfg := platform.VFIConfig{
		Assign: []int{0, 0, 0, 1, 1, 0, 1, 1},
		Points: []platform.OperatingPoint{{VoltageV: 0.9, FreqGHz: 2.25}, {VoltageV: 1.0, FreqGHz: 2.5}},
	}
	// bottleneck core 3 already sits in the max island
	_, _, raised, _ := Reassign(cfg, p, opts)
	if len(raised) != 0 {
		t.Errorf("raised = %v, want none (bottleneck already at max)", raised)
	}
}

func TestDesignEndToEnd(t *testing.T) {
	// 16 cores, 4 islands: nearly homogeneous background 0.6 with a master
	// at 0.95 that talks heavily with the low-util group, pulling it into a
	// slow island — the exact scenario motivating VFI 2.
	n := 16
	util := make([]float64, n)
	for i := range util {
		util[i] = 0.55 + 0.01*float64(i%4)
	}
	util[0] = 0.95
	traffic := make([][]float64, n)
	for i := range traffic {
		traffic[i] = make([]float64, n)
	}
	// master talks intensely to cores 12..15 (low-ish group)
	for _, p := range []int{12, 13, 14, 15} {
		traffic[0][p] = 10
		traffic[p][0] = 10
	}
	// background neighbour traffic
	for i := 0; i < n; i++ {
		traffic[i][(i+1)%n] += 0.2
	}
	prof := platform.Profile{Util: util, Traffic: traffic}
	opts := DefaultOptions()
	plan, err := Design(prof, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.VFI1.Validate(); err != nil {
		t.Fatalf("VFI1 invalid: %v", err)
	}
	if err := plan.VFI2.Validate(); err != nil {
		t.Fatalf("VFI2 invalid: %v", err)
	}
	if len(plan.Bottlenecks) == 0 || plan.Bottlenecks[0] != 0 {
		t.Fatalf("bottlenecks = %v, want [0]", plan.Bottlenecks)
	}
	if !plan.HomogeneousPattern {
		t.Fatal("pattern should be homogeneous")
	}
	// The master must be pulled into the island of its traffic partners.
	isl := plan.VFI1.Assign[0]
	partners := 0
	for _, p := range []int{12, 13, 14, 15} {
		if plan.VFI1.Assign[p] == isl {
			partners++
		}
	}
	if partners < 3 {
		t.Errorf("master shares island with only %d of 4 traffic partners", partners)
	}
	// VFI2 must run the master's island at the table max.
	if got := plan.VFI2.Points[isl]; got.FreqGHz != 2.5 {
		t.Errorf("master island at %v GHz in VFI2, want 2.5", got.FreqGHz)
	}
	// All VFI2 islands at least as fast as VFI1.
	for j := range plan.VFI1.Points {
		if plan.VFI2.Points[j].FreqGHz < plan.VFI1.Points[j].FreqGHz {
			t.Errorf("island %d slowed down in VFI2", j)
		}
	}
}

func TestDesignDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	n := 32
	util := make([]float64, n)
	for i := range util {
		util[i] = rng.Float64()
	}
	traffic := make([][]float64, n)
	for i := range traffic {
		traffic[i] = make([]float64, n)
		for j := range traffic[i] {
			if i != j {
				traffic[i][j] = rng.Float64()
			}
		}
	}
	prof := platform.Profile{Util: util, Traffic: traffic}
	a, err := Design(prof, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Design(prof, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.VFI1.Assign {
		if a.VFI1.Assign[i] != b.VFI1.Assign[i] {
			t.Fatal("Design is not deterministic")
		}
	}
	if a.ClusterCost != b.ClusterCost {
		t.Fatal("cluster cost not deterministic")
	}
}

// Property: canonicalized islands have non-decreasing mean utilization.
func TestCanonicalizeOrderProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n, m := 16, 4
		util := make([]float64, n)
		for i := range util {
			util[i] = rng.Float64()
		}
		assign := make([]int, n)
		perm := rng.Perm(n)
		for rank, core := range perm {
			assign[core] = rank / (n / m)
		}
		canon := canonicalize(assign, util, m)
		sums := make([]float64, m)
		counts := make([]int, m)
		for core, isl := range canon {
			sums[isl] += util[core]
			counts[isl]++
		}
		prev := -1.0
		for j := 0; j < m; j++ {
			mean := sums[j] / float64(counts[j])
			if mean < prev-1e-12 {
				t.Fatalf("island means not ascending: %v at %d after %v", mean, j, prev)
			}
			prev = mean
		}
	}
}
