// Package energy implements the power and energy models used to evaluate
// the VFI-partitioned multicore platform: an analytic CMOS core model
// standing in for McPAT, and per-flit network energy constants standing in
// for the paper's synthesized-netlist (Synopsys Prime Power) and HSPICE link
// characterizations.
//
// All figures in the paper are normalized ratios (to the non-VFI mesh
// baseline, or between two placement strategies), so what matters is the
// relative scaling of the model terms:
//
//   - core dynamic power scales as C·V²·f·u (classic CMOS switching power),
//   - core leakage scales superlinearly with V and is independent of f,
//   - a wireline hop costs switch traversal plus length-dependent link
//     energy,
//   - a wireless hop costs switch traversal plus a fixed per-bit transceiver
//     energy that undercuts long multi-hop wireline paths (the premise of
//     mm-wave WiNoCs, Deb et al. 2013).
package energy

import "wivfi/internal/platform"

// CoreModel is the analytic per-core power model. The default constants are
// fit so that one core at 1.0 V / 2.5 GHz and full utilization dissipates
// ~2.4 W dynamic + ~0.6 W leakage — in line with McPAT numbers for a small
// out-of-order x86 core at 65 nm, the paper's technology node.
type CoreModel struct {
	// CeffNF is the effective switched capacitance in nanofarads; dynamic
	// power (W) = CeffNF * V^2 * fGHz * utilization.
	CeffNF float64
	// LeakW0 is the leakage power (W) at nominal voltage VNom.
	LeakW0 float64
	// VNom is the nominal (maximum) supply voltage.
	VNom float64
	// LeakExp controls how leakage scales with voltage:
	// leak(V) = LeakW0 * (V/VNom)^LeakExp. Values around 3 capture the
	// combined DIBL/gate-leakage sensitivity at 65 nm.
	LeakExp float64
	// IdleFrac is the fraction of dynamic power burned when the core is
	// clocked but idle (clock tree + minimal activity).
	IdleFrac float64
}

// DefaultCoreModel returns the calibrated 65 nm core model.
func DefaultCoreModel() CoreModel {
	return CoreModel{
		CeffNF:   0.96, // 0.96 nF -> 2.4 W at 1.0 V, 2.5 GHz, u=1
		LeakW0:   0.6,
		VNom:     1.0,
		LeakExp:  3.0,
		IdleFrac: 0.12,
	}
}

// DynamicPowerW returns the dynamic power (W) of a core at the given
// operating point and utilization.
func (m CoreModel) DynamicPowerW(op platform.OperatingPoint, util float64) float64 {
	return m.CeffNF * op.VoltageV * op.VoltageV * op.FreqGHz * util
}

// LeakagePowerW returns the voltage-dependent leakage power (W).
func (m CoreModel) LeakagePowerW(op platform.OperatingPoint) float64 {
	ratio := op.VoltageV / m.VNom
	scaled := 1.0
	for i := 0; i < int(m.LeakExp); i++ {
		scaled *= ratio
	}
	return m.LeakW0 * scaled
}

// PowerW returns total core power at operating point op: dynamic power for
// the busy fraction, idle clocking power for the rest, plus leakage.
func (m CoreModel) PowerW(op platform.OperatingPoint, util float64) float64 {
	busy := m.DynamicPowerW(op, util)
	idle := m.DynamicPowerW(op, 1) * m.IdleFrac * (1 - util)
	return busy + idle + m.LeakagePowerW(op)
}

// EnergyJ returns the energy (J) a core consumes over seconds of wall time
// with the given average utilization.
func (m CoreModel) EnergyJ(op platform.OperatingPoint, util, seconds float64) float64 {
	return m.PowerW(op, util) * seconds
}

// NetworkModel captures per-flit energies of the NoC building blocks.
// Constants follow the 65 nm, 32-bit-flit design space of the paper's
// references: Deb et al., "Design of an Energy Efficient CMOS Compatible NoC
// Architecture with Millimeter-Wave Wireless Interconnects" (IEEE TC 2013)
// and Wettin et al. (DATE 2013).
type NetworkModel struct {
	// SwitchPJPerFlitPort is the intra-switch energy per flit per traversed
	// port (buffer write/read + crossbar + arbitration), in picojoules.
	SwitchPJPerFlitPort float64
	// WirePJPerFlitMM is the wireline link energy per flit per millimetre.
	WirePJPerFlitMM float64
	// WirelessPJPerFlit is the energy for one flit over a mm-wave wireless
	// link (transceiver TX+RX), independent of physical distance.
	WirelessPJPerFlit float64
	// FlitBits is the flit width; the paper uses 32-bit flits.
	FlitBits int
}

// DefaultNetworkModel returns the calibrated 65 nm network energy model.
//
// With 32-bit flits: switch traversal ~6 pJ/flit (buffers, crossbar and
// arbitration of a synthesized 65 nm switch), wireline ~3.8 pJ/flit/mm
// (0.12 pJ/bit/mm for repeated 65 nm global wires, the figure underlying
// Deb 2013's 2.38 pJ/bit for a 20 mm span), wireless ~16 pJ/flit (0.5
// pJ/bit, within the 0.23-2.3 pJ/bit range published for OOK mm-wave
// transceivers). A one-tile (2.5 mm) wireline hop therefore costs ~15.5
// pJ/flit while a wireless hop costs ~22 pJ/flit: the crossover sits
// below 2 mesh hops, so wireless pays off in exactly the long-range-
// shortcut role it plays in the WiNoC.
func DefaultNetworkModel() NetworkModel {
	return NetworkModel{
		SwitchPJPerFlitPort: 6.0,
		WirePJPerFlitMM:     3.8,
		WirelessPJPerFlit:   16.0,
		FlitBits:            32,
	}
}

// WirelineHopPJ returns the energy (pJ) for one flit to traverse one switch
// plus a wireline link of the given length.
func (nm NetworkModel) WirelineHopPJ(linkMM float64) float64 {
	return nm.SwitchPJPerFlitPort + nm.WirePJPerFlitMM*linkMM
}

// WirelessHopPJ returns the energy (pJ) for one flit to traverse one switch
// plus a wireless link.
func (nm NetworkModel) WirelessHopPJ() float64 {
	return nm.SwitchPJPerFlitPort + nm.WirelessPJPerFlit
}

// Report aggregates energy and delay for a full-system run.
type Report struct {
	ExecSeconds  float64 // end-to-end execution time
	CoreDynamicJ float64 // total core dynamic energy
	CoreLeakageJ float64 // total core leakage energy
	NetworkJ     float64 // total NoC energy (switches + links + wireless)
}

// TotalJ returns total system energy.
func (r Report) TotalJ() float64 {
	return r.CoreDynamicJ + r.CoreLeakageJ + r.NetworkJ
}

// EDP returns the energy-delay product (J·s), the paper's headline metric.
func (r Report) EDP() float64 {
	return r.TotalJ() * r.ExecSeconds
}

// Relative returns the ratio of this report's metrics to a baseline's:
// execution time ratio, energy ratio and EDP ratio. It is how every figure
// in the paper is plotted ("normalized with respect to NVFI Mesh").
func (r Report) Relative(base Report) (execRatio, energyRatio, edpRatio float64) {
	return r.ExecSeconds / base.ExecSeconds,
		r.TotalJ() / base.TotalJ(),
		r.EDP() / base.EDP()
}
