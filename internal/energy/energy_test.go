package energy

import (
	"math"
	"testing"
	"testing/quick"

	"wivfi/internal/platform"
)

var (
	opMax = platform.OperatingPoint{VoltageV: 1.0, FreqGHz: 2.5}
	opMid = platform.OperatingPoint{VoltageV: 0.8, FreqGHz: 2.0}
	opLow = platform.OperatingPoint{VoltageV: 0.6, FreqGHz: 1.5}
)

func TestDynamicPowerCalibration(t *testing.T) {
	m := DefaultCoreModel()
	got := m.DynamicPowerW(opMax, 1)
	if math.Abs(got-2.4) > 1e-9 {
		t.Errorf("dynamic power at nominal = %v W, want 2.4", got)
	}
}

func TestDynamicPowerScalesWithV2F(t *testing.T) {
	m := DefaultCoreModel()
	p1 := m.DynamicPowerW(opMax, 1)
	p2 := m.DynamicPowerW(opMid, 1)
	wantRatio := (0.8 * 0.8 * 2.0) / (1.0 * 1.0 * 2.5)
	if got := p2 / p1; math.Abs(got-wantRatio) > 1e-12 {
		t.Errorf("V²f scaling ratio = %v, want %v", got, wantRatio)
	}
}

func TestDynamicPowerLinearInUtil(t *testing.T) {
	m := DefaultCoreModel()
	full := m.DynamicPowerW(opMax, 1)
	half := m.DynamicPowerW(opMax, 0.5)
	if math.Abs(half*2-full) > 1e-12 {
		t.Errorf("dynamic power not linear in utilization: %v vs %v", half*2, full)
	}
}

func TestLeakageScalesWithVoltage(t *testing.T) {
	m := DefaultCoreModel()
	lNom := m.LeakagePowerW(opMax)
	if math.Abs(lNom-m.LeakW0) > 1e-12 {
		t.Errorf("leakage at nominal = %v, want %v", lNom, m.LeakW0)
	}
	lLow := m.LeakagePowerW(opLow)
	want := m.LeakW0 * 0.6 * 0.6 * 0.6
	if math.Abs(lLow-want) > 1e-12 {
		t.Errorf("leakage at 0.6V = %v, want %v", lLow, want)
	}
	if lLow >= lNom {
		t.Error("leakage did not decrease with voltage")
	}
}

func TestPowerIncludesIdleClocking(t *testing.T) {
	m := DefaultCoreModel()
	idle := m.PowerW(opMax, 0)
	if idle <= m.LeakagePowerW(opMax) {
		t.Error("fully idle core should still burn clock-tree dynamic power")
	}
	busy := m.PowerW(opMax, 1)
	if busy <= idle {
		t.Error("busy power should exceed idle power")
	}
}

func TestEnergyJ(t *testing.T) {
	m := DefaultCoreModel()
	p := m.PowerW(opMid, 0.5)
	if got := m.EnergyJ(opMid, 0.5, 2); math.Abs(got-2*p) > 1e-12 {
		t.Errorf("EnergyJ = %v, want %v", got, 2*p)
	}
}

// Property: lowering V/F at fixed utilization never increases power.
func TestPowerMonotoneInOperatingPoint(t *testing.T) {
	m := DefaultCoreModel()
	table := platform.DefaultDVFSTable()
	f := func(rawU uint8) bool {
		u := float64(rawU%101) / 100
		prev := -1.0
		for _, op := range table {
			p := m.PowerW(op, u)
			if p < prev {
				return false
			}
			prev = p
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWirelineHopEnergy(t *testing.T) {
	nm := DefaultNetworkModel()
	got := nm.WirelineHopPJ(2.5)
	want := nm.SwitchPJPerFlitPort + nm.WirePJPerFlitMM*2.5
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("WirelineHopPJ = %v, want %v", got, want)
	}
}

func TestWirelessBeatsLongWirelinePaths(t *testing.T) {
	nm := DefaultNetworkModel()
	wireless := nm.WirelessHopPJ()
	// One wireless hop must be more expensive than a short wireline hop...
	if wireless <= nm.WirelineHopPJ(2.5) {
		t.Error("wireless hop should cost more than a single-tile wireline hop")
	}
	// ...but cheaper than the long multi-hop path it replaces. A corner-to-
	// corner mesh route on the 8x8 chip is 14 hops plus the destination
	// switch; compare against 14 one-tile wireline hops.
	longPath := 14 * nm.WirelineHopPJ(2.5)
	if wireless >= longPath {
		t.Errorf("wireless hop (%v pJ) should undercut a 14-hop mesh path (%v pJ)", wireless, longPath)
	}
}

func TestDefaultNetworkModelFlitWidth(t *testing.T) {
	if got := DefaultNetworkModel().FlitBits; got != 32 {
		t.Errorf("FlitBits = %d, want 32 (paper's flit width)", got)
	}
}

func TestReportTotalsAndEDP(t *testing.T) {
	r := Report{ExecSeconds: 2, CoreDynamicJ: 3, CoreLeakageJ: 1, NetworkJ: 0.5}
	if got := r.TotalJ(); math.Abs(got-4.5) > 1e-12 {
		t.Errorf("TotalJ = %v, want 4.5", got)
	}
	if got := r.EDP(); math.Abs(got-9) > 1e-12 {
		t.Errorf("EDP = %v, want 9", got)
	}
}

func TestReportRelative(t *testing.T) {
	base := Report{ExecSeconds: 1, CoreDynamicJ: 10, CoreLeakageJ: 0, NetworkJ: 0}
	r := Report{ExecSeconds: 1.1, CoreDynamicJ: 5, CoreLeakageJ: 0, NetworkJ: 0}
	execR, enR, edpR := r.Relative(base)
	if math.Abs(execR-1.1) > 1e-12 {
		t.Errorf("exec ratio = %v", execR)
	}
	if math.Abs(enR-0.5) > 1e-12 {
		t.Errorf("energy ratio = %v", enR)
	}
	if math.Abs(edpR-0.55) > 1e-12 {
		t.Errorf("EDP ratio = %v", edpR)
	}
}

// Property: EDP ratio equals energy ratio times exec ratio.
func TestRelativeConsistencyProperty(t *testing.T) {
	f := func(a, b, c, d uint16) bool {
		base := Report{ExecSeconds: 1 + float64(a%100)/10, CoreDynamicJ: 1 + float64(b%100)}
		r := Report{ExecSeconds: 1 + float64(c%100)/10, CoreDynamicJ: 1 + float64(d%100)}
		execR, enR, edpR := r.Relative(base)
		return math.Abs(edpR-execR*enR) < 1e-9*edpR
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// The core-level premise of the whole paper: running a lightly-utilized core
// at a lower V/F saves energy even though the work takes longer.
func TestDVFSSavesEnergyOnLightWork(t *testing.T) {
	m := DefaultCoreModel()
	const workCycles = 1e9 // 1 Gcycle of compute
	// At fmax the work finishes in workCycles/f seconds with utilization 1
	// for that period; model the remaining idle time as zero (task ends).
	tFast := workCycles / (opMax.FreqGHz * 1e9)
	eFast := m.EnergyJ(opMax, 1, tFast)
	tSlow := workCycles / (opLow.FreqGHz * 1e9)
	eSlow := m.EnergyJ(opLow, 1, tSlow)
	if eSlow >= eFast {
		t.Errorf("DVFS should save energy: slow %v J vs fast %v J", eSlow, eFast)
	}
	if tSlow <= tFast {
		t.Error("slower clock must stretch execution")
	}
}
