// Package sched models the Phoenix++ task scheduler on a DVFS multicore:
// each MapReduce phase splits its work into tasks, deals them to per-core
// queues, and lets idle cores steal unfinished tasks from loaded peers
// (Section 3.2 of the paper).
//
// On a VFI system the default policy backfires: a slow-island core that
// finishes its initial task early steals work that a fast core would have
// finished sooner, stretching the phase (the Word Count case study of
// Section 4.3). The paper's fix caps the number of tasks a below-maximum
// frequency core may perform at
//
//	Nf = floor(N/C * (1 - (fmax-f)/fmax)) = floor(N/C * f/fmax)   (Eq. 3)
//
// implemented here as the CapVFI policy. Following the stated intent ("to
// prevent the cores with lower V/F from performing an undesired task
// stealing") the cap gates stealing only: a slow core always drains its own
// queue (fast cores shed it by stealing), but once it has performed Nf
// tasks it may no longer steal. Capping a core's own queue as well would
// leave tasks stranded and, for small task counts (Word Count's N=100 on
// C=64), systematically overload the fast islands — a pathology the paper
// clearly does not intend.
package sched

import (
	"container/heap"
	"fmt"
	"math"
)

// Task is one unit of phase work. Cycles is the task's compute demand in
// core clock cycles; FixedSec is its frequency-independent time (memory and
// network stalls — the caller derives it from the interconnect model, which
// is how a faster NoC shortens tasks). Runtime on a core clocked at f GHz
// is Cycles/(f*1e9) + FixedSec.
//
// The paper's own Word Count numbers decompose this way: the average map
// task takes 0.270 s at 2.5 GHz and 0.320 s at 2.0 GHz (Section 4.3), which
// solves to 0.5 Gcycles of compute plus 0.07 s of frequency-independent
// stall per task.
type Task struct {
	ID       int
	Cycles   float64
	FixedSec float64
}

// Policy selects the stealing behaviour.
type Policy int

const (
	// NoStealing executes each core's initial queue only.
	NoStealing Policy = iota
	// DefaultStealing is the stock Phoenix policy: any idle core steals
	// from the core with the most remaining tasks.
	DefaultStealing
	// CapVFI is DefaultStealing plus the Eq. 3 per-core task cap for cores
	// running below the maximum frequency.
	CapVFI
	// ChunkedStealing steals half of the victim's remaining queue at once,
	// the way Phoenix actually amortizes steal overhead. It amplifies the
	// Section 4.3 pathology: a slow thief hoards several tasks, not one.
	ChunkedStealing
	// CapVFIChunked combines the chunk steal with the Eq. 3 gate: slow
	// cores may not steal beyond Nf tasks (and never take a chunk larger
	// than their remaining allowance).
	CapVFIChunked
)

func (p Policy) String() string {
	switch p {
	case NoStealing:
		return "none"
	case DefaultStealing:
		return "default"
	case CapVFI:
		return "vfi-cap"
	case ChunkedStealing:
		return "chunked"
	case CapVFIChunked:
		return "vfi-cap-chunked"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// usesCap reports whether the policy applies the Eq. 3 stealing gate.
func (p Policy) usesCap() bool { return p == CapVFI || p == CapVFIChunked }

// chunked reports whether steals take half the victim's queue.
func (p Policy) chunked() bool { return p == ChunkedStealing || p == CapVFIChunked }

// Result reports one phase execution.
type Result struct {
	// MakespanSec is the phase length: the time the last task finishes.
	MakespanSec float64
	// BusySec[c] is core c's total *compute* time (cycles/f). Memory and
	// network stall time (Task.FixedSec) extends the makespan but does not
	// count as busy: utilization in the paper is committed-IPC based, and
	// a stalled core commits nothing.
	BusySec []float64
	// TasksRun[c] is the number of tasks core c executed.
	TasksRun []int
	// Steals counts tasks executed by a core other than the one they were
	// initially dealt to.
	Steals int
}

// Caps returns the Eq. 3 task caps for each core: -1 means uncapped (core
// at fmax). numTasks is N, and freqs supplies f and (by its maximum) fmax.
func Caps(numTasks int, freqs []float64) []int {
	fmax := 0.0
	for _, f := range freqs {
		if f > fmax {
			fmax = f
		}
	}
	caps := make([]int, len(freqs))
	for c, f := range freqs {
		if f >= fmax {
			caps[c] = -1
			continue
		}
		caps[c] = int(math.Floor(float64(numTasks) / float64(len(freqs)) * (f / fmax)))
	}
	return caps
}

// DealRoundRobin deals tasks to cores the way the Phoenix scheduler does at
// phase start: task i goes to core i mod C.
func DealRoundRobin(numTasks, numCores int) []int {
	assign := make([]int, numTasks)
	for i := range assign {
		assign[i] = i % numCores
	}
	return assign
}

// coreEvent orders cores by their next-free time for the virtual clock.
type coreEvent struct {
	core int
	free float64
}

type eventHeap []coreEvent

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].free != h[j].free {
		return h[i].free < h[j].free
	}
	return h[i].core < h[j].core
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(coreEvent)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// RunPhase simulates one phase in virtual time. tasks[i] is dealt to core
// assign[i]; freqs[c] is core c's clock in GHz; overheadSec is a fixed
// per-task scheduling overhead added to every execution.
func RunPhase(tasks []Task, assign []int, freqs []float64, policy Policy, overheadSec float64) (Result, error) {
	numCores := len(freqs)
	if numCores == 0 {
		return Result{}, fmt.Errorf("sched: no cores")
	}
	if len(assign) != len(tasks) {
		return Result{}, fmt.Errorf("sched: %d assignments for %d tasks", len(assign), len(tasks))
	}
	for c, f := range freqs {
		if f <= 0 {
			return Result{}, fmt.Errorf("sched: core %d frequency %v", c, f)
		}
	}
	queues := make([][]int, numCores) // task indices per core, FIFO
	for i, c := range assign {
		if c < 0 || c >= numCores {
			return Result{}, fmt.Errorf("sched: task %d dealt to bad core %d", i, c)
		}
		queues[c] = append(queues[c], i)
	}
	remaining := make([]int, numCores) // un-started tasks per queue
	for c := range queues {
		remaining[c] = len(queues[c])
	}
	var caps []int
	if policy.usesCap() {
		caps = Caps(len(tasks), freqs)
	}

	res := Result{
		BusySec:  make([]float64, numCores),
		TasksRun: make([]int, numCores),
	}
	h := &eventHeap{}
	for c := 0; c < numCores; c++ {
		heap.Push(h, coreEvent{core: c, free: 0})
	}
	tasksLeft := len(tasks)
	for tasksLeft > 0 && h.Len() > 0 {
		ev := heap.Pop(h).(coreEvent)
		c := ev.core
		// pick a task: own queue first, stealing second
		taskIdx := -1
		stolen := false
		if remaining[c] > 0 {
			taskIdx = queues[c][len(queues[c])-remaining[c]]
			remaining[c]--
		} else if policy != NoStealing {
			canSteal := caps == nil || caps[c] < 0 || res.TasksRun[c] < caps[c]
			if canSteal {
				// steal from the core with the most remaining tasks
				victim, most := -1, 0
				for v := 0; v < numCores; v++ {
					if remaining[v] > most {
						victim, most = v, remaining[v]
					}
				}
				if victim >= 0 {
					taskIdx = queues[victim][len(queues[victim])-remaining[victim]]
					remaining[victim]--
					stolen = true
					if policy.chunked() && remaining[victim] > 0 {
						// take half of what remains (rounded down, beyond
						// the task just taken) into this core's own queue,
						// bounded by the thief's remaining cap allowance
						chunk := remaining[victim] / 2
						if caps != nil && caps[c] >= 0 {
							allow := caps[c] - res.TasksRun[c] - 1
							if chunk > allow {
								chunk = allow
							}
						}
						for k := 0; k < chunk; k++ {
							moved := queues[victim][len(queues[victim])-remaining[victim]]
							remaining[victim]--
							queues[c] = append(queues[c], moved)
							remaining[c]++
							res.Steals++
						}
					}
				}
			}
		}
		if taskIdx < 0 {
			// Own queue empty and stealing unavailable (disabled, capped,
			// or nothing left to steal): the core retires. Tasks never
			// reappear, so retiring is safe — remaining queued tasks
			// belong to still-active cores.
			continue
		}
		compute := tasks[taskIdx].Cycles / (freqs[c] * 1e9)
		dur := compute + tasks[taskIdx].FixedSec + overheadSec
		res.BusySec[c] += compute
		res.TasksRun[c]++
		if stolen {
			res.Steals++
		}
		finish := ev.free + dur
		if finish > res.MakespanSec {
			res.MakespanSec = finish
		}
		tasksLeft--
		heap.Push(h, coreEvent{core: c, free: finish})
	}
	if tasksLeft > 0 {
		// Unreachable: every task sits in some core's own queue and own
		// queues are always served. Guard anyway.
		return Result{}, fmt.Errorf("sched: %d tasks stranded", tasksLeft)
	}
	return res, nil
}

// UniformTasks builds n tasks whose cycle counts spread deterministically
// across [base, base*(1+spread)] with every task sharing the same
// frequency-independent stall time. The pseudo-random but reproducible
// ordering models the data-dependent duration variation of real map tasks.
func UniformTasks(n int, baseCycles, spread, fixedSec float64) []Task {
	tasks := make([]Task, n)
	for i := range tasks {
		frac := 0.0
		if n > 1 {
			// deterministic low-discrepancy ordering: spread extremes
			// across the deal order rather than monotonically
			frac = float64((i*7)%n) / float64(n-1)
		}
		tasks[i] = Task{ID: i, Cycles: baseCycles * (1 + spread*frac), FixedSec: fixedSec}
	}
	return tasks
}
