package sched

import (
	"math"
	"testing"
)

// freqsHalf returns n cores, the first half at fast GHz and the rest at
// slow GHz.
func freqsHalf(n int, fast, slow float64) []float64 {
	fs := make([]float64, n)
	for i := range fs {
		if i < n/2 {
			fs[i] = fast
		} else {
			fs[i] = slow
		}
	}
	return fs
}

func TestCapsEq3(t *testing.T) {
	// Paper's Word Count scenario: N=100, C=64, f2=2.0, fmax=2.5.
	freqs := freqsHalf(64, 2.5, 2.0)
	caps := Caps(100, freqs)
	for c := 0; c < 32; c++ {
		if caps[c] != -1 {
			t.Fatalf("fast core %d capped at %d", c, caps[c])
		}
	}
	// Nf = floor(100/64 * 2.0/2.5) = floor(1.25) = 1
	for c := 32; c < 64; c++ {
		if caps[c] != 1 {
			t.Fatalf("slow core %d cap = %d, want 1", c, caps[c])
		}
	}
}

func TestCapsAllAtMax(t *testing.T) {
	freqs := []float64{2.5, 2.5, 2.5}
	for _, cp := range Caps(30, freqs) {
		if cp != -1 {
			t.Fatal("uniform-frequency system must be uncapped")
		}
	}
}

func TestDealRoundRobin(t *testing.T) {
	assign := DealRoundRobin(10, 4)
	want := []int{0, 1, 2, 3, 0, 1, 2, 3, 0, 1}
	for i := range want {
		if assign[i] != want[i] {
			t.Fatalf("assign = %v", assign)
		}
	}
}

func TestRunPhaseSingleCore(t *testing.T) {
	tasks := []Task{{ID: 0, Cycles: 2.5e9}, {ID: 1, Cycles: 2.5e9, FixedSec: 0.5}}
	res, err := RunPhase(tasks, []int{0, 0}, []float64{2.5}, NoStealing, 0)
	if err != nil {
		t.Fatal(err)
	}
	// 1 s compute each + 0.5 s fixed on the second
	if math.Abs(res.MakespanSec-2.5) > 1e-9 {
		t.Errorf("makespan = %v, want 2.5", res.MakespanSec)
	}
	if res.TasksRun[0] != 2 || res.Steals != 0 {
		t.Errorf("tasks=%v steals=%d", res.TasksRun, res.Steals)
	}
}

func TestRunPhaseFrequencyScaling(t *testing.T) {
	tasks := []Task{{ID: 0, Cycles: 5e9}}
	fast, err := RunPhase(tasks, []int{0}, []float64{2.5}, NoStealing, 0)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := RunPhase(tasks, []int{0}, []float64{1.25}, NoStealing, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(slow.MakespanSec-2*fast.MakespanSec) > 1e-9 {
		t.Errorf("halving frequency should double compute time: %v vs %v", slow.MakespanSec, fast.MakespanSec)
	}
}

func TestFixedSecIndependentOfFrequency(t *testing.T) {
	tasks := []Task{{ID: 0, Cycles: 0, FixedSec: 0.3}}
	a, _ := RunPhase(tasks, []int{0}, []float64{2.5}, NoStealing, 0)
	b, _ := RunPhase(tasks, []int{0}, []float64{1.5}, NoStealing, 0)
	if a.MakespanSec != b.MakespanSec {
		t.Error("fixed time must not scale with frequency")
	}
}

func TestStealingBalances(t *testing.T) {
	// All 8 tasks dealt to core 0; with stealing both cores share them.
	tasks := UniformTasks(8, 1e9, 0, 0)
	assign := make([]int, 8)
	noSteal, err := RunPhase(tasks, assign, []float64{2.0, 2.0}, NoStealing, 0)
	if err != nil {
		t.Fatal(err)
	}
	steal, err := RunPhase(tasks, assign, []float64{2.0, 2.0}, DefaultStealing, 0)
	if err != nil {
		t.Fatal(err)
	}
	if steal.MakespanSec >= noSteal.MakespanSec {
		t.Errorf("stealing did not help: %v vs %v", steal.MakespanSec, noSteal.MakespanSec)
	}
	if math.Abs(steal.MakespanSec-noSteal.MakespanSec/2) > 1e-9 {
		t.Errorf("two equal cores should halve the makespan: %v vs %v", steal.MakespanSec, noSteal.MakespanSec)
	}
	if steal.Steals != 4 {
		t.Errorf("steals = %d, want 4", steal.Steals)
	}
}

func TestWordCountDurationRanges(t *testing.T) {
	// Calibration check against Section 4.3: with 0.5 Gcycles +- 6% spread
	// and 0.07 s fixed stall, task durations must land in the paper's
	// measured ranges: 0.268-0.284 s at 2.5 GHz and 0.280-0.342 s at 2.0.
	tasks := UniformTasks(100, 0.495e9, 0.075, 0.072)
	for _, task := range tasks {
		fast := task.Cycles/2.5e9 + task.FixedSec
		slow := task.Cycles/2.0e9 + task.FixedSec
		if fast < 0.262 || fast > 0.290 {
			t.Fatalf("fast duration %v outside paper range 0.268-0.284", fast)
		}
		if slow < 0.272 || slow > 0.350 {
			t.Fatalf("slow duration %v outside paper range 0.280-0.342", slow)
		}
	}
}

func TestCapVFIGatesStealingOnly(t *testing.T) {
	// 4 cores: 2 fast, 2 slow. 12 tasks dealt 3 each. Nf = floor(3*0.8)=2,
	// but own-queue tasks are always allowed: slow cores run their own 3.
	freqs := []float64{2.5, 2.5, 2.0, 2.0}
	tasks := UniformTasks(12, 1e9, 0, 0)
	res, err := RunPhase(tasks, DealRoundRobin(12, 4), freqs, CapVFI, 0)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, n := range res.TasksRun {
		total += n
	}
	if total != 12 {
		t.Fatalf("only %d of 12 tasks ran", total)
	}
	// Slow cores hold 3 own tasks each; fast cores may steal some of them
	// but slow cores must never exceed own-count (no steals beyond cap).
	for c := 2; c < 4; c++ {
		if res.TasksRun[c] > 3 {
			t.Errorf("slow core %d ran %d tasks (stole beyond its cap)", c, res.TasksRun[c])
		}
	}
}

func TestCapVFIPreventsSlowSteal(t *testing.T) {
	// Section 4.3 in miniature: a slow core that finished its (single)
	// task may not steal the tail task; a fast core takes it instead and
	// finishes sooner.
	freqs := []float64{2.5, 2.5, 2.0, 2.0}
	tasks := []Task{
		{ID: 0, Cycles: 0.2e9},  // core 0 (fast): frees at 0.08
		{ID: 1, Cycles: 0.2e9},  // core 1
		{ID: 2, Cycles: 0.05e9}, // core 2 (slow): frees at 0.025
		{ID: 3, Cycles: 0.25e9}, // core 3 (slow): busy until 0.125
		{ID: 4, Cycles: 1.0e9},  // tail task, dealt to core 3's queue
	}
	assign := []int{0, 1, 2, 3, 3}
	def, err := RunPhase(tasks, assign, freqs, DefaultStealing, 0)
	if err != nil {
		t.Fatal(err)
	}
	capped, err := RunPhase(tasks, assign, freqs, CapVFI, 0)
	if err != nil {
		t.Fatal(err)
	}
	// default: slow core 2 steals task 4 at 0.025 -> 0.025+0.5 = 0.525
	if math.Abs(def.MakespanSec-0.525) > 1e-9 {
		t.Errorf("default makespan = %v, want 0.525", def.MakespanSec)
	}
	// capped (Nf = floor(5/4*0.8) = 1): core 2 has performed 1 task and is
	// denied the steal; fast core 0 takes task 4 at 0.08 -> 0.08+0.4 = 0.48
	if math.Abs(capped.MakespanSec-0.48) > 1e-9 {
		t.Errorf("capped makespan = %v, want 0.48", capped.MakespanSec)
	}
	if capped.MakespanSec >= def.MakespanSec {
		t.Error("cap should beat default stealing in the slow-tail case")
	}
	if capped.TasksRun[2] != 1 {
		t.Errorf("slow core 2 ran %d tasks, want 1", capped.TasksRun[2])
	}
}

func TestCapVFIAllTasksRunWhenEverythingSlowDealt(t *testing.T) {
	// All tasks dealt to slow cores: own-queue execution plus fast-core
	// stealing must still complete everything.
	freqs := []float64{2.5, 1.0, 1.0}
	tasks := UniformTasks(9, 1e9, 0, 0)
	assign := []int{1, 2, 1, 2, 1, 2, 1, 2, 1}
	res, err := RunPhase(tasks, assign, freqs, CapVFI, 0)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, n := range res.TasksRun {
		total += n
	}
	if total != 9 {
		t.Fatalf("ran %d of 9 tasks", total)
	}
	// the fast core must have picked up a meaningful share by stealing
	if res.TasksRun[0] == 0 {
		t.Error("fast core never stole despite slow-loaded queues")
	}
	if res.Steals == 0 {
		t.Error("no steals recorded")
	}
}

func TestCapVFIMatchesDefaultWhenCapsLoose(t *testing.T) {
	// With a balanced deal and N/C large, the cap rarely binds: both
	// policies should produce very similar makespans.
	freqs := freqsHalf(8, 2.5, 2.0)
	tasks := UniformTasks(64, 0.5e9, 0.1, 0.01)
	assign := DealRoundRobin(64, 8)
	def, err := RunPhase(tasks, assign, freqs, DefaultStealing, 0)
	if err != nil {
		t.Fatal(err)
	}
	capped, err := RunPhase(tasks, assign, freqs, CapVFI, 0)
	if err != nil {
		t.Fatal(err)
	}
	if capped.MakespanSec > def.MakespanSec*1.10 {
		t.Errorf("cap cost more than 10%%: %v vs %v", capped.MakespanSec, def.MakespanSec)
	}
}

func TestRunPhaseRejectsBadInput(t *testing.T) {
	if _, err := RunPhase([]Task{{Cycles: 1}}, []int{0}, nil, NoStealing, 0); err == nil {
		t.Error("no cores accepted")
	}
	if _, err := RunPhase([]Task{{Cycles: 1}}, []int{5}, []float64{2.5}, NoStealing, 0); err == nil {
		t.Error("bad core index accepted")
	}
	if _, err := RunPhase([]Task{{Cycles: 1}}, []int{0, 1}, []float64{2.5}, NoStealing, 0); err == nil {
		t.Error("assignment length mismatch accepted")
	}
	if _, err := RunPhase([]Task{{Cycles: 1}}, []int{0}, []float64{-1}, NoStealing, 0); err == nil {
		t.Error("negative frequency accepted")
	}
}

func TestOverheadAddsPerTask(t *testing.T) {
	tasks := UniformTasks(4, 1e9, 0, 0)
	base, _ := RunPhase(tasks, make([]int, 4), []float64{2.0}, NoStealing, 0)
	withOv, _ := RunPhase(tasks, make([]int, 4), []float64{2.0}, NoStealing, 0.01)
	if math.Abs((withOv.MakespanSec-base.MakespanSec)-0.04) > 1e-9 {
		t.Errorf("overhead delta = %v, want 0.04", withOv.MakespanSec-base.MakespanSec)
	}
}

func TestBusyTimeAccounting(t *testing.T) {
	freqs := []float64{2.5, 2.0}
	tasks := UniformTasks(6, 1e9, 0.2, 0.05)
	res, err := RunPhase(tasks, DealRoundRobin(6, 2), freqs, DefaultStealing, 0)
	if err != nil {
		t.Fatal(err)
	}
	var busy float64
	for _, b := range res.BusySec {
		busy += b
	}
	// total busy time equals the sum of individual task durations on the
	// cores that ran them; verify against makespan bounds
	if res.MakespanSec > busy || res.MakespanSec < busy/2 {
		t.Errorf("makespan %v inconsistent with total busy %v on 2 cores", res.MakespanSec, busy)
	}
	for c, b := range res.BusySec {
		if b > res.MakespanSec+1e-9 {
			t.Errorf("core %d busy %v exceeds makespan %v", c, b, res.MakespanSec)
		}
	}
}

func TestUniformTasksDeterministicAndBounded(t *testing.T) {
	a := UniformTasks(50, 1e9, 0.3, 0.01)
	b := UniformTasks(50, 1e9, 0.3, 0.01)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("UniformTasks not deterministic")
		}
		if a[i].Cycles < 1e9-1 || a[i].Cycles > 1.3e9+1 {
			t.Fatalf("task %d cycles %v outside [1e9, 1.3e9]", i, a[i].Cycles)
		}
		if a[i].FixedSec != 0.01 {
			t.Fatal("FixedSec not propagated")
		}
	}
	// spread actually exercised: min and max differ
	var lo, hi float64 = math.Inf(1), 0
	for _, task := range a {
		lo = math.Min(lo, task.Cycles)
		hi = math.Max(hi, task.Cycles)
	}
	if hi-lo < 0.25e9 {
		t.Errorf("spread too narrow: [%v, %v]", lo, hi)
	}
}

func TestPolicyString(t *testing.T) {
	if NoStealing.String() != "none" || DefaultStealing.String() != "default" || CapVFI.String() != "vfi-cap" {
		t.Error("policy labels wrong")
	}
}

func TestChunkedStealingMovesHalfQueue(t *testing.T) {
	// One loaded core, one idle. The idle core steals a task plus half the
	// remainder in one go.
	tasks := UniformTasks(9, 1e9, 0, 0)
	assign := make([]int, 9) // all dealt to core 0
	res, err := RunPhase(tasks, assign, []float64{2.0, 2.0}, ChunkedStealing, 0)
	if err != nil {
		t.Fatal(err)
	}
	// the thief takes 1 + floor(8/2) = 5 at the first steal, then work
	// proceeds roughly balanced
	if res.TasksRun[1] < 4 {
		t.Errorf("thief ran only %d tasks", res.TasksRun[1])
	}
	if res.Steals < 4 {
		t.Errorf("only %d steals recorded for a chunk", res.Steals)
	}
	total := res.TasksRun[0] + res.TasksRun[1]
	if total != 9 {
		t.Fatalf("ran %d of 9", total)
	}
}

func TestChunkedAmplifiesSlowHoarding(t *testing.T) {
	// A slow core stealing a chunk hoards work; the capped variant limits
	// the hoard to the Eq. 3 allowance.
	tasks := UniformTasks(16, 1e9, 0, 0)
	assign := make([]int, 16) // all on fast core 0
	freqs := []float64{2.5, 1.25}
	chunked, err := RunPhase(tasks, assign, freqs, ChunkedStealing, 0)
	if err != nil {
		t.Fatal(err)
	}
	capped, err := RunPhase(tasks, assign, freqs, CapVFIChunked, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Nf = floor(16/2 * 0.5) = 4: the slow core may not acquire more than
	// its allowance via stealing...
	if capped.TasksRun[1] > 4 {
		t.Errorf("capped slow core ran %d tasks, allowance is 4", capped.TasksRun[1])
	}
	// ...while the uncapped chunk lets it hoard well beyond that
	if chunked.TasksRun[1] <= 4 {
		t.Errorf("uncapped chunked slow core ran only %d tasks; hoarding not exercised", chunked.TasksRun[1])
	}
	// every task runs under both policies
	if chunked.TasksRun[0]+chunked.TasksRun[1] != 16 || capped.TasksRun[0]+capped.TasksRun[1] != 16 {
		t.Error("task conservation violated")
	}
}

func TestChunkedPolicyStrings(t *testing.T) {
	if ChunkedStealing.String() != "chunked" || CapVFIChunked.String() != "vfi-cap-chunked" {
		t.Error("chunked policy labels wrong")
	}
}
