package sweep

import (
	"fmt"
	"sort"
	"strings"
)

// AtlasSchemaVersion is the atlas document schema.
const AtlasSchemaVersion = 1

// Atlas is the aggregate view of a sweep: the EDP-vs-cores Pareto
// frontier, per-axis sensitivity tables and the analytic-fidelity outlier
// list. It is a pure function of the deterministic record fields (sorted
// by key) — never of cache outcomes or wall times — so any two journals
// covering the same scenarios produce byte-identical atlases, regardless
// of parallelism, interruption or cache state.
type Atlas struct {
	Schema    int     `json:"schema"`
	Name      string  `json:"name"`
	Tolerance float64 `json:"tolerance"`
	// Scenarios counts the aggregated records; Errors the failed subset
	// (excluded from every table below).
	Scenarios int `json:"scenarios"`
	Errors    int `json:"errors"`
	// Pareto is the frontier of scenarios unbeaten on (cores, EDP): no
	// other successful scenario has both fewer-or-equal cores and
	// lower-or-equal absolute EDP. Sorted by cores then EDP.
	Pareto []ParetoPoint `json:"pareto"`
	// Axes holds one sensitivity table per swept axis with >= 2 values.
	Axes []AxisTable `json:"axes"`
	// Outliers lists successful scenarios whose DES latency deviated from
	// the analytic model beyond Tolerance. Sorted by key.
	Outliers []Outlier `json:"outliers"`
	// FailedKeys lists errored scenario keys. Sorted.
	FailedKeys []string `json:"failed_keys,omitempty"`
}

// ParetoPoint is one frontier scenario.
type ParetoPoint struct {
	Key      string  `json:"key"`
	Label    string  `json:"label"`
	Cores    int     `json:"cores"`
	Islands  int     `json:"islands"`
	EDP      float64 `json:"edp"`
	EDPRatio float64 `json:"edp_ratio"`
}

// AxisTable is the sensitivity of EDP ratio to one sweep axis.
type AxisTable struct {
	Axis string     `json:"axis"`
	Rows []AxisStat `json:"rows"`
}

// AxisStat aggregates the scenarios sharing one axis value.
type AxisStat struct {
	Value string  `json:"value"`
	Count int     `json:"count"`
	Mean  float64 `json:"mean_edp_ratio"`
	Min   float64 `json:"min_edp_ratio"`
	Max   float64 `json:"max_edp_ratio"`
}

// Outlier is one analytic-fidelity miss.
type Outlier struct {
	Key       string  `json:"key"`
	Label     string  `json:"label"`
	Analytic  float64 `json:"analytic_latency_cycles"`
	DES       float64 `json:"des_latency_cycles"`
	Deviation float64 `json:"deviation"`
}

// recScenario reconstructs the scenario identity of a record (for labels).
func recScenario(r Record) Scenario {
	return Scenario{
		Rows: r.Rows, Cols: r.Cols, Islands: r.Islands, Sizes: r.Sizes,
		App: r.App, Margin: r.Margin, Policy: r.Policy, CapW: r.CapW, Tier: r.Tier,
	}
}

// BuildAtlas aggregates records into the atlas. Records are re-sorted by
// key internally, so caller ordering never leaks into the output.
func BuildAtlas(name string, records []Record, tolerance float64) *Atlas {
	recs := append([]Record(nil), records...)
	sort.Slice(recs, func(i, j int) bool { return recs[i].Key < recs[j].Key })
	a := &Atlas{Schema: AtlasSchemaVersion, Name: name, Tolerance: tolerance, Scenarios: len(recs)}
	var ok []Record
	for _, r := range recs {
		if r.Error != "" {
			a.Errors++
			a.FailedKeys = append(a.FailedKeys, r.Key)
			continue
		}
		ok = append(ok, r)
	}

	// Pareto frontier on (cores, absolute EDP), minimizing both.
	for _, r := range ok {
		dominated := false
		for _, q := range ok {
			if q.Key == r.Key {
				continue
			}
			qc, rc := q.Rows*q.Cols, r.Rows*r.Cols
			if qc <= rc && q.EDP <= r.EDP && (qc < rc || q.EDP < r.EDP) {
				dominated = true
				break
			}
		}
		if !dominated {
			a.Pareto = append(a.Pareto, ParetoPoint{
				Key: r.Key, Label: recScenario(r).Label(),
				Cores: r.Rows * r.Cols, Islands: r.Islands,
				EDP: r.EDP, EDPRatio: r.EDPRatio,
			})
		}
	}
	sort.Slice(a.Pareto, func(i, j int) bool {
		if a.Pareto[i].Cores != a.Pareto[j].Cores {
			return a.Pareto[i].Cores < a.Pareto[j].Cores
		}
		if a.Pareto[i].EDP != a.Pareto[j].EDP {
			return a.Pareto[i].EDP < a.Pareto[j].EDP
		}
		return a.Pareto[i].Key < a.Pareto[j].Key
	})

	// Per-axis sensitivity of the EDP ratio.
	axes := []struct {
		name  string
		value func(Record) string
	}{
		{"mesh", func(r Record) string { return fmt.Sprintf("%dx%d", r.Rows, r.Cols) }},
		{"islands", func(r Record) string {
			if len(r.Sizes) > 0 {
				parts := make([]string, len(r.Sizes))
				for i, s := range r.Sizes {
					parts[i] = fmt.Sprint(s)
				}
				return fmt.Sprintf("%d[%s]", r.Islands, strings.Join(parts, "+"))
			}
			return fmt.Sprint(r.Islands)
		}},
		{"app", func(r Record) string { return r.App }},
		{"margin", func(r Record) string { return fmt.Sprintf("%g", r.Margin) }},
		{"policy", func(r Record) string { return r.Policy }},
		{"tier", func(r Record) string { return r.Tier }},
	}
	for _, ax := range axes {
		groups := map[string][]float64{}
		for _, r := range ok {
			v := ax.value(r)
			groups[v] = append(groups[v], r.EDPRatio)
		}
		if len(groups) < 2 {
			continue // unswept axis: no sensitivity to report
		}
		values := make([]string, 0, len(groups))
		for v := range groups {
			values = append(values, v)
		}
		sort.Strings(values)
		table := AxisTable{Axis: ax.name}
		for _, v := range values {
			xs := groups[v]
			st := AxisStat{Value: v, Count: len(xs), Min: xs[0], Max: xs[0]}
			sum := 0.0
			for _, x := range xs {
				sum += x
				if x < st.Min {
					st.Min = x
				}
				if x > st.Max {
					st.Max = x
				}
			}
			st.Mean = sum / float64(len(xs))
			table.Rows = append(table.Rows, st)
		}
		a.Axes = append(a.Axes, table)
	}

	for _, r := range ok {
		if r.DESDeviation > tolerance {
			a.Outliers = append(a.Outliers, Outlier{
				Key: r.Key, Label: recScenario(r).Label(),
				Analytic: r.AnalyticLatencyCycles, DES: r.DESLatencyCycles,
				Deviation: r.DESDeviation,
			})
		}
	}
	return a
}

// Format renders the atlas as the stable human-readable report: the same
// bytes for the same records, independent of how they were gathered.
func (a *Atlas) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Sweep atlas: %s (%d scenarios, %d errors)\n", a.Name, a.Scenarios, a.Errors)
	fmt.Fprintf(&b, "  Pareto frontier (cores vs EDP, %d points):\n", len(a.Pareto))
	b.WriteString("    cores  islands  EDP J*s       vs-base  scenario\n")
	for _, p := range a.Pareto {
		fmt.Fprintf(&b, "    %5d  %7d  %11.5g  %7.3f  %s\n", p.Cores, p.Islands, p.EDP, p.EDPRatio, p.Label)
	}
	for _, ax := range a.Axes {
		fmt.Fprintf(&b, "  Sensitivity: %s (EDP ratio vs baseline)\n", ax.Axis)
		b.WriteString("    value        n     mean     min     max\n")
		for _, r := range ax.Rows {
			fmt.Fprintf(&b, "    %-10s %4d  %7.3f %7.3f %7.3f\n", r.Value, r.Count, r.Mean, r.Min, r.Max)
		}
	}
	fmt.Fprintf(&b, "  Analytic fidelity: %d outliers above %.0f%% deviation\n", len(a.Outliers), 100*a.Tolerance)
	for _, o := range a.Outliers {
		fmt.Fprintf(&b, "    %-40s analytic %.1f vs DES %.1f cycles (%.1f%%)\n", o.Label, o.Analytic, o.DES, 100*o.Deviation)
	}
	if len(a.FailedKeys) > 0 {
		fmt.Fprintf(&b, "  Failed scenarios: %d\n", len(a.FailedKeys))
	}
	return b.String()
}
