package sweep

import "wivfi/internal/obs"

// Metric names registered below. Declared constants (enforced by
// wivfi-lint countersafe) so dashboards, tests and the debug mux all share
// one authoritative spelling.
const (
	// MetricScenariosPlanned counts scenarios emitted by spec expansion
	// (after feasibility filtering and key dedup).
	MetricScenariosPlanned = "sweep.scenarios_planned"
	// MetricScenariosCompleted counts scenarios finished this process,
	// successfully or not (errors count: the journal records them too).
	MetricScenariosCompleted = "sweep.scenarios_completed"
	// MetricScenariosSkipped counts scenarios skipped because the resume
	// journal already held their record.
	MetricScenariosSkipped = "sweep.scenarios_skipped_resume"
	// MetricScenarioErrors counts scenarios that finished with an error.
	MetricScenarioErrors = "sweep.scenario_errors"
	// MetricOutliers counts completed scenarios whose DES latency deviated
	// from the analytic model beyond the spec tolerance.
	MetricOutliers = "sweep.outliers"
	// MetricInFlight gauges scenarios currently executing; its Max is the
	// realized concurrency.
	MetricInFlight = "sweep.in_flight"
)

var (
	plannedCounter   = obs.NewCounter(MetricScenariosPlanned)
	completedCounter = obs.NewCounter(MetricScenariosCompleted)
	skippedCounter   = obs.NewCounter(MetricScenariosSkipped)
	errorCounter     = obs.NewCounter(MetricScenarioErrors)
	outlierCounter   = obs.NewCounter(MetricOutliers)
	inFlightGauge    = obs.NewGauge(MetricInFlight)
)
