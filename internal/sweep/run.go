package sweep

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"time"

	"wivfi/internal/apps"
	"wivfi/internal/expt"
	"wivfi/internal/governor"
	"wivfi/internal/noc"
	"wivfi/internal/obs"
	"wivfi/internal/place"
	"wivfi/internal/sim"
)

// Options configures one Run.
type Options struct {
	// JournalPath enables the resumable NDJSON journal: existing records
	// are skipped, new records appended. "" runs journal-less.
	JournalPath string
	// Parallelism bounds concurrent scenarios (default: GOMAXPROCS).
	Parallelism int
	// CacheDir is the design cache directory ("" disables caching).
	CacheDir string
	// MaxScenarios, when positive, truncates this run to the first N
	// not-yet-journaled scenarios (in key order) — a deterministic stand-in
	// for an interrupted sweep, used by the CI kill+resume check.
	MaxScenarios int
	// OnRecord observes every record produced or resumed, in completion
	// order (resumed records first, in key order). Called from worker
	// goroutines; must be safe for concurrent use.
	OnRecord func(rec Record, resumed bool)
	// OnProgress observes completion counts: done covers resumed plus
	// completed scenarios, total is the planned count. Same concurrency
	// contract as OnRecord.
	OnProgress func(done, total int)
}

// Result summarizes one Run.
type Result struct {
	Spec *Spec
	// Planned counts generated scenarios; Infeasible the grid points the
	// generator dropped.
	Planned    int
	Infeasible int
	// Resumed counts scenarios satisfied from the journal; Completed the
	// scenarios executed by this process (Errors of them failed; CacheHits
	// of them loaded their design from the cache). Remaining counts
	// scenarios left unrun by MaxScenarios truncation.
	Resumed   int
	Completed int
	Errors    int
	CacheHits int
	Remaining int
	// Records holds one record per finished scenario, sorted by key.
	Records []Record
	// Atlas aggregates Records; a pure function of their deterministic
	// fields, so cold and resumed sweeps of the same spec agree byte for
	// byte once all scenarios are in.
	Atlas *Atlas
}

// Run executes the sweep: expands the spec, skips journaled scenarios,
// fans the remainder over a bounded worker pool, journals each record as
// it lands and aggregates everything into the atlas. Scenario failures are
// recorded, not fatal; Run errors only on spec, journal or I/O problems.
func Run(spec *Spec, opts Options) (*Result, error) {
	scenarios, infeasible, err := spec.Generate()
	if err != nil {
		return nil, err
	}
	plannedCounter.Add(int64(len(scenarios)))

	done := map[string]Record{}
	if opts.JournalPath != "" {
		prior, err := LoadJournal(opts.JournalPath)
		if err != nil {
			return nil, err
		}
		done = prior
	}
	var journal *Journal
	if opts.JournalPath != "" {
		journal, err = OpenJournal(opts.JournalPath)
		if err != nil {
			return nil, err
		}
		defer journal.Close()
	}

	res := &Result{Spec: spec, Planned: len(scenarios), Infeasible: infeasible}
	records := make([]Record, 0, len(scenarios))
	var todo []Scenario
	for _, sc := range scenarios {
		if rec, ok := done[sc.Key()]; ok {
			records = append(records, rec)
			res.Resumed++
			skippedCounter.Add(1)
			if opts.OnRecord != nil {
				opts.OnRecord(rec, true)
			}
			continue
		}
		todo = append(todo, sc)
	}
	if opts.MaxScenarios > 0 && len(todo) > opts.MaxScenarios {
		res.Remaining = len(todo) - opts.MaxScenarios
		todo = todo[:opts.MaxScenarios]
	}
	if opts.OnProgress != nil {
		opts.OnProgress(res.Resumed, res.Planned)
	}

	par := opts.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	pool := sim.NewPool(par)
	fresh := make([]Record, len(todo))
	var (
		wg         sync.WaitGroup
		journalErr error
		mu         sync.Mutex // guards journalErr and the done counter below
		completed  int
	)
	for i, sc := range todo {
		wg.Add(1)
		go func(i int, sc Scenario) {
			defer wg.Done()
			pool.DoNamed("sweep:scenario", sc.Label(), func() {
				inFlightGauge.Add(1)
				defer inFlightGauge.Add(-1)
				rec := runScenario(sc, opts.CacheDir)
				fresh[i] = rec
				completedCounter.Add(1)
				if rec.Error != "" {
					errorCounter.Add(1)
				}
				if rec.DESDeviation > spec.AnalyticTolerance {
					outlierCounter.Add(1)
				}
				obs.Logf("sweep: %s done in %d ms (cache_hit=%v err=%q)", sc.Label(), rec.WallMS, rec.CacheHit, rec.Error)
				var jerr error
				if journal != nil {
					jerr = journal.Append(rec)
				}
				mu.Lock()
				completed++
				n := res.Resumed + completed
				if jerr != nil && journalErr == nil {
					journalErr = jerr
				}
				mu.Unlock()
				if opts.OnRecord != nil {
					opts.OnRecord(rec, false)
				}
				if opts.OnProgress != nil {
					opts.OnProgress(n, res.Planned)
				}
			})
		}(i, sc)
	}
	wg.Wait()
	if journalErr != nil {
		return nil, journalErr
	}

	for _, rec := range fresh {
		records = append(records, rec)
		res.Completed++
		if rec.Error != "" {
			res.Errors++
		}
		if rec.CacheHit {
			res.CacheHits++
		}
	}
	sort.Slice(records, func(i, j int) bool { return records[i].Key < records[j].Key })
	res.Records = records
	res.Atlas = BuildAtlas(spec.Name, records, spec.AnalyticTolerance)
	return res, nil
}

// Probe shape of the DES-vs-analytic fidelity check: enough packets over a
// long-enough horizon for a stable average at a light, contention-lean
// load (total chip injection = probePackets*probeFlits/probeHorizon = 1
// flit/cycle), where the calibrated analytic model is expected to track
// the cycle-accurate DES closely on every platform shape.
const (
	probePackets = 1500
	probeFlits   = 4
	probeHorizon = 6000
	probeSeed    = 1
)

// runScenario executes one scenario end to end and always returns a
// record; failures land in Record.Error so the sweep keeps going and the
// journal remembers deterministic failures.
func runScenario(sc Scenario, cacheDir string) Record {
	start := time.Now() //lint:wallclock journal wall_ms is runtime observability, excluded from the atlas
	cfg := sc.Config()
	rec := Record{
		Schema:     JournalSchemaVersion,
		Key:        sc.Key(),
		ConfigHash: expt.ConfigHash(cfg),
		App:        sc.App,
		Rows:       sc.Rows,
		Cols:       sc.Cols,
		Islands:    sc.Islands,
		Sizes:      sc.Sizes,
		Margin:     sc.Margin,
		Policy:     sc.Policy,
		CapW:       sc.CapW,
		Tier:       sc.Tier,
	}
	if rec.Policy == "" {
		rec.Policy = "none"
	}
	if rec.Tier == "" {
		rec.Tier = TierMesh
	}
	fail := func(err error) Record {
		rec.Error = err.Error()
		rec.WallMS = time.Since(start).Milliseconds() //lint:wallclock journal wall_ms is runtime observability, excluded from the atlas
		return rec
	}
	if reason := sc.infeasible(); reason != "" {
		return fail(fmt.Errorf("sweep: infeasible scenario: %s", reason))
	}
	app, err := apps.ByName(sc.App)
	if err != nil {
		return fail(err)
	}

	// Design flow (probe + clustering + V/F assignment), deduplicated
	// across sweeps and the figure suite through the config-keyed cache.
	// The inner pool is nil: the sweep's own pool slot already accounts for
	// this scenario's compute.
	w, prof, plan, hit, err := expt.BuildDesign(cfg, app, nil, cacheDir)
	if err != nil {
		return fail(err)
	}
	rec.CacheHit = hit

	baseSys, err := sim.NVFIMeshMapped(cfg.Build, prof.Traffic)
	if err != nil {
		return fail(err)
	}
	baseRun, err := sim.Run(w, baseSys)
	if err != nil {
		return fail(err)
	}
	meshSys, err := sim.VFIMesh(cfg.Build, plan.VFI2, prof.Traffic)
	if err != nil {
		return fail(err)
	}
	var run *sim.RunResult
	if sc.Policy == "" || sc.Policy == "none" {
		run, err = sim.Run(w, meshSys)
	} else {
		var pol governor.Policy
		pol, err = governor.ParsePolicy(sc.Policy)
		if err == nil {
			var sum governor.Summary
			run, sum, err = expt.GovernedSystem(cfg, w, plan, meshSys, pol, sc.CapW)
			rec.Transitions = sum.Transitions
		}
	}
	if err != nil {
		return fail(err)
	}
	rec.ExecSeconds = run.Report.ExecSeconds
	rec.TotalJ = run.Report.TotalJ()
	rec.EDP = run.Report.EDP()
	rec.ExecRatio, rec.EnergyRatio, rec.EDPRatio = run.Report.Relative(baseRun.Report)

	if sc.Tier == TierWiNoC {
		wSys, err := sim.VFIWiNoC(cfg.Build, plan.VFI2, prof.Traffic, sim.MaxWireless)
		if err != nil {
			return fail(err)
		}
		wRun, err := sim.Run(w, wSys)
		if err != nil {
			return fail(err)
		}
		_, _, rec.WiNoCEDPRatio = wRun.Report.Relative(baseRun.Report)
	}

	if err := probeFidelity(&rec, cfg, prof.Traffic, meshSys); err != nil {
		return fail(err)
	}
	rec.WallMS = time.Since(start).Milliseconds() //lint:wallclock journal wall_ms is runtime observability, excluded from the atlas
	return rec
}

// probeFidelity cross-checks the analytic latency model against the
// cycle-accurate DES on the scenario's own mesh system and mapped traffic
// pattern, at a fixed light probe load. Both simulators see the same
// switch-level traffic distribution; the recorded deviation is the
// relative gap in average packet latency. Fully deterministic: fixed seed,
// fixed load, simulated-time DES.
func probeFidelity(rec *Record, cfg expt.Config, traffic [][]float64, meshSys *sim.System) error {
	tiles := place.MapTraffic(traffic, meshSys.Mapping)
	total := 0.0
	for _, row := range tiles {
		for _, f := range row {
			total += f
		}
	}
	if total <= 0 {
		return nil // no communication to probe
	}
	// Scale the matrix so analytic and DES run at the identical total
	// injection rate of probePackets*probeFlits/probeHorizon flits/cycle.
	rate := float64(probePackets*probeFlits) / float64(probeHorizon)
	scaled := make([][]float64, len(tiles))
	for i, row := range tiles {
		scaled[i] = make([]float64, len(row))
		for j, f := range row {
			scaled[i][j] = f * rate / total
		}
	}
	an, err := noc.Analytic(meshSys.Routes, scaled, cfg.Build.NetModel, cfg.Build.Analytic)
	if err != nil {
		return fmt.Errorf("sweep: analytic probe: %w", err)
	}
	rng := rand.New(rand.NewSource(probeSeed))
	sampler := newSampler(tiles, total)
	pkts := make([]noc.Packet, probePackets)
	for i := range pkts {
		s, d := sampler.pick(rng)
		pkts[i] = noc.Packet{ID: i, Src: s, Dst: d, Flits: probeFlits, Inject: rng.Int63n(probeHorizon + 1)}
	}
	des, err := noc.RunDES(meshSys.Routes, pkts, cfg.Build.NetModel, noc.DefaultDESConfig())
	if err != nil {
		return fmt.Errorf("sweep: DES probe: %w", err)
	}
	rec.AnalyticLatencyCycles = an.AvgLatencyCycles
	rec.DESLatencyCycles = des.AvgLatencyCycles
	if an.AvgLatencyCycles > 0 {
		dev := des.AvgLatencyCycles/an.AvgLatencyCycles - 1
		if dev < 0 {
			dev = -dev
		}
		rec.DESDeviation = dev
	}
	return nil
}

// sampler draws (src, dst) pairs proportional to a traffic matrix, one
// early-exiting pass over a row-major flattened copy per draw.
type sampler struct {
	n     int
	flat  []float64
	total float64
}

func newSampler(m [][]float64, total float64) *sampler {
	s := &sampler{n: len(m), flat: make([]float64, 0, len(m)*len(m)), total: total}
	for _, row := range m {
		s.flat = append(s.flat, row...)
	}
	return s
}

func (s *sampler) pick(rng *rand.Rand) (src, dst int) {
	r := rng.Float64() * s.total
	for k, f := range s.flat {
		r -= f
		if r <= 0 {
			return k / s.n, k % s.n
		}
	}
	return s.n - 1, s.n - 1
}
