package sweep

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"sync"
)

// JournalSchemaVersion is folded into every journal record; a version bump
// makes old records invisible to resume (they are skipped, not errors).
const JournalSchemaVersion = 1

// Record is one journal line: the full scenario identity, its
// deterministic results, and runtime-only observability fields. The atlas
// is computed exclusively from the deterministic fields — CacheHit and
// WallMS vary between cold and resumed runs (an interrupted sweep may have
// pre-warmed the design cache for scenarios it never journaled) and are
// deliberately excluded, which is what makes cold and resumed aggregates
// byte-identical.
type Record struct {
	Schema int    `json:"schema"`
	Key    string `json:"key"`
	// ConfigHash is expt.ConfigHash of the scenario config — the design
	// cache correlation handle (scenarios differing only in policy/tier
	// share it).
	ConfigHash string  `json:"config_hash"`
	App        string  `json:"app"`
	Rows       int     `json:"rows"`
	Cols       int     `json:"cols"`
	Islands    int     `json:"islands"`
	Sizes      []int   `json:"sizes,omitempty"`
	Margin     float64 `json:"margin"`
	Policy     string  `json:"policy"`
	CapW       float64 `json:"cap_w,omitempty"`
	Tier       string  `json:"tier"`

	// Deterministic results (absent on error records). Ratios are VFI mesh
	// vs the mapped NVFI mesh baseline of the same platform.
	ExecSeconds float64 `json:"exec_s,omitempty"`
	TotalJ      float64 `json:"total_j,omitempty"`
	EDP         float64 `json:"edp,omitempty"`
	ExecRatio   float64 `json:"exec_ratio,omitempty"`
	EnergyRatio float64 `json:"energy_ratio,omitempty"`
	EDPRatio    float64 `json:"edp_ratio,omitempty"`
	// WiNoCEDPRatio is the max-wireless WiNoC system's EDP ratio vs the
	// same baseline (winoc tier only).
	WiNoCEDPRatio float64 `json:"winoc_edp_ratio,omitempty"`
	// Governor decision statistics (governed policies only).
	Transitions int `json:"transitions,omitempty"`
	// DES-vs-analytic fidelity probe: average packet latency of the
	// calibrated analytic model and the cycle-accurate DES on the
	// scenario's mapped switch traffic, and their relative deviation.
	AnalyticLatencyCycles float64 `json:"analytic_latency_cycles,omitempty"`
	DESLatencyCycles      float64 `json:"des_latency_cycles,omitempty"`
	DESDeviation          float64 `json:"des_deviation,omitempty"`
	// Error marks a failed scenario; failed scenarios still count as done
	// for resume (rerunning a deterministic failure reproduces it).
	Error string `json:"error,omitempty"`

	// Runtime observability — never part of the atlas.
	CacheHit bool  `json:"cache_hit"`
	WallMS   int64 `json:"wall_ms"`
}

// Journal is an append-only NDJSON sweep journal. Appends are serialized
// and flushed per record, so a killed process loses at most the line being
// written — and the tolerant loader skips a torn final line.
type Journal struct {
	mu sync.Mutex
	f  *os.File
	w  *bufio.Writer
}

// OpenJournal opens (creating if needed) a journal for appending.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("sweep: opening journal: %w", err)
	}
	return &Journal{f: f, w: bufio.NewWriter(f)}, nil
}

// Append writes one record as a single NDJSON line and flushes it.
func (j *Journal) Append(rec Record) error {
	rec.Schema = JournalSchemaVersion
	blob, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("sweep: encoding journal record: %w", err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.w.Write(append(blob, '\n')); err != nil {
		return fmt.Errorf("sweep: appending journal record: %w", err)
	}
	if err := j.w.Flush(); err != nil {
		return fmt.Errorf("sweep: flushing journal: %w", err)
	}
	return nil
}

// Close flushes and closes the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.w.Flush(); err != nil {
		j.f.Close()
		return err
	}
	return j.f.Close()
}

// LoadJournal reads a journal into a key->record map. A missing file is an
// empty journal. Unparsable lines (torn final write of a killed run),
// blank lines and schema-mismatched records are skipped; duplicate keys
// resolve last-wins, so a re-run record supersedes an earlier one.
func LoadJournal(path string) (map[string]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return map[string]Record{}, nil
		}
		return nil, fmt.Errorf("sweep: opening journal: %w", err)
	}
	defer f.Close()
	recs := map[string]Record{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			continue // torn or foreign line
		}
		if rec.Schema != JournalSchemaVersion || rec.Key == "" {
			continue
		}
		recs[rec.Key] = rec
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("sweep: reading journal: %w", err)
	}
	return recs, nil
}
