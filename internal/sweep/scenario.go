package sweep

import (
	"fmt"
	"strings"

	"wivfi/internal/expt"
	"wivfi/internal/topo"
)

// Tier names for Spec.Tier / Scenario.Tier.
const (
	// TierMesh runs the mapped NVFI mesh baseline plus the static or
	// governed VFI mesh system.
	TierMesh = "mesh"
	// TierWiNoC additionally runs the max-wireless WiNoC system.
	TierWiNoC = "winoc"
)

// Scenario is one fully resolved grid point: a platform shape, a design
// configuration and an execution mode. Scenarios are plain values —
// comparable by Key — and carry everything needed to run independently.
type Scenario struct {
	Rows, Cols int
	// Islands is the VFI count m; Sizes optionally prescribes unequal
	// island sizes (nil = the equal n/m split, which shares design-cache
	// entries with the figure suite on the default platform).
	Islands int
	Sizes   []int
	App     string
	// Margin is the V/F-selection utilization headroom.
	Margin float64
	// Policy is "none" (static plan, plain VFI mesh run) or a governor
	// policy name ("static", "util", "cap"); CapW applies to "cap" only.
	Policy string
	CapW   float64
	Tier   string
}

// Cores returns the platform core count.
func (sc Scenario) Cores() int { return sc.Rows * sc.Cols }

// Config resolves the scenario into the experiment configuration that
// scopes its design-cache entry. All non-default fields use their
// json-omitempty zero-value conventions, so a default-shaped scenario
// (8x8, 4 equal islands, margin 0.35) hashes to the exact config the
// figure suite uses and shares its cache entries.
func (sc Scenario) Config() expt.Config {
	cfg := expt.DefaultConfig()
	cfg.Build.Chip.Rows = sc.Rows
	cfg.Build.Chip.Cols = sc.Cols
	cfg.VFI.NumIslands = sc.Islands
	if len(sc.Sizes) > 0 {
		cfg.VFI.IslandSizes = append([]int(nil), sc.Sizes...)
	}
	cfg.VFI.FreqMargin = sc.Margin
	return cfg
}

// Key returns the scenario's identity: expt.RequestKey over its config and
// app, salted with the execution-mode dimensions the design cache does not
// know about (governor policy/cap, simulation tier). It doubles as the
// journal resume key and the design-cache correlation handle; scenarios
// with equal keys are byte-identical to run.
func (sc Scenario) Key() string {
	return expt.RequestKey(sc.Config(), sc.App, sc.keyExtras()...)
}

// keyExtras mirrors the serving layer's convention: no extras for the
// plain static path, "policy=…" (+ "cap=…") for governed modes, "tier=…"
// for non-default tiers.
func (sc Scenario) keyExtras() []string {
	var extras []string
	if sc.Policy != "" && sc.Policy != "none" {
		extras = append(extras, "policy="+sc.Policy)
		if sc.Policy == "cap" {
			extras = append(extras, fmt.Sprintf("cap=%g", sc.CapW))
		}
	}
	if sc.Tier != "" && sc.Tier != TierMesh {
		extras = append(extras, "tier="+sc.Tier)
	}
	return extras
}

// Label renders a compact human-readable identifier for logs and events,
// e.g. "8x8/4i/wc/m0.35", "6x6/2i[12+24]/pca/m0.25/util", with "/winoc"
// appended on the wireless tier.
func (sc Scenario) Label() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%dx%d/%di", sc.Rows, sc.Cols, sc.Islands)
	if len(sc.Sizes) > 0 {
		parts := make([]string, len(sc.Sizes))
		for i, s := range sc.Sizes {
			parts[i] = fmt.Sprint(s)
		}
		fmt.Fprintf(&b, "[%s]", strings.Join(parts, "+"))
	}
	fmt.Fprintf(&b, "/%s/m%g", sc.App, sc.Margin)
	if sc.Policy != "" && sc.Policy != "none" {
		fmt.Fprintf(&b, "/%s", sc.Policy)
	}
	if sc.Tier == TierWiNoC {
		b.WriteString("/winoc")
	}
	return b.String()
}

// infeasible returns a non-empty reason when the scenario cannot run on
// this platform model: workload shapes the apps model rejects, island
// geometries too small for wireless interfaces. Generate drops these grid
// points silently (counted); Run reports the reason for hand-written
// scenarios.
func (sc Scenario) infeasible() string {
	n := sc.Cores()
	if n%4 != 0 {
		return fmt.Sprintf("%d cores not divisible into the workload model's 4 utilization groups", n)
	}
	if len(sc.Sizes) == 0 && n%sc.Islands != 0 {
		return fmt.Sprintf("%d cores not divisible into %d equal islands", n, sc.Islands)
	}
	if sc.Tier == TierWiNoC {
		if sc.Islands < 2 {
			return "winoc tier needs at least 2 islands (small-world clusters)"
		}
		min := n / sc.Islands
		for _, s := range sc.Sizes {
			if s < min {
				min = s
			}
		}
		if min < topo.WIsPerCluster {
			return fmt.Sprintf("winoc tier needs every island to hold >= %d tiles for its wireless interfaces, smallest has %d", topo.WIsPerCluster, min)
		}
	}
	return ""
}
