// Package sweep generates parametric platform scenarios — mesh size x VFI
// island split x application x V/F margin x governor policy — and fans
// them through the experiment pipeline with bounded concurrency, an
// append-only resumable NDJSON journal and a fleet-level observability
// plane (progress gauges, Prometheus counters, per-scenario events and an
// aggregate "atlas" report).
//
// Every scenario is keyed by the same config hash that scopes the design
// cache (expt.RequestKey), so repeated sweeps — and sweeps overlapping the
// figure suite — deduplicate the expensive profile/clustering work, and a
// journal written by one run can resume another: completed keys are
// skipped and the atlas is a pure function of the deterministic record
// fields, making cold and resumed aggregates byte-identical.
package sweep

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"

	"wivfi/internal/expt"
	"wivfi/internal/governor"
)

// SpecSchemaVersion is the sweep-spec document schema this package reads.
const SpecSchemaVersion = 1

// DefaultAnalyticTolerance is the relative DES-vs-analytic latency
// deviation above which a scenario is flagged as an outlier in the atlas.
// Calibrated empirically: the analytic model omits a roughly constant
// ~4-cycle per-packet injection/ejection pipeline cost that the
// cycle-accurate DES charges, which dominates relatively on small meshes
// (measured deviations ~0.30-0.38 on 4x4, ~0.22 on 6x6, ~0.16 on 8x8,
// under 0.12 from 12x12 up at the probe load). 0.5 leaves ~25% headroom
// over the worst healthy small-mesh case while still flagging congestion
// collapse, where DES latency runs a multiple of the analytic prediction.
const DefaultAnalyticTolerance = 0.5

// IslandAxis is one point of the island-split axis.
type IslandAxis struct {
	// Count is the number of VFI islands.
	Count int `json:"count"`
	// Split optionally skews the island sizes: proportional integer
	// weights, one per island, scaled to each mesh's core count with
	// largest-remainder rounding. Nil or all-equal weights mean the equal
	// n/m split (and hit the same design-cache entries as the figure
	// suite). Example: {"count": 2, "split": [1, 3]} puts a quarter of the
	// cores on island 0.
	Split []int `json:"split,omitempty"`
}

// Spec declares a sweep: the axes of a full cross-product grid plus an
// optional seeded random subsample. The zero values of the optional fields
// choose the paper's defaults.
type Spec struct {
	Schema int    `json:"schema"`
	Name   string `json:"name"`
	// Meshes lists platform grids as "RxC" strings ("8x8", "4x6", ...).
	Meshes []string `json:"meshes"`
	// Islands lists the island-split axis; default one point: 4 equal.
	Islands []IslandAxis `json:"islands,omitempty"`
	// Apps lists benchmark names; default all six (expt.AppOrder).
	Apps []string `json:"apps,omitempty"`
	// Margins lists V/F-selection margins; default the paper's 0.35.
	Margins []float64 `json:"margins,omitempty"`
	// Policies lists governor modes per scenario: "none" (static plan, the
	// default), "static", "util" or "cap".
	Policies []string `json:"policies,omitempty"`
	// CapW is the core-power cap for "cap" policy scenarios (default
	// expt.DefaultGovernorCapW).
	CapW float64 `json:"cap_w,omitempty"`
	// Tier selects the simulated system set: "mesh" (default; baseline +
	// VFI 2 mesh) or "winoc" (additionally the max-wireless WiNoC system,
	// on scenarios whose islands can host wireless interfaces).
	Tier string `json:"tier,omitempty"`
	// Sample, when positive, draws this many scenarios from the grid
	// uniformly without replacement using Seed; 0 keeps the full grid.
	Sample int   `json:"sample,omitempty"`
	Seed   int64 `json:"seed,omitempty"`
	// AnalyticTolerance overrides the atlas outlier threshold.
	AnalyticTolerance float64 `json:"analytic_tolerance,omitempty"`
}

// LoadSpec reads and validates a sweep spec from a JSON file.
func LoadSpec(path string) (*Spec, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("sweep: reading spec: %w", err)
	}
	return ParseSpec(raw)
}

// ParseSpec decodes and validates a sweep spec document.
func ParseSpec(raw []byte) (*Spec, error) {
	var s Spec
	if err := json.Unmarshal(raw, &s); err != nil {
		return nil, fmt.Errorf("sweep: parsing spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// parseMesh parses an "RxC" grid string.
func parseMesh(s string) (rows, cols int, err error) {
	parts := strings.SplitN(strings.ToLower(strings.TrimSpace(s)), "x", 2)
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("sweep: mesh %q not of the form RxC", s)
	}
	rows, err = strconv.Atoi(parts[0])
	if err == nil {
		cols, err = strconv.Atoi(parts[1])
	}
	if err != nil || rows <= 0 || cols <= 0 {
		return 0, 0, fmt.Errorf("sweep: mesh %q not of the form RxC with positive dimensions", s)
	}
	return rows, cols, nil
}

// Validate checks the spec and fills documented defaults in place.
func (s *Spec) Validate() error {
	if s.Schema == 0 {
		s.Schema = SpecSchemaVersion
	}
	if s.Schema != SpecSchemaVersion {
		return fmt.Errorf("sweep: spec schema %d unsupported (want %d)", s.Schema, SpecSchemaVersion)
	}
	if s.Name == "" {
		s.Name = "sweep"
	}
	if len(s.Meshes) == 0 {
		return fmt.Errorf("sweep: spec needs at least one mesh")
	}
	for _, m := range s.Meshes {
		rows, cols, err := parseMesh(m)
		if err != nil {
			return err
		}
		if rows < 2 || cols < 2 || rows > 32 || cols > 32 {
			return fmt.Errorf("sweep: mesh %q outside the supported 2x2..32x32 range", m)
		}
	}
	if len(s.Islands) == 0 {
		s.Islands = []IslandAxis{{Count: 4}}
	}
	for i, isl := range s.Islands {
		if isl.Count <= 0 {
			return fmt.Errorf("sweep: islands[%d] needs a positive count, got %d", i, isl.Count)
		}
		if len(isl.Split) > 0 && len(isl.Split) != isl.Count {
			return fmt.Errorf("sweep: islands[%d] split has %d weights for %d islands", i, len(isl.Split), isl.Count)
		}
		for _, w := range isl.Split {
			if w <= 0 {
				return fmt.Errorf("sweep: islands[%d] split weights must be positive", i)
			}
		}
	}
	if len(s.Apps) == 0 {
		s.Apps = append([]string(nil), expt.AppOrder...)
	}
	if len(s.Margins) == 0 {
		s.Margins = []float64{0.35}
	}
	for _, m := range s.Margins {
		if m < 0 || m > 1 {
			return fmt.Errorf("sweep: margin %v outside [0, 1]", m)
		}
	}
	if len(s.Policies) == 0 {
		s.Policies = []string{"none"}
	}
	for _, p := range s.Policies {
		if p == "none" {
			continue
		}
		if _, err := governor.ParsePolicy(p); err != nil {
			return fmt.Errorf("sweep: policy %q: %w", p, err)
		}
	}
	if s.CapW == 0 {
		s.CapW = expt.DefaultGovernorCapW
	}
	if s.CapW < 0 {
		return fmt.Errorf("sweep: negative power cap %v", s.CapW)
	}
	switch s.Tier {
	case "":
		s.Tier = TierMesh
	case TierMesh, TierWiNoC:
	default:
		return fmt.Errorf("sweep: tier %q unknown (want %q or %q)", s.Tier, TierMesh, TierWiNoC)
	}
	if s.Sample < 0 {
		return fmt.Errorf("sweep: negative sample size %d", s.Sample)
	}
	if s.AnalyticTolerance == 0 {
		s.AnalyticTolerance = DefaultAnalyticTolerance
	}
	if s.AnalyticTolerance < 0 {
		return fmt.Errorf("sweep: negative analytic tolerance %v", s.AnalyticTolerance)
	}
	return nil
}

// splitSizes scales proportional weights to n cores with largest-remainder
// rounding, every island keeping at least one core. ok is false when the
// split cannot be realized on n cores.
func splitSizes(n int, weights []int) (sizes []int, ok bool) {
	m := len(weights)
	if n < m {
		return nil, false
	}
	total := 0
	for _, w := range weights {
		total += w
	}
	sizes = make([]int, m)
	type rem struct {
		j    int
		frac float64
	}
	rems := make([]rem, m)
	assigned := 0
	for j, w := range weights {
		exact := float64(n) * float64(w) / float64(total)
		sizes[j] = int(exact)
		rems[j] = rem{j, exact - float64(sizes[j])}
		assigned += sizes[j]
	}
	sort.SliceStable(rems, func(a, b int) bool {
		if rems[a].frac != rems[b].frac {
			return rems[a].frac > rems[b].frac
		}
		return rems[a].j < rems[b].j
	})
	for i := 0; assigned < n; i = (i + 1) % m {
		sizes[rems[i].j]++
		assigned++
	}
	// guarantee non-empty islands by stealing from the largest
	for j := range sizes {
		for sizes[j] == 0 {
			big, bigAt := 0, -1
			for k, sz := range sizes {
				if sz > big {
					big, bigAt = sz, k
				}
			}
			if big <= 1 {
				return nil, false
			}
			sizes[bigAt]--
			sizes[j]++
		}
	}
	return sizes, true
}

// equalSizes reports whether every entry equals the first.
func equalSizes(sizes []int) bool {
	for _, s := range sizes {
		if s != sizes[0] {
			return false
		}
	}
	return true
}

// Generate expands the spec into its scenario list: the full cross-product
// grid, feasibility-filtered, deduplicated by scenario key, and optionally
// subsampled. The result is deterministic for a given spec (including the
// sample seed) and independent of journal or cache state. skipped counts
// grid points dropped as infeasible (indivisible splits, workload shapes
// the apps model cannot build, WiNoC islands too small for their wireless
// interfaces).
func (s *Spec) Generate() (scenarios []Scenario, skipped int, err error) {
	if err := s.Validate(); err != nil {
		return nil, 0, err
	}
	seen := map[string]bool{}
	for _, mesh := range s.Meshes {
		rows, cols, err := parseMesh(mesh)
		if err != nil {
			return nil, 0, err
		}
		n := rows * cols
		for _, isl := range s.Islands {
			var sizes []int
			if len(isl.Split) > 0 && !equalSizes(isl.Split) {
				var ok bool
				sizes, ok = splitSizes(n, isl.Split)
				if !ok {
					skipped += len(s.Apps) * len(s.Margins) * len(s.Policies)
					continue
				}
				if equalSizes(sizes) {
					sizes = nil // rounding collapsed the skew; treat as equal
				}
			}
			if sizes == nil && n%isl.Count != 0 {
				skipped += len(s.Apps) * len(s.Margins) * len(s.Policies)
				continue
			}
			for _, app := range s.Apps {
				for _, margin := range s.Margins {
					for _, pol := range s.Policies {
						sc := Scenario{
							Rows:    rows,
							Cols:    cols,
							Islands: isl.Count,
							Sizes:   sizes,
							App:     app,
							Margin:  margin,
							Policy:  pol,
							Tier:    s.Tier,
						}
						if pol == "cap" {
							sc.CapW = s.CapW
						}
						if reason := sc.infeasible(); reason != "" {
							skipped++
							continue
						}
						key := sc.Key()
						if key == "" || seen[key] {
							skipped++
							continue
						}
						seen[key] = true
						scenarios = append(scenarios, sc)
					}
				}
			}
		}
	}
	if s.Sample > 0 && s.Sample < len(scenarios) {
		rng := rand.New(rand.NewSource(s.Seed))
		rng.Shuffle(len(scenarios), func(i, j int) {
			scenarios[i], scenarios[j] = scenarios[j], scenarios[i]
		})
		scenarios = scenarios[:s.Sample]
	}
	sort.Slice(scenarios, func(i, j int) bool { return scenarios[i].Key() < scenarios[j].Key() })
	return scenarios, skipped, nil
}
