package sweep

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"wivfi/internal/expt"
)

func TestParseMesh(t *testing.T) {
	for _, tc := range []struct {
		in         string
		rows, cols int
		ok         bool
	}{
		{"8x8", 8, 8, true},
		{" 4X6 ", 4, 6, true},
		{"32x32", 32, 32, true},
		{"8", 0, 0, false},
		{"0x8", 0, 0, false},
		{"-2x4", 0, 0, false},
		{"axb", 0, 0, false},
	} {
		rows, cols, err := parseMesh(tc.in)
		if tc.ok && (err != nil || rows != tc.rows || cols != tc.cols) {
			t.Errorf("parseMesh(%q) = %d,%d,%v; want %d,%d", tc.in, rows, cols, err, tc.rows, tc.cols)
		}
		if !tc.ok && err == nil {
			t.Errorf("parseMesh(%q) accepted", tc.in)
		}
	}
}

func TestSplitSizes(t *testing.T) {
	sizes, ok := splitSizes(64, []int{1, 3})
	if !ok || !reflect.DeepEqual(sizes, []int{16, 48}) {
		t.Fatalf("1:3 split of 64 = %v, %v", sizes, ok)
	}
	sizes, ok = splitSizes(16, []int{1, 1, 2})
	if !ok || sizes[0]+sizes[1]+sizes[2] != 16 || sizes[2] != 8 {
		t.Fatalf("1:1:2 split of 16 = %v, %v", sizes, ok)
	}
	// every island keeps at least one core even for extreme skews
	sizes, ok = splitSizes(4, []int{1, 1000, 1, 1})
	if !ok {
		t.Fatalf("extreme split infeasible: %v", sizes)
	}
	for _, s := range sizes {
		if s < 1 {
			t.Fatalf("empty island in %v", sizes)
		}
	}
	if _, ok := splitSizes(2, []int{1, 1, 1}); ok {
		t.Fatal("3 islands on 2 cores accepted")
	}
}

func TestSpecValidateDefaults(t *testing.T) {
	s := &Spec{Meshes: []string{"8x8"}}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Schema != SpecSchemaVersion || len(s.Apps) != 6 || s.Islands[0].Count != 4 ||
		s.Margins[0] != 0.35 || s.Policies[0] != "none" || s.Tier != TierMesh ||
		s.AnalyticTolerance != DefaultAnalyticTolerance {
		t.Fatalf("defaults not filled: %+v", s)
	}
	for _, bad := range []*Spec{
		{},
		{Meshes: []string{"1x1"}},
		{Meshes: []string{"40x40"}},
		{Meshes: []string{"8x8"}, Islands: []IslandAxis{{Count: 0}}},
		{Meshes: []string{"8x8"}, Islands: []IslandAxis{{Count: 2, Split: []int{1}}}},
		{Meshes: []string{"8x8"}, Policies: []string{"warp"}},
		{Meshes: []string{"8x8"}, Margins: []float64{2}},
		{Meshes: []string{"8x8"}, Tier: "optical"},
		{Meshes: []string{"8x8"}, Sample: -1},
		{Meshes: []string{"8x8"}, Schema: 99},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("spec %+v accepted", bad)
		}
	}
}

func TestGenerateFiltersInfeasible(t *testing.T) {
	// 5x5 = 25 cores: not divisible into 4 thread groups -> all dropped.
	s := &Spec{Meshes: []string{"5x5"}, Apps: []string{"wc"}}
	scens, skipped, err := s.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(scens) != 0 || skipped == 0 {
		t.Fatalf("5x5 produced %d scenarios (%d skipped)", len(scens), skipped)
	}
	// 4x4 with 3 equal islands: 16 %% 3 != 0 -> dropped; with split it works.
	s = &Spec{Meshes: []string{"4x4"}, Apps: []string{"wc"},
		Islands: []IslandAxis{{Count: 3}, {Count: 3, Split: []int{1, 1, 2}}}}
	scens, _, err = s.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(scens) != 1 || len(scens[0].Sizes) != 3 {
		t.Fatalf("got %+v", scens)
	}
	// winoc tier needs >= 3 tiles per island: 2x2 with 2 islands of 2 fails.
	s = &Spec{Meshes: []string{"2x2"}, Apps: []string{"wc"}, Tier: TierWiNoC,
		Islands: []IslandAxis{{Count: 2}}}
	scens, _, err = s.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(scens) != 0 {
		t.Fatalf("undersized winoc islands accepted: %+v", scens)
	}
}

// TestGridKeyUniqueness is the 1k-scenario collision property: every
// scenario of a large cross-product grid gets a distinct non-empty key.
func TestGridKeyUniqueness(t *testing.T) {
	s := &Spec{
		Meshes:  []string{"4x4", "4x6", "6x6", "8x8", "8x10", "10x10", "12x12", "16x16"},
		Islands: []IslandAxis{{Count: 2}, {Count: 4}, {Count: 2, Split: []int{1, 3}}},
		Margins: []float64{0.25, 0.35, 0.45},
		Policies: []string{
			"none", "static", "util", "cap",
		},
	}
	scens, _, err := s.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(scens) < 1000 {
		t.Fatalf("grid too small for the property: %d scenarios", len(scens))
	}
	seen := map[string]Scenario{}
	// Two scenarios must share an expt.ConfigHash exactly when they share
	// the platform shape (policy and tier are key extras, not config).
	platform := func(sc Scenario) string {
		return fmt.Sprintf("%dx%d/%d%v/m%g", sc.Rows, sc.Cols, sc.Islands, sc.Sizes, sc.Margin)
	}
	hashes := map[string]string{}
	for _, sc := range scens {
		key := sc.Key()
		if len(key) != 32 {
			t.Fatalf("scenario %s key %q not a 32-hex digest", sc.Label(), key)
		}
		if prev, dup := seen[key]; dup {
			t.Fatalf("key collision: %s vs %s", prev.Label(), sc.Label())
		}
		seen[key] = sc
		h := expt.ConfigHash(sc.Config())
		if p, ok := hashes[h]; ok && p != platform(sc) {
			t.Fatalf("config hash collision: %s vs %s", p, platform(sc))
		}
		hashes[h] = platform(sc)
	}
	t.Logf("%d scenarios, %d distinct keys, %d distinct config hashes", len(scens), len(seen), len(hashes))
}

// TestGenerateDeterministic: the scenario list (including a seeded
// subsample) is a pure function of the spec.
func TestGenerateDeterministic(t *testing.T) {
	mk := func() []Scenario {
		s := &Spec{Meshes: []string{"4x4", "8x8"}, Sample: 10, Seed: 7}
		scens, _, err := s.Generate()
		if err != nil {
			t.Fatal(err)
		}
		return scens
	}
	a, b := mk(), mk()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two generations of the same spec differ")
	}
	if len(a) != 10 {
		t.Fatalf("sample returned %d scenarios", len(a))
	}
}

func TestScenarioKeyMatchesSuiteDefaults(t *testing.T) {
	// The default-shaped scenario must share its key (and so its design
	// cache entry) with the figure suite's config.
	sc := Scenario{Rows: 8, Cols: 8, Islands: 4, App: "wc", Margin: 0.35, Policy: "none", Tier: TierMesh}
	if got, want := expt.ConfigHash(sc.Config()), expt.ConfigHash(expt.DefaultConfig()); got != want {
		t.Fatalf("default scenario config hash %s != suite default %s", got, want)
	}
	// policy/tier extras must change the key
	base := sc.Key()
	gov := sc
	gov.Policy = "util"
	winoc := sc
	winoc.Tier = TierWiNoC
	if gov.Key() == base || winoc.Key() == base || gov.Key() == winoc.Key() {
		t.Fatal("execution-mode extras did not salt the key")
	}
}

func TestJournalRoundTripAndTolerance(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal.ndjson")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	recs := []Record{
		{Key: "aaa", App: "wc", EDPRatio: 0.5},
		{Key: "bbb", App: "mm", Error: "boom"},
		{Key: "aaa", App: "wc", EDPRatio: 0.75}, // supersedes the first
	}
	for _, r := range recs {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// torn final line + foreign junk + schema mismatch must all be skipped
	f, _ := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	fmt.Fprintln(f, "not json at all")
	fmt.Fprintln(f, `{"schema":99,"key":"ccc"}`)
	fmt.Fprint(f, `{"schema":1,"key":"ddd","app":"trunc`)
	f.Close()
	got, err := LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("loaded %d records, want 2: %+v", len(got), got)
	}
	if got["aaa"].EDPRatio != 0.75 {
		t.Fatalf("duplicate key not last-wins: %+v", got["aaa"])
	}
	if got["bbb"].Error != "boom" {
		t.Fatalf("error record lost: %+v", got["bbb"])
	}
	if missing, err := LoadJournal(filepath.Join(dir, "absent.ndjson")); err != nil || len(missing) != 0 {
		t.Fatalf("missing journal: %v, %v", missing, err)
	}
}

func TestAtlasPureAndOrderInsensitive(t *testing.T) {
	recs := []Record{
		{Key: "b", App: "wc", Rows: 4, Cols: 4, Islands: 4, Margin: 0.35, Policy: "none", Tier: "mesh", EDP: 2, EDPRatio: 0.8, DESDeviation: 0.1, CacheHit: true, WallMS: 99},
		{Key: "a", App: "mm", Rows: 8, Cols: 8, Islands: 4, Margin: 0.35, Policy: "none", Tier: "mesh", EDP: 1, EDPRatio: 0.6, DESDeviation: 0.5},
		{Key: "c", App: "wc", Rows: 8, Cols: 8, Islands: 4, Margin: 0.35, Policy: "none", Tier: "mesh", Error: "boom"},
	}
	a1 := BuildAtlas("t", recs, 0.25)
	// reversed input order, flipped runtime-only fields
	rev := []Record{recs[2], recs[1], recs[0]}
	rev[2].CacheHit = false
	rev[2].WallMS = 1
	a2 := BuildAtlas("t", rev, 0.25)
	b1, _ := json.Marshal(a1)
	b2, _ := json.Marshal(a2)
	if string(b1) != string(b2) {
		t.Fatalf("atlas depends on record order or runtime fields:\n%s\n%s", b1, b2)
	}
	if a1.Errors != 1 || len(a1.FailedKeys) != 1 || a1.FailedKeys[0] != "c" {
		t.Fatalf("failed scenario not tracked: %+v", a1)
	}
	if len(a1.Outliers) != 1 || a1.Outliers[0].Key != "a" {
		t.Fatalf("outlier detection: %+v", a1.Outliers)
	}
	// 8x8/EDP=1 dominates nothing over 4x4 (fewer cores); both on frontier?
	// 4x4 has fewer cores, 8x8 has lower EDP -> both non-dominated.
	if len(a1.Pareto) != 2 {
		t.Fatalf("pareto: %+v", a1.Pareto)
	}
	if a1.Format() != a2.Format() {
		t.Fatal("formatted atlas differs")
	}
}

// TestRunResumeByteIdentical is the replay property on real scenarios: a
// cold full run, and an interrupted run resumed under a different
// parallelism and a pre-warmed cache, must produce DeepEqual aggregates
// and byte-identical atlases.
func TestRunResumeByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real scenarios")
	}
	dir := t.TempDir()
	spec := &Spec{
		Name:    "resume-test",
		Meshes:  []string{"4x4"},
		Apps:    []string{"wc", "hist"},
		Margins: []float64{0.35, 0.45},
	}
	cold, err := Run(spec, Options{
		JournalPath: filepath.Join(dir, "cold.ndjson"),
		Parallelism: 8,
		CacheDir:    filepath.Join(dir, "cache-cold"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if cold.Planned != 4 || cold.Completed != 4 || cold.Errors != 0 {
		t.Fatalf("cold run: %+v", cold)
	}

	// Interrupted run: stop after 2 scenarios, then resume with -j 1 and a
	// different (cold) cache directory.
	warm := filepath.Join(dir, "cache-warm")
	part, err := Run(spec, Options{
		JournalPath:  filepath.Join(dir, "resumed.ndjson"),
		Parallelism:  4,
		CacheDir:     warm,
		MaxScenarios: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if part.Completed != 2 || part.Remaining != 2 {
		t.Fatalf("interrupted run: %+v", part)
	}
	resumed, err := Run(spec, Options{
		JournalPath: filepath.Join(dir, "resumed.ndjson"),
		Parallelism: 1,
		CacheDir:    warm, // pre-warmed by the interrupted run
	})
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Resumed != 2 || resumed.Completed != 2 {
		t.Fatalf("resumed run: %+v", resumed)
	}

	stripRuntime := func(recs []Record) []Record {
		out := append([]Record(nil), recs...)
		for i := range out {
			out[i].CacheHit = false
			out[i].WallMS = 0
		}
		return out
	}
	if !reflect.DeepEqual(stripRuntime(cold.Records), stripRuntime(resumed.Records)) {
		t.Fatalf("deterministic record fields differ:\ncold: %+v\nresumed: %+v", cold.Records, resumed.Records)
	}
	cb, err := json.MarshalIndent(cold.Atlas, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	rb, err := json.MarshalIndent(resumed.Atlas, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if string(cb) != string(rb) {
		t.Fatalf("atlases differ:\n%s\n---\n%s", cb, rb)
	}
	if cold.Atlas.Format() != resumed.Atlas.Format() {
		t.Fatal("formatted atlases differ")
	}
	if len(cold.Atlas.Outliers) != 0 {
		t.Fatalf("analytic outliers on the probe scenarios: %+v", cold.Atlas.Outliers)
	}
}
