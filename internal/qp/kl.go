package qp

import "fmt"

// KLRefine improves a feasible equal-size partition with a Kernighan-Lin
// style pass: repeatedly build a sequence of best-gain swaps with both
// endpoints locked after each swap, keep the best prefix of the sequence,
// and iterate until a full pass yields no improvement. Unlike the plain
// steepest-descent polish inside Anneal, KL can escape shallow local optima
// by accepting temporarily-worsening swaps inside a pass.
//
// The input assignment is not modified; the refined assignment and its
// cost are returned.
func KLRefine(p *Problem, assign []int) ([]int, float64, error) {
	if err := p.Validate(); err != nil {
		return nil, 0, err
	}
	if len(assign) != p.N {
		return nil, 0, fmt.Errorf("qp: assignment length %d for n=%d", len(assign), p.N)
	}
	cur := append([]int(nil), assign...)
	curCost := p.Cost(cur)
	for pass := 0; pass < p.N; pass++ {
		improved, newCost := klPass(p, cur, curCost)
		if !improved {
			break
		}
		curCost = newCost
	}
	return cur, curCost, nil
}

// klPass performs one KL sequence on cur in place. It returns whether the
// pass improved the cost, and the new cost.
func klPass(p *Problem, cur []int, curCost float64) (bool, float64) {
	locked := make([]bool, p.N)
	type step struct {
		a, b  int
		delta float64
	}
	var seq []step
	work := append([]int(nil), cur...)
	cost := curCost

	// Build a sequence of up to n/2 best-gain swaps, locking participants.
	for len(seq) < p.N/2 {
		bestA, bestB := -1, -1
		bestDelta := 0.0
		first := true
		for a := 0; a < p.N; a++ {
			if locked[a] {
				continue
			}
			for b := a + 1; b < p.N; b++ {
				if locked[b] || work[a] == work[b] {
					continue
				}
				d := p.swapDelta(work, a, b)
				if first || d < bestDelta {
					bestA, bestB, bestDelta = a, b, d
					first = false
				}
			}
		}
		if bestA < 0 {
			break
		}
		work[bestA], work[bestB] = work[bestB], work[bestA]
		locked[bestA], locked[bestB] = true, true
		cost += bestDelta
		seq = append(seq, step{bestA, bestB, bestDelta})
	}

	// Find the best prefix of the sequence.
	bestPrefix := 0
	bestCost := curCost
	running := curCost
	for i, st := range seq {
		running += st.delta
		if running < bestCost-1e-12 {
			bestCost = running
			bestPrefix = i + 1
		}
	}
	if bestPrefix == 0 {
		return false, curCost
	}
	// Apply the winning prefix to cur.
	for _, st := range seq[:bestPrefix] {
		cur[st.a], cur[st.b] = cur[st.b], cur[st.a]
	}
	return true, bestCost
}

// SolveRefined runs the annealer and then a KL refinement pass — the
// highest-quality heuristic pipeline in this package.
func SolveRefined(p *Problem, opts AnnealOptions) (Solution, error) {
	sol, err := Anneal(p, opts)
	if err != nil {
		return Solution{}, err
	}
	assign, cost, err := KLRefine(p, sol.Assign)
	if err != nil {
		return Solution{}, err
	}
	return Solution{Assign: assign, Cost: cost}, nil
}
