package qp

import (
	"math"
	"math/rand"
	"testing"
)

func TestKLRefineNeverWorsens(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 15; trial++ {
		p := randomProblem(rng, 16, 4)
		start := GreedySeed(p)
		// scramble a bit so there is something to fix
		for k := 0; k < 8; k++ {
			a, b := rng.Intn(p.N), rng.Intn(p.N)
			start[a], start[b] = start[b], start[a]
		}
		startCost := p.Cost(start)
		refined, cost, err := KLRefine(p, start)
		if err != nil {
			t.Fatal(err)
		}
		feasible(t, p, refined)
		if cost > startCost+1e-9 {
			t.Fatalf("KL worsened cost: %v -> %v", startCost, cost)
		}
		if math.Abs(cost-p.Cost(refined)) > 1e-9 {
			t.Fatalf("reported cost %v != recomputed %v", cost, p.Cost(refined))
		}
		// input untouched
		if p.Cost(start) != startCost {
			t.Fatal("KLRefine mutated its input")
		}
	}
}

func TestKLRefineReachesOptimumOnSmallInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 8; trial++ {
		p := randomProblem(rng, 8, 2)
		exact, err := BranchAndBound(p, 10_000_000)
		if err != nil {
			t.Fatal(err)
		}
		refined, cost, err := KLRefine(p, GreedySeed(p))
		if err != nil {
			t.Fatal(err)
		}
		feasible(t, p, refined)
		if cost < exact.Cost-1e-9 {
			t.Fatalf("KL cost %v beats proven optimum %v", cost, exact.Cost)
		}
		if cost > exact.Cost*1.05+1e-9 {
			t.Errorf("trial %d: KL cost %v more than 5%% above optimum %v", trial, cost, exact.Cost)
		}
	}
}

func TestSolveRefinedAtLeastAsGoodAsAnneal(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 5; trial++ {
		p := randomProblem(rng, 32, 4)
		plain, err := Anneal(p, DefaultAnnealOptions())
		if err != nil {
			t.Fatal(err)
		}
		refined, err := SolveRefined(p, DefaultAnnealOptions())
		if err != nil {
			t.Fatal(err)
		}
		feasible(t, p, refined.Assign)
		if refined.Cost > plain.Cost+1e-9 {
			t.Errorf("trial %d: refined %v worse than plain anneal %v", trial, refined.Cost, plain.Cost)
		}
	}
}

func TestKLRefineRejectsBadInput(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	p := randomProblem(rng, 8, 2)
	if _, _, err := KLRefine(p, []int{0, 1}); err == nil {
		t.Error("short assignment accepted")
	}
	bad := *p
	bad.M = 3
	if _, _, err := KLRefine(&bad, GreedySeed(p)); err == nil {
		t.Error("invalid problem accepted")
	}
}
