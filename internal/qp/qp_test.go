package qp

import (
	"math"
	"math/rand"
	"testing"

	"wivfi/internal/stats"
)

// randomProblem builds a feasible random instance with max-normalized inputs.
func randomProblem(rng *rand.Rand, n, m int) *Problem {
	util := make([]float64, n)
	for i := range util {
		util[i] = rng.Float64()
	}
	comm := make([][]float64, n)
	for i := range comm {
		comm[i] = make([]float64, n)
		for j := range comm[i] {
			if i != j && rng.Float64() < 0.4 {
				comm[i][j] = rng.Float64()
			}
		}
	}
	return &Problem{
		N: n, M: m,
		Comm:        stats.NormalizeMatrixMax(comm),
		Util:        stats.NormalizeMax(util),
		TargetMeans: stats.QuartileMeans(util, m),
		Wc:          1, Wu: 1,
	}
}

func feasible(t *testing.T, p *Problem, assign []int) {
	t.Helper()
	counts := make([]int, p.M)
	for i, j := range assign {
		if j < 0 || j >= p.M {
			t.Fatalf("core %d in invalid cluster %d", i, j)
		}
		counts[j]++
	}
	for j, c := range counts {
		if c != p.ClusterSize() {
			t.Fatalf("cluster %d holds %d cores, want %d", j, c, p.ClusterSize())
		}
	}
}

func TestValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	good := randomProblem(rng, 8, 2)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid problem rejected: %v", err)
	}
	bad := *good
	bad.M = 3 // 8 not divisible by 3
	if err := bad.Validate(); err == nil {
		t.Error("indivisible n/m accepted")
	}
	bad2 := *good
	bad2.Util = bad2.Util[:4]
	if err := bad2.Validate(); err == nil {
		t.Error("short util vector accepted")
	}
	bad3 := *good
	bad3.Wu = -1
	if err := bad3.Validate(); err == nil {
		t.Error("negative weight accepted")
	}
}

func TestPhiComm(t *testing.T) {
	p := &Problem{M: 4}
	if got := p.PhiComm(1, 2); got != 1 {
		t.Errorf("inter-cluster phi = %v, want 1", got)
	}
	if got := p.PhiComm(3, 3); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("intra-cluster phi = %v, want 1/sqrt(4)=0.5", got)
	}
}

func TestCostHandComputed(t *testing.T) {
	// 4 cores, 2 clusters. Traffic only between 0->1 and 2->3.
	p := &Problem{
		N: 4, M: 2,
		Comm: [][]float64{
			{0, 1, 0, 0},
			{0, 0, 0, 0},
			{0, 0, 0, 0.5},
			{0, 0, 0, 0},
		},
		Util:        []float64{0.1, 0.2, 0.8, 0.9},
		TargetMeans: []float64{0.15, 0.85},
		Wc:          1, Wu: 1,
	}
	intra := 1 / math.Sqrt(2)
	// Grouping {0,1} and {2,3}: both flows intra-cluster; util deviations
	// all 0.05.
	assign := []int{0, 0, 1, 1}
	wantComm := 1*intra + 0.5*intra
	wantUtil := 4 * 0.05 * 0.05
	if got := p.Cost(assign); math.Abs(got-(wantComm+wantUtil)) > 1e-12 {
		t.Errorf("Cost = %v, want %v", got, wantComm+wantUtil)
	}
	// Grouping {0,2} and {1,3}: both flows inter-cluster.
	assign2 := []int{0, 1, 0, 1}
	wantComm2 := 1.0 + 0.5
	d := func(u, target float64) float64 { v := u - target; return v * v }
	wantUtil2 := d(0.1, 0.15) + d(0.2, 0.85) + d(0.8, 0.15) + d(0.9, 0.85)
	if got := p.Cost(assign2); math.Abs(got-(wantComm2+wantUtil2)) > 1e-12 {
		t.Errorf("Cost = %v, want %v", got, wantComm2+wantUtil2)
	}
}

func TestBranchAndBoundFindsObviousClustering(t *testing.T) {
	// Two tight traffic communities with matching utilization levels: the
	// optimum must group {0,1} and {2,3}.
	p := &Problem{
		N: 4, M: 2,
		Comm: [][]float64{
			{0, 1, 0, 0},
			{1, 0, 0, 0},
			{0, 0, 0, 1},
			{0, 0, 1, 0},
		},
		Util:        []float64{0.1, 0.1, 0.9, 0.9},
		TargetMeans: []float64{0.1, 0.9},
		Wc:          1, Wu: 1,
	}
	sol, err := BranchAndBound(p, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Exact {
		t.Error("branch-and-bound solution not marked exact")
	}
	feasible(t, p, sol.Assign)
	if sol.Assign[0] != sol.Assign[1] || sol.Assign[2] != sol.Assign[3] || sol.Assign[0] == sol.Assign[2] {
		t.Errorf("optimum should pair {0,1} and {2,3}, got %v", sol.Assign)
	}
	// low-util pair must sit in the low-target cluster
	if sol.Assign[0] != 0 {
		t.Errorf("low-utilization pair in cluster %d, want 0", sol.Assign[0])
	}
}

func TestBranchAndBoundMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 10; trial++ {
		p := randomProblem(rng, 6, 2)
		sol, err := BranchAndBound(p, 1_000_000)
		if err != nil {
			t.Fatal(err)
		}
		feasible(t, p, sol.Assign)
		// brute force over all C(6,3)=20 balanced partitions
		best := math.Inf(1)
		assign := make([]int, 6)
		var enumerate func(i, used0 int)
		var bestAssign []int
		enumerate = func(i, used0 int) {
			if used0 > 3 || (i-used0) > 3 {
				return
			}
			if i == 6 {
				if c := p.Cost(assign); c < best {
					best = c
					bestAssign = append(bestAssign[:0], assign...)
				}
				return
			}
			assign[i] = 0
			enumerate(i+1, used0+1)
			assign[i] = 1
			enumerate(i+1, used0)
		}
		enumerate(0, 0)
		if math.Abs(sol.Cost-best) > 1e-9 {
			t.Errorf("trial %d: B&B cost %v != brute force %v (%v vs %v)",
				trial, sol.Cost, best, sol.Assign, bestAssign)
		}
	}
}

func TestBranchAndBoundNodeCap(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := randomProblem(rng, 12, 3)
	if _, err := BranchAndBound(p, 10); err == nil {
		t.Error("expected node-cap error")
	}
}

func TestGreedySeedFeasibleAndUtilOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := randomProblem(rng, 16, 4)
	assign := GreedySeed(p)
	feasible(t, p, assign)
	// With wc=0 the greedy quartile assignment is optimal for the util term.
	pu := *p
	pu.Wc = 0
	sol, err := BranchAndBound(&pu, 50_000_000)
	if err != nil {
		t.Skipf("B&B too large: %v", err)
	}
	if got := pu.Cost(assign); got > sol.Cost+1e-9 {
		t.Errorf("greedy util cost %v worse than optimal %v", got, sol.Cost)
	}
}

func TestSwapDeltaMatchesFullRecompute(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		p := randomProblem(rng, 12, 3)
		assign := GreedySeed(p)
		// randomize a bit
		for k := 0; k < 10; k++ {
			a, b := rng.Intn(p.N), rng.Intn(p.N)
			assign[a], assign[b] = assign[b], assign[a]
		}
		base := p.Cost(assign)
		for k := 0; k < 20; k++ {
			a, b := rng.Intn(p.N), rng.Intn(p.N)
			if assign[a] == assign[b] {
				continue
			}
			d := p.swapDelta(assign, a, b)
			assign[a], assign[b] = assign[b], assign[a]
			after := p.Cost(assign)
			if math.Abs((base+d)-after) > 1e-9 {
				t.Fatalf("delta mismatch: base %v + delta %v != %v", base, d, after)
			}
			base = after
		}
	}
}

func TestAnnealNearOptimalOnSmallInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 5; trial++ {
		p := randomProblem(rng, 8, 2)
		exact, err := BranchAndBound(p, 10_000_000)
		if err != nil {
			t.Fatal(err)
		}
		heur, err := Anneal(p, DefaultAnnealOptions())
		if err != nil {
			t.Fatal(err)
		}
		feasible(t, p, heur.Assign)
		if heur.Cost < exact.Cost-1e-9 {
			t.Fatalf("heuristic cost %v beats proven optimum %v", heur.Cost, exact.Cost)
		}
		if heur.Cost > exact.Cost*1.02+1e-9 {
			t.Errorf("trial %d: anneal cost %v more than 2%% above optimum %v", trial, heur.Cost, exact.Cost)
		}
	}
}

func TestAnnealDeterministicForSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	p := randomProblem(rng, 16, 4)
	opts := DefaultAnnealOptions()
	a, err := Anneal(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Anneal(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cost != b.Cost {
		t.Errorf("non-deterministic costs: %v vs %v", a.Cost, b.Cost)
	}
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatalf("non-deterministic assignment at %d", i)
		}
	}
}

func TestAnnealScalesTo64Cores(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	p := randomProblem(rng, 64, 4)
	sol, err := Anneal(p, DefaultAnnealOptions())
	if err != nil {
		t.Fatal(err)
	}
	feasible(t, p, sol.Assign)
	greedyCost := p.Cost(GreedySeed(p))
	if sol.Cost > greedyCost+1e-9 {
		t.Errorf("anneal (%v) worse than its greedy seed (%v)", sol.Cost, greedyCost)
	}
}

func TestAnnealRejectsBadOptions(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	p := randomProblem(rng, 8, 2)
	if _, err := Anneal(p, AnnealOptions{}); err == nil {
		t.Error("zero-valued options accepted")
	}
}

func TestSolveDispatch(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	small := randomProblem(rng, 8, 2)
	sol, err := Solve(small, DefaultAnnealOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Exact {
		t.Error("small instance should be solved exactly")
	}
	large := randomProblem(rng, 32, 4)
	sol2, err := Solve(large, DefaultAnnealOptions())
	if err != nil {
		t.Fatal(err)
	}
	if sol2.Exact {
		t.Error("large instance cannot be marked exact")
	}
	feasible(t, large, sol2.Assign)
}

// Property: communication-dominant weights group the traffic community;
// utilization-dominant weights sort by utilization, matching the paper's
// discussion of the ω_c/ω_u trade-off.
func TestWeightTradeoffProperty(t *testing.T) {
	// Cores 0,3 talk heavily; their utilizations are far apart.
	p := &Problem{
		N: 4, M: 2,
		Comm: [][]float64{
			{0, 0, 0, 1},
			{0, 0, 0, 0},
			{0, 0, 0, 0},
			{1, 0, 0, 0},
		},
		Util:        []float64{0.0, 0.1, 0.9, 1.0},
		TargetMeans: []float64{0.05, 0.95},
		Wc:          100, Wu: 1,
	}
	sol, err := BranchAndBound(p, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Assign[0] != sol.Assign[3] {
		t.Errorf("comm-dominant weights should co-locate 0 and 3: %v", sol.Assign)
	}
	p.Wc, p.Wu = 1, 100
	sol, err = BranchAndBound(p, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Assign[0] != sol.Assign[1] || sol.Assign[2] != sol.Assign[3] {
		t.Errorf("util-dominant weights should sort by utilization: %v", sol.Assign)
	}
}

// Property: the cost function is invariant under relabeling only when the
// target means are equal; with distinct targets the labeling matters. This
// guards the semantics B&B relies on.
func TestCostLabelSensitivity(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	p := randomProblem(rng, 8, 2)
	assign := GreedySeed(p)
	flipped := make([]int, len(assign))
	for i, j := range assign {
		flipped[i] = 1 - j
	}
	if p.TargetMeans[0] != p.TargetMeans[1] {
		if math.Abs(p.Cost(assign)-p.Cost(flipped)) < 1e-15 {
			t.Skip("degenerate random instance")
		}
	}
	// Equal targets: relabeling must not change cost.
	p.TargetMeans = []float64{0.5, 0.5}
	if math.Abs(p.Cost(assign)-p.Cost(flipped)) > 1e-12 {
		t.Error("cost changed under relabeling with equal targets")
	}
}

// Property: swapping a pair and swapping it back restores the cost exactly
// (delta antisymmetry), for random instances and assignments.
func TestSwapDeltaAntisymmetryProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 30; trial++ {
		p := randomProblem(rng, 12, 3)
		assign := GreedySeed(p)
		for k := 0; k < 6; k++ {
			a, b := rng.Intn(p.N), rng.Intn(p.N)
			assign[a], assign[b] = assign[b], assign[a]
		}
		a, b := rng.Intn(p.N), rng.Intn(p.N)
		if assign[a] == assign[b] {
			continue
		}
		d1 := p.swapDelta(assign, a, b)
		assign[a], assign[b] = assign[b], assign[a]
		d2 := p.swapDelta(assign, a, b)
		if math.Abs(d1+d2) > 1e-9 {
			t.Fatalf("deltas not antisymmetric: %v and %v", d1, d2)
		}
	}
}

// Property: the optimal cost never increases when communication disappears
// (with wc scaled to zero only the separable utilization term remains, whose
// optimum is the greedy quartile assignment).
func TestZeroCommReducesToQuartileAssignment(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	for trial := 0; trial < 10; trial++ {
		p := randomProblem(rng, 8, 2)
		p.Wc = 0
		exact, err := BranchAndBound(p, 10_000_000)
		if err != nil {
			t.Fatal(err)
		}
		greedy := GreedySeed(p)
		if math.Abs(p.Cost(greedy)-exact.Cost) > 1e-9 {
			t.Fatalf("greedy quartile cost %v != optimum %v without comm", p.Cost(greedy), exact.Cost)
		}
	}
}
