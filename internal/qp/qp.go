// Package qp solves the 0-1 quadratic program at the heart of the paper's
// VFI creation (Section 4.1, Eq. 1-2):
//
//	min  ω_c · Σ X_ij X_pq f_ip φ_comm(j,q)  +  ω_u · Σ X_ij (u_i − ū_j)²
//	s.t. every core in exactly one cluster, every cluster holding n/m cores,
//
// where φ_comm(j,q) = 1 for inter-cluster pairs and 1/√m for intra-cluster
// pairs, and ū_j is the mean of the j-th m-quantile of the utilization
// values.
//
// The paper solves this NP-hard program with Gurobi's branch-and-bound. As a
// from-scratch substitution this package provides two solvers:
//
//   - BranchAndBound: exact, with monotone partial-cost pruning. All cost
//     increments are non-negative, so a partial assignment whose cost already
//     meets the incumbent can be pruned without losing optimality. Practical
//     up to n ≈ 16.
//   - Anneal: multi-start simulated annealing over equal-size partitions
//     using pairwise swap moves with O(n) incremental cost deltas, followed
//     by steepest-descent polishing. Used for the paper's n = 64, m = 4
//     instances and validated against BranchAndBound on small instances.
package qp

import (
	"fmt"
	"math"
	"math/rand"
)

// Problem is one instance of the clustering program. Comm and Util are
// expected to be max-normalized (the paper normalizes f and u by their
// maxima); TargetMeans are the ū_j values, ordered ascending.
type Problem struct {
	N, M        int
	Comm        [][]float64 // Comm[i][p] = normalized traffic core i -> core p
	Util        []float64   // normalized per-core utilization
	TargetMeans []float64   // ū_j, one per cluster, ascending
	Wc, Wu      float64     // ω_c, ω_u
	// Sizes optionally prescribes an unequal partition: cluster j must hold
	// exactly Sizes[j] cores. Nil means the classic equal split of N/M
	// (which then must divide evenly).
	Sizes []int
}

// Validate checks the structural invariants of the instance.
func (p *Problem) Validate() error {
	if p.N <= 0 || p.M <= 0 {
		return fmt.Errorf("qp: need positive n and m, got n=%d m=%d", p.N, p.M)
	}
	if p.Sizes != nil {
		if len(p.Sizes) != p.M {
			return fmt.Errorf("qp: %d cluster sizes for m=%d", len(p.Sizes), p.M)
		}
		total := 0
		for j, s := range p.Sizes {
			if s <= 0 {
				return fmt.Errorf("qp: cluster %d has non-positive size %d", j, s)
			}
			total += s
		}
		if total != p.N {
			return fmt.Errorf("qp: cluster sizes sum to %d for n=%d", total, p.N)
		}
	} else if p.N%p.M != 0 {
		return fmt.Errorf("qp: n=%d not divisible by m=%d", p.N, p.M)
	}
	if len(p.Util) != p.N {
		return fmt.Errorf("qp: %d utilizations for n=%d", len(p.Util), p.N)
	}
	if len(p.Comm) != p.N {
		return fmt.Errorf("qp: %d traffic rows for n=%d", len(p.Comm), p.N)
	}
	for i, row := range p.Comm {
		if len(row) != p.N {
			return fmt.Errorf("qp: traffic row %d has %d cols for n=%d", i, len(row), p.N)
		}
	}
	if len(p.TargetMeans) != p.M {
		return fmt.Errorf("qp: %d target means for m=%d", len(p.TargetMeans), p.M)
	}
	if p.Wc < 0 || p.Wu < 0 {
		return fmt.Errorf("qp: negative weights wc=%v wu=%v", p.Wc, p.Wu)
	}
	return nil
}

// ClusterSize returns n/m, the mandated size of every cluster in the
// classic equal split.
func (p *Problem) ClusterSize() int { return p.N / p.M }

// SizeOf returns the mandated size of cluster j, honoring an unequal
// Sizes prescription when present.
func (p *Problem) SizeOf(j int) int {
	if p.Sizes != nil {
		return p.Sizes[j]
	}
	return p.ClusterSize()
}

// PhiComm implements Eq. 2: the normalized inter-cluster communication cost
// function.
func (p *Problem) PhiComm(j, q int) float64 {
	if j == q {
		return 1 / math.Sqrt(float64(p.M))
	}
	return 1
}

// Cost evaluates Eq. 1 for a complete assignment (assign[i] = cluster of
// core i). It is the reference implementation the incremental deltas are
// tested against.
func (p *Problem) Cost(assign []int) float64 {
	if len(assign) != p.N {
		panic(fmt.Sprintf("qp: assignment length %d for n=%d", len(assign), p.N))
	}
	var comm, util float64
	for i := 0; i < p.N; i++ {
		for q := 0; q < p.N; q++ {
			if f := p.Comm[i][q]; f != 0 {
				comm += f * p.PhiComm(assign[i], assign[q])
			}
		}
		d := p.Util[i] - p.TargetMeans[assign[i]]
		util += d * d
	}
	return p.Wc*comm + p.Wu*util
}

// utilCost returns the utilization cost of putting core i in cluster j.
func (p *Problem) utilCost(i, j int) float64 {
	d := p.Util[i] - p.TargetMeans[j]
	return p.Wu * d * d
}

// swapDelta returns the change in Cost caused by swapping cores a and b
// between their (distinct) clusters under assignment assign. O(n).
func (p *Problem) swapDelta(assign []int, a, b int) float64 {
	ja, jb := assign[a], assign[b]
	if ja == jb {
		return 0
	}
	delta := p.utilCost(a, jb) - p.utilCost(a, ja) +
		p.utilCost(b, ja) - p.utilCost(b, jb)
	intra := p.PhiComm(0, 0) // 1/sqrt(m)
	gain := 1 - intra        // per-unit-traffic saving of moving a pair intra-cluster
	// Communication terms touching a or b change only when the peer's
	// cluster relationship flips. After the swap a lives in jb and b in ja.
	for c := 0; c < p.N; c++ {
		if c == a || c == b {
			continue
		}
		jc := assign[c]
		fa := p.Comm[a][c] + p.Comm[c][a]
		if fa != 0 {
			if jc == ja {
				delta += p.Wc * fa * gain // was intra, becomes inter
			} else if jc == jb {
				delta -= p.Wc * fa * gain // was inter, becomes intra
			}
		}
		fb := p.Comm[b][c] + p.Comm[c][b]
		if fb != 0 {
			if jc == jb {
				delta += p.Wc * fb * gain
			} else if jc == ja {
				delta -= p.Wc * fb * gain
			}
		}
	}
	// The a<->b pair itself keeps the same relationship (inter-cluster
	// before and after), so it contributes no delta.
	return delta
}

// Solution is the result of a solver run.
type Solution struct {
	Assign []int
	Cost   float64
	// Exact reports whether the solution is provably optimal.
	Exact bool
}

// BranchAndBound solves the instance exactly. maxNodes caps the search to
// guard against accidental use on large instances; it returns an error when
// the cap is exceeded. Cluster capacities are enforced during the search and
// partial costs (which only grow) are pruned against the incumbent.
func BranchAndBound(p *Problem, maxNodes int) (Solution, error) {
	if err := p.Validate(); err != nil {
		return Solution{}, err
	}
	assign := make([]int, p.N)
	for i := range assign {
		assign[i] = -1
	}
	counts := make([]int, p.M)
	best := Solution{Cost: math.Inf(1)}
	nodes := 0

	// greedy incumbent to enable early pruning: quartile assignment
	greedy := GreedySeed(p)
	best.Assign = append([]int(nil), greedy...)
	best.Cost = p.Cost(greedy)

	var rec func(i int, partial float64) error
	rec = func(i int, partial float64) error {
		nodes++
		if nodes > maxNodes {
			return fmt.Errorf("qp: branch-and-bound exceeded %d nodes (n=%d too large; use Anneal)", maxNodes, p.N)
		}
		if partial >= best.Cost {
			return nil
		}
		if i == p.N {
			best.Cost = partial
			best.Assign = append(best.Assign[:0], assign...)
			return nil
		}
		for j := 0; j < p.M; j++ {
			if counts[j] == p.SizeOf(j) {
				continue
			}
			inc := p.utilCost(i, j)
			// communication with already-assigned cores (both directions)
			for c := 0; c < i; c++ {
				f := p.Comm[i][c] + p.Comm[c][i]
				if f != 0 {
					inc += p.Wc * f * p.PhiComm(j, assign[c])
				}
			}
			if partial+inc >= best.Cost {
				continue
			}
			assign[i] = j
			counts[j]++
			if err := rec(i+1, partial+inc); err != nil {
				return err
			}
			counts[j]--
			assign[i] = -1
		}
		return nil
	}
	if err := rec(0, 0); err != nil {
		return Solution{}, err
	}
	best.Exact = true
	return best, nil
}

// GreedySeed returns the quartile assignment: cores sorted by utilization
// are dealt into clusters in target-mean order, filling each cluster to
// capacity. This minimizes the utilization term alone and is the starting
// point for the annealer (and the incumbent for branch-and-bound).
func GreedySeed(p *Problem) []int {
	idx := make([]int, p.N)
	for i := range idx {
		idx[i] = i
	}
	// insertion-stable sort by ascending utilization
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && p.Util[idx[j]] < p.Util[idx[j-1]]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	assign := make([]int, p.N)
	j, left := 0, p.SizeOf(0)
	for _, core := range idx {
		assign[core] = j
		if left--; left == 0 && j+1 < p.M {
			j++
			left = p.SizeOf(j)
		}
	}
	return assign
}

// AnnealOptions controls the simulated-annealing solver.
type AnnealOptions struct {
	Seed      int64   // rng seed; runs are deterministic for a given seed
	Restarts  int     // independent annealing restarts (best kept)
	Sweeps    int     // annealing sweeps per restart (n moves per sweep)
	StartTemp float64 // initial temperature, in cost units
	EndTemp   float64 // final temperature
}

// DefaultAnnealOptions returns settings tuned for the paper's n=64, m=4
// instances: a few independent restarts, geometric cooling and a polish
// pass, completing in tens of milliseconds.
func DefaultAnnealOptions() AnnealOptions {
	return AnnealOptions{Seed: 1, Restarts: 4, Sweeps: 400, StartTemp: 1.0, EndTemp: 1e-4}
}

// Anneal solves the instance heuristically. The result is always a feasible
// equal-size partition; Exact is false even if the optimum was found.
func Anneal(p *Problem, opts AnnealOptions) (Solution, error) {
	if err := p.Validate(); err != nil {
		return Solution{}, err
	}
	if opts.Restarts <= 0 || opts.Sweeps <= 0 {
		return Solution{}, fmt.Errorf("qp: anneal needs positive restarts and sweeps")
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	best := Solution{Cost: math.Inf(1)}
	for r := 0; r < opts.Restarts; r++ {
		assign := GreedySeed(p)
		if r > 0 {
			// diversify later restarts with random swaps
			for k := 0; k < p.N; k++ {
				a, b := rng.Intn(p.N), rng.Intn(p.N)
				assign[a], assign[b] = assign[b], assign[a]
			}
		}
		cost := p.Cost(assign)
		temp := opts.StartTemp
		coolRate := math.Pow(opts.EndTemp/opts.StartTemp, 1/float64(opts.Sweeps))
		for sweep := 0; sweep < opts.Sweeps; sweep++ {
			for move := 0; move < p.N; move++ {
				a := rng.Intn(p.N)
				b := rng.Intn(p.N)
				if assign[a] == assign[b] {
					continue
				}
				d := p.swapDelta(assign, a, b)
				if d <= 0 || rng.Float64() < math.Exp(-d/temp) {
					assign[a], assign[b] = assign[b], assign[a]
					cost += d
				}
			}
			temp *= coolRate
		}
		cost = polish(p, assign, cost)
		if cost < best.Cost {
			best.Cost = cost
			best.Assign = append([]int(nil), assign...)
		}
	}
	return best, nil
}

// polish runs steepest-descent pairwise swaps until no improving swap
// exists, returning the final cost.
func polish(p *Problem, assign []int, cost float64) float64 {
	for {
		bestDelta := -1e-12
		bestA, bestB := -1, -1
		for a := 0; a < p.N; a++ {
			for b := a + 1; b < p.N; b++ {
				if assign[a] == assign[b] {
					continue
				}
				if d := p.swapDelta(assign, a, b); d < bestDelta {
					bestDelta, bestA, bestB = d, a, b
				}
			}
		}
		if bestA < 0 {
			return cost
		}
		assign[bestA], assign[bestB] = assign[bestB], assign[bestA]
		cost += bestDelta
	}
}

// Solve picks the right solver for the instance size: exact branch-and-bound
// for small instances (n <= 14), annealing otherwise. This mirrors how the
// repository substitutes Gurobi (see DESIGN.md).
func Solve(p *Problem, opts AnnealOptions) (Solution, error) {
	if p.N <= 14 {
		sol, err := BranchAndBound(p, 50_000_000)
		if err == nil {
			return sol, nil
		}
	}
	return Anneal(p, opts)
}
