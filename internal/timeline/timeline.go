// Package timeline is the time-resolved instrumentation layer of the
// harness: where internal/obs records *events and totals* (spans, counters)
// and internal/fidelity records *final figures*, timeline records how the
// simulated system evolves — per-window link utilization, per-worker phase
// occupancy, full latency distributions.
//
// Three primitives cover the paper's temporal arguments:
//
//   - Sampler: a fixed-window value-per-window series (flits forwarded per
//     1k cycles on a link, joules per millisecond of virtual time). When a
//     run outgrows the bounded bin count, adjacent windows merge and the
//     window doubles, so memory stays O(MaxBins) for any horizon while the
//     series remains an exact re-binning of the same data.
//   - Histogram: a log-bucketed distribution (8 sub-buckets per octave,
//     ≤12.5% relative bucket error) with deterministic quantile queries —
//     the p50/p95/p99 packet latency the DES reports.
//   - Track: discrete level changes (a worker's phase, an island's V/F
//     point), stored as (index, state) transitions.
//
// Two rules inherited from internal/obs shape every producer:
//
//   - Indices are simulated cycles, virtual-time nanoseconds or
//     deterministic record counts — never wall clock — so timeline
//     artifacts are byte-identical across -j levels and across runs.
//   - The disabled path allocates nothing: all three primitives are no-ops
//     on a nil receiver, so instrumented code holds nil handles when no
//     Collector is installed and calls them unconditionally.
package timeline

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"
)

// Agg selects how a Sampler combines the values landing in one window.
type Agg uint8

const (
	// Sum accumulates (rates: flits per window, joules per window).
	Sum Agg = iota
	// Mean averages (levels: queue depth, utilization).
	Mean
)

func (a Agg) String() string {
	if a == Mean {
		return "mean"
	}
	return "sum"
}

// DefaultMaxBins bounds a Sampler's memory: past this many windows,
// adjacent bins merge pairwise and the window doubles.
const DefaultMaxBins = 256

// Sampler is a fixed-window time series. Add is safe for concurrent use;
// every method is a no-op on a nil receiver.
type Sampler struct {
	meta Meta
	agg  Agg

	mu     sync.Mutex
	window int64 // current window width in index units
	max    int   // bin capacity before rescaling
	sums   []float64
	counts []int64
}

// NewSampler returns a sampler with the given initial window width (index
// units per bin, minimum 1) and the default bin bound.
func NewSampler(meta Meta, window int64, agg Agg) *Sampler {
	if window < 1 {
		window = 1
	}
	return &Sampler{meta: meta, agg: agg, window: window, max: DefaultMaxBins}
}

// Add records value v at index idx (negative indices clamp to 0).
func (s *Sampler) Add(idx int64, v float64) {
	if s == nil {
		return
	}
	if idx < 0 {
		idx = 0
	}
	s.mu.Lock()
	b := idx / s.window
	for b >= int64(s.max) {
		s.rescale()
		b = idx / s.window
	}
	for int64(len(s.sums)) <= b {
		s.sums = append(s.sums, 0)
		s.counts = append(s.counts, 0)
	}
	s.sums[b] += v
	s.counts[b]++
	s.mu.Unlock()
}

// rescale merges adjacent bin pairs and doubles the window. Caller holds mu.
func (s *Sampler) rescale() {
	half := (len(s.sums) + 1) / 2
	for i := 0; i < half; i++ {
		s.sums[i] = s.sums[2*i]
		s.counts[i] = s.counts[2*i]
		if 2*i+1 < len(s.sums) {
			s.sums[i] += s.sums[2*i+1]
			s.counts[i] += s.counts[2*i+1]
		}
	}
	s.sums = s.sums[:half]
	s.counts = s.counts[:half]
	s.window *= 2
}

// Window returns the current window width in index units.
func (s *Sampler) Window() int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.window
}

// Values returns one value per window from index 0: sums for Sum samplers,
// per-window averages for Mean samplers (empty windows read 0).
func (s *Sampler) Values() []float64 {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]float64, len(s.sums))
	for i, v := range s.sums {
		if s.agg == Mean {
			if s.counts[i] > 0 {
				v /= float64(s.counts[i])
			}
		}
		out[i] = v
	}
	return out
}

// Series exports the sampler.
func (s *Sampler) Series() Series {
	if s == nil {
		return Series{}
	}
	return Series{
		Meta:   s.meta,
		Kind:   KindSampler,
		Agg:    s.agg.String(),
		Window: s.Window(),
		Values: s.Values(),
	}
}

// ---- Histogram -------------------------------------------------------------

// histSubBits gives 1<<histSubBits sub-buckets per octave.
const histSubBits = 3

// histExact is the threshold below which every value has its own bucket.
const histExact = 1 << (histSubBits + 1) // 16

// Histogram is a log-bucketed distribution of non-negative int64 samples
// (negatives clamp to 0). Values below 16 are exact; above, buckets are
// 1/8th of an octave wide, bounding quantile error at 12.5%. Observe is
// safe for concurrent use; every method is a no-op on a nil receiver.
type Histogram struct {
	meta Meta

	mu       sync.Mutex
	buckets  []int64
	count    int64
	sum      int64
	min, max int64
}

// NewHistogram returns an empty histogram.
func NewHistogram(meta Meta) *Histogram {
	return &Histogram{meta: meta}
}

// bucketOf maps a value to its bucket index.
func bucketOf(v int64) int {
	if v < histExact {
		return int(v)
	}
	exp := bits.Len64(uint64(v)) - 1 // >= histSubBits+1
	sub := int((v >> (exp - histSubBits)) & (1<<histSubBits - 1))
	return histExact + (exp-histSubBits-1)<<histSubBits + sub
}

// bucketBounds returns the inclusive [lo, hi] value range of bucket b.
func bucketBounds(b int) (int64, int64) {
	if b < histExact {
		return int64(b), int64(b)
	}
	e := (b-histExact)>>histSubBits + histSubBits + 1
	s := int64(b-histExact) & (1<<histSubBits - 1)
	lo := int64(1)<<e + s<<(e-histSubBits)
	return lo, lo + int64(1)<<(e-histSubBits) - 1
}

// Observe records one sample.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	b := bucketOf(v)
	h.mu.Lock()
	for len(h.buckets) <= b {
		h.buckets = append(h.buckets, 0)
	}
	h.buckets[b]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.mu.Unlock()
}

// Count returns the number of observed samples.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Quantile returns the upper bound of the bucket holding the p-quantile
// (0 <= p <= 1) — a deterministic estimate within one bucket width of the
// exact order statistic. Returns 0 on an empty histogram.
func (h *Histogram) Quantile(p float64) int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return quantileLocked(h.buckets, h.count, h.min, h.max, p)
}

func quantileLocked(buckets []int64, count, min, max int64, p float64) int64 {
	if count == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := int64(p * float64(count))
	if rank >= count {
		rank = count - 1
	}
	var cum int64
	for b, c := range buckets {
		cum += c
		if cum > rank {
			_, hi := bucketBounds(b)
			if hi > max {
				hi = max
			}
			if hi < min {
				hi = min
			}
			return hi
		}
	}
	return max
}

// Data exports the histogram's buckets and summary statistics.
func (h *Histogram) Data() *HistogramData {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	d := &HistogramData{
		Count: h.count, Sum: h.sum, Min: h.min, Max: h.max,
		P50: quantileLocked(h.buckets, h.count, h.min, h.max, 0.50),
		P90: quantileLocked(h.buckets, h.count, h.min, h.max, 0.90),
		P95: quantileLocked(h.buckets, h.count, h.min, h.max, 0.95),
		P99: quantileLocked(h.buckets, h.count, h.min, h.max, 0.99),
	}
	for b, c := range h.buckets {
		if c == 0 {
			continue
		}
		lo, hi := bucketBounds(b)
		d.Buckets = append(d.Buckets, Bucket{Lo: lo, Hi: hi, Count: c})
	}
	return d
}

// Series exports the histogram.
func (h *Histogram) Series() Series {
	if h == nil {
		return Series{}
	}
	return Series{Meta: h.meta, Kind: KindHistogram, Histogram: h.Data()}
}

// ---- Track -----------------------------------------------------------------

// Track records discrete state changes over the index axis. Consecutive
// identical states collapse; a second Set at the same index overwrites.
// Set is safe for concurrent use; every method is a no-op on a nil
// receiver.
type Track struct {
	meta Meta

	mu     sync.Mutex
	points []StatePoint
}

// NewTrack returns an empty track.
func NewTrack(meta Meta) *Track {
	return &Track{meta: meta}
}

// Set records that the track is in state from index idx onward.
func (t *Track) Set(idx int64, state string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	n := len(t.points)
	switch {
	case n > 0 && t.points[n-1].State == state:
		// no transition
	case n > 0 && t.points[n-1].Index == idx:
		t.points[n-1].State = state
		if n > 1 && t.points[n-2].State == state {
			t.points = t.points[:n-1]
		}
	default:
		t.points = append(t.points, StatePoint{Index: idx, State: state})
	}
	t.mu.Unlock()
}

// Points returns the recorded transitions in index order as appended.
func (t *Track) Points() []StatePoint {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]StatePoint, len(t.points))
	copy(out, t.points)
	return out
}

// Series exports the track.
func (t *Track) Series() Series {
	if t == nil {
		return Series{}
	}
	return Series{Meta: t.meta, Kind: KindTrack, Points: t.Points()}
}

// ---- Exchange types --------------------------------------------------------

// SchemaVersion is stamped into every exported Set; bump it when the
// document's meaning changes.
const SchemaVersion = 1

// Series kinds.
const (
	KindSampler   = "sampler"
	KindHistogram = "histogram"
	KindTrack     = "track"
)

// Meta names a series and its units. Name is the unique hierarchical key
// ("noc/wc/link/12-13"); IndexUnit names the x axis ("cycles", "vns",
// "records"); Unit names the value axis ("flits", "J").
type Meta struct {
	Name      string `json:"name"`
	IndexUnit string `json:"index_unit,omitempty"`
	Unit      string `json:"unit,omitempty"`
}

// StatePoint is one track transition: the track holds State from Index
// until the next point.
type StatePoint struct {
	Index int64  `json:"index"`
	State string `json:"state"`
}

// Bucket is one non-empty histogram bucket covering [Lo, Hi].
type Bucket struct {
	Lo    int64 `json:"lo"`
	Hi    int64 `json:"hi"`
	Count int64 `json:"count"`
}

// HistogramData is a histogram's exported form.
type HistogramData struct {
	Count   int64    `json:"count"`
	Sum     int64    `json:"sum"`
	Min     int64    `json:"min"`
	Max     int64    `json:"max"`
	P50     int64    `json:"p50"`
	P90     int64    `json:"p90"`
	P95     int64    `json:"p95"`
	P99     int64    `json:"p99"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Series is one exported timeline: exactly one of Values (sampler), Points
// (track) or Histogram is populated, per Kind.
type Series struct {
	Meta
	Kind      string         `json:"kind"`
	Agg       string         `json:"agg,omitempty"`    // samplers
	Window    int64          `json:"window,omitempty"` // samplers
	Values    []float64      `json:"values,omitempty"`
	Points    []StatePoint   `json:"points,omitempty"`
	Histogram *HistogramData `json:"histogram,omitempty"`
}

// Set is one run's complete timeline document.
type Set struct {
	Schema int      `json:"schema"`
	Tool   string   `json:"tool,omitempty"`
	Series []Series `json:"series"`
}

// Sort orders the series by name, the canonical export order.
func (s *Set) Sort() {
	sort.Slice(s.Series, func(i, j int) bool { return s.Series[i].Name < s.Series[j].Name })
}

// Lookup returns the named series, or nil.
func (s *Set) Lookup(name string) *Series {
	for i := range s.Series {
		if s.Series[i].Name == name {
			return &s.Series[i]
		}
	}
	return nil
}

// Prefix returns every series whose name starts with prefix, in Set order.
func (s *Set) Prefix(prefix string) []Series {
	var out []Series
	for _, sr := range s.Series {
		if len(sr.Name) >= len(prefix) && sr.Name[:len(prefix)] == prefix {
			out = append(out, sr)
		}
	}
	return out
}

// Validate checks structural invariants: unique names, known kinds, and
// kind-matched payloads.
func (s *Set) Validate() error {
	seen := make(map[string]bool, len(s.Series))
	for _, sr := range s.Series {
		if sr.Name == "" {
			return fmt.Errorf("timeline: unnamed series")
		}
		if seen[sr.Name] {
			return fmt.Errorf("timeline: duplicate series %q", sr.Name)
		}
		seen[sr.Name] = true
		switch sr.Kind {
		case KindSampler:
			if sr.Window < 1 {
				return fmt.Errorf("timeline: sampler %q window %d", sr.Name, sr.Window)
			}
		case KindTrack:
		case KindHistogram:
			if sr.Histogram == nil {
				return fmt.Errorf("timeline: histogram %q has no data", sr.Name)
			}
		default:
			return fmt.Errorf("timeline: series %q has unknown kind %q", sr.Name, sr.Kind)
		}
	}
	return nil
}
