package timeline

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"
)

func TestSamplerSumAndMean(t *testing.T) {
	s := NewSampler(Meta{Name: "s"}, 10, Sum)
	s.Add(0, 1)
	s.Add(5, 2)
	s.Add(10, 4)
	s.Add(29, 8)
	if got := s.Values(); !reflect.DeepEqual(got, []float64{3, 4, 8}) {
		t.Fatalf("sum values = %v", got)
	}
	m := NewSampler(Meta{Name: "m"}, 10, Mean)
	m.Add(0, 2)
	m.Add(9, 4)
	m.Add(10, 10)
	if got := m.Values(); !reflect.DeepEqual(got, []float64{3, 10}) {
		t.Fatalf("mean values = %v", got)
	}
}

func TestSamplerRescales(t *testing.T) {
	s := NewSampler(Meta{Name: "s"}, 1, Sum)
	n := int64(DefaultMaxBins * 4)
	for i := int64(0); i < n; i++ {
		s.Add(i, 1)
	}
	if w := s.Window(); w != 4 {
		t.Fatalf("window = %d, want 4", w)
	}
	vals := s.Values()
	if len(vals) > DefaultMaxBins {
		t.Fatalf("len(values) = %d exceeds bound %d", len(vals), DefaultMaxBins)
	}
	var total float64
	for _, v := range vals {
		total += v
	}
	if total != float64(n) {
		t.Fatalf("rescale lost mass: total = %v, want %d", total, n)
	}
}

func TestSamplerRescaleIsExactRebinning(t *testing.T) {
	// The rescaled series must equal the series built directly at the
	// final window width.
	rng := rand.New(rand.NewSource(7))
	type sample struct {
		idx int64
		v   float64
	}
	var samples []sample
	for i := 0; i < 5000; i++ {
		samples = append(samples, sample{rng.Int63n(DefaultMaxBins * 8), float64(rng.Intn(100))})
	}
	a := NewSampler(Meta{Name: "a"}, 1, Sum)
	for _, s := range samples {
		a.Add(s.idx, s.v)
	}
	b := NewSampler(Meta{Name: "b"}, a.Window(), Sum)
	for _, s := range samples {
		b.Add(s.idx, s.v)
	}
	av, bv := a.Values(), b.Values()
	// Trailing empty bins may differ in count; compare the common prefix
	// after verifying equal length up to trailing zeros.
	for len(av) < len(bv) {
		av = append(av, 0)
	}
	for len(bv) < len(av) {
		bv = append(bv, 0)
	}
	if !reflect.DeepEqual(av, bv) {
		t.Fatalf("rescaled series differs from direct binning")
	}
}

func TestHistogramExactSmallValues(t *testing.T) {
	h := NewHistogram(Meta{Name: "h"})
	for v := int64(0); v < histExact; v++ {
		if b := bucketOf(v); b != int(v) {
			t.Fatalf("bucketOf(%d) = %d", v, b)
		}
		lo, hi := bucketBounds(int(v))
		if lo != v || hi != v {
			t.Fatalf("bounds(%d) = [%d,%d]", v, lo, hi)
		}
	}
	h.Observe(3)
	h.Observe(3)
	h.Observe(7)
	if q := h.Quantile(0.5); q != 3 {
		t.Fatalf("p50 = %d, want 3", q)
	}
	if q := h.Quantile(1); q != 7 {
		t.Fatalf("p100 = %d, want 7", q)
	}
}

func TestHistogramBucketCoversValue(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 10000; i++ {
		v := rng.Int63() >> uint(rng.Intn(62))
		b := bucketOf(v)
		lo, hi := bucketBounds(b)
		if v < lo || v > hi {
			t.Fatalf("value %d outside bucket %d [%d,%d]", v, b, lo, hi)
		}
		// Relative bucket error bound: width/lo <= 1/8 for v >= 16.
		if v >= histExact && float64(hi-lo) > float64(lo)/8 {
			t.Fatalf("bucket %d [%d,%d] too wide", b, lo, hi)
		}
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	h := NewHistogram(Meta{Name: "h"})
	var exact []int64
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 20000; i++ {
		v := int64(rng.ExpFloat64() * 500)
		exact = append(exact, v)
		h.Observe(v)
	}
	sort.Slice(exact, func(i, j int) bool { return exact[i] < exact[j] })
	for _, p := range []float64{0.5, 0.9, 0.95, 0.99} {
		want := exact[int(p*float64(len(exact)))]
		got := h.Quantile(p)
		if want >= histExact {
			rel := float64(got-want) / float64(want)
			if rel < -0.005 || rel > 0.13 {
				t.Fatalf("p%.0f: got %d, exact %d (rel %.3f)", p*100, got, want, rel)
			}
		} else if got != want {
			t.Fatalf("p%.0f: got %d, exact %d", p*100, got, want)
		}
	}
}

func TestTrackDedupAndOverwrite(t *testing.T) {
	tr := NewTrack(Meta{Name: "t"})
	tr.Set(0, "idle")
	tr.Set(10, "map")
	tr.Set(20, "map") // dedup
	tr.Set(30, "reduce")
	tr.Set(30, "merge") // overwrite at same index
	want := []StatePoint{{0, "idle"}, {10, "map"}, {30, "merge"}}
	if got := tr.Points(); !reflect.DeepEqual(got, want) {
		t.Fatalf("points = %v, want %v", got, want)
	}
	// Overwrite collapsing back into the previous state removes the point.
	tr2 := NewTrack(Meta{Name: "t2"})
	tr2.Set(0, "a")
	tr2.Set(5, "b")
	tr2.Set(5, "a")
	if got := tr2.Points(); !reflect.DeepEqual(got, []StatePoint{{0, "a"}}) {
		t.Fatalf("points = %v, want [{0 a}]", got)
	}
}

func TestNilReceiversNoOp(t *testing.T) {
	var s *Sampler
	var h *Histogram
	var tr *Track
	var c *Collector
	s.Add(1, 1)
	h.Observe(1)
	tr.Set(1, "x")
	if s.Values() != nil || h.Data() != nil || tr.Points() != nil {
		t.Fatal("nil primitives returned data")
	}
	if c.Sampler(Meta{Name: "x"}, 1, Sum) != nil || c.Histogram(Meta{Name: "x"}) != nil || c.Track(Meta{Name: "x"}) != nil {
		t.Fatal("nil collector returned primitives")
	}
	c.AddSeries(Series{})
	if set := c.Export("t"); set == nil || set.Schema != SchemaVersion || len(set.Series) != 0 {
		t.Fatalf("nil collector export = %+v", set)
	}
}

func TestDisabledPathZeroAlloc(t *testing.T) {
	Install(nil)
	var sink *Sampler
	allocs := testing.AllocsPerRun(100, func() {
		c := Active()
		s := c.Sampler(Meta{Name: "x"}, 1, Sum)
		s.Add(5, 1)
		c.Histogram(Meta{Name: "h"}).Observe(9)
		c.Track(Meta{Name: "t"}).Set(3, "map")
		sink = s
	})
	_ = sink
	if allocs != 0 {
		t.Fatalf("disabled path allocates %v per op", allocs)
	}
}

func TestCollectorExportSortedAndIdempotent(t *testing.T) {
	c := NewCollector()
	c.Sampler(Meta{Name: "b/s"}, 10, Sum).Add(1, 2)
	c.Track(Meta{Name: "a/t"}).Set(0, "x")
	c.Histogram(Meta{Name: "c/h"}).Observe(4)
	c.AddSeries(Series{Meta: Meta{Name: "0/post"}, Kind: KindTrack})
	c.AddSeries(Series{Meta: Meta{Name: "0/post"}, Kind: KindTrack, Points: []StatePoint{{1, "y"}}})
	set := c.Export("test")
	if err := set.Validate(); err != nil {
		t.Fatal(err)
	}
	names := make([]string, len(set.Series))
	for i, sr := range set.Series {
		names[i] = sr.Name
	}
	if !sort.StringsAreSorted(names) {
		t.Fatalf("series not sorted: %v", names)
	}
	if got := set.Lookup("0/post"); got == nil || len(got.Points) != 1 {
		t.Fatalf("AddSeries replace failed: %+v", got)
	}
	if got := len(set.Prefix("c/")); got != 1 {
		t.Fatalf("Prefix = %d series", got)
	}
}

func TestWriteDirRoundTripAndDeterminism(t *testing.T) {
	build := func() *Collector {
		c := NewCollector()
		s := c.Sampler(Meta{Name: "link/0-1", IndexUnit: "cycles", Unit: "flits"}, 100, Sum)
		for i := int64(0); i < 1000; i += 7 {
			s.Add(i, float64(i%13))
		}
		h := c.Histogram(Meta{Name: "latency", Unit: "cycles"})
		for i := int64(0); i < 500; i++ {
			h.Observe(i * i % 997)
		}
		c.Track(Meta{Name: "worker/0", IndexUnit: "records"}).Set(0, "map")
		return c
	}
	dir1, dir2 := t.TempDir(), t.TempDir()
	if err := WriteDir(dir1, build().Export("test")); err != nil {
		t.Fatal(err)
	}
	if err := WriteDir(dir2, build().Export("test")); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{JSONFile, SamplersCSV, TracksCSV, HistogramsCSV} {
		a, err := os.ReadFile(filepath.Join(dir1, name))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(dir2, name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("%s differs across identical runs", name)
		}
		if len(a) == 0 {
			t.Fatalf("%s is empty", name)
		}
	}
	set, err := ReadSetFile(filepath.Join(dir1, JSONFile))
	if err != nil {
		t.Fatal(err)
	}
	if err := set.Validate(); err != nil {
		t.Fatal(err)
	}
	if set.Schema != SchemaVersion || len(set.Series) != 3 {
		t.Fatalf("round-trip set = schema %d, %d series", set.Schema, len(set.Series))
	}
	// JSON must round-trip to the identical document.
	blob1, _ := json.Marshal(set)
	reload, _ := ReadSetFile(filepath.Join(dir1, JSONFile))
	blob2, _ := json.Marshal(reload)
	if !bytes.Equal(blob1, blob2) {
		t.Fatal("JSON round-trip not stable")
	}
}

func TestValidateRejectsBadSets(t *testing.T) {
	cases := []Set{
		{Series: []Series{{Meta: Meta{Name: ""}, Kind: KindTrack}}},
		{Series: []Series{{Meta: Meta{Name: "a"}, Kind: KindTrack}, {Meta: Meta{Name: "a"}, Kind: KindTrack}}},
		{Series: []Series{{Meta: Meta{Name: "a"}, Kind: "bogus"}}},
		{Series: []Series{{Meta: Meta{Name: "a"}, Kind: KindSampler, Window: 0}}},
		{Series: []Series{{Meta: Meta{Name: "a"}, Kind: KindHistogram}}},
	}
	for i, s := range cases {
		if err := s.Validate(); err == nil {
			t.Fatalf("case %d: Validate accepted bad set", i)
		}
	}
}

func TestManifestSummaries(t *testing.T) {
	c := NewCollector()
	h := c.Histogram(Meta{Name: "lat", Unit: "cycles"})
	for i := int64(1); i <= 100; i++ {
		h.Observe(i)
	}
	sums := ManifestSummaries(c.Export("t"))
	if len(sums) != 1 {
		t.Fatalf("summaries = %d", len(sums))
	}
	s := sums[0]
	if s.Name != "lat" || s.Count != 100 || s.Min != 1 || s.Max != 100 {
		t.Fatalf("summary = %+v", s)
	}
	if s.P50 < 45 || s.P50 > 56 {
		t.Fatalf("p50 = %d", s.P50)
	}
	if ManifestSummaries(nil) != nil {
		t.Fatal("nil set produced summaries")
	}
}

func BenchmarkDisabledSamplerAdd(b *testing.B) {
	Install(nil)
	s := Active().Sampler(Meta{Name: "x"}, 1, Sum)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Add(int64(i), 1)
	}
}

func BenchmarkEnabledHistogramObserve(b *testing.B) {
	h := NewHistogram(Meta{Name: "x"})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i & 0xfffff))
	}
}
