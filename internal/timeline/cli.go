package timeline

import (
	"flag"
	"fmt"

	"wivfi/internal/obs"
)

// CLI bundles the -timeline flag and the install/export lifecycle shared
// by the command-line tools, mirroring obs.CLI:
//
//	tcli := timeline.NewCLI(flag.CommandLine)
//	flag.Parse()
//	tcli.Start("nocsim")
//	... run ...
//	set, err := tcli.Finish()
type CLI struct {
	// Dir is the artifact directory from -timeline ("" = disabled).
	Dir string

	cmd   string
	col   *Collector
	force bool
}

// NewCLI registers the -timeline flag on fs.
func NewCLI(fs *flag.FlagSet) *CLI {
	c := &CLI{}
	fs.StringVar(&c.Dir, "timeline", "", "write time-resolved series (timeline.json + CSVs) to this directory")
	return c
}

// ForceCollector makes the next Start install a collector even without
// -timeline — callers that embed timelines elsewhere (the fidelity HTML
// report) need the series regardless. Call after flag parsing, before
// Start.
func (c *CLI) ForceCollector() { c.force = true }

// Start installs the process-wide collector when -timeline was given or
// ForceCollector was called. cmd names the tool in the exported Set.
func (c *CLI) Start(cmd string) {
	c.cmd = cmd
	if c.Dir != "" || c.force {
		c.col = NewCollector()
		Install(c.col)
	}
}

// Collecting reports whether Start installed a collector.
func (c *CLI) Collecting() bool { return c.col != nil }

// Export snapshots the collected series as of now. Returns nil when no
// collector is installed — callers pass the result straight to report
// builders, which treat nil as "no timelines section".
func (c *CLI) Export() *Set {
	if c.col == nil {
		return nil
	}
	return c.col.Export(c.cmd)
}

// Finish exports the collected series and, when -timeline was given,
// writes the artifact directory. Returns the exported Set (nil when no
// collector was installed) so callers can reuse it for reports and
// manifest summaries.
func (c *CLI) Finish() (*Set, error) {
	if c.col == nil {
		return nil, nil
	}
	set := c.col.Export(c.cmd)
	if c.Dir != "" {
		if err := WriteDir(c.Dir, set); err != nil {
			return set, fmt.Errorf("%s: writing timeline: %w", c.cmd, err)
		}
		obs.Logf("timeline written to %s (%d series)", c.Dir, len(set.Series))
	}
	return set, nil
}

// ManifestSummaries condenses the set's histograms into the manifest's
// histogram table, sorted by name (Set order). Nil set returns nil.
func ManifestSummaries(set *Set) []obs.HistogramSummary {
	if set == nil {
		return nil
	}
	var out []obs.HistogramSummary
	for _, sr := range set.Series {
		if sr.Kind != KindHistogram || sr.Histogram == nil {
			continue
		}
		d := sr.Histogram
		out = append(out, obs.HistogramSummary{
			Name: sr.Name, Unit: sr.Unit, Count: d.Count,
			Min: d.Min, P50: d.P50, P95: d.P95, P99: d.P99, Max: d.Max,
		})
	}
	return out
}
