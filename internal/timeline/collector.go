package timeline

import (
	"sync"
	"sync/atomic"
)

// Collector is the process-wide sink for timeline series. Producers ask it
// for named primitives (get-or-create); post-hoc builders append finished
// series directly with AddSeries. All methods are safe for concurrent use
// and no-ops on a nil receiver, so call sites read
//
//	timeline.Active().Sampler(...)
//
// unconditionally — when nothing is installed the handle chain is nil end
// to end and nothing allocates.
type Collector struct {
	mu         sync.Mutex
	samplers   map[string]*Sampler
	histograms map[string]*Histogram
	tracks     map[string]*Track
	series     []Series
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{
		samplers:   map[string]*Sampler{},
		histograms: map[string]*Histogram{},
		tracks:     map[string]*Track{},
	}
}

// Sampler returns the named sampler, creating it with the given window and
// aggregation on first use. Nil receiver returns nil.
func (c *Collector) Sampler(meta Meta, window int64, agg Agg) *Sampler {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.samplers[meta.Name]
	if !ok {
		s = NewSampler(meta, window, agg)
		c.samplers[meta.Name] = s
	}
	return s
}

// Histogram returns the named histogram, creating it on first use. Nil
// receiver returns nil.
func (c *Collector) Histogram(meta Meta) *Histogram {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	h, ok := c.histograms[meta.Name]
	if !ok {
		h = NewHistogram(meta)
		c.histograms[meta.Name] = h
	}
	return h
}

// Track returns the named track, creating it on first use. Nil receiver
// returns nil.
func (c *Collector) Track(meta Meta) *Track {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	t, ok := c.tracks[meta.Name]
	if !ok {
		t = NewTrack(meta)
		c.tracks[meta.Name] = t
	}
	return t
}

// AddSeries appends finished series (from post-hoc builders like
// expt.CollectTimelines or noc.RunDESTimeline). A series whose name is
// already present replaces the earlier one, so re-collection is
// idempotent. No-op on a nil receiver.
func (c *Collector) AddSeries(series ...Series) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
outer:
	for _, sr := range series {
		for i := range c.series {
			if c.series[i].Name == sr.Name {
				c.series[i] = sr
				continue outer
			}
		}
		c.series = append(c.series, sr)
	}
}

// Export snapshots every primitive and appended series into a sorted,
// schema-stamped Set. Nil receiver returns an empty valid Set.
func (c *Collector) Export(tool string) *Set {
	if c == nil {
		return &Set{Schema: SchemaVersion, Tool: tool}
	}
	set := &Set{Schema: SchemaVersion, Tool: tool}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, s := range c.samplers {
		set.Series = append(set.Series, s.Series())
	}
	for _, h := range c.histograms {
		set.Series = append(set.Series, h.Series())
	}
	for _, t := range c.tracks {
		set.Series = append(set.Series, t.Series())
	}
	set.Series = append(set.Series, c.series...)
	set.Sort()
	return set
}

// ---- Global install point --------------------------------------------------

var active atomic.Pointer[Collector]

// Install makes c the process-wide collector (nil uninstalls). Mirrors
// obs.Install: CLIs install one collector for the whole run.
func Install(c *Collector) { active.Store(c) }

// Active returns the installed collector, or nil. Safe to chain:
// timeline.Active().Sampler(...) returns a nil handle when disabled.
func Active() *Collector { return active.Load() }

// Enabled reports whether a collector is installed. Guard name
// formatting and other enable-path-only allocations behind this.
func Enabled() bool { return active.Load() != nil }
