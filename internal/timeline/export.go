package timeline

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
)

// Artifact file names written by WriteDir.
const (
	JSONFile      = "timeline.json"
	SamplersCSV   = "samplers.csv"
	TracksCSV     = "tracks.csv"
	HistogramsCSV = "histograms.csv"
)

// WriteDir writes the full Set as timeline.json plus three flat CSV views
// (samplers.csv, tracks.csv, histograms.csv) under dir, creating it if
// needed. All outputs are deterministic functions of the Set.
func WriteDir(dir string, set *Set) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	blob, err := json.MarshalIndent(set, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, JSONFile), append(blob, '\n'), 0o644); err != nil {
		return err
	}
	if err := writeCSV(filepath.Join(dir, SamplersCSV), samplerRows(set)); err != nil {
		return err
	}
	if err := writeCSV(filepath.Join(dir, TracksCSV), trackRows(set)); err != nil {
		return err
	}
	return writeCSV(filepath.Join(dir, HistogramsCSV), histogramRows(set))
}

func samplerRows(set *Set) [][]string {
	rows := [][]string{{"name", "index_unit", "unit", "agg", "window", "bin", "index", "value"}}
	for _, sr := range set.Series {
		if sr.Kind != KindSampler {
			continue
		}
		for i, v := range sr.Values {
			rows = append(rows, []string{
				sr.Name, sr.IndexUnit, sr.Unit, sr.Agg,
				strconv.FormatInt(sr.Window, 10),
				strconv.Itoa(i),
				strconv.FormatInt(int64(i)*sr.Window, 10),
				formatFloat(v),
			})
		}
	}
	return rows
}

func trackRows(set *Set) [][]string {
	rows := [][]string{{"name", "index_unit", "index", "state"}}
	for _, sr := range set.Series {
		if sr.Kind != KindTrack {
			continue
		}
		for _, p := range sr.Points {
			rows = append(rows, []string{
				sr.Name, sr.IndexUnit, strconv.FormatInt(p.Index, 10), p.State,
			})
		}
	}
	return rows
}

func histogramRows(set *Set) [][]string {
	rows := [][]string{{"name", "index_unit", "unit", "lo", "hi", "count"}}
	for _, sr := range set.Series {
		if sr.Kind != KindHistogram || sr.Histogram == nil {
			continue
		}
		for _, b := range sr.Histogram.Buckets {
			rows = append(rows, []string{
				sr.Name, sr.IndexUnit, sr.Unit,
				strconv.FormatInt(b.Lo, 10),
				strconv.FormatInt(b.Hi, 10),
				strconv.FormatInt(b.Count, 10),
			})
		}
	}
	return rows
}

// formatFloat renders values with %g like encoding/json, so the CSV and
// JSON views of one sampler agree byte for byte.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func writeCSV(path string, rows [][]string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := csv.NewWriter(f)
	if err := w.WriteAll(rows); err != nil {
		f.Close()
		return err
	}
	w.Flush()
	if err := w.Error(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("timeline: closing %s: %w", path, err)
	}
	return nil
}

// ReadSetFile loads a timeline.json written by WriteDir.
func ReadSetFile(path string) (*Set, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var set Set
	if err := json.Unmarshal(blob, &set); err != nil {
		return nil, fmt.Errorf("timeline: parsing %s: %w", path, err)
	}
	return &set, nil
}
