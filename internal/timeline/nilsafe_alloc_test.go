package timeline

import (
	"reflect"
	"strings"
	"testing"
)

// The disabled-path contract: instrumented code holds nil collector
// handles when no Collector is installed and calls methods
// unconditionally, so every exported method on the collector types must
// be a zero-alloc no-op on a nil receiver.
//
// This test is reflection-driven so a newly added exported method is
// covered the moment it exists: it is called on a nil receiver with zero
// arguments (a missing nil guard panics here), and it must have a
// zero-alloc regression entry below — an unlisted method fails the test
// until it is proven alloc-free in disabledPathCalls or documented as
// cold-path in coldPathAllowed.

var (
	nilCollector *Collector
	nilSampler   *Sampler
	nilHistogram *Histogram
	nilTrack     *Track
)

// disabledPathCalls exercises each exported method on a nil receiver the
// way instrumented call sites do; testing.AllocsPerRun over each must be 0.
var disabledPathCalls = map[string]func(){
	"Collector.Sampler":   func() { nilCollector.Sampler(Meta{Name: "x"}, 1, Sum) },
	"Collector.Histogram": func() { nilCollector.Histogram(Meta{Name: "x"}) },
	"Collector.Track":     func() { nilCollector.Track(Meta{Name: "x"}) },
	"Collector.AddSeries": func() { nilCollector.AddSeries() },
	"Sampler.Add":         func() { nilSampler.Add(5, 1.5) },
	"Sampler.Window":      func() { _ = nilSampler.Window() },
	"Sampler.Values":      func() { _ = nilSampler.Values() },
	"Sampler.Series":      func() { _ = nilSampler.Series() },
	"Histogram.Observe":   func() { nilHistogram.Observe(9) },
	"Histogram.Count":     func() { _ = nilHistogram.Count() },
	"Histogram.Quantile":  func() { _ = nilHistogram.Quantile(0.5) },
	"Histogram.Data":      func() { _ = nilHistogram.Data() },
	"Histogram.Series":    func() { _ = nilHistogram.Series() },
	"Track.Set":           func() { nilTrack.Set(3, "map") },
	"Track.Points":        func() { _ = nilTrack.Points() },
	"Track.Series":        func() { _ = nilTrack.Series() },
}

// coldPathAllowed documents the audited exceptions: methods that may
// allocate on a nil receiver because they run once per run, not per event.
var coldPathAllowed = map[string]string{
	"Collector.Export": "returns an empty valid *Set; called once at export time, never on the hot path",
}

func TestDisabledPathZeroAllocEveryExportedMethod(t *testing.T) {
	Install(nil)
	covered := map[string]bool{}
	for _, inst := range []any{nilCollector, nilSampler, nilHistogram, nilTrack} {
		v := reflect.ValueOf(inst)
		base := v.Type().Elem().Name()
		for i := 0; i < v.NumMethod(); i++ {
			name := v.Type().Method(i).Name
			key := base + "." + name
			covered[key] = true
			mv := v.Method(i)
			callWithZeroArgs(t, key, mv)
			if reason, ok := coldPathAllowed[key]; ok {
				if strings.TrimSpace(reason) == "" {
					t.Errorf("%s: coldPathAllowed entry needs a justification", key)
				}
				continue
			}
			fn, ok := disabledPathCalls[key]
			if !ok {
				t.Errorf("%s: new exported method has no zero-alloc regression entry; add it to disabledPathCalls (or coldPathAllowed with a reason)", key)
				continue
			}
			if allocs := testing.AllocsPerRun(200, fn); allocs != 0 {
				t.Errorf("%s allocates %.0f/op on the disabled path; nil receivers must be free", key, allocs)
			}
		}
	}
	// The table must not outlive the API: stale entries hide dead coverage.
	for key := range disabledPathCalls {
		if !covered[key] {
			t.Errorf("disabledPathCalls has entry %s for a method that no longer exists", key)
		}
	}
	for key := range coldPathAllowed {
		if !covered[key] {
			t.Errorf("coldPathAllowed has entry %s for a method that no longer exists", key)
		}
	}
}

// callWithZeroArgs invokes a bound method with zero values for every
// parameter (and no variadic tail): a collector method missing its nil
// guard panics here the same way it would at a disabled call site.
func callWithZeroArgs(t *testing.T, key string, mv reflect.Value) {
	t.Helper()
	mt := mv.Type()
	nin := mt.NumIn()
	if mt.IsVariadic() {
		nin--
	}
	args := make([]reflect.Value, nin)
	for i := range args {
		args[i] = reflect.Zero(mt.In(i))
	}
	defer func() {
		if r := recover(); r != nil {
			t.Errorf("%s panics on nil receiver: %v", key, r)
		}
	}()
	mv.Call(args)
}
