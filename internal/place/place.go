// Package place implements the wireless-link placement and thread-mapping
// methodologies of Section 6 of the paper:
//
//   - MinHopCount: map the threads of each VFI cluster onto their quadrant's
//     tiles so that highly-communicating threads sit close together, build
//     the small-world wireline fabric, then run simulated annealing over
//     wireless-interface (WI) positions to minimize the average
//     traffic-weighted hop count;
//   - MaxWirelessUtil: pin the WIs near the centre of each VFI quadrant and
//     map threads "logically near, physically far": the threads carrying the
//     most traffic are placed on the tiles closest to their cluster's WIs so
//     their flits ride the energy-efficient wireless links.
//
// Thread-level traffic matrices are translated to switch-level matrices by
// the chosen mapping; the full-system simulator consumes the result.
package place

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"wivfi/internal/noc"
	"wivfi/internal/platform"
	"wivfi/internal/topo"
)

// Mapping is a bijection between threads (logical cores carrying the
// profile's utilization and traffic) and tiles (physical switch positions).
type Mapping struct {
	ThreadToTile []int
	TileToThread []int
}

// NewIdentityMapping returns the identity mapping over n threads.
func NewIdentityMapping(n int) Mapping {
	m := Mapping{ThreadToTile: make([]int, n), TileToThread: make([]int, n)}
	for i := 0; i < n; i++ {
		m.ThreadToTile[i] = i
		m.TileToThread[i] = i
	}
	return m
}

// Validate checks that the mapping is a bijection.
func (m Mapping) Validate() error {
	n := len(m.ThreadToTile)
	if len(m.TileToThread) != n {
		return fmt.Errorf("place: mapping arrays disagree: %d vs %d", n, len(m.TileToThread))
	}
	for thread, tile := range m.ThreadToTile {
		if tile < 0 || tile >= n {
			return fmt.Errorf("place: thread %d mapped to bad tile %d", thread, tile)
		}
		if m.TileToThread[tile] != thread {
			return fmt.Errorf("place: mapping not a bijection at thread %d", thread)
		}
	}
	return nil
}

// MapTraffic rewrites a thread-to-thread traffic matrix into a
// switch-to-switch matrix under the mapping.
func MapTraffic(traffic [][]float64, m Mapping) [][]float64 {
	n := len(traffic)
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, n)
	}
	for i, row := range traffic {
		ti := m.ThreadToTile[i]
		for j, f := range row {
			if f != 0 {
				out[ti][m.ThreadToTile[j]] += f
			}
		}
	}
	return out
}

// ClusterTraffic aggregates thread-level traffic to cluster level:
// out[a][b] is the total traffic from threads of cluster a to threads of
// cluster b. The result is mapping-invariant and parameterizes the
// inter-cluster link apportioning of the small-world builder.
func ClusterTraffic(traffic [][]float64, assign []int, m int) [][]float64 {
	out := make([][]float64, m)
	for a := range out {
		out[a] = make([]float64, m)
	}
	for i, row := range traffic {
		for j, f := range row {
			if f != 0 && assign[i] != assign[j] {
				out[assign[i]][assign[j]] += f
			}
		}
	}
	return out
}

// Options configures both placement strategies.
type Options struct {
	// SmallWorld configures the wireline fabric construction.
	SmallWorld topo.SmallWorldConfig
	// Costs is the link cost model used for routing during optimization.
	Costs noc.LinkCosts
	// Routing is the mode used to evaluate hop counts (UpDown for WiNoC).
	Routing noc.RoutingMode
	// Seed drives the simulated annealing.
	Seed int64
	// MappingSweeps and WISweeps bound the two annealing loops.
	MappingSweeps int
	WISweeps      int
}

// DefaultOptions returns settings that converge in well under a second for
// the 64-core platform.
func DefaultOptions() Options {
	return Options{
		SmallWorld:    topo.DefaultSmallWorldConfig(),
		Costs:         noc.DefaultLinkCosts(),
		Routing:       noc.UpDown,
		Seed:          1,
		MappingSweeps: 200,
		WISweeps:      60,
	}
}

// Result is the outcome of a placement strategy.
type Result struct {
	Mapping     Mapping
	WIPlacement [][]int // per cluster, WIsPerCluster switch ids
	Topology    *topo.Topology
	Routes      *noc.RouteTable
	// SwitchTraffic is the thread traffic rewritten under Mapping.
	SwitchTraffic [][]float64
	// AvgWeightedHops is the traffic-weighted average hop count achieved.
	AvgWeightedHops float64
}

// MapThreadsMinDistance maps each cluster's threads onto its quadrant's
// tiles minimizing sum(f_ip * manhattan(tile_i, tile_p)) with simulated
// annealing over within-cluster swaps followed by greedy polishing.
func MapThreadsMinDistance(chip platform.Chip, assign []int, traffic [][]float64, seed int64, sweeps int) (Mapping, error) {
	n := chip.NumCores()
	if len(assign) != n || len(traffic) != n {
		return Mapping{}, fmt.Errorf("place: need %d assignments and traffic rows", n)
	}
	quads, err := topo.PartitionForAssign(chip, assign)
	if err != nil {
		return Mapping{}, err
	}
	if err := checkClusterSizes(assign, quads); err != nil {
		return Mapping{}, err
	}
	m := initialClusterMapping(assign, quads, n)
	rng := rand.New(rand.NewSource(seed))
	dist := func(a, b int) float64 { return float64(chip.ManhattanHops(a, b)) }
	cost := mappingCost(traffic, m, dist)
	temp := cost / float64(n*4)
	if temp <= 0 {
		temp = 1
	}
	cool := math.Pow(1e-3, 1/float64(max(sweeps, 1)))
	for sweep := 0; sweep < sweeps; sweep++ {
		for move := 0; move < n; move++ {
			a := rng.Intn(n)
			b := rng.Intn(n)
			if a == b || assign[a] != assign[b] {
				continue
			}
			d := swapDelta(traffic, m, dist, a, b)
			if d <= 0 || rng.Float64() < math.Exp(-d/temp) {
				applySwap(&m, a, b)
				cost += d
			}
		}
		temp *= cool
	}
	polishMapping(traffic, &m, dist, assign)
	return m, nil
}

// initialClusterMapping deals the threads of cluster j onto quadrant j's
// tiles in index order.
func initialClusterMapping(assign []int, quads [][]int, n int) Mapping {
	m := Mapping{ThreadToTile: make([]int, n), TileToThread: make([]int, n)}
	next := make([]int, len(quads))
	for thread := 0; thread < n; thread++ {
		q := assign[thread]
		tile := quads[q][next[q]]
		next[q]++
		m.ThreadToTile[thread] = tile
		m.TileToThread[tile] = thread
	}
	return m
}

func checkClusterSizes(assign []int, quads [][]int) error {
	counts := make([]int, len(quads))
	for _, c := range assign {
		if c < 0 || c >= len(quads) {
			return fmt.Errorf("place: cluster index %d out of range", c)
		}
		counts[c]++
	}
	for q, c := range counts {
		if c != len(quads[q]) {
			return fmt.Errorf("place: cluster %d has %d threads for %d tiles", q, c, len(quads[q]))
		}
	}
	return nil
}

// mappingCost is the full objective: sum over ordered pairs of traffic
// times distance.
func mappingCost(traffic [][]float64, m Mapping, dist func(a, b int) float64) float64 {
	var sum float64
	for i, row := range traffic {
		ti := m.ThreadToTile[i]
		for j, f := range row {
			if f != 0 {
				sum += f * dist(ti, m.ThreadToTile[j])
			}
		}
	}
	return sum
}

// swapDelta computes the cost change of swapping the tiles of threads a and
// b in O(n).
func swapDelta(traffic [][]float64, m Mapping, dist func(x, y int) float64, a, b int) float64 {
	ta, tb := m.ThreadToTile[a], m.ThreadToTile[b]
	var d float64
	for c := range traffic {
		if c == a || c == b {
			continue
		}
		tc := m.ThreadToTile[c]
		fa := traffic[a][c] + traffic[c][a]
		if fa != 0 {
			d += fa * (dist(tb, tc) - dist(ta, tc))
		}
		fb := traffic[b][c] + traffic[c][b]
		if fb != 0 {
			d += fb * (dist(ta, tc) - dist(tb, tc))
		}
	}
	// the a-b pair itself: distance unchanged (swap is symmetric)
	return d
}

func applySwap(m *Mapping, a, b int) {
	ta, tb := m.ThreadToTile[a], m.ThreadToTile[b]
	m.ThreadToTile[a], m.ThreadToTile[b] = tb, ta
	m.TileToThread[ta], m.TileToThread[tb] = b, a
}

// polishMapping runs first-improvement swaps until a local optimum.
func polishMapping(traffic [][]float64, m *Mapping, dist func(x, y int) float64, assign []int) {
	n := len(traffic)
	improved := true
	for improved {
		improved = false
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				if assign[a] != assign[b] {
					continue
				}
				if swapDelta(traffic, *m, dist, a, b) < -1e-12 {
					applySwap(m, a, b)
					improved = true
				}
			}
		}
	}
}

// CenterWIs returns the max-wireless-utilization WI placement: three
// switches adjacent to the centre of each quadrant.
func CenterWIs(chip platform.Chip) [][]int {
	quads := topo.Quadrants(chip)
	out := make([][]int, len(quads))
	for q := range quads {
		// quadrant row/col origin
		r0 := (q / 2) * (chip.Rows / 2)
		c0 := (q % 2) * (chip.Cols / 2)
		cr := r0 + chip.Rows/4
		cc := c0 + chip.Cols/4
		out[q] = []int{
			chip.ID(cr, cc),
			chip.ID(cr-1, cc),
			chip.ID(cr, cc-1),
		}
	}
	return out
}

// RegionWIs generalizes CenterWIs to an arbitrary region partition: every
// region gets topo.WIsPerCluster switches near its centre. Rectangular
// regions of at least 2x2 tiles use the exact quadrant-centre rule (so the
// paper's layout is reproduced bit-for-bit); irregular regions fall back
// to the three tiles nearest the region centroid. Regions smaller than
// WIsPerCluster tiles cannot host a WI set and yield an error.
func RegionWIs(chip platform.Chip, regions [][]int) ([][]int, error) {
	out := make([][]int, len(regions))
	for q, tiles := range regions {
		if len(tiles) < topo.WIsPerCluster {
			return nil, fmt.Errorf("place: region %d has %d tiles; needs at least %d for its wireless interfaces",
				q, len(tiles), topo.WIsPerCluster)
		}
		minR, minC := chip.Rows, chip.Cols
		maxR, maxC := 0, 0
		for _, id := range tiles {
			r, c := chip.Coord(id)
			if r < minR {
				minR = r
			}
			if r > maxR {
				maxR = r
			}
			if c < minC {
				minC = c
			}
			if c > maxC {
				maxC = c
			}
		}
		h, w := maxR-minR+1, maxC-minC+1
		if len(tiles) == h*w && h >= 2 && w >= 2 {
			cr := minR + h/2
			cc := minC + w/2
			out[q] = []int{
				chip.ID(cr, cc),
				chip.ID(cr-1, cc),
				chip.ID(cr, cc-1),
			}
			continue
		}
		// Irregular (snake-sliced) region: the WIsPerCluster tiles closest
		// to the centroid, ties broken by tile id for determinism.
		var sr, sc float64
		for _, id := range tiles {
			r, c := chip.Coord(id)
			sr += float64(r)
			sc += float64(c)
		}
		sr /= float64(len(tiles))
		sc /= float64(len(tiles))
		ordered := append([]int(nil), tiles...)
		sort.SliceStable(ordered, func(a, b int) bool {
			ra, ca := chip.Coord(ordered[a])
			rb, cb := chip.Coord(ordered[b])
			da := (float64(ra)-sr)*(float64(ra)-sr) + (float64(ca)-sc)*(float64(ca)-sc)
			db := (float64(rb)-sr)*(float64(rb)-sr) + (float64(cb)-sc)*(float64(cb)-sc)
			if da != db {
				return da < db
			}
			return ordered[a] < ordered[b]
		})
		out[q] = append([]int(nil), ordered[:topo.WIsPerCluster]...)
	}
	return out, nil
}

// BuildTopology constructs the small-world wireline fabric (inter-cluster
// links apportioned by the cluster traffic of the mapped assignment) and
// overlays the WI placement, over the chip's quadrant clusters.
func BuildTopology(chip platform.Chip, interTraffic [][]float64, placement [][]int, cfg topo.SmallWorldConfig) (*topo.Topology, error) {
	cfg.InterTraffic = interTraffic
	tp, err := topo.SmallWorld(chip, cfg)
	if err != nil {
		return nil, err
	}
	if err := topo.AddWireless(tp, placement); err != nil {
		return nil, err
	}
	return tp, nil
}

// BuildTopologyRegions is BuildTopology over an explicit region partition,
// the entry point for non-quadrant island geometries.
func BuildTopologyRegions(chip platform.Chip, regions [][]int, interTraffic [][]float64, placement [][]int, cfg topo.SmallWorldConfig) (*topo.Topology, error) {
	cfg.InterTraffic = interTraffic
	tp, err := topo.SmallWorldRegions(chip, regions, cfg)
	if err != nil {
		return nil, err
	}
	if err := topo.AddWireless(tp, placement); err != nil {
		return nil, err
	}
	return tp, nil
}

// evalPlacement measures the traffic-weighted average hop count of a WI
// placement on a freshly built topology.
func evalPlacement(chip platform.Chip, regions [][]int, interTraffic, switchTraffic [][]float64, placement [][]int, opts Options) (float64, *topo.Topology, *noc.RouteTable, error) {
	tp, err := BuildTopologyRegions(chip, regions, interTraffic, placement, opts.SmallWorld)
	if err != nil {
		return 0, nil, nil, err
	}
	rt, err := noc.BuildRoutes(tp, opts.Costs, opts.Routing)
	if err != nil {
		return 0, nil, nil, err
	}
	return rt.AvgHops(switchTraffic), tp, rt, nil
}

// MinHopCount runs strategy A. assign maps thread -> VFI cluster; traffic is
// thread-level.
func MinHopCount(chip platform.Chip, assign []int, traffic [][]float64, opts Options) (Result, error) {
	mapping, err := MapThreadsMinDistance(chip, assign, traffic, opts.Seed, opts.MappingSweeps)
	if err != nil {
		return Result{}, err
	}
	switchTraffic := MapTraffic(traffic, mapping)
	quads, err := topo.PartitionForAssign(chip, assign)
	if err != nil {
		return Result{}, err
	}
	tileCluster := topo.RegionOf(chip.NumCores(), quads)
	interTraffic := ClusterTraffic(switchTraffic, tileCluster, len(quads))

	rng := rand.New(rand.NewSource(opts.Seed + 1))
	placement, err := RegionWIs(chip, quads) // starting point
	if err != nil {
		return Result{}, err
	}
	bestHops, bestTopo, bestRT, err := evalPlacement(chip, quads, interTraffic, switchTraffic, placement, opts)
	if err != nil {
		return Result{}, err
	}
	cur := clonePlacement(placement)
	curHops := bestHops
	for sweep := 0; sweep < opts.WISweeps; sweep++ {
		// propose: move one WI to a random other switch in its quadrant
		q := rng.Intn(len(cur))
		slot := rng.Intn(len(cur[q]))
		cand := quads[q][rng.Intn(len(quads[q]))]
		if containsWI(cur, cand) {
			continue
		}
		old := cur[q][slot]
		cur[q][slot] = cand
		hops, tpc, rtc, err := evalPlacement(chip, quads, interTraffic, switchTraffic, cur, opts)
		if err != nil {
			cur[q][slot] = old
			continue
		}
		// accept improvements; mild tolerance early on
		temp := 0.05 * float64(opts.WISweeps-sweep) / float64(opts.WISweeps)
		if hops < curHops || rng.Float64() < math.Exp((curHops-hops)/maxf(temp, 1e-9)) {
			curHops = hops
			if hops < bestHops {
				bestHops = hops
				bestTopo, bestRT = tpc, rtc
				placement = clonePlacement(cur)
			}
		} else {
			cur[q][slot] = old
		}
	}
	return Result{
		Mapping:         mapping,
		WIPlacement:     placement,
		Topology:        bestTopo,
		Routes:          bestRT,
		SwitchTraffic:   switchTraffic,
		AvgWeightedHops: bestHops,
	}, nil
}

// MaxWirelessUtil runs strategy B: WIs at quadrant centres, threads mapped
// so the heaviest communicators sit next to their cluster's WIs.
func MaxWirelessUtil(chip platform.Chip, assign []int, traffic [][]float64, opts Options) (Result, error) {
	n := chip.NumCores()
	if len(assign) != n || len(traffic) != n {
		return Result{}, fmt.Errorf("place: need %d assignments and traffic rows", n)
	}
	quads, err := topo.PartitionForAssign(chip, assign)
	if err != nil {
		return Result{}, err
	}
	if err := checkClusterSizes(assign, quads); err != nil {
		return Result{}, err
	}
	placement, err := RegionWIs(chip, quads)
	if err != nil {
		return Result{}, err
	}

	// Thread volume = total traffic in+out; within each cluster, the
	// highest-volume threads take the tiles closest to a WI ("logically
	// near, physically far").
	volume := make([]float64, n)
	for i, row := range traffic {
		for j, f := range row {
			volume[i] += f
			volume[j] += f
		}
	}
	mapping := Mapping{ThreadToTile: make([]int, n), TileToThread: make([]int, n)}
	for q, tiles := range quads {
		var threads []int
		for th, c := range assign {
			if c == q {
				threads = append(threads, th)
			}
		}
		sort.SliceStable(threads, func(a, b int) bool {
			if volume[threads[a]] != volume[threads[b]] {
				return volume[threads[a]] > volume[threads[b]]
			}
			return threads[a] < threads[b]
		})
		ordered := append([]int(nil), tiles...)
		sort.SliceStable(ordered, func(a, b int) bool {
			da := distToNearestWI(chip, ordered[a], placement[q])
			db := distToNearestWI(chip, ordered[b], placement[q])
			if da != db {
				return da < db
			}
			return ordered[a] < ordered[b]
		})
		for i, th := range threads {
			mapping.ThreadToTile[th] = ordered[i]
			mapping.TileToThread[ordered[i]] = th
		}
	}
	// Locality polish: the greedy WI-proximity order scatters communicating
	// pairs, so refine with min-distance annealing while pinning the
	// hottest WIsPerCluster threads of each cluster onto their WI-adjacent
	// tiles ("logically near, physically far" is preserved; everyone else
	// regains locality).
	pinned := make([]bool, n)
	for q := range quads {
		var threads []int
		for th, c := range assign {
			if c == q {
				threads = append(threads, th)
			}
		}
		sort.SliceStable(threads, func(a, b int) bool {
			if volume[threads[a]] != volume[threads[b]] {
				return volume[threads[a]] > volume[threads[b]]
			}
			return threads[a] < threads[b]
		})
		for i := 0; i < topo.WIsPerCluster && i < len(threads); i++ {
			pinned[threads[i]] = true
		}
	}
	annealPinned(chip, assign, traffic, &mapping, pinned, opts.Seed, opts.MappingSweeps)
	switchTraffic := MapTraffic(traffic, mapping)
	tileCluster := topo.RegionOf(chip.NumCores(), quads)
	interTraffic := ClusterTraffic(switchTraffic, tileCluster, len(quads))
	tp, err := BuildTopologyRegions(chip, quads, interTraffic, placement, opts.SmallWorld)
	if err != nil {
		return Result{}, err
	}
	rt, err := noc.BuildRoutes(tp, opts.Costs, opts.Routing)
	if err != nil {
		return Result{}, err
	}
	return Result{
		Mapping:         mapping,
		WIPlacement:     placement,
		Topology:        tp,
		Routes:          rt,
		SwitchTraffic:   switchTraffic,
		AvgWeightedHops: rt.AvgHops(switchTraffic),
	}, nil
}

// annealPinned runs the min-distance annealing over the mapping, swapping
// only unpinned threads within the same cluster.
func annealPinned(chip platform.Chip, assign []int, traffic [][]float64, m *Mapping, pinned []bool, seed int64, sweeps int) {
	n := len(assign)
	rng := rand.New(rand.NewSource(seed + 7))
	dist := func(a, b int) float64 { return float64(chip.ManhattanHops(a, b)) }
	cost := mappingCost(traffic, *m, dist)
	temp := cost / float64(n*4)
	if temp <= 0 {
		temp = 1
	}
	cool := math.Pow(1e-3, 1/float64(max(sweeps, 1)))
	for sweep := 0; sweep < sweeps; sweep++ {
		for move := 0; move < n; move++ {
			a := rng.Intn(n)
			b := rng.Intn(n)
			if a == b || assign[a] != assign[b] || pinned[a] || pinned[b] {
				continue
			}
			d := swapDelta(traffic, *m, dist, a, b)
			if d <= 0 || rng.Float64() < math.Exp(-d/temp) {
				applySwap(m, a, b)
				cost += d
			}
		}
		temp *= cool
	}
	// greedy polish respecting pins
	improved := true
	for improved {
		improved = false
		for a := 0; a < n; a++ {
			if pinned[a] {
				continue
			}
			for b := a + 1; b < n; b++ {
				if pinned[b] || assign[a] != assign[b] {
					continue
				}
				if swapDelta(traffic, *m, dist, a, b) < -1e-12 {
					applySwap(m, a, b)
					improved = true
				}
			}
		}
	}
}

func distToNearestWI(chip platform.Chip, tile int, wis []int) int {
	best := math.MaxInt32
	for _, wi := range wis {
		if d := chip.ManhattanHops(tile, wi); d < best {
			best = d
		}
	}
	return best
}

func containsWI(placement [][]int, s int) bool {
	for _, ws := range placement {
		for _, w := range ws {
			if w == s {
				return true
			}
		}
	}
	return false
}

func clonePlacement(p [][]int) [][]int {
	out := make([][]int, len(p))
	for i := range p {
		out[i] = append([]int(nil), p[i]...)
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
